let log_src = Logs.Src.create "prospector.query" ~doc:"jungloid queries"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Jtype = Javamodel.Jtype
module Hierarchy = Javamodel.Hierarchy

type t = {
  tin : Jtype.t;
  tout : Jtype.t;
}

let parse_type s =
  let s = String.trim s in
  let rec strip s dims =
    if String.length s > 2 && String.sub s (String.length s - 2) 2 = "[]" then
      strip (String.sub s 0 (String.length s - 2)) (dims + 1)
    else (s, dims)
  in
  let base, dims = strip s 0 in
  let base_t =
    if base = "void" then Jtype.Void
    else
      match Jtype.prim_of_string base with
      | Some p -> Jtype.Prim p
      | None -> Jtype.ref_of_string base
  in
  let rec wrap ty n = if n = 0 then ty else wrap (Jtype.Array ty) (n - 1) in
  wrap base_t dims

let query tin tout = { tin = parse_type tin; tout = parse_type tout }

type settings = {
  slack : int;
  limit : int;
  max_results : int;
  weights : Rank.weights;
  estimate_freevars : bool;
}

let default_settings =
  {
    slack = 1;
    limit = 4096;
    max_results = 10;
    weights = Rank.default_weights;
    estimate_freevars = false;
  }

(* The future-work free-variable estimator: a free variable of type T will
   cost about as much as the cheapest way to conjure a T from nothing (the
   void query the user would run next). Unreachable types keep the constant
   estimate. *)
let freevar_estimator ~settings graph =
  if not settings.estimate_freevars then None
  else begin
    let dist = Search.distances_from graph ~sources:[ Graph.void_node graph ] in
    Some
      (fun ty ->
        match Graph.find_type_node graph ty with
        | Some n when n < Array.length dist && dist.(n) < max_int -> max 1 dist.(n)
        | _ -> settings.weights.Rank.freevar_cost)
  end

type result = {
  jungloid : Jungloid.t;
  key : Rank.key;
  code : string;
}

type multi_result = {
  source_var : string option;
  result : result;
}

(* Deduplicate jungloids that arise from different graph paths (typestate
   splicing can yield the same elementary-jungloid sequence twice). *)
let dedup js =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun j ->
      if Hashtbl.mem seen j then false
      else begin
        Hashtbl.replace seen j ();
        true
      end)
    js

(* Distinct jungloids can render identically (e.g. two declarations of
   getFile(String) with a free receiver); showing both tells the user
   nothing. Keep the best-ranked representative — a minimal version of the
   result clustering the paper leaves to future work. *)
let dedup_rendered ranked =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun j ->
      let text = Jungloid.to_expression j in
      if Hashtbl.mem seen text then false
      else begin
        Hashtbl.replace seen text ();
        true
      end)
    ranked

let rank_and_render ~settings ~hierarchy ~freevar_cost_of ~input_name
    paths_to_jungloid paths =
  let jungloids = dedup (List.map paths_to_jungloid paths) in
  let ranked =
    dedup_rendered
      (Rank.sort ~weights:settings.weights ?freevar_cost_of hierarchy jungloids)
  in
  List.filteri (fun i _ -> i < settings.max_results) ranked
  |> List.map (fun j ->
         let input =
           match (input_name j, Jungloid.input_type j) with
           | Some name, ty -> Some (name, ty)
           | None, _ -> None
         in
         {
           jungloid = j;
           key = Rank.key ~weights:settings.weights ?freevar_cost_of hierarchy j;
           code = Codegen.to_java ?input j;
         })

let run ?(settings = default_settings) ~graph ~hierarchy q =
  match (Graph.find_type_node graph q.tin, Graph.find_type_node graph q.tout) with
  | Some src, Some dst ->
      let paths =
        Search.enumerate graph ~sources:[ src ] ~target:dst ~slack:settings.slack
          ~limit:settings.limit ()
      in
      Log.debug (fun m ->
          m "query (%s, %s): %d paths enumerated" (Jtype.to_string q.tin)
            (Jtype.to_string q.tout) (List.length paths));
      rank_and_render ~settings ~hierarchy
        ~freevar_cost_of:(freevar_estimator ~settings graph)
        ~input_name:(fun _ -> None)
        (Jungloid.of_path graph) paths
  | _ ->
      Log.debug (fun m ->
          m "query (%s, %s): type not in graph" (Jtype.to_string q.tin)
            (Jtype.to_string q.tout));
      []

type cluster = {
  representative : result;
  members : int;
  type_path : string;
}

let type_path_of (j : Jungloid.t) =
  let step ty = Jtype.simple_string ty in
  let types =
    step (Jungloid.input_type j)
    :: List.filter_map
         (fun e -> if Elem.is_widen e then None else Some (step (Elem.output_type e)))
         j.Jungloid.elems
  in
  String.concat " > " types

let cluster results =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun r ->
      let key = type_path_of r.jungloid in
      match Hashtbl.find_opt seen key with
      | Some c -> Hashtbl.replace seen key { c with members = c.members + 1 }
      | None ->
          Hashtbl.replace seen key { representative = r; members = 1; type_path = key };
          order := key :: !order)
    results;
  List.rev_map (fun key -> Hashtbl.find seen key) !order

let run_multi ?(settings = default_settings) ~graph ~hierarchy ~vars ~tout () =
  match Graph.find_type_node graph tout with
  | None -> []
  | Some dst ->
      let var_nodes =
        List.filter_map
          (fun (name, ty) ->
            Option.map (fun n -> (n, name)) (Graph.find_type_node graph ty))
          vars
      in
      let void = Graph.void_node graph in
      let sources = void :: List.map fst var_nodes in
      let paths =
        Search.enumerate_per_source graph ~sources ~target:dst ~slack:settings.slack
          ~limit:settings.limit ()
      in
      (* Attribute each path to the variables of its source node; a path from
         the void node belongs to no variable. Distinct (jungloid, source)
         pairs each become one suggestion. *)
      let jungloid_sources = Hashtbl.create 64 in
      List.iter
        (fun (p : Search.path) ->
          let j = Jungloid.of_path graph p in
          let srcs =
            if p.Search.source = void then [ None ]
            else
              List.filter_map
                (fun (n, name) -> if n = p.Search.source then Some (Some name) else None)
                var_nodes
          in
          List.iter (fun s -> Hashtbl.replace jungloid_sources (j, s) ()) srcs)
        paths;
      let pairs =
        Hashtbl.fold (fun (j, s) () acc -> (j, s) :: acc) jungloid_sources []
      in
      let freevar_cost_of = freevar_estimator ~settings graph in
      let ranked =
        List.map
          (fun (j, s) ->
            (Rank.key ~weights:settings.weights ?freevar_cost_of hierarchy j, j, s))
          pairs
        |> List.sort (fun (ka, _, sa) (kb, _, sb) ->
               match Rank.compare_key ka kb with
               | 0 -> compare sa sb
               | c -> c)
      in
      let seen = Hashtbl.create 64 in
      let ranked =
        List.filter
          (fun (_, j, s) ->
            let key = (s, Jungloid.to_expression j) in
            if Hashtbl.mem seen key then false
            else begin
              Hashtbl.replace seen key ();
              true
            end)
          ranked
      in
      List.filteri (fun i _ -> i < settings.max_results) ranked
      |> List.map (fun (key, j, s) ->
             let input =
               match s with Some name -> Some (name, Jungloid.input_type j) | None -> None
             in
             { source_var = s; result = { jungloid = j; key; code = Codegen.to_java ?input j } })
