module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Member = Javamodel.Member
module Decl = Javamodel.Decl
module Hierarchy = Javamodel.Hierarchy

type config = {
  include_protected : bool;
  include_deprecated : bool;
  restrict_obj_string_params : bool;
}

let default_config =
  {
    include_protected = false;
    include_deprecated = true;
    restrict_obj_string_params = false;
  }

let is_obj_or_string = function
  | Jtype.Ref q ->
      Qname.equal q Qname.object_qname || Qname.equal q Qname.string_qname
  | _ -> false

let vis_ok config = function
  | Member.Public -> true
  | Member.Protected -> config.include_protected
  | Member.Private | Member.Package -> false

(* Indices of parameters usable as the elementary jungloid's input. With
   [restrict_obj_string_params], Object- and String-typed positions are
   excluded: Section 4.3 observes that "usually not any Object or String is
   acceptable", so those edges come only from mined examples. *)
let ref_param_indices config params =
  List.concat
    (List.mapi
       (fun i (_, ty) ->
         if
           Jtype.is_reference ty
           && not (config.restrict_obj_string_params && is_obj_or_string ty)
         then [ i ]
         else [])
       params)

let elems_of_decl ?(config = default_config) (d : Decl.t) =
  let acc = ref [] in
  let push e =
    if Jtype.is_reference (Elem.output_type e) then acc := e :: !acc
  in
  List.iter
    (fun (f : Member.field) ->
      if vis_ok config f.Member.fvis then push (Elem.Field_access { owner = d.dname; field = f }))
    d.fields;
  List.iter
    (fun (m : Member.meth) ->
      if vis_ok config m.Member.mvis && (config.include_deprecated || not m.Member.mdeprecated)
      then
        if m.Member.mstatic then begin
          match ref_param_indices config m.Member.params with
          | [] -> push (Elem.Static_call { owner = d.dname; meth = m; input = Elem.No_input })
          | idxs ->
              List.iter
                (fun i ->
                  push (Elem.Static_call { owner = d.dname; meth = m; input = Elem.Param i }))
                idxs
        end
        else begin
          (* The receiver is treated as another parameter (Section 2.1). *)
          push (Elem.Instance_call { owner = d.dname; meth = m; input = Elem.Receiver });
          List.iter
            (fun i ->
              push (Elem.Instance_call { owner = d.dname; meth = m; input = Elem.Param i }))
            (ref_param_indices config m.Member.params)
        end)
    d.methods;
  if Decl.instantiable d then
    List.iter
      (fun (c : Member.ctor) ->
        if vis_ok config c.Member.cvis then
          match ref_param_indices config c.Member.cparams with
          | [] -> push (Elem.Ctor_call { owner = d.dname; ctor = c; input = Elem.No_input })
          | idxs ->
              List.iter
                (fun i ->
                  push (Elem.Ctor_call { owner = d.dname; ctor = c; input = Elem.Param i }))
                idxs)
      d.ctors;
  List.rev !acc

let build ?(config = default_config) h =
  let g = Graph.create () in
  ignore (Graph.void_node g);
  (* Real type nodes for every declaration. *)
  Hierarchy.iter h (fun d -> ignore (Graph.ensure_type_node g (Jtype.ref_ d.Decl.dname)));
  (* Member edges; interning creates array-type nodes on the fly. *)
  Hierarchy.iter h (fun d ->
      List.iter
        (fun elem ->
          let src = Graph.ensure_type_node g (Elem.input_type elem) in
          let dst = Graph.ensure_type_node g (Elem.output_type elem) in
          Graph.add_edge g ~src elem ~dst)
        (elems_of_decl ~config d));
  (* Widening edges between declared types. *)
  Hierarchy.iter h (fun d ->
      let from_ = Jtype.ref_ d.Decl.dname in
      let src = Graph.ensure_type_node g from_ in
      List.iter
        (fun sup ->
          let to_ = Jtype.ref_ sup in
          let dst = Graph.ensure_type_node g to_ in
          Graph.add_edge g ~src (Elem.Widen { from_; to_ }) ~dst)
        (Hierarchy.direct_supers h d.Decl.dname));
  (* Widening for array nodes: covariance between present array types, and
     every array widens to Object. *)
  let arrays =
    List.filter (fun (ty, _) -> match ty with Jtype.Array _ -> true | _ -> false)
      (Graph.real_nodes g)
  in
  let obj = Graph.ensure_type_node g Jtype.object_t in
  List.iter
    (fun (a_ty, a_id) ->
      Graph.add_edge g ~src:a_id (Elem.Widen { from_ = a_ty; to_ = Jtype.object_t }) ~dst:obj;
      List.iter
        (fun (b_ty, b_id) ->
          if (not (Jtype.equal a_ty b_ty)) && Hierarchy.is_subtype h a_ty b_ty then
            Graph.add_edge g ~src:a_id (Elem.Widen { from_ = a_ty; to_ = b_ty }) ~dst:b_id)
        arrays)
    arrays;
  g

let add_all_downcasts g h =
  let added = ref 0 in
  let before = Graph.edge_count g in
  List.iter
    (fun (ty, src) ->
      match ty with
      | Jtype.Ref q ->
          Qname.Set.iter
            (fun sub ->
              let to_ = Jtype.ref_ sub in
              match Graph.find_type_node g to_ with
              | Some dst ->
                  Graph.add_edge g ~src (Elem.Downcast { from_ = ty; to_ }) ~dst
              | None -> ())
            (Hierarchy.subtypes h q)
      | _ -> ())
    (Graph.real_nodes g);
  added := Graph.edge_count g - before;
  !added
