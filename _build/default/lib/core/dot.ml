module Jtype = Javamodel.Jtype

let escape s =
  String.concat "\\\"" (String.split_on_char '"' s)

let node_label g id =
  if Graph.is_typestate g id then
    Printf.sprintf "%s-%d" (Jtype.simple_string (Graph.node_type g id)) id
  else Jtype.simple_string (Graph.node_type g id)

let node_attrs g id =
  if Graph.is_typestate g id then ", style=dashed" else ""

let edge_attrs (e : Graph.edge) ~bold =
  let style =
    match e.Graph.elem with
    | Elem.Widen _ -> ", style=dotted"
    | Elem.Downcast _ -> ", penwidth=2"
    | _ -> ""
  in
  if bold then style ^ ", color=red, penwidth=2" else style

let render g ~nodes ~edges ~bold_edges =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph jungloid {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  List.iter
    (fun id ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"%s];\n" id
           (escape (node_label g id))
           (node_attrs g id)))
    nodes;
  List.iter
    (fun (e : Graph.edge) ->
      let bold = List.memq e bold_edges in
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%s\", fontsize=9%s];\n" e.Graph.src
           e.Graph.dst
           (escape (Elem.describe e.Graph.elem))
           (edge_attrs e ~bold)))
    edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let subgraph g ~centers ~radius =
  let seen = Hashtbl.create 64 in
  let frontier = ref [] in
  List.iter
    (fun ty ->
      match Graph.find_type_node g ty with
      | Some id ->
          if not (Hashtbl.mem seen id) then begin
            Hashtbl.replace seen id ();
            frontier := id :: !frontier
          end
      | None -> ())
    centers;
  for _ = 1 to radius do
    let next = ref [] in
    List.iter
      (fun id ->
        let visit v =
          if not (Hashtbl.mem seen v) then begin
            Hashtbl.replace seen v ();
            next := v :: !next
          end
        in
        List.iter (fun (e : Graph.edge) -> visit e.Graph.dst) (Graph.succs g id);
        List.iter (fun (e : Graph.edge) -> visit e.Graph.src) (Graph.preds g id))
      !frontier;
    frontier := !next
  done;
  let nodes = Hashtbl.fold (fun id () acc -> id :: acc) seen [] |> List.sort compare in
  let edges =
    List.concat_map
      (fun id ->
        List.filter (fun (e : Graph.edge) -> Hashtbl.mem seen e.Graph.dst) (Graph.succs g id))
      nodes
  in
  render g ~nodes ~edges ~bold_edges:[]

let of_paths g paths =
  let node_set = Hashtbl.create 64 in
  let edges = ref [] in
  List.iter
    (fun (p : Search.path) ->
      Hashtbl.replace node_set p.Search.source ();
      List.iter
        (fun (e : Graph.edge) ->
          Hashtbl.replace node_set e.Graph.src ();
          Hashtbl.replace node_set e.Graph.dst ();
          if not (List.memq e !edges) then edges := e :: !edges)
        p.Search.edges)
    paths;
  let bold = match paths with [] -> [] | p :: _ -> p.Search.edges in
  let nodes = Hashtbl.fold (fun id () acc -> id :: acc) node_set [] |> List.sort compare in
  render g ~nodes ~edges:(List.rev !edges) ~bold_edges:bold

let full g =
  let nodes = Graph.nodes g in
  let edges = ref [] in
  Graph.iter_edges g (fun e -> edges := e :: !edges);
  render g ~nodes ~edges:(List.rev !edges) ~bold_edges:[]
