module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Member = Javamodel.Member

type generated = {
  code : string;
  result_var : string;
  free_var_names : (string * Jtype.t) list;
}

let var_name_of_type ty =
  let simple = Jtype.simple_string ty in
  let simple =
    match String.index_opt simple '[' with
    | Some i -> String.sub simple 0 i ^ "s"
    | None -> simple
  in
  let simple =
    if
      String.length simple >= 2
      && simple.[0] = 'I'
      && simple.[1] = Char.uppercase_ascii simple.[1]
      && simple.[1] <> Char.lowercase_ascii simple.[1]
    then String.sub simple 1 (String.length simple - 1)
    else simple
  in
  if simple = "" then "v"
  else String.make 1 (Char.lowercase_ascii simple.[0])
       ^ String.sub simple 1 (String.length simple - 1)

type namer = {
  used : (string, int) Hashtbl.t;
}

let fresh namer base =
  match Hashtbl.find_opt namer.used base with
  | None ->
      Hashtbl.replace namer.used base 1;
      base
  | Some n ->
      Hashtbl.replace namer.used base (n + 1);
      Printf.sprintf "%s%d" base (n + 1)

let prim_default = function
  | Jtype.Boolean -> "false"
  | Jtype.Char -> "'\\0'"
  | Jtype.Float | Jtype.Double -> "0.0"
  | Jtype.Byte | Jtype.Short | Jtype.Int | Jtype.Long -> "0"

let generate ?input (j : Jungloid.t) =
  let namer = { used = Hashtbl.create 16 } in
  let buf = Buffer.create 256 in
  let frees = ref [] in
  let input_var =
    match (input, j.Jungloid.input) with
    | _, Jtype.Void -> ""
    | Some (name, _), _ ->
        Hashtbl.replace namer.used name 1;
        name
    | None, ty ->
        let name = fresh namer (var_name_of_type ty) in
        name
  in
  (* A free slot becomes either a default literal (primitives) or a declared
     variable the user must fill (references). *)
  let free_slot (pname, ty) =
    match ty with
    | Jtype.Prim p -> prim_default p
    | _ ->
        let base =
          if String.length pname > 0 && not (String.length pname > 3 && String.sub pname 0 3 = "arg")
          then pname
          else var_name_of_type ty
        in
        let v = fresh namer base in
        Buffer.add_string buf
          (Printf.sprintf "%s %s; // free variable\n" (Jtype.simple_string ty) v);
        frees := (v, ty) :: !frees;
        v
  in
  let render_args params ~input_slot ~expr =
    let arg i (pname, ty) =
      match input_slot with
      | Elem.Param j when i = j -> expr
      | _ -> free_slot (pname, ty)
    in
    "(" ^ String.concat ", " (List.mapi arg params) ^ ")"
  in
  let emit_stmt ty rhs =
    let v = fresh namer (var_name_of_type ty) in
    Buffer.add_string buf (Printf.sprintf "%s %s = %s;\n" (Jtype.simple_string ty) v rhs);
    v
  in
  let final_var =
    List.fold_left
      (fun cur e ->
        match e with
        | Elem.Widen _ -> cur
        | Elem.Downcast { to_; _ } ->
            emit_stmt to_ (Printf.sprintf "(%s) %s" (Jtype.simple_string to_) cur)
        | Elem.Field_access { owner; field } ->
            let rhs =
              if field.Member.fstatic then
                Printf.sprintf "%s.%s" (Qname.simple owner) field.Member.fname
              else Printf.sprintf "%s.%s" cur field.Member.fname
            in
            emit_stmt field.Member.ftype rhs
        | Elem.Static_call { owner; meth; input = slot } ->
            emit_stmt meth.Member.ret
              (Printf.sprintf "%s.%s%s" (Qname.simple owner) meth.Member.mname
                 (render_args meth.Member.params ~input_slot:slot ~expr:cur))
        | Elem.Ctor_call { owner; ctor; input = slot } ->
            emit_stmt (Jtype.ref_ owner)
              (Printf.sprintf "new %s%s" (Qname.simple owner)
                 (render_args ctor.Member.cparams ~input_slot:slot ~expr:cur))
        | Elem.Instance_call { owner; meth; input = slot } ->
            let recv =
              match slot with
              | Elem.Receiver -> cur
              | _ -> free_slot ("receiver", Jtype.ref_ owner)
            in
            emit_stmt meth.Member.ret
              (Printf.sprintf "%s.%s%s" recv meth.Member.mname
                 (render_args meth.Member.params ~input_slot:slot ~expr:cur)))
      input_var j.Jungloid.elems
  in
  { code = Buffer.contents buf; result_var = final_var; free_var_names = List.rev !frees }

let to_java ?input j = (generate ?input j).code
