(** Construction of the signature graph (Section 3.1).

    Every class declaration contributes its elementary jungloids as edges;
    widening conversions connect each type to its direct supertypes (and
    array types covariantly). Downcast edges are {e not} added — the paper
    shows (Figure 3) that doing so floods the graph with inviable jungloids;
    they arrive only via mined examples ({!Mining.Enrich}) — except in the
    explicit {!add_all_downcasts} mode used to reproduce Figure 3. *)

module Hierarchy = Javamodel.Hierarchy
module Decl = Javamodel.Decl

type config = {
  include_protected : bool;
      (** the paper's implementation "supports only public methods"; enabling
          this implements the extension discussed for the
          [(AbstractGraphicalEditPart, ConnectionLayer)] failure *)
  include_deprecated : bool;  (** include [@Deprecated] members *)
  restrict_obj_string_params : bool;
      (** Section 4.3: drop elementary jungloids whose input is an [Object]-
          or [String]-typed parameter; mined examples (Mining.Objparam)
          re-add the viable ones *)
}

val default_config : config
(** [include_protected = false], [include_deprecated = true],
    [restrict_obj_string_params = false] *)

val elems_of_decl : ?config:config -> Decl.t -> Elem.t list
(** The elementary jungloids contributed by one declaration, excluding
    widening (which is derived from the hierarchy, not the declaration).
    Elementary jungloids whose output is not a reference type are omitted —
    they cannot produce an object. *)

val build : ?config:config -> Hierarchy.t -> Graph.t
(** Build the signature graph for a whole hierarchy. *)

val add_all_downcasts : Graph.t -> Hierarchy.t -> int
(** Figure 3 mode: add a downcast edge from every real class node to every
    strict subtype node. Returns the number of edges added. Intended for
    small illustrative graphs only. *)
