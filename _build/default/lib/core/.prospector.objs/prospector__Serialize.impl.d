lib/core/serialize.ml: Array Bytes Elem Fun Graph Javamodel List Marshal Printf String
