lib/core/dot.ml: Buffer Elem Graph Hashtbl Javamodel List Printf Search String
