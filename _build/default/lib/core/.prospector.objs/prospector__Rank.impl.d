lib/core/rank.ml: Elem Javamodel Jungloid List String
