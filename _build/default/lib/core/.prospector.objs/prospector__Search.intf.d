lib/core/search.mli: Graph
