lib/core/stats.ml: Elem Format Graph List Sys
