lib/core/codegen.ml: Buffer Char Elem Hashtbl Javamodel Jungloid List Printf String
