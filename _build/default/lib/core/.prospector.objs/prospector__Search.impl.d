lib/core/search.ml: Array Elem Graph List
