lib/core/jungloid.mli: Elem Graph Javamodel Search
