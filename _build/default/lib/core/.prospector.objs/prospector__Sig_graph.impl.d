lib/core/sig_graph.ml: Elem Graph Javamodel List
