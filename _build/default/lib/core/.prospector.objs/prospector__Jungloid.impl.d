lib/core/jungloid.ml: Elem Graph Javamodel List Printf Search Stdlib String
