lib/core/elem.ml: Javamodel List Printf Stdlib String
