lib/core/codegen.mli: Javamodel Jungloid
