lib/core/query.ml: Array Codegen Elem Graph Hashtbl Javamodel Jungloid List Logs Option Rank Search String
