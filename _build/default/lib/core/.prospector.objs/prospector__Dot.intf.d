lib/core/dot.mli: Graph Javamodel Search
