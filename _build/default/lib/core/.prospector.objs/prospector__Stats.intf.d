lib/core/stats.mli: Format Graph
