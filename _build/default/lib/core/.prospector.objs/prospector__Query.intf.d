lib/core/query.mli: Graph Javamodel Jungloid Rank
