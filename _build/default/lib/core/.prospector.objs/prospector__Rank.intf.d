lib/core/rank.mli: Javamodel Jungloid
