lib/core/graph.mli: Elem Javamodel
