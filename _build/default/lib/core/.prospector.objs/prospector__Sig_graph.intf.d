lib/core/sig_graph.mli: Elem Graph Javamodel
