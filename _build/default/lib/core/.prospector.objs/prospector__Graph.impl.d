lib/core/graph.ml: Array Elem Hashtbl Javamodel List
