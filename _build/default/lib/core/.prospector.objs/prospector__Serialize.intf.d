lib/core/serialize.mli: Graph
