lib/core/assist.ml: Buffer Elem Javamodel Jungloid List Query Rank String
