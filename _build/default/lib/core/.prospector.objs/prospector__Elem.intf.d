lib/core/elem.mli: Javamodel
