lib/core/assist.mli: Graph Javamodel Query
