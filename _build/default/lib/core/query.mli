(** The query engine: from a [(tin, tout)] pair to a ranked list of code
    snippets (Sections 2 and 3).

    [run] performs the paper's pipeline: locate the [tin] and [tout] nodes,
    enumerate all acyclic paths of cost at most [m + slack], convert them to
    jungloids, deduplicate, rank, generate code. [run_multi] is the
    multi-source variant used by content assist: one search serves every
    visible variable (and the [void] pseudo-source) at once. *)

module Jtype = Javamodel.Jtype
module Hierarchy = Javamodel.Hierarchy

type t = {
  tin : Jtype.t;  (** may be [Void] for the zero-input query *)
  tout : Jtype.t;
}

val query : string -> string -> t
(** [query "org.x.IFile" "org.y.ASTNode"] — convenience constructor from
    dotted type names; ["void"] gives the zero-input query, a ["[]"] suffix
    an array type. *)

type settings = {
  slack : int;  (** extra path cost beyond the shortest; the paper uses 1 *)
  limit : int;  (** cap on enumerated paths *)
  max_results : int;  (** truncate the ranked list *)
  weights : Rank.weights;
  estimate_freevars : bool;
      (** replace the constant free-variable charge with each type's actual
          shortest production cost from the void node — the estimation the
          paper leaves as future work (default [false]) *)
}

val default_settings : settings
(** [slack = 1], [limit = 4096], [max_results = 10], default weights. *)

type result = {
  jungloid : Jungloid.t;
  key : Rank.key;
  code : string;  (** generated Java, input named after [tin] *)
}

val run :
  ?settings:settings -> graph:Graph.t -> hierarchy:Hierarchy.t -> t -> result list
(** Ranked solution jungloids; [[]] when [tin] or [tout] has no node or no
    path exists. *)

type multi_result = {
  source_var : string option;  (** [None] for the [void] source *)
  result : result;
}

type cluster = {
  representative : result;  (** the best-ranked member *)
  members : int;
  type_path : string;  (** e.g. ["IWorkspace > IWorkspaceRoot > IFile"] *)
}

val cluster : result list -> cluster list
(** Group results by the sequence of types their chains pass through
    (ignoring which member produced each step) and keep one representative
    per group — the "clusters of similar jungloids" presentation the paper
    proposes as future work for crowded queries like (IWorkspace, IFile).
    Order follows the best member of each cluster. *)

val run_multi :
  ?settings:settings ->
  graph:Graph.t ->
  hierarchy:Hierarchy.t ->
  vars:(string * Jtype.t) list ->
  tout:Jtype.t ->
  unit ->
  multi_result list
(** One multi-source search from all [vars] plus [void]; each result's code
    references the variable it starts from. The ranked order interleaves all
    sources. *)
