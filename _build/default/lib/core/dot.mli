(** Graphviz (DOT) export, used to regenerate the paper's graph figures
    (Figures 1, 3, and 6).

    Real type nodes are labeled with their simple names; typestate nodes
    with [Type-k] (the paper's [Object-1]) and a dashed border. Widening
    edges are drawn dotted (they have no syntax), downcast edges bold. *)

module Jtype = Javamodel.Jtype

val subgraph : Graph.t -> centers:Jtype.t list -> radius:int -> string
(** The neighborhood within [radius] edges (in either direction) of any
    center type. *)

val of_paths : Graph.t -> Search.path list -> string
(** Exactly the nodes and edges of the given paths (Figure 1 bold-face
    style: the first path is emphasized). *)

val full : Graph.t -> string
