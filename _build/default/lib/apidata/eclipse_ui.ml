let swt_widgets =
  {|
package org.eclipse.swt.widgets;

abstract class Widget {
  org.eclipse.swt.widgets.Display getDisplay();
  void dispose();
  boolean isDisposed();
  Object getData();
  void setData(Object data);
}

abstract class Item extends Widget {
  String getText();
  void setText(String text);
}

abstract class Control extends Widget {
  org.eclipse.swt.widgets.Shell getShell();
  org.eclipse.swt.widgets.Composite getParent();
  void setVisible(boolean visible);
  boolean setFocus();
  void redraw();
}

abstract class Scrollable extends Control {
}

class Composite extends Scrollable {
  Composite(org.eclipse.swt.widgets.Composite parent, int style);
  org.eclipse.swt.widgets.Control[] getChildren();
  void layout();
}

class Canvas extends Composite {
  Canvas(org.eclipse.swt.widgets.Composite parent, int style);
}

class Decorations extends Canvas {
  String getText();
}

class Shell extends Decorations {
  Shell(org.eclipse.swt.widgets.Display display);
  Shell(org.eclipse.swt.widgets.Shell parent);
  void open();
  void close();
  void pack();
}

class Display {
  Display();
  static org.eclipse.swt.widgets.Display getDefault();
  static org.eclipse.swt.widgets.Display getCurrent();
  org.eclipse.swt.widgets.Shell getActiveShell();
  org.eclipse.swt.widgets.Shell[] getShells();
  void dispose();
}

class Table extends Composite {
  Table(org.eclipse.swt.widgets.Composite parent, int style);
  org.eclipse.swt.widgets.TableColumn getColumn(int index);
  org.eclipse.swt.widgets.TableColumn[] getColumns();
  org.eclipse.swt.widgets.TableItem getItem(int index);
  org.eclipse.swt.widgets.TableItem[] getItems();
  int getItemCount();
}

class TableColumn extends Item {
  TableColumn(org.eclipse.swt.widgets.Table parent, int style);
  int getWidth();
  void setWidth(int width);
}

class TableItem extends Item {
  TableItem(org.eclipse.swt.widgets.Table parent, int style);
}

class MessageBox {
  MessageBox(org.eclipse.swt.widgets.Shell parent, int style);
  int open();
  void setMessage(String message);
  void setText(String text);
}
|}

let swt_events =
  {|
package org.eclipse.swt.events;

class TypedEvent extends java.util.EventObject {
  org.eclipse.swt.widgets.Widget widget;
  org.eclipse.swt.widgets.Display display;
  int time;
}

class KeyEvent extends TypedEvent {
  char character;
  int keyCode;
  int stateMask;
}

class MouseEvent extends TypedEvent {
  int button;
  int x;
  int y;
}
|}

let swt_graphics =
  {|
package org.eclipse.swt.graphics;

class Image {
  Image(org.eclipse.swt.widgets.Display display, String filename);
  Image(org.eclipse.swt.widgets.Display display, java.io.InputStream stream);
  org.eclipse.swt.graphics.Rectangle getBounds();
  void dispose();
}

class Rectangle {
  Rectangle(int x, int y, int width, int height);
  int width;
  int height;
}
|}

let jface_viewers =
  {|
package org.eclipse.jface.viewers;

abstract class Viewer {
  org.eclipse.swt.widgets.Control getControl();
  Object getInput();
  void setInput(Object input);
  org.eclipse.jface.viewers.ISelection getSelection();
  void refresh();
}

abstract class ContentViewer extends Viewer {
}

abstract class StructuredViewer extends ContentViewer {
  void addSelectionChangedListener(org.eclipse.jface.viewers.ISelectionChangedListener listener);
}

class TableViewer extends StructuredViewer {
  TableViewer(org.eclipse.swt.widgets.Composite parent);
  TableViewer(org.eclipse.swt.widgets.Table table);
  org.eclipse.swt.widgets.Table getTable();
}

class TreeViewer extends StructuredViewer {
  TreeViewer(org.eclipse.swt.widgets.Composite parent);
}

interface ISelection {
  boolean isEmpty();
}

interface IStructuredSelection extends ISelection {
  Object getFirstElement();
  int size();
  java.util.List toList();
  java.util.Iterator iterator();
}

class StructuredSelection implements IStructuredSelection {
  StructuredSelection(Object element);
  StructuredSelection(java.util.List elements);
}

interface ISelectionProvider {
  org.eclipse.jface.viewers.ISelection getSelection();
  void addSelectionChangedListener(org.eclipse.jface.viewers.ISelectionChangedListener listener);
}

interface ISelectionChangedListener {
  void selectionChanged(org.eclipse.jface.viewers.SelectionChangedEvent event);
}

class SelectionChangedEvent extends java.util.EventObject {
  SelectionChangedEvent(org.eclipse.jface.viewers.ISelectionProvider source, org.eclipse.jface.viewers.ISelection selection);
  org.eclipse.jface.viewers.ISelection getSelection();
  org.eclipse.jface.viewers.ISelectionProvider getSelectionProvider();
}
|}

let jface_resource =
  {|
package org.eclipse.jface.resource;

class ImageRegistry {
  ImageRegistry();
  org.eclipse.swt.graphics.Image get(String key);
  org.eclipse.jface.resource.ImageDescriptor getDescriptor(String key);
  void put(String key, org.eclipse.jface.resource.ImageDescriptor descriptor);
}

abstract class ImageDescriptor {
  static org.eclipse.jface.resource.ImageDescriptor createFromImage(org.eclipse.swt.graphics.Image img);
  static org.eclipse.jface.resource.ImageDescriptor createFromURL(java.net.URL url);
  static org.eclipse.jface.resource.ImageDescriptor createFromFile(Class location, String filename);
  org.eclipse.swt.graphics.Image createImage();
}

class JFaceResources {
  static org.eclipse.jface.resource.ImageRegistry getImageRegistry();
  static String getString(String key);
}
|}

(* Liberty: the real IActionBars.getMenuManager() returns the IMenuManager
   interface; we return the concrete MenuManager so that Table 1's
   (IViewPart, MenuManager) query matches the paper's row as written. *)
let jface_action =
  {|
package org.eclipse.jface.action;

class MenuManager {
  MenuManager();
  MenuManager(String text);
  void add(org.eclipse.jface.action.IAction action);
  void update(boolean force);
}

class ToolBarManager {
  ToolBarManager();
  void add(org.eclipse.jface.action.IAction action);
}

class StatusLineManager {
  StatusLineManager();
  void setMessage(String message);
}

interface IAction {
  void run();
  String getText();
  void setText(String text);
}
|}

let workbench =
  {|
package org.eclipse.ui;

interface IWorkbench {
  org.eclipse.ui.IWorkbenchWindow getActiveWorkbenchWindow();
  org.eclipse.ui.IWorkbenchWindow[] getWorkbenchWindows();
  org.eclipse.swt.widgets.Display getDisplay();
  org.eclipse.ui.ISharedImages getSharedImages();
  boolean close();
}

class PlatformUI {
  static org.eclipse.ui.IWorkbench getWorkbench();
}

interface IWorkbenchWindow {
  org.eclipse.ui.IWorkbenchPage getActivePage();
  org.eclipse.ui.IWorkbenchPage[] getPages();
  org.eclipse.swt.widgets.Shell getShell();
  org.eclipse.ui.IWorkbench getWorkbench();
  org.eclipse.ui.ISelectionService getSelectionService();
  org.eclipse.ui.IPartService getPartService();
}

interface IWorkbenchPage {
  org.eclipse.ui.IEditorPart getActiveEditor();
  org.eclipse.ui.IWorkbenchPart getActivePart();
  org.eclipse.jface.viewers.ISelection getSelection();
  org.eclipse.jface.viewers.ISelection getSelection(String partId);
  org.eclipse.ui.IViewPart findView(String viewId);
  org.eclipse.ui.IViewPart showView(String viewId);
  org.eclipse.ui.IEditorReference[] getEditorReferences();
  org.eclipse.ui.IViewReference[] getViewReferences();
  org.eclipse.ui.IWorkbenchWindow getWorkbenchWindow();
  boolean closeEditor(org.eclipse.ui.IEditorPart editor, boolean save);
}

interface IWorkbenchSite extends org.eclipse.core.runtime.IAdaptable {
  org.eclipse.ui.IWorkbenchPage getPage();
  org.eclipse.swt.widgets.Shell getShell();
  org.eclipse.ui.IWorkbenchWindow getWorkbenchWindow();
  org.eclipse.jface.viewers.ISelectionProvider getSelectionProvider();
}

interface IWorkbenchPartSite extends IWorkbenchSite {
  String getId();
  String getPluginId();
}

interface IWorkbenchPart extends org.eclipse.core.runtime.IAdaptable {
  org.eclipse.ui.IWorkbenchPartSite getSite();
  String getTitle();
  void setFocus();
}

interface IEditorPart extends IWorkbenchPart {
  org.eclipse.ui.IEditorInput getEditorInput();
  org.eclipse.ui.IEditorSite getEditorSite();
  boolean isDirty();
  void doSave(org.eclipse.core.runtime.IProgressMonitor monitor);
}

interface IEditorSite extends IWorkbenchPartSite {
  org.eclipse.ui.IActionBars getActionBars();
}

interface IViewPart extends IWorkbenchPart {
  org.eclipse.ui.IViewSite getViewSite();
}

interface IViewSite extends IWorkbenchPartSite {
  org.eclipse.ui.IActionBars getActionBars();
}

interface IActionBars {
  org.eclipse.jface.action.MenuManager getMenuManager();
  org.eclipse.jface.action.ToolBarManager getToolBarManager();
  org.eclipse.jface.action.StatusLineManager getStatusLineManager();
}

interface IEditorInput extends org.eclipse.core.runtime.IAdaptable {
  String getName();
  boolean exists();
  String getToolTipText();
}

interface IFileEditorInput extends IEditorInput {
  org.eclipse.core.resources.IFile getFile();
}

class FileEditorInput implements IFileEditorInput {
  FileEditorInput(org.eclipse.core.resources.IFile file);
}

interface ISelectionService {
  org.eclipse.jface.viewers.ISelection getSelection();
  org.eclipse.jface.viewers.ISelection getSelection(String partId);
}

interface IPartService {
  org.eclipse.ui.IWorkbenchPart getActivePart();
}

interface IEditorReference {
  org.eclipse.ui.IEditorPart getEditor(boolean restore);
  String getTitle();
}

interface IViewReference {
  org.eclipse.ui.IViewPart getView(boolean restore);
}

interface ISharedImages {
  org.eclipse.swt.graphics.Image getImage(String symbolicName);
  org.eclipse.jface.resource.ImageDescriptor getImageDescriptor(String symbolicName);
}
|}

let workbench_part =
  {|
package org.eclipse.ui.part;

abstract class WorkbenchPart implements org.eclipse.ui.IWorkbenchPart {
}

abstract class EditorPart extends WorkbenchPart implements org.eclipse.ui.IEditorPart {
}

abstract class ViewPart extends WorkbenchPart implements org.eclipse.ui.IViewPart {
}
|}

(* XMLEditor is the Section 3.2 anecdote: a too-specific editor subclass
   whose jungloids should rank below ones returning IEditorPart itself. *)
let editors =
  {|
package org.eclipse.ui.editors.xml;

class XMLEditor extends org.eclipse.ui.part.EditorPart {
  XMLEditor(org.eclipse.swt.widgets.Composite parent);
}
|}

let texteditor =
  {|
package org.eclipse.ui.texteditor;

interface ITextEditor extends org.eclipse.ui.IEditorPart {
  org.eclipse.ui.texteditor.IDocumentProvider getDocumentProvider();
  void close(boolean save);
}

interface IDocumentProvider {
  org.eclipse.jface.text.IDocument getDocument(Object element);
  void connect(Object element);
}

class DocumentProviderRegistry {
  static org.eclipse.ui.texteditor.DocumentProviderRegistry getDefault();
  org.eclipse.ui.texteditor.IDocumentProvider getDocumentProvider(org.eclipse.ui.IEditorInput input);
  org.eclipse.ui.texteditor.IDocumentProvider getDocumentProvider(String extension);
}
|}

let jface_text =
  {|
package org.eclipse.jface.text;

interface IDocument {
  String get();
  int getLength();
  void set(String text);
}

class Document implements IDocument {
  Document(String initialContent);
}
|}

let ui_plugin =
  {|
package org.eclipse.ui.plugin;

abstract class AbstractUIPlugin {
  org.eclipse.jface.resource.ImageRegistry getImageRegistry();
  org.eclipse.jface.preference.IPreferenceStore getPreferenceStore();
}
|}

let jface_preference =
  {|
package org.eclipse.jface.preference;

interface IPreferenceStore {
  String getString(String name);
  boolean getBoolean(String name);
}
|}

let sources =
  [
    ("org.eclipse.swt.widgets", swt_widgets);
    ("org.eclipse.swt.events", swt_events);
    ("org.eclipse.swt.graphics", swt_graphics);
    ("org.eclipse.jface.viewers", jface_viewers);
    ("org.eclipse.jface.resource", jface_resource);
    ("org.eclipse.jface.action", jface_action);
    ("org.eclipse.ui", workbench);
    ("org.eclipse.ui.part", workbench_part);
    ("org.eclipse.ui.editors.xml", editors);
    ("org.eclipse.ui.texteditor", texteditor);
    ("org.eclipse.jface.text", jface_text);
    ("org.eclipse.ui.plugin", ui_plugin);
    ("org.eclipse.jface.preference", jface_preference);
  ]
