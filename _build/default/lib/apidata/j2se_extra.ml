(* Additional J2SE 1.4 breadth: realistic neighborhoods that are not on any
   Table 1 query path, included so the graph has production-like size and
   fan-out (distractors for the search, grist for the scaling benches). *)

let java_text =
  {|
package java.text;

abstract class Format {
  String format(Object obj);
  Object parseObject(String source);
}

abstract class DateFormat extends Format {
  static java.text.DateFormat getDateInstance();
  static java.text.DateFormat getTimeInstance();
  java.util.Date parse(String source);
  String format(java.util.Date date);
}

class SimpleDateFormat extends DateFormat {
  SimpleDateFormat(String pattern);
  void applyPattern(String pattern);
}

abstract class NumberFormat extends Format {
  static java.text.NumberFormat getInstance();
  static java.text.NumberFormat getCurrencyInstance();
}

class DecimalFormat extends NumberFormat {
  DecimalFormat(String pattern);
}

class MessageFormat extends Format {
  MessageFormat(String pattern);
  static String format(String pattern, Object[] arguments);
}

class Collator {
  static java.text.Collator getInstance();
  int compare(String source, String target);
}
|}

let java_util_zip =
  {|
package java.util.zip;

class ZipFile {
  ZipFile(String name);
  ZipFile(java.io.File file);
  java.util.Enumeration entries();
  java.util.zip.ZipEntry getEntry(String name);
  java.io.InputStream getInputStream(java.util.zip.ZipEntry entry);
  void close();
}

class ZipEntry {
  ZipEntry(String name);
  String getName();
  long getSize();
  boolean isDirectory();
}

class ZipInputStream extends java.io.InputStream {
  ZipInputStream(java.io.InputStream in);
  java.util.zip.ZipEntry getNextEntry();
}

class GZIPInputStream extends java.io.InputStream {
  GZIPInputStream(java.io.InputStream in);
}

class Deflater {
  Deflater();
  Deflater(int level);
}
|}

let java_util_extra =
  {|
package java.util;

class Date {
  Date();
  Date(long time);
  long getTime();
}

class Calendar {
  static java.util.Calendar getInstance();
  java.util.Date getTime();
  void setTime(java.util.Date date);
}

class GregorianCalendar extends Calendar {
  GregorianCalendar();
}

class Random {
  Random();
  Random(long seed);
  int nextInt(int bound);
}

class TreeMap implements Map {
  TreeMap();
  Object firstKey();
}

class TreeSet implements Set {
  TreeSet();
  Object first();
}

class Stack extends Vector {
  Stack();
  Object push(Object item);
  Object pop();
  Object peek();
}

class BitSet {
  BitSet(int nbits);
  void set(int bitIndex);
  boolean get(int bitIndex);
}

class Observable {
  void addObserver(java.util.Observer o);
  void notifyObservers(Object arg);
}

interface Observer {
  void update(java.util.Observable o, Object arg);
}
|}

let java_lang_reflect =
  {|
package java.lang.reflect;

class Method {
  String getName();
  Class getReturnType();
  Class[] getParameterTypes();
  Object invoke(Object obj, Object[] args);
}

class Field {
  String getName();
  Class getType();
  Object get(Object obj);
}

class Constructor {
  Class[] getParameterTypes();
  Object newInstance(Object[] initargs);
}

class Modifier {
  static boolean isPublic(int mod);
  static boolean isStatic(int mod);
}
|}

let sources =
  [
    ("java.text", java_text);
    ("java.util.zip", java_util_zip);
    ("java.util-extra", java_util_extra);
    ("java.lang.reflect", java_lang_reflect);
  ]
