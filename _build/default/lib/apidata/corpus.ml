(* Transcriptions of real Eclipse client idioms into the mini-Java corpus
   language. Each method exists to donate one or more example jungloids;
   together they cover every downcast the Table 1 queries need, plus
   distractor casts that exercise the generalization algorithm's
   keep-enough-suffix rule. *)

(* Figure 4 of the paper, verbatim (modulo mini-Java syntax). *)
let debugger_selection =
  {|
package corpus.debug;

class ObjectContextFinder {
  protected Object getObjectContext() {
    IWorkbenchPage page = JDIDebugUIPlugin.getActivePage();
    IWorkbenchPart activePart = page.getActivePart();
    IDebugView view = (IDebugView) activePart.getAdapter(IDebugView.class);
    ISelection s = view.getViewer().getSelection();
    IStructuredSelection sel = (IStructuredSelection) s;
    Object selection = sel.getFirstElement();
    JavaInspectExpression var = (JavaInspectExpression) selection;
    return var;
  }
}
|}

(* Selection idioms: IWorkbenchPage / ISelectionService / viewer selections
   are IStructuredSelection at run time in list-like parts. *)
let selection_idioms =
  {|
package corpus.selection;

class PageSelectionReader {
  Object readSelected(IWorkbenchPage page) {
    IStructuredSelection sel = (IStructuredSelection) page.getSelection();
    return sel.getFirstElement();
  }
}

class ServiceSelectionReader {
  Object readSelected(IWorkbenchWindow window) {
    ISelectionService service = window.getSelectionService();
    IStructuredSelection sel = (IStructuredSelection) service.getSelection();
    return sel.getFirstElement();
  }
}

class EventSelectionReader {
  Object readSelected(SelectionChangedEvent event) {
    IStructuredSelection sel = (IStructuredSelection) event.getSelection();
    return sel.getFirstElement();
  }
}

class SelectedResourceFinder {
  IResource findResource(SelectionChangedEvent event) {
    IStructuredSelection sel = (IStructuredSelection) event.getSelection();
    IResource res = (IResource) sel.getFirstElement();
    return res;
  }
}
|}

(* Editor idioms: the active editor of a Java/text page is an ITextEditor;
   its input is file-backed. *)
let editor_idioms =
  {|
package corpus.editor;

class ActiveTextEditorFinder {
  ITextEditor find(IWorkbenchPage page) {
    IEditorPart part = page.getActiveEditor();
    ITextEditor editor = (ITextEditor) part;
    return editor;
  }
}

class EditorFileFinder {
  IFile fileOf(IEditorPart editor) {
    IEditorInput input = editor.getEditorInput();
    IFileEditorInput fileInput = (IFileEditorInput) input;
    return fileInput.getFile();
  }
}

class ActiveViewFinder {
  IViewPart find(IWorkbenchPage page) {
    IWorkbenchPart part = page.getActivePart();
    IViewPart view = (IViewPart) part;
    return view;
  }
}
|}

(* Resource idioms: findMember returns IResource; callers cast to the
   concrete handle they expect. The two different casts sharing the
   findMember suffix exercise the generalization constraint. *)
let resource_idioms =
  {|
package corpus.resources;

class WorkspaceFileFinder {
  IFile find(IWorkspace workspace, String name) {
    IWorkspaceRoot root = workspace.getRoot();
    IResource member = root.findMember(name);
    IFile file = (IFile) member;
    return file;
  }
}

class WorkspaceFolderFinder {
  IFolder find(IWorkspace workspace, String name) {
    IWorkspaceRoot root = workspace.getRoot();
    IResource member = root.findMember(name);
    IFolder folder = (IFolder) member;
    return folder;
  }
}

class MarkerFileReader {
  IFile fileOf(IMarker marker) {
    IResource res = marker.getResource();
    IFile file = (IFile) res;
    return file;
  }
}
|}

(* GEF idioms: the control of a graphical viewer is a FigureCanvas; layers
   come back from the protected getLayer. *)
let gef_idioms =
  {|
package corpus.gef;

class CanvasFinder {
  FigureCanvas canvasOf(ScrollingGraphicalViewer viewer) {
    Control control = viewer.getControl();
    FigureCanvas canvas = (FigureCanvas) control;
    return canvas;
  }
}

class RoutingEditPart extends AbstractGraphicalEditPart {
  protected void refreshRouting() {
    ConnectionLayer layer = (ConnectionLayer) getLayer(LayerConstants.CONNECTION_LAYER);
    layer.setConnectionRouter(new ManhattanConnectionRouter());
  }
}
|}

(* Model-object idioms: structured selections and viewer inputs hold
   model objects; GEF edit parts hold model objects too. These donate the
   examples the Section 4.3 Object-parameter mining consumes. *)
let model_idioms =
  {|
package corpus.model;

class CompilationUnitOpener {
  ICompilationUnit openSelected(IWorkbenchPage page) {
    IStructuredSelection sel = (IStructuredSelection) page.getSelection();
    Object first = sel.getFirstElement();
    ICompilationUnit unit = (ICompilationUnit) first;
    return unit;
  }
}

class ViewerInputReader {
  IJavaElement elementOf(Viewer viewer) {
    Object input = viewer.getInput();
    IJavaElement element = (IJavaElement) input;
    return element;
  }
}

class DocumentFetcher {
  IDocument fetch(ITextEditor editor) {
    IDocumentProvider provider = editor.getDocumentProvider();
    IDocument document = provider.getDocument(editor.getEditorInput());
    return document;
  }
}
|}

(* Cross-method flows: a helper produces the selection which another class
   casts — exercising interprocedural extraction through client inlining. *)
let helper_flows =
  {|
package corpus.helpers;

class SelectionHelper {
  static ISelection currentSelection(IWorkbench workbench) {
    IWorkbenchWindow window = workbench.getActiveWorkbenchWindow();
    IWorkbenchPage page = window.getActivePage();
    return page.getSelection();
  }
}

class WorkbenchSelectionReader {
  Object read(IWorkbench workbench) {
    ISelection s = SelectionHelper.currentSelection(workbench);
    IStructuredSelection sel = (IStructuredSelection) s;
    return sel.getFirstElement();
  }
}
|}

(* Legacy-collections idioms (Section 4.1: "Many existing APIs require
   downcasts because they use legacy collections instead of Java 5
   Generics"): Enumeration/List elements cast to their runtime types. *)
let legacy_collections =
  {|
package corpus.legacy;

class ZipLister {
  void list(ZipFile zip) {
    Enumeration entries = zip.entries();
    if (entries.hasMoreElements()) {
      ZipEntry entry = (ZipEntry) entries.nextElement();
      entry.getName();
    }
  }
}

class PropertyReader {
  String firstName(Properties props) {
    Enumeration names = props.propertyNames();
    String name = (String) names.nextElement();
    return name;
  }
}

class SelectionListReader {
  IResource firstResource(IStructuredSelection selection) {
    List elements = selection.toList();
    IResource first = (IResource) elements.get(0);
    return first;
  }
}

class VectorReader {
  IFile firstFile(Vector files) {
    IFile file = (IFile) files.elementAt(0);
    return file;
  }
}
|}

(* Stateful idioms: values cached in instance fields and read elsewhere
   (flow-insensitive field def-use), and enumerations drained in while
   loops. *)
let stateful_idioms =
  {|
package corpus.stateful;

class SelectionCache {
  ISelection cached;

  void record(IWorkbenchPage page) {
    cached = page.getSelection();
  }

  Object read() {
    IStructuredSelection sel = (IStructuredSelection) cached;
    return sel.getFirstElement();
  }
}

class EnumerationDrainer {
  void drain(ZipFile zip) {
    Enumeration en = zip.entries();
    while (en.hasMoreElements()) {
      ZipEntry entry = (ZipEntry) en.nextElement();
      entry.getSize();
    }
  }
}
|}

(* Resource-change idioms: deltas carry IResource handles whose concrete
   kind the listener knows. *)
let delta_idioms =
  {|
package corpus.delta;

class ChangedFileCollector implements IResourceChangeListener {
  public void resourceChanged(IResourceChangeEvent event) {
    IResourceDelta delta = event.getDelta();
    IFile file = (IFile) delta.getResource();
    file.getName();
  }
}

class ProjectChangeWatcher {
  IProject projectOf(IResourceDelta delta) {
    IResource res = delta.getResource();
    IProject project = (IProject) res;
    return project;
  }
}
|}

(* DOM idioms: Node-returning traversals whose results are Elements at run
   time — the XML flavor of the selection downcasts. *)
let dom_idioms =
  {|
package corpus.xml;

class ElementWalker {
  Element firstChildElement(org.w3c.dom.Document doc) {
    Element root = doc.getDocumentElement();
    Node child = root.getFirstChild();
    Element elem = (Element) child;
    return elem;
  }
}

class TagFinder {
  Element firstByTag(Element root, String tag) {
    NodeList nodes = root.getElementsByTagName(tag);
    Element first = (Element) nodes.item(0);
    return first;
  }
}
|}

(* Swing idioms: the model interfaces return Object; clients cast to the
   concrete node/model classes they populated. *)
let swing_idioms =
  {|
package corpus.swing;

class TreeSelectionReader {
  Object selectedUserObject(JTree tree) {
    TreePath path = tree.getSelectionPath();
    Object last = path.getLastPathComponent();
    DefaultMutableTreeNode node = (DefaultMutableTreeNode) last;
    return node.getUserObject();
  }
}

class TableModelEditor {
  DefaultTableModel editableModel(JTable table) {
    TableModel model = table.getModel();
    DefaultTableModel editable = (DefaultTableModel) model;
    return editable;
  }
}

class ListItemReader {
  String itemAt(JList list, int i) {
    ListModel model = list.getModel();
    String item = (String) model.getElementAt(i);
    return item;
  }
}
|}

let sources =
  [
    ("corpus/debugger_selection.java", debugger_selection);
    ("corpus/selection_idioms.java", selection_idioms);
    ("corpus/editor_idioms.java", editor_idioms);
    ("corpus/resource_idioms.java", resource_idioms);
    ("corpus/gef_idioms.java", gef_idioms);
    ("corpus/model_idioms.java", model_idioms);
    ("corpus/helper_flows.java", helper_flows);
    ("corpus/legacy_collections.java", legacy_collections);
    ("corpus/stateful_idioms.java", stateful_idioms);
    ("corpus/delta_idioms.java", delta_idioms);
    ("corpus/dom_idioms.java", dom_idioms);
    ("corpus/swing_idioms.java", swing_idioms);
  ]
