(** Additional J2SE 1.4 breadth ([java.text], [java.util.zip], more
    [java.util], [java.lang.reflect]) — off the Table 1 query paths, for
    production-like graph size. *)

val sources : (string * string) list
