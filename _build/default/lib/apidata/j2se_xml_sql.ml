(* JDBC and XML/DOM: two more J2SE 1.4 domains with classic jungloid shape —
   DriverManager.getConnection is a hidden static link, and the DOM's
   Node-based API is downcast-heavy (getFirstChild/item return Node, clients
   cast to Element), feeding the miner exactly as Eclipse's selections do. *)

let java_sql =
  {|
package java.sql;

class DriverManager {
  static java.sql.Connection getConnection(String url);
  static java.sql.Connection getConnection(String url, String user, String password);
}

interface Connection {
  java.sql.Statement createStatement();
  java.sql.PreparedStatement prepareStatement(String sql);
  java.sql.DatabaseMetaData getMetaData();
  void close();
  void commit();
}

interface Statement {
  java.sql.ResultSet executeQuery(String sql);
  int executeUpdate(String sql);
  void close();
}

interface PreparedStatement extends Statement {
  java.sql.ResultSet executeQuery();
  void setString(int parameterIndex, String x);
}

interface ResultSet {
  boolean next();
  String getString(int columnIndex);
  String getString(String columnName);
  int getInt(int columnIndex);
  Object getObject(int columnIndex);
  java.sql.ResultSetMetaData getMetaData();
  void close();
}

interface ResultSetMetaData {
  int getColumnCount();
  String getColumnName(int column);
}

interface DatabaseMetaData {
  String getDatabaseProductName();
  java.sql.ResultSet getTables(String catalog, String schemaPattern, String tableNamePattern, String[] types);
}

class SQLException extends java.lang.Exception {
  SQLException(String reason);
  int getErrorCode();
}
|}

let javax_xml_parsers =
  {|
package javax.xml.parsers;

abstract class DocumentBuilderFactory {
  static javax.xml.parsers.DocumentBuilderFactory newInstance();
  javax.xml.parsers.DocumentBuilder newDocumentBuilder();
  void setValidating(boolean validating);
}

abstract class DocumentBuilder {
  org.w3c.dom.Document parse(String uri);
  org.w3c.dom.Document parse(java.io.File f);
  org.w3c.dom.Document parse(java.io.InputStream is);
  org.w3c.dom.Document newDocument();
}

abstract class SAXParserFactory {
  static javax.xml.parsers.SAXParserFactory newInstance();
  javax.xml.parsers.SAXParser newSAXParser();
}

abstract class SAXParser {
  void parse(java.io.InputStream is, org.xml.sax.helpers.DefaultHandler dh);
}
|}

let org_w3c_dom =
  {|
package org.w3c.dom;

interface Node {
  String getNodeName();
  String getNodeValue();
  org.w3c.dom.Node getFirstChild();
  org.w3c.dom.Node getNextSibling();
  org.w3c.dom.Node getParentNode();
  org.w3c.dom.NodeList getChildNodes();
  org.w3c.dom.Document getOwnerDocument();
  short getNodeType();
}

interface Element extends Node {
  String getTagName();
  String getAttribute(String name);
  org.w3c.dom.NodeList getElementsByTagName(String name);
}

interface Document extends Node {
  org.w3c.dom.Element getDocumentElement();
  org.w3c.dom.NodeList getElementsByTagName(String tagname);
  org.w3c.dom.Element createElement(String tagName);
  org.w3c.dom.Text createTextNode(String data);
}

interface Text extends Node {
  String getData();
}

interface Attr extends Node {
  String getValue();
}

interface NodeList {
  org.w3c.dom.Node item(int index);
  int getLength();
}
|}

let org_xml_sax =
  {|
package org.xml.sax.helpers;

class DefaultHandler {
  DefaultHandler();
}
|}

let sources =
  [
    ("java.sql", java_sql);
    ("javax.xml.parsers", javax_xml_parsers);
    ("org.w3c.dom", org_w3c_dom);
    ("org.xml.sax.helpers", org_xml_sax);
  ]
