lib/apidata/study.ml: Javamodel List Option Prospector String
