lib/apidata/eclipse_extra.mli:
