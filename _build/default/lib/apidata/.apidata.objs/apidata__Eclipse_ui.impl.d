lib/apidata/eclipse_ui.ml:
