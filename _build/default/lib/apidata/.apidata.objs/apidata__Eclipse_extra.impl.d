lib/apidata/eclipse_extra.ml:
