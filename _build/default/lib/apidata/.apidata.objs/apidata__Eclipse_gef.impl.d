lib/apidata/eclipse_gef.ml:
