lib/apidata/corpus.ml:
