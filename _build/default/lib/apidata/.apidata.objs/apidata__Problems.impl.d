lib/apidata/problems.ml: List Option Prospector String Unix
