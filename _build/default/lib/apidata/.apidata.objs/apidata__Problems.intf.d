lib/apidata/problems.mli: Javamodel Prospector
