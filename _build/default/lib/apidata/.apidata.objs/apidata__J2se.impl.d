lib/apidata/j2se.ml:
