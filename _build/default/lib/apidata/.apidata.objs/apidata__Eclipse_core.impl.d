lib/apidata/eclipse_core.ml:
