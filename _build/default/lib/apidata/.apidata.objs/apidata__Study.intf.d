lib/apidata/study.mli: Javamodel Prospector
