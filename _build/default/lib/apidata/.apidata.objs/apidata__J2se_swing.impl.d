lib/apidata/j2se_swing.ml:
