lib/apidata/j2se_extra.mli:
