lib/apidata/j2se.mli:
