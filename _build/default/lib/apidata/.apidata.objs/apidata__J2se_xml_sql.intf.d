lib/apidata/j2se_xml_sql.mli:
