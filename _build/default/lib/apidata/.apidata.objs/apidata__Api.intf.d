lib/apidata/api.mli: Javamodel Minijava Mining Prospector
