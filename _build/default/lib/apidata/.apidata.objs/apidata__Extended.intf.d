lib/apidata/extended.mli: Javamodel Prospector
