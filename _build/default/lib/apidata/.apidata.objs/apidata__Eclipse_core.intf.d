lib/apidata/eclipse_core.mli:
