lib/apidata/api.ml: Corpus Eclipse_core Eclipse_extra Eclipse_gef Eclipse_ui J2se J2se_extra J2se_swing J2se_xml_sql Japi Javamodel Minijava Mining Prospector
