lib/apidata/eclipse_gef.mli:
