lib/apidata/corpus.mli:
