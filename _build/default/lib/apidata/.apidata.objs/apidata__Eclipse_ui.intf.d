lib/apidata/eclipse_ui.mli:
