lib/apidata/extended.ml: List Option Prospector String Unix
