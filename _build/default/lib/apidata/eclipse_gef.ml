let draw2d =
  {|
package org.eclipse.draw2d;

interface IFigure {
  java.util.List getChildren();
  org.eclipse.draw2d.IFigure getParent();
  void add(org.eclipse.draw2d.IFigure figure);
  void repaint();
}

class Figure implements IFigure {
  Figure();
}

class Layer extends Figure {
  Layer();
}

class ConnectionLayer extends Layer {
  ConnectionLayer();
  void setConnectionRouter(org.eclipse.draw2d.ConnectionRouter router);
}

class FreeformLayer extends Layer {
  FreeformLayer();
}

interface ConnectionRouter {
}

class ManhattanConnectionRouter implements ConnectionRouter {
  ManhattanConnectionRouter();
}

class FigureCanvas extends org.eclipse.swt.widgets.Canvas {
  FigureCanvas(org.eclipse.swt.widgets.Composite parent);
  org.eclipse.draw2d.Viewport getViewport();
  org.eclipse.draw2d.IFigure getContents();
  void setContents(org.eclipse.draw2d.IFigure figure);
}

class Viewport extends Figure {
  Viewport();
}
|}

(* getLayer is protected in the real API: the paper's implementation
   "supports only public methods", which is exactly why the
   (AbstractGraphicalEditPart, ConnectionLayer) query fails. *)
let gef =
  {|
package org.eclipse.gef;

interface EditPartViewer {
  org.eclipse.swt.widgets.Control getControl();
  java.util.Map getEditPartRegistry();
  org.eclipse.gef.EditPart getContents();
  void setContents(Object contents);
}

interface GraphicalViewer extends EditPartViewer {
}

interface EditPart {
  java.util.List getChildren();
  org.eclipse.gef.EditPart getParent();
  Object getModel();
  org.eclipse.gef.EditPartViewer getViewer();
}

class LayerConstants {
  static String CONNECTION_LAYER;
  static String PRIMARY_LAYER;
}
|}

let gef_ui =
  {|
package org.eclipse.gef.ui.parts;

class ScrollingGraphicalViewer implements org.eclipse.gef.GraphicalViewer {
  ScrollingGraphicalViewer();
}
|}

let gef_editparts =
  {|
package org.eclipse.gef.editparts;

abstract class AbstractEditPart implements org.eclipse.gef.EditPart {
}

abstract class AbstractGraphicalEditPart extends AbstractEditPart {
  org.eclipse.draw2d.IFigure getFigure();
  protected org.eclipse.draw2d.IFigure getLayer(Object key);
}
|}

let debug_core =
  {|
package org.eclipse.debug.core;

class DebugPlugin {
  static org.eclipse.debug.core.DebugPlugin getDefault();
  org.eclipse.debug.core.ILaunchManager getLaunchManager();
}

interface ILaunchManager {
  org.eclipse.debug.core.ILaunch[] getLaunches();
  org.eclipse.debug.core.ILaunchConfiguration[] getLaunchConfigurations();
  org.eclipse.debug.core.ILaunchConfigurationType getLaunchConfigurationType(String id);
}

interface ILaunchConfigurationType {
  org.eclipse.debug.core.ILaunchConfigurationWorkingCopy newInstance(org.eclipse.core.resources.IContainer container, String name);
  String getName();
}

interface ILaunchConfiguration {
  String getName();
  org.eclipse.debug.core.ILaunchConfigurationWorkingCopy getWorkingCopy();
  org.eclipse.debug.core.ILaunch launch(String mode, org.eclipse.core.runtime.IProgressMonitor monitor);
  String getAttribute(String attributeName, String defaultValue);
}

interface ILaunchConfigurationWorkingCopy extends ILaunchConfiguration {
  org.eclipse.debug.core.ILaunchConfiguration doSave();
  void setAttribute(String attributeName, String value);
}

interface ILaunch {
  org.eclipse.debug.core.IProcess[] getProcesses();
  org.eclipse.debug.core.ILaunchConfiguration getLaunchConfiguration();
  boolean isTerminated();
}

interface IProcess {
  String getLabel();
  org.eclipse.debug.core.ILaunch getLaunch();
  int getExitValue();
}
|}

let console =
  {|
package org.eclipse.ui.console;

class ConsolePlugin {
  static org.eclipse.ui.console.ConsolePlugin getDefault();
  org.eclipse.ui.console.IConsoleManager getConsoleManager();
}

interface IConsoleManager {
  org.eclipse.ui.console.IConsole[] getConsoles();
  void addConsoles(org.eclipse.ui.console.IConsole[] consoles);
  void showConsoleView(org.eclipse.ui.console.IConsole console);
}

interface IConsole {
  String getName();
}

class MessageConsole implements IConsole {
  MessageConsole(String name, org.eclipse.jface.resource.ImageDescriptor imageDescriptor);
  org.eclipse.ui.console.MessageConsoleStream newMessageStream();
}

class MessageConsoleStream {
  void println(String message);
  void print(String message);
}
|}

let debug_ui =
  {|
package org.eclipse.debug.ui;

interface IDebugView extends org.eclipse.core.runtime.IAdaptable {
  org.eclipse.jface.viewers.Viewer getViewer();
}
|}

let jdi_debug =
  {|
package org.eclipse.jdt.internal.debug.ui;

class JDIDebugUIPlugin {
  static org.eclipse.ui.IWorkbenchPage getActivePage();
  static org.eclipse.swt.widgets.Shell getActiveWorkbenchShell();
}
|}

let jdt_debug_display =
  {|
package org.eclipse.jdt.internal.debug.ui.display;

class JavaInspectExpression {
  String getExpressionText();
}
|}

let sources =
  [
    ("org.eclipse.draw2d", draw2d);
    ("org.eclipse.gef", gef);
    ("org.eclipse.gef.ui.parts", gef_ui);
    ("org.eclipse.gef.editparts", gef_editparts);
    ("org.eclipse.debug.core", debug_core);
    ("org.eclipse.ui.console", console);
    ("org.eclipse.debug.ui", debug_ui);
    ("org.eclipse.jdt.internal.debug.ui", jdi_debug);
    ("org.eclipse.jdt.internal.debug.ui.display", jdt_debug_display);
  ]
