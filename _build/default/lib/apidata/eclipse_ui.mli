(** Curated [.japi] model of the Eclipse 2.1 UI stack: SWT widgets and
    events, JFace viewers / resources / actions, the workbench
    ([org.eclipse.ui]), and the text-editor framework — the neighborhoods
    behind most Table 1 rows and the FAQ 270 worked example. *)

val sources : (string * string) list
