let runtime =
  {|
package org.eclipse.core.runtime;

interface IAdaptable {
  Object getAdapter(Class adapter);
}

interface IPath {
  String toOSString();
  String lastSegment();
  String getFileExtension();
  java.io.File toFile();
  org.eclipse.core.runtime.IPath append(String segment);
  org.eclipse.core.runtime.IPath removeLastSegments(int count);
  int segmentCount();
}

class Path implements IPath {
  Path(String fullPath);
}

interface IProgressMonitor {
  void beginTask(String name, int totalWork);
  void done();
  boolean isCanceled();
}

class NullProgressMonitor implements IProgressMonitor {
  NullProgressMonitor();
}

class CoreException extends java.lang.Exception {
  org.eclipse.core.runtime.IStatus getStatus();
}

interface IStatus {
  String getMessage();
  int getSeverity();
  boolean isOK();
}

class Status implements IStatus {
  Status(int severity, String pluginId, int code, String message, java.lang.Throwable exception);
}

class Platform {
  static String getOS();
}
|}

(* The resources API. IWorkspaceRoot and IContainer carry their realistic
   breadth of file accessors: this is what produces the "large number of
   similar parallel jungloids" that crowd the (IWorkspace, IFile) query out
   of the top results, as the paper reports. *)
let resources =
  {|
package org.eclipse.core.resources;

interface IResource extends org.eclipse.core.runtime.IAdaptable {
  String getName();
  String getFileExtension();
  org.eclipse.core.runtime.IPath getFullPath();
  org.eclipse.core.runtime.IPath getLocation();
  org.eclipse.core.resources.IProject getProject();
  org.eclipse.core.resources.IContainer getParent();
  org.eclipse.core.resources.IWorkspace getWorkspace();
  boolean exists();
  int getType();
}

interface IContainer extends IResource {
  org.eclipse.core.resources.IFile getFile(org.eclipse.core.runtime.IPath path);
  org.eclipse.core.resources.IFolder getFolder(org.eclipse.core.runtime.IPath path);
  org.eclipse.core.resources.IResource findMember(String name);
  org.eclipse.core.resources.IResource[] members();
}

interface IFile extends IResource {
  java.io.InputStream getContents();
  String getCharset();
  void setContents(java.io.InputStream source, boolean force, boolean keepHistory, org.eclipse.core.runtime.IProgressMonitor monitor);
  void create(java.io.InputStream source, boolean force, org.eclipse.core.runtime.IProgressMonitor monitor);
}

interface IFolder extends IContainer {
  org.eclipse.core.resources.IFile getFile(String name);
}

interface IProject extends IContainer {
  org.eclipse.core.resources.IFile getFile(String name);
  org.eclipse.core.resources.IFolder getFolder(String name);
  boolean isOpen();
  void open(org.eclipse.core.runtime.IProgressMonitor monitor);
}

interface IWorkspaceRoot extends IContainer {
  org.eclipse.core.resources.IFile getFileForLocation(org.eclipse.core.runtime.IPath location);
  org.eclipse.core.resources.IContainer getContainerForLocation(org.eclipse.core.runtime.IPath location);
  org.eclipse.core.resources.IProject getProject(String name);
  org.eclipse.core.resources.IProject[] getProjects();
}

interface IWorkspace extends org.eclipse.core.runtime.IAdaptable {
  org.eclipse.core.resources.IWorkspaceRoot getRoot();
  void save(boolean full, org.eclipse.core.runtime.IProgressMonitor monitor);
  org.eclipse.core.resources.IResourceRuleFactory getRuleFactory();
}

interface IResourceRuleFactory {
}

interface IMarker {
  org.eclipse.core.resources.IResource getResource();
  Object getAttribute(String attributeName);
}

class ResourcesPlugin {
  static org.eclipse.core.resources.IWorkspace getWorkspace();
}

interface IResourceChangeEvent {
  org.eclipse.core.resources.IResourceDelta getDelta();
  org.eclipse.core.resources.IResource getResource();
  int getType();
}

interface IResourceDelta {
  org.eclipse.core.resources.IResource getResource();
  org.eclipse.core.resources.IResourceDelta[] getAffectedChildren();
  org.eclipse.core.resources.IResourceDelta findMember(org.eclipse.core.runtime.IPath path);
  int getKind();
}

interface IResourceChangeListener {
  void resourceChanged(org.eclipse.core.resources.IResourceChangeEvent event);
}
|}

let jdt =
  {|
package org.eclipse.jdt.core;

interface IJavaElement extends org.eclipse.core.runtime.IAdaptable {
  String getElementName();
  org.eclipse.core.resources.IResource getResource();
  org.eclipse.jdt.core.IJavaProject getJavaProject();
  org.eclipse.core.runtime.IPath getPath();
  boolean exists();
}

interface IJavaProject extends IJavaElement {
  org.eclipse.core.resources.IProject getProject();
  org.eclipse.jdt.core.IPackageFragmentRoot[] getPackageFragmentRoots();
}

interface IPackageFragmentRoot extends IJavaElement {
}

interface ICompilationUnit extends IJavaElement {
  String getSource();
  org.eclipse.jdt.core.IType[] getTypes();
  org.eclipse.jdt.core.ICompilationUnit getWorkingCopy();
}

interface IClassFile extends IJavaElement {
  String getSource();
}

interface IType extends IJavaElement {
  String getFullyQualifiedName();
  org.eclipse.jdt.core.IMethod[] getMethods();
}

interface IMethod extends IJavaElement {
  String getSignature();
}

class JavaCore {
  static org.eclipse.jdt.core.ICompilationUnit createCompilationUnitFrom(org.eclipse.core.resources.IFile file);
  static org.eclipse.jdt.core.IClassFile createClassFileFrom(org.eclipse.core.resources.IFile file);
  static org.eclipse.jdt.core.IJavaProject create(org.eclipse.core.resources.IProject project);
}
|}

let jdt_dom =
  {|
package org.eclipse.jdt.core.dom;

abstract class ASTNode {
  org.eclipse.jdt.core.dom.ASTNode getParent();
  int getStartPosition();
  int getLength();
}

class CompilationUnit extends ASTNode {
  org.eclipse.jdt.core.dom.Message[] getMessages();
}

class Message {
  String getMessage();
  int getSourcePosition();
}

class AST {
  static org.eclipse.jdt.core.dom.CompilationUnit parseCompilationUnit(org.eclipse.jdt.core.ICompilationUnit unit, boolean resolveBindings);
  static org.eclipse.jdt.core.dom.CompilationUnit parseCompilationUnit(char[] source);
}
|}

let sources =
  [
    ("org.eclipse.core.runtime", runtime);
    ("org.eclipse.core.resources", resources);
    ("org.eclipse.jdt.core", jdt);
    ("org.eclipse.jdt.core.dom", jdt_dom);
  ]
