(** An extended evaluation set beyond the paper's Table 1: eighteen more
    programming problems in the same style (javaalmanac / Eclipse FAQ
    flavor) over the broadened API model. The paper has no reference ranks
    for these; each row instead carries the bound its desired solution must
    rank within, asserted by tests and reported by the bench harness. *)

type t = {
  id : int;
  description : string;
  tin : string;
  tout : string;
  max_rank : int;  (** the desired solution must appear at or above this *)
  settings : Prospector.Query.settings;  (** some rows need extra slack *)
  is_desired : Prospector.Query.result -> bool;
}

val all : t list

type measured = {
  problem : t;
  rank : int option;
  time_s : float;
}

val run_all :
  graph:Prospector.Graph.t -> hierarchy:Javamodel.Hierarchy.t -> unit -> measured list

val ok : measured -> bool
(** Desired solution found within the row's [max_rank]. *)
