(* Additional Eclipse 2.1 breadth: common SWT widgets and the JFace
   window/dialog/wizard stack. Not on any Table 1 query path; they give the
   model production-like width (and the Shell neighborhood realistic
   fan-out). *)

let swt_more_widgets =
  {|
package org.eclipse.swt.widgets;

class Button extends Control {
  Button(org.eclipse.swt.widgets.Composite parent, int style);
  String getText();
  void setText(String text);
  boolean getSelection();
}

class Label extends Control {
  Label(org.eclipse.swt.widgets.Composite parent, int style);
  void setText(String text);
}

class Text extends Scrollable {
  Text(org.eclipse.swt.widgets.Composite parent, int style);
  String getText();
  void setText(String text);
}

class Combo extends Composite {
  Combo(org.eclipse.swt.widgets.Composite parent, int style);
  String getText();
  void add(String string);
  int getSelectionIndex();
}

class Menu extends Widget {
  Menu(org.eclipse.swt.widgets.Control parent);
  Menu(org.eclipse.swt.widgets.Shell parent, int style);
  org.eclipse.swt.widgets.MenuItem getItem(int index);
  org.eclipse.swt.widgets.MenuItem[] getItems();
}

class MenuItem extends Item {
  MenuItem(org.eclipse.swt.widgets.Menu parent, int style);
  org.eclipse.swt.widgets.Menu getMenu();
}

class ToolBar extends Composite {
  ToolBar(org.eclipse.swt.widgets.Composite parent, int style);
  org.eclipse.swt.widgets.ToolItem[] getItems();
}

class ToolItem extends Item {
  ToolItem(org.eclipse.swt.widgets.ToolBar parent, int style);
}

class Tree extends Composite {
  Tree(org.eclipse.swt.widgets.Composite parent, int style);
  org.eclipse.swt.widgets.TreeItem[] getItems();
  int getItemCount();
}

class TreeItem extends Item {
  TreeItem(org.eclipse.swt.widgets.Tree parent, int style);
  org.eclipse.swt.widgets.TreeItem[] getItems();
}

class Group extends Composite {
  Group(org.eclipse.swt.widgets.Composite parent, int style);
  void setText(String text);
}

class TabFolder extends Composite {
  TabFolder(org.eclipse.swt.widgets.Composite parent, int style);
  org.eclipse.swt.widgets.TabItem[] getItems();
}

class TabItem extends Item {
  TabItem(org.eclipse.swt.widgets.TabFolder parent, int style);
  org.eclipse.swt.widgets.Control getControl();
  void setControl(org.eclipse.swt.widgets.Control control);
}
|}

let jface_window =
  {|
package org.eclipse.jface.window;

abstract class Window {
  int open();
  boolean close();
  org.eclipse.swt.widgets.Shell getShell();
}

class ApplicationWindow extends Window {
  ApplicationWindow(org.eclipse.swt.widgets.Shell parentShell);
}
|}

let jface_dialogs =
  {|
package org.eclipse.jface.dialogs;

abstract class Dialog extends org.eclipse.jface.window.Window {
  protected org.eclipse.swt.widgets.Control createDialogArea(org.eclipse.swt.widgets.Composite parent);
}

class MessageDialog extends Dialog {
  MessageDialog(org.eclipse.swt.widgets.Shell parentShell, String dialogTitle, org.eclipse.swt.graphics.Image dialogTitleImage, String dialogMessage, int dialogImageType, String[] dialogButtonLabels, int defaultIndex);
  static boolean openConfirm(org.eclipse.swt.widgets.Shell parent, String title, String message);
  static void openInformation(org.eclipse.swt.widgets.Shell parent, String title, String message);
  static boolean openQuestion(org.eclipse.swt.widgets.Shell parent, String title, String message);
}

class InputDialog extends Dialog {
  InputDialog(org.eclipse.swt.widgets.Shell parentShell, String dialogTitle, String dialogMessage, String initialValue, org.eclipse.jface.dialogs.IInputValidator validator);
  String getValue();
}

interface IInputValidator {
  String isValid(String newText);
}

class TitleAreaDialog extends Dialog {
  TitleAreaDialog(org.eclipse.swt.widgets.Shell parentShell);
  void setTitle(String newTitle);
}

class ProgressMonitorDialog extends Dialog {
  ProgressMonitorDialog(org.eclipse.swt.widgets.Shell parent);
  org.eclipse.core.runtime.IProgressMonitor getProgressMonitor();
}
|}

let jface_wizard =
  {|
package org.eclipse.jface.wizard;

interface IWizard {
  void addPages();
  boolean performFinish();
  org.eclipse.jface.wizard.IWizardPage[] getPages();
}

abstract class Wizard implements IWizard {
  void addPage(org.eclipse.jface.wizard.IWizardPage page);
  org.eclipse.swt.widgets.Shell getShell();
}

interface IWizardPage {
  String getName();
  org.eclipse.swt.widgets.Control getControl();
  org.eclipse.jface.wizard.IWizard getWizard();
}

abstract class WizardPage implements IWizardPage {
  void setTitle(String title);
  void setDescription(String description);
}

class WizardDialog extends org.eclipse.jface.dialogs.Dialog {
  WizardDialog(org.eclipse.swt.widgets.Shell parentShell, org.eclipse.jface.wizard.IWizard newWizard);
}
|}

let core_jobs =
  {|
package org.eclipse.core.runtime.jobs;

abstract class Job {
  Job(String name);
  void schedule();
  boolean cancel();
  int getState();
  String getName();
}
|}

let sources =
  [
    ("org.eclipse.swt.widgets-extra", swt_more_widgets);
    ("org.eclipse.jface.window", jface_window);
    ("org.eclipse.jface.dialogs", jface_dialogs);
    ("org.eclipse.jface.wizard", jface_wizard);
    ("org.eclipse.core.runtime.jobs", core_jobs);
  ]
