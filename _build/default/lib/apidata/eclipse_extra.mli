(** Additional Eclipse 2.1 breadth (more SWT widgets, JFace
    windows/dialogs/wizards, jobs) — off the Table 1 query paths, for
    production-like graph size. *)

val sources : (string * string) list
