(** Curated [.japi] model of the J2SE neighborhoods exercised by the paper's
    evaluation: [java.lang], [java.io], [java.util], [java.nio], [java.net],
    and [java.applet]. Signatures follow J2SE 1.4 (the paper predates
    generics); a handful of simplifications are noted inline. *)

val sources : (string * string) list
(** [(pseudo-file name, japi text)] pairs for {!Japi.Loader.load_files}. *)
