(** The mining corpus: hand-written mini-Java client code transcribing the
    downcast idioms the paper mines from production Eclipse code — the
    Figure 4 debugger-selection chain plus the selection, editor, resource,
    and GEF idioms behind the Table 1 rows whose solutions contain
    downcasts. *)

val sources : (string * string) list
(** [(filename, mini-Java source)] pairs for {!Minijava.Resolve.parse_program}. *)
