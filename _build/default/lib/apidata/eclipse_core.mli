(** Curated [.japi] model of the Eclipse 2.1 platform core: runtime paths
    and adaptables, the resources (workspace) API, and the JDT Java model
    with its AST — the neighborhoods behind the paper's Section 1 parsing
    example and the [(IWorkspace, IFile)] / [(IFile, String)] rows of
    Table 1. *)

val sources : (string * string) list
