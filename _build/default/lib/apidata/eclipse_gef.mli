(** Curated [.japi] model of GEF/Draw2D and the debug UI: the neighborhoods
    behind the [(ScrollingGraphicalViewer, FigureCanvas)] and
    [(AbstractGraphicalEditPart, ConnectionLayer)] rows of Table 1 and the
    Figure 2/4 debugger-selection mining example. *)

val sources : (string * string) list
