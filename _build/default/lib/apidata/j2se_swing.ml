(* AWT and Swing (J2SE 1.4): a standalone GUI family whose model interfaces
   (TreeModel, TableModel, ListModel) traffic in Object — the downcast-heavy
   style the paper's mining targets. Every cross-package reference is fully
   qualified; the simple names Window and Dialog also exist in JFace, where
   same-package resolution keeps them unambiguous. *)

let java_awt =
  {|
package java.awt;

abstract class Component {
  void setVisible(boolean b);
  java.awt.Container getParent();
  int getWidth();
  int getHeight();
  void repaint();
}

class Container extends Component {
  java.awt.Component add(java.awt.Component comp);
  java.awt.Component[] getComponents();
  void removeAll();
}

class Window extends Container {
  Window(java.awt.Frame owner);
  void pack();
  void dispose();
  void toFront();
}

class Frame extends Window {
  Frame();
  Frame(String title);
  String getTitle();
  void setTitle(String title);
}

class Dialog extends Window {
  Dialog(java.awt.Frame owner, String title);
  boolean isModal();
}

class Panel extends Container {
  Panel();
}

class Toolkit {
  static java.awt.Toolkit getDefaultToolkit();
  java.awt.Image getImage(String filename);
  java.awt.Dimension getScreenSize();
}

abstract class Image {
  int getWidth(java.awt.image.ImageObserver observer);
}

class Dimension {
  Dimension(int width, int height);
  int width;
  int height;
}
|}

let java_awt_image =
  {|
package java.awt.image;

interface ImageObserver {
}
|}

let java_awt_event =
  {|
package java.awt.event;

interface ActionListener {
  void actionPerformed(java.awt.event.ActionEvent e);
}

class ActionEvent extends java.util.EventObject {
  ActionEvent(Object source, int id, String command);
  String getActionCommand();
}
|}

let javax_swing =
  {|
package javax.swing;

abstract class JComponent extends java.awt.Container {
  void setToolTipText(String text);
  void setBorder(javax.swing.border.Border border);
}

class JFrame extends java.awt.Frame {
  JFrame();
  JFrame(String title);
  java.awt.Container getContentPane();
  javax.swing.JMenuBar getJMenuBar();
  void setJMenuBar(javax.swing.JMenuBar menubar);
}

class JPanel extends JComponent {
  JPanel();
}

abstract class AbstractButton extends JComponent {
  String getText();
  void setText(String text);
  void addActionListener(java.awt.event.ActionListener l);
}

class JButton extends AbstractButton {
  JButton(String text);
  JButton(javax.swing.Icon icon);
}

class JLabel extends JComponent {
  JLabel(String text);
  void setIcon(javax.swing.Icon icon);
}

class JTextField extends JComponent {
  JTextField();
  JTextField(String text);
  String getText();
  void setText(String t);
}

class JTextArea extends JComponent {
  JTextArea();
  String getText();
  void append(String str);
}

class JScrollPane extends JComponent {
  JScrollPane(java.awt.Component view);
}

class JList extends JComponent {
  JList(javax.swing.ListModel dataModel);
  javax.swing.ListModel getModel();
  Object getSelectedValue();
  int getSelectedIndex();
}

interface ListModel {
  int getSize();
  Object getElementAt(int index);
}

class DefaultListModel implements ListModel {
  DefaultListModel();
  void addElement(Object obj);
}

class JTable extends JComponent {
  JTable(javax.swing.table.TableModel dm);
  javax.swing.table.TableModel getModel();
  Object getValueAt(int row, int column);
  int getRowCount();
}

class JTree extends JComponent {
  JTree(javax.swing.tree.TreeModel newModel);
  javax.swing.tree.TreeModel getModel();
  javax.swing.tree.TreePath getSelectionPath();
}

class JMenuBar extends JComponent {
  JMenuBar();
  javax.swing.JMenu add(javax.swing.JMenu c);
}

class JMenu extends AbstractButton {
  JMenu(String s);
  javax.swing.JMenuItem add(javax.swing.JMenuItem menuItem);
}

class JMenuItem extends AbstractButton {
  JMenuItem(String text);
}

interface Icon {
  int getIconWidth();
  int getIconHeight();
}

class ImageIcon implements Icon {
  ImageIcon(String filename);
  ImageIcon(java.net.URL location);
  java.awt.Image getImage();
}

class SwingUtilities {
  static java.awt.Container getAncestorOfClass(Class c, java.awt.Component comp);
  static void invokeLater(Runnable doRun);
}

class JOptionPane {
  static void showMessageDialog(java.awt.Component parentComponent, Object message);
  static String showInputDialog(java.awt.Component parentComponent, Object message);
}
|}

let javax_swing_border =
  {|
package javax.swing.border;

interface Border {
}
|}

let javax_swing_table =
  {|
package javax.swing.table;

interface TableModel {
  int getRowCount();
  int getColumnCount();
  Object getValueAt(int rowIndex, int columnIndex);
  String getColumnName(int columnIndex);
}

class AbstractTableModel implements TableModel {
}

class DefaultTableModel extends AbstractTableModel {
  DefaultTableModel();
  DefaultTableModel(int rowCount, int columnCount);
  void addRow(Object[] rowData);
  void setValueAt(Object aValue, int row, int column);
}
|}

let javax_swing_tree =
  {|
package javax.swing.tree;

interface TreeModel {
  Object getRoot();
  Object getChild(Object parent, int index);
  int getChildCount(Object parent);
}

class DefaultTreeModel implements TreeModel {
  DefaultTreeModel(javax.swing.tree.TreeNode root);
}

interface TreeNode {
  javax.swing.tree.TreeNode getParent();
  int getChildCount();
}

class DefaultMutableTreeNode implements TreeNode {
  DefaultMutableTreeNode(Object userObject);
  Object getUserObject();
  javax.swing.tree.DefaultMutableTreeNode getNextNode();
  void add(javax.swing.tree.DefaultMutableTreeNode newChild);
}

class TreePath {
  TreePath(Object[] path);
  Object getLastPathComponent();
  int getPathCount();
}
|}

let sources =
  [
    ("java.awt", java_awt);
    ("java.awt.image", java_awt_image);
    ("java.awt.event", java_awt_event);
    ("javax.swing", javax_swing);
    ("javax.swing.border", javax_swing_border);
    ("javax.swing.table", javax_swing_table);
    ("javax.swing.tree", javax_swing_tree);
  ]
