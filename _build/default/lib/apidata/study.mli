(** The four programming problems of the user study (Section 6), with the
    context a participant would have (visible variables), a checker for a
    correct reuse-based answer, and the paper's qualitative outcome for
    Figure 8. *)

type t = {
  id : int;
  title : string;
  statement : string;  (** the problem as given to participants *)
  vars : (string * string) list;  (** visible variables: name, dotted type *)
  tout : string;  (** the output type a successful participant identifies *)
  baseline_tout : string option;
      (** when unaided participants de-facto pursue an easier framing (the
          paper's Problem 4: [getSharedImages().getImage()] instead of an
          [ImageRegistry]), the type of that framing *)
  is_desired : Prospector.Query.result -> bool;
  base_minutes : float;
      (** calibration: mean time of the paper's baseline (no-tool) group;
          Figure 8 is read qualitatively — problem 2 hardest, 1 easiest *)
  paper_speedup : float;  (** with-tool speedup the paper reports (≈2 for
                              problems 1–3, parity for problem 4) *)
}

val all : t list

val tool_rank :
  graph:Prospector.Graph.t -> hierarchy:Javamodel.Hierarchy.t -> t -> int option
(** The rank at which the {e real} engine surfaces the desired solution for
    this problem via content assist over the problem's context — the
    with-tool arm of the simulation is driven by actual system output. *)
