(** AWT/Swing neighborhoods (J2SE 1.4): a second GUI family whose
    Object-trafficking model interfaces (TreeModel/TableModel/ListModel)
    are classic jungloid-mining territory. *)

val sources : (string * string) list
