(* The J2SE 1.4 subset. Modeling notes:
   - java.nio.channels.FileChannel.MapMode is a real Java inner class; the
     dotted name parses as a class MapMode in "package"
     java.nio.channels.FileChannel, which is exactly how the loader treats
     inner classes.
   - Object declares toString(), so every reference type reaches String in
     one step — this is what pushes the desired (IFile, String) answer down
     the ranking, as in the paper's Table 1 (rank 4). *)

let java_lang =
  {|
package java.lang;

class Object {
  String toString();
  boolean equals(Object other);
  int hashCode();
  Class getClass();
}

class Class {
  String getName();
  Class getSuperclass();
  ClassLoader getClassLoader();
}

class ClassLoader {
  Class loadClass(String name);
  java.io.InputStream getResourceAsStream(String name);
  java.net.URL getResource(String name);
}

class String {
  String(char[] value);
  int length();
  char charAt(int index);
  String substring(int begin, int end);
  String trim();
  String toLowerCase();
  String toUpperCase();
  char[] toCharArray();
  byte[] getBytes();
  static String valueOf(Object obj);
  boolean startsWith(String prefix);
  boolean endsWith(String suffix);
  int indexOf(String needle);
}

class StringBuffer {
  StringBuffer();
  StringBuffer(String str);
  StringBuffer append(String str);
  int length();
}

class System {
  static java.io.PrintStream out;
  static java.io.PrintStream err;
  static String getProperty(String key);
  static long currentTimeMillis();
}

class Thread {
  Thread();
  Thread(Runnable target);
  void start();
  static Thread currentThread();
  ClassLoader getContextClassLoader();
}

interface Runnable {
  void run();
}

interface Comparable {
  int compareTo(Object other);
}

class Throwable {
  String getMessage();
  Throwable getCause();
  void printStackTrace();
}

class Exception extends Throwable {
  Exception();
  Exception(String message);
}

class RuntimeException extends Exception {
  RuntimeException(String message);
}

class Integer {
  Integer(int value);
  static Integer valueOf(String s);
  static int parseInt(String s);
  int intValue();
}

class Boolean {
  Boolean(boolean value);
  static Boolean valueOf(String s);
  boolean booleanValue();
}
|}

let java_io =
  {|
package java.io;

abstract class InputStream {
  int read();
  int available();
  void close();
}

abstract class OutputStream {
  void write(int b);
  void flush();
  void close();
}

abstract class Reader {
  int read();
  void close();
  boolean ready();
}

abstract class Writer {
  void write(String str);
  void flush();
  void close();
}

class InputStreamReader extends Reader {
  InputStreamReader(java.io.InputStream in);
  InputStreamReader(java.io.InputStream in, String charsetName);
  String getEncoding();
}

class FileReader extends InputStreamReader {
  FileReader(String fileName);
  FileReader(java.io.File file);
}

class StringReader extends Reader {
  StringReader(String s);
}

class BufferedReader extends Reader {
  BufferedReader(java.io.Reader in);
  BufferedReader(java.io.Reader in, int size);
  String readLine();
}

class LineNumberReader extends BufferedReader {
  LineNumberReader(java.io.Reader in);
  int getLineNumber();
}

class FileInputStream extends InputStream {
  FileInputStream(String name);
  FileInputStream(java.io.File file);
  java.nio.channels.FileChannel getChannel();
}

class FileOutputStream extends OutputStream {
  FileOutputStream(String name);
  FileOutputStream(java.io.File file);
  java.nio.channels.FileChannel getChannel();
}

class BufferedInputStream extends InputStream {
  BufferedInputStream(java.io.InputStream in);
}

class ByteArrayInputStream extends InputStream {
  ByteArrayInputStream(byte[] buf);
}

class File {
  File(String pathname);
  File(java.io.File parent, String child);
  String getName();
  String getPath();
  String getAbsolutePath();
  java.io.File getParentFile();
  java.net.URL toURL();
  boolean exists();
  boolean isDirectory();
  java.io.File[] listFiles();
}

class RandomAccessFile {
  RandomAccessFile(String name, String mode);
  RandomAccessFile(java.io.File file, String mode);
  java.nio.channels.FileChannel getChannel();
  String readLine();
  void close();
}

class PrintStream extends OutputStream {
  PrintStream(java.io.OutputStream out);
  void println(String s);
}

class PrintWriter extends Writer {
  PrintWriter(java.io.Writer out);
  PrintWriter(java.io.OutputStream out);
  void println(String s);
}

class IOException extends java.lang.Exception {
  IOException(String message);
}
|}

let java_nio =
  {|
package java.nio;

abstract class Buffer {
  int capacity();
  int position();
  int limit();
}

abstract class ByteBuffer extends Buffer {
  static java.nio.ByteBuffer allocate(int capacity);
  static java.nio.ByteBuffer wrap(byte[] array);
  byte[] array();
  java.nio.CharBuffer asCharBuffer();
}

abstract class MappedByteBuffer extends ByteBuffer {
  java.nio.MappedByteBuffer load();
  boolean isLoaded();
}

abstract class CharBuffer extends Buffer {
}
|}

let java_nio_channels =
  {|
package java.nio.channels;

interface Channel {
  boolean isOpen();
  void close();
}

abstract class FileChannel implements Channel {
  java.nio.MappedByteBuffer map(java.nio.channels.FileChannel.MapMode mode, long position, long size);
  long size();
}
|}

(* FileChannel.MapMode, modeled as the inner class it is. *)
let java_nio_channels_filechannel =
  {|
package java.nio.channels.FileChannel;

class MapMode {
  static java.nio.channels.FileChannel.MapMode READ_ONLY;
  static java.nio.channels.FileChannel.MapMode READ_WRITE;
}
|}

let java_util =
  {|
package java.util;

interface Iterator {
  boolean hasNext();
  Object next();
  void remove();
}

interface Enumeration {
  boolean hasMoreElements();
  Object nextElement();
}

interface Collection {
  int size();
  boolean isEmpty();
  java.util.Iterator iterator();
  Object[] toArray();
  boolean add(Object o);
  boolean contains(Object o);
}

interface Set extends Collection {
}

interface List extends Collection {
  Object get(int index);
  java.util.ListIterator listIterator();
  int indexOf(Object o);
}

interface ListIterator extends Iterator {
  boolean hasPrevious();
  Object previous();
}

interface Map {
  Object get(Object key);
  Object put(Object key, Object value);
  java.util.Set keySet();
  java.util.Collection values();
  java.util.Set entrySet();
  int size();
  boolean containsKey(Object key);
}

class ArrayList implements List {
  ArrayList();
  ArrayList(java.util.Collection c);
}

class LinkedList implements List {
  LinkedList();
  LinkedList(java.util.Collection c);
}

class HashSet implements Set {
  HashSet();
  HashSet(java.util.Collection c);
}

class HashMap implements Map {
  HashMap();
  HashMap(java.util.Map m);
}

class Hashtable implements Map {
  Hashtable();
  java.util.Enumeration elements();
  java.util.Enumeration keys();
}

class Vector implements List {
  Vector();
  java.util.Enumeration elements();
  Object elementAt(int index);
}

class Collections {
  static java.util.ArrayList list(java.util.Enumeration e);
  static java.util.Enumeration enumeration(java.util.Collection c);
  static java.util.List unmodifiableList(java.util.List list);
  static java.util.Set unmodifiableSet(java.util.Set set);
}

class Arrays {
  static java.util.List asList(Object[] a);
}

class Properties extends Hashtable {
  Properties();
  String getProperty(String key);
  java.util.Enumeration propertyNames();
}

class StringTokenizer implements Enumeration {
  StringTokenizer(String str);
  StringTokenizer(String str, String delim);
  boolean hasMoreTokens();
  String nextToken();
}

class EventObject {
  EventObject(Object source);
  Object getSource();
}
|}

let java_net =
  {|
package java.net;

class URL {
  URL(String spec);
  URL(java.net.URL context, String spec);
  java.io.InputStream openStream();
  java.net.URLConnection openConnection();
  Object getContent();
  String getHost();
  String getFile();
  String toExternalForm();
}

class URLConnection {
  java.io.InputStream getInputStream();
  Object getContent();
  int getContentLength();
  String getContentType();
}

class URI {
  URI(String str);
  java.net.URL toURL();
  String getPath();
}
|}

let java_applet =
  {|
package java.applet;

class Applet {
  static java.applet.AudioClip newAudioClip(java.net.URL url);
}

interface AudioClip {
  void play();
  void loop();
  void stop();
}
|}

(* Third-party classes present in the paper's anecdotes: the HTMLParser
   distractor of Section 3.2 and the commons-collections Enumeration
   wrapper that makes Problem 1 solvable by reuse.
   Liberty: the real HTMLParser.getReader() returns Reader; we declare
   BufferedReader so the jungloid is a (FileInputStream, BufferedReader)
   solution exactly as the paper lists it. *)
let third_party =
  {|
package org.apache.lucene.demo.html;

class HTMLParser {
  HTMLParser(java.io.InputStream in);
  java.io.BufferedReader getReader();
  String getTitle();
}
|}

let commons_collections =
  {|
package org.apache.commons.collections.iterators;

class EnumerationIterator implements java.util.Iterator {
  EnumerationIterator(java.util.Enumeration e);
}
|}

let commons_collections_utils =
  {|
package org.apache.commons.collections;

class IteratorUtils {
  static java.util.Iterator asIterator(java.util.Enumeration e);
  static java.util.Enumeration asEnumeration(java.util.Iterator i);
}
|}

let sources =
  [
    ("java.lang", java_lang);
    ("java.io", java_io);
    ("java.nio", java_nio);
    ("java.nio.channels", java_nio_channels);
    ("java.nio.channels.FileChannel", java_nio_channels_filechannel);
    ("java.util", java_util);
    ("java.net", java_net);
    ("java.applet", java_applet);
    ("lucene", third_party);
    ("commons-iterators", commons_collections);
    ("commons-utils", commons_collections_utils);
  ]
