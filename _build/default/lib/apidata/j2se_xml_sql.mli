(** JDBC and XML/DOM neighborhoods (J2SE 1.4): [java.sql],
    [javax.xml.parsers], [org.w3c.dom] — classic jungloid territory (hidden
    static links, downcast-heavy Node APIs). *)

val sources : (string * string) list
