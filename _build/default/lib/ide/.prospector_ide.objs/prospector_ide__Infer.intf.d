lib/ide/infer.mli: Javamodel Minijava Prospector
