lib/ide/infer.ml: Javamodel List Minijava Prospector
