module Jtype = Javamodel.Jtype
module Qname = Javamodel.Qname

let is_obj_or_string ty =
  match ty with
  | Jtype.Ref q -> Qname.equal q Qname.object_qname || Qname.equal q Qname.string_qname
  | _ -> false

type stats = {
  sites : int;
  examples_extracted : int;
  examples_after_generalization : int;
  edges_added : int;
}

let enrich ?max_per_cast ?max_len ?(generalize = true) ?min_keep
    ?(is_target = is_obj_or_string) g prog =
  let df = Dataflow.build prog in
  let examples = Extract.extract_for_arg ?max_per_cast ?max_len df ~is_target in
  let sites =
    List.length
      (List.sort_uniq compare (List.map (fun (e : Extract.example) -> e.Extract.origin) examples))
  in
  let final = if generalize then Generalize.run ?min_keep examples else examples in
  let edges_added, _ = Enrich.add_examples g final in
  {
    sites;
    examples_extracted = List.length examples;
    examples_after_generalization = List.length final;
    edges_added;
  }
