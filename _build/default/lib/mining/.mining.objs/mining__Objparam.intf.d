lib/mining/objparam.mli: Javamodel Minijava Prospector
