lib/mining/objparam.ml: Dataflow Enrich Extract Generalize Javamodel List
