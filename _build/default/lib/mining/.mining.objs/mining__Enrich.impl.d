lib/mining/enrich.ml: Dataflow Extract Generalize Javamodel List Logs Prospector
