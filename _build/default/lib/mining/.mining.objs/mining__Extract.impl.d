lib/mining/extract.ml: Dataflow Javamodel List Minijava Option Printf Prospector
