lib/mining/dataflow.mli: Javamodel Minijava
