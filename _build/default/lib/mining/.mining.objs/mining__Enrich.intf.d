lib/mining/enrich.mli: Extract Minijava Prospector
