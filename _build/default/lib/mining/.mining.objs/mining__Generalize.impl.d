lib/mining/generalize.ml: Extract Hashtbl Javamodel List Prospector
