lib/mining/dataflow.ml: Hashtbl Javamodel List Map Minijava Option Printf String
