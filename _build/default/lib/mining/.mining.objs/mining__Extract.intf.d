lib/mining/extract.mli: Dataflow Javamodel Prospector
