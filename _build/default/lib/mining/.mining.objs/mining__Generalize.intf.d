lib/mining/generalize.mli: Extract
