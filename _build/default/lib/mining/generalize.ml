module Elem = Prospector.Elem
module Jtype = Javamodel.Jtype

type node = {
  mutable casts : string list;  (* distinct final-cast keys seen here *)
  mutable children : (Elem.t * node) list;
}

let fresh () = { casts = []; children = [] }

(* The paper distinguishes examples by the type they cast to; for the §4.3
   variant the distinguished position is the whole final call. *)
let final_key = function
  | Elem.Downcast { to_; _ } -> "cast:" ^ Jtype.to_string to_
  | e -> "call:" ^ Elem.describe e ^ ":" ^ Jtype.to_string (Elem.input_type e)

let note_cast node cast =
  let k = final_key cast in
  if not (List.mem k node.casts) then node.casts <- k :: node.casts

let child node elem =
  match List.find_opt (fun (e, _) -> Elem.equal e elem) node.children with
  | Some (_, n) -> n
  | None ->
      let n = fresh () in
      node.children <- (elem, n) :: node.children;
      n

let split_example (ex : Extract.example) =
  match List.rev ex.Extract.elems with
  | final :: rev_body -> (rev_body, final)
  | [] -> invalid_arg "Generalize: empty example"

let build_trie examples =
  let root = fresh () in
  List.iter
    (fun ex ->
      let rev_body, final = split_example ex in
      let node = ref root in
      note_cast !node final;
      List.iter
        (fun elem ->
          node := child !node elem;
          note_cast !node final)
        rev_body)
    examples;
  root

(* Depth (number of reversed-body elements) to retain for one example. *)
let retained_depth ~min_keep root ex =
  let rev_body, final = split_example ex in
  ignore final;
  let body_len = List.length rev_body in
  let rec walk node depth = function
    | _ when List.length node.casts <= 1 -> depth
    | [] -> depth
    | elem :: rest -> walk (child node elem) (depth + 1) rest
  in
  let needed = walk root 0 rev_body in
  min body_len (max needed (min min_keep body_len))

let cut ex depth =
  let rev_body, final = split_example ex in
  let kept_rev = List.filteri (fun i _ -> i < depth) rev_body in
  let elems = List.rev (final :: kept_rev) in
  let input =
    match elems with
    | first :: _ -> Elem.input_type first
    | [] -> assert false
  in
  { ex with Extract.input; elems }

let suffix_lengths ?(min_keep = 1) examples =
  let root = build_trie examples in
  List.map (retained_depth ~min_keep root) examples

let run ?(min_keep = 1) examples =
  let root = build_trie examples in
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun ex ->
      let g = cut ex (retained_depth ~min_keep root ex) in
      let key = (g.Extract.input, g.Extract.elems) in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.replace seen key ();
        Some g
      end)
    examples
