(** Example-jungloid generalization (Section 4.2, Figure 7).

    An example often carries an unneeded prefix: only the suffix that
    establishes the state for the final downcast matters, and a shorter
    suffix composes with more producing jungloids. The constraint is not to
    overgeneralize: if two examples [β·a·α·(T)] and [γ·b·α·(U)] share the
    suffix [α] but end in different casts ([a ≠ b], [T ≠ U]), both must
    retain [a·α] / [b·α] — the element where they diverge stays.

    The algorithm stores the {e reversed} example bodies in a trie whose
    nodes record the set of final casts passing through them, then cuts each
    example at the first node whose cast set is a singleton — equivalent to
    the paper's "removing subtries all of whose examples end in the same
    casts", in O(nk).

    [min_keep] (default 1) keeps at least that many pre-cast elements when
    the example has them: the pure algorithm ([min_keep = 0]) may
    generalize an unconflicted example to the bare downcast, which
    reintroduces a Figure 3 edge; the paper's precision conditions (4.4)
    assume the corpus is rich enough for this not to matter, and the
    ablation bench measures both settings. *)

val run : ?min_keep:int -> Extract.example list -> Extract.example list
(** Generalized (suffix) examples, deduplicated; order follows the input. *)

val suffix_lengths : ?min_keep:int -> Extract.example list -> int list
(** For tests: the retained length (in elementary jungloids, widening
    included, final cast excluded) for each input example, in order. *)
