(** The Section 4.3 extension: mining for methods whose parameters are
    declared [Object] or [String].

    Such declarations say "anything goes", but in practice only objects of
    particular model classes (or strings of a particular shape) are
    acceptable — most jungloids calling them are inviable. The paper
    proposes (but does not evaluate) running the mining machinery with these
    parameter positions playing the role of downcasts. This module
    implements that proposal: combined with
    {!Prospector.Sig_graph.config.restrict_obj_string_params}, which removes
    the indiscriminate signature edges into those positions, only mined
    usages remain synthesizable. The [objparam] ablation bench measures the
    effect. *)

val is_obj_or_string : Javamodel.Jtype.t -> bool
(** [true] exactly for [java.lang.Object] and [java.lang.String]. *)

type stats = {
  sites : int;  (** call-argument sites mined *)
  examples_extracted : int;
  examples_after_generalization : int;
  edges_added : int;
}

val enrich :
  ?max_per_cast:int ->
  ?max_len:int ->
  ?generalize:bool ->
  ?min_keep:int ->
  ?is_target:(Javamodel.Jtype.t -> bool) ->
  Prospector.Graph.t ->
  Minijava.Tast.program ->
  stats
(** Like {!Enrich.enrich} but for targeted parameter positions
    ([is_target] defaults to {!is_obj_or_string}). *)
