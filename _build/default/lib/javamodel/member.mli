(** Class members: fields, methods, and constructors, with modifiers.

    Only the parts of a signature that jungloid synthesis consumes are kept:
    names, parameter and return types, and the modifiers that decide
    visibility ([public] vs [protected]/[private]) and dispatch ([static]). *)

type visibility = Public | Protected | Private | Package [@@deriving eq, ord, show]

type field = {
  fname : string;
  ftype : Jtype.t;
  fvis : visibility;
  fstatic : bool;
}
[@@deriving eq, ord, show]

type meth = {
  mname : string;
  params : (string * Jtype.t) list;  (** parameter name and type, in order *)
  ret : Jtype.t;
  mvis : visibility;
  mstatic : bool;
  mdeprecated : bool;
}
[@@deriving eq, ord, show]

type ctor = {
  cparams : (string * Jtype.t) list;
  cvis : visibility;
}
[@@deriving eq, ord, show]

val field : ?vis:visibility -> ?static:bool -> string -> Jtype.t -> field
(** [field name typ] defaults to a public instance field. *)

val meth :
  ?vis:visibility ->
  ?static:bool ->
  ?deprecated:bool ->
  string ->
  params:(string * Jtype.t) list ->
  ret:Jtype.t ->
  meth
(** [meth name ~params ~ret] defaults to a public instance method. *)

val ctor : ?vis:visibility -> (string * Jtype.t) list -> ctor
(** [ctor params] defaults to a public constructor. *)

val meth_signature_string : meth -> string
(** Human-readable signature, e.g. ["static Foo bar(Baz, int)"] — used by
    error messages and the DOT exporter. *)
