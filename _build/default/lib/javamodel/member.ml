type visibility = Public | Protected | Private | Package [@@deriving eq, ord, show]

type field = {
  fname : string;
  ftype : Jtype.t;
  fvis : visibility;
  fstatic : bool;
}
[@@deriving eq, ord, show]

type meth = {
  mname : string;
  params : (string * Jtype.t) list;
  ret : Jtype.t;
  mvis : visibility;
  mstatic : bool;
  mdeprecated : bool;
}
[@@deriving eq, ord, show]

type ctor = {
  cparams : (string * Jtype.t) list;
  cvis : visibility;
}
[@@deriving eq, ord, show]

let field ?(vis = Public) ?(static = false) fname ftype =
  { fname; ftype; fvis = vis; fstatic = static }

let meth ?(vis = Public) ?(static = false) ?(deprecated = false) mname ~params ~ret =
  { mname; params; ret; mvis = vis; mstatic = static; mdeprecated = deprecated }

let ctor ?(vis = Public) cparams = { cparams; cvis = vis }

let meth_signature_string m =
  let params = List.map (fun (_, t) -> Jtype.simple_string t) m.params in
  Printf.sprintf "%s%s %s(%s)"
    (if m.mstatic then "static " else "")
    (Jtype.simple_string m.ret)
    m.mname
    (String.concat ", " params)
