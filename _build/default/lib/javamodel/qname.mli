(** Qualified Java names: a package path plus a simple name.

    [Qname.t] values identify classes and interfaces throughout the model.
    They are immutable and totally ordered so they can key maps and sets. *)

type t = {
  pkg : string list;  (** package components, e.g. [["java"; "lang"]] *)
  name : string;  (** simple name, e.g. ["Object"] *)
}

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val show : t -> string

val make : pkg:string list -> string -> t
(** [make ~pkg name] builds a qualified name. *)

val of_string : string -> t
(** [of_string "java.lang.Object"] splits on ['.']; the last component is the
    simple name, the rest is the package. A bare name has an empty package. *)

val to_string : t -> string
(** Dotted rendering, e.g. ["java.lang.Object"]. *)

val simple : t -> string
(** The simple (unqualified) name. *)

val package : t -> string list
(** The package components. *)

val package_string : t -> string
(** The package as a dotted string, [""] for the default package. *)

val same_package : t -> t -> bool
(** Whether two names live in the same package (used by the ranking
    heuristic's package-boundary count). *)

val object_qname : t
(** [java.lang.Object], the root of every hierarchy. *)

val string_qname : t
(** [java.lang.String]. *)

module Set : Set.S with type elt = t

module Map : Map.S with type key = t
