(** Java types as they appear in signatures.

    Reference types — classes, interfaces, and arrays — are the only types
    that can carry jungloid values (Definition 1 of the paper restricts
    queries to reference types). Primitive types and [void] still appear in
    signatures: primitive-typed parameters become free variables, and [void]
    is the pseudo input type of zero-argument constructions. *)

type prim = Boolean | Byte | Char | Short | Int | Long | Float | Double
[@@deriving eq, ord, show]

type t =
  | Ref of Qname.t  (** class or interface type *)
  | Array of t  (** array type; element may itself be any type *)
  | Prim of prim  (** primitive type — never a jungloid node *)
  | Void  (** method return [void], also the zero-input pseudo type *)
[@@deriving eq, ord, show]

val ref_ : Qname.t -> t

val ref_of_string : string -> t
(** [ref_of_string "java.io.File"] is [Ref (Qname.of_string ...)]. *)

val array : t -> t

val object_t : t
(** [java.lang.Object]. *)

val string_t : t
(** [java.lang.String]. *)

val is_reference : t -> bool
(** [true] exactly for [Ref _] and [Array _]. *)

val prim_of_string : string -> prim option
(** Recognizes the eight Java primitive keywords. *)

val prim_to_string : prim -> string

val to_string : t -> string
(** Java-like rendering, e.g. ["java.lang.String[]"]. *)

val simple_string : t -> string
(** Rendering with unqualified class names, e.g. ["String[]"]. *)

val element : t -> t option
(** Element type of an array, [None] otherwise. *)

module Set : Set.S with type elt = t

module Map : Map.S with type key = t
