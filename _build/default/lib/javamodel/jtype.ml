type prim = Boolean | Byte | Char | Short | Int | Long | Float | Double
[@@deriving eq, ord, show]

type t =
  | Ref of Qname.t
  | Array of t
  | Prim of prim
  | Void
[@@deriving eq, ord, show]

let ref_ q = Ref q

let ref_of_string s = Ref (Qname.of_string s)

let array t = Array t

let object_t = Ref Qname.object_qname

let string_t = Ref Qname.string_qname

let is_reference = function Ref _ | Array _ -> true | Prim _ | Void -> false

let prim_of_string = function
  | "boolean" -> Some Boolean
  | "byte" -> Some Byte
  | "char" -> Some Char
  | "short" -> Some Short
  | "int" -> Some Int
  | "long" -> Some Long
  | "float" -> Some Float
  | "double" -> Some Double
  | _ -> None

let prim_to_string = function
  | Boolean -> "boolean"
  | Byte -> "byte"
  | Char -> "char"
  | Short -> "short"
  | Int -> "int"
  | Long -> "long"
  | Float -> "float"
  | Double -> "double"

let rec to_string = function
  | Ref q -> Qname.to_string q
  | Array t -> to_string t ^ "[]"
  | Prim p -> prim_to_string p
  | Void -> "void"

let rec simple_string = function
  | Ref q -> Qname.simple q
  | Array t -> simple_string t ^ "[]"
  | Prim p -> prim_to_string p
  | Void -> "void"

let element = function Array t -> Some t | Ref _ | Prim _ | Void -> None

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
