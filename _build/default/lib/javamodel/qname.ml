type t = {
  pkg : string list;
  name : string;
}

let equal a b = String.equal a.name b.name && List.equal String.equal a.pkg b.pkg

let compare a b =
  match compare a.name b.name with 0 -> compare a.pkg b.pkg | c -> c

let make ~pkg name = { pkg; name }

let of_string s =
  match List.rev (String.split_on_char '.' s) with
  | [] | [ "" ] -> invalid_arg "Qname.of_string: empty name"
  | name :: rev_pkg -> { pkg = List.rev rev_pkg; name }

let to_string t = String.concat "." (t.pkg @ [ t.name ])

let simple t = t.name

let package t = t.pkg

let package_string t = String.concat "." t.pkg

let same_package a b = List.equal String.equal a.pkg b.pkg

let object_qname = { pkg = [ "java"; "lang" ]; name = "Object" }

let string_qname = { pkg = [ "java"; "lang" ]; name = "String" }

let pp fmt t = Format.pp_print_string fmt (to_string t)

let show = to_string

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
