(** Class and interface declarations.

    A declaration carries everything the signature graph needs: kind,
    supertypes, and member signatures. Implicit facts (classes without an
    [extends] clause extend [java.lang.Object]) are normalized by
    {!Hierarchy}, not here. *)

type kind = Class | Interface [@@deriving eq, ord, show]

type t = {
  dname : Qname.t;
  kind : kind;
  extends : Qname.t list;
      (** superclass for a class (at most one), superinterfaces for an
          interface (any number) *)
  implements : Qname.t list;  (** interfaces implemented by a class *)
  fields : Member.field list;
  methods : Member.meth list;
  ctors : Member.ctor list;
  abstract : bool;
  synthetic : bool;
      (** [true] for declarations invented by the loader for referenced but
          undeclared types; they behave as opaque classes extending Object *)
}
[@@deriving eq, show]

val make :
  ?kind:kind ->
  ?extends:Qname.t list ->
  ?implements:Qname.t list ->
  ?fields:Member.field list ->
  ?methods:Member.meth list ->
  ?ctors:Member.ctor list ->
  ?abstract:bool ->
  ?synthetic:bool ->
  Qname.t ->
  t
(** [make qname] defaults to a concrete, non-synthetic class with no members. *)

val opaque : Qname.t -> t
(** A synthetic placeholder class for a referenced but undeclared type. *)

val is_interface : t -> bool

val instantiable : t -> bool
(** Concrete class (not abstract, not an interface): a constructor call can
    produce a value of this exact type. *)
