lib/javamodel/hierarchy.pp.ml: Decl Hashtbl Jtype List Member Option Qname String
