lib/javamodel/qname.pp.ml: Format List Map Set String
