lib/javamodel/builder.pp.ml: Decl Hashtbl Hierarchy Jtype List Member Printf Qname String
