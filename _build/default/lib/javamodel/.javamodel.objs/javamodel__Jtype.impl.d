lib/javamodel/jtype.pp.ml: Format Map Ppx_deriving_runtime Qname Set
