lib/javamodel/builder.pp.mli: Hierarchy Jtype Member
