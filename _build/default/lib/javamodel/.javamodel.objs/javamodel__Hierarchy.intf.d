lib/javamodel/hierarchy.pp.mli: Decl Jtype Member Qname
