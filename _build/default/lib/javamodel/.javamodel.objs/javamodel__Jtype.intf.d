lib/javamodel/jtype.pp.mli: Map Ppx_deriving_runtime Qname Set
