lib/javamodel/member.pp.mli: Jtype Ppx_deriving_runtime
