lib/javamodel/qname.pp.mli: Format Map Set
