lib/javamodel/member.pp.ml: Jtype List Ppx_deriving_runtime Printf String
