lib/javamodel/decl.pp.mli: Member Ppx_deriving_runtime Qname
