lib/javamodel/decl.pp.ml: List Member Ppx_deriving_runtime Qname
