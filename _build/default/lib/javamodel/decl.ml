type kind = Class | Interface [@@deriving eq, ord, show]

type t = {
  dname : Qname.t;
  kind : kind;
  extends : Qname.t list;
  implements : Qname.t list;
  fields : Member.field list;
  methods : Member.meth list;
  ctors : Member.ctor list;
  abstract : bool;
  synthetic : bool;
}
[@@deriving eq, show]

let make ?(kind = Class) ?(extends = []) ?(implements = []) ?(fields = [])
    ?(methods = []) ?(ctors = []) ?(abstract = false) ?(synthetic = false) dname =
  { dname; kind; extends; implements; fields; methods; ctors; abstract; synthetic }

let opaque dname = make ~synthetic:true dname

let is_interface t = t.kind = Interface

let instantiable t = t.kind = Class && not t.abstract
