(** Concise programmatic construction of API models, used heavily by tests
    and the synthetic workload generator.

    Types in builder calls are given as strings: ["java.io.File"] for a
    reference type, ["int"] for a primitive, ["void"], and a ["[]"] suffix
    for arrays (["java.lang.String[]"]). Unqualified names are looked up in
    the builder's default package first, then treated as global. *)

type t

val create : ?default_pkg:string -> unit -> t
(** [create ~default_pkg:"com.example" ()] — unqualified type strings in
    subsequent calls resolve into [default_pkg] if a declaration with that
    simple name was already started there. *)

val typ : t -> string -> Jtype.t
(** Parse a builder type string (see above). *)

val cls :
  t ->
  ?extends:string ->
  ?implements:string list ->
  ?abstract:bool ->
  string ->
  unit
(** Start a class declaration. *)

val iface : t -> ?extends:string list -> string -> unit
(** Start an interface declaration. *)

val field : t -> ?vis:Member.visibility -> ?static:bool -> string -> typ:string -> unit
(** Add a field to the most recently started declaration. *)

val meth :
  t ->
  ?vis:Member.visibility ->
  ?static:bool ->
  ?deprecated:bool ->
  string ->
  params:string list ->
  ret:string ->
  unit
(** Add a method; [params] are type strings (parameter names are generated). *)

val ctor : t -> ?vis:Member.visibility -> params:string list -> unit -> unit
(** Add a constructor to the most recently started declaration. *)

val hierarchy : t -> Hierarchy.t
(** Finish: build the closed hierarchy from everything declared so far. *)
