type pending = {
  mutable p_kind : Decl.kind;
  mutable p_extends : Qname.t list;
  mutable p_implements : Qname.t list;
  mutable p_abstract : bool;
  mutable p_fields : Member.field list;  (* reversed *)
  mutable p_methods : Member.meth list;  (* reversed *)
  mutable p_ctors : Member.ctor list;  (* reversed *)
}

type t = {
  default_pkg : string list;
  mutable order : Qname.t list;  (* reversed declaration order *)
  started : (string, pending) Hashtbl.t;
  mutable current : (Qname.t * pending) option;
}

let create ?(default_pkg = "") () =
  let pkg = if default_pkg = "" then [] else String.split_on_char '.' default_pkg in
  { default_pkg = pkg; order = []; started = Hashtbl.create 64; current = None }

let resolve_qname t s =
  if String.contains s '.' then Qname.of_string s
  else
    let in_default = Qname.make ~pkg:t.default_pkg s in
    if Hashtbl.mem t.started (Qname.to_string in_default) then in_default
    else if Qname.simple Qname.object_qname = s then Qname.object_qname
    else if Qname.simple Qname.string_qname = s then Qname.string_qname
    else in_default

let typ t s =
  let rec strip_arrays s dims =
    if String.length s > 2 && String.sub s (String.length s - 2) 2 = "[]" then
      strip_arrays (String.sub s 0 (String.length s - 2)) (dims + 1)
    else (s, dims)
  in
  let base, dims = strip_arrays (String.trim s) 0 in
  let base_t =
    if base = "void" then Jtype.Void
    else
      match Jtype.prim_of_string base with
      | Some p -> Jtype.Prim p
      | None -> Jtype.Ref (resolve_qname t base)
  in
  let rec wrap ty n = if n = 0 then ty else wrap (Jtype.Array ty) (n - 1) in
  wrap base_t dims

let start t name ~kind =
  let q =
    if String.contains name '.' then Qname.of_string name
    else Qname.make ~pkg:t.default_pkg name
  in
  let p =
    {
      p_kind = kind;
      p_extends = [];
      p_implements = [];
      p_abstract = false;
      p_fields = [];
      p_methods = [];
      p_ctors = [];
    }
  in
  Hashtbl.replace t.started (Qname.to_string q) p;
  t.order <- q :: t.order;
  t.current <- Some (q, p);
  (q, p)

let cls t ?extends ?(implements = []) ?(abstract = false) name =
  let _, p = start t name ~kind:Decl.Class in
  p.p_abstract <- abstract;
  (match extends with
  | Some e -> p.p_extends <- [ resolve_qname t e ]
  | None -> ());
  p.p_implements <- List.map (resolve_qname t) implements

let iface t ?(extends = []) name =
  let _, p = start t name ~kind:Decl.Interface in
  p.p_extends <- List.map (resolve_qname t) extends

let with_current t f =
  match t.current with
  | None -> invalid_arg "Builder: no declaration started"
  | Some (_, p) -> f p

let field t ?vis ?static name ~typ:ty =
  with_current t (fun p ->
      p.p_fields <- Member.field ?vis ?static name (typ t ty) :: p.p_fields)

let meth t ?vis ?static ?deprecated name ~params ~ret =
  with_current t (fun p ->
      let params =
        List.mapi (fun i s -> (Printf.sprintf "arg%d" i, typ t s)) params
      in
      p.p_methods <-
        Member.meth ?vis ?static ?deprecated name ~params ~ret:(typ t ret)
        :: p.p_methods)

let ctor t ?vis ~params () =
  with_current t (fun p ->
      let params =
        List.mapi (fun i s -> (Printf.sprintf "arg%d" i, typ t s)) params
      in
      p.p_ctors <- Member.ctor ?vis params :: p.p_ctors)

let hierarchy t =
  let decls =
    List.rev_map
      (fun q ->
        let p = Hashtbl.find t.started (Qname.to_string q) in
        Decl.make ~kind:p.p_kind ~extends:p.p_extends ~implements:p.p_implements
          ~fields:(List.rev p.p_fields) ~methods:(List.rev p.p_methods)
          ~ctors:(List.rev p.p_ctors) ~abstract:p.p_abstract q)
      t.order
  in
  Hierarchy.of_decls decls
