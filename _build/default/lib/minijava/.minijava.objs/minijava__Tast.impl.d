lib/minijava/tast.ml: Javamodel List Printf
