lib/minijava/resolve.ml: Ast Hashtbl Japi Javamodel List Option Parser Printf String Tast
