lib/minijava/lexer.mli:
