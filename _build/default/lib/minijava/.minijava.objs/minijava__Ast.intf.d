lib/minijava/ast.mli:
