lib/minijava/resolve.mli: Ast Javamodel Tast
