lib/minijava/parser.ml: Array Ast Japi Lexer List Printf String
