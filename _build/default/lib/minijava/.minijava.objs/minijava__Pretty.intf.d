lib/minijava/pretty.mli: Ast Buffer
