lib/minijava/tast.mli: Javamodel
