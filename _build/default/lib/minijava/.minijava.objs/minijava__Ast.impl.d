lib/minijava/ast.ml:
