lib/minijava/lexer.ml: Array Buffer Japi List Printf String
