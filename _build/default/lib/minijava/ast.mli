(** Raw syntax trees for the mini-Java corpus language.

    This is the client-code language that jungloid mining consumes: class
    definitions with method bodies made of local declarations, assignments,
    calls, casts, conditionals, and returns — the constructs the backward
    slicer of Section 4.2 follows. Name chains such as [a.b.c(x)] stay
    unresolved here ([Name] heads); {!Resolve} decides which prefix is a
    variable, a class, or a package. *)

type pos = {
  line : int;
  col : int;
}

type rtype = {
  base : string;  (** dotted name, primitive keyword, or ["void"] *)
  dims : int;
}

type expr = {
  desc : desc;
  pos : pos;
}

and desc =
  | Name of string list  (** unresolved dotted chain: variable, field, or class *)
  | Null
  | Lit_string of string
  | Lit_int of int
  | Lit_bool of bool
  | Class_lit of string  (** [Foo.class] *)
  | Call of expr * string * expr list  (** [e.m(args)] *)
  | Field of expr * string  (** [e.f] on a non-name expression *)
  | Name_call of string list * string * expr list
      (** [a.b.m(args)] with an unresolved head chain *)
  | New of string * expr list
  | Cast of rtype * expr
  | Hole  (** the [?] placeholder: "I need a value here" (content assist) *)

type stmt =
  | Local of { typ : rtype; name : string; init : expr option; pos : pos }
  | Assign of { target : string; value : expr; pos : pos }
  | Expr of expr
  | Return of expr option
  | If of { cond : expr; then_ : stmt list; else_ : stmt list }
  | While of { cond : expr; body : stmt list }

type meth_def = {
  m_name : string;
  m_static : bool;
  m_ret : rtype;
  m_params : (rtype * string) list;
  m_body : stmt list;
  m_pos : pos;
}

type field_def = {
  f_type : rtype;
  f_name : string;
  f_pos : pos;
}

type class_def = {
  c_name : string;
  c_extends : string option;
  c_implements : string list;
  c_fields : field_def list;
  c_methods : meth_def list;
  c_pos : pos;
}

type file = {
  src_file : string;
  package : string list;
  imports : string list;
  classes : class_def list;
}
