(** Pretty-printer from mini-Java syntax trees back to source text.

    [print_file] emits a parseable program: parsing its output yields a
    structurally equal tree (round-trip tested). Used by tooling that wants
    to display corpus methods. *)

val print_expr : Buffer.t -> Ast.expr -> unit

val print_stmt : Buffer.t -> indent:int -> Ast.stmt -> unit

val print_file : Ast.file -> string
