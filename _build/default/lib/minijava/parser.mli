(** Recursive-descent parser for the mini-Java corpus language.

    Statements: local declarations with initializers, assignments to local
    variables, expression statements, [return], and [if]/[else] (whose
    condition is parsed but ignored by the flow-insensitive miner).
    Expressions: dotted name chains, instance and static calls, [new],
    casts, [Foo.class], and literals. The variable/class ambiguity of
    [a.b.c(x)] is left to {!Resolve}. *)

val parse : file:string -> string -> Ast.file
(** @raise Japi.Error.E on syntax errors. *)
