type state = {
  file : string;
  toks : Lexer.token array;
  mutable pos : int;
}

let peek st = st.toks.(st.pos)

let peek_at st k =
  let i = st.pos + k in
  if i < Array.length st.toks then st.toks.(i) else st.toks.(Array.length st.toks - 1)

let next st =
  let t = st.toks.(st.pos) in
  if t.Lexer.kind <> Lexer.Eof then st.pos <- st.pos + 1;
  t

let fail st (t : Lexer.token) msg =
  Japi.Error.fail ~file:st.file ~line:t.Lexer.line ~col:t.Lexer.col msg

let describe = function
  | Lexer.Ident s -> Printf.sprintf "identifier '%s'" s
  | Lexer.String_lit _ -> "string literal"
  | Lexer.Int_lit _ -> "integer literal"
  | Lexer.Kw k -> Printf.sprintf "'%s'" k
  | Lexer.Punct c -> Printf.sprintf "'%c'" c
  | Lexer.Eof -> "end of input"

let expect_punct st c =
  let t = next st in
  match t.Lexer.kind with
  | Lexer.Punct c' when c = c' -> ()
  | k -> fail st t (Printf.sprintf "expected '%c' but found %s" c (describe k))

let expect_kw st kw =
  let t = next st in
  match t.Lexer.kind with
  | Lexer.Kw k when k = kw -> ()
  | k -> fail st t (Printf.sprintf "expected '%s' but found %s" kw (describe k))

let expect_ident st what =
  let t = next st in
  match t.Lexer.kind with
  | Lexer.Ident s -> s
  | k -> fail st t (Printf.sprintf "expected %s but found %s" what (describe k))

let pos_of (t : Lexer.token) = { Ast.line = t.Lexer.line; col = t.Lexer.col }

let is_punct st k c =
  match (peek_at st k).Lexer.kind with Lexer.Punct c' -> c = c' | _ -> false

let is_ident st k =
  match (peek_at st k).Lexer.kind with Lexer.Ident _ -> true | _ -> false

(* Dotted name: IDENT (. IDENT)*; returns segments. *)
let parse_dotted st =
  let first = expect_ident st "a name" in
  let rec loop acc =
    if is_punct st 0 '.' && is_ident st 1 then begin
      ignore (next st);
      let s = expect_ident st "a name" in
      loop (s :: acc)
    end
    else List.rev acc
  in
  loop [ first ]

let type_keywords =
  [ "boolean"; "byte"; "char"; "short"; "int"; "long"; "float"; "double" ]

(* A type: dotted name or primitive keyword or void, plus array dims. *)
let parse_rtype st =
  let t = peek st in
  let base =
    match t.Lexer.kind with
    | Lexer.Kw "void" ->
        ignore (next st);
        "void"
    | Lexer.Ident s when List.mem s type_keywords ->
        ignore (next st);
        s
    | Lexer.Ident _ -> String.concat "." (parse_dotted st)
    | k -> fail st t (Printf.sprintf "expected a type but found %s" (describe k))
  in
  let rec dims n =
    if is_punct st 0 '[' && is_punct st 1 ']' then begin
      ignore (next st);
      ignore (next st);
      dims (n + 1)
    end
    else n
  in
  { Ast.base; dims = dims 0 }

(* Detect a cast at '(': Ident (. Ident)* ([])* ')' followed by an
   expression-starting token. *)
let looks_like_cast st =
  if not (is_punct st 0 '(') then false
  else begin
    let k = ref 1 in
    let ok = ref (is_ident st !k) in
    if !ok then begin
      incr k;
      let continue_ = ref true in
      while !continue_ do
        if is_punct st !k '.' && is_ident st (!k + 1) then k := !k + 2
        else if is_punct st !k '[' && is_punct st (!k + 1) ']' then k := !k + 2
        else continue_ := false
      done;
      if is_punct st !k ')' then begin
        let after = (peek_at st (!k + 1)).Lexer.kind in
        ok :=
          (match after with
          | Lexer.Ident _ | Lexer.String_lit _ | Lexer.Int_lit _ -> true
          | Lexer.Kw ("new" | "null" | "true" | "false") -> true
          | Lexer.Punct '(' -> true
          | _ -> false)
      end
      else ok := false
    end;
    !ok
  end

let rec parse_expr st = parse_postfix st

and parse_args st =
  expect_punct st '(';
  let args = ref [] in
  if not (is_punct st 0 ')') then begin
    let rec loop () =
      args := parse_expr st :: !args;
      if is_punct st 0 ',' then begin
        ignore (next st);
        loop ()
      end
    in
    loop ()
  end;
  expect_punct st ')';
  List.rev !args

and parse_primary st =
  let t = peek st in
  let pos = pos_of t in
  match t.Lexer.kind with
  | Lexer.Kw "new" ->
      ignore (next st);
      let name = String.concat "." (parse_dotted st) in
      let args = parse_args st in
      { Ast.desc = Ast.New (name, args); pos }
  | Lexer.Kw "null" ->
      ignore (next st);
      { Ast.desc = Ast.Null; pos }
  | Lexer.Punct '?' ->
      ignore (next st);
      { Ast.desc = Ast.Hole; pos }
  | Lexer.Kw "true" ->
      ignore (next st);
      { Ast.desc = Ast.Lit_bool true; pos }
  | Lexer.Kw "false" ->
      ignore (next st);
      { Ast.desc = Ast.Lit_bool false; pos }
  | Lexer.String_lit s ->
      ignore (next st);
      { Ast.desc = Ast.Lit_string s; pos }
  | Lexer.Int_lit n ->
      ignore (next st);
      { Ast.desc = Ast.Lit_int n; pos }
  | Lexer.Punct '(' when looks_like_cast st ->
      ignore (next st);
      let ty = parse_rtype st in
      expect_punct st ')';
      let e = parse_postfix st in
      { Ast.desc = Ast.Cast (ty, e); pos }
  | Lexer.Punct '(' ->
      ignore (next st);
      let e = parse_expr st in
      expect_punct st ')';
      e
  | Lexer.Ident _ ->
      (* A dotted chain; calls and [.class] are resolved in the postfix
         loop, so collect only the pure-name prefix here: stop before a
         segment that is followed by '('. *)
      let first = expect_ident st "a name" in
      let rec collect acc =
        if
          is_punct st 0 '.' && is_ident st 1
          && not (is_punct st 2 '(')
        then begin
          ignore (next st);
          let s = expect_ident st "a name" in
          collect (s :: acc)
        end
        else List.rev acc
      in
      let segs = collect [ first ] in
      (* Unqualified call [m(args)]: a call on the enclosing class (implicit
         this / own static method); the resolver gets an empty head chain. *)
      if segs = [ first ] && is_punct st 0 '(' then begin
        let args = parse_args st in
        { Ast.desc = Ast.Name_call ([], first, args); pos }
      end
      else (* [Foo.class] *)
      if
        is_punct st 0 '.'
        && (match (peek_at st 1).Lexer.kind with Lexer.Kw "class" -> true | _ -> false)
      then begin
        ignore (next st);
        ignore (next st);
        { Ast.desc = Ast.Class_lit (String.concat "." segs); pos }
      end
      else if is_punct st 0 '.' && is_ident st 1 && is_punct st 2 '(' then begin
        ignore (next st);
        let m = expect_ident st "a method name" in
        let args = parse_args st in
        { Ast.desc = Ast.Name_call (segs, m, args); pos }
      end
      else { Ast.desc = Ast.Name segs; pos }
  | k -> fail st t (Printf.sprintf "expected an expression but found %s" (describe k))

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    if is_punct st 0 '.' && is_ident st 1 then begin
      ignore (next st);
      let name = expect_ident st "a member name" in
      if is_punct st 0 '(' then
        let args = parse_args st in
        e := { Ast.desc = Ast.Call (!e, name, args); pos = (!e).Ast.pos }
      else e := { Ast.desc = Ast.Field (!e, name); pos = (!e).Ast.pos }
    end
    else continue_ := false
  done;
  !e

(* Statement lookahead: TYPE IDENT ('='|';') introduces a local. *)
let looks_like_local st =
  let k = ref 0 in
  let type_start =
    match (peek_at st 0).Lexer.kind with
    | Lexer.Ident _ -> true
    | Lexer.Kw "void" -> false
    | _ -> false
  in
  if not type_start then false
  else begin
    incr k;
    let continue_ = ref true in
    while !continue_ do
      if is_punct st !k '.' && is_ident st (!k + 1) then k := !k + 2
      else if is_punct st !k '[' && is_punct st (!k + 1) ']' then k := !k + 2
      else continue_ := false
    done;
    is_ident st !k && (is_punct st (!k + 1) '=' || is_punct st (!k + 1) ';')
  end

let rec parse_stmt st =
  let t = peek st in
  match t.Lexer.kind with
  | Lexer.Kw "return" ->
      ignore (next st);
      if is_punct st 0 ';' then begin
        ignore (next st);
        Ast.Return None
      end
      else begin
        let e = parse_expr st in
        expect_punct st ';';
        Ast.Return (Some e)
      end
  | Lexer.Kw "if" ->
      ignore (next st);
      expect_punct st '(';
      let cond = parse_expr st in
      expect_punct st ')';
      let then_ = parse_block_or_stmt st in
      let else_ =
        match (peek st).Lexer.kind with
        | Lexer.Kw "else" ->
            ignore (next st);
            parse_block_or_stmt st
        | _ -> []
      in
      Ast.If { cond; then_; else_ }
  | Lexer.Kw "while" ->
      ignore (next st);
      expect_punct st '(';
      let cond = parse_expr st in
      expect_punct st ')';
      let body = parse_block_or_stmt st in
      Ast.While { cond; body }
  | _ when looks_like_local st ->
      let pos = pos_of t in
      let typ = parse_rtype st in
      let name = expect_ident st "a variable name" in
      let init =
        if is_punct st 0 '=' then begin
          ignore (next st);
          Some (parse_expr st)
        end
        else None
      in
      expect_punct st ';';
      Ast.Local { typ; name; init; pos }
  | Lexer.Ident _ when is_punct st 1 '=' ->
      let pos = pos_of t in
      let target = expect_ident st "a variable name" in
      expect_punct st '=';
      let value = parse_expr st in
      expect_punct st ';';
      Ast.Assign { target; value; pos }
  | _ ->
      let e = parse_expr st in
      expect_punct st ';';
      Ast.Expr e

and parse_block_or_stmt st =
  if is_punct st 0 '{' then begin
    ignore (next st);
    let stmts = ref [] in
    while not (is_punct st 0 '}') do
      stmts := parse_stmt st :: !stmts
    done;
    ignore (next st);
    List.rev !stmts
  end
  else [ parse_stmt st ]

let skip_modifiers st =
  let static = ref false in
  let continue_ = ref true in
  while !continue_ do
    match (peek st).Lexer.kind with
    | Lexer.Kw ("public" | "protected" | "private" | "final") -> ignore (next st)
    | Lexer.Kw "static" ->
        ignore (next st);
        static := true
    | _ -> continue_ := false
  done;
  !static

(* A class member is a field ([Type name;]) or a method ([Type name(...)]);
   decided by the token after the member name. *)
type member_parsed =
  | Pfield of Ast.field_def
  | Pmeth of Ast.meth_def

let parse_meth st =
  let m_pos = pos_of (peek st) in
  let m_static = skip_modifiers st in
  let m_ret = parse_rtype st in
  let m_name = expect_ident st "a method name" in
  expect_punct st '(';
  let params = ref [] in
  if not (is_punct st 0 ')') then begin
    let rec loop () =
      let ty = parse_rtype st in
      let name = expect_ident st "a parameter name" in
      params := (ty, name) :: !params;
      if is_punct st 0 ',' then begin
        ignore (next st);
        loop ()
      end
    in
    loop ()
  end;
  expect_punct st ')';
  expect_punct st '{';
  let body = ref [] in
  while not (is_punct st 0 '}') do
    body := parse_stmt st :: !body
  done;
  ignore (next st);
  {
    Ast.m_name;
    m_static;
    m_ret;
    m_params = List.rev !params;
    m_body = List.rev !body;
    m_pos;
  }

let parse_member st =
  (* lookahead across modifiers and the type to find the deciding token *)
  let save = st.pos in
  let f_pos = pos_of (peek st) in
  ignore (skip_modifiers st);
  let f_type = parse_rtype st in
  let f_name = expect_ident st "a member name" in
  match (peek st).Lexer.kind with
  | Lexer.Punct ';' ->
      ignore (next st);
      Pfield { Ast.f_type; f_name; f_pos }
  | _ ->
      st.pos <- save;
      Pmeth (parse_meth st)

let parse_class st =
  let c_pos = pos_of (peek st) in
  ignore (skip_modifiers st);
  expect_kw st "class";
  let c_name = expect_ident st "a class name" in
  let c_extends =
    match (peek st).Lexer.kind with
    | Lexer.Kw "extends" ->
        ignore (next st);
        Some (String.concat "." (parse_dotted st))
    | _ -> None
  in
  let c_implements =
    match (peek st).Lexer.kind with
    | Lexer.Kw "implements" ->
        ignore (next st);
        let rec loop acc =
          let n = String.concat "." (parse_dotted st) in
          if is_punct st 0 ',' then begin
            ignore (next st);
            loop (n :: acc)
          end
          else List.rev (n :: acc)
        in
        loop []
    | _ -> []
  in
  expect_punct st '{';
  let methods = ref [] in
  let fields = ref [] in
  while not (is_punct st 0 '}') do
    match parse_member st with
    | Pfield f -> fields := f :: !fields
    | Pmeth m -> methods := m :: !methods
  done;
  ignore (next st);
  {
    Ast.c_name;
    c_extends;
    c_implements;
    c_fields = List.rev !fields;
    c_methods = List.rev !methods;
    c_pos;
  }

let parse ~file src =
  let st = { file; toks = Lexer.tokenize ~file src; pos = 0 } in
  let package =
    match (peek st).Lexer.kind with
    | Lexer.Kw "package" ->
        ignore (next st);
        let name = String.concat "." (parse_dotted st) in
        expect_punct st ';';
        String.split_on_char '.' name
    | _ -> []
  in
  let imports = ref [] in
  let rec import_loop () =
    match (peek st).Lexer.kind with
    | Lexer.Kw "import" ->
        ignore (next st);
        imports := String.concat "." (parse_dotted st) :: !imports;
        expect_punct st ';';
        import_loop ()
    | _ -> ()
  in
  import_loop ();
  let classes = ref [] in
  while (peek st).Lexer.kind <> Lexer.Eof do
    classes := parse_class st :: !classes
  done;
  {
    Ast.src_file = file;
    package;
    imports = List.rev !imports;
    classes = List.rev !classes;
  }
