type kind =
  | Ident of string
  | String_lit of string
  | Int_lit of int
  | Kw of string
  | Punct of char
  | Eof

type token = {
  kind : kind;
  line : int;
  col : int;
}

let keywords =
  [
    "package"; "import"; "class"; "extends"; "implements"; "static"; "public";
    "protected"; "private"; "new"; "return"; "null"; "true"; "false"; "void";
    "if"; "else"; "while"; "final";
  ]

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize ~file src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let col = ref 1 in
  let i = ref 0 in
  let emit kind ~line ~col = tokens := { kind; line; col } :: !tokens in
  let advance () =
    (if src.[!i] = '\n' then (
       incr line;
       col := 1)
     else incr col);
    incr i
  in
  while !i < n do
    let c = src.[!i] in
    let tok_line = !line and tok_col = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      advance ();
      advance ();
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '*' && !i + 1 < n && src.[!i + 1] = '/' then begin
          advance ();
          advance ();
          closed := true
        end
        else advance ()
      done;
      if not !closed then
        Japi.Error.fail ~file ~line:tok_line ~col:tok_col "unterminated block comment"
    end
    else if c = '"' then begin
      advance ();
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        let c = src.[!i] in
        if c = '"' then begin
          advance ();
          closed := true
        end
        else if c = '\\' && !i + 1 < n then begin
          advance ();
          let e = src.[!i] in
          advance ();
          Buffer.add_char buf
            (match e with 'n' -> '\n' | 't' -> '\t' | c -> c)
        end
        else begin
          Buffer.add_char buf c;
          advance ()
        end
      done;
      if not !closed then
        Japi.Error.fail ~file ~line:tok_line ~col:tok_col "unterminated string literal";
      emit (String_lit (Buffer.contents buf)) ~line:tok_line ~col:tok_col
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        advance ()
      done;
      emit (Int_lit (int_of_string (String.sub src start (!i - start)))) ~line:tok_line
        ~col:tok_col
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      let word = String.sub src start (!i - start) in
      let kind = if List.mem word keywords then Kw word else Ident word in
      emit kind ~line:tok_line ~col:tok_col
    end
    else if String.contains "{}()[];,.=?" c then begin
      advance ();
      emit (Punct c) ~line:tok_line ~col:tok_col
    end
    else
      Japi.Error.fail ~file ~line:tok_line ~col:tok_col
        (Printf.sprintf "unexpected character '%c'" c)
  done;
  tokens := { kind = Eof; line = !line; col = !col } :: !tokens;
  Array.of_list (List.rev !tokens)
