(** Lexer for the mini-Java corpus language. Reuses {!Japi.Error} for
    located failures. *)

type kind =
  | Ident of string
  | String_lit of string
  | Int_lit of int
  | Kw of string
      (** one of: package import class extends implements static public
          protected private new return null true false void if else *)
  | Punct of char  (** one of [{}()\[\];,.=?] *)
  | Eof

type token = {
  kind : kind;
  line : int;
  col : int;
}

val tokenize : file:string -> string -> token array
(** @raise Japi.Error.E on bad input. *)
