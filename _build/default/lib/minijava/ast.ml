type pos = {
  line : int;
  col : int;
}

type rtype = {
  base : string;
  dims : int;
}

type expr = {
  desc : desc;
  pos : pos;
}

and desc =
  | Name of string list
  | Null
  | Lit_string of string
  | Lit_int of int
  | Lit_bool of bool
  | Class_lit of string
  | Call of expr * string * expr list
  | Field of expr * string
  | Name_call of string list * string * expr list
  | New of string * expr list
  | Cast of rtype * expr
  | Hole

type stmt =
  | Local of { typ : rtype; name : string; init : expr option; pos : pos }
  | Assign of { target : string; value : expr; pos : pos }
  | Expr of expr
  | Return of expr option
  | If of { cond : expr; then_ : stmt list; else_ : stmt list }
  | While of { cond : expr; body : stmt list }

type meth_def = {
  m_name : string;
  m_static : bool;
  m_ret : rtype;
  m_params : (rtype * string) list;
  m_body : stmt list;
  m_pos : pos;
}

type field_def = {
  f_type : rtype;
  f_name : string;
  f_pos : pos;
}

type class_def = {
  c_name : string;
  c_extends : string option;
  c_implements : string list;
  c_fields : field_def list;
  c_methods : meth_def list;
  c_pos : pos;
}

type file = {
  src_file : string;
  package : string list;
  imports : string list;
  classes : class_def list;
}
