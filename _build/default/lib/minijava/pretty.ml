let rtype_string (rt : Ast.rtype) =
  rt.Ast.base ^ String.concat "" (List.init rt.Ast.dims (fun _ -> "[]"))

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec print_expr buf (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Name segs -> Buffer.add_string buf (String.concat "." segs)
  | Ast.Null -> Buffer.add_string buf "null"
  | Ast.Lit_string s -> Buffer.add_string buf ("\"" ^ escape_string s ^ "\"")
  | Ast.Lit_int n -> Buffer.add_string buf (string_of_int n)
  | Ast.Lit_bool b -> Buffer.add_string buf (string_of_bool b)
  | Ast.Class_lit name -> Buffer.add_string buf (name ^ ".class")
  | Ast.Hole -> Buffer.add_char buf '?'
  | Ast.Field (inner, name) ->
      print_expr buf inner;
      Buffer.add_char buf '.';
      Buffer.add_string buf name
  | Ast.Call (inner, name, args) ->
      print_expr buf inner;
      Buffer.add_char buf '.';
      Buffer.add_string buf name;
      print_args buf args
  | Ast.Name_call ([], name, args) ->
      Buffer.add_string buf name;
      print_args buf args
  | Ast.Name_call (segs, name, args) ->
      Buffer.add_string buf (String.concat "." segs);
      Buffer.add_char buf '.';
      Buffer.add_string buf name;
      print_args buf args
  | Ast.New (name, args) ->
      Buffer.add_string buf ("new " ^ name);
      print_args buf args
  | Ast.Cast (rt, inner) ->
      Buffer.add_string buf ("(" ^ rtype_string rt ^ ") ");
      print_expr buf inner

and print_args buf args =
  Buffer.add_char buf '(';
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_string buf ", ";
      print_expr buf a)
    args;
  Buffer.add_char buf ')'

let pad buf indent = Buffer.add_string buf (String.make indent ' ')

let rec print_stmt buf ~indent (s : Ast.stmt) =
  match s with
  | Ast.Local { typ; name; init; pos = _ } ->
      pad buf indent;
      Buffer.add_string buf (rtype_string typ ^ " " ^ name);
      (match init with
      | Some e ->
          Buffer.add_string buf " = ";
          print_expr buf e
      | None -> ());
      Buffer.add_string buf ";\n"
  | Ast.Assign { target; value; pos = _ } ->
      pad buf indent;
      Buffer.add_string buf (target ^ " = ");
      print_expr buf value;
      Buffer.add_string buf ";\n"
  | Ast.Expr e ->
      pad buf indent;
      print_expr buf e;
      Buffer.add_string buf ";\n"
  | Ast.Return None ->
      pad buf indent;
      Buffer.add_string buf "return;\n"
  | Ast.Return (Some e) ->
      pad buf indent;
      Buffer.add_string buf "return ";
      print_expr buf e;
      Buffer.add_string buf ";\n"
  | Ast.If { cond; then_; else_ } ->
      pad buf indent;
      Buffer.add_string buf "if (";
      print_expr buf cond;
      Buffer.add_string buf ") {\n";
      List.iter (print_stmt buf ~indent:(indent + 2)) then_;
      pad buf indent;
      Buffer.add_string buf "}";
      if else_ <> [] then begin
        Buffer.add_string buf " else {\n";
        List.iter (print_stmt buf ~indent:(indent + 2)) else_;
        pad buf indent;
        Buffer.add_string buf "}"
      end;
      Buffer.add_char buf '\n'
  | Ast.While { cond; body } ->
      pad buf indent;
      Buffer.add_string buf "while (";
      print_expr buf cond;
      Buffer.add_string buf ") {\n";
      List.iter (print_stmt buf ~indent:(indent + 2)) body;
      pad buf indent;
      Buffer.add_string buf "}\n"

let print_meth buf (m : Ast.meth_def) =
  pad buf 2;
  if m.Ast.m_static then Buffer.add_string buf "static ";
  Buffer.add_string buf (rtype_string m.Ast.m_ret ^ " " ^ m.Ast.m_name ^ "(");
  List.iteri
    (fun i (ty, name) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (rtype_string ty ^ " " ^ name))
    m.Ast.m_params;
  Buffer.add_string buf ") {\n";
  List.iter (print_stmt buf ~indent:4) m.Ast.m_body;
  pad buf 2;
  Buffer.add_string buf "}\n"

let print_class buf (c : Ast.class_def) =
  Buffer.add_string buf ("class " ^ c.Ast.c_name);
  (match c.Ast.c_extends with
  | Some e -> Buffer.add_string buf (" extends " ^ e)
  | None -> ());
  if c.Ast.c_implements <> [] then
    Buffer.add_string buf (" implements " ^ String.concat ", " c.Ast.c_implements);
  Buffer.add_string buf " {\n";
  List.iter
    (fun (f : Ast.field_def) ->
      pad buf 2;
      Buffer.add_string buf (rtype_string f.Ast.f_type ^ " " ^ f.Ast.f_name ^ ";\n"))
    c.Ast.c_fields;
  List.iteri
    (fun i m ->
      if i > 0 || c.Ast.c_fields <> [] then Buffer.add_char buf '\n';
      print_meth buf m)
    c.Ast.c_methods;
  Buffer.add_string buf "}\n"

let print_file (f : Ast.file) =
  let buf = Buffer.create 1024 in
  if f.Ast.package <> [] then
    Buffer.add_string buf
      (Printf.sprintf "package %s;\n\n" (String.concat "." f.Ast.package));
  List.iter (fun imp -> Buffer.add_string buf (Printf.sprintf "import %s;\n" imp)) f.Ast.imports;
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf '\n';
      print_class buf c)
    f.Ast.classes;
  Buffer.contents buf
