(** Name resolution and light type checking for corpus files.

    The corpus's own classes are added to (a copy of) the API hierarchy, so
    client methods can call each other — Section 4.2 inlines such calls
    during extraction. Resolution is deliberately permissive about argument
    types (the corpus is assumed to compile under a real Java compiler); it
    is strict about names: unknown variables, classes, fields, and methods
    are located errors, which catches typos in hand-written corpus data. *)

val program : api:Javamodel.Hierarchy.t -> Ast.file list -> Tast.program
(** @raise Japi.Error.E on resolution failures. *)

val parse_program : api:Javamodel.Hierarchy.t -> (string * string) list -> Tast.program
(** Parse then resolve [(filename, source)] corpus files. *)
