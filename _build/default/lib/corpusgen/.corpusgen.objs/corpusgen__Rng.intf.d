lib/corpusgen/rng.mli:
