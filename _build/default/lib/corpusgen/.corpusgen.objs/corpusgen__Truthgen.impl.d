lib/corpusgen/truthgen.ml: Array Buffer Japi Javamodel List Minijava Mining Printf Prospector Rng String
