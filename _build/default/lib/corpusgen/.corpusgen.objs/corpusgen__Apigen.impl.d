lib/corpusgen/apigen.ml: Javamodel List Printf Rng
