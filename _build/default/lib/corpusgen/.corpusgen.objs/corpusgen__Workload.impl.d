lib/corpusgen/workload.ml: Apigen Array Buffer Japi Javamodel List Prospector Rng
