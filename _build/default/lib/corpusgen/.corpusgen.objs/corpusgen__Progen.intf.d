lib/corpusgen/progen.mli: Javamodel
