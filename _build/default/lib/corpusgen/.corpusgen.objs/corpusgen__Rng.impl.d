lib/corpusgen/rng.ml: Array Int64 List
