lib/corpusgen/workload.mli: Javamodel Prospector
