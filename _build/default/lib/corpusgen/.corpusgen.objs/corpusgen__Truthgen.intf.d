lib/corpusgen/truthgen.mli: Javamodel
