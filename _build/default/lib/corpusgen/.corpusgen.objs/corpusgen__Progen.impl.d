lib/corpusgen/progen.ml: Buffer Javamodel List Printf Rng String
