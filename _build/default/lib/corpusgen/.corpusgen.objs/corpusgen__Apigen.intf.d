lib/corpusgen/apigen.mli: Javamodel
