(** Deterministic pseudo-random numbers (splitmix64): every synthetic
    workload is reproducible from its seed, independently of OCaml's global
    [Random] state. *)

type t

val create : seed:int -> t

val int : t -> int -> int
(** [int t bound] — uniform in [\[0, bound)], [bound > 0]. *)

val float : t -> float -> float
(** Uniform in [\[0, max)]. *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform choice. @raise Invalid_argument on an empty list. *)

val shuffle : t -> 'a list -> 'a list
