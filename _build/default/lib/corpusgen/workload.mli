(** Named workloads shared by the bench harness and tests. *)

val scaling_api : classes:int -> Javamodel.Hierarchy.t
(** A synthetic API of the given size (fixed seed). *)

val branchy_corpus :
  branches:int -> Javamodel.Hierarchy.t * (string * string) list
(** A corpus whose single cast has [branches] alternative producers — the
    Section 4.2 extraction-blowup scenario that motivates the per-cast
    cap. *)

val random_queries :
  Javamodel.Hierarchy.t -> Prospector.Graph.t -> count:int -> seed:int ->
  Prospector.Query.t list
(** Solvable queries sampled from a graph: pairs [(tin, tout)] with at least
    one path, for latency distribution measurements. *)
