module Builder = Javamodel.Builder

type params = {
  classes : int;
  packages : int;
  methods_per_class : int;
  subclass_fraction : float;
  void_fraction : float;
  seed : int;
}

let default_params =
  {
    classes = 200;
    packages = 8;
    methods_per_class = 5;
    subclass_fraction = 0.3;
    void_fraction = 0.1;
    seed = 42;
  }

let pkg_of p i = Printf.sprintf "synth.p%d" (i * p.packages / max 1 p.classes)

let class_name p i = Printf.sprintf "%s.C%d" (pkg_of p i) i

let class_qname p i = Javamodel.Qname.of_string (class_name p i)

let generate p =
  let rng = Rng.create ~seed:p.seed in
  let b = Builder.create () in
  for i = 0 to p.classes - 1 do
    let extends =
      if i > 0 && Rng.bool rng p.subclass_fraction then
        Some (class_name p (Rng.int rng i))
      else None
    in
    Builder.cls b ?extends (class_name p i);
    let n_methods =
      max 1 (p.methods_per_class / 2 + Rng.int rng (max 1 p.methods_per_class))
    in
    for m = 0 to n_methods - 1 do
      let ret = class_name p (Rng.int rng p.classes) in
      if Rng.bool rng p.void_fraction then
        Builder.meth b ~static:true (Printf.sprintf "make%d" m) ~params:[] ~ret
      else begin
        let n_params = Rng.int rng 2 in
        let params =
          List.init n_params (fun _ ->
              if Rng.bool rng 0.3 then "int" else class_name p (Rng.int rng p.classes))
        in
        Builder.meth b (Printf.sprintf "m%d" m) ~params ~ret
      end
    done;
    if Rng.bool rng 0.5 then Builder.ctor b ~params:[] ()
  done;
  Builder.hierarchy b
