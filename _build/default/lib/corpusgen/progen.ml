module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Member = Javamodel.Member
module Decl = Javamodel.Decl
module Hierarchy = Javamodel.Hierarchy

type params = {
  client_classes : int;
  methods_per_class : int;
  max_chain : int;
  cast_probability : float;
  seed : int;
}

let default_params =
  {
    client_classes = 6;
    methods_per_class = 3;
    max_chain = 4;
    cast_probability = 0.4;
    seed = 23;
  }

(* Methods of [q]'s own declaration that a generated chain can call:
   instance, reference-returning. *)
let chainable h q =
  match Hierarchy.find_opt h q with
  | None -> []
  | Some d ->
      List.filter
        (fun (m : Member.meth) ->
          (not m.Member.mstatic) && Jtype.is_reference m.Member.ret)
        d.Decl.methods

let ref_classes h =
  List.filter_map
    (fun (d : Decl.t) ->
      if d.Decl.synthetic || Qname.equal d.Decl.dname Qname.object_qname then None
      else if chainable h d.Decl.dname <> [] then Some d.Decl.dname
      else None)
    (Hierarchy.decls h)

(* A literal argument for a parameter we do not want to chain through. *)
let arg_for (_, ty) =
  match ty with
  | Jtype.Prim Jtype.Boolean -> "false"
  | Jtype.Prim _ -> "0"
  | Jtype.Ref q when Qname.equal q Qname.string_qname -> "\"x\""
  | _ -> "null"

let base_qname ty =
  match ty with Jtype.Ref q -> Some q | _ -> None

let generate h p =
  let rng = Rng.create ~seed:p.seed in
  let starts = ref_classes h in
  if starts = [] then []
  else begin
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "package progen;\n\n";
    for c = 0 to p.client_classes - 1 do
      Buffer.add_string buf (Printf.sprintf "class Client%d {\n" c);
      for m = 0 to p.methods_per_class - 1 do
        let start = Rng.pick rng starts in
        Buffer.add_string buf
          (Printf.sprintf "  void run%d(%s p0) {\n" m (Qname.to_string start));
        let var = ref "p0" in
        let cur = ref start in
        let vcount = ref 0 in
        let chain_len = 1 + Rng.int rng p.max_chain in
        (let continue_ = ref true in
         let step = ref 0 in
         while !continue_ && !step < chain_len do
           incr step;
           match chainable h !cur with
           | [] -> continue_ := false
           | ms ->
               let meth = Rng.pick rng ms in
               incr vcount;
               let v = Printf.sprintf "v%d" !vcount in
               let args =
                 String.concat ", " (List.map arg_for meth.Member.params)
               in
               Buffer.add_string buf
                 (Printf.sprintf "    %s %s = %s.%s(%s);\n"
                    (Jtype.to_string meth.Member.ret)
                    v !var meth.Member.mname args);
               var := v;
               (match base_qname meth.Member.ret with
               | Some q ->
                   cur := q;
                   (* sometimes cast the value to a strict subtype *)
                   if Rng.bool rng p.cast_probability then begin
                     let subs = Qname.Set.elements (Hierarchy.subtypes h q) in
                     match subs with
                     | [] -> ()
                     | _ ->
                         let sub = Rng.pick rng subs in
                         incr vcount;
                         let cv = Printf.sprintf "v%d" !vcount in
                         Buffer.add_string buf
                           (Printf.sprintf "    %s %s = (%s) %s;\n"
                              (Qname.to_string sub) cv (Qname.to_string sub) !var);
                         var := cv;
                         cur := sub
                   end
               | None -> continue_ := false)
         done);
        Buffer.add_string buf "  }\n";
        ()
      done;
      Buffer.add_string buf "}\n\n"
    done;
    [ (Printf.sprintf "progen-%d.java" p.seed, Buffer.contents buf) ]
  end
