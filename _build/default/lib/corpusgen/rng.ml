type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

(* splitmix64: fast, well-distributed, and tiny. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let float t max =
  let u = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  u /. 9007199254740992.0 *. max

let bool t p = float t 1.0 < p

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
