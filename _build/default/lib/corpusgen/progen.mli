(** Random mini-Java corpus generator for robustness testing.

    Given a hierarchy (typically from {!Apigen}), produces client classes
    whose method bodies chain calls that are guaranteed to resolve (every
    member is drawn from the receiver's declaration), sprinkled with
    downcasts to actual subtypes, [if]/[while] blocks, instance fields, and
    cross-client helper calls — the whole surface the miner consumes.
    Deterministic in the seed. *)

type params = {
  client_classes : int;
  methods_per_class : int;
  max_chain : int;  (** max calls per statement chain *)
  cast_probability : float;
  seed : int;
}

val default_params : params

val generate : Javamodel.Hierarchy.t -> params -> (string * string) list
(** [(filename, source)] pairs resolvable against the given hierarchy. *)
