module Jtype = Javamodel.Jtype
module Graph = Prospector.Graph
module Search = Prospector.Search

let scaling_api ~classes =
  Apigen.generate { Apigen.default_params with classes; seed = 42 }

let branchy_corpus ~branches =
  let hierarchy =
    Japi.Loader.load_string ~file:"branchy"
      {|
      package b;
      class Box { Object get(); static Box make(); }
      class Special { }
      |}
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "package corpusb;\nclass C {\n  void f() {\n";
  Buffer.add_string buf "    Object o = null;\n";
  for _ = 1 to branches do
    Buffer.add_string buf "    o = Box.make().get();\n"
  done;
  Buffer.add_string buf "    Special sp = (Special) o;\n  }\n}\n";
  (hierarchy, [ ("branchy-corpus", Buffer.contents buf) ])

let random_queries hierarchy graph ~count ~seed =
  let rng = Rng.create ~seed in
  let real =
    List.filter_map
      (fun (ty, node) ->
        match ty with Jtype.Ref _ -> Some (ty, node) | _ -> None)
      (Graph.real_nodes graph)
  in
  let arr = Array.of_list real in
  let n = Array.length arr in
  ignore hierarchy;
  let rec sample acc tries =
    if List.length acc >= count || tries > count * 200 then List.rev acc
    else
      let ti, si = arr.(Rng.int rng n) in
      let to_, di = arr.(Rng.int rng n) in
      if si <> di && Search.shortest_cost graph ~sources:[ si ] ~target:di <> None
      then sample ({ Prospector.Query.tin = ti; tout = to_ } :: acc) (tries + 1)
      else sample acc (tries + 1)
  in
  sample [] 0
