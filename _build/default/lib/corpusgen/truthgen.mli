(** Ground-truth workloads for the Section 4.4 accuracy experiments.

    The generated API has [producers] opaque lookup methods, each declared
    to return [Object] but {e actually} (ground truth) returning one
    specific model class. A corpus with coverage fraction [f] contains one
    viable cast example for [f·producers] of them, each reached through one
    of several interchangeable access routes. Because the declared types
    hide the truth, only mining can synthesize the viable downcasts — and
    we can score its output exactly:

    - {b completeness}: the fraction of covered-or-not producers whose
      viable jungloid [(Registry, Model_i)] the enriched graph synthesizes;
    - {b precision}: the fraction of synthesized downcast jungloids that
      are viable under the ground truth (cast target matches the producer's
      actual class). *)

type params = {
  producers : int;
  coverage : float;  (** fraction of producers with a corpus example *)
  routes : int;  (** distinct access routes to the registry (≥1) *)
  reuse_variable : bool;
      (** one method reusing a single [Object o] across reassignments —
          viable code that the paper's flow-insensitive slicer conflates
          (default [false]) *)
  seed : int;
}

val default_params : params
(** 20 producers, coverage 1.0, 3 routes, no variable reuse, seed 7. *)

type t = {
  hierarchy : Javamodel.Hierarchy.t;
  corpus : (string * string) list;  (** mini-Java sources *)
  covered : bool array;  (** which producers have a corpus example *)
  params : params;
}

val generate : params -> t

val generate_with : covered:bool array -> params -> t
(** Explicit coverage pattern (element [i] says whether producer [i] has a
    corpus example) — used by tests and the precision ablation. *)

val registry : string
(** Dotted name of the registry class — the [tin] of every query. *)

val model : int -> string
(** Dotted name of producer [i]'s actual model class — the [tout]. *)

type score = {
  completeness : float;
  precision : float;
  synthesized : int;  (** downcast jungloids returned across all queries *)
  viable : int;  (** of which viable under ground truth *)
}

val score :
  ?generalize:bool -> ?min_keep:int -> ?flow_sensitive:bool -> ?tin:string -> t -> score
(** Build the signature graph, mine the workload's corpus with the given
    settings, run the [producers] queries, and score the results.
    [tin] defaults to {!registry}; the flow-sensitivity ablation queries
    from ["void"] because conflated examples retain their full chains. *)
