type kind =
  | Ident of string
  | Kw_package
  | Kw_import
  | Kw_class
  | Kw_interface
  | Kw_extends
  | Kw_implements
  | Kw_static
  | Kw_public
  | Kw_protected
  | Kw_private
  | Kw_abstract
  | Kw_final
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Semi
  | Comma
  | Dot
  | Lbracket
  | Rbracket
  | At
  | Eof

type t = {
  kind : kind;
  line : int;
  col : int;
}

let describe = function
  | Ident s -> Printf.sprintf "identifier '%s'" s
  | Kw_package -> "'package'"
  | Kw_import -> "'import'"
  | Kw_class -> "'class'"
  | Kw_interface -> "'interface'"
  | Kw_extends -> "'extends'"
  | Kw_implements -> "'implements'"
  | Kw_static -> "'static'"
  | Kw_public -> "'public'"
  | Kw_protected -> "'protected'"
  | Kw_private -> "'private'"
  | Kw_abstract -> "'abstract'"
  | Kw_final -> "'final'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Semi -> "';'"
  | Comma -> "','"
  | Dot -> "'.'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | At -> "'@'"
  | Eof -> "end of input"

let keyword_of_ident = function
  | "package" -> Some Kw_package
  | "import" -> Some Kw_import
  | "class" -> Some Kw_class
  | "interface" -> Some Kw_interface
  | "extends" -> Some Kw_extends
  | "implements" -> Some Kw_implements
  | "static" -> Some Kw_static
  | "public" -> Some Kw_public
  | "protected" -> Some Kw_protected
  | "private" -> Some Kw_private
  | "abstract" -> Some Kw_abstract
  | "final" -> Some Kw_final
  | _ -> None
