(** Multi-file loading and name resolution for [.japi] sources.

    Resolution of a type name written in a file:
    + a dotted name is taken as fully qualified;
    + a simple name declared in the same package resolves there;
    + otherwise an [import] whose last component matches wins;
    + otherwise, if exactly one loaded declaration has that simple name, it
      wins (the curated data set relies on this to avoid import noise); two
      or more matches are an ambiguity error;
    + [Object] and [String] fall back to [java.lang];
    + anything else lands in the file's own package and is closed over as an
      opaque synthetic class.

    After resolution the hierarchy is validated: no inheritance cycles, a
    class may not extend an interface (or vice versa), and a class may not
    implement a class. *)

val load_files : (string * string) list -> Javamodel.Hierarchy.t
(** [load_files [(name, source); ...]] parses every source, resolves names
    across the whole set, and returns the closed hierarchy.
    @raise Error.E on syntax, ambiguity, duplicate, or validation errors. *)

val load_string : ?file:string -> string -> Javamodel.Hierarchy.t
(** Single-source convenience wrapper around {!load_files}. *)

val load_rfiles : Ast.rfile list -> Javamodel.Hierarchy.t
(** Resolution/validation entry point when the caller already parsed. *)
