(** Hand-written lexer for the [.japi] language.

    Handles [//] line comments, [/* ... */] block comments (non-nesting, like
    Java), and tracks line/column positions for error reporting. *)

val tokenize : file:string -> string -> Token.t array
(** The result always ends with a single {!Token.Eof} token.
    @raise Error.E on an unexpected character or unterminated comment. *)
