(** Recursive-descent parser for [.japi] files.

    Grammar (informally):
    {v
    file      ::= [package NAME ;] (import NAME ;)* decl*
    decl      ::= modifiers (class | interface) IDENT
                  [extends names] [implements names] { member* }
    member    ::= annotation* modifiers
                  ( type IDENT ( params ) ;          -- method
                  | IDENT ( params ) ;               -- constructor (IDENT = decl name)
                  | type IDENT ; )                   -- field
    type      ::= NAME ("[" "]")*
    annotation::= @ IDENT                            -- only @Deprecated is meaningful
    v} *)

val parse : file:string -> string -> Ast.rfile
(** @raise Error.E on syntax errors. *)
