(** Tokens of the [.japi] API-signature surface language. *)

type kind =
  | Ident of string
  | Kw_package
  | Kw_import
  | Kw_class
  | Kw_interface
  | Kw_extends
  | Kw_implements
  | Kw_static
  | Kw_public
  | Kw_protected
  | Kw_private
  | Kw_abstract
  | Kw_final
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Semi
  | Comma
  | Dot
  | Lbracket
  | Rbracket
  | At
  | Eof

type t = {
  kind : kind;
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
}

val describe : kind -> string
(** Rendering for error messages, e.g. ["identifier 'foo'"] or ["'{'"]. *)

val keyword_of_ident : string -> kind option
(** Recognize the language's keywords; everything else is an identifier. *)
