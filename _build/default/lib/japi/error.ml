type t = {
  file : string;
  line : int;
  col : int;
  msg : string;
}

exception E of t

let fail ~file ~line ~col msg = raise (E { file; line; col; msg })

let to_string t = Printf.sprintf "%s:%d:%d: %s" t.file t.line t.col t.msg

let () =
  Printexc.register_printer (function
    | E t -> Some (to_string t)
    | _ -> None)
