let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let tokenize ~file src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let col = ref 1 in
  let i = ref 0 in
  let emit kind ~line ~col = tokens := { Token.kind; line; col } :: !tokens in
  let advance () =
    (if src.[!i] = '\n' then (
       incr line;
       col := 1)
     else incr col);
    incr i
  in
  while !i < n do
    let c = src.[!i] in
    let tok_line = !line and tok_col = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      advance ();
      advance ();
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '*' && !i + 1 < n && src.[!i + 1] = '/' then begin
          advance ();
          advance ();
          closed := true
        end
        else advance ()
      done;
      if not !closed then
        Error.fail ~file ~line:tok_line ~col:tok_col "unterminated block comment"
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      let word = String.sub src start (!i - start) in
      let kind =
        match Token.keyword_of_ident word with
        | Some kw -> kw
        | None -> Token.Ident word
      in
      emit kind ~line:tok_line ~col:tok_col
    end
    else begin
      let kind =
        match c with
        | '{' -> Some Token.Lbrace
        | '}' -> Some Token.Rbrace
        | '(' -> Some Token.Lparen
        | ')' -> Some Token.Rparen
        | ';' -> Some Token.Semi
        | ',' -> Some Token.Comma
        | '.' -> Some Token.Dot
        | '[' -> Some Token.Lbracket
        | ']' -> Some Token.Rbracket
        | '@' -> Some Token.At
        | _ -> None
      in
      match kind with
      | Some k ->
          advance ();
          emit k ~line:tok_line ~col:tok_col
      | None ->
          Error.fail ~file ~line:tok_line ~col:tok_col
            (Printf.sprintf "unexpected character '%c'" c)
    end
  done;
  tokens := { Token.kind = Token.Eof; line = !line; col = !col } :: !tokens;
  Array.of_list (List.rev !tokens)
