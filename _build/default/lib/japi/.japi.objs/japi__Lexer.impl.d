lib/japi/lexer.ml: Array Error List Printf String Token
