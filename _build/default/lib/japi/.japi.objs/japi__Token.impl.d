lib/japi/token.ml: Printf
