lib/japi/printer.ml: Buffer Hashtbl Javamodel List Option Printf String
