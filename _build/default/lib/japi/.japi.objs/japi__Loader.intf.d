lib/japi/loader.mli: Ast Javamodel
