lib/japi/ast.ml: Javamodel
