lib/japi/parser.mli: Ast
