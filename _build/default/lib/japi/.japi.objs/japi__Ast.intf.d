lib/japi/ast.mli: Javamodel
