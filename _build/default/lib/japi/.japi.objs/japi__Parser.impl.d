lib/japi/parser.ml: Array Ast Buffer Error Javamodel Lexer List Printf String Token
