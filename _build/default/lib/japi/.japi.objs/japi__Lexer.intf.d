lib/japi/lexer.mli: Token
