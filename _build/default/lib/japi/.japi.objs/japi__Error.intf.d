lib/japi/error.mli:
