lib/japi/error.ml: Printexc Printf
