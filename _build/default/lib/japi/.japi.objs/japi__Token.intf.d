lib/japi/token.mli:
