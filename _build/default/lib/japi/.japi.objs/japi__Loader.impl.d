lib/japi/loader.ml: Ast Error Hashtbl Javamodel List Logs Option Parser Printf String
