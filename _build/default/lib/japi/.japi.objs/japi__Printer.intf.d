lib/japi/printer.mli: Buffer Javamodel
