(** Pretty-printer from the resolved model back to [.japi] text.

    [print_hierarchy] groups declarations by package and emits fully
    qualified type references, so its output re-loads to an equal hierarchy
    (round-trip tested). Synthetic (opaque) declarations are skipped — the
    loader re-invents them. *)

val print_decl : Buffer.t -> Javamodel.Decl.t -> unit

val print_files : Javamodel.Hierarchy.t -> (string * string) list
(** One pseudo-file per package, suitable for {!Loader.load_files}; the name
    of each pseudo-file is the package's dotted name. *)

val print_hierarchy : Javamodel.Hierarchy.t -> string
(** All packages concatenated, for human display only (a multi-package
    output is not a single parsable [.japi] file — use {!print_files} for
    round-tripping). *)
