(** Raw (unresolved) syntax trees for [.japi] files.

    Type names are kept as dotted strings; {!Loader} resolves them against
    the set of declarations loaded across all files. *)

type rtype = {
  base : string;  (** dotted name, primitive keyword, or ["void"] *)
  dims : int;  (** array dimensions *)
}

type rparam = {
  ptype : rtype;
  pname : string option;  (** parameter names are optional in signatures *)
}

type rmember =
  | Rfield of {
      vis : Javamodel.Member.visibility;
      static : bool;
      typ : rtype;
      name : string;
    }
  | Rmeth of {
      vis : Javamodel.Member.visibility;
      static : bool;
      deprecated : bool;
      ret : rtype;
      name : string;
      params : rparam list;
    }
  | Rctor of {
      vis : Javamodel.Member.visibility;
      params : rparam list;
    }

type rdecl = {
  kind : Javamodel.Decl.kind;
  abstract : bool;
  name : string;  (** simple name; the file's package qualifies it *)
  extends : string list;  (** dotted names *)
  implements : string list;
  members : rmember list;
  decl_line : int;
}

type rfile = {
  src_file : string;
  package : string list;
  imports : string list;  (** dotted names of imported types *)
  decls : rdecl list;
}
