type state = {
  file : string;
  toks : Token.t array;
  mutable pos : int;
}

let peek st = st.toks.(st.pos)

let next st =
  let t = st.toks.(st.pos) in
  if t.Token.kind <> Token.Eof then st.pos <- st.pos + 1;
  t

let fail_at st (t : Token.t) msg = Error.fail ~file:st.file ~line:t.line ~col:t.col msg

let expect st kind =
  let t = next st in
  if t.Token.kind <> kind then
    fail_at st t
      (Printf.sprintf "expected %s but found %s" (Token.describe kind)
         (Token.describe t.Token.kind))

let expect_ident st what =
  let t = next st in
  match t.Token.kind with
  | Token.Ident s -> s
  | k -> fail_at st t (Printf.sprintf "expected %s but found %s" what (Token.describe k))

(* Dotted name: IDENT (. IDENT)* *)
let parse_dotted st =
  let first = expect_ident st "a name" in
  let buf = Buffer.create 16 in
  Buffer.add_string buf first;
  let rec loop () =
    match (peek st).Token.kind with
    | Token.Dot ->
        ignore (next st);
        Buffer.add_char buf '.';
        Buffer.add_string buf (expect_ident st "a name after '.'");
        loop ()
    | _ -> ()
  in
  loop ();
  Buffer.contents buf

let parse_type st =
  let base = parse_dotted st in
  let rec dims n =
    match (peek st).Token.kind with
    | Token.Lbracket ->
        ignore (next st);
        expect st Token.Rbracket;
        dims (n + 1)
    | _ -> n
  in
  { Ast.base; dims = dims 0 }

type modifiers = {
  mutable vis : Javamodel.Member.visibility;
  mutable static : bool;
  mutable abstract : bool;
  mutable deprecated : bool;
}

let parse_annotations_and_modifiers st =
  let m =
    { vis = Javamodel.Member.Public; static = false; abstract = false; deprecated = false }
  in
  let rec loop () =
    match (peek st).Token.kind with
    | Token.At ->
        ignore (next st);
        let name = expect_ident st "an annotation name" in
        if String.equal name "Deprecated" then m.deprecated <- true;
        loop ()
    | Token.Kw_public ->
        ignore (next st);
        m.vis <- Javamodel.Member.Public;
        loop ()
    | Token.Kw_protected ->
        ignore (next st);
        m.vis <- Javamodel.Member.Protected;
        loop ()
    | Token.Kw_private ->
        ignore (next st);
        m.vis <- Javamodel.Member.Private;
        loop ()
    | Token.Kw_static ->
        ignore (next st);
        m.static <- true;
        loop ()
    | Token.Kw_abstract ->
        ignore (next st);
        m.abstract <- true;
        loop ()
    | Token.Kw_final ->
        ignore (next st);
        loop ()
    | _ -> ()
  in
  loop ();
  m

let parse_params st =
  expect st Token.Lparen;
  let params = ref [] in
  (match (peek st).Token.kind with
  | Token.Rparen -> ()
  | _ ->
      let rec loop () =
        let ptype = parse_type st in
        let pname =
          match (peek st).Token.kind with
          | Token.Ident _ -> Some (expect_ident st "a parameter name")
          | _ -> None
        in
        params := { Ast.ptype; pname } :: !params;
        match (peek st).Token.kind with
        | Token.Comma ->
            ignore (next st);
            loop ()
        | _ -> ()
      in
      loop ());
  expect st Token.Rparen;
  List.rev !params

let parse_member st ~decl_name =
  let m = parse_annotations_and_modifiers st in
  let first = parse_type st in
  match (peek st).Token.kind with
  | Token.Lparen when first.Ast.dims = 0 && String.equal first.Ast.base decl_name ->
      (* Constructor: the declaration's own simple name followed by '('. *)
      let params = parse_params st in
      expect st Token.Semi;
      Ast.Rctor { vis = m.vis; params }
  | _ -> (
      let name = expect_ident st "a member name" in
      match (peek st).Token.kind with
      | Token.Lparen ->
          let params = parse_params st in
          expect st Token.Semi;
          Ast.Rmeth
            {
              vis = m.vis;
              static = m.static;
              deprecated = m.deprecated;
              ret = first;
              name;
              params;
            }
      | _ ->
          expect st Token.Semi;
          Ast.Rfield { vis = m.vis; static = m.static; typ = first; name })

let parse_name_list st =
  let rec loop acc =
    let n = parse_dotted st in
    match (peek st).Token.kind with
    | Token.Comma ->
        ignore (next st);
        loop (n :: acc)
    | _ -> List.rev (n :: acc)
  in
  loop []

let parse_decl st =
  let decl_line = (peek st).Token.line in
  let m = parse_annotations_and_modifiers st in
  let kind =
    match (next st).Token.kind with
    | Token.Kw_class -> Javamodel.Decl.Class
    | Token.Kw_interface -> Javamodel.Decl.Interface
    | k ->
        fail_at st
          st.toks.(st.pos - 1)
          (Printf.sprintf "expected 'class' or 'interface' but found %s"
             (Token.describe k))
  in
  let name = expect_ident st "a class or interface name" in
  let extends =
    match (peek st).Token.kind with
    | Token.Kw_extends ->
        ignore (next st);
        parse_name_list st
    | _ -> []
  in
  let implements =
    match (peek st).Token.kind with
    | Token.Kw_implements ->
        ignore (next st);
        parse_name_list st
    | _ -> []
  in
  expect st Token.Lbrace;
  let members = ref [] in
  let rec loop () =
    match (peek st).Token.kind with
    | Token.Rbrace -> ignore (next st)
    | Token.Eof -> fail_at st (peek st) "unexpected end of input inside a declaration"
    | _ ->
        members := parse_member st ~decl_name:name :: !members;
        loop ()
  in
  loop ();
  {
    Ast.kind;
    abstract = m.abstract || kind = Javamodel.Decl.Interface;
    name;
    extends;
    implements;
    members = List.rev !members;
    decl_line;
  }

let parse ~file src =
  let st = { file; toks = Lexer.tokenize ~file src; pos = 0 } in
  let package =
    match (peek st).Token.kind with
    | Token.Kw_package ->
        ignore (next st);
        let name = parse_dotted st in
        expect st Token.Semi;
        String.split_on_char '.' name
    | _ -> []
  in
  let imports = ref [] in
  let rec import_loop () =
    match (peek st).Token.kind with
    | Token.Kw_import ->
        ignore (next st);
        imports := parse_dotted st :: !imports;
        expect st Token.Semi;
        import_loop ()
    | _ -> ()
  in
  import_loop ();
  let decls = ref [] in
  let rec decl_loop () =
    match (peek st).Token.kind with
    | Token.Eof -> ()
    | _ ->
        decls := parse_decl st :: !decls;
        decl_loop ()
  in
  decl_loop ();
  { Ast.src_file = file; package; imports = List.rev !imports; decls = List.rev !decls }
