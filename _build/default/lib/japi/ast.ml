type rtype = {
  base : string;
  dims : int;
}

type rparam = {
  ptype : rtype;
  pname : string option;
}

type rmember =
  | Rfield of {
      vis : Javamodel.Member.visibility;
      static : bool;
      typ : rtype;
      name : string;
    }
  | Rmeth of {
      vis : Javamodel.Member.visibility;
      static : bool;
      deprecated : bool;
      ret : rtype;
      name : string;
      params : rparam list;
    }
  | Rctor of {
      vis : Javamodel.Member.visibility;
      params : rparam list;
    }

type rdecl = {
  kind : Javamodel.Decl.kind;
  abstract : bool;
  name : string;
  extends : string list;
  implements : string list;
  members : rmember list;
  decl_line : int;
}

type rfile = {
  src_file : string;
  package : string list;
  imports : string list;
  decls : rdecl list;
}
