module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Member = Javamodel.Member
module Decl = Javamodel.Decl
module Hierarchy = Javamodel.Hierarchy

let vis_prefix = function
  | Member.Public -> ""
  | Member.Protected -> "protected "
  | Member.Private -> "private "
  | Member.Package -> ""

let add_params buf params =
  Buffer.add_char buf '(';
  List.iteri
    (fun i (name, ty) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Jtype.to_string ty);
      Buffer.add_char buf ' ';
      Buffer.add_string buf name)
    params;
  Buffer.add_char buf ')'

let print_decl buf (d : Decl.t) =
  let kind_kw = match d.kind with Decl.Class -> "class" | Decl.Interface -> "interface" in
  if d.abstract && d.kind = Decl.Class then Buffer.add_string buf "abstract ";
  Buffer.add_string buf kind_kw;
  Buffer.add_char buf ' ';
  Buffer.add_string buf (Qname.simple d.dname);
  if d.extends <> [] then begin
    Buffer.add_string buf " extends ";
    Buffer.add_string buf (String.concat ", " (List.map Qname.to_string d.extends))
  end;
  if d.implements <> [] then begin
    Buffer.add_string buf " implements ";
    Buffer.add_string buf (String.concat ", " (List.map Qname.to_string d.implements))
  end;
  Buffer.add_string buf " {\n";
  List.iter
    (fun (f : Member.field) ->
      Buffer.add_string buf "  ";
      Buffer.add_string buf (vis_prefix f.fvis);
      if f.fstatic then Buffer.add_string buf "static ";
      Buffer.add_string buf (Jtype.to_string f.ftype);
      Buffer.add_char buf ' ';
      Buffer.add_string buf f.fname;
      Buffer.add_string buf ";\n")
    d.fields;
  List.iter
    (fun (c : Member.ctor) ->
      Buffer.add_string buf "  ";
      Buffer.add_string buf (vis_prefix c.cvis);
      Buffer.add_string buf (Qname.simple d.dname);
      add_params buf c.cparams;
      Buffer.add_string buf ";\n")
    d.ctors;
  List.iter
    (fun (m : Member.meth) ->
      Buffer.add_string buf "  ";
      if m.mdeprecated then Buffer.add_string buf "@Deprecated ";
      Buffer.add_string buf (vis_prefix m.mvis);
      if m.mstatic then Buffer.add_string buf "static ";
      Buffer.add_string buf (Jtype.to_string m.ret);
      Buffer.add_char buf ' ';
      Buffer.add_string buf m.mname;
      add_params buf m.params;
      Buffer.add_string buf ";\n")
    d.methods;
  Buffer.add_string buf "}\n"

let group_by_package h =
  let by_pkg = Hashtbl.create 64 in
  List.iter
    (fun (d : Decl.t) ->
      if not d.synthetic then begin
        let pkg = Qname.package_string d.dname in
        let existing = Option.value ~default:[] (Hashtbl.find_opt by_pkg pkg) in
        Hashtbl.replace by_pkg pkg (d :: existing)
      end)
    (Hierarchy.decls h);
  Hashtbl.fold (fun pkg ds acc -> (pkg, List.rev ds) :: acc) by_pkg []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let print_package pkg ds =
  let buf = Buffer.create 4096 in
  if pkg <> "" then Buffer.add_string buf (Printf.sprintf "package %s;\n\n" pkg);
  List.iteri
    (fun j d ->
      if j > 0 then Buffer.add_char buf '\n';
      print_decl buf d)
    ds;
  Buffer.contents buf

let print_files h =
  List.map (fun (pkg, ds) -> (pkg, print_package pkg ds)) (group_by_package h)

let print_hierarchy h =
  String.concat "\n" (List.map snd (print_files h))
