let log_src = Logs.Src.create "prospector.japi" ~doc:"API signature loading"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Member = Javamodel.Member
module Decl = Javamodel.Decl
module Hierarchy = Javamodel.Hierarchy

type resolver = {
  declared : (string, Qname.t) Hashtbl.t;  (* full dotted name -> qname *)
  by_simple : (string, Qname.t list) Hashtbl.t;
}

let build_resolver rfiles =
  let declared = Hashtbl.create 256 in
  let by_simple = Hashtbl.create 256 in
  List.iter
    (fun (rf : Ast.rfile) ->
      List.iter
        (fun (d : Ast.rdecl) ->
          let q = Qname.make ~pkg:rf.package d.name in
          let full = Qname.to_string q in
          if Hashtbl.mem declared full then
            Error.fail ~file:rf.src_file ~line:d.decl_line ~col:1
              (Printf.sprintf "duplicate declaration of %s" full);
          Hashtbl.replace declared full q;
          let existing = Option.value ~default:[] (Hashtbl.find_opt by_simple d.name) in
          Hashtbl.replace by_simple d.name (q :: existing))
        rf.decls)
    rfiles;
  { declared; by_simple }

let simple_of_dotted s =
  match List.rev (String.split_on_char '.' s) with
  | last :: _ -> last
  | [] -> s

let resolve_name r (rf : Ast.rfile) ~line name =
  if String.contains name '.' then Qname.of_string name
  else
    let in_pkg = Qname.make ~pkg:rf.package name in
    if Hashtbl.mem r.declared (Qname.to_string in_pkg) then in_pkg
    else
      let from_import =
        List.find_opt (fun imp -> String.equal (simple_of_dotted imp) name) rf.imports
      in
      match from_import with
      | Some imp -> Qname.of_string imp
      | None -> (
          match Option.value ~default:[] (Hashtbl.find_opt r.by_simple name) with
          | [ q ] -> q
          | [] ->
              if String.equal name "Object" then Qname.object_qname
              else if String.equal name "String" then Qname.string_qname
              else in_pkg
          | qs ->
              Error.fail ~file:rf.src_file ~line ~col:1
                (Printf.sprintf "ambiguous type name '%s': could be %s" name
                   (String.concat " or " (List.map Qname.to_string qs))))

let resolve_type r rf ~line (rt : Ast.rtype) =
  let base =
    if String.equal rt.base "void" then Jtype.Void
    else
      match Jtype.prim_of_string rt.base with
      | Some p -> Jtype.Prim p
      | None -> Jtype.Ref (resolve_name r rf ~line rt.base)
  in
  let rec wrap ty n = if n = 0 then ty else wrap (Jtype.Array ty) (n - 1) in
  wrap base rt.dims

let resolve_params r rf ~line params =
  List.mapi
    (fun i (p : Ast.rparam) ->
      let name =
        match p.pname with Some n -> n | None -> Printf.sprintf "arg%d" i
      in
      (name, resolve_type r rf ~line p.ptype))
    params

let resolve_decl r (rf : Ast.rfile) (d : Ast.rdecl) =
  let line = d.decl_line in
  let fields, methods, ctors =
    List.fold_left
      (fun (fs, ms, cs) m ->
        match m with
        | Ast.Rfield { vis; static; typ; name } ->
            ( Member.field ~vis ~static name (resolve_type r rf ~line typ) :: fs,
              ms,
              cs )
        | Ast.Rmeth { vis; static; deprecated; ret; name; params } ->
            ( fs,
              Member.meth ~vis ~static ~deprecated name
                ~params:(resolve_params r rf ~line params)
                ~ret:(resolve_type r rf ~line ret)
              :: ms,
              cs )
        | Ast.Rctor { vis; params } ->
            (fs, ms, Member.ctor ~vis (resolve_params r rf ~line params) :: cs))
      ([], [], []) d.members
  in
  Decl.make ~kind:d.kind ~abstract:d.abstract
    ~extends:(List.map (resolve_name r rf ~line) d.extends)
    ~implements:(List.map (resolve_name r rf ~line) d.implements)
    ~fields:(List.rev fields) ~methods:(List.rev methods) ~ctors:(List.rev ctors)
    (Qname.make ~pkg:rf.package d.name)

let validate_kinds h r rfiles =
  let fail_decl (rf : Ast.rfile) (d : Ast.rdecl) msg =
    Error.fail ~file:rf.src_file ~line:d.decl_line ~col:1 msg
  in
  List.iter
    (fun (rf : Ast.rfile) ->
      List.iter
        (fun (d : Ast.rdecl) ->
          let check_target kind_needed role name =
            let q = resolve_name r rf ~line:d.decl_line name in
            match Hierarchy.find_opt h q with
            | Some target when not target.Decl.synthetic ->
                if target.Decl.kind <> kind_needed then
                  fail_decl rf d
                    (Printf.sprintf "%s %s %s %s, which is not %s" d.name role
                       (match kind_needed with
                       | Decl.Class -> "class"
                       | Decl.Interface -> "interface")
                       (Qname.to_string q)
                       (match kind_needed with
                       | Decl.Class -> "a class"
                       | Decl.Interface -> "an interface"))
            | _ -> ()
          in
          (match d.kind with
          | Decl.Class ->
              List.iter (check_target Decl.Class "extends") d.extends;
              List.iter (check_target Decl.Interface "implements") d.implements
          | Decl.Interface ->
              List.iter (check_target Decl.Interface "extends") d.extends);
          (* Interfaces cannot declare constructors. *)
          if
            d.kind = Decl.Interface
            && List.exists (function Ast.Rctor _ -> true | _ -> false) d.members
          then fail_decl rf d (Printf.sprintf "interface %s declares a constructor" d.name);
          (* Cycle check: the declaration must not appear in its own strict
             supertype set. *)
          let q = Qname.make ~pkg:rf.package d.name in
          if Qname.Set.mem q (Hierarchy.supers h q) then
            fail_decl rf d
              (Printf.sprintf "inheritance cycle through %s" (Qname.to_string q)))
        rf.decls)
    rfiles

let load_rfiles rfiles =
  let r = build_resolver rfiles in
  let decls =
    List.concat_map
      (fun (rf : Ast.rfile) -> List.map (resolve_decl r rf) rf.decls)
      rfiles
  in
  let h = Hierarchy.of_decls decls in
  validate_kinds h r rfiles;
  Log.info (fun m ->
      m "loaded %d declarations from %d files (hierarchy size %d incl. placeholders)"
        (List.length decls) (List.length rfiles) (Hierarchy.size h));
  h

let load_files sources =
  let rfiles = List.map (fun (file, src) -> Parser.parse ~file src) sources in
  load_rfiles rfiles

let load_string ?(file = "<string>") src = load_files [ (file, src) ]
