(** Located errors for the [.japi] front end. *)

type t = {
  file : string;
  line : int;
  col : int;
  msg : string;
}

exception E of t

val fail : file:string -> line:int -> col:int -> string -> 'a
(** Raise {!E}. *)

val to_string : t -> string
(** ["file:line:col: msg"]. *)
