lib/simstudy/study_sim.mli: Apidata Javamodel Programmer Prospector
