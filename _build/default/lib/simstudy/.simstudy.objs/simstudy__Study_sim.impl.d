lib/simstudy/study_sim.ml: Apidata Buffer Corpusgen List Printf Programmer String
