lib/simstudy/programmer.ml: Apidata Corpusgen Javamodel List Option Prospector
