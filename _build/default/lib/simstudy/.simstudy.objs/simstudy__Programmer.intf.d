lib/simstudy/programmer.mli: Apidata Corpusgen Javamodel Prospector
