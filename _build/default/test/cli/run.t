The Section 1 parsing example at rank 1:

  $ ../../bin/prospector_cli.exe query org.eclipse.core.resources.IFile org.eclipse.jdt.core.dom.ASTNode -n 1
  #1  λx. AST.parseCompilationUnit(JavaCore.createCompilationUnitFrom(x), false) : IFile -> ASTNode
        ICompilationUnit compilationUnit = JavaCore.createCompilationUnitFrom(file);
        CompilationUnit compilationUnit2 = AST.parseCompilationUnit(compilationUnit, false);

The FAQ 270 void query:

  $ ../../bin/prospector_cli.exe query void org.eclipse.ui.texteditor.DocumentProviderRegistry -n 2
  #1  λ(). DocumentProviderRegistry.getDefault() : void -> DocumentProviderRegistry
        DocumentProviderRegistry documentProviderRegistry = DocumentProviderRegistry.getDefault();

Content assist with a visible variable:

  $ ../../bin/prospector_cli.exe assist org.eclipse.ui.IEditorInput -v ep:org.eclipse.ui.IEditorPart -n 3
  #1  ep.getEditorInput()   (uses ep)
  #2  ((IFileEditorInput) ep.getEditorInput())   (uses ep)
  #3  JDIDebugUIPlugin.getActivePage().getActiveEditor().getEditorInput()

Query inference from a source hole:

  $ cat > hole.java <<'JAVA'
  > package client;
  > class Demo {
  >   void run(SelectionChangedEvent event) {
  >     ISelection sel = ?;
  >   }
  > }
  > JAVA
  $ ../../bin/prospector_cli.exe infer hole.java -n 2
  hole in client.Demo.run, expecting ISelection (in scope: this, event)
    1. event.getSelection()
    2. new StructuredSelection(event)
  

Unknown types fail cleanly:

  $ ../../bin/prospector_cli.exe query no.Such also.Missing
  no jungloids found
