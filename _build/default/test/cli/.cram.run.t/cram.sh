  $ ../../bin/prospector_cli.exe query org.eclipse.core.resources.IFile org.eclipse.jdt.core.dom.ASTNode -n 1
  $ ../../bin/prospector_cli.exe query void org.eclipse.ui.texteditor.DocumentProviderRegistry -n 2
  $ ../../bin/prospector_cli.exe assist org.eclipse.ui.IEditorInput -v ep:org.eclipse.ui.IEditorPart -n 3
  $ cat > hole.java <<'JAVA'
  > package client;
  > class Demo {
  >   void run(SelectionChangedEvent event) {
  >     ISelection sel = ?;
  >   }
  > }
  > JAVA
  $ ../../bin/prospector_cli.exe infer hole.java -n 2
  $ ../../bin/prospector_cli.exe query no.Such also.Missing
