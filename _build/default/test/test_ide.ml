(* Tests for the IDE layer: query inference from a [?] hole in source
   (the paper's Section 5 content-assist integration, end-to-end). *)

module Jtype = Javamodel.Jtype
module Infer = Prospector_ide.Infer

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let api = Apidata.Api.hierarchy
let graph = Apidata.Api.default_graph

let faq270_snippet =
  {|
  package client;
  class EditorDocumentFinder {
    void run(IEditorPart ep) {
      IEditorInput inp = ep.getEditorInput();
      DocumentProviderRegistry dpreg = ?;
    }
  }
  |}

let test_hole_found () =
  let hs = Infer.contexts ~api:(api ()) [ ("snippet", faq270_snippet) ] in
  check_int "one hole" 1 (List.length hs);
  let h = List.hd hs in
  check_string "expected type" "org.eclipse.ui.texteditor.DocumentProviderRegistry"
    (Jtype.to_string h.Infer.expected);
  check_string "meth" "run" h.Infer.meth

let test_hole_vars_in_scope () =
  let hs = Infer.contexts ~api:(api ()) [ ("snippet", faq270_snippet) ] in
  let h = List.hd hs in
  let names = List.map fst h.Infer.vars in
  (* this, the parameter, and the local declared before the hole *)
  Alcotest.(check (list string)) "scope order" [ "this"; "ep"; "inp" ] names

let test_hole_suggestions () =
  (* The Section 2.2 void query answers: DocumentProviderRegistry.getDefault() *)
  let hs = Infer.contexts ~api:(api ()) [ ("snippet", faq270_snippet) ] in
  let suggestions =
    Infer.suggest_at ~graph:(graph ()) ~hierarchy:(api ()) (List.hd hs)
  in
  check_bool "suggestions exist" true (suggestions <> []);
  check_string "top is getDefault" "DocumentProviderRegistry.getDefault()"
    (List.hd suggestions).Prospector.Assist.title

let test_hole_uses_visible_variable () =
  let src =
    {|
    package client;
    class InputFinder {
      void run(IEditorPart ep) {
        IEditorInput inp = ?;
      }
    }
    |}
  in
  let hs = Infer.contexts ~api:(api ()) [ ("snippet", src) ] in
  let suggestions =
    Infer.suggest_at ~graph:(graph ()) ~hierarchy:(api ()) (List.hd hs)
  in
  let top = List.hd suggestions in
  check_bool "uses ep" true (top.Prospector.Assist.uses_var = Some "ep");
  check_bool "title references ep" true (contains ~sub:"ep." top.Prospector.Assist.title)

let test_assignment_hole () =
  let src =
    {|
    package client;
    class AssignHole {
      void run(SelectionChangedEvent event) {
        ISelection sel = null;
        sel = ?;
      }
    }
    |}
  in
  let hs = Infer.contexts ~api:(api ()) [ ("snippet", src) ] in
  check_int "one hole" 1 (List.length hs);
  let h = List.hd hs in
  check_string "expected from declared type" "org.eclipse.jface.viewers.ISelection"
    (Jtype.to_string h.Infer.expected);
  let suggestions =
    Infer.suggest_at ~graph:(graph ()) ~hierarchy:(api ()) h
  in
  check_bool "event.getSelection() suggested" true
    (List.exists
       (fun s -> contains ~sub:"event.getSelection()" s.Prospector.Assist.title)
       suggestions)

let test_multiple_holes_in_order () =
  let src =
    {|
    package client;
    class TwoHoles {
      void run(IWorkbench workbench) {
        IWorkbenchWindow window = ?;
        IWorkbenchPage page = ?;
      }
    }
    |}
  in
  let hs = Infer.contexts ~api:(api ()) [ ("snippet", src) ] in
  check_int "two holes" 2 (List.length hs);
  let first = List.nth hs 0 and second = List.nth hs 1 in
  check_string "first expects window" "org.eclipse.ui.IWorkbenchWindow"
    (Jtype.to_string first.Infer.expected);
  (* the second hole sees the first hole's variable in scope *)
  check_bool "window visible at second hole" true
    (List.mem_assoc "window" second.Infer.vars)

let test_branch_locals_scoped () =
  let src =
    {|
    package client;
    class Branchy {
      void run(IWorkbench workbench) {
        if (true) {
          IWorkbenchWindow inner = workbench.getActiveWorkbenchWindow();
          IWorkbenchPage page = ?;
        }
        Shell shell = ?;
      }
    }
    |}
  in
  let hs = Infer.contexts ~api:(api ()) [ ("snippet", src) ] in
  check_int "two holes" 2 (List.length hs);
  let in_branch = List.nth hs 0 and after = List.nth hs 1 in
  check_bool "inner visible inside branch" true
    (List.mem_assoc "inner" in_branch.Infer.vars);
  check_bool "inner not visible after branch" false
    (List.mem_assoc "shell" in_branch.Infer.vars);
  check_bool "branch-local out of scope afterwards" false
    (List.mem_assoc "inner" after.Infer.vars)

let test_static_method_no_this () =
  let src =
    {|
    package client;
    class StaticCtx {
      static void run(IWorkbench workbench) {
        IWorkbenchWindow window = ?;
      }
    }
    |}
  in
  let hs = Infer.contexts ~api:(api ()) [ ("snippet", src) ] in
  check_bool "no this in scope" false (List.mem_assoc "this" (List.hd hs).Infer.vars)

let test_no_holes () =
  let src =
    "package client; class Plain { void run(IWorkbench w) { w.close(); } }"
  in
  check_int "none" 0 (List.length (Infer.contexts ~api:(api ()) [ ("s", src) ]))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ide"
    [
      ( "infer",
        [
          tc "hole found" test_hole_found;
          tc "vars in scope" test_hole_vars_in_scope;
          tc "suggestions" test_hole_suggestions;
          tc "uses visible variable" test_hole_uses_visible_variable;
          tc "assignment hole" test_assignment_hole;
          tc "multiple holes" test_multiple_holes_in_order;
          tc "branch locals scoped" test_branch_locals_scoped;
          tc "static method no this" test_static_method_no_this;
          tc "no holes" test_no_holes;
        ] );
    ]
