(* The extended evaluation set: 18 more Table 1-style problems over the
   broadened API model. Each must surface its desired solution within the
   row's rank bound — a regression corpus for the whole engine. *)

module Extended = Apidata.Extended

let measured =
  lazy
    (Extended.run_all
       ~graph:(Apidata.Api.default_graph ())
       ~hierarchy:(Apidata.Api.hierarchy ())
       ())

let test_all_found () =
  List.iter
    (fun (m : Extended.measured) ->
      Alcotest.(check bool)
        (Printf.sprintf "problem %d (%s): rank %s within %d"
           m.Extended.problem.Extended.id m.Extended.problem.Extended.description
           (match m.Extended.rank with Some r -> string_of_int r | None -> "No")
           m.Extended.problem.Extended.max_rank)
        true (Extended.ok m))
    (Lazy.force measured)

let test_majority_rank_one () =
  let ms = Lazy.force measured in
  let rank1 = List.filter (fun m -> m.Extended.rank = Some 1) ms in
  Alcotest.(check bool)
    (Printf.sprintf "%d of %d at rank 1" (List.length rank1) (List.length ms))
    true
    (List.length rank1 * 2 >= List.length ms)

let test_interactive () =
  List.iter
    (fun (m : Extended.measured) ->
      Alcotest.(check bool)
        (Printf.sprintf "problem %d under 1.1s" m.Extended.problem.Extended.id)
        true (m.Extended.time_s < 1.1))
    (Lazy.force measured)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "extended"
    [
      ( "problems",
        [
          tc "all found within bounds" test_all_found;
          tc "majority at rank 1" test_majority_rank_one;
          tc "interactive latency" test_interactive;
        ] );
    ]
