(* Additional coverage: DOT export, Stats, Query.parse edge cases, the
   per-source search semantics, codegen corners, and the legacy-collections
   mining idioms of Section 4.1. *)

module Jtype = Javamodel.Jtype
module Graph = Prospector.Graph
module Search = Prospector.Search
module Sig_graph = Prospector.Sig_graph
module Query = Prospector.Query
module Dot = Prospector.Dot
module Elem = Prospector.Elem

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let load = Japi.Loader.load_string

(* ---------- Dot ---------- *)

let dot_model () =
  load
    {|
    package d;
    class A { B toB(); }
    class B extends A { }
    |}

let test_dot_full_is_digraph () =
  let g = Sig_graph.build (dot_model ()) in
  let dot = Dot.full g in
  check_bool "digraph" true (contains ~sub:"digraph" dot);
  check_bool "node A" true (contains ~sub:"label=\"A\"" dot);
  check_bool "edge label" true (contains ~sub:"toB" dot);
  check_bool "widen dotted" true (contains ~sub:"style=dotted" dot)

let test_dot_subgraph_radius () =
  let h =
    load "package d; class A { B toB(); } class B { C toC(); } class C { }"
  in
  let g = Sig_graph.build h in
  let r1 = Dot.subgraph g ~centers:[ Jtype.ref_of_string "d.A" ] ~radius:1 in
  check_bool "radius 1 contains B" true (contains ~sub:"label=\"B\"" r1);
  check_bool "radius 1 omits C" false (contains ~sub:"label=\"C\"" r1);
  let r2 = Dot.subgraph g ~centers:[ Jtype.ref_of_string "d.A" ] ~radius:2 in
  check_bool "radius 2 contains C" true (contains ~sub:"label=\"C\"" r2)

let test_dot_typestate_dashed () =
  let g, _ = Apidata.Api.jungloid_graph () in
  let dot = Dot.full g in
  check_bool "typestates dashed" true (contains ~sub:"style=dashed" dot);
  check_bool "downcast penwidth" true (contains ~sub:"penwidth=2" dot)

let test_dot_of_paths_highlights_first () =
  let h = dot_model () in
  let g = Sig_graph.build h in
  let src = Option.get (Graph.find_type_node g (Jtype.ref_of_string "d.A")) in
  let dst = Option.get (Graph.find_type_node g (Jtype.ref_of_string "d.B")) in
  let paths = Search.enumerate g ~sources:[ src ] ~target:dst () in
  let dot = Dot.of_paths g paths in
  check_bool "bold highlight" true (contains ~sub:"color=red" dot)

(* ---------- Query.parse / query edge cases ---------- *)

let test_query_parse_array_types () =
  let h = load "package p; class A { byte[] data(); } class B { B wrap(byte[] raw); }" in
  let g = Sig_graph.build h in
  (* query with an array tout written with [] suffix *)
  let rs = Query.run ~graph:g ~hierarchy:h (Query.query "p.A" "byte[]") in
  check_bool "array tout" true (rs <> []);
  check_bool "uses data()" true (contains ~sub:".data()" (List.hd rs).Query.code)

let test_query_void_to_void_empty () =
  let h = load "package p; class A { }" in
  let g = Sig_graph.build h in
  check_int "void-void" 0 (List.length (Query.run ~graph:g ~hierarchy:h (Query.query "void" "void")))

let test_query_same_type_no_identity () =
  let h = load "package p; class A { p.A clone2(); }" in
  let g = Sig_graph.build h in
  let rs = Query.run ~graph:g ~hierarchy:h (Query.query "p.A" "p.A") in
  (* no identity jungloid; only real chains like clone2 twice are cyclic, so
     the only candidate is a single call... which ends at A again. *)
  List.iter
    (fun r -> check_bool "has code" true (String.length r.Query.code > 0))
    rs

(* ---------- per-source search semantics ---------- *)

let test_per_source_budgets_independent () =
  let h =
    load
      {|
      package p;
      class Target { static Target cheap(); }
      class Far { M1 mid(); }
      class M1 { M2 next(); }
      class M2 { Target toT(); }
      |}
  in
  let g = Sig_graph.build h in
  let far = Option.get (Graph.find_type_node g (Jtype.ref_of_string "p.Far")) in
  let void = Graph.void_node g in
  let target = Option.get (Graph.find_type_node g (Jtype.ref_of_string "p.Target")) in
  (* global-budget search: the void source's cost-1 path suppresses Far's
     cost-2 path *)
  let global = Search.enumerate g ~sources:[ void; far ] ~target () in
  let from_far =
    List.filter (fun (p : Search.path) -> p.Search.source = far) global
  in
  check_int "global budget starves Far" 0 (List.length from_far);
  (* per-source budgets admit both *)
  let per = Search.enumerate_per_source g ~sources:[ void; far ] ~target () in
  let from_far =
    List.filter (fun (p : Search.path) -> p.Search.source = far) per
  in
  check_bool "per-source budget serves Far" true (from_far <> [])

(* ---------- codegen corners ---------- *)

let test_codegen_static_field () =
  let h = load "package p; class K { static K INSTANCE; }" in
  let g = Sig_graph.build h in
  let rs = Query.run ~graph:g ~hierarchy:h (Query.query "void" "p.K") in
  check_bool "found" true (rs <> []);
  check_bool "static field access" true (contains ~sub:"K.INSTANCE" (List.hd rs).Query.code)

let test_codegen_instance_field () =
  let h = load "package p; class A { B child; } class B { }" in
  let g = Sig_graph.build h in
  let rs = Query.run ~graph:g ~hierarchy:h (Query.query "p.A" "p.B") in
  check_bool "found" true (rs <> []);
  check_bool "field read" true (contains ~sub:".child" (List.hd rs).Query.code)

let test_codegen_void_input_no_x () =
  let h = load "package p; class F { static F make(); }" in
  let g = Sig_graph.build h in
  let rs = Query.run ~graph:g ~hierarchy:h (Query.query "void" "p.F") in
  let top = List.hd rs in
  check_string "code" "F f = F.make();\n" top.Query.code

(* ---------- legacy-collections mining (Section 4.1) ---------- *)

let test_legacy_zip_entries_mined () =
  let g = Apidata.Api.default_graph () in
  let h = Apidata.Api.hierarchy () in
  let settings = { Query.default_settings with slack = 2 } in
  let rs =
    Query.run ~settings ~graph:g ~hierarchy:h
      (Query.query "java.util.zip.ZipFile" "java.util.zip.ZipEntry")
  in
  check_bool "mined enumeration route present" true
    (List.exists
       (fun r ->
         contains ~sub:".entries()" r.Query.code
         && contains ~sub:"(ZipEntry)" r.Query.code)
       rs)

let test_legacy_vector_element_mined () =
  let g = Apidata.Api.default_graph () in
  let h = Apidata.Api.hierarchy () in
  let rs =
    Query.run ~graph:g ~hierarchy:h
      (Query.query "java.util.Vector" "org.eclipse.core.resources.IFile")
  in
  check_bool "found" true (rs <> []);
  check_bool "elementAt cast" true
    (List.exists
       (fun r ->
         contains ~sub:".elementAt(" r.Query.code && contains ~sub:"(IFile)" r.Query.code)
       rs)

let test_legacy_string_cast_not_overgeneralized () =
  (* The (String) names.nextElement() example must not bless casting any
     Object to String from unrelated producers: the suffix keeps the
     propertyNames() step (it conflicts with the ZipEntry cast through the
     shared nextElement elem). *)
  let prog = Apidata.Api.program () in
  let df = Mining.Dataflow.build prog in
  let examples = Mining.Generalize.run (Mining.Extract.extract df) in
  let string_casts =
    List.filter
      (fun (ex : Mining.Extract.example) ->
        match List.rev ex.Mining.Extract.elems with
        | Elem.Downcast { to_; _ } :: _ -> Jtype.equal to_ Jtype.string_t
        | _ -> false)
      examples
  in
  check_bool "string-cast example exists" true (string_casts <> []);
  List.iter
    (fun (ex : Mining.Extract.example) ->
      check_bool "keeps a producer step" true (List.length ex.Mining.Extract.elems >= 2))
    string_casts

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "core_more"
    [
      ( "dot",
        [
          tc "full digraph" test_dot_full_is_digraph;
          tc "subgraph radius" test_dot_subgraph_radius;
          tc "typestate dashed" test_dot_typestate_dashed;
          tc "path highlight" test_dot_of_paths_highlights_first;
        ] );
      ( "query edges",
        [
          tc "array types" test_query_parse_array_types;
          tc "void to void" test_query_void_to_void_empty;
          tc "same type" test_query_same_type_no_identity;
          tc "per-source budgets" test_per_source_budgets_independent;
        ] );
      ( "codegen corners",
        [
          tc "static field" test_codegen_static_field;
          tc "instance field" test_codegen_instance_field;
          tc "void input" test_codegen_void_input_no_x;
        ] );
      ( "legacy collections",
        [
          tc "zip entries mined" test_legacy_zip_entries_mined;
          tc "vector element mined" test_legacy_vector_element_mined;
          tc "string cast kept specific" test_legacy_string_cast_not_overgeneralized;
        ] );
    ]
