test/test_simstudy.ml: Alcotest Apidata Lazy List Printf Simstudy String
