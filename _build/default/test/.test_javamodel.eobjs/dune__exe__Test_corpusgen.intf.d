test/test_corpusgen.mli:
