test/test_table1.ml: Alcotest Apidata Javamodel Lazy List Minijava Mining Printf Prospector String
