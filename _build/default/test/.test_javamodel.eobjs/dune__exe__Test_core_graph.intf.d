test/test_core_graph.mli:
