test/test_extensions.ml: Alcotest Apidata Bytes Filename Fun Japi Javamodel List Option Printf Prospector String Sys Unix
