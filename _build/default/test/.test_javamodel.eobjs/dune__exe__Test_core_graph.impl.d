test/test_core_graph.ml: Alcotest Japi Javamodel List Option Printf Prospector
