test/test_core_more.mli:
