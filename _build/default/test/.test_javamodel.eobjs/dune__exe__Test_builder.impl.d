test/test_builder.ml: Alcotest Apidata Javamodel List
