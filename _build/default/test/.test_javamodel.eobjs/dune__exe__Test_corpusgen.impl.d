test/test_corpusgen.ml: Alcotest Array Corpusgen Javamodel List Minijava Mining Printf Prospector
