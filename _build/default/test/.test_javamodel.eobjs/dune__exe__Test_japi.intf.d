test/test_japi.mli:
