test/test_extended.ml: Alcotest Apidata Lazy List Printf
