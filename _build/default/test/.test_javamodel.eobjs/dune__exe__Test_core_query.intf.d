test/test_core_query.mli:
