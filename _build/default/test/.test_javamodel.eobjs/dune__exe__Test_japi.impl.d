test/test_japi.ml: Alcotest Array Japi Javamodel List Printf String
