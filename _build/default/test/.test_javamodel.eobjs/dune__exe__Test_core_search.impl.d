test/test_core_search.ml: Alcotest Array Buffer Japi Javamodel List Option Printf Prospector
