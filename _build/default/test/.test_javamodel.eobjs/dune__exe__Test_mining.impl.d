test/test_mining.ml: Alcotest Buffer Japi Javamodel List Minijava Mining Printf Prospector String
