test/test_javamodel.ml: Alcotest Array Javamodel List Printf QCheck2 QCheck_alcotest
