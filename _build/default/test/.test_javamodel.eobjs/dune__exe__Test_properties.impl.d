test/test_properties.ml: Alcotest Corpusgen Japi Javamodel List Minijava Mining Prospector QCheck2 QCheck_alcotest String
