test/test_simstudy.mli:
