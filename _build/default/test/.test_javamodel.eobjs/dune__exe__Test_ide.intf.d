test/test_ide.mli:
