test/test_ide.ml: Alcotest Apidata Javamodel List Prospector Prospector_ide String
