test/test_core_query.ml: Alcotest Buffer Japi Javamodel List Printf Prospector String
