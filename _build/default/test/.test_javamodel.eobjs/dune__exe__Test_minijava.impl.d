test/test_minijava.ml: Alcotest Apidata Array Japi Javamodel List Minijava String
