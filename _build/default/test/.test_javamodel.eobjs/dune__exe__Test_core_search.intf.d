test/test_core_search.mli:
