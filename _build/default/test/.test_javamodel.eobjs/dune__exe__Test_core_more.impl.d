test/test_core_more.ml: Alcotest Apidata Japi Javamodel List Mining Option Prospector String
