test/test_javamodel.mli:
