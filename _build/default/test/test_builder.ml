(* Direct tests for Javamodel.Builder and Hierarchy.copy — the programmatic
   construction path used by tests and the synthetic generators. *)

module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Member = Javamodel.Member
module Decl = Javamodel.Decl
module Hierarchy = Javamodel.Hierarchy
module Builder = Javamodel.Builder

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let q = Qname.of_string

let test_builder_types () =
  let b = Builder.create ~default_pkg:"p" () in
  Builder.cls b "Local";
  check_string "default pkg" "p.Local" (Jtype.to_string (Builder.typ b "Local"));
  check_string "qualified" "a.b.C" (Jtype.to_string (Builder.typ b "a.b.C"));
  check_string "prim" "int" (Jtype.to_string (Builder.typ b "int"));
  check_string "void" "void" (Jtype.to_string (Builder.typ b "void"));
  check_string "array" "p.Local[][]" (Jtype.to_string (Builder.typ b "Local[][]"));
  check_string "object fallback" "java.lang.Object"
    (Jtype.to_string (Builder.typ b "Object"));
  check_string "string fallback" "java.lang.String"
    (Jtype.to_string (Builder.typ b "String"))

let test_builder_members_in_order () =
  let b = Builder.create ~default_pkg:"p" () in
  Builder.cls b "C";
  Builder.meth b "first" ~params:[] ~ret:"C";
  Builder.meth b "second" ~params:[ "int"; "C" ] ~ret:"void";
  Builder.field b "f" ~typ:"String";
  Builder.ctor b ~params:[ "C" ] ();
  let h = Builder.hierarchy b in
  let d = Hierarchy.find h (q "p.C") in
  check_int "two methods" 2 (List.length d.Decl.methods);
  check_string "order preserved" "first" (List.hd d.Decl.methods).Member.mname;
  check_int "one field" 1 (List.length d.Decl.fields);
  check_int "one ctor" 1 (List.length d.Decl.ctors);
  check_int "ctor arity" 1 (List.length (List.hd d.Decl.ctors).Member.cparams)

let test_builder_inheritance () =
  let b = Builder.create ~default_pkg:"p" () in
  Builder.iface b "I";
  Builder.cls b "Base" ~implements:[ "I" ];
  Builder.cls b "Derived" ~extends:"Base" ~abstract:true;
  let h = Builder.hierarchy b in
  check_bool "derived <= I" true (Hierarchy.is_subclass h (q "p.Derived") (q "p.I"));
  check_bool "abstract recorded" true (Hierarchy.find h (q "p.Derived")).Decl.abstract;
  check_bool "interface kind" true (Decl.is_interface (Hierarchy.find h (q "p.I")))

let test_builder_no_current_fails () =
  let b = Builder.create () in
  match Builder.meth b "m" ~params:[] ~ret:"void" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument before any declaration"

let test_hierarchy_copy_independent () =
  let b = Builder.create ~default_pkg:"p" () in
  Builder.cls b "A";
  let h = Builder.hierarchy b in
  let h' = Hierarchy.copy h in
  Hierarchy.add h' (Decl.make (q "p.B"));
  check_bool "copy has B" true (Hierarchy.mem h' (q "p.B"));
  check_bool "original does not" false (Hierarchy.mem h (q "p.B"));
  (* reverse index rebuilt per copy *)
  check_bool "subtypes works on copy" true
    (Qname.Set.mem (q "p.B") (Hierarchy.subtypes h' Qname.object_qname))

let test_copy_preserves_lookup () =
  let h = Apidata.Api.hierarchy () in
  let h' = Hierarchy.copy h in
  check_int "same size" (Hierarchy.size h) (Hierarchy.size h');
  match Hierarchy.lookup_method h' (q "org.eclipse.ui.IWorkbenchPage") "getActiveEditor" ~arity:0 with
  | Some _ -> ()
  | None -> Alcotest.fail "lookup on copy"

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "builder"
    [
      ( "builder",
        [
          tc "type strings" test_builder_types;
          tc "members in order" test_builder_members_in_order;
          tc "inheritance" test_builder_inheritance;
          tc "no current fails" test_builder_no_current_fails;
        ] );
      ( "copy",
        [
          tc "independent" test_hierarchy_copy_independent;
          tc "preserves lookup" test_copy_preserves_lookup;
        ] );
    ]
