(* Unit and property tests for the javamodel substrate. *)

module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Member = Javamodel.Member
module Decl = Javamodel.Decl
module Hierarchy = Javamodel.Hierarchy
module Builder = Javamodel.Builder

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* A small diamond hierarchy used by several tests:

   Object
     |            Shape (interface)
   Widget  ----implements----^
     |
   Button       Canvas extends Widget
     |
   IconButton                              *)
let diamond () =
  let b = Builder.create ~default_pkg:"ui" () in
  Builder.iface b "Shape";
  Builder.cls b "Widget" ~implements:[ "Shape" ];
  Builder.cls b "Button" ~extends:"Widget";
  Builder.cls b "IconButton" ~extends:"Button";
  Builder.cls b "Canvas" ~extends:"Widget";
  Builder.hierarchy b

let q s = Qname.of_string s

(* ---------- Qname ---------- *)

let test_qname_roundtrip () =
  let n = q "java.lang.Object" in
  check_string "to_string" "java.lang.Object" (Qname.to_string n);
  check_string "simple" "Object" (Qname.simple n);
  check_string "pkg" "java.lang" (Qname.package_string n);
  check_bool "equal object_qname" true (Qname.equal n Qname.object_qname)

let test_qname_default_package () =
  let n = q "Foo" in
  check_string "simple" "Foo" (Qname.simple n);
  check_string "pkg empty" "" (Qname.package_string n);
  check_string "to_string" "Foo" (Qname.to_string n)

let test_qname_same_package () =
  check_bool "same" true (Qname.same_package (q "a.b.C") (q "a.b.D"));
  check_bool "different" false (Qname.same_package (q "a.b.C") (q "a.c.C"));
  check_bool "default vs named" false (Qname.same_package (q "C") (q "a.C"))

let test_qname_order_consistent_with_equal () =
  let a = q "a.b.C" and b = q "a.b.C" and c = q "a.b.D" in
  check_int "compare equal" 0 (Qname.compare a b);
  check_bool "compare distinct" true (Qname.compare a c <> 0)

(* ---------- Jtype ---------- *)

let test_jtype_strings () =
  check_string "ref" "java.lang.String" (Jtype.to_string Jtype.string_t);
  check_string "array" "java.lang.String[]" (Jtype.to_string (Jtype.array Jtype.string_t));
  check_string "array of array" "int[][]"
    (Jtype.to_string (Jtype.array (Jtype.array (Jtype.Prim Jtype.Int))));
  check_string "simple" "String[]" (Jtype.simple_string (Jtype.array Jtype.string_t));
  check_string "void" "void" (Jtype.to_string Jtype.Void)

let test_jtype_is_reference () =
  check_bool "ref" true (Jtype.is_reference Jtype.object_t);
  check_bool "array" true (Jtype.is_reference (Jtype.array (Jtype.Prim Jtype.Int)));
  check_bool "prim" false (Jtype.is_reference (Jtype.Prim Jtype.Int));
  check_bool "void" false (Jtype.is_reference Jtype.Void)

let test_jtype_prims () =
  List.iter
    (fun s ->
      match Jtype.prim_of_string s with
      | Some p -> check_string "roundtrip" s (Jtype.prim_to_string p)
      | None -> Alcotest.failf "%s should be primitive" s)
    [ "boolean"; "byte"; "char"; "short"; "int"; "long"; "float"; "double" ];
  check_bool "not prim" true (Jtype.prim_of_string "Integer" = None)

let test_jtype_element () =
  check_bool "element of array" true
    (Jtype.element (Jtype.array Jtype.string_t) = Some Jtype.string_t);
  check_bool "element of ref" true (Jtype.element Jtype.string_t = None)

(* ---------- Hierarchy: subtyping ---------- *)

let test_subclass_reflexive_transitive () =
  let h = diamond () in
  check_bool "reflexive" true (Hierarchy.is_subclass h (q "ui.Button") (q "ui.Button"));
  check_bool "direct" true (Hierarchy.is_subclass h (q "ui.Button") (q "ui.Widget"));
  check_bool "transitive" true
    (Hierarchy.is_subclass h (q "ui.IconButton") (q "ui.Widget"));
  check_bool "via interface" true
    (Hierarchy.is_subclass h (q "ui.IconButton") (q "ui.Shape"));
  check_bool "to object" true
    (Hierarchy.is_subclass h (q "ui.IconButton") Qname.object_qname);
  check_bool "not sideways" false
    (Hierarchy.is_subclass h (q "ui.Canvas") (q "ui.Button"));
  check_bool "not up-down" false
    (Hierarchy.is_subclass h (q "ui.Widget") (q "ui.Button"))

let test_interface_widens_to_object () =
  let h = diamond () in
  check_bool "shape <= object" true
    (Hierarchy.is_subtype h (Jtype.ref_ (q "ui.Shape")) Jtype.object_t)

let test_array_subtyping () =
  let h = diamond () in
  let arr t = Jtype.array (Jtype.ref_ (q t)) in
  check_bool "covariant" true (Hierarchy.is_subtype h (arr "ui.Button") (arr "ui.Widget"));
  check_bool "array to object" true (Hierarchy.is_subtype h (arr "ui.Button") Jtype.object_t);
  check_bool "not contravariant" false
    (Hierarchy.is_subtype h (arr "ui.Widget") (arr "ui.Button"));
  check_bool "prim arrays invariant" true
    (Hierarchy.is_subtype h
       (Jtype.array (Jtype.Prim Jtype.Int))
       (Jtype.array (Jtype.Prim Jtype.Int)));
  check_bool "prim arrays distinct" false
    (Hierarchy.is_subtype h
       (Jtype.array (Jtype.Prim Jtype.Int))
       (Jtype.array (Jtype.Prim Jtype.Long)))

let test_prim_subtyping () =
  let h = diamond () in
  check_bool "int <= int" true
    (Hierarchy.is_subtype h (Jtype.Prim Jtype.Int) (Jtype.Prim Jtype.Int));
  check_bool "int not <= object" false
    (Hierarchy.is_subtype h (Jtype.Prim Jtype.Int) Jtype.object_t)

let test_supers_and_subtypes_inverse () =
  let h = diamond () in
  let supers = Hierarchy.supers h (q "ui.IconButton") in
  check_bool "widget in supers" true (Qname.Set.mem (q "ui.Widget") supers);
  check_bool "shape in supers" true (Qname.Set.mem (q "ui.Shape") supers);
  check_bool "self not in supers" false (Qname.Set.mem (q "ui.IconButton") supers);
  let subs = Hierarchy.subtypes h (q "ui.Widget") in
  check_bool "iconbutton in subs" true (Qname.Set.mem (q "ui.IconButton") subs);
  check_bool "canvas in subs" true (Qname.Set.mem (q "ui.Canvas") subs);
  check_bool "shape not in subs" false (Qname.Set.mem (q "ui.Shape") subs)

let test_depth () =
  let h = diamond () in
  check_int "object" 0 (Hierarchy.depth h Qname.object_qname);
  check_int "widget" 2 (Hierarchy.depth h (q "ui.Widget"));
  (* Widget -> Shape -> Object is the longest chain *)
  check_int "button" 3 (Hierarchy.depth h (q "ui.Button"));
  check_int "iconbutton" 4 (Hierarchy.depth h (q "ui.IconButton"))

let test_ensure_closed_adds_opaque () =
  let d =
    Decl.make
      ~methods:[ Member.meth "get" ~params:[] ~ret:(Jtype.ref_of_string "ext.Missing") ]
      (q "a.Foo")
  in
  let h = Hierarchy.of_decls [ d ] in
  check_bool "missing declared" true (Hierarchy.mem h (q "ext.Missing"));
  let m = Hierarchy.find h (q "ext.Missing") in
  check_bool "synthetic" true m.Decl.synthetic;
  check_bool "widens to object" true
    (Hierarchy.is_subclass h (q "ext.Missing") Qname.object_qname)

let test_duplicate_decl_rejected () =
  let d1 = Decl.make (q "a.Foo") and d2 = Decl.make (q "a.Foo") in
  Alcotest.check_raises "duplicate" (Hierarchy.Duplicate_decl (q "a.Foo")) (fun () ->
      ignore (Hierarchy.of_decls [ d1; d2 ]))

let test_unknown_type_raises () =
  let h = diamond () in
  Alcotest.check_raises "unknown" (Hierarchy.Unknown_type (q "no.Such")) (fun () ->
      ignore (Hierarchy.find h (q "no.Such")))

(* ---------- Hierarchy: member lookup & dispatch ---------- *)

let member_model () =
  let b = Builder.create ~default_pkg:"m" () in
  Builder.cls b "Base";
  Builder.meth b "name" ~params:[] ~ret:"java.lang.String";
  Builder.meth b "resize" ~params:[ "int" ] ~ret:"void";
  Builder.field b "label" ~typ:"java.lang.String";
  Builder.cls b "Derived" ~extends:"Base";
  Builder.meth b "name" ~params:[] ~ret:"java.lang.String";
  Builder.cls b "Other" ~extends:"Base";
  Builder.hierarchy b

let test_lookup_method_inherited () =
  let h = member_model () in
  (match Hierarchy.lookup_method h (q "m.Derived") "resize" ~arity:1 with
  | Some (owner, m) ->
      check_string "owner" "m.Base" (Qname.to_string owner);
      check_string "name" "resize" m.Member.mname
  | None -> Alcotest.fail "resize should be found via Base");
  (match Hierarchy.lookup_method h (q "m.Derived") "name" ~arity:0 with
  | Some (owner, _) -> check_string "override wins" "m.Derived" (Qname.to_string owner)
  | None -> Alcotest.fail "name should be found");
  check_bool "wrong arity" true
    (Hierarchy.lookup_method h (q "m.Derived") "name" ~arity:2 = None)

let test_lookup_field_inherited () =
  let h = member_model () in
  match Hierarchy.lookup_field h (q "m.Derived") "label" with
  | Some (owner, f) ->
      check_string "owner" "m.Base" (Qname.to_string owner);
      check_bool "type" true (Jtype.equal f.Member.ftype Jtype.string_t)
  | None -> Alcotest.fail "label should be found via Base"

let test_dispatch_targets () =
  let h = member_model () in
  let targets = Hierarchy.dispatch_targets h (q "m.Base") "name" ~arity:0 in
  let owners = List.map (fun (o, _) -> Qname.to_string o) targets in
  check Alcotest.(list string) "both decls" [ "m.Base"; "m.Derived" ] owners;
  let resize = Hierarchy.dispatch_targets h (q "m.Base") "resize" ~arity:1 in
  check_int "only base declares resize" 1 (List.length resize)

(* ---------- property tests ---------- *)

let qname_gen =
  QCheck2.Gen.(
    let seg = oneofl [ "a"; "b"; "c"; "pkg"; "util" ] in
    let name = oneofl [ "Foo"; "Bar"; "Baz"; "Qux" ] in
    map2 (fun pkg n -> Qname.make ~pkg n) (list_size (int_bound 3) seg) name)

let prop_qname_roundtrip =
  QCheck2.Test.make ~name:"qname of_string/to_string roundtrip" ~count:200 qname_gen
    (fun n -> Qname.equal n (Qname.of_string (Qname.to_string n)))

(* Random small hierarchies: each class i extends some class j < i. *)
let hierarchy_gen =
  QCheck2.Gen.(
    let* n = int_range 1 15 in
    let* parents = list_repeat n (int_bound (n - 1)) in
    let parents = Array.of_list parents in
    return
      (let b = Builder.create ~default_pkg:"g" () in
       Builder.cls b "C0";
       for i = 1 to n - 1 do
         let p = min (i - 1) parents.(i) in
         Builder.cls b (Printf.sprintf "C%d" i) ~extends:(Printf.sprintf "C%d" p)
       done;
       (Builder.hierarchy b, n)))

let prop_subclass_transitive =
  QCheck2.Test.make ~name:"is_subclass is transitive" ~count:100 hierarchy_gen
    (fun (h, n) ->
      let names = List.init n (fun i -> q (Printf.sprintf "g.C%d" i)) in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              List.for_all
                (fun c ->
                  (not (Hierarchy.is_subclass h a b && Hierarchy.is_subclass h b c))
                  || Hierarchy.is_subclass h a c)
                names)
            names)
        names)

let prop_supers_subtypes_dual =
  QCheck2.Test.make ~name:"a in supers(b) iff b in subtypes(a)" ~count:100 hierarchy_gen
    (fun (h, n) ->
      let names = List.init n (fun i -> q (Printf.sprintf "g.C%d" i)) in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              Qname.Set.mem a (Hierarchy.supers h b)
              = Qname.Set.mem b (Hierarchy.subtypes h a))
            names)
        names)

let prop_depth_decreases_upward =
  QCheck2.Test.make ~name:"depth of super < depth of sub" ~count:100 hierarchy_gen
    (fun (h, n) ->
      List.for_all
        (fun i ->
          let sub = q (Printf.sprintf "g.C%d" i) in
          List.for_all
            (fun sup -> Hierarchy.depth h sup < Hierarchy.depth h sub)
            (Qname.Set.elements (Hierarchy.supers h sub)))
        (List.init n (fun i -> i)))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "javamodel"
    [
      ( "qname",
        [
          tc "roundtrip" test_qname_roundtrip;
          tc "default package" test_qname_default_package;
          tc "same_package" test_qname_same_package;
          tc "order" test_qname_order_consistent_with_equal;
        ] );
      ( "jtype",
        [
          tc "strings" test_jtype_strings;
          tc "is_reference" test_jtype_is_reference;
          tc "primitives" test_jtype_prims;
          tc "element" test_jtype_element;
        ] );
      ( "subtyping",
        [
          tc "subclass reflexive/transitive" test_subclass_reflexive_transitive;
          tc "interface widens to Object" test_interface_widens_to_object;
          tc "array covariance" test_array_subtyping;
          tc "primitives" test_prim_subtyping;
          tc "supers/subtypes inverse" test_supers_and_subtypes_inverse;
          tc "depth" test_depth;
        ] );
      ( "table",
        [
          tc "ensure_closed adds opaque" test_ensure_closed_adds_opaque;
          tc "duplicate rejected" test_duplicate_decl_rejected;
          tc "unknown raises" test_unknown_type_raises;
        ] );
      ( "members",
        [
          tc "lookup_method inherited" test_lookup_method_inherited;
          tc "lookup_field inherited" test_lookup_field_inherited;
          tc "dispatch_targets" test_dispatch_targets;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_qname_roundtrip;
            prop_subclass_transitive;
            prop_supers_subtypes_dual;
            prop_depth_decreases_upward;
          ] );
    ]
