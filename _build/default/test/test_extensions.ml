(* Tests for the extensions beyond the paper's core: graph serialization
   (the Section 5 on-disk representation) and result clustering (the future
   work the paper proposes for crowded queries). *)

module Jtype = Javamodel.Jtype
module Graph = Prospector.Graph
module Query = Prospector.Query
module Serialize = Prospector.Serialize

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ---------- serialization ---------- *)

let graphs_equal a b =
  Graph.node_count a = Graph.node_count b
  && Graph.edge_count a = Graph.edge_count b
  && List.for_all
       (fun n ->
         Jtype.equal (Graph.node_type a n) (Graph.node_type b n)
         && Graph.typestate_origin a n = Graph.typestate_origin b n
         && List.length (Graph.succs a n) = List.length (Graph.succs b n))
       (Graph.nodes a)

let test_roundtrip_signature_graph () =
  let g = Apidata.Api.signature_graph () in
  let g' = Serialize.of_bytes (Serialize.to_bytes g) in
  check_bool "equal" true (graphs_equal g g')

let test_roundtrip_jungloid_graph () =
  (* typestate nodes and downcast edges survive *)
  let g, _ = Apidata.Api.jungloid_graph () in
  let g' = Serialize.of_bytes (Serialize.to_bytes g) in
  check_bool "equal" true (graphs_equal g g');
  let ts g = List.length (List.filter (Graph.is_typestate g) (Graph.nodes g)) in
  check_int "typestates preserved" (ts g) (ts g')

let test_loaded_graph_answers_queries () =
  let g, _ = Apidata.Api.jungloid_graph () in
  let h = Apidata.Api.hierarchy () in
  let g' = Serialize.of_bytes (Serialize.to_bytes g) in
  let q =
    Query.query "org.eclipse.debug.ui.IDebugView"
      "org.eclipse.jdt.internal.debug.ui.display.JavaInspectExpression"
  in
  let r = Query.run ~graph:g ~hierarchy:h q in
  let r' = Query.run ~graph:g' ~hierarchy:h q in
  check_int "same result count" (List.length r) (List.length r');
  List.iter2
    (fun a b -> check_string "same code" a.Query.code b.Query.code)
    r r'

let test_save_load_file () =
  let g = Apidata.Api.signature_graph () in
  let path = Filename.temp_file "prospector" ".graph" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let size = Serialize.save g path in
      check_bool "nonempty" true (size > 1000);
      check_bool "file size matches" true ((Unix.stat path).Unix.st_size = size);
      let g' = Serialize.load path in
      check_bool "equal" true (graphs_equal g g'))

let test_reject_garbage () =
  (match Serialize.of_bytes (Bytes.of_string "not a graph at all") with
  | exception Serialize.Format_error _ -> ()
  | _ -> Alcotest.fail "expected Format_error");
  match Serialize.of_bytes (Bytes.of_string "short") with
  | exception Serialize.Format_error _ -> ()
  | _ -> Alcotest.fail "expected Format_error on short input"

(* ---------- clustering ---------- *)

let test_cluster_groups_parallel_jungloids () =
  let h =
    Japi.Loader.load_string
      {|
      package p;
      class A { B viaOne(); B viaTwo(); C toC(); }
      class B { T finish(); }
      class C { T make(); }
      class T { }
      |}
  in
  let g = Prospector.Sig_graph.build h in
  let rs = Query.run ~graph:g ~hierarchy:h (Query.query "p.A" "p.T") in
  (* four length-2 jungloids: two through B (parallel), one through C *)
  check_int "three results" 3 (List.length rs);
  let cs = Query.cluster rs in
  check_int "two clusters" 2 (List.length cs);
  let through_b = List.find (fun c -> contains ~sub:"> B >" c.Query.type_path) cs in
  check_int "B cluster has both" 2 through_b.Query.members

let test_cluster_preserves_rank_order () =
  let g = Apidata.Api.default_graph () in
  let h = Apidata.Api.hierarchy () in
  let rs =
    Query.run ~graph:g ~hierarchy:h
      (Query.query "java.lang.String" "java.io.BufferedReader")
  in
  let cs = Query.cluster rs in
  check_bool "clusters exist" true (cs <> []);
  (* first cluster's representative is the overall top result *)
  check_string "first representative is rank 1"
    (List.hd rs).Query.code
    (List.hd cs).Query.representative.Query.code

let test_cluster_rescues_crowded_query () =
  (* Row 20 of Table 1: the desired (IWorkspace, IFile) solution is crowded
     past rank 5; one-representative-per-cluster brings its type path into
     the first few entries — the paper's proposed fix, working. *)
  let g = Apidata.Api.default_graph () in
  let h = Apidata.Api.hierarchy () in
  let settings = { Query.default_settings with max_results = 100 } in
  let rs =
    Query.run ~settings ~graph:g ~hierarchy:h
      (Query.query "org.eclipse.core.resources.IWorkspace"
         "org.eclipse.core.resources.IFile")
  in
  let desired r = contains ~sub:".getProject(" r.Query.code && contains ~sub:".getFile(" r.Query.code in
  let flat_rank =
    List.mapi (fun i r -> (i + 1, r)) rs
    |> List.find_opt (fun (_, r) -> desired r)
    |> Option.map fst
  in
  check_bool "flat list: crowded beyond 5" true
    (match flat_rank with Some r -> r > 5 | None -> false);
  let cs = Query.cluster rs in
  let cluster_rank =
    List.mapi (fun i c -> (i + 1, c)) cs
    |> List.find_opt (fun (_, c) -> desired c.Query.representative)
    |> Option.map fst
  in
  check_bool "clustered: within the first 6" true
    (match cluster_rank with Some r -> r <= 6 | None -> false)

(* ---------- free-variable cost estimation (paper future work) ---------- *)

let test_freevar_estimation_reorders () =
  (* Both candidates have length 1 plus one reference free variable; the
     constant charge ties them (text order favors viaDear), but the
     estimator knows a Cheap is one static call away while a Dear cannot be
     produced at all — so the Cheap-consuming jungloid wins. *)
  let h =
    Japi.Loader.load_string
      {|
      package p;
      class T { }
      class Cheap { static Cheap make(); }
      class Strange { }
      class Exotic { Exotic(Strange s); }
      class Dear { Dear(Exotic e); }
      class A {
        T viaDear(Dear d);
        T viaZCheap(Cheap c);
      }
      |}
  in
  let g = Prospector.Sig_graph.build h in
  let q = Query.query "p.A" "p.T" in
  let top settings =
    match Query.run ~settings ~graph:g ~hierarchy:h q with
    | r :: _ -> r.Query.code
    | [] -> Alcotest.fail "no results"
  in
  check_bool "constant charge: textual tie favors viaDear" true
    (contains ~sub:"viaDear" (top Query.default_settings));
  check_bool "estimator favors the producible free variable" true
    (contains ~sub:"viaZCheap"
       (top { Query.default_settings with estimate_freevars = true }))

let test_freevar_estimation_table1_not_worse () =
  let graph = Apidata.Api.default_graph () in
  let hierarchy = Apidata.Api.hierarchy () in
  let found settings =
    Apidata.Problems.run_all ~settings ~graph ~hierarchy ()
    |> List.filter Apidata.Problems.found |> List.length
  in
  let default = found Query.default_settings in
  let estimated = found { Query.default_settings with estimate_freevars = true } in
  check_bool
    (Printf.sprintf "estimation finds at least as many (%d >= %d)" estimated default)
    true (estimated >= default)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "extensions"
    [
      ( "serialize",
        [
          tc "roundtrip signature graph" test_roundtrip_signature_graph;
          tc "roundtrip jungloid graph" test_roundtrip_jungloid_graph;
          tc "loaded graph answers queries" test_loaded_graph_answers_queries;
          tc "save/load file" test_save_load_file;
          tc "reject garbage" test_reject_garbage;
        ] );
      ( "cluster",
        [
          tc "groups parallel jungloids" test_cluster_groups_parallel_jungloids;
          tc "preserves rank order" test_cluster_preserves_rank_order;
          tc "rescues crowded query" test_cluster_rescues_crowded_query;
        ] );
      ( "freevar estimation",
        [
          tc "reorders by production cost" test_freevar_estimation_reorders;
          tc "table 1 not worse" test_freevar_estimation_table1_not_worse;
        ] );
    ]
