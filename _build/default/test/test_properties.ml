(* Property-based tests (qcheck) for the engine's invariants, over randomly
   generated synthetic APIs, corpora, and queries. *)

module Jtype = Javamodel.Jtype
module Hierarchy = Javamodel.Hierarchy
module Graph = Prospector.Graph
module Search = Prospector.Search
module Jungloid = Prospector.Jungloid
module Rank = Prospector.Rank
module Query = Prospector.Query
module Elem = Prospector.Elem

(* A random synthetic world: hierarchy, graph, and a solvable query. *)
type world = {
  w_h : Hierarchy.t;
  w_g : Graph.t;
  w_queries : Query.t list;
}

let world_gen =
  QCheck2.Gen.(
    let* seed = int_range 1 10_000 in
    let* classes = int_range 20 80 in
    return
      (let params =
         { Corpusgen.Apigen.default_params with classes; seed; methods_per_class = 4 }
       in
       let h = Corpusgen.Apigen.generate params in
       let g = Prospector.Sig_graph.build h in
       let qs = Corpusgen.Workload.random_queries h g ~count:3 ~seed in
       { w_h = h; w_g = g; w_queries = qs }))

let for_all_results w f =
  List.for_all
    (fun q -> List.for_all (fun r -> f q r) (Query.run ~graph:w.w_g ~hierarchy:w.w_h q))
    w.w_queries

let prop_results_well_typed =
  QCheck2.Test.make ~name:"every result jungloid is well-typed" ~count:40 world_gen
    (fun w ->
      for_all_results w (fun _ r -> Jungloid.well_typed w.w_h r.Query.jungloid))

let prop_results_match_query =
  QCheck2.Test.make ~name:"result input/output types match the query" ~count:40
    world_gen (fun w ->
      for_all_results w (fun q r ->
          Jtype.equal (Jungloid.input_type r.Query.jungloid) q.Query.tin
          && Jtype.equal (Jungloid.output_type r.Query.jungloid) q.Query.tout))

let prop_path_costs_bounded =
  QCheck2.Test.make ~name:"enumerated path costs lie in [m, m+slack]" ~count:40
    world_gen (fun w ->
      List.for_all
        (fun (q : Query.t) ->
          match
            ( Graph.find_type_node w.w_g q.Query.tin,
              Graph.find_type_node w.w_g q.Query.tout )
          with
          | Some src, Some dst -> (
              match Search.shortest_cost w.w_g ~sources:[ src ] ~target:dst with
              | None -> true
              | Some m ->
                  let limit = 200_000 in
                  let paths =
                    Search.enumerate w.w_g ~sources:[ src ] ~target:dst ~slack:1
                      ~limit ()
                  in
                  let truncated = List.length paths >= limit in
                  (* Zero-cost (pure widening) paths carry no code and are
                     excluded by design, so for m = 0 the set may be empty
                     and the cheapest representable cost is 1. *)
                  let floor = max m 1 in
                  List.for_all
                    (fun p ->
                      let c = Search.path_cost p in
                      c >= floor && c <= m + 1)
                    paths
                  && (m = 0 || truncated
                     || (paths <> []
                        && List.exists (fun p -> Search.path_cost p = m) paths)))
          | _ -> true)
        w.w_queries)

let prop_slack_monotone =
  QCheck2.Test.make ~name:"slack k paths are a subset of slack k+1 paths" ~count:30
    world_gen (fun w ->
      List.for_all
        (fun (q : Query.t) ->
          match
            ( Graph.find_type_node w.w_g q.Query.tin,
              Graph.find_type_node w.w_g q.Query.tout )
          with
          | Some src, Some dst ->
              let paths k =
                Search.enumerate w.w_g ~sources:[ src ] ~target:dst ~slack:k
                  ~limit:100000 ()
                |> List.map (fun (p : Search.path) ->
                       List.map (fun e -> e.Graph.elem) p.Search.edges)
              in
              let p0 = paths 0 and p1 = paths 1 in
              List.for_all (fun p -> List.mem p p1) p0
          | _ -> true)
        w.w_queries)

let prop_rank_sorted =
  QCheck2.Test.make ~name:"results come back in non-decreasing rank order" ~count:40
    world_gen (fun w ->
      List.for_all
        (fun q ->
          let rs = Query.run ~graph:w.w_g ~hierarchy:w.w_h q in
          let rec ok = function
            | a :: (b :: _ as rest) ->
                Rank.compare_key a.Query.key b.Query.key <= 0 && ok rest
            | _ -> true
          in
          ok rs)
        w.w_queries)

let prop_rank_sort_stable_under_shuffle =
  QCheck2.Test.make ~name:"Rank.sort is permutation-invariant" ~count:30
    QCheck2.Gen.(pair world_gen (int_range 0 1000))
    (fun (w, shuffle_seed) ->
      List.for_all
        (fun q ->
          let js =
            List.map (fun r -> r.Query.jungloid) (Query.run ~graph:w.w_g ~hierarchy:w.w_h q)
          in
          let rng = Corpusgen.Rng.create ~seed:shuffle_seed in
          let shuffled = Corpusgen.Rng.shuffle rng js in
          Rank.sort w.w_h js = Rank.sort w.w_h shuffled)
        w.w_queries)

let prop_codegen_declares_ref_frees =
  QCheck2.Test.make ~name:"codegen declares exactly the reference free variables"
    ~count:40 world_gen (fun w ->
      for_all_results w (fun _ r ->
          let gen = Prospector.Codegen.generate r.Query.jungloid in
          let ref_frees =
            List.filter
              (fun (_, ty) -> Jtype.is_reference ty)
              (Jungloid.free_vars r.Query.jungloid)
          in
          List.length gen.Prospector.Codegen.free_var_names = List.length ref_frees))

let prop_codegen_result_var_present =
  QCheck2.Test.make ~name:"codegen's result variable appears in the code" ~count:40
    world_gen (fun w ->
      for_all_results w (fun _ r ->
          let gen = Prospector.Codegen.generate r.Query.jungloid in
          let contains ~sub s =
            let n = String.length sub and m = String.length s in
            let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
            n = 0 || go 0
          in
          contains ~sub:gen.Prospector.Codegen.result_var gen.Prospector.Codegen.code))

let prop_serialize_roundtrip =
  QCheck2.Test.make ~name:"serialize/deserialize preserves the graph structurally"
    ~count:20 world_gen (fun w ->
      let g = w.w_g in
      let g' = Prospector.Serialize.of_bytes (Prospector.Serialize.to_bytes g) in
      let edges g =
        let acc = ref [] in
        Graph.iter_edges g (fun e -> acc := (e.Graph.src, e.Graph.elem, e.Graph.dst) :: !acc);
        List.sort compare !acc
      in
      Graph.node_count g = Graph.node_count g'
      && List.for_all
           (fun n ->
             Jtype.equal (Graph.node_type g n) (Graph.node_type g' n)
             && Graph.typestate_origin g n = Graph.typestate_origin g' n)
           (Graph.nodes g)
      && edges g = edges g')

let prop_cluster_partitions =
  QCheck2.Test.make ~name:"clusters partition the result list" ~count:40 world_gen
    (fun w ->
      List.for_all
        (fun q ->
          let rs = Query.run ~graph:w.w_g ~hierarchy:w.w_h q in
          let cs = Query.cluster rs in
          List.fold_left (fun acc c -> acc + c.Query.members) 0 cs = List.length rs)
        w.w_queries)

let prop_japi_printer_roundtrip =
  QCheck2.Test.make ~name:"japi printer/loader round-trips random hierarchies"
    ~count:25
    QCheck2.Gen.(
      let* seed = int_range 1 5000 in
      let* classes = int_range 5 40 in
      return (Corpusgen.Apigen.generate
                { Corpusgen.Apigen.default_params with classes; seed }))
    (fun h ->
      let h' = Japi.Loader.load_files (Japi.Printer.print_files h) in
      let decls hh =
        List.filter (fun (d : Javamodel.Decl.t) -> not d.Javamodel.Decl.synthetic)
          (Hierarchy.decls hh)
      in
      let a = decls h and b = decls h' in
      List.length a = List.length b
      && List.for_all2 (fun x y -> Javamodel.Decl.equal x y) a b)

(* ---------- mining properties over ground-truth workloads ---------- *)

let truth_gen =
  QCheck2.Gen.(
    let* producers = int_range 2 12 in
    let* routes = int_range 1 4 in
    let* seed = int_range 1 1000 in
    return
      (Corpusgen.Truthgen.generate
         { Corpusgen.Truthgen.producers; coverage = 1.0; routes; reuse_variable = false; seed }))

let extract_of t =
  let prog =
    Minijava.Resolve.parse_program ~api:t.Corpusgen.Truthgen.hierarchy
      t.Corpusgen.Truthgen.corpus
  in
  (prog, Mining.Extract.extract (Mining.Dataflow.build prog))

let prop_extracted_well_typed =
  QCheck2.Test.make ~name:"extracted examples are well-typed jungloids" ~count:30
    truth_gen (fun t ->
      let prog, examples = extract_of t in
      examples <> []
      && List.for_all
           (Mining.Extract.example_well_typed prog.Minijava.Tast.hierarchy)
           examples)

let prop_generalized_well_typed_and_shorter =
  QCheck2.Test.make
    ~name:"generalized suffixes are well-typed, end in the same cast, and are no longer"
    ~count:30 truth_gen (fun t ->
      let prog, examples = extract_of t in
      let gen = Mining.Generalize.run examples in
      let final ex = List.nth ex.Mining.Extract.elems (List.length ex.Mining.Extract.elems - 1) in
      let finals_in xs =
        List.sort_uniq compare (List.map (fun ex -> final ex) xs)
      in
      List.for_all
        (Mining.Extract.example_well_typed prog.Minijava.Tast.hierarchy)
        gen
      && List.for_all
           (fun g ->
             List.length g.Mining.Extract.elems
             <= List.fold_left
                  (fun m ex -> max m (List.length ex.Mining.Extract.elems))
                  0 examples)
           gen
      && finals_in gen = finals_in examples)

let prop_cap_respected =
  QCheck2.Test.make ~name:"per-cast cap bounds extraction" ~count:20
    QCheck2.Gen.(pair (int_range 1 10) (int_range 2 30))
    (fun (cap, branches) ->
      let h, corpus = Corpusgen.Workload.branchy_corpus ~branches in
      let prog = Minijava.Resolve.parse_program ~api:h corpus in
      let df = Mining.Dataflow.build prog in
      let examples = Mining.Extract.extract ~max_per_cast:cap df in
      List.length examples <= cap)

let prop_enrich_only_adds =
  QCheck2.Test.make ~name:"enrichment adds nodes/edges, never removes" ~count:20
    truth_gen (fun t ->
      let prog =
        Minijava.Resolve.parse_program ~api:t.Corpusgen.Truthgen.hierarchy
          t.Corpusgen.Truthgen.corpus
      in
      let g = Prospector.Sig_graph.build t.Corpusgen.Truthgen.hierarchy in
      let n0 = Graph.node_count g and e0 = Graph.edge_count g in
      let _ = Mining.Enrich.enrich g prog in
      Graph.node_count g >= n0 && Graph.edge_count g > e0)

(* ---------- robustness over random corpora ---------- *)

let progen_world =
  QCheck2.Gen.(
    let* api_seed = int_range 1 500 in
    let* corpus_seed = int_range 1 500 in
    let* classes = int_range 15 50 in
    return
      (let h =
         Corpusgen.Apigen.generate
           { Corpusgen.Apigen.default_params with classes; seed = api_seed }
       in
       let corpus =
         Corpusgen.Progen.generate h
           { Corpusgen.Progen.default_params with seed = corpus_seed }
       in
       (h, corpus)))

let prop_progen_pipeline_robust =
  QCheck2.Test.make
    ~name:"random corpora resolve, mine, generalize, and enrich without error"
    ~count:25 progen_world (fun (h, corpus) ->
      let prog = Minijava.Resolve.parse_program ~api:h corpus in
      let df = Mining.Dataflow.build prog in
      let examples = Mining.Extract.extract df in
      let gen = Mining.Generalize.run examples in
      let g = Prospector.Sig_graph.build h in
      let _ = Mining.Enrich.enrich g prog in
      List.for_all
        (Mining.Extract.example_well_typed prog.Minijava.Tast.hierarchy)
        (examples @ gen))

let prop_progen_parses_and_prints =
  QCheck2.Test.make ~name:"random corpora round-trip through the pretty-printer"
    ~count:25 progen_world (fun (_, corpus) ->
      List.for_all
        (fun (name, src) ->
          let f1 = Minijava.Parser.parse ~file:name src in
          let printed = Minijava.Pretty.print_file f1 in
          let f2 = Minijava.Parser.parse ~file:name printed in
          String.equal printed (Minijava.Pretty.print_file f2))
        corpus)

(* ---------- front-end fuzzing: garbage in, located errors out ---------- *)

let garbage_gen =
  QCheck2.Gen.(
    let frag =
      oneofl
        [
          "class"; "interface"; "Foo"; "{"; "}"; "("; ")"; ";"; "."; ","; "=";
          "extends"; "implements"; "static"; "void"; "int"; "new"; "return";
          "if"; "while"; "?"; "\"str\""; "42"; "[]"; "@Deprecated"; "package";
          "x.y.Z"; "//c\n"; "/*c*/";
        ]
    in
    map (String.concat " ") (list_size (int_bound 40) frag))

let prop_japi_never_crashes =
  QCheck2.Test.make ~name:"japi loader: garbage raises Error.E or loads" ~count:300
    garbage_gen (fun src ->
      match Japi.Loader.load_string src with
      | _ -> true
      | exception Japi.Error.E _ -> true)

let prop_minijava_never_crashes =
  QCheck2.Test.make ~name:"minijava parser: garbage raises Error.E or parses"
    ~count:300 garbage_gen (fun src ->
      match Minijava.Parser.parse ~file:"fuzz" src with
      | _ -> true
      | exception Japi.Error.E _ -> true)

let prop_query_parse_never_crashes =
  QCheck2.Test.make ~name:"Query.query accepts arbitrary type strings" ~count:200
    QCheck2.Gen.(
      pair
        (oneofl [ "a.B"; "int"; "void"; "x"; "a.b.C[]"; "byte[][]"; "java.lang.String" ])
        (oneofl [ "a.B"; "void"; "q.R[]"; "boolean" ]))
    (fun (a, b) ->
      let q = Prospector.Query.query a b in
      ignore q.Prospector.Query.tin;
      true)

let () =
  Alcotest.run "properties"
    [
      ( "search+rank",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_results_well_typed;
            prop_results_match_query;
            prop_path_costs_bounded;
            prop_slack_monotone;
            prop_rank_sorted;
            prop_rank_sort_stable_under_shuffle;
          ] );
      ( "codegen+serialize",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_codegen_declares_ref_frees;
            prop_codegen_result_var_present;
            prop_serialize_roundtrip;
            prop_cluster_partitions;
            prop_japi_printer_roundtrip;
          ] );
      ( "mining",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_extracted_well_typed;
            prop_generalized_well_typed_and_shorter;
            prop_cap_respected;
            prop_enrich_only_adds;
          ] );
      ( "robustness",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_progen_pipeline_robust;
            prop_progen_parses_and_prints;
            prop_japi_never_crashes;
            prop_minijava_never_crashes;
            prop_query_parse_never_crashes;
          ] );
    ]
