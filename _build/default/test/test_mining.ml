(* Tests for jungloid mining: extraction (Figure 4/5), generalization
   (Figure 7), jungloid-graph enrichment (Figure 6), and the Section 4.3
   Object/String-parameter extension. *)

module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Hierarchy = Javamodel.Hierarchy
module Elem = Prospector.Elem
module Graph = Prospector.Graph
module Sig_graph = Prospector.Sig_graph
module Query = Prospector.Query
module Jungloid = Prospector.Jungloid

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ---------- the Figure 2/4 debugger model ---------- *)

let debug_api () =
  Japi.Loader.load_string
    {|
    package org.eclipse.debug.ui;
    interface IDebugView { Viewer getViewer(); Object getAdapter(Class c); }
    class Viewer { ISelection getSelection(); Object getInput(); }
    interface ISelection { boolean isEmpty(); }
    interface IStructuredSelection extends ISelection { Object getFirstElement(); }
    class JavaInspectExpression { }
    interface IWorkbenchPage { IWorkbenchPart getActivePart(); ISelection getSelection(); }
    interface IWorkbenchPart { Object getAdapter(Class c); }
    class JDIDebugUIPlugin { static IWorkbenchPage getActivePage(); }
    interface IJavaObject { }
    class Unrelated { Object randomThing(); }
    |}

let figure4_corpus =
  {|
  package corpus;
  class GetContext {
    protected IJavaObject getObjectContext() {
      IWorkbenchPage page = JDIDebugUIPlugin.getActivePage();
      IWorkbenchPart activePart = page.getActivePart();
      IDebugView view = (IDebugView) activePart.getAdapter(IDebugView.class);
      ISelection s = view.getViewer().getSelection();
      IStructuredSelection sel = (IStructuredSelection) s;
      Object selection = sel.getFirstElement();
      JavaInspectExpression var = (JavaInspectExpression) selection;
      return null;
    }
  }
  |}

let debug_program () =
  Minijava.Resolve.parse_program ~api:(debug_api ()) [ ("fig4.java", figure4_corpus) ]

let df () = Mining.Dataflow.build (debug_program ())

(* ---------- Dataflow ---------- *)

let test_dataflow_casts_found () =
  check_int "three casts" 3 (List.length (Mining.Dataflow.casts (df ())))

let test_dataflow_var_producers () =
  let d = df () in
  let key = "corpus.GetContext.getObjectContext/0" in
  check_int "page has one producer" 1
    (List.length (Mining.Dataflow.var_producers d ~method_key:key ~var:"page"));
  check_int "unknown var has none" 0
    (List.length (Mining.Dataflow.var_producers d ~method_key:key ~var:"nope"))

let test_dataflow_param_wiring () =
  let api = debug_api () in
  let p =
    Minijava.Resolve.parse_program ~api
      [
        ( "x.java",
          {|
          package corpus;
          class A {
            static Viewer viewerOf(IDebugView v) { return v.getViewer(); }
            void use(IDebugView dv) {
              Viewer vw = A.viewerOf(dv);
            }
          }
          |} );
      ]
  in
  let d = Mining.Dataflow.build p in
  let producers =
    Mining.Dataflow.param_producers d ~method_key:"corpus.A.viewerOf/1" ~var:"v"
  in
  check_int "argument wired to param" 1 (List.length producers)

(* ---------- Extraction (Figures 4 and 5) ---------- *)

let test_extract_figure4 () =
  let examples = Mining.Extract.extract (df ()) in
  check_bool "some examples" true (examples <> []);
  let h = (debug_program ()).Minijava.Tast.hierarchy in
  List.iter
    (fun ex ->
      check_bool
        (Printf.sprintf "well-typed: %s"
           (Jungloid.to_string
              (Jungloid.make ~input:ex.Mining.Extract.input ex.Mining.Extract.elems)))
        true
        (Mining.Extract.example_well_typed h ex))
    examples;
  (* The JavaInspectExpression example reaches back to the zero-argument
     static call, so its input is void (Figure 4's full backward slice). *)
  let jie =
    List.filter
      (fun ex ->
        match List.rev ex.Mining.Extract.elems with
        | Elem.Downcast { to_; _ } :: _ ->
            Jtype.to_string to_ = "org.eclipse.debug.ui.JavaInspectExpression"
        | _ -> false)
      examples
  in
  check_int "one full example for the final cast" 1 (List.length jie);
  let ex = List.hd jie in
  check_bool "void input" true (Jtype.equal ex.Mining.Extract.input Jtype.Void);
  (* It contains both intermediate casts. *)
  let casts =
    List.filter Elem.is_downcast ex.Mining.Extract.elems |> List.length
  in
  check_int "three casts in chain" 3 casts

let test_extract_ends_with_cast () =
  let examples = Mining.Extract.extract (df ()) in
  List.iter
    (fun ex ->
      match List.rev ex.Mining.Extract.elems with
      | last :: _ -> check_bool "ends with downcast" true (Elem.is_downcast last)
      | [] -> Alcotest.fail "empty example")
    examples

let test_extract_cap () =
  (* A branchy corpus: the cast operand flows from many producers. *)
  let api =
    Japi.Loader.load_string
      {|
      package p;
      class Box { Object get(); static Box make(); }
      class Special { }
      |}
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "package corpus;\nclass C {\n  void f() {\n";
  Buffer.add_string buf "    Object o = null;\n";
  for _ = 1 to 10 do
    Buffer.add_string buf "    o = Box.make().get();\n"
  done;
  Buffer.add_string buf "    Special sp = (Special) o;\n  }\n}\n";
  let p = Minijava.Resolve.parse_program ~api [ ("c.java", Buffer.contents buf) ] in
  let d = Mining.Dataflow.build p in
  let all = Mining.Extract.extract d in
  check_int "ten examples uncapped" 10 (List.length all);
  let capped = Mining.Extract.extract ~max_per_cast:3 d in
  check_bool "capped to at most 3" true (List.length capped <= 3)

let test_extract_max_len () =
  let examples = Mining.Extract.extract ~max_len:2 (df ()) in
  (* The full 8-elem chain is suppressed; short tails survive. *)
  List.iter
    (fun ex ->
      let len =
        List.length (List.filter (fun e -> not (Elem.is_widen e)) ex.Mining.Extract.elems)
      in
      check_bool "within bound" true (len <= 2))
    examples

let test_extract_inlines_client_methods () =
  let api = debug_api () in
  let p =
    Minijava.Resolve.parse_program ~api
      [
        ( "x.java",
          {|
          package corpus;
          class Helper {
            static ISelection fetch(IDebugView v) { return v.getViewer().getSelection(); }
          }
          class User {
            void use(IDebugView dv) {
              IStructuredSelection ss = (IStructuredSelection) Helper.fetch(dv);
            }
          }
          |} );
      ]
  in
  let d = Mining.Dataflow.build p in
  let examples = Mining.Extract.extract d in
  check_int "one example" 1 (List.length examples);
  let ex = List.hd examples in
  (* The Helper.fetch frame disappeared: elems are the API calls only. *)
  check_bool "no elem mentions Helper" true
    (List.for_all
       (fun e ->
         match Elem.owner_package e with
         | Some pkg -> pkg <> "corpus"
         | None -> true)
       ex.Mining.Extract.elems);
  check_string "input is the debug view" "org.eclipse.debug.ui.IDebugView"
    (Jtype.to_string ex.Mining.Extract.input)

let test_extract_null_produces_nothing () =
  let api = Japi.Loader.load_string "package p; class A { } class B extends A { }" in
  let p =
    Minijava.Resolve.parse_program ~api
      [
        ( "x.java",
          "package corpus; class C { void f() { A a = null; B b = (B) a; } }" );
      ]
  in
  let d = Mining.Dataflow.build p in
  check_int "no examples from null" 0 (List.length (Mining.Extract.extract d))

let test_extract_through_client_field () =
  (* A value cached in a corpus class's instance field: the slicer follows
     the corpus-wide assignments to the field (flow-insensitively). *)
  let api = debug_api () in
  let prog =
    Minijava.Resolve.parse_program ~api
      [
        ( "cache.java",
          {|
          package corpus;
          class Cache {
            ISelection held;
            void put(IWorkbenchPage page) { held = page.getSelection(); }
            Object get() {
              IStructuredSelection sel = (IStructuredSelection) held;
              return sel.getFirstElement();
            }
          }
          |} );
      ]
  in
  let df = Mining.Dataflow.build prog in
  let examples = Mining.Extract.extract df in
  check_int "one example" 1 (List.length examples);
  let ex = List.hd examples in
  check_string "traced through the field to the page" "org.eclipse.debug.ui.IWorkbenchPage"
    (Jtype.to_string ex.Mining.Extract.input)

let test_extract_through_while_loop () =
  let api =
    Japi.Loader.load_string
      {|
      package p;
      class Source { Object next(); boolean hasNext(); static Source open(); }
      class Item { }
      |}
  in
  let prog =
    Minijava.Resolve.parse_program ~api
      [
        ( "loop.java",
          {|
          package corpus;
          class Drainer {
            void drain() {
              Source src = Source.open();
              while (src.hasNext()) {
                Item item = (Item) src.next();
              }
            }
          }
          |} );
      ]
  in
  let df = Mining.Dataflow.build prog in
  let examples = Mining.Extract.extract df in
  check_int "one example from inside the loop" 1 (List.length examples);
  check_bool "void input (full chain from Source.open)" true
    (Jtype.equal (List.hd examples).Mining.Extract.input Jtype.Void)

(* ---------- Generalization (Figure 7) ---------- *)

(* Build examples programmatically over a small API. *)
let gen_api () =
  Japi.Loader.load_string
    {|
    package g;
    class X {
      M1 m1();
      M2 m2();
      Shared shared0();
    }
    class M1 { Shared shared(); }
    class M2 { Shared shared(); }
    class Shared { Object get(); }
    class T { }
    class U { }
    |}

let call h cls name =
  let d = Hierarchy.find h (Qname.of_string ("g." ^ cls)) in
  let m =
    List.find (fun (m : Javamodel.Member.meth) -> m.mname = name) d.Javamodel.Decl.methods
  in
  Elem.Instance_call { owner = d.Javamodel.Decl.dname; meth = m; input = Elem.Receiver }

let cast target = Elem.Downcast { from_ = Jtype.object_t; to_ = Jtype.ref_of_string ("g." ^ target) }

let mk_example _h ~origin chain target =
  let elems = chain @ [ cast target ] in
  {
    Mining.Extract.input = Elem.input_type (List.hd elems);
    elems;
    origin;
  }

let test_generalize_distinguishes_casts () =
  let h = gen_api () in
  (* ex1: x.m1().shared().get() cast T
     ex2: x.m2().shared().get() cast U
     Both share the suffix shared().get(); retention must keep m1/m2. *)
  let ex1 =
    mk_example h ~origin:"e1" [ call h "X" "m1"; call h "M1" "shared"; call h "Shared" "get" ] "T"
  in
  let ex2 =
    mk_example h ~origin:"e2" [ call h "X" "m2"; call h "M2" "shared"; call h "Shared" "get" ] "U"
  in
  (* the two shared() elems differ (declared in M1 vs M2), so the trie
     diverges at depth 2 *)
  let lens = Mining.Generalize.suffix_lengths [ ex1; ex2 ] in
  Alcotest.(check (list int)) "retained depths" [ 2; 2 ] lens

let test_generalize_same_shared_elem () =
  let h = gen_api () in
  (* Here the pre-cast elems are literally the same call (Shared.get), so
     the divergence is one step further back. *)
  let ex1 =
    mk_example h ~origin:"e1" [ call h "X" "m1"; call h "M1" "shared"; call h "Shared" "get" ] "T"
  in
  let ex2 =
    mk_example h ~origin:"e2"
      [ call h "X" "m2"; call h "M2" "shared"; call h "Shared" "get" ] "U"
  in
  (* identical final elems, divergent second-to-last *)
  let lens = Mining.Generalize.suffix_lengths [ ex1; ex2 ] in
  List.iter (fun l -> check_bool "keeps through divergence" true (l >= 2)) lens

let test_generalize_no_conflict_min_keep () =
  let h = gen_api () in
  let ex =
    mk_example h ~origin:"e1" [ call h "X" "m1"; call h "M1" "shared"; call h "Shared" "get" ] "T"
  in
  Alcotest.(check (list int)) "single example keeps min_keep" [ 1 ]
    (Mining.Generalize.suffix_lengths [ ex ]);
  Alcotest.(check (list int)) "pure algorithm keeps none" [ 0 ]
    (Mining.Generalize.suffix_lengths ~min_keep:0 [ ex ])

let test_generalize_cut_updates_input () =
  let h = gen_api () in
  let ex =
    mk_example h ~origin:"e1" [ call h "X" "m1"; call h "M1" "shared"; call h "Shared" "get" ] "T"
  in
  let g = List.hd (Mining.Generalize.run [ ex ]) in
  (* retained: get() + cast, so the input is Shared *)
  check_string "input updated" "g.Shared" (Jtype.to_string g.Mining.Extract.input);
  check_int "two elems" 2 (List.length g.Mining.Extract.elems)

let test_generalize_dedupes () =
  let h = gen_api () in
  let ex1 =
    mk_example h ~origin:"e1" [ call h "X" "m1"; call h "M1" "shared"; call h "Shared" "get" ] "T"
  in
  let ex2 =
    mk_example h ~origin:"e2" [ call h "X" "shared0"; ] "T"
  in
  ignore ex2;
  (* two copies of the same example generalize to one suffix *)
  let out = Mining.Generalize.run [ ex1; { ex1 with origin = "e1b" } ] in
  check_int "deduplicated" 1 (List.length out)

let test_generalize_figure7_ant () =
  (* Figure 7 verbatim: two example jungloids reach their casts through the
     shared suffix Project.getTargets().get(i) (area III); they diverge at
     the step that produced the Project (area II), so generalization keeps
     area II + III and drops area I. *)
  let hh =
    Japi.Loader.load_string
      {|
      package g;
      class Antx {
        Project readProject(String f);
        Project defaultProject();
      }
      class Project { TargetList getTargets(); }
      class TargetList { Object get(int i); }
      class Target { }
      class Task { }
      |}
  in
  let call cls name =
    let d = Hierarchy.find hh (Qname.of_string ("g." ^ cls)) in
    let m =
      List.find (fun (m : Javamodel.Member.meth) -> m.mname = name)
        d.Javamodel.Decl.methods
    in
    Elem.Instance_call { owner = d.Javamodel.Decl.dname; meth = m; input = Elem.Receiver }
  in
  let cast target =
    Elem.Downcast { from_ = Jtype.object_t; to_ = Jtype.ref_of_string ("g." ^ target) }
  in
  (* area I: how the Project was obtained; area II: the divergent producer;
     area III: getTargets().get(i). *)
  let ex_target =
    {
      Mining.Extract.input = Jtype.ref_of_string "g.Antx";
      elems =
        [
          call "Antx" "readProject"; call "Project" "getTargets";
          call "TargetList" "get"; cast "Target";
        ];
      origin = "e1";
    }
  in
  let ex_task =
    {
      Mining.Extract.input = Jtype.ref_of_string "g.Antx";
      elems =
        [
          call "Antx" "defaultProject"; call "Project" "getTargets";
          call "TargetList" "get"; cast "Task";
        ];
      origin = "e2";
    }
  in
  let lens = Mining.Generalize.suffix_lengths [ ex_target; ex_task ] in
  (* the shared 2-elem suffix matches exactly, so the divergent producer
     (area II) must be retained: depth 3 *)
  Alcotest.(check (list int)) "retain through the divergence" [ 3; 3 ] lens;
  List.iter
    (fun (g : Mining.Extract.example) ->
      check_string "suffix starts at the producer's input" "g.Antx"
        (Jtype.to_string g.Mining.Extract.input))
    (Mining.Generalize.run [ ex_target; ex_task ])

(* ---------- Enrichment (Figure 6) and end-to-end queries ---------- *)

let jungloid_graph () =
  let prog = debug_program () in
  let h = prog.Minijava.Tast.hierarchy in
  let g = Sig_graph.build h in
  let stats = Mining.Enrich.enrich g prog in
  (g, h, stats)

let test_enrich_stats () =
  let _, _, stats = jungloid_graph () in
  check_int "three casts" 3 stats.Mining.Enrich.casts_in_corpus;
  check_bool "examples extracted" true (stats.Mining.Enrich.examples_extracted >= 3);
  check_bool "edges added" true (stats.Mining.Enrich.edges_added > 0);
  check_bool "typestates added" true (stats.Mining.Enrich.typestate_nodes_added > 0)

let test_enrich_enables_downcast_query () =
  let g, h, _ = jungloid_graph () in
  let q =
    Query.query "org.eclipse.debug.ui.IDebugView"
      "org.eclipse.debug.ui.JavaInspectExpression"
  in
  match Query.run ~graph:g ~hierarchy:h q with
  | [] -> Alcotest.fail "expected mined jungloid for (IDebugView, JavaInspectExpression)"
  | top :: _ ->
      check_bool "goes through getViewer" true
        (contains ~sub:"getViewer()" top.Query.code);
      check_bool "casts to IStructuredSelection" true
        (contains ~sub:"(IStructuredSelection)" top.Query.code);
      check_bool "ends casting to JavaInspectExpression" true
        (contains ~sub:"(JavaInspectExpression)" top.Query.code)

let test_enrich_no_spurious_downcasts () =
  let g, h, _ = jungloid_graph () in
  (* Unrelated.randomThing() returns Object, but no example blesses casting
     that Object to JavaInspectExpression: the query must find nothing. *)
  let q =
    Query.query "org.eclipse.debug.ui.Unrelated"
      "org.eclipse.debug.ui.JavaInspectExpression"
  in
  check_int "no inviable jungloid" 0 (List.length (Query.run ~graph:g ~hierarchy:h q))

let test_enrich_typestates_not_reentrant () =
  let g, _, _ = jungloid_graph () in
  (* Typestate nodes must have exactly one outgoing example edge. *)
  List.iter
    (fun n ->
      if Graph.is_typestate g n then
        check_int "one successor" 1 (List.length (Graph.succs g n)))
    (Graph.nodes g)

let test_figure3_contrast () =
  (* With all downcasts added naively, the spurious query succeeds — the
     contrast the paper draws between Figure 3 and the jungloid graph. *)
  let prog = debug_program () in
  let h = prog.Minijava.Tast.hierarchy in
  let g = Sig_graph.build h in
  ignore (Sig_graph.add_all_downcasts g h);
  let q =
    Query.query "org.eclipse.debug.ui.Unrelated"
      "org.eclipse.debug.ui.JavaInspectExpression"
  in
  check_bool "naive graph synthesizes the inviable jungloid" true
    (Query.run ~graph:g ~hierarchy:h q <> [])

(* ---------- Section 4.3: Object/String parameters ---------- *)

let objparam_api () =
  Japi.Loader.load_string
    {|
    package p;
    class Engine { static Result process(Object model); }
    class Result { }
    class GoodModel { static GoodModel make(); }
    class BadModel { static BadModel make(); }
    |}

let objparam_corpus =
  {|
  package corpus;
  class Client {
    void run() {
      GoodModel gm = GoodModel.make();
      Result r = Engine.process(gm);
    }
  }
  |}

let test_objparam_restricted_graph () =
  let api = objparam_api () in
  let config = { Sig_graph.default_config with restrict_obj_string_params = true } in
  let g = Sig_graph.build ~config api in
  let q = Query.query "p.GoodModel" "p.Result" in
  check_int "restricted: no signature path" 0
    (List.length (Query.run ~graph:g ~hierarchy:api q))

let test_objparam_mining_readds_viable () =
  let api = objparam_api () in
  let prog = Minijava.Resolve.parse_program ~api [ ("c.java", objparam_corpus) ] in
  let h = prog.Minijava.Tast.hierarchy in
  let config = { Sig_graph.default_config with restrict_obj_string_params = true } in
  let g = Sig_graph.build ~config h in
  let stats = Mining.Objparam.enrich g prog in
  check_bool "sites found" true (stats.Mining.Objparam.sites >= 1);
  check_bool "edges added" true (stats.Mining.Objparam.edges_added > 0);
  let good = Query.query "p.GoodModel" "p.Result" in
  check_bool "good model synthesizable" true (Query.run ~graph:g ~hierarchy:h good <> []);
  let bad = Query.query "p.BadModel" "p.Result" in
  check_int "bad model still blocked" 0 (List.length (Query.run ~graph:g ~hierarchy:h bad))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "mining"
    [
      ( "dataflow",
        [
          tc "casts found" test_dataflow_casts_found;
          tc "var producers" test_dataflow_var_producers;
          tc "param wiring" test_dataflow_param_wiring;
        ] );
      ( "extract",
        [
          tc "figure 4" test_extract_figure4;
          tc "ends with cast" test_extract_ends_with_cast;
          tc "cap" test_extract_cap;
          tc "max length" test_extract_max_len;
          tc "inlines client methods" test_extract_inlines_client_methods;
          tc "null dead end" test_extract_null_produces_nothing;
          tc "through client field" test_extract_through_client_field;
          tc "through while loop" test_extract_through_while_loop;
        ] );
      ( "generalize",
        [
          tc "distinguishes casts" test_generalize_distinguishes_casts;
          tc "same shared elem" test_generalize_same_shared_elem;
          tc "min_keep" test_generalize_no_conflict_min_keep;
          tc "cut updates input" test_generalize_cut_updates_input;
          tc "dedupes" test_generalize_dedupes;
          tc "figure 7 ant example" test_generalize_figure7_ant;
        ] );
      ( "enrich",
        [
          tc "stats" test_enrich_stats;
          tc "enables downcast query" test_enrich_enables_downcast_query;
          tc "no spurious downcasts" test_enrich_no_spurious_downcasts;
          tc "typestates linear" test_enrich_typestates_not_reentrant;
          tc "figure 3 contrast" test_figure3_contrast;
        ] );
      ( "objparam",
        [
          tc "restricted graph" test_objparam_restricted_graph;
          tc "mining re-adds viable" test_objparam_mining_readds_viable;
        ] );
    ]
