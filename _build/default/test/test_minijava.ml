(* Tests for the mini-Java corpus language: lexer, parser, resolver. The
   fixture reproduces the paper's Figure 4 client method. *)

module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Hierarchy = Javamodel.Hierarchy
module Ast = Minijava.Ast
module Tast = Minijava.Tast

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* API model for the Figure 2/4 debugger-selection example. *)
let debug_api () =
  Japi.Loader.load_string
    {|
    package org.eclipse.debug.ui;
    interface IDebugView { Viewer getViewer(); Object getAdapter(Class c); }
    class Viewer { ISelection getSelection(); Object getInput(); }
    interface ISelection { boolean isEmpty(); }
    interface IStructuredSelection extends ISelection { Object getFirstElement(); }
    class JavaInspectExpression { }
    interface IWorkbenchPage { IWorkbenchPart getActivePart(); ISelection getSelection(); }
    interface IWorkbenchPart { Object getAdapter(Class c); }
    class JDIDebugUIPlugin { static IWorkbenchPage getActivePage(); }
    interface IJavaObject { }
    |}

let figure4_source =
  {|
  package corpus;
  class GetContext {
    protected IJavaObject getObjectContext() {
      IWorkbenchPage page = JDIDebugUIPlugin.getActivePage();
      IWorkbenchPart activePart = page.getActivePart();
      IDebugView view = (IDebugView) activePart.getAdapter(IDebugView.class);
      ISelection s = view.getViewer().getSelection();
      IStructuredSelection sel = (IStructuredSelection) s;
      Object selection = sel.getFirstElement();
      JavaInspectExpression var = (JavaInspectExpression) selection;
      return null;
    }
  }
  |}

let resolve_figure4 () =
  Minijava.Resolve.parse_program ~api:(debug_api ()) [ ("fig4.java", figure4_source) ]

(* ---------- lexer ---------- *)

let test_lexer_literals () =
  let toks = Minijava.Lexer.tokenize ~file:"t" {|x = "hi\n"; y = 42; b = true;|} in
  let kinds = Array.to_list toks |> List.map (fun t -> t.Minijava.Lexer.kind) in
  check_bool "string" true (List.mem (Minijava.Lexer.String_lit "hi\n") kinds);
  check_bool "int" true (List.mem (Minijava.Lexer.Int_lit 42) kinds);
  check_bool "kw true" true (List.mem (Minijava.Lexer.Kw "true") kinds)

let test_lexer_unterminated_string () =
  match Minijava.Lexer.tokenize ~file:"t" {|x = "oops|} with
  | exception Japi.Error.E _ -> ()
  | _ -> Alcotest.fail "expected error"

(* ---------- parser ---------- *)

let parse_one src =
  let f = Minijava.Parser.parse ~file:"t" src in
  match f.Ast.classes with
  | [ c ] -> c
  | _ -> Alcotest.fail "expected one class"

let first_body src =
  match (parse_one src).Ast.c_methods with
  | m :: _ -> m.Ast.m_body
  | [] -> Alcotest.fail "expected a method"

let test_parse_figure4_shape () =
  let f = Minijava.Parser.parse ~file:"fig4" figure4_source in
  check_int "one class" 1 (List.length f.Ast.classes);
  let c = List.hd f.Ast.classes in
  check_string "name" "GetContext" c.Ast.c_name;
  let m = List.hd c.Ast.c_methods in
  check_int "eight stmts" 8 (List.length m.Ast.m_body)

let test_parse_cast_vs_paren () =
  let body =
    first_body
      {|
      class C {
        void f(Object o, IDebugView x) {
          IDebugView v = (IDebugView) o;
          IDebugView w = (x);
        }
      }
      |}
  in
  (match body with
  | [ Ast.Local { init = Some { desc = Ast.Cast _; _ }; _ };
      Ast.Local { init = Some { desc = Ast.Name [ "x" ]; _ }; _ } ] ->
      ()
  | _ -> Alcotest.fail "cast/paren disambiguation failed")

let test_parse_chained_calls () =
  let body =
    first_body "class C { void f(V view) { Object s = view.getViewer().getSelection(); } }"
  in
  match body with
  | [ Ast.Local { init = Some { desc = Ast.Call ({ desc = Ast.Name_call ([ "view" ], "getViewer", []); _ }, "getSelection", []); _ }; _ } ] ->
      ()
  | _ -> Alcotest.fail "chained call shape"

let test_parse_static_chain () =
  let body = first_body "class C { void f() { Object p = a.b.Plugin.getDefault(); } }" in
  match body with
  | [ Ast.Local { init = Some { desc = Ast.Name_call ([ "a"; "b"; "Plugin" ], "getDefault", []); _ }; _ } ] ->
      ()
  | _ -> Alcotest.fail "static chain shape"

let test_parse_class_literal () =
  let body = first_body "class C { void f(P part) { Object a = part.getAdapter(IDebugView.class); } }" in
  match body with
  | [ Ast.Local { init = Some { desc = Ast.Name_call (_, "getAdapter", [ { desc = Ast.Class_lit "IDebugView"; _ } ]); _ }; _ } ] ->
      ()
  | _ -> Alcotest.fail "class literal shape"

let test_parse_if_else () =
  let body =
    first_body
      {|
      class C {
        void f(V v) {
          if (v.ok()) { v.use(); } else v.drop();
        }
      }
      |}
  in
  match body with
  | [ Ast.If { then_ = [ _ ]; else_ = [ _ ]; _ } ] -> ()
  | _ -> Alcotest.fail "if/else shape"

let test_parse_new_and_assign () =
  let body =
    first_body
      "class C { void f() { B b = new B(1, \"x\"); b = new B(2, \"y\"); } }"
  in
  match body with
  | [ Ast.Local { init = Some { desc = Ast.New ("B", [ _; _ ]); _ }; _ };
      Ast.Assign { value = { desc = Ast.New ("B", _); _ }; _ } ] ->
      ()
  | _ -> Alcotest.fail "new/assign shape"

let test_parse_unqualified_call () =
  let body = first_body "class C { void f() { helper(); } }" in
  match body with
  | [ Ast.Expr { desc = Ast.Name_call ([], "helper", []); _ } ] -> ()
  | _ -> Alcotest.fail "unqualified call shape"

let test_parse_error_located () =
  match Minijava.Parser.parse ~file:"t" "class C { void f() { x = ; } }" with
  | exception Japi.Error.E e -> check_int "line" 1 e.Japi.Error.line
  | _ -> Alcotest.fail "expected syntax error"

(* ---------- resolver ---------- *)

let test_resolve_figure4 () =
  let p = resolve_figure4 () in
  check_int "one method" 1 (List.length p.Tast.methods);
  let m = List.hd p.Tast.methods in
  check_string "owner" "corpus.GetContext" (Qname.to_string m.Tast.owner);
  (* Count the casts and check their types. *)
  let casts = ref [] in
  Tast.iter_exprs m.Tast.body (fun e ->
      match e.Tast.tdesc with
      | Tast.Tcast (ty, _) -> casts := Jtype.simple_string ty :: !casts
      | _ -> ());
  check_int "three casts" 3 (List.length !casts);
  check_bool "JavaInspectExpression cast" true
    (List.mem "JavaInspectExpression" !casts)

let test_resolve_types_flow () =
  let p = resolve_figure4 () in
  let m = List.hd p.Tast.methods in
  (* view.getViewer().getSelection() must type as ISelection *)
  let found = ref false in
  Tast.iter_exprs m.Tast.body (fun e ->
      match e.Tast.tdesc with
      | Tast.Tcall (_, owner, meth, _)
        when meth.Javamodel.Member.mname = "getSelection" ->
          check_string "declared in Viewer" "org.eclipse.debug.ui.Viewer"
            (Qname.to_string owner);
          check_string "returns ISelection" "org.eclipse.debug.ui.ISelection"
            (Jtype.to_string e.Tast.ty);
          found := true
      | _ -> ());
  check_bool "call found" true !found

let test_resolve_static_call () =
  let p = resolve_figure4 () in
  let m = List.hd p.Tast.methods in
  let found = ref false in
  Tast.iter_exprs m.Tast.body (fun e ->
      match e.Tast.tdesc with
      | Tast.Tstatic_call (owner, meth, []) when meth.Javamodel.Member.mname = "getActivePage" ->
          check_string "owner" "org.eclipse.debug.ui.JDIDebugUIPlugin"
            (Qname.to_string owner);
          found := true
      | _ -> ());
  check_bool "static call resolved" true !found

let test_resolve_client_cross_call () =
  let api = debug_api () in
  let p =
    Minijava.Resolve.parse_program ~api
      [
        ( "a.java",
          {|
          package corpus;
          class Helper {
            static IWorkbenchPage page() { return JDIDebugUIPlugin.getActivePage(); }
          }
          class User {
            IWorkbenchPart part() { return Helper.page().getActivePart(); }
          }
          |} );
      ]
  in
  check_int "two classes, two methods" 2 (List.length p.Tast.methods);
  (* the client class Helper resolves as a static-call target *)
  let user = List.find (fun (m : Tast.tmeth) -> m.Tast.name = "part") p.Tast.methods in
  let found = ref false in
  Tast.iter_exprs user.Tast.body (fun e ->
      match e.Tast.tdesc with
      | Tast.Tstatic_call (owner, _, _) when Qname.simple owner = "Helper" -> found := true
      | _ -> ());
  check_bool "cross-client call" true !found

let test_resolve_implicit_this () =
  let api = debug_api () in
  let p =
    Minijava.Resolve.parse_program ~api
      [
        ( "a.java",
          {|
          package corpus;
          class C {
            IWorkbenchPage page() { return JDIDebugUIPlugin.getActivePage(); }
            IWorkbenchPart part() { return page().getActivePart(); }
          }
          |} );
      ]
  in
  let part = List.find (fun (m : Tast.tmeth) -> m.Tast.name = "part") p.Tast.methods in
  let found = ref false in
  Tast.iter_exprs part.Tast.body (fun e ->
      match e.Tast.tdesc with
      | Tast.Tcall ({ tdesc = Tast.Tvar "this"; _ }, _, meth, _)
        when meth.Javamodel.Member.mname = "page" ->
          found := true
      | _ -> ());
  check_bool "implicit this call" true !found

let test_resolve_unknown_variable () =
  let api = debug_api () in
  match
    Minijava.Resolve.parse_program ~api
      [ ("a.java", "package corpus; class C { void f() { nosuch.foo(); } }") ]
  with
  | exception Japi.Error.E e ->
      check_bool "mentions name" true
        (String.length e.Japi.Error.msg > 0)
  | _ -> Alcotest.fail "expected resolution error"

let test_resolve_unknown_method () =
  let api = debug_api () in
  match
    Minijava.Resolve.parse_program ~api
      [
        ( "a.java",
          "package corpus; class C { void f(Viewer v) { v.noSuchMethod(); } }" );
      ]
  with
  | exception Japi.Error.E e -> check_bool "error" true (e.Japi.Error.line >= 1)
  | _ -> Alcotest.fail "expected resolution error"

let test_resolve_inherited_method () =
  let api =
    Japi.Loader.load_string
      {|
      package p;
      class Base { p.Base self(); }
      class Derived extends Base { }
      |}
  in
  let p =
    Minijava.Resolve.parse_program ~api
      [
        ( "a.java",
          "package corpus; class C { void f(Derived d) { Base b = d.self(); } }" );
      ]
  in
  let m = List.hd p.Tast.methods in
  let found = ref false in
  Tast.iter_exprs m.Tast.body (fun e ->
      match e.Tast.tdesc with
      | Tast.Tcall (_, owner, _, _) -> (
          check_string "declared in Base" "p.Base" (Qname.to_string owner);
          found := true)
      | _ -> ());
  check_bool "inherited resolved" true !found

let test_resolve_array_length () =
  let api = Japi.Loader.load_string "package p; class A { p.A[] kids(); }" in
  let p =
    Minijava.Resolve.parse_program ~api
      [ ("a.java", "package corpus; class C { int f(A a) { return a.kids().length; } }") ]
  in
  check_int "resolved" 1 (List.length p.Tast.methods)

let test_parse_while () =
  let body =
    first_body
      "class C { void f(E en) { while (en.hasMore()) { en.next(); } } }"
  in
  match body with
  | [ Ast.While { body = [ Ast.Expr _ ]; _ } ] -> ()
  | _ -> Alcotest.fail "while shape"

let test_parse_class_field () =
  let c =
    parse_one "class C { ISelection cached; void f() { cached = null; } }"
  in
  check_int "one field" 1 (List.length c.Ast.c_fields);
  check_string "field name" "cached" (List.hd c.Ast.c_fields).Ast.f_name;
  check_int "one method" 1 (List.length c.Ast.c_methods)

let test_resolve_field_read_and_assign () =
  let api = debug_api () in
  let p =
    Minijava.Resolve.parse_program ~api
      [
        ( "a.java",
          {|
          package corpus;
          class Cache {
            ISelection held;
            void put(IWorkbenchPage page) { held = page.getSelection(); }
            Object get() {
              IStructuredSelection sel = (IStructuredSelection) held;
              return sel.getFirstElement();
            }
          }
          |} );
      ]
  in
  let put = List.find (fun (m : Tast.tmeth) -> m.Tast.name = "put") p.Tast.methods in
  (match put.Tast.body with
  | [ Tast.Tfield_assign (owner, f, _) ] ->
      check_string "owner" "corpus.Cache" (Qname.to_string owner);
      check_string "field" "held" f.Javamodel.Member.fname
  | _ -> Alcotest.fail "expected a field assignment");
  let get = List.find (fun (m : Tast.tmeth) -> m.Tast.name = "get") p.Tast.methods in
  let reads_field = ref false in
  Tast.iter_exprs get.Tast.body (fun e ->
      match e.Tast.tdesc with
      | Tast.Tfield ({ Tast.tdesc = Tast.Tvar "this"; _ }, _, f)
        when f.Javamodel.Member.fname = "held" ->
          reads_field := true
      | _ -> ());
  check_bool "field read via this" true !reads_field

let test_local_shadows_field () =
  let api = debug_api () in
  let p =
    Minijava.Resolve.parse_program ~api
      [
        ( "a.java",
          {|
          package corpus;
          class Shadow {
            ISelection held;
            void f(ISelection held) { held.isEmpty(); }
          }
          |} );
      ]
  in
  let m = List.hd p.Tast.methods in
  let param_read = ref false in
  Tast.iter_exprs m.Tast.body (fun e ->
      match e.Tast.tdesc with
      | Tast.Tvar "held" -> param_read := true
      | Tast.Tfield _ -> Alcotest.fail "field must be shadowed by the parameter"
      | _ -> ());
  check_bool "parameter wins" true !param_read

(* ---------- pretty-printer round trips ---------- *)

let test_pretty_roundtrip_figure4 () =
  let f1 = Minijava.Parser.parse ~file:"fig4" figure4_source in
  let printed = Minijava.Pretty.print_file f1 in
  let f2 = Minijava.Parser.parse ~file:"fig4'" printed in
  (* compare second-generation prints: positions differ, text must agree *)
  check_string "fixpoint" printed (Minijava.Pretty.print_file f2)

let test_pretty_roundtrip_corpus () =
  List.iter
    (fun (name, src) ->
      let f1 = Minijava.Parser.parse ~file:name src in
      let printed = Minijava.Pretty.print_file f1 in
      let f2 = Minijava.Parser.parse ~file:(name ^ "'") printed in
      check_string name printed (Minijava.Pretty.print_file f2))
    Apidata.Api.corpus_sources

let test_pretty_hole_and_literals () =
  let src =
    {|
    package p;
    class C {
      void f(A a) {
        String s = "he\"y";
        int n = 42;
        boolean b = true;
        Object o = null;
        A x = ?;
        if (b) { a.use(); } else { a.drop(); }
        return;
      }
    }
    |}
  in
  let f1 = Minijava.Parser.parse ~file:"t" src in
  let printed = Minijava.Pretty.print_file f1 in
  let f2 = Minijava.Parser.parse ~file:"t'" printed in
  check_string "fixpoint" printed (Minijava.Pretty.print_file f2);
  check_bool "hole survives" true
    (let n = String.length printed in
     let rec go i = i + 3 <= n && (String.sub printed i 3 = "= ?" || go (i + 1)) in
     go 0)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "minijava"
    [
      ( "lexer",
        [
          tc "literals" test_lexer_literals;
          tc "unterminated string" test_lexer_unterminated_string;
        ] );
      ( "parser",
        [
          tc "figure 4 shape" test_parse_figure4_shape;
          tc "cast vs paren" test_parse_cast_vs_paren;
          tc "chained calls" test_parse_chained_calls;
          tc "static chain" test_parse_static_chain;
          tc "class literal" test_parse_class_literal;
          tc "if/else" test_parse_if_else;
          tc "new and assign" test_parse_new_and_assign;
          tc "unqualified call" test_parse_unqualified_call;
          tc "while" test_parse_while;
          tc "class field" test_parse_class_field;
          tc "error located" test_parse_error_located;
        ] );
      ( "pretty",
        [
          tc "roundtrip figure 4" test_pretty_roundtrip_figure4;
          tc "roundtrip bundled corpus" test_pretty_roundtrip_corpus;
          tc "hole and literals" test_pretty_hole_and_literals;
        ] );
      ( "resolve",
        [
          tc "figure 4" test_resolve_figure4;
          tc "types flow" test_resolve_types_flow;
          tc "static call" test_resolve_static_call;
          tc "client cross call" test_resolve_client_cross_call;
          tc "implicit this" test_resolve_implicit_this;
          tc "unknown variable" test_resolve_unknown_variable;
          tc "unknown method" test_resolve_unknown_method;
          tc "inherited method" test_resolve_inherited_method;
          tc "array length" test_resolve_array_length;
          tc "field read and assign" test_resolve_field_read_and_assign;
          tc "local shadows field" test_local_shadows_field;
        ] );
    ]
