(* Tests for Search, Jungloid, Rank: path enumeration and the ranking
   heuristic (paper Sections 3.1 and 3.2). *)

module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Hierarchy = Javamodel.Hierarchy
module Elem = Prospector.Elem
module Graph = Prospector.Graph
module Sig_graph = Prospector.Sig_graph
module Search = Prospector.Search
module Jungloid = Prospector.Jungloid
module Rank = Prospector.Rank

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let load = Japi.Loader.load_string

let node g name = Option.get (Graph.find_type_node g (Jtype.ref_of_string name))

(* Linear chain A -> B -> C -> D via instance methods. *)
let chain_model () =
  load
    {|
    package p;
    class A { B toB(); }
    class B { C toC(); }
    class C { D toD(); }
    class D { }
    |}

let test_shortest_cost_chain () =
  let h = chain_model () in
  let g = Sig_graph.build h in
  check_bool "A to D = 3" true
    (Search.shortest_cost g ~sources:[ node g "p.A" ] ~target:(node g "p.D") = Some 3);
  check_bool "D to A unreachable" true
    (Search.shortest_cost g ~sources:[ node g "p.D" ] ~target:(node g "p.A") = None)

let test_enumerate_chain () =
  let h = chain_model () in
  let g = Sig_graph.build h in
  let paths = Search.enumerate g ~sources:[ node g "p.A" ] ~target:(node g "p.D") () in
  check_int "single path" 1 (List.length paths);
  check_int "cost 3" 3 (Search.path_cost (List.hd paths))

let test_widening_costs_zero () =
  let h =
    load
      {|
      package p;
      class Sub extends Super { }
      class Super { T get(); }
      class T { }
      |}
  in
  let g = Sig_graph.build h in
  (* Sub --widen(0)--> Super --get(1)--> T : total cost 1 *)
  check_bool "cost 1 through widening" true
    (Search.shortest_cost g ~sources:[ node g "p.Sub" ] ~target:(node g "p.T") = Some 1)

let test_slack_enumerates_longer_paths () =
  let h =
    load
      {|
      package p;
      class A { B direct(); M mid(); }
      class M { B toB(); }
      class B { }
      |}
  in
  let g = Sig_graph.build h in
  let short_only =
    Search.enumerate g ~sources:[ node g "p.A" ] ~target:(node g "p.B") ~slack:0 ()
  in
  check_int "slack 0: one path" 1 (List.length short_only);
  let with_slack =
    Search.enumerate g ~sources:[ node g "p.A" ] ~target:(node g "p.B") ~slack:1 ()
  in
  check_int "slack 1: two paths" 2 (List.length with_slack)

let test_acyclic_only () =
  let h =
    load
      {|
      package p;
      class A { A self(); B toB(); }
      class B { A back(); }
      |}
  in
  let g = Sig_graph.build h in
  let paths =
    Search.enumerate g ~sources:[ node g "p.A" ] ~target:(node g "p.B") ~slack:2 ()
  in
  (* Only the direct A->B: any longer route revisits A or B. *)
  check_int "one acyclic path" 1 (List.length paths);
  List.iter
    (fun (p : Search.path) ->
      let nodes =
        p.Search.source :: List.map (fun e -> e.Graph.dst) p.Search.edges
      in
      check_int "no repeated node"
        (List.length nodes)
        (List.length (List.sort_uniq compare nodes)))
    paths

let test_multi_source () =
  let h =
    load
      {|
      package p;
      class A { T fromA(); }
      class B { M toM(); }
      class M { T toT(); }
      class T { }
      |}
  in
  let g = Sig_graph.build h in
  let sources = [ node g "p.A"; node g "p.B" ] in
  let paths = Search.enumerate g ~sources ~target:(node g "p.T") ~slack:1 () in
  (* shortest over all sources is 1 (from A); slack 1 admits B's cost-2 path *)
  check_int "both sources found" 2 (List.length paths);
  let sources_seen =
    List.sort_uniq compare (List.map (fun (p : Search.path) -> p.Search.source) paths)
  in
  check_int "two distinct sources" 2 (List.length sources_seen)

let test_limit_respected () =
  (* A dense bipartite-ish graph with many parallel length-2 paths. *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "package p;\nclass A {\n";
  for i = 0 to 9 do
    Buffer.add_string buf (Printf.sprintf "  M%d m%d();\n" i i)
  done;
  Buffer.add_string buf "}\nclass T { }\n";
  for i = 0 to 9 do
    Buffer.add_string buf (Printf.sprintf "class M%d { T t(); }\n" i)
  done;
  let h = load (Buffer.contents buf) in
  let g = Sig_graph.build h in
  let all = Search.enumerate g ~sources:[ node g "p.A" ] ~target:(node g "p.T") () in
  check_int "ten paths" 10 (List.length all);
  let limited =
    Search.enumerate g ~sources:[ node g "p.A" ] ~target:(node g "p.T") ~limit:3 ()
  in
  check_int "limit 3" 3 (List.length limited)

let test_distances_agree_with_paths () =
  let h = chain_model () in
  let g = Sig_graph.build h in
  let d_from = Search.distances_from g ~sources:[ node g "p.A" ] in
  let d_to = Search.distances_to g ~target:(node g "p.D") in
  check_int "from A to C" 2 d_from.(node g "p.C");
  check_int "from C to D" 1 d_to.(node g "p.C")

(* ---------- Jungloid ---------- *)

let faq270 () =
  load
    {|
    package org.eclipse.ui;
    interface IEditorPart { IEditorInput getEditorInput(); }
    interface IEditorInput { }
    interface IDocumentProvider { }
    class DocumentProviderRegistry {
      static DocumentProviderRegistry getDefault();
      IDocumentProvider getDocumentProvider(IEditorInput input);
    }
    |}

let faq_jungloid h =
  let find name = Hierarchy.find h (Qname.of_string ("org.eclipse.ui." ^ name)) in
  let ep = find "IEditorPart" in
  let reg = find "DocumentProviderRegistry" in
  let get_input = List.hd ep.Javamodel.Decl.methods in
  let get_provider =
    List.find
      (fun (m : Javamodel.Member.meth) -> m.mname = "getDocumentProvider")
      reg.Javamodel.Decl.methods
  in
  Jungloid.make
    ~input:(Jtype.ref_of_string "org.eclipse.ui.IEditorPart")
    [
      Elem.Instance_call
        { owner = ep.Javamodel.Decl.dname; meth = get_input; input = Elem.Receiver };
      Elem.Instance_call
        { owner = reg.Javamodel.Decl.dname; meth = get_provider; input = Elem.Param 0 };
    ]

let test_jungloid_faq270 () =
  let h = faq270 () in
  let j = faq_jungloid h in
  check_bool "well typed" true (Jungloid.well_typed h j);
  check_int "length 2" 2 (Jungloid.length j);
  check_int "one free var (the registry receiver)" 1 (List.length (Jungloid.free_vars j));
  check_string "output" "org.eclipse.ui.IDocumentProvider"
    (Jtype.to_string (Jungloid.output_type j));
  check_string "expression" "receiver.getDocumentProvider(x.getEditorInput())"
    (Jungloid.to_expression j)

let test_jungloid_ill_typed_detected () =
  let h = faq270 () in
  let j = faq_jungloid h in
  let backwards =
    Jungloid.make ~input:(Jungloid.input_type j) (List.rev j.Jungloid.elems)
  in
  check_bool "reversed is ill-typed" false (Jungloid.well_typed h backwards)

let test_jungloid_widen_not_counted () =
  let h = load "package p; class Sub extends Super { } class Super { T get(); } class T { }" in
  let sub = Jtype.ref_of_string "p.Sub" and sup = Jtype.ref_of_string "p.Super" in
  let get =
    List.hd (Hierarchy.find h (Qname.of_string "p.Super")).Javamodel.Decl.methods
  in
  let j =
    Jungloid.make ~input:sub
      [
        Elem.Widen { from_ = sub; to_ = sup };
        Elem.Instance_call { owner = Qname.of_string "p.Super"; meth = get; input = Elem.Receiver };
      ]
  in
  check_bool "well typed" true (Jungloid.well_typed h j);
  check_int "length 1" 1 (Jungloid.length j)

let test_jungloid_downcast_direction () =
  let h = load "package p; class A { } class B extends A { }" in
  let a = Jtype.ref_of_string "p.A" and b = Jtype.ref_of_string "p.B" in
  let down = Jungloid.make ~input:a [ Elem.Downcast { from_ = a; to_ = b } ] in
  check_bool "downcast ok" true (Jungloid.well_typed h down);
  check_bool "contains downcast" true (Jungloid.contains_downcast down);
  let up_as_down = Jungloid.make ~input:b [ Elem.Downcast { from_ = b; to_ = a } ] in
  check_bool "upcast-as-downcast rejected" false (Jungloid.well_typed h up_as_down)

(* ---------- Rank ---------- *)

let test_rank_prefers_shorter () =
  let h = faq270 () in
  let j2 = faq_jungloid h in
  let reg = Hierarchy.find h (Qname.of_string "org.eclipse.ui.DocumentProviderRegistry") in
  let get_default =
    List.find
      (fun (m : Javamodel.Member.meth) -> m.mname = "getDefault")
      reg.Javamodel.Decl.methods
  in
  let j1 =
    Jungloid.make ~input:Jtype.Void
      [ Elem.Static_call { owner = reg.Javamodel.Decl.dname; meth = get_default; input = Elem.No_input } ]
  in
  let k1 = Rank.key h j1 and k2 = Rank.key h j2 in
  check_bool "shorter first" true (Rank.compare_key k1 k2 < 0);
  check_int "j1 effective length" 1 k1.Rank.length;
  (* j2: 2 elems + 1 free var * 2 *)
  check_int "j2 effective length" 4 k2.Rank.length

let test_rank_freevar_cost () =
  let h = faq270 () in
  let j = faq_jungloid h in
  let k_default = Rank.key h j in
  let k_zero = Rank.key ~weights:{ Rank.default_weights with freevar_cost = 0 } h j in
  check_int "default charges 2" 4 k_default.Rank.length;
  check_int "zero cost" 2 k_zero.Rank.length

let test_rank_package_crossings () =
  let h =
    load
      {|
      package a;
      class A { b.B toB(); }
      |}
  in
  let hb = load "package b; class B { b.C toC(); } class C { }" in
  ignore hb;
  let a_decl = Hierarchy.find h (Qname.of_string "a.A") in
  let to_b = List.hd a_decl.Javamodel.Decl.methods in
  let b_owner = Qname.of_string "b.B" in
  let m_c =
    Javamodel.Member.meth "toC" ~params:[] ~ret:(Jtype.ref_of_string "b.C")
  in
  let j =
    Jungloid.make ~input:(Jtype.ref_of_string "a.A")
      [
        Elem.Instance_call { owner = a_decl.Javamodel.Decl.dname; meth = to_b; input = Elem.Receiver };
        Elem.Instance_call { owner = b_owner; meth = m_c; input = Elem.Receiver };
      ]
  in
  check_int "one crossing" 1 (Rank.package_crossings j)

let test_rank_generality_tiebreak () =
  (* Two candidates of equal length; the one returning the more general
     type should rank first (the XMLEditor example of Section 3.2). *)
  let h =
    load
      {|
      package p;
      interface IEditorPart { }
      class XMLEditor implements IEditorPart { }
      class W {
        IEditorPart generic();
        XMLEditor specific();
      }
      |}
  in
  let w = Hierarchy.find h (Qname.of_string "p.W") in
  let m name =
    List.find (fun (m : Javamodel.Member.meth) -> m.mname = name) w.Javamodel.Decl.methods
  in
  let input = Jtype.ref_of_string "p.W" in
  let generic =
    Jungloid.make ~input
      [ Elem.Instance_call { owner = w.Javamodel.Decl.dname; meth = m "generic"; input = Elem.Receiver } ]
  in
  let specific =
    Jungloid.make ~input
      [
        Elem.Instance_call { owner = w.Javamodel.Decl.dname; meth = m "specific"; input = Elem.Receiver };
        Elem.Widen
          { from_ = Jtype.ref_of_string "p.XMLEditor"; to_ = Jtype.ref_of_string "p.IEditorPart" };
      ]
  in
  let sorted = Rank.sort h [ specific; generic ] in
  check_bool "generic ranked first" true (Jungloid.equal (List.hd sorted) generic);
  (* with the tiebreak disabled the order is textual, not generality *)
  let weights = { Rank.default_weights with generality_tiebreak = false } in
  let k_g = Rank.key ~weights h generic and k_s = Rank.key ~weights h specific in
  check_int "specificity off" k_g.Rank.specificity k_s.Rank.specificity

let test_pre_widening_output () =
  let a = Jtype.ref_of_string "p.A" and b = Jtype.ref_of_string "p.B" in
  let m = Javamodel.Member.meth "get" ~params:[] ~ret:a in
  let j =
    Jungloid.make ~input:b
      [
        Elem.Instance_call { owner = Qname.of_string "p.B"; meth = m; input = Elem.Receiver };
        Elem.Widen { from_ = a; to_ = Jtype.object_t };
      ]
  in
  check_string "pre-widen type" "p.A" (Jtype.to_string (Rank.pre_widening_output j))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "core_search"
    [
      ( "search",
        [
          tc "shortest cost chain" test_shortest_cost_chain;
          tc "enumerate chain" test_enumerate_chain;
          tc "widening zero cost" test_widening_costs_zero;
          tc "slack" test_slack_enumerates_longer_paths;
          tc "acyclic only" test_acyclic_only;
          tc "multi source" test_multi_source;
          tc "limit" test_limit_respected;
          tc "distances" test_distances_agree_with_paths;
        ] );
      ( "jungloid",
        [
          tc "faq270 value" test_jungloid_faq270;
          tc "ill-typed detected" test_jungloid_ill_typed_detected;
          tc "widen not counted" test_jungloid_widen_not_counted;
          tc "downcast direction" test_jungloid_downcast_direction;
        ] );
      ( "rank",
        [
          tc "prefers shorter" test_rank_prefers_shorter;
          tc "freevar cost" test_rank_freevar_cost;
          tc "package crossings" test_rank_package_crossings;
          tc "generality tiebreak" test_rank_generality_tiebreak;
          tc "pre-widening output" test_pre_widening_output;
        ] );
    ]
