(* Tests for the Figure 8 user-study simulation: determinism and the
   paper's qualitative claims (speedup ≈ 2, most users faster with the
   tool, reuse dominates in the tool arm, problem 2 hardest). *)

module Study_sim = Simstudy.Study_sim
module Programmer = Simstudy.Programmer

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let summary =
  lazy
    (Study_sim.simulate
       ~graph:(Apidata.Api.default_graph ())
       ~hierarchy:(Apidata.Api.hierarchy ())
       Apidata.Study.all)

let test_run_count () =
  let s = Lazy.force summary in
  check_int "13 users x 4 problems" 52 (List.length s.Study_sim.runs);
  check_int "half with tool" 26 s.Study_sim.tool_total;
  check_int "half without" 26 s.Study_sim.baseline_total

let test_speedup_near_two () =
  let s = Lazy.force summary in
  check_bool
    (Printf.sprintf "avg speedup %.2f in [1.5, 3.0]" s.Study_sim.avg_speedup)
    true
    (s.Study_sim.avg_speedup >= 1.5 && s.Study_sim.avg_speedup <= 3.0)

let test_most_users_faster () =
  let s = Lazy.force summary in
  (* paper: 10 of 13 faster, none more than marginally slower *)
  check_bool "at least 9 faster" true (s.Study_sim.users_faster >= 9);
  check_bool "at most 1 slower" true (s.Study_sim.users_slower <= 1)

let test_tool_reuse_dominates () =
  let s = Lazy.force summary in
  check_int "tool arm always reuses" s.Study_sim.tool_total s.Study_sim.tool_reuse;
  check_bool "baseline reuses at most as much" true
    (s.Study_sim.baseline_reuse <= s.Study_sim.baseline_total)

let test_problem2_hardest () =
  let s = Lazy.force summary in
  let mean_of id =
    (List.find (fun pp -> pp.Study_sim.problem = id) s.Study_sim.per_problem)
      .Study_sim.baseline_mean
  in
  List.iter
    (fun other ->
      check_bool
        (Printf.sprintf "problem 2 baseline slower than %d" other)
        true
        (mean_of 2 > mean_of other))
    [ 1; 3; 4 ]

let test_per_problem_tool_never_slower_much () =
  let s = Lazy.force summary in
  List.iter
    (fun pp ->
      check_bool
        (Printf.sprintf "problem %d speedup %.2f >= 0.75 (parity or better)" pp.Study_sim.problem
           pp.Study_sim.speedup)
        true (pp.Study_sim.speedup >= 0.75))
    s.Study_sim.per_problem

let test_deterministic () =
  let g = Apidata.Api.default_graph () and h = Apidata.Api.hierarchy () in
  let a = Study_sim.simulate ~seed:99 ~graph:g ~hierarchy:h Apidata.Study.all in
  let b = Study_sim.simulate ~seed:99 ~graph:g ~hierarchy:h Apidata.Study.all in
  check_bool "same runs" true (a.Study_sim.runs = b.Study_sim.runs)

let test_seed_changes_times () =
  let g = Apidata.Api.default_graph () and h = Apidata.Api.hierarchy () in
  let a = Study_sim.simulate ~seed:1 ~graph:g ~hierarchy:h Apidata.Study.all in
  let b = Study_sim.simulate ~seed:2 ~graph:g ~hierarchy:h Apidata.Study.all in
  check_bool "different runs" true (a.Study_sim.runs <> b.Study_sim.runs)

let test_render_mentions_all_problems () =
  let s = Lazy.force summary in
  let text = Study_sim.render_figure8 s in
  List.iter
    (fun i ->
      let needle = Printf.sprintf "Problem %d" i in
      let found =
        let n = String.length needle and m = String.length text in
        let rec go j = j + n <= m && (String.sub text j n = needle || go (j + 1)) in
        go 0
      in
      check_bool needle true found)
    [ 1; 2; 3; 4 ]

let test_speedup_robust_across_seeds () =
  let g = Apidata.Api.default_graph () and h = Apidata.Api.hierarchy () in
  List.iter
    (fun seed ->
      let s = Study_sim.simulate ~seed ~graph:g ~hierarchy:h Apidata.Study.all in
      check_bool
        (Printf.sprintf "seed %d speedup %.2f > 1.3" seed s.Study_sim.avg_speedup)
        true
        (s.Study_sim.avg_speedup > 1.3))
    [ 1; 7; 42; 1234; 99 ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "simstudy"
    [
      ( "figure8",
        [
          tc "run count" test_run_count;
          tc "speedup near two" test_speedup_near_two;
          tc "most users faster" test_most_users_faster;
          tc "tool reuse dominates" test_tool_reuse_dominates;
          tc "problem 2 hardest" test_problem2_hardest;
          tc "tool never much slower" test_per_problem_tool_never_slower_much;
          tc "render output" test_render_mentions_all_problems;
        ] );
      ( "determinism",
        [
          tc "same seed same runs" test_deterministic;
          tc "different seed different runs" test_seed_changes_times;
          tc "speedup robust across seeds" test_speedup_robust_across_seeds;
        ] );
    ]
