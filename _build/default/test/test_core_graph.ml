(* Tests for Elem, Graph, and Sig_graph: elementary jungloid derivation and
   signature-graph construction (paper Sections 2.1 and 3.1). *)

module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Member = Javamodel.Member
module Decl = Javamodel.Decl
module Hierarchy = Javamodel.Hierarchy
module Builder = Javamodel.Builder
module Elem = Prospector.Elem
module Graph = Prospector.Graph
module Sig_graph = Prospector.Sig_graph

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let q = Qname.of_string

(* The FAQ 270 model from Section 2.2. *)
let faq270 () =
  Japi.Loader.load_string
    {|
    package org.eclipse.ui;
    interface IEditorPart { IEditorInput getEditorInput(); }
    interface IEditorInput { }
    interface IDocumentProvider { }
    class DocumentProviderRegistry {
      static DocumentProviderRegistry getDefault();
      IDocumentProvider getDocumentProvider(IEditorInput input);
    }
    |}

(* ---------- Elem ---------- *)

let sample_meth =
  Member.meth "convert"
    ~params:[ ("a", Jtype.ref_of_string "p.A"); ("n", Jtype.Prim Jtype.Int) ]
    ~ret:(Jtype.ref_of_string "p.B")

let test_elem_instance_receiver () =
  let e = Elem.Instance_call { owner = q "p.C"; meth = sample_meth; input = Elem.Receiver } in
  check_string "input" "p.C" (Jtype.to_string (Elem.input_type e));
  check_string "output" "p.B" (Jtype.to_string (Elem.output_type e));
  check_int "frees: a and n" 2 (List.length (Elem.free_vars e));
  check_int "cost" 1 (Elem.cost e)

let test_elem_instance_param () =
  let e = Elem.Instance_call { owner = q "p.C"; meth = sample_meth; input = Elem.Param 0 } in
  check_string "input is param type" "p.A" (Jtype.to_string (Elem.input_type e));
  let frees = Elem.free_vars e in
  check_int "frees: receiver and n" 2 (List.length frees);
  check_bool "receiver free" true
    (List.exists (fun (n, _) -> n = "receiver") frees)

let test_elem_static_no_input () =
  let m = Member.meth ~static:true "getDefault" ~params:[] ~ret:(Jtype.ref_of_string "p.R") in
  let e = Elem.Static_call { owner = q "p.R"; meth = m; input = Elem.No_input } in
  check_bool "void input" true (Jtype.equal (Elem.input_type e) Jtype.Void);
  check_int "no frees" 0 (List.length (Elem.free_vars e))

let test_elem_widen_cost_zero () =
  let e = Elem.Widen { from_ = Jtype.ref_of_string "p.A"; to_ = Jtype.object_t } in
  check_int "cost 0" 0 (Elem.cost e);
  check_bool "is_widen" true (Elem.is_widen e);
  check_bool "no package" true (Elem.owner_package e = None)

let test_elem_field_static_vs_instance () =
  let fi = Elem.Field_access { owner = q "p.C"; field = Member.field "f" (Jtype.ref_of_string "p.A") } in
  check_string "instance input" "p.C" (Jtype.to_string (Elem.input_type fi));
  let fs =
    Elem.Field_access
      { owner = q "p.C"; field = Member.field ~static:true "g" (Jtype.ref_of_string "p.A") }
  in
  check_bool "static field void input" true (Jtype.equal (Elem.input_type fs) Jtype.Void)

(* ---------- elems_of_decl ---------- *)

let find_decl h name = Hierarchy.find h (q name)

let test_elems_of_decl_registry () =
  let h = faq270 () in
  let elems = Sig_graph.elems_of_decl (find_decl h "org.eclipse.ui.DocumentProviderRegistry") in
  (* getDefault: void -> Registry; getDocumentProvider: receiver + param 0 *)
  check_int "three elems" 3 (List.length elems);
  let inputs = List.map (fun e -> Jtype.to_string (Elem.input_type e)) elems in
  check_bool "has void" true (List.mem "void" inputs);
  check_bool "has registry receiver" true
    (List.mem "org.eclipse.ui.DocumentProviderRegistry" inputs);
  check_bool "has editor input param" true (List.mem "org.eclipse.ui.IEditorInput" inputs)

let test_elems_skip_private_and_prim_returns () =
  let h =
    Japi.Loader.load_string
      {|
      package p;
      class C {
        private p.C secret();
        int count();
        void run();
        p.C self();
      }
      |}
  in
  let elems = Sig_graph.elems_of_decl (find_decl h "p.C") in
  check_int "only self()" 1 (List.length elems)

let test_elems_protected_config () =
  let h =
    Japi.Loader.load_string "package p; class C { protected p.C clone2(); }"
  in
  let d = find_decl h "p.C" in
  check_int "default skips protected" 0 (List.length (Sig_graph.elems_of_decl d));
  let config = { Sig_graph.default_config with include_protected = true } in
  check_int "config includes protected" 1 (List.length (Sig_graph.elems_of_decl ~config d))

let test_elems_abstract_class_no_ctor () =
  let h =
    Japi.Loader.load_string
      "package p; abstract class A { A(); } class B extends A { B(); }"
  in
  check_int "abstract: no ctor elem" 0
    (List.length (Sig_graph.elems_of_decl (find_decl h "p.A")));
  check_int "concrete: ctor elem" 1
    (List.length (Sig_graph.elems_of_decl (find_decl h "p.B")))

let test_elems_deprecated_config () =
  let h =
    Japi.Loader.load_string "package p; class C { @Deprecated p.C old(); }"
  in
  let d = find_decl h "p.C" in
  check_int "default keeps deprecated" 1 (List.length (Sig_graph.elems_of_decl d));
  let config = { Sig_graph.default_config with include_deprecated = false } in
  check_int "config drops deprecated" 0 (List.length (Sig_graph.elems_of_decl ~config d))

(* ---------- Graph ---------- *)

let test_graph_interning () =
  let g = Graph.create () in
  let a = Graph.ensure_type_node g (Jtype.ref_of_string "p.A") in
  let a' = Graph.ensure_type_node g (Jtype.ref_of_string "p.A") in
  check_int "same id" a a';
  check_bool "find" true (Graph.find_type_node g (Jtype.ref_of_string "p.A") = Some a);
  check_bool "missing" true (Graph.find_type_node g (Jtype.ref_of_string "p.B") = None)

let test_graph_edges_dedup () =
  let g = Graph.create () in
  let a = Graph.ensure_type_node g (Jtype.ref_of_string "p.A") in
  let b = Graph.ensure_type_node g (Jtype.ref_of_string "p.B") in
  let e = Elem.Widen { from_ = Jtype.ref_of_string "p.A"; to_ = Jtype.ref_of_string "p.B" } in
  Graph.add_edge g ~src:a e ~dst:b;
  Graph.add_edge g ~src:a e ~dst:b;
  check_int "one edge" 1 (Graph.edge_count g);
  check_int "succ" 1 (List.length (Graph.succs g a));
  check_int "pred" 1 (List.length (Graph.preds g b))

let test_graph_typestate () =
  let g = Graph.create () in
  let ts = Graph.add_typestate g ~underlying:Jtype.object_t ~origin:"ex1" in
  check_bool "is typestate" true (Graph.is_typestate g ts);
  check_bool "origin" true (Graph.typestate_origin g ts = Some "ex1");
  check_bool "type" true (Jtype.equal (Graph.node_type g ts) Jtype.object_t);
  (* typestate nodes are never returned by type lookup *)
  check_bool "not interned" true (Graph.find_type_node g Jtype.object_t = None)

let test_graph_growth () =
  let g = Graph.create () in
  for i = 0 to 999 do
    ignore (Graph.ensure_type_node g (Jtype.ref_of_string (Printf.sprintf "p.C%d" i)))
  done;
  check_int "1000 nodes" 1000 (Graph.node_count g)

(* ---------- Sig_graph.build ---------- *)

let test_build_faq270 () =
  let h = faq270 () in
  let g = Sig_graph.build h in
  (* nodes for the 4 declared types + Object + void at least *)
  check_bool "editor part node" true
    (Graph.find_type_node g (Jtype.ref_of_string "org.eclipse.ui.IEditorPart") <> None);
  check_bool "void node exists" true (Graph.find_type_node g Jtype.Void <> None);
  (* widening edge from IEditorPart to Object *)
  let ep = Option.get (Graph.find_type_node g (Jtype.ref_of_string "org.eclipse.ui.IEditorPart")) in
  let widen_to_obj =
    List.exists
      (fun (e : Graph.edge) ->
        Elem.is_widen e.Graph.elem
        && Jtype.equal (Graph.node_type g e.Graph.dst) Jtype.object_t)
      (Graph.succs g ep)
  in
  check_bool "widens to Object" true widen_to_obj

let test_build_no_downcasts () =
  let h = faq270 () in
  let g = Sig_graph.build h in
  let any_downcast = ref false in
  Graph.iter_edges g (fun e -> if Elem.is_downcast e.Graph.elem then any_downcast := true);
  check_bool "no downcast edges" false !any_downcast

let test_add_all_downcasts () =
  let b = Builder.create ~default_pkg:"p" () in
  Builder.cls b "A";
  Builder.cls b "B" ~extends:"A";
  Builder.cls b "C" ~extends:"B";
  let h = Builder.hierarchy b in
  let g = Sig_graph.build h in
  let added = Sig_graph.add_all_downcasts g h in
  (* downcasts: A->B, A->C, B->C, Object->{A,B,C} = 6 *)
  check_int "six downcasts" 6 added

let test_build_array_covariance () =
  let h =
    Japi.Loader.load_string
      {|
      package p;
      class A { }
      class B extends A { B[] children(); A[] parents(); }
      |}
  in
  let g = Sig_graph.build h in
  let barr = Graph.find_type_node g (Jtype.array (Jtype.ref_of_string "p.B")) in
  let aarr = Graph.find_type_node g (Jtype.array (Jtype.ref_of_string "p.A")) in
  check_bool "B[] node" true (barr <> None);
  check_bool "A[] node" true (aarr <> None);
  let covariant =
    List.exists
      (fun (e : Graph.edge) -> e.Graph.dst = Option.get aarr && Elem.is_widen e.Graph.elem)
      (Graph.succs g (Option.get barr))
  in
  check_bool "B[] widens to A[]" true covariant;
  let to_object =
    List.exists
      (fun (e : Graph.edge) ->
        Elem.is_widen e.Graph.elem && Jtype.equal (Graph.node_type g e.Graph.dst) Jtype.object_t)
      (Graph.succs g (Option.get barr))
  in
  check_bool "B[] widens to Object" true to_object

let test_stats () =
  let h = faq270 () in
  let g = Sig_graph.build h in
  let s = Prospector.Stats.of_graph g in
  check_int "no typestates" 0 s.Prospector.Stats.typestate_nodes;
  check_bool "edges counted" true
    (s.Prospector.Stats.edges
    = s.Prospector.Stats.widen_edges + s.Prospector.Stats.call_edges
      + s.Prospector.Stats.field_edges + s.Prospector.Stats.downcast_edges);
  check_bool "memory positive" true (s.Prospector.Stats.approx_bytes > 0)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "core_graph"
    [
      ( "elem",
        [
          tc "instance receiver" test_elem_instance_receiver;
          tc "instance param" test_elem_instance_param;
          tc "static no input" test_elem_static_no_input;
          tc "widen cost" test_elem_widen_cost_zero;
          tc "fields" test_elem_field_static_vs_instance;
        ] );
      ( "elems_of_decl",
        [
          tc "registry" test_elems_of_decl_registry;
          tc "private and prim returns" test_elems_skip_private_and_prim_returns;
          tc "protected config" test_elems_protected_config;
          tc "abstract no ctor" test_elems_abstract_class_no_ctor;
          tc "deprecated config" test_elems_deprecated_config;
        ] );
      ( "graph",
        [
          tc "interning" test_graph_interning;
          tc "edge dedup" test_graph_edges_dedup;
          tc "typestate" test_graph_typestate;
          tc "growth" test_graph_growth;
        ] );
      ( "sig_graph",
        [
          tc "faq270" test_build_faq270;
          tc "no downcasts" test_build_no_downcasts;
          tc "all downcasts mode" test_add_all_downcasts;
          tc "array covariance" test_build_array_covariance;
          tc "stats" test_stats;
        ] );
    ]
