(* End-to-end tests for Codegen, Query, and Assist on the paper's worked
   examples (Sections 1, 2.2, and 5). *)

module Jtype = Javamodel.Jtype
module Elem = Prospector.Elem
module Graph = Prospector.Graph
module Sig_graph = Prospector.Sig_graph
module Jungloid = Prospector.Jungloid
module Codegen = Prospector.Codegen
module Query = Prospector.Query
module Assist = Prospector.Assist

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* The Section 1 parsing model: IFile -> ICompilationUnit -> ASTNode. *)
let parsing_model () =
  Japi.Loader.load_files
    [
      ( "resources",
        {|
        package org.eclipse.core.resources;
        interface IFile extends IResource { }
        interface IResource { }
        |} );
      ( "jdt",
        {|
        package org.eclipse.jdt.core;
        interface ICompilationUnit { }
        class JavaCore {
          static ICompilationUnit createCompilationUnitFrom(IFile file);
        }
        |} );
      ( "dom",
        {|
        package org.eclipse.jdt.core.dom;
        class ASTNode { }
        class CompilationUnit extends ASTNode { }
        class AST {
          static CompilationUnit parseCompilationUnit(ICompilationUnit unit, boolean resolve);
        }
        |} );
    ]

let faq270_model () =
  Japi.Loader.load_string
    {|
    package org.eclipse.ui;
    interface IEditorPart { IEditorInput getEditorInput(); }
    interface IEditorInput { }
    interface IDocumentProvider { }
    class DocumentProviderRegistry {
      static DocumentProviderRegistry getDefault();
      IDocumentProvider getDocumentProvider(IEditorInput input);
    }
    |}

(* ---------- Codegen ---------- *)

let test_var_name_of_type () =
  check_string "strips I" "editorInput"
    (Codegen.var_name_of_type (Jtype.ref_of_string "x.IEditorInput"));
  check_string "plain" "shell" (Codegen.var_name_of_type (Jtype.ref_of_string "x.Shell"));
  check_string "array" "bytes"
    (Codegen.var_name_of_type (Jtype.array (Jtype.ref_of_string "x.Byte")));
  check_string "lowercase already" "thing"
    (Codegen.var_name_of_type (Jtype.ref_of_string "x.Thing"))

let test_codegen_parsing_example () =
  let h = parsing_model () in
  let g = Sig_graph.build h in
  let q = Query.query "org.eclipse.core.resources.IFile" "org.eclipse.jdt.core.dom.ASTNode" in
  match Query.run ~graph:g ~hierarchy:h q with
  | [] -> Alcotest.fail "expected a result for (IFile, ASTNode)"
  | top :: _ ->
      (* Paper Section 1: createCompilationUnitFrom then parseCompilationUnit. *)
      check_bool "uses JavaCore" true (contains ~sub:"JavaCore.createCompilationUnitFrom" top.Query.code);
      check_bool "uses AST.parse" true (contains ~sub:"AST.parseCompilationUnit" top.Query.code);
      check_bool "boolean default filled" true (contains ~sub:"false" top.Query.code);
      check_int "rank length 2" 2 top.Query.key.Prospector.Rank.length

let test_codegen_free_variable_declared () =
  let h = faq270_model () in
  let g = Sig_graph.build h in
  let q =
    Query.query "org.eclipse.ui.IEditorPart" "org.eclipse.ui.IDocumentProvider"
  in
  match Query.run ~graph:g ~hierarchy:h q with
  | [] -> Alcotest.fail "expected a result"
  | top :: _ ->
      check_bool "free variable comment" true (contains ~sub:"// free variable" top.Query.code);
      check_bool "declares the registry" true
        (contains ~sub:"DocumentProviderRegistry" top.Query.code)

let test_codegen_named_input () =
  let h = faq270_model () in
  let find name =
    Javamodel.Hierarchy.find h (Javamodel.Qname.of_string ("org.eclipse.ui." ^ name))
  in
  let ep = find "IEditorPart" in
  let get_input = List.hd ep.Javamodel.Decl.methods in
  let j =
    Jungloid.make
      ~input:(Jtype.ref_of_string "org.eclipse.ui.IEditorPart")
      [ Elem.Instance_call { owner = ep.Javamodel.Decl.dname; meth = get_input; input = Elem.Receiver } ]
  in
  let gen =
    Codegen.generate ~input:("ep", Jtype.ref_of_string "org.eclipse.ui.IEditorPart") j
  in
  check_bool "uses ep" true (contains ~sub:"ep.getEditorInput()" gen.Codegen.code);
  check_string "result var" "editorInput" gen.Codegen.result_var

let test_codegen_unique_names () =
  (* A chain that produces two values of the same type must not reuse the
     variable name. *)
  let h = Japi.Loader.load_string "package p; class A { A next(); }" in
  let a = Javamodel.Hierarchy.find h (Javamodel.Qname.of_string "p.A") in
  let next = List.hd a.Javamodel.Decl.methods in
  let call = Elem.Instance_call { owner = a.Javamodel.Decl.dname; meth = next; input = Elem.Receiver } in
  let j = Jungloid.make ~input:(Jtype.ref_of_string "p.A") [ call; call ] in
  let gen = Codegen.generate j in
  check_bool "a2 present" true (contains ~sub:"a2" gen.Codegen.code);
  check_bool "a3 present" true (contains ~sub:"a3" gen.Codegen.code)

(* ---------- Query ---------- *)

let test_query_faq270_both_steps () =
  let h = faq270_model () in
  let g = Sig_graph.build h in
  (* Step 1 of Section 2.2. *)
  let r1 =
    Query.run ~graph:g ~hierarchy:h
      (Query.query "org.eclipse.ui.IEditorPart" "org.eclipse.ui.IDocumentProvider")
  in
  check_bool "step 1 found" true (r1 <> []);
  (* Step 2: the void query for the registry. *)
  let r2 =
    Query.run ~graph:g ~hierarchy:h
      (Query.query "void" "org.eclipse.ui.DocumentProviderRegistry")
  in
  check_bool "step 2 found" true (r2 <> []);
  check_bool "step 2 is getDefault" true
    (contains ~sub:"DocumentProviderRegistry.getDefault()" (List.hd r2).Query.code)

let test_query_no_path () =
  let h = faq270_model () in
  let g = Sig_graph.build h in
  let r =
    Query.run ~graph:g ~hierarchy:h
      (Query.query "org.eclipse.ui.IDocumentProvider" "org.eclipse.ui.IEditorPart")
  in
  check_int "no results" 0 (List.length r)

let test_query_unknown_type () =
  let h = faq270_model () in
  let g = Sig_graph.build h in
  let r = Query.run ~graph:g ~hierarchy:h (Query.query "no.Such" "also.Missing") in
  check_int "no results" 0 (List.length r)

let test_query_max_results () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "package p;\nclass A {\n";
  for i = 0 to 19 do
    Buffer.add_string buf (Printf.sprintf "  T get%d();\n" i)
  done;
  Buffer.add_string buf "}\nclass T { }\n";
  let h = Japi.Loader.load_string (Buffer.contents buf) in
  let g = Sig_graph.build h in
  let settings = { Query.default_settings with max_results = 5 } in
  let r = Query.run ~settings ~graph:g ~hierarchy:h (Query.query "p.A" "p.T") in
  check_int "truncated to 5" 5 (List.length r)

let test_query_results_sorted () =
  let h = parsing_model () in
  let g = Sig_graph.build h in
  let q = Query.query "org.eclipse.core.resources.IFile" "org.eclipse.jdt.core.dom.ASTNode" in
  let rs = Query.run ~graph:g ~hierarchy:h q in
  let keys = List.map (fun r -> r.Query.key) rs in
  let rec sorted = function
    | a :: (b :: _ as rest) -> Prospector.Rank.compare_key a b <= 0 && sorted rest
    | _ -> true
  in
  check_bool "ranked order" true (sorted keys)

(* ---------- Assist (multi-source) ---------- *)

let test_assist_finds_registry_via_void () =
  let h = faq270_model () in
  let g = Sig_graph.build h in
  let ctx =
    {
      Assist.vars =
        [
          ("ep", Jtype.ref_of_string "org.eclipse.ui.IEditorPart");
          ("inp", Jtype.ref_of_string "org.eclipse.ui.IEditorInput");
        ];
      expected = Jtype.ref_of_string "org.eclipse.ui.DocumentProviderRegistry";
    }
  in
  let suggestions = Assist.suggest ~graph:g ~hierarchy:h ctx in
  check_bool "found" true (suggestions <> []);
  let top = List.hd suggestions in
  (* Section 2.2: only the void query has a solution. *)
  check_bool "void source" true (top.Assist.uses_var = None);
  check_string "getDefault" "DocumentProviderRegistry.getDefault()" top.Assist.title

let test_assist_uses_variable () =
  let h = faq270_model () in
  let g = Sig_graph.build h in
  let ctx =
    {
      Assist.vars = [ ("ep", Jtype.ref_of_string "org.eclipse.ui.IEditorPart") ];
      expected = Jtype.ref_of_string "org.eclipse.ui.IEditorInput";
    }
  in
  let suggestions = Assist.suggest ~graph:g ~hierarchy:h ctx in
  check_bool "found" true (suggestions <> []);
  let top = List.hd suggestions in
  check_bool "uses ep" true (top.Assist.uses_var = Some "ep");
  check_string "title substitutes var" "ep.getEditorInput()" top.Assist.title;
  check_bool "code references ep" true (contains ~sub:"ep.getEditorInput()" top.Assist.code)

let test_assist_direct_variable () =
  (* A variable already of (a subtype of) the expected type is suggested
     verbatim, before any jungloid. *)
  let h =
    Japi.Loader.load_string
      "package p; class Editor implements IPart { } interface IPart { } class W { Editor get(); }"
  in
  let g = Sig_graph.build h in
  let ctx =
    {
      Assist.vars =
        [ ("w", Jtype.ref_of_string "p.W"); ("ed", Jtype.ref_of_string "p.Editor") ];
      expected = Jtype.ref_of_string "p.IPart";
    }
  in
  let suggestions = Assist.suggest ~graph:g ~hierarchy:h ctx in
  check_bool "has suggestions" true (suggestions <> []);
  let top = List.hd suggestions in
  check_string "variable itself first" "ed" top.Assist.title;
  check_bool "jungloid suggestions follow" true
    (List.exists (fun s -> s.Assist.title = "w.get()") suggestions)

let test_assist_two_vars_same_type () =
  let h = faq270_model () in
  let g = Sig_graph.build h in
  let ctx =
    {
      Assist.vars =
        [
          ("editor1", Jtype.ref_of_string "org.eclipse.ui.IEditorPart");
          ("editor2", Jtype.ref_of_string "org.eclipse.ui.IEditorPart");
        ];
      expected = Jtype.ref_of_string "org.eclipse.ui.IEditorInput";
    }
  in
  let suggestions = Assist.suggest ~graph:g ~hierarchy:h ctx in
  let vars = List.filter_map (fun s -> s.Assist.uses_var) suggestions in
  check_bool "editor1 suggested" true (List.mem "editor1" vars);
  check_bool "editor2 suggested" true (List.mem "editor2" vars)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "core_query"
    [
      ( "codegen",
        [
          tc "var names" test_var_name_of_type;
          tc "parsing example" test_codegen_parsing_example;
          tc "free variable declared" test_codegen_free_variable_declared;
          tc "named input" test_codegen_named_input;
          tc "unique names" test_codegen_unique_names;
        ] );
      ( "query",
        [
          tc "faq270 both steps" test_query_faq270_both_steps;
          tc "no path" test_query_no_path;
          tc "unknown type" test_query_unknown_type;
          tc "max results" test_query_max_results;
          tc "results sorted" test_query_results_sorted;
        ] );
      ( "assist",
        [
          tc "void source" test_assist_finds_registry_via_void;
          tc "uses variable" test_assist_uses_variable;
          tc "two vars same type" test_assist_two_vars_same_type;
          tc "direct variable" test_assist_direct_variable;
        ] );
    ]
