(* Tests for the synthetic workload generators: determinism, structure, and
   the ground-truth accuracy scoring of Section 4.4. *)

module Hierarchy = Javamodel.Hierarchy
module Rng = Corpusgen.Rng
module Apigen = Corpusgen.Apigen
module Truthgen = Corpusgen.Truthgen

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ---------- rng ---------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:1 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let r = Rng.create ~seed:2 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    check_bool "in range" true (v >= 0 && v < 10)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000000) in
  check_bool "different streams" true (xs <> ys)

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:3 in
  let xs = List.init 50 (fun i -> i) in
  let ys = Rng.shuffle r xs in
  check_bool "same elements" true (List.sort compare ys = xs)

let test_rng_bool_probability () =
  let r = Rng.create ~seed:4 in
  let hits = ref 0 in
  for _ = 1 to 10000 do
    if Rng.bool r 0.3 then incr hits
  done;
  let freq = float_of_int !hits /. 10000.0 in
  check_bool "frequency near 0.3" true (freq > 0.25 && freq < 0.35)

(* ---------- apigen ---------- *)

let test_apigen_size () =
  let h = Apigen.generate { Apigen.default_params with classes = 100 } in
  check_bool "at least 100 decls" true (Hierarchy.size h >= 100)

let test_apigen_deterministic () =
  let p = { Apigen.default_params with classes = 50 } in
  let a = Apigen.generate p and b = Apigen.generate p in
  check_int "same size" (Hierarchy.size a) (Hierarchy.size b);
  let decl h = Hierarchy.find h (Apigen.class_qname p 7) in
  check_bool "same decl" true (Javamodel.Decl.equal (decl a) (decl b))

let test_apigen_builds_graph () =
  let h = Apigen.generate { Apigen.default_params with classes = 100 } in
  let g = Prospector.Sig_graph.build h in
  check_bool "nodes" true (Prospector.Graph.node_count g > 100);
  check_bool "edges" true (Prospector.Graph.edge_count g > 200)

let test_random_queries_solvable () =
  let h = Corpusgen.Workload.scaling_api ~classes:100 in
  let g = Prospector.Sig_graph.build h in
  let qs = Corpusgen.Workload.random_queries h g ~count:10 ~seed:5 in
  check_bool "got some queries" true (List.length qs > 0);
  List.iter
    (fun q ->
      check_bool "solvable" true
        (Prospector.Query.run ~graph:g ~hierarchy:h q <> []))
    qs

(* ---------- truthgen: the §4.4 accuracy experiment ---------- *)

let test_truth_full_coverage_perfect () =
  let t = Truthgen.generate { Truthgen.default_params with producers = 10 } in
  let s = Truthgen.score t in
  check_float "complete" 1.0 s.Truthgen.completeness;
  check_float "precise" 1.0 s.Truthgen.precision;
  check_bool "synthesized downcasts" true (s.Truthgen.synthesized >= 10)

let test_truth_partial_coverage () =
  let t =
    Truthgen.generate { Truthgen.default_params with producers = 30; coverage = 0.5; seed = 11 }
  in
  let s = Truthgen.score t in
  let covered =
    Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 t.Truthgen.covered
  in
  let expected = float_of_int covered /. 30.0 in
  check_bool "completeness equals coverage" true
    (abs_float (s.Truthgen.completeness -. expected) < 0.001);
  check_float "precision stays perfect" 1.0 s.Truthgen.precision

let test_truth_no_generalization_kills_completeness () =
  let t = Truthgen.generate { Truthgen.default_params with producers = 10 } in
  let s = Truthgen.score ~generalize:false t in
  (* ungeneralized examples start at void, so (Registry, Model_i) queries
     find nothing — the paper's motivation for generalization *)
  check_float "no completeness" 0.0 s.Truthgen.completeness

let test_truth_overgeneralization_hurts_precision () =
  (* A single covered producer and min_keep 0: the suffix collapses to the
     bare cast, which the signature graph then applies to every
     Object-returning lookup — precision collapses (the Figure 3 risk). *)
  let covered = Array.init 8 (fun i -> i = 0) in
  let t =
    Truthgen.generate_with ~covered
      { Truthgen.default_params with producers = 8; seed = 3 }
  in
  let strict = Truthgen.score ~min_keep:1 t in
  let loose = Truthgen.score ~min_keep:0 t in
  check_float "min_keep 1 precise" 1.0 strict.Truthgen.precision;
  check_bool "min_keep 0 imprecise" true (loose.Truthgen.precision < 0.5)

let test_truth_flow_sensitivity_gap () =
  (* One method reuses a single Object variable across producers: every
     cast is viable in the source, but the flow-insensitive slicer wires
     each cast to every reassignment — precision collapses to ~1/k, while
     the flow-sensitive ablation recovers it. Completeness is unaffected. *)
  let t =
    Truthgen.generate
      { Truthgen.default_params with producers = 6; reuse_variable = true; seed = 5 }
  in
  let insensitive = Truthgen.score ~tin:"void" t in
  let sensitive = Truthgen.score ~flow_sensitive:true ~tin:"void" t in
  check_float "flow-sensitive precision perfect" 1.0 sensitive.Truthgen.precision;
  check_bool
    (Printf.sprintf "flow-insensitive precision %.2f well below 1"
       insensitive.Truthgen.precision)
    true
    (insensitive.Truthgen.precision < 0.8);
  check_float "both complete" 1.0 insensitive.Truthgen.completeness;
  check_float "sensitive complete" 1.0 sensitive.Truthgen.completeness

(* ---------- branchy corpus (cap sweep workload) ---------- *)

let test_branchy_corpus_extracts () =
  let h, corpus = Corpusgen.Workload.branchy_corpus ~branches:8 in
  let prog = Minijava.Resolve.parse_program ~api:h corpus in
  let df = Mining.Dataflow.build prog in
  check_int "eight examples" 8 (List.length (Mining.Extract.extract df));
  check_bool "cap binds" true
    (List.length (Mining.Extract.extract ~max_per_cast:2 df) <= 2)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "corpusgen"
    [
      ( "rng",
        [
          tc "deterministic" test_rng_deterministic;
          tc "bounds" test_rng_bounds;
          tc "seeds differ" test_rng_seeds_differ;
          tc "shuffle permutation" test_rng_shuffle_permutation;
          tc "bool probability" test_rng_bool_probability;
        ] );
      ( "apigen",
        [
          tc "size" test_apigen_size;
          tc "deterministic" test_apigen_deterministic;
          tc "builds graph" test_apigen_builds_graph;
          tc "random queries solvable" test_random_queries_solvable;
        ] );
      ( "truthgen",
        [
          tc "full coverage perfect" test_truth_full_coverage_perfect;
          tc "partial coverage" test_truth_partial_coverage;
          tc "no generalization kills completeness"
            test_truth_no_generalization_kills_completeness;
          tc "overgeneralization hurts precision"
            test_truth_overgeneralization_hurts_precision;
          tc "flow-sensitivity precision gap" test_truth_flow_sensitivity_gap;
        ] );
      ("workload", [ tc "branchy corpus" test_branchy_corpus_extracts ]);
    ]
