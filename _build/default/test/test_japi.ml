(* Tests for the .japi lexer, parser, loader, and printer. *)

module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Member = Javamodel.Member
module Decl = Javamodel.Decl
module Hierarchy = Javamodel.Hierarchy

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let q = Qname.of_string

let load = Japi.Loader.load_string

let expect_error src =
  match Japi.Loader.load_string src with
  | exception Japi.Error.E e -> e
  | _ -> Alcotest.fail "expected a Japi.Error.E"

(* ---------- lexer ---------- *)

let kinds src =
  Array.to_list (Japi.Lexer.tokenize ~file:"t" src)
  |> List.map (fun t -> t.Japi.Token.kind)

let test_lexer_basic () =
  check_int "token count" 5 (List.length (kinds "class Foo { }"));
  (* class, Ident, '{', '}', Eof *)
  check_bool "class kw" true (List.mem Japi.Token.Kw_class (kinds "class Foo { }"))

let test_lexer_comments () =
  let ks = kinds "class /* hi \n multi */ Foo { // trailing\n }" in
  check_bool "comments skipped" true
    (ks = [ Japi.Token.Kw_class; Japi.Token.Ident "Foo"; Japi.Token.Lbrace;
            Japi.Token.Rbrace; Japi.Token.Eof ])

let test_lexer_positions () =
  let toks = Japi.Lexer.tokenize ~file:"t" "class\n  Foo" in
  check_int "line of Foo" 2 toks.(1).Japi.Token.line;
  check_int "col of Foo" 3 toks.(1).Japi.Token.col

let test_lexer_bad_char () =
  match Japi.Lexer.tokenize ~file:"t" "class # Foo" with
  | exception Japi.Error.E e ->
      check_int "line" 1 e.Japi.Error.line;
      check_int "col" 7 e.Japi.Error.col
  | _ -> Alcotest.fail "expected lexer error"

let test_lexer_unterminated_comment () =
  match Japi.Lexer.tokenize ~file:"t" "/* oops" with
  | exception Japi.Error.E e ->
      check_bool "mentions comment" true
        (String.length e.Japi.Error.msg > 0)
  | _ -> Alcotest.fail "expected lexer error"

(* ---------- parser + loader ---------- *)

let test_parse_simple_class () =
  let h =
    load
      {|
      package demo;
      public class Point {
        Point(int x, int y);
        int getX();
        demo.Point translate(demo.Point delta);
        static Point origin();
      }
      |}
  in
  let d = Hierarchy.find h (q "demo.Point") in
  check_int "ctors" 1 (List.length d.Decl.ctors);
  check_int "methods" 3 (List.length d.Decl.methods);
  let origin = List.find (fun (m : Member.meth) -> m.mname = "origin") d.Decl.methods in
  check_bool "origin static" true origin.Member.mstatic;
  let translate =
    List.find (fun (m : Member.meth) -> m.mname = "translate") d.Decl.methods
  in
  check_bool "param type resolved" true
    (match translate.Member.params with
    | [ (_, Jtype.Ref p) ] -> Qname.equal p (q "demo.Point")
    | _ -> false)

let test_parse_interface_and_extends () =
  let h =
    load
      {|
      package x;
      interface A { }
      interface B extends A { }
      class C implements B { }
      class D extends C implements A { }
      |}
  in
  check_bool "B <= A" true (Hierarchy.is_subclass h (q "x.B") (q "x.A"));
  check_bool "D <= A" true (Hierarchy.is_subclass h (q "x.D") (q "x.A"));
  check_bool "D <= C" true (Hierarchy.is_subclass h (q "x.D") (q "x.C"));
  let b = Hierarchy.find h (q "x.B") in
  check_bool "interface abstract" true b.Decl.abstract

let test_parse_fields_arrays () =
  let h =
    load
      {|
      package x;
      class Buf {
        byte[] data;
        static Buf[] pool;
        String[][] names;
      }
      |}
  in
  let d = Hierarchy.find h (q "x.Buf") in
  let field n = List.find (fun (f : Member.field) -> f.fname = n) d.Decl.fields in
  check_string "byte[]" "byte[]" (Jtype.to_string (field "data").Member.ftype);
  check_bool "static pool" true (field "pool").Member.fstatic;
  check_string "string[][]" "java.lang.String[][]"
    (Jtype.to_string (field "names").Member.ftype)

let test_visibility_and_deprecated () =
  let h =
    load
      {|
      package x;
      class V {
        private int secret();
        protected V clone2();
        @Deprecated Object legacy();
      }
      |}
  in
  let d = Hierarchy.find h (q "x.V") in
  let m n = List.find (fun (m : Member.meth) -> m.mname = n) d.Decl.methods in
  check_bool "private" true ((m "secret").Member.mvis = Member.Private);
  check_bool "protected" true ((m "clone2").Member.mvis = Member.Protected);
  check_bool "deprecated" true (m "legacy").Member.mdeprecated

let test_object_string_fallback () =
  let h = load "package x; class F { String name(); Object raw(); }" in
  let d = Hierarchy.find h (q "x.F") in
  let m n = List.find (fun (m : Member.meth) -> m.mname = n) d.Decl.methods in
  check_string "String resolves to java.lang" "java.lang.String"
    (Jtype.to_string (m "name").Member.ret);
  check_string "Object resolves to java.lang" "java.lang.Object"
    (Jtype.to_string (m "raw").Member.ret)

let test_cross_file_resolution () =
  let h =
    Japi.Loader.load_files
      [
        ("a", "package aa; class Alpha { bb.Beta toBeta(); }");
        ("b", "package bb; class Beta { Alpha back(); }");
      ]
  in
  let beta = Hierarchy.find h (q "bb.Beta") in
  let back = List.hd beta.Decl.methods in
  (* "Alpha" is simple but globally unique -> resolves to aa.Alpha *)
  check_string "unique simple name" "aa.Alpha" (Jtype.to_string back.Member.ret)

let test_import_resolution () =
  let h =
    Japi.Loader.load_files
      [
        ("a", "package p1; class Thing { }");
        ("b", "package p2; class Thing { }");
        ("c", "package q; import p2.Thing; class User { Thing get(); }");
      ]
  in
  let u = Hierarchy.find h (q "q.User") in
  check_string "import wins" "p2.Thing"
    (Jtype.to_string (List.hd u.Decl.methods).Member.ret)

let test_ambiguous_simple_name () =
  let e =
    match
      Japi.Loader.load_files
        [
          ("a", "package p1; class Thing { }");
          ("b", "package p2; class Thing { }");
          ("c", "package q; class User { Thing get(); }");
        ]
    with
    | exception Japi.Error.E e -> e
    | _ -> Alcotest.fail "expected ambiguity error"
  in
  check_bool "mentions ambiguity" true
    (String.length e.Japi.Error.msg > 0
    && String.sub e.Japi.Error.msg 0 9 = "ambiguous")

let test_unknown_name_becomes_opaque () =
  let h = load "package x; class F { ext.Widget gadget(); }" in
  check_bool "opaque decl added" true (Hierarchy.mem h (q "ext.Widget"));
  check_bool "synthetic" true (Hierarchy.find h (q "ext.Widget")).Decl.synthetic

let test_duplicate_across_files () =
  let e =
    match
      Japi.Loader.load_files
        [ ("a", "package p; class X { }"); ("b", "package p; class X { }") ]
    with
    | exception Japi.Error.E e -> e
    | _ -> Alcotest.fail "expected duplicate error"
  in
  check_string "file" "b" e.Japi.Error.file

let test_class_extends_interface_rejected () =
  let e = expect_error "package x; interface I { } class C extends I { }" in
  check_bool "msg mentions not a class" true
    (String.length e.Japi.Error.msg > 0)

let test_interface_extends_class_rejected () =
  let e = expect_error "package x; class C { } interface I extends C { }" in
  check_bool "got error" true (e.Japi.Error.line > 0)

let test_implements_class_rejected () =
  let e = expect_error "package x; class A { } class B implements A { }" in
  check_bool "got error" true (e.Japi.Error.line > 0)

let test_inheritance_cycle_rejected () =
  let e = expect_error "package x; interface A extends B { } interface B extends A { }" in
  check_bool "cycle reported" true
    (String.length e.Japi.Error.msg >= 5)

let test_interface_ctor_rejected () =
  let e = expect_error "package x; interface I { I(); }" in
  check_bool "reports constructor" true (String.length e.Japi.Error.msg > 0)

let test_syntax_error_located () =
  let e = expect_error "package x;\nclass C {\n  int ();\n}" in
  check_int "line" 3 e.Japi.Error.line

let test_constructor_vs_method () =
  let h =
    load
      {|
      package x;
      class Conn {
        Conn(String url);
        Conn dup();
      }
      |}
  in
  let d = Hierarchy.find h (q "x.Conn") in
  check_int "one ctor" 1 (List.length d.Decl.ctors);
  check_int "one method" 1 (List.length d.Decl.methods)

(* ---------- printer round trip ---------- *)

let strip_synthetic h =
  List.filter (fun (d : Decl.t) -> not d.Decl.synthetic) (Hierarchy.decls h)

let test_roundtrip () =
  let src =
    {|
    package rt;
    interface Readable { String read(); }
    abstract class Stream implements Readable {
      protected int bufsize;
      Stream(int size);
      @Deprecated static Stream open(String name);
      byte[] bytes(int max, boolean strict);
    }
    class FileStream extends Stream {
      FileStream(String path);
    }
    |}
  in
  let h1 = load src in
  let h2 = Japi.Loader.load_files (Japi.Printer.print_files h1) in
  let d1 = strip_synthetic h1 and d2 = strip_synthetic h2 in
  check_int "same decl count" (List.length d1) (List.length d2);
  List.iter2
    (fun (a : Decl.t) (b : Decl.t) ->
      check_bool (Printf.sprintf "decl %s equal" (Qname.to_string a.Decl.dname)) true
        (Decl.equal a b))
    d1 d2

let test_roundtrip_multi_package () =
  let h1 =
    Japi.Loader.load_files
      [
        ("a", "package aa; class Alpha { bb.Beta toBeta(); }");
        ("b", "package bb; class Beta { aa.Alpha back(); }");
      ]
  in
  let h2 = Japi.Loader.load_files (Japi.Printer.print_files h1) in
  check_int "decl count" (List.length (strip_synthetic h1))
    (List.length (strip_synthetic h2))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "japi"
    [
      ( "lexer",
        [
          tc "basic" test_lexer_basic;
          tc "comments" test_lexer_comments;
          tc "positions" test_lexer_positions;
          tc "bad char" test_lexer_bad_char;
          tc "unterminated comment" test_lexer_unterminated_comment;
        ] );
      ( "parser",
        [
          tc "simple class" test_parse_simple_class;
          tc "interfaces and extends" test_parse_interface_and_extends;
          tc "fields and arrays" test_parse_fields_arrays;
          tc "visibility and deprecated" test_visibility_and_deprecated;
          tc "constructor vs method" test_constructor_vs_method;
          tc "syntax error located" test_syntax_error_located;
        ] );
      ( "loader",
        [
          tc "Object/String fallback" test_object_string_fallback;
          tc "cross-file resolution" test_cross_file_resolution;
          tc "import resolution" test_import_resolution;
          tc "ambiguous simple name" test_ambiguous_simple_name;
          tc "unknown becomes opaque" test_unknown_name_becomes_opaque;
          tc "duplicate across files" test_duplicate_across_files;
          tc "class extends interface" test_class_extends_interface_rejected;
          tc "interface extends class" test_interface_extends_class_rejected;
          tc "implements class" test_implements_class_rejected;
          tc "inheritance cycle" test_inheritance_cycle_rejected;
          tc "interface constructor" test_interface_ctor_rejected;
        ] );
      ( "printer",
        [
          tc "roundtrip" test_roundtrip;
          tc "roundtrip multi package" test_roundtrip_multi_package;
        ] );
    ]
