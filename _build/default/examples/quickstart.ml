(* Quickstart: load an API model from .japi text, build the signature
   graph, and answer a jungloid query — the smallest complete use of the
   public API.

   Run with: dune exec examples/quickstart.exe *)

let api =
  {|
  package demo.io;

  class Database {
    static Database open(String url);
    Session newSession();
  }

  class Session {
    Cursor query(String sql);
  }

  class Cursor {
    Row next();
  }

  class Row {
    String column(int index);
  }
  |}

let () =
  (* 1. Parse the API signatures into a class hierarchy. *)
  let hierarchy = Japi.Loader.load_string ~file:"demo.japi" api in
  Printf.printf "loaded %d declarations\n" (Javamodel.Hierarchy.size hierarchy);

  (* 2. Build the signature graph: one node per type, one edge per
        elementary jungloid. *)
  let graph = Prospector.Sig_graph.build hierarchy in
  let stats = Prospector.Stats.of_graph graph in
  Printf.printf "signature graph: %d nodes, %d edges\n\n" stats.Prospector.Stats.nodes
    stats.Prospector.Stats.edges;

  (* 3. Ask: "I have a Database, I need a Row." *)
  let q = Prospector.Query.query "demo.io.Database" "demo.io.Row" in
  let results = Prospector.Query.run ~graph ~hierarchy q in

  (* 4. Read the ranked jungloids and the generated Java. *)
  List.iteri
    (fun i (r : Prospector.Query.result) ->
      Printf.printf "result #%d: %s\n%s\n" (i + 1)
        (Prospector.Jungloid.to_string r.Prospector.Query.jungloid)
        r.Prospector.Query.code)
    results;

  (* 5. How do I even get a Database? Database.open takes the URL string,
        so the producer query starts from String. (A zero-argument factory
        would make it a void query instead.) *)
  let producer_q = Prospector.Query.query "java.lang.String" "demo.io.Database" in
  (match Prospector.Query.run ~graph ~hierarchy producer_q with
  | top :: _ ->
      Printf.printf "how do I even get a Database? (from its URL string)\n%s"
        top.Prospector.Query.code
  | [] -> print_endline "no way to build a Database");

  print_endline "\nquickstart done"
