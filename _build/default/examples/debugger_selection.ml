(* The paper's Section 4 example: jungloids that contain downcasts cannot
   be synthesized from signatures — getSelection() returns an ISelection
   whose only method is isEmpty(), an apparent dead end. Mining the corpus
   (Figure 4's production code) teaches the graph which downcasts are
   viable, after which the query succeeds.

   Run with: dune exec examples/debugger_selection.exe *)

let tin = "org.eclipse.debug.ui.IDebugView"
let tout = "org.eclipse.jdt.internal.debug.ui.display.JavaInspectExpression"

let () =
  let hierarchy = Apidata.Api.hierarchy () in

  print_endline "Task: the watch expression selected in the Java debugger GUI.";
  Printf.printf "Query: (%s, %s)\n\n" "IDebugView" "JavaInspectExpression";

  (* Signatures only: the dead end the paper describes. *)
  let sig_graph = Apidata.Api.signature_graph () in
  let q = Prospector.Query.query tin tout in
  let without = Prospector.Query.run ~graph:sig_graph ~hierarchy q in
  Printf.printf "signature graph only: %d results (ISelection is a dead end)\n\n"
    (List.length without);

  (* With mining: the Figure 4 corpus example donates the cast chain. *)
  let graph, stats = Apidata.Api.jungloid_graph () in
  Printf.printf
    "mined the corpus: %d casts, %d examples, %d after generalization, %d edges added\n\n"
    stats.Mining.Enrich.casts_in_corpus stats.Mining.Enrich.examples_extracted
    stats.Mining.Enrich.examples_after_generalization stats.Mining.Enrich.edges_added;
  match Prospector.Query.run ~graph ~hierarchy q with
  | [] -> print_endline "unexpected: still no results"
  | top :: _ ->
      print_endline "with the jungloid graph:";
      print_string top.Prospector.Query.code;
      (* Figure 2 of the paper:
           Viewer viewer = debugger.getViewer();
           IStructuredSelection sel = (IStructuredSelection) viewer.getSelection();
           JavaInspectExpression expr = (JavaInspectExpression) sel.getFirstElement(); *)
      print_endline "\n(matches Figure 2 of the paper)"
