(* Section 4.1's first motivation for mining: "Many existing APIs require
   downcasts because they use legacy collections instead of Java 5
   Generics." ZipFile.entries() returns a raw Enumeration whose elements
   are, at run time, ZipEntry objects — a fact signatures cannot express.
   The corpus teaches the graph the viable cast.

   Run with: dune exec examples/legacy_collections.exe *)

let () =
  let hierarchy = Apidata.Api.hierarchy () in

  print_endline "Task: iterate the entries of a zip file.";
  print_endline "Query: (ZipFile, ZipEntry), slack 2 for the longer mined chain\n";

  let settings = { Prospector.Query.default_settings with slack = 2 } in
  let q = Prospector.Query.query "java.util.zip.ZipFile" "java.util.zip.ZipEntry" in

  (* Signatures only: the Enumeration is a dead end (nextElement() returns
     Object), so the only routes are constructors and getEntry. *)
  let sig_graph = Apidata.Api.signature_graph () in
  let without = Prospector.Query.run ~settings ~graph:sig_graph ~hierarchy q in
  print_endline "signature graph only:";
  List.iteri
    (fun i (r : Prospector.Query.result) ->
      if i < 3 then
        Printf.printf "  %d. %s\n" (i + 1)
          (Prospector.Jungloid.to_expression r.Prospector.Query.jungloid))
    without;

  (* With the mined corpus, the enumeration route exists. *)
  let graph = Apidata.Api.default_graph () in
  let with_mining = Prospector.Query.run ~settings ~graph ~hierarchy q in
  print_endline "\nwith the mined corpus:";
  List.iteri
    (fun i (r : Prospector.Query.result) ->
      if i < 5 then
        Printf.printf "  %d. %s\n" (i + 1)
          (Prospector.Jungloid.to_expression r.Prospector.Query.jungloid))
    with_mining;

  match
    List.find_opt
      (fun (r : Prospector.Query.result) ->
        Prospector.Jungloid.contains_downcast r.Prospector.Query.jungloid)
      with_mining
  with
  | Some r ->
      print_endline "\nthe mined legacy-collection jungloid, as insertable Java:";
      print_string r.Prospector.Query.code
  | None -> print_endline "\nunexpected: no mined route"
