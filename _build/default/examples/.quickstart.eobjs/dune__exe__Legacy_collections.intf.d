examples/legacy_collections.mli:
