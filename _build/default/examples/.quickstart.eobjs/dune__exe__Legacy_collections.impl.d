examples/legacy_collections.ml: Apidata List Printf Prospector
