examples/parse_source_file.mli:
