examples/api_explorer.ml: Apidata Array Javamodel Lazy List Printf Prospector String Sys
