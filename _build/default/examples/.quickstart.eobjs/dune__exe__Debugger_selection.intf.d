examples/debugger_selection.mli:
