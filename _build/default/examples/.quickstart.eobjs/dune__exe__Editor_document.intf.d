examples/editor_document.mli:
