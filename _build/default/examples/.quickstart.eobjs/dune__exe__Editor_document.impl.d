examples/editor_document.ml: Apidata Javamodel List Printf Prospector String
