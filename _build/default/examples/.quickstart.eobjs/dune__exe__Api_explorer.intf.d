examples/api_explorer.mli:
