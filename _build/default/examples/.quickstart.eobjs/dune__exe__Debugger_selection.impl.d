examples/debugger_selection.ml: Apidata List Mining Printf Prospector
