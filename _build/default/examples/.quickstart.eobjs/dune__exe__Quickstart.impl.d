examples/quickstart.ml: Japi Javamodel List Printf Prospector
