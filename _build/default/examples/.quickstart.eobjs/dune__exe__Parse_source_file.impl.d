examples/parse_source_file.ml: Apidata List Printf Prospector String
