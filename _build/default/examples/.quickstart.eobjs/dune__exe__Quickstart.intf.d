examples/quickstart.mli:
