(* Eclipse FAQ 270 (the paper's Section 2.2 worked example): "How do I
   manipulate the data in my visual editor?" — solved by composing two
   jungloid queries. The first yields a jungloid with a free variable (the
   DocumentProviderRegistry); the second, a void-input query, produces it.
   This is the paper's recipe for code that needs more than one input.

   Run with: dune exec examples/editor_document.exe *)

let () =
  let hierarchy = Apidata.Api.hierarchy () in
  let graph = Apidata.Api.default_graph () in

  print_endline "FAQ 270: manipulate the document behind a visual editor.\n";

  (* Step 1: (IEditorPart, IDocumentProvider). *)
  print_endline "step 1 — query (IEditorPart, IDocumentProvider):";
  let q1 =
    Prospector.Query.query "org.eclipse.ui.IEditorPart"
      "org.eclipse.ui.texteditor.IDocumentProvider"
  in
  let r1 = Prospector.Query.run ~graph ~hierarchy q1 in
  let has sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  (* The paper's route feeds getEditorInput() into the registry, leaving the
     registry itself as the free variable. *)
  let registry_route =
    List.find
      (fun (r : Prospector.Query.result) ->
        has "getEditorInput()" r.Prospector.Query.code
        && List.exists
             (fun (_, ty) ->
               Javamodel.Jtype.to_string ty
               = "org.eclipse.ui.texteditor.DocumentProviderRegistry")
             (Prospector.Jungloid.free_vars r.Prospector.Query.jungloid))
      r1
  in
  print_string registry_route.Prospector.Query.code;

  (* Step 2: the snippet above declares a free variable of type
     DocumentProviderRegistry. The user does not know what to compute it
     from, so content assist tries every visible variable plus void. *)
  print_endline "\nstep 2 — the free variable: (void, DocumentProviderRegistry):";
  let ctx =
    {
      Prospector.Assist.vars =
        [ ("ep", Javamodel.Jtype.ref_of_string "org.eclipse.ui.IEditorPart") ];
      expected =
        Javamodel.Jtype.ref_of_string "org.eclipse.ui.texteditor.DocumentProviderRegistry";
    }
  in
  (match Prospector.Assist.suggest ~graph ~hierarchy ctx with
  | top :: _ ->
      Printf.printf "  %s%s\n" top.Prospector.Assist.title
        (match top.Prospector.Assist.uses_var with
        | Some v -> "   (uses " ^ v ^ ")"
        | None -> "   (built from nothing — the void query)")
  | [] -> print_endline "  no suggestion");

  (* Assembled, this is the paper's final code:

       IEditorInput inp = ep.getEditorInput();
       DocumentProviderRegistry dpreg = DocumentProviderRegistry.getDefault();
       IDocumentProvider dp = dpreg.getDocumentProvider(inp);            *)
  print_endline "\ndone: two queries, one composed solution (Section 2.2)"
