(* The paper's Section 1 motivating example: parsing a Java source file in
   the Eclipse framework. The programmer holds an IFile and needs an
   ASTNode; the crucial link — JavaCore.createCompilationUnitFrom, a static
   method on a class the programmer "would not think to look at" — took the
   authors hours to find by hand. The query finds it at rank 1.

   Run with: dune exec examples/parse_source_file.exe *)

let () =
  let hierarchy = Apidata.Api.hierarchy () in
  let graph = Apidata.Api.default_graph () in

  print_endline "Task: parse the Java source file behind an IFile.\n";
  print_endline "Query: (IFile, ASTNode)\n";

  let q =
    Prospector.Query.query "org.eclipse.core.resources.IFile"
      "org.eclipse.jdt.core.dom.ASTNode"
  in
  let results = Prospector.Query.run ~graph ~hierarchy q in
  List.iteri
    (fun i (r : Prospector.Query.result) ->
      Printf.printf "result #%d (length %d):\n" (i + 1)
        r.Prospector.Query.key.Prospector.Rank.length;
      print_string r.Prospector.Query.code;
      print_newline ())
    results;

  (* The paper's hand-written solution, for comparison:

       IFile file = ...;
       ICompilationUnit cu = JavaCore.createCompilationUnitFrom(file);
       ASTNode ast = AST.parseCompilationUnit(cu, false);

     Result #1 above is exactly this code (modulo variable names), with the
     boolean parameter defaulted to false. *)
  match results with
  | top :: _ ->
      let ok =
        let has sub =
          let n = String.length sub and s = top.Prospector.Query.code in
          let m = String.length s in
          let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
          go 0
        in
        has "JavaCore.createCompilationUnitFrom" && has "AST.parseCompilationUnit"
      in
      Printf.printf "matches the paper's hand-written solution: %b\n" ok
  | [] -> print_endline "unexpected: no results"
