(* An interactive content-assist session against the bundled Eclipse model:
   type an expected type (and optionally variables) and read suggestions —
   what the Eclipse plugin's completion popup showed.

   Run with:  dune exec examples/api_explorer.exe            (demo script)
              dune exec examples/api_explorer.exe -- -i      (interactive) *)

let graph = lazy (Apidata.Api.default_graph ())
let hierarchy = lazy (Apidata.Api.hierarchy ())

let suggest vars expected =
  let ctx =
    {
      Prospector.Assist.vars =
        List.map (fun (n, t) -> (n, Javamodel.Jtype.ref_of_string t)) vars;
      expected = Javamodel.Jtype.ref_of_string expected;
    }
  in
  Prospector.Assist.suggest ~graph:(Lazy.force graph) ~hierarchy:(Lazy.force hierarchy)
    ctx

let show vars expected =
  Printf.printf "\n> %s  (in scope: %s)\n" expected
    (if vars = [] then "nothing"
     else String.concat ", " (List.map (fun (n, t) -> n ^ " : " ^ t) vars));
  match suggest vars expected with
  | [] -> print_endline "  no suggestions"
  | ss ->
      List.iteri
        (fun i (s : Prospector.Assist.suggestion) ->
          if i < 5 then
            Printf.printf "  %d. %s%s\n" (i + 1) s.Prospector.Assist.title
              (match s.Prospector.Assist.uses_var with
              | Some v -> "  [" ^ v ^ "]"
              | None -> ""))
        ss

let demo () =
  print_endline "content-assist demo over the bundled Eclipse 2.1 model";
  show
    [ ("viewer", "org.eclipse.jface.viewers.TableViewer") ]
    "org.eclipse.swt.widgets.Table";
  show
    [ ("window", "org.eclipse.ui.IWorkbenchWindow") ]
    "org.eclipse.jface.viewers.IStructuredSelection";
  show [] "org.eclipse.ui.IWorkbench";
  show
    [ ("event", "org.eclipse.swt.events.KeyEvent") ]
    "org.eclipse.swt.widgets.Shell";
  show
    [ ("file", "org.eclipse.core.resources.IFile") ]
    "org.eclipse.jdt.core.dom.CompilationUnit"

let interactive () =
  print_endline "enter: EXPECTED_TYPE [NAME:TYPE ...]   (empty line quits)";
  try
    while true do
      print_string "assist> ";
      let line = String.trim (input_line stdin) in
      if line = "" then raise Exit;
      match String.split_on_char ' ' line with
      | [] -> ()
      | expected :: vars ->
          let vars =
            List.filter_map
              (fun s ->
                match String.index_opt s ':' with
                | Some i ->
                    Some
                      ( String.sub s 0 i,
                        String.sub s (i + 1) (String.length s - i - 1) )
                | None -> None)
              vars
          in
          show vars expected
    done
  with Exit | End_of_file -> print_endline "bye"

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "-i" then interactive () else demo ()
