module Jtype = Javamodel.Jtype
module Jungloid = Prospector.Jungloid
module Query = Prospector.Query

type candidate = { source : string option; result : Query.result }

type t = {
  all : candidate array;  (* rank order, immutable *)
  live : int list;  (* indices into [all], rank order *)
  pending : Probe.question option;
  history : (Probe.question * int) list;  (* newest last *)
  fuel : int;
  stubs : Evaluator.stubs;
}

let key_of (c : candidate) =
  match c.source with
  | Some v -> v
  | None -> (
      match Jungloid.input_type c.result.Query.jungloid with
      | Jtype.Void -> "()"
      | _ -> "input")

let probe_candidates all live =
  List.map
    (fun i ->
      let c = all.(i) in
      { Probe.key = key_of c; jungloid = c.result.Query.jungloid })
    live

let start ?(fuel = Evaluator.default_fuel) ?(stubs = Evaluator.default_stubs)
    (cands : candidate list) : t =
  if cands = [] then invalid_arg "Session.start: empty candidate list";
  let all = Array.of_list cands in
  let live = List.init (Array.length all) Fun.id in
  let pending =
    if Array.length all < 2 then None
    else Probe.choose ~fuel ~stubs (probe_candidates all live)
  in
  { all; live; pending; history = []; fuel; stubs }

let candidates t = Array.to_list t.all

let live t = List.map (fun i -> t.all.(i)) t.live

let question t = t.pending

let answer t ~choice =
  match t.pending with
  | None -> Error `No_question
  | Some q -> (
      match List.nth_opt q.Probe.groups choice with
      | None -> Error `Bad_choice
      | Some g ->
          (* group members index the probe's candidate list, which was
             built from [t.live] in order — map back to [all] indices *)
          let live_arr = Array.of_list t.live in
          let live = List.map (fun i -> live_arr.(i)) g.Probe.members in
          let pending =
            if List.length live < 2 then None
            else
              Probe.choose ~fuel:t.fuel ~stubs:t.stubs
                (probe_candidates t.all live)
          in
          Ok { t with live; pending; history = t.history @ [ (q, choice) ] })

let converged t = Option.is_none t.pending

let best t =
  match t.live with
  | i :: _ -> t.all.(i)
  | [] -> assert false (* live never empty: groups are non-empty *)

let best_rank t =
  match t.live with i :: _ -> i | [] -> assert false

let questions_asked t = List.length t.history

let history t = t.history
