(** Probe selection: the "Twenty Questions" engine.

    Given the live candidate jungloids of a refine session, the engine
    enumerates a small set of candidate inputs (environments binding each
    input source to a seed value), evaluates every candidate on each
    environment, and picks the environment whose answer partition has
    maximum entropy — the best bisection of the candidate set. The chosen
    question is shown to the user as "on this input, which output do you
    expect?"; every choice names a {e non-empty} branch because branches
    are built from the candidates that actually produced that answer.

    Candidates that evaluate to {!Value.Opaque} (or run out of fuel) fold
    into a single "can't tell" branch. If no environment splits the
    candidates — e.g. every candidate is opaque on every probe — {!choose}
    returns [None] and the caller falls back to rank order. *)

type candidate = {
  key : string;
      (** name of the input source this candidate consumes: the query
          variable for assist-shaped sessions, ["input"] for plain
          queries, ["()"] for zero-input jungloids *)
  jungloid : Prospector.Jungloid.t;
}

type answer =
  | Output of string  (** a rendered {!Value.t} the user could observe *)
  | Unknown  (** opaque or fuel-exhausted — "can't tell from this input" *)

type group = {
  answer : answer;
  members : int list;  (** indices into the candidate list; never empty *)
}

type question = {
  env : (string * Value.t) list;  (** the probe input, one binding per source *)
  groups : group list;  (** the partition, largest first *)
}

val seeds : Javamodel.Jtype.t -> Value.t list
(** Deterministic seed inputs per type: a few strings for
    [java.lang.String], a provenance object per reference type, [Unit]
    for [void]. Never empty. *)

val entropy : question -> float
(** Shannon entropy of the partition, in bits. *)

val choose :
  ?fuel:int -> ?stubs:Evaluator.stubs -> candidate list -> question option
(** The highest-entropy question over the enumerated environments, or
    [None] when no environment yields at least two branches (including on
    singleton or empty candidate lists). Deterministic: ties keep the
    earliest environment. *)
