module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Member = Javamodel.Member
module Elem = Prospector.Elem
module Jungloid = Prospector.Jungloid

type stubs = Elem.t -> Value.t -> Value.t option

type outcome = Done of Value.t | Fuel_exhausted

let default_fuel = 64

(* ------------------------------------------------------------------ *)
(* String helpers for the modeled path/string surface.                 *)

let after_last sep s =
  match String.rindex_opt s sep with
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)
  | None -> s

let basename s = after_last '/' s

let dirname s =
  match String.rindex_opt s '/' with Some i -> String.sub s 0 i | None -> ""

let extension s =
  let b = basename s in
  match String.rindex_opt b '.' with
  | Some i when i > 0 -> Some (String.sub b (i + 1) (String.length b - i - 1))
  | _ -> None

let first_line s =
  match String.index_opt s '\n' with Some i -> String.sub s 0 i | None -> s

let first_token s =
  let s = String.trim s in
  match String.index_opt s ' ' with Some i -> String.sub s 0 i | None -> s

let first_segment s =
  let s = if String.length s > 0 && s.[0] = '/' then String.sub s 1 (String.length s - 1) else s in
  match String.index_opt s '/' with Some i -> String.sub s 0 i | None -> s

(* The "contents" of a provenance term: the string it was ultimately built
   from, if any. [BufferedReader(FileReader("a.txt"))] has contents
   ["a.txt"]; a term built from nothing has none. *)
let rec contents = function
  | Value.Str s -> Some s
  | Value.Obj { parts = p :: _; _ } -> contents p
  | Value.Unit | Value.Bool _ | Value.Int _ | Value.Obj { parts = []; _ }
  | Value.Opaque _ ->
      None

let obj cls parts = Value.Obj { cls; parts }

let render = Value.to_string

(* ------------------------------------------------------------------ *)
(* Layer 1: modeled semantics for the bundled model's string/file/parse
   surface. Dispatch is on (owner simple name, member name, input slot) so
   the stubs survive both the J2SE and Eclipse halves of the model without
   enumerating overloads. *)

let string_semantics mname (v : Value.t) : Value.t option =
  match (mname, v) with
  | "length", Value.Str s -> Some (Value.Int (String.length s))
  | "trim", Value.Str s -> Some (Value.Str (String.trim s))
  | "toLowerCase", Value.Str s -> Some (Value.Str (String.lowercase_ascii s))
  | "toUpperCase", Value.Str s -> Some (Value.Str (String.uppercase_ascii s))
  | "charAt", Value.Str s ->
      (* free index defaults to 0; the empty string throws in Java, so the
         model goes dark with the exception's name *)
      if s = "" then Some (Value.Opaque "StringIndexOutOfBoundsException")
      else Some (Value.Int (Char.code s.[0]))
  | "substring", Value.Str _ ->
      (* free begin/end default to 0: the empty prefix *)
      Some (Value.Str "")
  | "startsWith", Value.Str _ | "endsWith", Value.Str _ ->
      (* free prefix/suffix defaults to "" — vacuously true *)
      Some (Value.Bool true)
  | "indexOf", Value.Str _ -> Some (Value.Int 0)
  | "toCharArray", Value.Str s -> Some (obj "char[]" [ Value.Str s ])
  | "getBytes", Value.Str s -> Some (obj "byte[]" [ Value.Str s ])
  | "concat", Value.Str s -> Some (Value.Str s)
  | _ -> None

let instance_semantics owner_simple mname (v : Value.t) : Value.t option =
  match (owner_simple, mname, v) with
  | "String", _, _ -> string_semantics mname v
  | _, "toString", _ ->
      (* toString renders the modeled value itself — on any class *)
      Some (Value.Str (render v))
  | _, "getClass", Value.Obj { cls; _ } ->
      Some (obj "Class" [ Value.Str cls ])
  | _, "getClass", Value.Str _ -> Some (obj "Class" [ Value.Str "String" ])
  | "Class", "getName", Value.Obj { parts = [ Value.Str n ]; _ } ->
      Some (Value.Str n)
  | "Integer", "intValue", Value.Obj { parts = [ Value.Int n ]; _ } ->
      Some (Value.Int n)
  | "StringBuffer", "length", v -> (
      match contents v with Some s -> Some (Value.Int (String.length s)) | None -> None)
  | "File", "getName", v -> Option.map (fun s -> Value.Str (basename s)) (contents v)
  | "File", "getPath", v -> Option.map (fun s -> Value.Str s) (contents v)
  | "File", "getAbsolutePath", v ->
      Option.map
        (fun s ->
          Value.Str (if String.length s > 0 && s.[0] = '/' then s else "/" ^ s))
        (contents v)
  | "File", "getParentFile", v ->
      Option.map (fun s -> obj "File" [ Value.Str (dirname s) ]) (contents v)
  | "File", "exists", v -> Option.map (fun s -> Value.Bool (s <> "")) (contents v)
  | "File", "isDirectory", _ -> Some (Value.Bool false)
  | "File", "toURL", v ->
      Option.map (fun s -> obj "URL" [ Value.Str ("file:" ^ s) ]) (contents v)
  | _, "readLine", v -> Option.map (fun s -> Value.Str (first_line s)) (contents v)
  | _, "getLineNumber", _ -> Some (Value.Int 0)
  | _, "read", v ->
      Option.map
        (fun s -> Value.Int (if s = "" then -1 else Char.code s.[0]))
        (contents v)
  | _, "available", v | _, "size", v ->
      Option.map (fun s -> Value.Int (String.length s)) (contents v)
  | "StringTokenizer", "nextToken", v ->
      Option.map (fun s -> Value.Str (first_token s)) (contents v)
  | "StringTokenizer", "hasMoreTokens", v ->
      Option.map (fun s -> Value.Bool (String.trim s <> "")) (contents v)
  | "URL", "toExternalForm", v | "URL", "getFile", v | "URI", "getPath", v ->
      Option.map (fun s -> Value.Str s) (contents v)
  (* Eclipse: paths and resources carry a workspace-relative path string. *)
  | ("IPath" | "Path"), "toOSString", v ->
      Option.map (fun s -> Value.Str s) (contents v)
  | ("IPath" | "Path"), "lastSegment", v ->
      Option.map (fun s -> Value.Str (basename s)) (contents v)
  | ("IPath" | "Path"), "getFileExtension", v ->
      Option.map
        (fun s ->
          match extension s with
          | Some e -> Value.Str e
          | None -> Value.Opaque "null")
        (contents v)
  | ("IPath" | "Path"), "toFile", v ->
      Option.map (fun s -> obj "File" [ Value.Str s ]) (contents v)
  | ("IPath" | "Path"), "segmentCount", v ->
      Option.map
        (fun s ->
          Value.Int
            (List.length
               (List.filter (fun x -> x <> "") (String.split_on_char '/' s))))
        (contents v)
  | _, "getFullPath", v ->
      Option.map
        (fun s ->
          obj "Path"
            [ Value.Str (if String.length s > 0 && s.[0] = '/' then s else "/" ^ s) ])
        (contents v)
  | _, "getLocation", v ->
      Option.map (fun s -> obj "Path" [ Value.Str ("/ws/" ^ s) ]) (contents v)
  | _, "getFileExtension", v ->
      Option.map
        (fun s ->
          match extension s with
          | Some e -> Value.Str e
          | None -> Value.Opaque "null")
        (contents v)
  | _, "getProject", v ->
      Option.map (fun s -> obj "IProject" [ Value.Str (first_segment s) ]) (contents v)
  | _, "getElementName", v | _, "getName", v ->
      Option.map (fun s -> Value.Str (basename s)) (contents v)
  | _, "getSource", v ->
      Option.map (fun s -> Value.Str ("source of " ^ s)) (contents v)
  | _, "getContents", v ->
      Option.map (fun s -> obj "InputStream" [ Value.Str ("contents of " ^ s) ]) (contents v)
  | _, "getCharset", _ | _, "getEncoding", _ -> Some (Value.Str "UTF-8")
  | _, "exists", _ -> Some (Value.Bool true)
  | _ -> None

let static_semantics owner_simple mname (v : Value.t) : Value.t option =
  match (owner_simple, mname, v) with
  | "Integer", "parseInt", Value.Str s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> Some (Value.Int n)
      | None -> Some (Value.Opaque "NumberFormatException"))
  | "Integer", "valueOf", Value.Str s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> Some (obj "Integer" [ Value.Int n ])
      | None -> Some (Value.Opaque "NumberFormatException"))
  | "Boolean", "valueOf", Value.Str s ->
      Some (Value.Bool (String.lowercase_ascii (String.trim s) = "true"))
  | "String", "valueOf", v -> Some (Value.Str (render v))
  | "System", "getProperty", Value.Str k -> Some (Value.Str ("property:" ^ k))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Layer 2: generic provenance semantics. Structure-building operations —
   wrapping constructors, conversion statics, argumentless getters — yield
   an Obj term recording the class and the input, which is exactly what a
   probe needs to tell chains apart without a behavioral model. *)

let ref_result ty k =
  match ty with
  | Jtype.Ref _ | Jtype.Array _ -> Some (k (Jtype.simple_string ty))
  | Jtype.Prim _ | Jtype.Void -> None

(* The argument vector of a call: the input value in its slot, an [Opaque]
   placeholder (rendered ["<name>"]) for every free parameter. Free
   parameters thus stay visibly unknown but still tell
   [new BufferedReader(r)] apart from [new BufferedReader(r, <sz>)]. *)
let arg_vector params ~input v =
  List.mapi
    (fun i (pname, _) -> if input = Some i then v else Value.Opaque pname)
    params

let provenance (e : Elem.t) (v : Value.t) : Value.t option =
  match e with
  | Elem.Ctor_call { owner; ctor; input = Elem.Param i } ->
      (* "new " marks a fresh construction: new Shell(d) and
         d.getActiveShell() are different objects and must not collide *)
      Some
        (obj
           ("new " ^ Qname.simple owner)
           (arg_vector ctor.Member.cparams ~input:(Some i) v))
  | Elem.Ctor_call { owner; ctor; input = Elem.No_input } ->
      Some
        (obj
           ("new " ^ Qname.simple owner)
           (arg_vector ctor.Member.cparams ~input:None v))
  | Elem.Static_call { meth; input = Elem.Param i; _ } ->
      ref_result meth.Member.ret (fun cls ->
          obj cls (arg_vector meth.Member.params ~input:(Some i) v))
  | Elem.Static_call { meth; input = Elem.No_input; _ } ->
      ref_result meth.Member.ret (fun cls ->
          obj cls (arg_vector meth.Member.params ~input:None v))
  | Elem.Instance_call { meth; input = Elem.Receiver; _ } ->
      ref_result meth.Member.ret (fun cls ->
          obj cls (v :: arg_vector meth.Member.params ~input:None v))
  | Elem.Field_access { field; _ } ->
      ref_result field.Member.ftype (fun cls ->
          match v with
          | Value.Unit -> obj cls [ Value.Str field.Member.fname ]
          | _ -> obj cls [ Value.Str field.Member.fname; v ])
  | Elem.Instance_call { input = Elem.Param _; _ } ->
      (* the receiver is free: even the provenance of the result is
         unknowable, so the chain goes dark *)
      None
  | Elem.Ctor_call { input = Elem.Receiver; _ }
  | Elem.Static_call { input = Elem.Receiver; _ }
  | Elem.Instance_call { input = Elem.No_input; _ }
  | Elem.Widen _ | Elem.Downcast _ ->
      None

let default_stubs (e : Elem.t) (v : Value.t) : Value.t option =
  let specific =
    match e with
    | Elem.Instance_call { owner; meth; input = Elem.Receiver } ->
        instance_semantics (Qname.simple owner) meth.Member.mname v
    | Elem.Static_call { owner; meth; input = Elem.Param _ } ->
        static_semantics (Qname.simple owner) meth.Member.mname v
    | Elem.Ctor_call { owner; input = Elem.Param _; _ }
      when Qname.simple owner = "String" ->
        (* new String(char[]) recovers the original string *)
        Option.map (fun s -> Value.Str s) (contents v)
    | _ -> None
  in
  match specific with Some _ -> specific | None -> provenance e v

(* ------------------------------------------------------------------ *)

let eval_elem (stubs : stubs) (e : Elem.t) (v : Value.t) : Value.t =
  match e with
  | Elem.Widen _ -> v
  | Elem.Downcast { to_; _ } -> (
      (* A cast is observable: it asserts the result's static type (and can
         fail at runtime), so chains differing only in a downcast — the
         paper's (IFile) pattern — get distinct, honest provenance. *)
      match v with
      | Value.Opaque _ -> v
      | _ ->
          Value.Obj
            { cls = "(" ^ Jtype.simple_string to_ ^ ")"; parts = [ v ] })
  | _ -> (
      match v with
      | Value.Opaque _ -> v (* opaque absorbs: no stub may resurrect it *)
      | _ -> (
          match stubs e v with
          | Some r -> r
          | None -> (
              match default_stubs e v with
              | Some r -> r
              | None -> Value.Opaque (Jtype.simple_string (Elem.output_type e)))))

let eval ?(fuel = default_fuel) ?(stubs = default_stubs) ~(input : Value.t)
    (j : Jungloid.t) : outcome =
  let rec go fuel v = function
    | [] -> Done v
    | _ when fuel <= 0 -> Fuel_exhausted
    | e :: rest -> go (fuel - 1) (eval_elem stubs e v) rest
  in
  go fuel input j.Jungloid.elems
