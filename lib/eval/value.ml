type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Obj of { cls : string; parts : t list }
  | Opaque of string

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Str a, Str b -> String.equal a b
  | Obj a, Obj b ->
      String.equal a.cls b.cls
      && List.length a.parts = List.length b.parts
      && List.for_all2 equal a.parts b.parts
  | Opaque a, Opaque b -> String.equal a b
  | (Unit | Bool _ | Int _ | Str _ | Obj _ | Opaque _), _ -> false

let tag = function
  | Unit -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Str _ -> 3
  | Obj _ -> 4
  | Opaque _ -> 5

let rec compare a b =
  match (a, b) with
  | Unit, Unit -> 0
  | Bool a, Bool b -> Stdlib.compare a b
  | Int a, Int b -> Stdlib.compare a b
  | Str a, Str b -> String.compare a b
  | Obj a, Obj b -> (
      match String.compare a.cls b.cls with
      | 0 -> List.compare compare a.parts b.parts
      | c -> c)
  | Opaque a, Opaque b -> String.compare a b
  | a, b -> Stdlib.compare (tag a) (tag b)

let is_opaque = function Opaque _ -> true | _ -> false

let rec to_string = function
  | Unit -> "()"
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Str s -> "\"" ^ String.escaped s ^ "\""
  | Obj { cls; parts } ->
      cls ^ "(" ^ String.concat ", " (List.map to_string parts) ^ ")"
  | Opaque ty -> "<" ^ ty ^ ">"
