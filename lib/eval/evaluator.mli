(** A concrete interpreter for jungloids over the {!Value} domain.

    A jungloid is a unary composition chain, so evaluation is a left fold:
    feed the input value to the first elementary jungloid, its result to
    the next, and so on. Each elementary jungloid is interpreted by a
    {e semantic stub} — a partial model of the API element it names. Three
    layers of stubs apply, most specific first:

    - {b modeled semantics} for the string/file/parse surface of the
      bundled model ([String.trim] really trims, [File.getName] really
      takes the basename, [Integer.parseInt] really parses or goes dark
      with the exception's name);
    - {b provenance semantics} for everything structural: a wrapping
      constructor, a conversion static, or a zero-argument getter returning
      a reference type builds an {!Value.Obj} term recording the class and
      the value it came from — enough to tell [new BufferedReader(new
      InputStreamReader(x))] from any other chain without pretending to
      model readers;
    - {b no model}: the result is {!Value.Opaque}. Opaque absorbs
      everything downstream — once a chain goes dark it stays dark, so a
      probe can never claim to distinguish candidates on unmodeled
      behavior.

    Evaluation always terminates: each elementary jungloid costs one unit
    of fuel and an exhausted budget yields {!Fuel_exhausted} (the probe
    engine treats it like an opaque answer). *)

type stubs = Prospector.Elem.t -> Value.t -> Value.t option
(** A stub maps one elementary jungloid and its input value to its output
    value; [None] means "no model" and falls through to the next layer
    (custom stubs fall back to {!default_stubs}' generic provenance rules,
    then to opaque). *)

val default_stubs : stubs
(** The bundled-model stubs described above. *)

type outcome =
  | Done of Value.t
  | Fuel_exhausted  (** the step budget ran out mid-chain *)

val default_fuel : int
(** 64 — far beyond any ranked jungloid's length; the bound exists so
    evaluation of {e any} chain provably terminates. *)

val eval_elem : stubs -> Prospector.Elem.t -> Value.t -> Value.t
(** One step. {!Prospector.Elem.Widen} is the identity (widening has no
    syntax and no observable effect); a {!Prospector.Elem.Downcast} wraps
    the value in a visible type assertion (a cast {e is} observable — it
    names the static type and can fail at runtime, and it is often the
    entire difference between two ranked candidates); an opaque input
    stays opaque; otherwise the stub decides and [None] becomes [Opaque]
    of the element's output type. *)

val eval :
  ?fuel:int -> ?stubs:stubs -> input:Value.t -> Prospector.Jungloid.t -> outcome
(** Run the whole chain on [input]. [fuel] defaults to {!default_fuel}. *)
