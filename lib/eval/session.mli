(** Pure refine-session state: a candidate set narrowed by probe answers.

    A session starts from the ranked top-k results of a query (or the
    pooled suggestions of an assist context), asks the question {!Probe}
    selects, and on each answer keeps exactly the candidates in the chosen
    branch. Rank order is preserved throughout, so {!best} is always "the
    result the user would have picked manually" restricted to the live
    set; when the session converges — one candidate left, or no probe can
    split the survivors — {!best} {e is} the answer, and on the
    all-opaque fallback it degrades to the existing rank-1.

    The state is immutable and contains no clocks or locks; TTL and
    concurrency live in the server's session table, which is why this
    module stays testable in isolation. *)

type candidate = {
  source : string option;
      (** assist query variable this candidate consumes; [None] for
          plain [tin -> tout] queries *)
  result : Prospector.Query.result;
}

type t

val start : ?fuel:int -> ?stubs:Evaluator.stubs -> candidate list -> t
(** @raise Invalid_argument on an empty candidate list. *)

val candidates : t -> candidate list
(** The original candidate set, rank order. *)

val live : t -> candidate list
(** Candidates still compatible with every answer so far, rank order. *)

val question : t -> Probe.question option
(** The pending question; [None] iff the session has converged. *)

val answer : t -> choice:int -> (t, [ `No_question | `Bad_choice ]) result
(** Commit the user's choice (an index into the pending question's
    groups). The live set strictly shrinks, so a session over [k]
    candidates converges within [k - 1] answers. *)

val converged : t -> bool

val best : t -> candidate
(** Highest-ranked live candidate. *)

val best_rank : t -> int
(** 0-based rank of {!best} in the {e original} candidate list, so a
    converged reply can say "this was result #3 of the ranked list". *)

val questions_asked : t -> int

val history : t -> (Probe.question * int) list
(** Committed (question, choice) pairs, oldest first. *)
