module Jtype = Javamodel.Jtype
module Qname = Javamodel.Qname
module Jungloid = Prospector.Jungloid

type candidate = { key : string; jungloid : Jungloid.t }

type answer = Output of string | Unknown

type group = { answer : answer; members : int list }

type question = { env : (string * Value.t) list; groups : group list }

let seeds (ty : Jtype.t) : Value.t list =
  match ty with
  | Jtype.Void -> [ Value.Unit ]
  | Jtype.Ref q when Qname.to_string q = "java.lang.String" ->
      [
        Value.Str "src/Main.java";
        Value.Str "  hello world \n second line";
        Value.Str "42";
      ]
  | Jtype.Ref q ->
      [
        Value.Obj { cls = Qname.simple q; parts = [ Value.Str "src/Main.java" ] };
        Value.Obj { cls = Qname.simple q; parts = [ Value.Str "lib/data.txt" ] };
      ]
  | Jtype.Array _ ->
      [
        Value.Obj
          { cls = Jtype.simple_string ty; parts = [ Value.Str "src/Main.java" ] };
      ]
  | Jtype.Prim Jtype.Boolean -> [ Value.Bool false ]
  | Jtype.Prim _ -> [ Value.Int 0 ]

(* One binding set per probe: the all-first-seeds base environment, then
   each source varied to each of its alternative seeds in turn. *)
let environments (sources : (string * Jtype.t) list) :
    (string * Value.t) list list =
  let base = List.map (fun (k, ty) -> (k, List.hd (seeds ty))) sources in
  let variants =
    List.concat_map
      (fun (k, ty) ->
        List.filter_map
          (fun s ->
            let env =
              List.map (fun (k', v) -> if k' = k then (k', s) else (k', v)) base
            in
            if env = base then None else Some env)
          (List.tl (seeds ty)))
      sources
  in
  base :: variants

let answer_of_outcome = function
  | Evaluator.Fuel_exhausted -> Unknown
  | Evaluator.Done v ->
      if Value.is_opaque v then Unknown else Output (Value.to_string v)

let partition ~fuel ~stubs (cands : candidate list)
    (env : (string * Value.t) list) : question =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iteri
    (fun i c ->
      let input =
        match List.assoc_opt c.key env with Some v -> v | None -> Value.Unit
      in
      let a = answer_of_outcome (Evaluator.eval ~fuel ~stubs ~input c.jungloid) in
      (match Hashtbl.find_opt tbl a with
      | Some members -> Hashtbl.replace tbl a (i :: members)
      | None ->
          order := a :: !order;
          Hashtbl.replace tbl a [ i ]))
    cands;
  let groups =
    List.rev_map
      (fun a -> { answer = a; members = List.rev (Hashtbl.find tbl a) })
      !order
  in
  (* largest first, first-seen order within equal sizes; the "can't tell"
     branch always sinks to the end *)
  let weight g =
    match g.answer with
    | Unknown -> -1
    | Output _ -> List.length g.members
  in
  let groups = List.stable_sort (fun a b -> Stdlib.compare (weight b) (weight a)) groups in
  { env; groups }

let entropy (q : question) : float =
  let total =
    float_of_int (List.fold_left (fun n g -> n + List.length g.members) 0 q.groups)
  in
  if total = 0.0 then 0.0
  else
    List.fold_left
      (fun h g ->
        let p = float_of_int (List.length g.members) /. total in
        h -. (p *. (Float.log p /. Float.log 2.0)))
      0.0 q.groups

let choose ?(fuel = Evaluator.default_fuel) ?(stubs = Evaluator.default_stubs)
    (cands : candidate list) : question option =
  if List.length cands < 2 then None
  else
    let sources =
      List.fold_left
        (fun acc c ->
          if List.mem_assoc c.key acc then acc
          else acc @ [ (c.key, Jungloid.input_type c.jungloid) ])
        [] cands
    in
    let best =
      List.fold_left
        (fun best env ->
          let q = partition ~fuel ~stubs cands env in
          if List.length q.groups < 2 then best
          else
            match best with
            | Some (_, h) when h >= entropy q -> best
            | _ -> Some (q, entropy q))
        None (environments sources)
    in
    Option.map fst best
