(** The modeled value domain of the jungloid evaluator.

    Small on purpose: the evaluator only has to tell candidate jungloids
    {e apart}, not faithfully execute Java. Concrete scalars cover the
    string/number/boolean surface of the bundled model; every other object
    is an {!Obj} — a class name plus the values it was built from — so a
    chain like [new BufferedReader(new InputStreamReader(x))] evaluates to
    a provenance term that differs from [new LineNumberReader(...)]'s even
    though neither is a real reader. {!Opaque} marks the output of an API
    element the evaluator has no model for; it absorbs every later
    operation (see {!Evaluator}). *)

type t =
  | Unit  (** the [void] input of zero-input jungloids *)
  | Bool of bool
  | Int of int
  | Str of string
  | Obj of {
      cls : string;  (** simple class name, e.g. ["BufferedReader"] *)
      parts : t list;  (** the values it was constructed from *)
    }
  | Opaque of string  (** unmodeled; the payload names the type that went dark *)

val equal : t -> t -> bool

val compare : t -> t -> int

val is_opaque : t -> bool

val to_string : t -> string
(** Deterministic rendering used as the partition label of a probe answer:
    ["\"a.java\""], ["42"], ["BufferedReader(InputStreamReader(...))"].
    Opaque values render as ["<T>"] but are never shown as a choice — the
    probe engine folds them into one "unknown" branch. *)
