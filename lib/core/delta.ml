(* Incremental model deltas: apply add/remove/replace edits to a hierarchy
   and produce a patched frozen-CSR snapshot without a cold rebuild.

   The fast path ("spliced") handles the common live-reload shape — a class
   body changed but its name and supertypes did not. Node ids are a function
   of the hierarchy table's iteration order plus the on-the-fly interning of
   array types during member-edge emission; a Replace through
   [Hierarchy.replace] keeps the table slot, so as long as the edit neither
   references a new type (no new opaque decl, no new array node) nor changes
   the widening structure, every node id is stable and only the replaced
   class's member edges move. The patch claims the snapshot's tail token,
   writes exactly the rewritten CSR rows into the lanes' tail slack (a
   region no published reader can index), copies the O(nodes) offset/end
   lanes with those rows repointed, and shares everything else — data lanes
   and node-side arrays ([f_types], [f_origins], [f_ids]) — with the old
   snapshot by reference. No O(edges) work happens on this path; when the
   slack is exhausted (or the token was already claimed by a sibling patch)
   the lanes are compacted first and the append retried.

   Anything outside that shape — class added or removed, supertypes changed,
   new referenced types, array-mention order changed, or a mined-example
   graph (typestate nodes / downcast edges, whose splice order we cannot
   replay) — falls back to a full rebuild from the patched hierarchy. Both
   paths satisfy the same oracle: the patched snapshot is lane-for-lane
   identical to a cold rebuild from the patched model, except for
   [f_generation], which is bumped strictly monotonically so stale cache
   keys can never collide with a post-reload snapshot. *)

module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Member = Javamodel.Member
module Decl = Javamodel.Decl
module Hierarchy = Javamodel.Hierarchy

type op =
  | Add_class of Decl.t
  | Remove_class of Qname.t
  | Replace_class of Decl.t
  | Add_method of Qname.t * Member.meth
  | Remove_method of Qname.t * string

type error = {
  index : int;
  op_name : string;
  subject : string;
  reason : string;
}

type mode =
  | Spliced
  | Rebuilt

type patch = {
  p_frozen : Graph.frozen;
  p_hierarchy : Hierarchy.t;
  p_touched : Reach.Bits.t;
  p_touched_count : int;
  p_mode : mode;
  p_ops : int;
}

let op_name = function
  | Add_class _ -> "add-class"
  | Remove_class _ -> "remove-class"
  | Replace_class _ -> "replace-class"
  | Add_method _ -> "add-method"
  | Remove_method _ -> "remove-method"

let op_subject = function
  | Add_class d | Replace_class d -> Qname.to_string d.Decl.dname
  | Remove_class q -> Qname.to_string q
  | Add_method (q, m) -> Qname.to_string q ^ "#" ^ m.Member.mname
  | Remove_method (q, name) -> Qname.to_string q ^ "#" ^ name

let mode_string = function Spliced -> "spliced" | Rebuilt -> "rebuilt"

(* ---------- validation and sequential application ---------- *)

(* Ops apply in order against a working copy, so a later op sees earlier
   effects (replace-after-add is valid, reference-after-remove is not).
   Validation is all-or-nothing but best-effort: every invalid op is
   reported, not just the first. *)
let validate_and_apply h' ops =
  let errors = ref [] in
  let structural = ref false in
  (* first pre-edit decl per replaced class, keyed by name *)
  let originals : (string, Decl.t) Hashtbl.t = Hashtbl.create 8 in
  let err index op reason =
    errors := { index; op_name = op_name op; subject = op_subject op; reason } :: !errors
  in
  let note_original q =
    let k = Qname.to_string q in
    if not (Hashtbl.mem originals k) then
      Hashtbl.replace originals k (Hierarchy.find h' q)
  in
  List.iteri
    (fun index op ->
      match op with
      | Add_class d ->
          if Hierarchy.mem h' d.Decl.dname then
            err index op "already declared (use replace-class)"
          else begin
            Hierarchy.add h' d;
            structural := true
          end
      | Remove_class q ->
          if Qname.equal q Qname.object_qname then
            err index op "java.lang.Object is not removable"
          else if not (Hierarchy.mem h' q) then err index op "not declared"
          else begin
            Hierarchy.remove h' q;
            structural := true
          end
      | Replace_class d ->
          if not (Hierarchy.mem h' d.Decl.dname) then
            err index op "not declared (use add-class)"
          else begin
            note_original d.Decl.dname;
            Hierarchy.replace h' d
          end
      | Add_method (q, m) -> (
          match Hierarchy.find_opt h' q with
          | None -> err index op "not declared"
          | Some d ->
              note_original q;
              Hierarchy.replace h'
                { d with Decl.methods = d.Decl.methods @ [ m ] })
      | Remove_method (q, name) -> (
          match Hierarchy.find_opt h' q with
          | None -> err index op "not declared"
          | Some d ->
              let keep, drop =
                List.partition
                  (fun (m : Member.meth) -> not (String.equal m.Member.mname name))
                  d.Decl.methods
              in
              if drop = [] then err index op "no method with this name"
              else begin
                note_original q;
                Hierarchy.replace h' { d with Decl.methods = keep }
              end))
    ops;
  (List.rev !errors, !structural, originals)

(* ---------- spliced-path eligibility ---------- *)

let member_owner = function
  | Elem.Field_access { owner; _ }
  | Elem.Static_call { owner; _ }
  | Elem.Ctor_call { owner; _ }
  | Elem.Instance_call { owner; _ } ->
      Some owner
  | Elem.Widen _ | Elem.Downcast _ -> None

(* Match [Graph.add_edge]'s dedup: an elem's (src, dst) is a function of the
   elem, and owners make elems from different decls distinct, so keep-first
   over the decl's own emission order reproduces the edges that actually
   land in the graph. *)
let dedup_elems elems =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun e ->
      if Hashtbl.mem seen e then false
      else begin
        Hashtbl.add seen e ();
        true
      end)
    elems

(* First-mention order of array types over the decl's interleaved
   input/output type stream — the exact order pass 2 of [Sig_graph.build]
   would intern them in. Node-id stability requires this sequence to be
   unchanged by the edit. *)
let array_mentions elems =
  let seen = Hashtbl.create 8 in
  List.concat_map (fun e -> [ Elem.input_type e; Elem.output_type e ]) elems
  |> List.filter (fun ty ->
         match ty with
         | Jtype.Array _ ->
             if Hashtbl.mem seen ty then false
             else begin
               Hashtbl.add seen ty ();
               true
             end
         | _ -> false)

let same_widening (a : Decl.t) (b : Decl.t) =
  a.Decl.kind = b.Decl.kind
  && List.length a.Decl.extends = List.length b.Decl.extends
  && List.for_all2 Qname.equal a.Decl.extends b.Decl.extends
  && List.length a.Decl.implements = List.length b.Decl.implements
  && List.for_all2 Qname.equal a.Decl.implements b.Decl.implements

(* ---------- the CSR splice ---------- *)

exception Fallback

(* Raised before any shared-lane write when the tail slack cannot hold the
   appended rows; the driver compacts with enough slack and retries. *)
exception Refit of int

type replacement = {
  r_old_elems : Elem.t list;  (* deduped, emission order *)
  r_new_elems : Elem.t list;  (* deduped, emission order *)
}

type row_entry =
  | Old of int  (* index into the (shared) old lanes *)
  | New of Graph.edge

type bwd_entry =
  | Oldb of int  (* index into the old bwd lanes *)
  | Newb of int * int  (* source node, rewritten fwd lane index *)

(* The append splice. The caller has already claimed [fz]'s tail token, so
   this patch owns the lanes' free tail exclusively: rewritten forward rows
   are written there (a region no published reader can index), the O(nodes)
   offset/end lanes are copied with those rows repointed, and every data
   lane is shared with the input by reference. Backward rows get the same
   treatment, and only rows whose {e content} changes are rebuilt: a
   backward row holds per-source groups in ascending-source order, so a
   rewritten source row whose (cost, wcost) contribution to [v] is unchanged
   leaves [v]'s row byte-identical — in particular the void hub row (one
   group per void-returning decl, the graph's widest) survives a typical
   body edit untouched. Nothing on this path is O(edges): the patch costs
   O(nodes) for the offset copies plus work proportional to the rewritten
   rows themselves. *)
let splice_once ~wcost ~h_new ~(fz : Graph.frozen)
    ~(reps : (string * replacement) list) =
  let n = fz.Graph.f_nodes in
  let off = fz.Graph.f_fwd_off in
  let fin = fz.Graph.f_fwd_end in
  let rep_set = Hashtbl.create 8 in
  List.iter (fun (k, r) -> Hashtbl.replace rep_set k r) reps;
  let owner_key e =
    match member_owner e with None -> None | Some q -> Some (Qname.to_string q)
  in
  let node_of ty =
    match Graph.frozen_find_type_node fz ty with
    | Some id -> id
    | None -> raise Fallback
  in
  (* Decl rank = position in the hierarchy's iteration order; pass 2 emits
     member edges decl by decl in that order and [Graph.add_edge] conses to
     the row front, so a frozen row's member region holds per-decl blocks in
     strictly descending rank. Built lazily: ranks are only consulted when a
     replaced owner's block must be *inserted* into a row that had none —
     in-place substitution preserves the row's own (descending) order and
     needs no ranks, so the common body edit never pays this O(decls)
     pass. *)
  let rank =
    lazy
      (let tbl = Hashtbl.create (Hierarchy.size h_new) in
       let pos = ref 0 in
       Hierarchy.iter h_new (fun d ->
           Hashtbl.replace tbl (Qname.to_string d.Decl.dname) !pos;
           incr pos);
       tbl)
  in
  let rank_of k =
    match Hashtbl.find_opt (Lazy.force rank) k with
    | Some r -> r
    | None -> raise Fallback
  in
  (* New member blocks per (row, owner): the deduped emission-order elems
     with that input node, reversed into frozen-row order. *)
  let new_blocks : (int * string, Graph.edge list) Hashtbl.t = Hashtbl.create 32 in
  let touched = Reach.Bits.create n in
  let touched_count = ref 0 in
  let touch u =
    if not (Reach.Bits.mem touched u) then begin
      Reach.Bits.set touched u;
      incr touched_count
    end
  in
  let changed = ref 0 in
  (* Rows to rewrite: only those where the owner's elem *sequence* for the
     row changed. A body edit leaves most of a class's blocks byte-identical
     — the void node's static region (one block per contributing decl, the
     graph's widest row), every param-typed row of an untouched method —
     and identical blocks mean an identical cold row, so those rows stay
     where they are. This is what keeps a single-class patch proportional
     to the edit, not to the class's footprint. *)
  let touched_rows = Hashtbl.create 32 in
  List.iter
    (fun (k, r) ->
      let olds = Hashtbl.create 16 and news = Hashtbl.create 16 in
      List.iter (fun e -> Hashtbl.replace olds e ()) r.r_old_elems;
      List.iter (fun e -> Hashtbl.replace news e ()) r.r_new_elems;
      let mark e =
        incr changed;
        touch (node_of (Elem.input_type e));
        touch (node_of (Elem.output_type e))
      in
      List.iter (fun e -> if not (Hashtbl.mem news e) then mark e) r.r_old_elems;
      List.iter (fun e -> if not (Hashtbl.mem olds e) then mark e) r.r_new_elems;
      (* per-row emission sequences, consed (so reversed); equal lists mean
         the frozen row's block for this owner is already the cold one *)
      let old_rows : (int, Elem.t list) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun e ->
          let u = node_of (Elem.input_type e) in
          Hashtbl.replace old_rows u
            (e :: Option.value ~default:[] (Hashtbl.find_opt old_rows u)))
        r.r_old_elems;
      let new_rows : (int, Elem.t list) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun e ->
          let src = node_of (Elem.input_type e) in
          let dst = node_of (Elem.output_type e) in
          let key = (src, k) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt new_blocks key) in
          (* consed, so the stored list is already frozen-row order *)
          Hashtbl.replace new_blocks key ({ Graph.elem = e; src; dst } :: prev);
          Hashtbl.replace new_rows src
            (e :: Option.value ~default:[] (Hashtbl.find_opt new_rows src)))
        r.r_new_elems;
      Hashtbl.iter
        (fun u old_seq ->
          match Hashtbl.find_opt new_rows u with
          | Some new_seq when new_seq = old_seq -> ()
          | _ -> Hashtbl.replace touched_rows u ())
        old_rows;
      Hashtbl.iter
        (fun u _ ->
          if not (Hashtbl.mem old_rows u) then Hashtbl.replace touched_rows u ())
        new_rows)
    reps;
  (* Rebuild a touched row: keep the non-member prefix, regroup the member
     region into per-owner blocks, and substitute the replaced owners'
     blocks in place — the row's own order is descending rank by
     construction, so substitution preserves the cold layout. Only a row
     gaining its *first* block for some owner needs decl ranks, to find the
     insertion point. *)
  let rebuild_row u =
    let lo = off.{u} and hi = fin.{u} in
    let prefix = ref [] in
    let blocks = ref [] in
    (* (owner, entries in row order) *)
    let cur_owner = ref None in
    let cur = ref [] in
    let flush () =
      match !cur_owner with
      | None -> ()
      | Some ok ->
          blocks := (ok, List.rev !cur) :: !blocks;
          cur_owner := None;
          cur := []
    in
    for k = lo to hi - 1 do
      match owner_key fz.Graph.f_fwd_edge.(k).Graph.elem with
      | None ->
          (* widening/array edges form the row prefix; one after a member
             edge would break the layout invariant *)
          if !cur_owner <> None || !blocks <> [] then raise Fallback;
          prefix := Old k :: !prefix
      | Some ok ->
          if !cur_owner <> Some ok then begin
            flush ();
            cur_owner := Some ok
          end;
          cur := Old k :: !cur
    done;
    flush ();
    let blocks = List.rev !blocks in
    (* each owner exactly once — a hub row (the void node's static region)
       can hold thousands of blocks, so this must stay linear in the block
       count *)
    let seen = Hashtbl.create 64 in
    List.iter
      (fun (ok, _) ->
        if Hashtbl.mem seen ok then raise Fallback;
        Hashtbl.add seen ok ())
      blocks;
    let subst =
      List.filter_map
        (fun (ok, es) ->
          if Hashtbl.mem rep_set ok then
            match Hashtbl.find_opt new_blocks (u, ok) with
            | None | Some [] -> None
            | Some edges -> Some (ok, List.map (fun e -> New e) edges)
          else Some (ok, es))
        blocks
    in
    let gained =
      List.filter_map
        (fun (k, _) ->
          match Hashtbl.find_opt new_blocks (u, k) with
          | Some (_ :: _ as edges) when not (Hashtbl.mem seen k) ->
              Some (k, List.map (fun e -> New e) edges)
          | _ -> None)
        reps
    in
    let merged =
      if gained = [] then subst
      else
        (* an owner's first block in this row: rank every block and re-sort
           descending, which reproduces the cold layout *)
        List.map
          (fun (_, ok, es) -> (ok, es))
          (List.sort
             (fun (a, _, _) (b, _, _) -> compare b a)
             (List.map (fun (ok, es) -> (rank_of ok, ok, es)) (subst @ gained)))
    in
    Array.of_list (List.rev !prefix @ List.concat_map snd merged)
  in
  let rows = Hashtbl.fold (fun u () acc -> u :: acc) touched_rows [] in
  let rows = List.sort compare rows in
  let rebuilt = List.map (fun u -> (u, rebuild_row u)) rows in
  let entry_dst = function
    | Old j -> fz.Graph.f_fwd_dst.{j}
    | New e -> e.Graph.dst
  in
  let entry_costs = function
    | Old j -> (fz.Graph.f_fwd_cost.{j}, fz.Graph.f_fwd_wcost.(j))
    | New e -> (Elem.cost e.Graph.elem, wcost e.Graph.elem)
  in
  (* Forward placement: copy the offset/end lanes (the only O(nodes) work on
     this path) and repoint each rewritten row at the append cursor. Nothing
     is written to the shared data lanes yet — placement must be complete
     before the fit check, and the fit check before the first tail write. *)
  let off' = Graph.ba_int (n + 1) in
  Bigarray.Array1.blit fz.Graph.f_fwd_off off';
  let end' = Graph.ba_int n in
  Bigarray.Array1.blit fz.Graph.f_fwd_end end';
  let fcursor = ref fz.Graph.f_fwd_used in
  let removed = ref 0 in
  List.iter
    (fun (u, es) ->
      removed := !removed + (fin.{u} - off.{u});
      off'.{u} <- !fcursor;
      fcursor := !fcursor + Array.length es;
      end'.{u} <- !fcursor)
    rebuilt;
  let app_fwd = !fcursor - fz.Graph.f_fwd_used in
  let m' = fz.Graph.f_edges - !removed + app_fwd in
  (* (v, u) -> rewritten fwd lane indices of the edges u -> v, in row
     order — the backward merge consumes these. *)
  let new_into : (int * int, int list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (u, es) ->
      let base = off'.{u} in
      for i = Array.length es - 1 downto 0 do
        let v = entry_dst es.(i) in
        Hashtbl.replace new_into (v, u)
          ((base + i) :: Option.value ~default:[] (Hashtbl.find_opt new_into (v, u)))
      done)
    rebuilt;
  (* Backward rows that actually change: for each rewritten source row,
     diff its old vs new (cost, wcost) contribution per destination — the
     source id and the group's position in the row are fixed, so an equal
     contribution sequence means the backward row is already exact. *)
  let bchanged = Hashtbl.create 32 in
  List.iter
    (fun (u, es) ->
      let oldc : (int, (int * int) list) Hashtbl.t = Hashtbl.create 16 in
      for k = off.{u} to fin.{u} - 1 do
        let v = fz.Graph.f_fwd_dst.{k} in
        Hashtbl.replace oldc v
          ((fz.Graph.f_fwd_cost.{k}, fz.Graph.f_fwd_wcost.(k))
          :: Option.value ~default:[] (Hashtbl.find_opt oldc v))
      done;
      let newc : (int, (int * int) list) Hashtbl.t = Hashtbl.create 16 in
      Array.iter
        (fun entry ->
          let v = entry_dst entry in
          Hashtbl.replace newc v
            (entry_costs entry
            :: Option.value ~default:[] (Hashtbl.find_opt newc v)))
        es;
      Hashtbl.iter
        (fun v oldl ->
          if Hashtbl.find_opt newc v <> Some oldl then
            Hashtbl.replace bchanged v ())
        oldc;
      Hashtbl.iter
        (fun v _ ->
          if not (Hashtbl.mem oldc v) then Hashtbl.replace bchanged v ())
        newc)
    rebuilt;
  let boff = fz.Graph.f_bwd_off in
  let bfin = fz.Graph.f_bwd_end in
  let bsrc = fz.Graph.f_bwd_src in
  (* Rebuild a changed backward row by merging: rewritten source rows
     substitute for (or insert before) the old row's group at that source;
     every other group is kept in place. Both sides are in ascending-source
     order, and same-source groups are contiguous. *)
  let rebuild_bwd_row v =
    let lo = boff.{v} and hi = bfin.{v} in
    let out = ref [] in
    let emit_new u =
      match Hashtbl.find_opt new_into (v, u) with
      | Some ks -> List.iter (fun k -> out := Newb (u, k) :: !out) ks
      | None -> ()
    in
    let rec go j rs =
      match rs with
      | u :: rs' when j >= hi || bsrc.{j} >= u ->
          emit_new u;
          let j' = ref j in
          while !j' < hi && bsrc.{!j'} = u do
            incr j'
          done;
          go !j' rs'
      | _ ->
          if j < hi then begin
            out := Oldb j :: !out;
            go (j + 1) rs
          end
    in
    go lo rows;
    Array.of_list (List.rev !out)
  in
  let brows = Hashtbl.fold (fun v () acc -> v :: acc) bchanged [] in
  let brows = List.sort compare brows in
  let brebuilt = List.map (fun v -> (v, rebuild_bwd_row v)) brows in
  let boff' = Graph.ba_int (n + 1) in
  Bigarray.Array1.blit fz.Graph.f_bwd_off boff';
  let bend' = Graph.ba_int n in
  Bigarray.Array1.blit fz.Graph.f_bwd_end bend';
  let bcursor = ref fz.Graph.f_bwd_used in
  let bremoved = ref 0 in
  List.iter
    (fun (v, es) ->
      bremoved := !bremoved + (bfin.{v} - boff.{v});
      boff'.{v} <- !bcursor;
      bcursor := !bcursor + Array.length es;
      bend'.{v} <- !bcursor)
    brebuilt;
  let app_bwd = !bcursor - fz.Graph.f_bwd_used in
  (* the rebuilt bwd rows must account for exactly the new edge set; a
     mismatch means a violated layout assumption — fall back to rebuild *)
  if fz.Graph.f_edges - !bremoved + app_bwd <> m' then raise Fallback;
  (* Fit check — still nothing written to shared storage. *)
  if
    !fcursor > Bigarray.Array1.dim fz.Graph.f_fwd_dst
    || !bcursor > Bigarray.Array1.dim fz.Graph.f_bwd_src
  then raise (Refit (max app_fwd app_bwd));
  (* Tail writes. Reads ([Old]/[Oldb]/[Newb]) index below the old high-water
     marks or into rows this patch just wrote; writes land at or past them —
     disjoint from every region any published reader can reach. *)
  let dst = fz.Graph.f_fwd_dst
  and cost = fz.Graph.f_fwd_cost
  and wc = fz.Graph.f_fwd_wcost
  and edge = fz.Graph.f_fwd_edge in
  List.iter
    (fun (u, es) ->
      let k = ref off'.{u} in
      Array.iter
        (fun entry ->
          (match entry with
          | Old j ->
              dst.{!k} <- dst.{j};
              cost.{!k} <- cost.{j};
              wc.(!k) <- wc.(j);
              edge.(!k) <- edge.(j)
          | New e ->
              dst.{!k} <- e.Graph.dst;
              cost.{!k} <- Elem.cost e.Graph.elem;
              wc.(!k) <- wcost e.Graph.elem;
              edge.(!k) <- e);
          incr k)
        es)
    rebuilt;
  let bcost = fz.Graph.f_bwd_cost and bwc = fz.Graph.f_bwd_wcost in
  List.iter
    (fun (v, es) ->
      let i = ref boff'.{v} in
      Array.iter
        (fun entry ->
          (match entry with
          | Oldb j ->
              bsrc.{!i} <- bsrc.{j};
              bcost.{!i} <- bcost.{j};
              bwc.(!i) <- bwc.(j)
          | Newb (u, k) ->
              bsrc.{!i} <- u;
              bcost.{!i} <- cost.{k};
              bwc.(!i) <- wc.(k));
          incr i)
        es)
    brebuilt;
  let fz' =
    {
      fz with
      Graph.f_generation = fz.Graph.f_generation + !changed + 1;
      f_edges = m';
      f_fwd_off = off';
      f_fwd_end = end';
      f_bwd_off = boff';
      f_bwd_end = bend';
      f_fwd_used = !fcursor;
      f_bwd_used = !bcursor;
      (* fresh token: it guards the *new* high-water marks *)
      f_tail = Atomic.make false;
    }
  in
  (fz', touched, !touched_count)

(* Claim the tail before splicing. Exactly one patch per lane storage wins
   the compare-and-set; a loser (a sibling patch of the same base, or a
   lineage whose slack a previous patch claimed and abandoned) compacts
   into fresh lanes first — whose token it owns by construction. Slack
   exhaustion surfaces as [Refit] before any shared write, and retries once
   on lanes compacted with enough room. *)
let splice ~wcost ~h_new ~(fz : Graph.frozen) ~reps =
  let base =
    if Atomic.compare_and_set fz.Graph.f_tail false true then fz
    else begin
      let c = Graph.compact fz in
      Atomic.set c.Graph.f_tail true;
      c
    end
  in
  try splice_once ~wcost ~h_new ~fz:base ~reps
  with Refit need ->
    let c =
      Graph.compact ~slack:(need + Graph.default_slack fz.Graph.f_edges) fz
    in
    Atomic.set c.Graph.f_tail true;
    splice_once ~wcost ~h_new ~fz:c ~reps

(* ---------- entry point ---------- *)

let rebuild ~config ~wcost ~h' ~old_frozen ~nops =
  Hierarchy.ensure_closed h';
  let g = Sig_graph.build ~config h' in
  let fz = Graph.freeze ~wcost g in
  (* A fresh build's generation (nodes + edges) can collide with the old
     snapshot's; force strict monotonic growth so stale cache keys can never
     alias the reloaded world. *)
  let fz =
    { fz with Graph.f_generation = old_frozen.Graph.f_generation + nops + 1 }
  in
  let old_n = old_frozen.Graph.f_nodes in
  let touched = Reach.Bits.create old_n in
  for u = 0 to old_n - 1 do
    Reach.Bits.set touched u
  done;
  (fz, touched, old_n)

let apply ?(config = Sig_graph.default_config) ?(wcost = Graph.default_wcost)
    ~hierarchy ~frozen ops =
  let h' = Hierarchy.copy hierarchy in
  let errors, structural, originals = validate_and_apply h' ops in
  if errors <> [] then Error errors
  else begin
    let nops = List.length ops in
    let finish mode (fz, touched, touched_count) =
      Ok
        {
          p_frozen = fz;
          p_hierarchy = h';
          p_touched = touched;
          p_touched_count = touched_count;
          p_mode = mode;
          p_ops = nops;
        }
    in
    let eligible =
      (not structural)
      (* typestate nodes and downcast edges come from mined-example splicing
         whose insertion order the delta layer cannot replay; enriched
         snapshots always take the rebuild path *)
      && frozen.Graph.f_plain
      && Hashtbl.fold
           (fun _k (old_d : Decl.t) acc ->
             acc
             &&
             let new_d = Hierarchy.find h' old_d.Decl.dname in
             same_widening old_d new_d
             && Qname.Set.for_all
                  (fun q -> Hierarchy.mem hierarchy q)
                  (Hierarchy.referenced_qnames new_d)
             &&
             let old_elems = dedup_elems (Sig_graph.elems_of_decl ~config old_d) in
             let new_elems = dedup_elems (Sig_graph.elems_of_decl ~config new_d) in
             List.length (array_mentions old_elems)
             = List.length (array_mentions new_elems)
             && List.for_all2 Jtype.equal (array_mentions old_elems)
                  (array_mentions new_elems))
           originals true
    in
    if not eligible then
      finish Rebuilt (rebuild ~config ~wcost ~h' ~old_frozen:frozen ~nops)
    else begin
      let reps =
        Hashtbl.fold
          (fun k (old_d : Decl.t) acc ->
            let new_d = Hierarchy.find h' old_d.Decl.dname in
            ( k,
              {
                r_old_elems = dedup_elems (Sig_graph.elems_of_decl ~config old_d);
                r_new_elems = dedup_elems (Sig_graph.elems_of_decl ~config new_d);
              } )
            :: acc)
          originals []
      in
      match splice ~wcost ~h_new:h' ~fz:frozen ~reps with
      | result -> finish Spliced result
      | exception Fallback ->
          finish Rebuilt (rebuild ~config ~wcost ~h' ~old_frozen:frozen ~nops)
    end
  end

(* ---------- the correctness oracle ---------- *)

let ids_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

(* Row-wise comparison of the adjacency: a patched snapshot relocates
   rewritten rows into the lanes' tail, so physical lane layout is not
   comparable — logical rows are. *)
let rows_equal (a : Graph.frozen) (b : Graph.frozen) =
  let n = a.Graph.f_nodes in
  try
    for u = 0 to n - 1 do
      let ka = a.Graph.f_fwd_off.{u} and kb = b.Graph.f_fwd_off.{u} in
      let la = a.Graph.f_fwd_end.{u} - ka in
      if la <> b.Graph.f_fwd_end.{u} - kb then raise Exit;
      for i = 0 to la - 1 do
        if
          a.Graph.f_fwd_dst.{ka + i} <> b.Graph.f_fwd_dst.{kb + i}
          || a.Graph.f_fwd_cost.{ka + i} <> b.Graph.f_fwd_cost.{kb + i}
          || a.Graph.f_fwd_wcost.(ka + i) <> b.Graph.f_fwd_wcost.(kb + i)
          || a.Graph.f_fwd_edge.(ka + i) <> b.Graph.f_fwd_edge.(kb + i)
        then raise Exit
      done;
      let ka = a.Graph.f_bwd_off.{u} and kb = b.Graph.f_bwd_off.{u} in
      let la = a.Graph.f_bwd_end.{u} - ka in
      if la <> b.Graph.f_bwd_end.{u} - kb then raise Exit;
      for i = 0 to la - 1 do
        if
          a.Graph.f_bwd_src.{ka + i} <> b.Graph.f_bwd_src.{kb + i}
          || a.Graph.f_bwd_cost.{ka + i} <> b.Graph.f_bwd_cost.{kb + i}
          || a.Graph.f_bwd_wcost.(ka + i) <> b.Graph.f_bwd_wcost.(kb + i)
        then raise Exit
      done
    done;
    true
  with Exit -> false

(* Logical equality of two snapshots, ignoring [f_generation] (a patched
   snapshot deliberately outruns the fresh-build counter) and physical
   layout (row placement, tail slack, high-water marks). This is the reload
   oracle: [patched ≡ cold rebuild from the patched model]. *)
let frozen_equal (a : Graph.frozen) (b : Graph.frozen) =
  a.Graph.f_nodes = b.Graph.f_nodes
  && a.Graph.f_edges = b.Graph.f_edges
  && rows_equal a b
  && a.Graph.f_types = b.Graph.f_types
  && a.Graph.f_origins = b.Graph.f_origins
  && ids_bindings a.Graph.f_ids = ids_bindings b.Graph.f_ids
  && a.Graph.f_void = b.Graph.f_void
