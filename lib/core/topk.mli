(** Rank-aware best-first top-k path enumeration.

    The lazy alternative to {!Search.enumerate} + {!Rank.sort}: path
    prefixes live in a shared-prefix arena (parent-pointer rows in flat int
    arrays) under a binary min-heap ordered by the admissible priority
    [cost + free-variable charge + dist_to], and the Rank tiebreak
    components are maintained incrementally per appended edge. Completed
    paths are therefore delivered in {e exact} {!Rank.compare_key} order —
    byte-identical to sorting the exhaustive enumeration — while the search
    touches about [k] candidates instead of materializing thousands.
    {!Query} drives this under [settings.strategy = BestFirst]; the module
    is exposed (including {!Heap} and {!Arena}) for its unit tests.

    Streams from one generator are consumer-paced: each {!next} call pops
    and expands only until the next candidate's position is certified
    (all paths of its length completed, its numeric-tie group resolved). *)

module Heap : sig
  (** Binary min-heap over [(priority, payload)] int pairs in parallel
      arrays. Pop order among equal priorities is unspecified but
      deterministic. *)

  type t

  val create : unit -> t
  val length : t -> int

  val min_prio : t -> int
  (** [max_int] when empty. *)

  val add : t -> prio:int -> int -> unit

  val pop : t -> int
  (** Payload of a minimum-priority entry; the heap must be non-empty. *)
end

module Arena : sig
  (** The shared-prefix path arena: each row is a prefix, extending a
      prefix appends one row pointing at its parent — no list copying,
      no per-path allocation until {!path} reconstructs a result. *)

  type t

  val create : unit -> t
  val size : t -> int

  val add_root : t -> Graph.node -> int
  (** A zero-length prefix at a source node; returns its row id. *)

  val append : t -> parent:int -> ord:int -> Graph.edge -> int
  (** Extend [parent] with an edge whose ordinal in its source's adjacency
      row is [ord]; returns the new row id. *)

  val node : t -> int -> Graph.node
  (** Head node of a prefix. *)

  val parent : t -> int -> int
  (** Parent row, [-1] for a root. *)

  val on_path : t -> int -> Graph.node -> bool
  (** Does the prefix ending at this row visit the node? (The acyclicity
      check — a chain walk, since heap prefixes are not nested the way DFS
      stack prefixes are.) *)

  val path : t -> int -> Search.path
  (** Reconstruct the full path, root first. *)

  val ords_of : t -> int -> int array
  (** The edge ordinals from the root outward — the DFS-lexicographic
      coordinates of the path. *)
end

type candidate = {
  cand_path : Search.path;
  cand_jungloid : Jungloid.t;
  cand_key : Rank.key;  (** exactly what {!Rank.key} computes for it *)
}

type t
(** A running best-first enumeration. *)

(** Per-domain, epoch-stamped memo of per-edge rank contributions (charge,
    package, output depth), keyed by global CSR edge index. Only the
    {e allocation} is shared across queries — contents are per-query (charge
    depends on the free-variable estimator, package ids on the intern
    table), so {!start} invalidates everything by bumping the epoch. At most
    one enumeration per domain may hold a given memo at a time; {!Query}
    passes it for consume-within-call runs and omits it for escaping
    streams. *)
module Memo : sig
  type t

  val create : unit -> t

  val domain : unit -> t
  (** This domain's memo (domain-local storage). *)
end

type weighted_mode = {
  wdist_to : Search.Dist.t;
      (** exact weighted Dijkstra distances to the target
          ({!Search.Csr.weighted_distances_to}), [max_int] = unreachable *)
  edge_wcost : int -> Graph.edge -> int;
      (** [(ord, edge)] -> learned non-negative cost in {!Elem.cost_scale}
          units; must agree with the [edge_cost] the consumer passes to
          {!Rank.key}, and with the model [wdist_to] was computed under *)
}
(** Mined-ranking mode: the heap priority becomes weighted cost + scaled
    charge + [wdist_to], so candidates are certified in exact weighted
    {!Rank.compare_key} order. The enumeration budget stays on the paper
    cost, keeping the candidate {e set} byte-identical to the exhaustive
    pipeline's — only the order changes. *)

val start :
  ?freevar_cost_of:(Javamodel.Jtype.t -> int) ->
  ?weighted:weighted_mode ->
  ?memo:Memo.t ->
  weights:Rank.weights ->
  hierarchy:Javamodel.Hierarchy.t ->
  node_type:(Graph.node -> Javamodel.Jtype.t) ->
  iter_succs:(Graph.node -> (int -> Graph.edge -> unit) -> unit) ->
  edge_slots:int ->
  materialize:(Search.path -> Jungloid.t) ->
  dist_to:Search.Dist.t ->
  sources:(Graph.node * int) list ->
  target:Graph.node ->
  limit:int ->
  unit ->
  t
(** Begin a search. [iter_succs u f] must call [f ord e] for each outgoing
    edge in adjacency order, [ord] being a stable per-edge ordinal —
    the global CSR edge index (with [edge_slots] = total edge count, so
    per-edge rank contributions are memoized once per edge — pass [?memo]
    to reuse the memo allocation across queries), or the per-row index
    with [edge_slots = 0] for the list graph (memo bypassed). [dist_to]
    are exact backward 0-1-BFS distances to [target] ([max_int] =
    unreachable); pruned distances are fine as long as the pruning is
    cone-exact, which keeps the priority admissible and consistent. [sources] pairs each source node with its cost budget
    (shortest-cost + slack — per source, as {!Search.enumerate_per_source}
    budgets them); a node must appear at most once. [limit] caps completed
    candidates exactly as the DFS caps enumerated paths.

    [weights]/[freevar_cost_of] must match what the consumer passes to
    {!Rank.key}, or the certified order and the final keys disagree.
    Negative charges break priority monotonicity — callers gate on
    [freevar_cost < 0] and fall back to the exhaustive strategy. *)

val next : t -> candidate option
(** The next candidate in exact {!Rank.compare_key} order (ties resolved
    as the exhaustive pipeline resolves them: textual rendering, then
    source node, then DFS-lexicographic edge order); [None] when the
    budgeted search space is exhausted or [limit] was hit. *)

val materialized : t -> int
(** How many candidates were materialized into jungloids so far — the
    laziness metric ([BENCH_topk.json] compares it against the exhaustive
    enumeration count). *)

val truncated : t -> bool
(** Whether the search stopped at [limit] completed candidates. *)
