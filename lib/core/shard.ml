(* Package-cone sharding: partition a frozen snapshot so each query's
   reachability cone lives inside one cache-friendly sub-snapshot. *)

module Jtype = Javamodel.Jtype
module Qname = Javamodel.Qname

type entry =
  | Unbuilt
  | Built of Graph.frozen * Graph.node array  (* sub snapshot, sub -> parent *)
  | Whole  (* shard covers most of the graph; not worth materializing *)

type t = {
  p_frozen : Graph.frozen;
  p_comp : int array;  (* node -> SCC id, shared with the Reach index *)
  p_gmask : int array;  (* SCC id -> bitmask of groups reachable from it *)
  p_group_of_node : int array;  (* node -> its package group, -1 if none *)
  p_nshards : int;
  p_threshold : float;
  p_subs : entry array;
}

(* Group membership is one bit per group in a native int; keep headroom
   below Sys.int_size. *)
let max_groups = 62

let rec package_of (ty : Jtype.t) =
  match ty with
  | Jtype.Ref q -> Some (Qname.package_string q)
  | Jtype.Array elt -> package_of elt
  | Jtype.Prim _ | Jtype.Void -> None

let plan ?(max_shards = 32) ?(threshold = 0.75) (fz : Graph.frozen) reach =
  let n = fz.Graph.f_nodes in
  let comp = Reach.components reach in
  if
    Reach.generation reach <> fz.Graph.f_generation
    || Array.length comp <> n
    || n = 0
  then None
  else begin
    (* Distinct packages, sorted, chunked into contiguous groups: sorting
       keeps sibling packages (common prefixes) in the same group, which is
       where cross-package edges concentrate. *)
    let pkgs = Hashtbl.create 64 in
    Array.iter
      (fun ty ->
        match package_of ty with
        | Some p -> Hashtbl.replace pkgs p ()
        | None -> ())
      fz.Graph.f_types;
    let np = Hashtbl.length pkgs in
    let nshards = min (min max_shards max_groups) np in
    if nshards < 2 then None
    else begin
      let sorted =
        List.sort String.compare (Hashtbl.fold (fun p () acc -> p :: acc) pkgs [])
      in
      let group_of_pkg = Hashtbl.create 64 in
      List.iteri (fun i p -> Hashtbl.replace group_of_pkg p (i * nshards / np)) sorted;
      let group_of_node = Array.make n (-1) in
      for u = 0 to n - 1 do
        match package_of fz.Graph.f_types.(u) with
        | Some p -> group_of_node.(u) <- Hashtbl.find group_of_pkg p
        | None -> ()
      done;
      let ncomp = Reach.scc_count reach in
      let gmask = Array.make ncomp 0 in
      for u = 0 to n - 1 do
        let g = group_of_node.(u) in
        if g >= 0 then gmask.(comp.(u)) <- gmask.(comp.(u)) lor (1 lsl g)
      done;
      (* Condensation DP. SCC ids are in reverse topological order (every
         successor of c has an id < c), so one ascending sweep sees each
         successor's final mask. *)
      let members = Array.make ncomp [] in
      for u = n - 1 downto 0 do
        members.(comp.(u)) <- u :: members.(comp.(u))
      done;
      let off = fz.Graph.f_fwd_off
      and fin = fz.Graph.f_fwd_end
      and adj = fz.Graph.f_fwd_dst in
      for c = 0 to ncomp - 1 do
        List.iter
          (fun u ->
            for k = off.{u} to fin.{u} - 1 do
              let cv = comp.(adj.{k}) in
              if cv <> c then gmask.(c) <- gmask.(c) lor gmask.(cv)
            done)
          members.(c)
      done;
      Some
        {
          p_frozen = fz;
          p_comp = comp;
          p_gmask = gmask;
          p_group_of_node = group_of_node;
          p_nshards = nshards;
          p_threshold = threshold;
          p_subs = Array.make nshards Unbuilt;
        }
    end
  end

let shard_count t = t.p_nshards

let route t ~target =
  if target < 0 || target >= Array.length t.p_group_of_node then None
  else
    match t.p_group_of_node.(target) with -1 -> None | g -> Some g

let member_count t s =
  let bit = 1 lsl s in
  let count = ref 0 in
  for u = 0 to Array.length t.p_group_of_node - 1 do
    if t.p_gmask.(t.p_comp.(u)) land bit <> 0 then incr count
  done;
  !count

(* The induced sub-snapshot of shard [s]: nodes in ascending parent order
   (so the parent -> sub map is monotone and every id comparison the search
   makes — tiebreaks on source node, lexicographic edge indices — orders
   identically) and per-row edge order preserved. Edge records are rebuilt
   with remapped endpoints — Topk reads [e.dst] as the head node id — but
   share the parent's elems, so a materialized jungloid is byte-identical
   to the whole-graph one. *)
let build t s =
  let fz = t.p_frozen in
  let n = fz.Graph.f_nodes in
  let bit = 1 lsl s in
  let comp = t.p_comp and gmask = t.p_gmask in
  let n' = member_count t s in
  if float_of_int n' > t.p_threshold *. float_of_int n then Whole
  else begin
    let map = Array.make n (-1) in
    let glob = Array.make n' 0 in
    let i = ref 0 in
    for u = 0 to n - 1 do
      if gmask.(comp.(u)) land bit <> 0 then begin
        map.(u) <- !i;
        glob.(!i) <- u;
        incr i
      end
    done;
    let off = fz.Graph.f_fwd_off
    and fin = fz.Graph.f_fwd_end
    and dst = fz.Graph.f_fwd_dst
    and cost = fz.Graph.f_fwd_cost in
    let fwd_off' = Graph.ba_int (n' + 1) in
    fwd_off'.{0} <- 0;
    let m' = ref 0 in
    for i = 0 to n' - 1 do
      let u = glob.(i) in
      for k = off.{u} to fin.{u} - 1 do
        if map.(dst.{k}) >= 0 then incr m'
      done;
      fwd_off'.{i + 1} <- !m'
    done;
    let m' = !m' in
    let fwd_dst' = Graph.ba_int m' and fwd_cost' = Graph.ba_cost m' in
    let fwd_wcost' = Array.make m' 0 in
    let fwd_edge' =
      if m' = 0 then [||] else Array.make m' fz.Graph.f_fwd_edge.(0)
    in
    let k' = ref 0 in
    for i = 0 to n' - 1 do
      let u = glob.(i) in
      for k = off.{u} to fin.{u} - 1 do
        let j = map.(dst.{k}) in
        if j >= 0 then begin
          fwd_dst'.{!k'} <- j;
          fwd_cost'.{!k'} <- cost.{k};
          fwd_wcost'.(!k') <- fz.Graph.f_fwd_wcost.(k);
          let e = fz.Graph.f_fwd_edge.(k) in
          fwd_edge'.(!k') <- { e with Graph.src = i; dst = j };
          incr k'
        end
      done
    done;
    let bwd_off', bwd_src', bwd_cost', bwd_wcost' =
      Graph.derive_bwd ~n:n' ~m:m' ~fwd_off:fwd_off' ~fwd_end:(Bigarray.Array1.sub fwd_off' 1 n')
        ~fwd_dst:fwd_dst' ~fwd_cost:fwd_cost' ~fwd_wcost:fwd_wcost' ()
    in
    let types' = Array.map (fun u -> fz.Graph.f_types.(u)) glob in
    let origins' = Array.map (fun u -> fz.Graph.f_origins.(u)) glob in
    let ids' = Hashtbl.create (max 16 n') in
    Hashtbl.iter
      (fun key id ->
        if id >= 0 && id < n then begin
          let j = map.(id) in
          if j >= 0 then Hashtbl.replace ids' key j
        end)
      fz.Graph.f_ids;
    let void' =
      match fz.Graph.f_void with
      | Some v when v >= 0 && v < n && map.(v) >= 0 -> Some map.(v)
      | _ -> None
    in
    let sub : Graph.frozen =
      {
        Graph.f_generation = fz.Graph.f_generation;
        f_nodes = n';
        f_edges = m';
        f_fwd_off = fwd_off';
        f_fwd_end = Bigarray.Array1.sub fwd_off' 1 n';
        f_fwd_dst = fwd_dst';
        f_fwd_cost = fwd_cost';
        f_fwd_wcost = fwd_wcost';
        f_fwd_edge = fwd_edge';
        f_bwd_off = bwd_off';
        f_bwd_end = Bigarray.Array1.sub bwd_off' 1 n';
        f_bwd_src = bwd_src';
        f_bwd_cost = bwd_cost';
        f_bwd_wcost = bwd_wcost';
        f_fwd_used = m';
        f_bwd_used = m';
        f_plain = fz.Graph.f_plain;
        f_tail = Atomic.make false;
        f_types = types';
        f_origins = origins';
        f_ids = ids';
        f_void = void';
      }
    in
    Built (sub, glob)
  end

let sub t s =
  if s < 0 || s >= t.p_nshards then None
  else
    match t.p_subs.(s) with
    | Built (fz, _) -> Some fz
    | Whole -> None
    | Unbuilt -> (
        let e = build t s in
        t.p_subs.(s) <- e;
        match e with Built (fz, _) -> Some fz | _ -> None)

let to_parent t s =
  if s < 0 || s >= t.p_nshards then [||]
  else match t.p_subs.(s) with Built (_, glob) -> glob | _ -> [||]
