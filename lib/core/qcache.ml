(* An exact LRU cache: a hash table into an intrusive doubly-linked recency
   list ([mru] end is most recent). Keys are any structurally hashable type
   (the engine uses flat key records, not rendered strings, so distinct
   queries can never collide by string concatenation). Every operation is
   O(1); the list pointers are options so no sentinel (and no Obj.magic) is
   needed. *)

type ('k, 'a) entry = {
  ekey : 'k;
  mutable value : 'a;
  mutable prev : ('k, 'a) entry option;  (* toward the MRU end *)
  mutable next : ('k, 'a) entry option;  (* toward the LRU end *)
}

type ('k, 'a) t = {
  capacity : int;
  tbl : ('k, ('k, 'a) entry) Hashtbl.t;
  mutable mru : ('k, 'a) entry option;
  mutable lru : ('k, 'a) entry option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
  mutable dropped : int;  (* entries removed by clear/refresh, cumulative *)
  mutable scoped : int;  (* cone-scoped refresh passes (vs generation nukes) *)
}

type stats = {
  s_hits : int;
  s_misses : int;
  s_evictions : int;
  s_invalidations : int;
  s_entries : int;
  s_capacity : int;
  s_dropped : int;
  s_scoped : int;
}

let create ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Qcache.create: capacity must be >= 1";
  {
    capacity;
    tbl = Hashtbl.create (min capacity 1024);
    mru = None;
    lru = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
    dropped = 0;
    scoped = 0;
  }

let capacity t = t.capacity

let length t = Hashtbl.length t.tbl

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.mru <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.lru <- e.prev);
  e.prev <- None;
  e.next <- None

let push_mru t e =
  e.next <- t.mru;
  e.prev <- None;
  (match t.mru with Some m -> m.prev <- Some e | None -> t.lru <- Some e);
  t.mru <- Some e

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
      t.hits <- t.hits + 1;
      unlink t e;
      push_mru t e;
      Some e.value
  | None ->
      t.misses <- t.misses + 1;
      None

let mem t key = Hashtbl.mem t.tbl key

let evict_lru t =
  match t.lru with
  | None -> ()
  | Some e ->
      unlink t e;
      Hashtbl.remove t.tbl e.ekey;
      t.evictions <- t.evictions + 1

let add t key value =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
      e.value <- value;
      unlink t e;
      push_mru t e
  | None ->
      if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
      let e = { ekey = key; value; prev = None; next = None } in
      Hashtbl.replace t.tbl key e;
      push_mru t e

let find_or_add t key f =
  match find t key with
  | Some v -> v
  | None ->
      let v = f () in
      add t key v;
      v

let clear t =
  t.dropped <- t.dropped + Hashtbl.length t.tbl;
  Hashtbl.reset t.tbl;
  t.mru <- None;
  t.lru <- None;
  t.invalidations <- t.invalidations + 1

let keys_mru_first t =
  let rec go acc = function
    | None -> List.rev acc
    | Some e -> go (e.ekey :: acc) e.next
  in
  go [] t.mru

let refresh t f =
  (* Cone-scoped invalidation: survivors are rekeyed via [f], everything
     else is dropped. Walking MRU-first and re-adding LRU-first preserves
     the recency order ([add] pushes to the MRU end). One refresh counts as
     a scoped pass, not an invalidation — the stats distinguish targeted
     reload maintenance from wholesale generation nukes. *)
  let rec collect acc = function
    | None -> acc (* acc ends up LRU-first *)
    | Some e -> collect ((e.ekey, e.value) :: acc) e.next
  in
  let entries = collect [] t.mru in
  let before = Hashtbl.length t.tbl in
  Hashtbl.reset t.tbl;
  t.mru <- None;
  t.lru <- None;
  List.iter
    (fun (k, v) -> match f k with None -> () | Some k' -> add t k' v)
    entries;
  let removed = before - Hashtbl.length t.tbl in
  t.dropped <- t.dropped + removed;
  t.scoped <- t.scoped + 1;
  removed

let stats t =
  {
    s_hits = t.hits;
    s_misses = t.misses;
    s_evictions = t.evictions;
    s_invalidations = t.invalidations;
    s_entries = length t;
    s_capacity = t.capacity;
    s_dropped = t.dropped;
    s_scoped = t.scoped;
  }

let merge_stats a b =
  {
    s_hits = a.s_hits + b.s_hits;
    s_misses = a.s_misses + b.s_misses;
    s_evictions = a.s_evictions + b.s_evictions;
    s_invalidations = a.s_invalidations + b.s_invalidations;
    s_entries = a.s_entries + b.s_entries;
    s_capacity = a.s_capacity + b.s_capacity;
    s_dropped = a.s_dropped + b.s_dropped;
    s_scoped = a.s_scoped + b.s_scoped;
  }

let hit_rate s =
  let total = s.s_hits + s.s_misses in
  if total = 0 then 0.0 else float_of_int s.s_hits /. float_of_int total
