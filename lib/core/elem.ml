module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Member = Javamodel.Member

type input_slot =
  | Receiver
  | Param of int
  | No_input

type t =
  | Field_access of { owner : Qname.t; field : Member.field }
  | Static_call of { owner : Qname.t; meth : Member.meth; input : input_slot }
  | Ctor_call of { owner : Qname.t; ctor : Member.ctor; input : input_slot }
  | Instance_call of { owner : Qname.t; meth : Member.meth; input : input_slot }
  | Widen of { from_ : Jtype.t; to_ : Jtype.t }
  | Downcast of { from_ : Jtype.t; to_ : Jtype.t }

let param_type params = function
  | Param i -> snd (List.nth params i)
  | Receiver | No_input -> invalid_arg "param_type"

let input_type = function
  | Field_access { owner; field } ->
      if field.Member.fstatic then Jtype.Void else Jtype.ref_ owner
  | Static_call { meth; input; _ } -> (
      match input with
      | No_input -> Jtype.Void
      | Param _ as p -> param_type meth.Member.params p
      | Receiver -> invalid_arg "static call has no receiver")
  | Ctor_call { ctor; input; _ } -> (
      match input with
      | No_input -> Jtype.Void
      | Param _ as p -> param_type ctor.Member.cparams p
      | Receiver -> invalid_arg "constructor has no receiver")
  | Instance_call { owner; meth; input } -> (
      match input with
      | Receiver -> Jtype.ref_ owner
      | Param _ as p -> param_type meth.Member.params p
      | No_input -> invalid_arg "instance call needs an input")
  | Widen { from_; _ } -> from_
  | Downcast { from_; _ } -> from_

let output_type = function
  | Field_access { field; _ } -> field.Member.ftype
  | Static_call { meth; _ } -> meth.Member.ret
  | Ctor_call { owner; _ } -> Jtype.ref_ owner
  | Instance_call { meth; _ } -> meth.Member.ret
  | Widen { to_; _ } -> to_
  | Downcast { to_; _ } -> to_

let free_params params ~skip =
  List.filteri (fun i _ -> skip <> Some i) params
  |> List.map (fun (name, ty) -> (name, ty))

let free_vars = function
  | Field_access _ | Widen _ | Downcast _ -> []
  | Static_call { meth; input; _ } ->
      let skip = match input with Param i -> Some i | _ -> None in
      free_params meth.Member.params ~skip
  | Ctor_call { ctor; input; _ } ->
      let skip = match input with Param i -> Some i | _ -> None in
      free_params ctor.Member.cparams ~skip
  | Instance_call { owner; meth; input } -> (
      match input with
      | Receiver -> free_params meth.Member.params ~skip:None
      | Param i ->
          ("receiver", Jtype.ref_ owner) :: free_params meth.Member.params ~skip:(Some i)
      | No_input -> invalid_arg "instance call needs an input")

let cost = function Widen _ -> 0 | _ -> 1

let cost_scale = 1024

let visibility = function
  | Field_access { field; _ } -> Some field.Member.fvis
  | Static_call { meth; _ } | Instance_call { meth; _ } -> Some meth.Member.mvis
  | Ctor_call { ctor; _ } -> Some ctor.Member.cvis
  | Widen _ | Downcast _ -> None

let is_widen = function Widen _ -> true | _ -> false

let is_downcast = function Downcast _ -> true | _ -> false

let owner_package = function
  | Field_access { owner; _ }
  | Static_call { owner; _ }
  | Ctor_call { owner; _ }
  | Instance_call { owner; _ } ->
      Some (Qname.package_string owner)
  | Widen _ | Downcast _ -> None

let args_placeholder params ~input =
  let slot i =
    match input with
    | Param j when i = j -> "·"
    | _ -> "_"
  in
  "(" ^ String.concat ", " (List.mapi (fun i _ -> slot i) params) ^ ")"

let describe = function
  | Field_access { owner; field } ->
      if field.Member.fstatic then
        Printf.sprintf "%s.%s" (Qname.simple owner) field.Member.fname
      else Printf.sprintf "·.%s" field.Member.fname
  | Static_call { owner; meth; input } ->
      Printf.sprintf "%s.%s%s" (Qname.simple owner) meth.Member.mname
        (args_placeholder meth.Member.params ~input)
  | Ctor_call { owner; ctor; input } ->
      Printf.sprintf "new %s%s" (Qname.simple owner)
        (args_placeholder ctor.Member.cparams ~input)
  | Instance_call { meth; input; _ } -> (
      match input with
      | Receiver ->
          Printf.sprintf "·.%s%s" meth.Member.mname
            (args_placeholder meth.Member.params ~input:No_input)
      | _ ->
          Printf.sprintf "_.%s%s" meth.Member.mname
            (args_placeholder meth.Member.params ~input))
  | Widen { from_; to_ } ->
      Printf.sprintf "widen %s -> %s" (Jtype.simple_string from_)
        (Jtype.simple_string to_)
  | Downcast { to_; _ } -> Printf.sprintf "(%s) ·" (Jtype.simple_string to_)

let compare = Stdlib.compare

let equal a b = compare a b = 0
