type t = {
  nodes : int;
  real_nodes : int;
  typestate_nodes : int;
  edges : int;
  widen_edges : int;
  downcast_edges : int;
  call_edges : int;
  field_edges : int;
  approx_bytes : int;
}

let of_graph g =
  let widen = ref 0 and down = ref 0 and call = ref 0 and field = ref 0 in
  Graph.iter_edges g (fun e ->
      match e.Graph.elem with
      | Elem.Widen _ -> incr widen
      | Elem.Downcast _ -> incr down
      | Elem.Field_access _ -> incr field
      | Elem.Static_call _ | Elem.Ctor_call _ | Elem.Instance_call _ -> incr call);
  let typestates =
    List.length (List.filter (Graph.is_typestate g) (Graph.nodes g))
  in
  let nodes = Graph.node_count g and edges = Graph.edge_count g in
  {
    nodes;
    real_nodes = nodes - typestates;
    typestate_nodes = typestates;
    edges;
    widen_edges = !widen;
    downcast_edges = !down;
    call_edges = !call;
    field_edges = !field;
    (* Rough model: a node costs ~9 words (info record + table slots), an
       edge ~14 words (record + two adjacency cons cells + dedup entry). *)
    approx_bytes = ((nodes * 9) + (edges * 14)) * (Sys.word_size / 8);
  }

(* Identical figures computed off a CSR snapshot — the server's lock-free
   stats op reads this instead of walking the mutable graph. *)
let of_frozen (fz : Graph.frozen) =
  let widen = ref 0 and down = ref 0 and call = ref 0 and field = ref 0 in
  Graph.frozen_iter_edges fz (fun (e : Graph.edge) ->
      match e.Graph.elem with
      | Elem.Widen _ -> incr widen
      | Elem.Downcast _ -> incr down
      | Elem.Field_access _ -> incr field
      | Elem.Static_call _ | Elem.Ctor_call _ | Elem.Instance_call _ -> incr call);
  let typestates = ref 0 in
  for u = 0 to fz.Graph.f_nodes - 1 do
    if Graph.frozen_is_typestate fz u then incr typestates
  done;
  let nodes = fz.Graph.f_nodes and edges = fz.Graph.f_edges in
  {
    nodes;
    real_nodes = nodes - !typestates;
    typestate_nodes = !typestates;
    edges;
    widen_edges = !widen;
    downcast_edges = !down;
    call_edges = !call;
    field_edges = !field;
    approx_bytes = ((nodes * 9) + (edges * 14)) * (Sys.word_size / 8);
  }

let pp_cache fmt (s : Qcache.stats) =
  Format.fprintf fmt
    "cache: %d/%d entries, %d hits, %d misses (%.0f%% hit rate), %d evictions, %d \
     invalidations"
    s.Qcache.s_entries s.Qcache.s_capacity s.Qcache.s_hits s.Qcache.s_misses
    (100.0 *. Qcache.hit_rate s)
    s.Qcache.s_evictions s.Qcache.s_invalidations;
  (* Reload accounting appears only once a reload has actually touched the
     cache, so pre-reload output (pinned by the cram suite) is unchanged. *)
  if s.Qcache.s_dropped > 0 || s.Qcache.s_scoped > 0 then
    Format.fprintf fmt ", %d dropped, %d scoped" s.Qcache.s_dropped
      s.Qcache.s_scoped

let cache_to_string s = Format.asprintf "%a" pp_cache s

let pp fmt t =
  Format.fprintf fmt
    "@[<v>nodes: %d (%d real, %d typestate)@,\
     edges: %d (%d calls, %d fields, %d widen, %d downcast)@,\
     approx memory: %.1f KiB@]"
    t.nodes t.real_nodes t.typestate_nodes t.edges t.call_edges t.field_edges
    t.widen_edges t.downcast_edges
    (float_of_int t.approx_bytes /. 1024.)

let to_string t = Format.asprintf "%a" pp t
