(* Reachability index: for every node, the bitset of nodes it can reach.
   Built once per graph generation, it answers "can u ever reach tout?" in
   O(1), which lets the search restrict its frontier to the query's viable
   cone instead of the whole graph, and lets the query layer reject
   unsolvable (tin, tout) pairs without any BFS at all.

   Construction runs an iterative Tarjan SCC pass (the jungloid graph is
   cyclic: widening edges alone create cycles through shared supertypes),
   then a bitset DP over the condensation. Both passes run over the frozen
   CSR adjacency (flat offset/destination arrays) rather than the mutable
   graph's cons lists. Tarjan emits components sinks-first, so every
   successor component of [c] has a smaller id and its closure is already
   final when [c] is processed. Bitsets are stored per component, not per
   node, which collapses the quadratic worst case on the highly cyclic real
   graphs.

   The DP optionally fans out across a Pool: components are grouped by
   condensation level (sinks at level 0, level(c) = 1 + max over successor
   components), and all components of one level are processed in parallel —
   each writes only its own bitset and reads only lower-level closures,
   which the level barrier (a join per level) has already completed and
   published. The result is bit-for-bit the sequential sweep's. *)

module Pool = Prospector_parallel.Pool

module Bits = struct
  let word = Sys.int_size (* 63 on 64-bit platforms *)

  type t = int array

  let create n = Array.make ((n + word - 1) / word) 0

  let set (b : t) i = b.(i / word) <- b.(i / word) lor (1 lsl (i mod word))

  let[@inline] mem (b : t) i = b.(i / word) land (1 lsl (i mod word)) <> 0

  let union_into ~(dst : t) (src : t) =
    for k = 0 to Array.length dst - 1 do
      dst.(k) <- dst.(k) lor src.(k)
    done

  let count (b : t) =
    let rec popcount x acc = if x = 0 then acc else popcount (x lsr 1) (acc + (x land 1)) in
    Array.fold_left (fun acc w -> popcount w acc) 0 b
end

type t = {
  n : int;  (* node count at build time *)
  built_at : int;  (* graph generation at build time *)
  comp : int array;  (* node -> component id, ids in reverse topological order *)
  creach : Bits.t array;  (* component -> bitset of reachable nodes *)
  csize : int array;  (* component -> member count, for O(SCCs) cone sizing *)
}

(* Iterative Tarjan over the CSR: the explicit stack holds (node, next edge
   index); when a node's CSR row is exhausted its lowlink flows to the
   parent beneath it, and a root pops its whole component. Visit order
   follows the row order — the same successor order the list-based graph
   yields — so component numbering is deterministic. *)
let compute_sccs n ~(off : Graph.int_array1) ~(fin : Graph.int_array1)
    ~(adj : Graph.int_array1) =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let scc_stack = ref [] in
  let ncomp = ref 0 in
  let counter = ref 0 in
  let visit v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    scc_stack := v :: !scc_stack;
    on_stack.(v) <- true
  in
  let call = Stack.create () in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      visit root;
      Stack.push (root, off.{root}) call;
      while not (Stack.is_empty call) do
        let v, k = Stack.pop call in
        if k < fin.{v} then begin
          let w = adj.{k} in
          Stack.push (v, k + 1) call;
          if index.(w) < 0 then begin
            visit w;
            Stack.push (w, off.{w}) call
          end
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
        end
        else begin
          if lowlink.(v) = index.(v) then begin
            let rec pop () =
              match !scc_stack with
              | w :: tail ->
                  scc_stack := tail;
                  on_stack.(w) <- false;
                  comp.(w) <- !ncomp;
                  if w <> v then pop ()
              | [] -> assert false
            in
            pop ();
            incr ncomp
          end;
          match Stack.top_opt call with
          | Some (u, _) -> lowlink.(u) <- min lowlink.(u) lowlink.(v)
          | None -> ()
        end
      done
    end
  done;
  (comp, !ncomp)

let build_frozen ?pool (fz : Graph.frozen) =
  let n = fz.Graph.f_nodes in
  let off = fz.Graph.f_fwd_off in
  let fin = fz.Graph.f_fwd_end in
  let adj = fz.Graph.f_fwd_dst in
  let comp, ncomp = compute_sccs n ~off ~fin ~adj in
  let creach = Array.init ncomp (fun _ -> Bits.create n) in
  let members = Array.make ncomp [] in
  for u = n - 1 downto 0 do
    members.(comp.(u)) <- u :: members.(comp.(u))
  done;
  (* Condensation levels: sinks at 0, otherwise one above the deepest
     successor component. Component ids are reverse topological, so an
     ascending-id sweep sees every successor's level already final. *)
  let level = Array.make ncomp 0 in
  let max_level = ref 0 in
  for c = 0 to ncomp - 1 do
    List.iter
      (fun u ->
        for k = off.{u} to fin.{u} - 1 do
          let cv = comp.(adj.{k}) in
          if cv <> c && level.(cv) + 1 > level.(c) then level.(c) <- level.(cv) + 1
        done)
      members.(c);
    if level.(c) > !max_level then max_level := level.(c)
  done;
  let by_level = Array.make (!max_level + 1) [] in
  for c = ncomp - 1 downto 0 do
    by_level.(level.(c)) <- c :: by_level.(level.(c))
  done;
  (* The closure of one component: its members plus the union of its
     successor components' (already complete) closures. [seen] dedupes
     successor components — the same component is typically entered through
     many edges. Unions are commutative and each call writes only
     [creach.(c)], so every component of one level can run concurrently. *)
  let close c =
    let bits = creach.(c) in
    let seen = Hashtbl.create 16 in
    List.iter
      (fun u ->
        Bits.set bits u;
        for k = off.{u} to fin.{u} - 1 do
          let cv = comp.(adj.{k}) in
          if cv <> c && not (Hashtbl.mem seen cv) then begin
            Hashtbl.add seen cv ();
            Bits.union_into ~dst:bits creach.(cv)
          end
        done)
      members.(c)
  in
  let pool = Option.value pool ~default:Pool.sequential in
  Array.iter
    (fun comps ->
      let comps = Array.of_list comps in
      Pool.parallel_for pool ~n:(Array.length comps) (fun i -> close comps.(i)))
    by_level;
  let csize = Array.make ncomp 0 in
  for u = 0 to n - 1 do
    csize.(comp.(u)) <- csize.(comp.(u)) + 1
  done;
  { n; built_at = fz.Graph.f_generation; comp; creach; csize }

let build ?pool g = build_frozen ?pool (Graph.freeze g)

(* Delta-aware maintenance. A reload patches a bounded set of CSR rows; the
   index only has to recompute closures downstream-of-change. Tarjan reruns
   over the new lanes (linear, tiny constant — it allocates nothing per
   edge), then a single ascending sweep classifies each new component:

   - {e dirty} if any member is in [touched] (an endpoint of an added or
     removed edge) or any successor component is dirty — reachability can
     only change along a path through a changed edge, and component ids are
     reverse topological, so the flag propagates in one pass;
   - {e clean} otherwise, additionally verified to have exactly the old
     component's member set (a membership change without a touched member or
     dirty successor is impossible, but the check is cheap and keeps the
     reuse unconditionally safe).

   Clean components reuse the old closure bitset {e by reference} (closure =
   members ∪ successor closures, all equal by induction); dirty ones are
   re-closed exactly like [build_frozen] does. Past [dirty_node_threshold]
   the sweep stops paying for itself and a full rebuild is cheaper. *)
let dirty_node_threshold = 0.25

let patch ?pool ~old ~touched (fz : Graph.frozen) =
  let n = fz.Graph.f_nodes in
  if n <> old.n then build_frozen ?pool fz
  else begin
    let off = fz.Graph.f_fwd_off in
    let fin = fz.Graph.f_fwd_end in
    let adj = fz.Graph.f_fwd_dst in
    let comp, ncomp = compute_sccs n ~off ~fin ~adj in
    let members = Array.make ncomp [] in
    for u = n - 1 downto 0 do
      members.(comp.(u)) <- u :: members.(comp.(u))
    done;
    let dirty = Array.make ncomp false in
    let dirty_nodes = ref 0 in
    for c = 0 to ncomp - 1 do
      let d = ref false in
      List.iter
        (fun u ->
          if Bits.mem touched u then d := true;
          for k = off.{u} to fin.{u} - 1 do
            let cv = comp.(adj.{k}) in
            if cv <> c && dirty.(cv) then d := true
          done)
        members.(c);
      if not !d then begin
        (* clean ⇒ member-set unchanged; verify against the old index *)
        match members.(c) with
        | [] -> ()
        | rep :: _ ->
            let oc = old.comp.(rep) in
            if
              old.csize.(oc) <> List.length members.(c)
              || List.exists (fun u -> old.comp.(u) <> oc) members.(c)
            then d := true
      end;
      if !d then begin
        dirty.(c) <- true;
        dirty_nodes := !dirty_nodes + List.length members.(c)
      end
    done;
    if float_of_int !dirty_nodes > dirty_node_threshold *. float_of_int n then
      build_frozen ?pool fz
    else begin
      let creach = Array.make ncomp [||] in
      for c = 0 to ncomp - 1 do
        if not dirty.(c) then
          creach.(c) <- old.creach.(old.comp.(List.hd members.(c)))
        else begin
          let bits = Bits.create n in
          let seen = Hashtbl.create 16 in
          List.iter
            (fun u ->
              Bits.set bits u;
              for k = off.{u} to fin.{u} - 1 do
                let cv = comp.(adj.{k}) in
                if cv <> c && not (Hashtbl.mem seen cv) then begin
                  Hashtbl.add seen cv ();
                  Bits.union_into ~dst:bits creach.(cv)
                end
              done)
            members.(c);
          creach.(c) <- bits
        end
      done;
      let csize = Array.make ncomp 0 in
      for u = 0 to n - 1 do
        csize.(comp.(u)) <- csize.(comp.(u)) + 1
      done;
      { n; built_at = fz.Graph.f_generation; comp; creach; csize }
    end
  end

let generation t = t.built_at

let node_count t = t.n

let scc_count t = Array.length t.creach

let components t = t.comp

(* Nodes the index has never seen (created after the build) are conservatively
   reported reachable: [mem] is a pruning oracle, and "don't prune" is the
   only safe answer for an unknown node. Engines avoid the situation entirely
   by rebuilding on generation change. *)
let mem t ~src ~target =
  if src < 0 || src >= t.n || target < 0 || target >= t.n then true
  else Bits.mem t.creach.(t.comp.(src)) target

let viable t ~target =
  if target < 0 || target >= t.n then fun _ -> true
  else
    let n = t.n and comp = t.comp and creach = t.creach in
    fun u -> u < 0 || u >= n || Bits.mem creach.(comp.(u)) target

(* The cone of a target, flipped component-wise: instead of a per-node
   closure probe (node -> component -> bitset-of-nodes), precompute the set
   of components that reach the target as a bitset over component ids. The
   search's viability check then costs two array loads and a mask — no
   closure call — and building the cone is O(SCCs), not O(nodes), because
   [csize] carries member counts. *)
type cone = {
  cone_comp : int array;  (* node -> component id (shared with the index) *)
  cone_bits : Bits.t;  (* component ids that reach the target *)
}

let cone t ~target =
  if target < 0 || target >= t.n then None
  else begin
    let ncomp = Array.length t.creach in
    let bits = Bits.create ncomp in
    let size = ref 0 in
    for c = 0 to ncomp - 1 do
      if Bits.mem t.creach.(c) target then begin
        Bits.set bits c;
        size := !size + t.csize.(c)
      end
    done;
    Some ({ cone_comp = t.comp; cone_bits = bits }, !size)
  end

let cone_viable cn =
  let comp = cn.cone_comp and bits = cn.cone_bits in
  let n = Array.length comp in
  fun u -> u < 0 || u >= n || Bits.mem bits comp.(u)

let cone_size t ~target =
  match cone t ~target with None -> t.n | Some (_, size) -> size

let reachable_count t ~src =
  if src < 0 || src >= t.n then t.n else Bits.count t.creach.(t.comp.(src))

(* ---------- persistence (see Serialize for the framed file format) ---------- *)

type dump = {
  d_version : int;
  d_n : int;
  d_built_at : int;
  d_comp : int array;
  d_creach : int array array;
}

let dump_version = 1

let dump t =
  {
    d_version = dump_version;
    d_n = t.n;
    d_built_at = t.built_at;
    d_comp = t.comp;
    d_creach = t.creach;
  }

let undump d =
  if d.d_version <> dump_version then
    invalid_arg
      (Printf.sprintf "Reach.undump: index format version %d, expected %d" d.d_version
         dump_version);
  (* [csize] is derivable, so the dump format (version 1) doesn't carry it. *)
  let ncomp = Array.length d.d_creach in
  let csize = Array.make ncomp 0 in
  Array.iter (fun c -> csize.(c) <- csize.(c) + 1) d.d_comp;
  { n = d.d_n; built_at = d.d_built_at; comp = d.d_comp; creach = d.d_creach; csize }
