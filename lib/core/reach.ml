(* Reachability index: for every node, the bitset of nodes it can reach.
   Built once per graph generation, it answers "can u ever reach tout?" in
   O(1), which lets the search restrict its frontier to the query's viable
   cone instead of the whole graph, and lets the query layer reject
   unsolvable (tin, tout) pairs without any BFS at all.

   Construction runs an iterative Tarjan SCC pass (the jungloid graph is
   cyclic: widening edges alone create cycles through shared supertypes),
   then a single bitset DP over the condensation. Tarjan emits components
   sinks-first, so every successor component of [c] has a smaller id and its
   closure is already final when [c] is processed. Bitsets are stored per
   component, not per node, which collapses the quadratic worst case on the
   highly cyclic real graphs. *)

module Bits = struct
  let word = Sys.int_size (* 63 on 64-bit platforms *)

  type t = int array

  let create n = Array.make ((n + word - 1) / word) 0

  let set (b : t) i = b.(i / word) <- b.(i / word) lor (1 lsl (i mod word))

  let mem (b : t) i = b.(i / word) land (1 lsl (i mod word)) <> 0

  let union_into ~(dst : t) (src : t) =
    for k = 0 to Array.length dst - 1 do
      dst.(k) <- dst.(k) lor src.(k)
    done

  let count (b : t) =
    let rec popcount x acc = if x = 0 then acc else popcount (x lsr 1) (acc + (x land 1)) in
    Array.fold_left (fun acc w -> popcount w acc) 0 b
end

type t = {
  n : int;  (* node count at build time *)
  built_at : int;  (* graph generation at build time *)
  comp : int array;  (* node -> component id, ids in reverse topological order *)
  creach : Bits.t array;  (* component -> bitset of reachable nodes *)
}

(* Iterative Tarjan: the explicit stack holds (node, unexplored successors);
   when a node's successor list is exhausted its lowlink flows to the parent
   beneath it, and a root pops its whole component. *)
let compute_sccs n succs =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let scc_stack = ref [] in
  let ncomp = ref 0 in
  let counter = ref 0 in
  let visit v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    scc_stack := v :: !scc_stack;
    on_stack.(v) <- true
  in
  let call = Stack.create () in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      visit root;
      Stack.push (root, succs root) call;
      while not (Stack.is_empty call) do
        let v, rest = Stack.pop call in
        match rest with
        | w :: rest' ->
            Stack.push (v, rest') call;
            if index.(w) < 0 then begin
              visit w;
              Stack.push (w, succs w) call
            end
            else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
        | [] ->
            if lowlink.(v) = index.(v) then begin
              let rec pop () =
                match !scc_stack with
                | w :: tail ->
                    scc_stack := tail;
                    on_stack.(w) <- false;
                    comp.(w) <- !ncomp;
                    if w <> v then pop ()
                | [] -> assert false
              in
              pop ();
              incr ncomp
            end;
            (match Stack.top_opt call with
            | Some (u, _) -> lowlink.(u) <- min lowlink.(u) lowlink.(v)
            | None -> ())
      done
    end
  done;
  (comp, !ncomp)

let build g =
  let n = Graph.node_count g in
  let succs u = List.map (fun e -> e.Graph.dst) (Graph.succs g u) in
  let comp, ncomp = compute_sccs n succs in
  let creach = Array.init ncomp (fun _ -> Bits.create n) in
  (* Component ids come out sinks-first, so a plain id-order sweep sees every
     successor component's closure already complete. [stamp] dedupes the
     successor components of the component under construction. *)
  let stamp = Array.make ncomp (-1) in
  let members = Array.make ncomp [] in
  for u = n - 1 downto 0 do
    members.(comp.(u)) <- u :: members.(comp.(u))
  done;
  for c = 0 to ncomp - 1 do
    let bits = creach.(c) in
    List.iter
      (fun u ->
        Bits.set bits u;
        List.iter
          (fun v ->
            let cv = comp.(v) in
            if cv <> c && stamp.(cv) <> c then begin
              stamp.(cv) <- c;
              Bits.union_into ~dst:bits creach.(cv)
            end)
          (succs u))
      members.(c)
  done;
  { n; built_at = Graph.generation g; comp; creach }

let generation t = t.built_at

let node_count t = t.n

let scc_count t = Array.length t.creach

(* Nodes the index has never seen (created after the build) are conservatively
   reported reachable: [mem] is a pruning oracle, and "don't prune" is the
   only safe answer for an unknown node. Engines avoid the situation entirely
   by rebuilding on generation change. *)
let mem t ~src ~target =
  if src < 0 || src >= t.n || target < 0 || target >= t.n then true
  else Bits.mem t.creach.(t.comp.(src)) target

let viable t ~target =
  if target < 0 || target >= t.n then fun _ -> true
  else
    let n = t.n and comp = t.comp and creach = t.creach in
    fun u -> u < 0 || u >= n || Bits.mem creach.(comp.(u)) target

let cone_size t ~target =
  if target < 0 || target >= t.n then t.n
  else begin
    let c = ref 0 in
    for u = 0 to t.n - 1 do
      if Bits.mem t.creach.(t.comp.(u)) target then incr c
    done;
    !c
  end

let reachable_count t ~src =
  if src < 0 || src >= t.n then t.n else Bits.count t.creach.(t.comp.(src))

(* ---------- persistence (see Serialize for the framed file format) ---------- *)

type dump = {
  d_version : int;
  d_n : int;
  d_built_at : int;
  d_comp : int array;
  d_creach : int array array;
}

let dump_version = 1

let dump t =
  {
    d_version = dump_version;
    d_n = t.n;
    d_built_at = t.built_at;
    d_comp = t.comp;
    d_creach = t.creach;
  }

let undump d =
  if d.d_version <> dump_version then
    invalid_arg
      (Printf.sprintf "Reach.undump: index format version %d, expected %d" d.d_version
         dump_version);
  { n = d.d_n; built_at = d.d_built_at; comp = d.d_comp; creach = d.d_creach }
