(** Precomputed reachability over the jungloid graph — the index behind
    reachability-pruned search.

    A query [(tin, tout)] only ever walks nodes that can still reach [tout];
    everything else is dead frontier. This module computes, once per graph
    {!Graph.generation}, the full reachability closure (an SCC condensation
    followed by one bitset DP), after which [can u reach tout?] is a single
    bit test. {!Search} consumes it through the [?viable] hook; {!Query}'s
    engine builds and rebuilds it transparently; {!Serialize} persists it
    next to the graph so a server restart skips the closure computation.

    Pruning with the {e exact} cone is result-preserving by construction:
    every path that ends at [tout] lies entirely inside the cone, so the
    pruned search enumerates exactly the same path set in exactly the same
    order ([test_reach.ml] checks this property on randomized graphs). *)

(** Compact bitsets over dense int ids ([Sys.int_size] bits per word).
    Exposed so hot loops ({!Search.Csr}, {!Shard}) can probe a {!cone}
    directly instead of going through a closure. *)
module Bits : sig
  type t = int array

  val word : int

  val create : int -> t
  (** [create n] — an all-zero bitset over ids [0 .. n-1]. *)

  val set : t -> int -> unit

  val mem : t -> int -> bool
end

type t

val build : ?pool:Prospector_parallel.Pool.t -> Graph.t -> t
(** O(nodes + edges + SCCs · nodes/word). The index describes the graph as
    of {!Graph.generation} at the time of the call; it never observes later
    mutations (callers rebuild, keyed on the generation). Equivalent to
    [build_frozen ?pool (Graph.freeze g)]. *)

val build_frozen : ?pool:Prospector_parallel.Pool.t -> Graph.frozen -> t
(** Build from an existing CSR snapshot (the engine already has one — no
    point freezing twice). With [?pool], the bitset DP over the SCC
    condensation fans out level by level: all components whose successors'
    closures are complete are closed concurrently, separated by a join per
    level. The result is bit-for-bit identical to the sequential build —
    each component writes only its own bitset and unions are commutative —
    so pool size never affects query results. *)

val patch :
  ?pool:Prospector_parallel.Pool.t -> old:t -> touched:Bits.t -> Graph.frozen -> t
(** Delta-aware maintenance after a reload: [patch ~old ~touched fz] indexes
    the patched snapshot [fz], recomputing only components with a path to a
    [touched] node (an endpoint of an added or removed edge, over node ids
    shared between [old] and [fz]) and reusing every other component's
    closure bitset from [old] by reference. Falls back to {!build_frozen}
    when the node count changed or the dirty set passes a fixed threshold
    (25% of nodes — past that the ascending sweep stops paying for itself).
    The result is bit-for-bit identical to [build_frozen fz]: same component
    numbering (Tarjan reruns over the new lanes either way) and same
    closures (clean components' member sets and successor closures are
    unchanged by construction, and verified). *)

val generation : t -> int
(** The graph generation the index was built against. *)

val node_count : t -> int

val scc_count : t -> int

val components : t -> int array
(** The node -> SCC id map (ids in reverse topological order — a
    component's successors all have smaller ids). Shared with the index;
    treat as read-only. {!Shard} uses it to run DPs over the condensation. *)

val mem : t -> src:Graph.node -> target:Graph.node -> bool
(** [mem t ~src ~target] — can [src] reach [target]? Nodes outside the
    indexed range (created after the build) are conservatively reported
    reachable, so a stale index can only under-prune, never drop results. *)

val viable : t -> target:Graph.node -> Graph.node -> bool
(** [viable t ~target] specialized as a predicate for {!Search}'s [?viable]
    argument; same conservative out-of-range behavior as {!mem}. *)

(** A target's reachability cone in probe form: bit [cone_comp.(u)] of
    [cone_bits] says whether [u] can reach the target. Two array loads and a
    mask per check — the allocation-free, closure-free viability test the
    CSR search inlines per relaxed edge. *)
type cone = {
  cone_comp : int array;  (** node -> SCC id; shared with the index *)
  cone_bits : Bits.t;  (** over SCC ids: components that reach the target *)
}

val cone : t -> target:Graph.node -> (cone * int) option
(** The cone of [target] together with its node count, in O(SCCs) — the
    member-count sum replaces the old O(nodes) sweep, which mattered once
    cones were built per query at 10^5+ nodes. [None] when [target] is
    outside the indexed range (the caller must then search unpruned). *)

val cone_viable : cone -> Graph.node -> bool
(** The cone as a predicate, for the list-based {!Search} functions' [?viable]
    hook; out-of-range nodes are conservatively viable, matching {!viable}. *)

val cone_size : t -> target:Graph.node -> int
(** Number of nodes that can reach [target] — the pruned search's whole
    world. The bench reports this against {!node_count} as the pruning
    ratio. *)

val reachable_count : t -> src:Graph.node -> int
(** Number of nodes reachable from [src]. *)

(** {2 Persistence} — used by {!Serialize.save_reach} /
    {!Serialize.load_reach}; the dump is a plain marshalable value. *)

type dump

val dump : t -> dump

val undump : dump -> t
(** @raise Invalid_argument on a format version mismatch. *)
