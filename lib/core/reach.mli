(** Precomputed reachability over the jungloid graph — the index behind
    reachability-pruned search.

    A query [(tin, tout)] only ever walks nodes that can still reach [tout];
    everything else is dead frontier. This module computes, once per graph
    {!Graph.generation}, the full reachability closure (an SCC condensation
    followed by one bitset DP), after which [can u reach tout?] is a single
    bit test. {!Search} consumes it through the [?viable] hook; {!Query}'s
    engine builds and rebuilds it transparently; {!Serialize} persists it
    next to the graph so a server restart skips the closure computation.

    Pruning with the {e exact} cone is result-preserving by construction:
    every path that ends at [tout] lies entirely inside the cone, so the
    pruned search enumerates exactly the same path set in exactly the same
    order ([test_reach.ml] checks this property on randomized graphs). *)

type t

val build : ?pool:Prospector_parallel.Pool.t -> Graph.t -> t
(** O(nodes + edges + SCCs · nodes/word). The index describes the graph as
    of {!Graph.generation} at the time of the call; it never observes later
    mutations (callers rebuild, keyed on the generation). Equivalent to
    [build_frozen ?pool (Graph.freeze g)]. *)

val build_frozen : ?pool:Prospector_parallel.Pool.t -> Graph.frozen -> t
(** Build from an existing CSR snapshot (the engine already has one — no
    point freezing twice). With [?pool], the bitset DP over the SCC
    condensation fans out level by level: all components whose successors'
    closures are complete are closed concurrently, separated by a join per
    level. The result is bit-for-bit identical to the sequential build —
    each component writes only its own bitset and unions are commutative —
    so pool size never affects query results. *)

val generation : t -> int
(** The graph generation the index was built against. *)

val node_count : t -> int

val scc_count : t -> int

val mem : t -> src:Graph.node -> target:Graph.node -> bool
(** [mem t ~src ~target] — can [src] reach [target]? Nodes outside the
    indexed range (created after the build) are conservatively reported
    reachable, so a stale index can only under-prune, never drop results. *)

val viable : t -> target:Graph.node -> Graph.node -> bool
(** [viable t ~target] specialized as a predicate for {!Search}'s [?viable]
    argument; same conservative out-of-range behavior as {!mem}. *)

val cone_size : t -> target:Graph.node -> int
(** Number of nodes that can reach [target] — the pruned search's whole
    world. The bench reports this against {!node_count} as the pruning
    ratio. *)

val reachable_count : t -> src:Graph.node -> int
(** Number of nodes reachable from [src]. *)

(** {2 Persistence} — used by {!Serialize.save_reach} /
    {!Serialize.load_reach}; the dump is a plain marshalable value. *)

type dump

val dump : t -> dump

val undump : dump -> t
(** @raise Invalid_argument on a format version mismatch. *)
