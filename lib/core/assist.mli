(** Content-assist integration (Sections 1 and 5).

    PROSPECTOR hooks the IDE's code completion: when the cursor sits on the
    right-hand side of [Type var = |] or [var = |], the declared type is the
    query output and the lexically visible variables supply the input types
    — the user never writes a query. This module reproduces that reduction:
    a {!context} is the set of visible variables plus the expected type, and
    {!suggest} returns insertion-ready suggestions, each naming the variable
    it consumes. *)

module Jtype = Javamodel.Jtype
module Hierarchy = Javamodel.Hierarchy

type context = {
  vars : (string * Jtype.t) list;  (** lexically visible variables, in scope order *)
  expected : Jtype.t;  (** the type required at the cursor *)
}

type suggestion = {
  title : string;  (** one-line menu entry, e.g. ["ep.getEditorInput()"] *)
  code : string;  (** full insertion text *)
  uses_var : string option;  (** input variable, [None] for void-input *)
  result : Query.result;
}

val suggest :
  ?settings:Query.settings ->
  ?engine:Query.engine ->
  ?frozen:Graph.frozen ->
  ?reach:Reach.t ->
  ?edge_cost:(Elem.t -> int) ->
  ?protocol_check:(Jungloid.t -> string list) ->
  ?graph:Graph.t ->
  hierarchy:Hierarchy.t ->
  context ->
  suggestion list
(** Ranked suggestions for the context, from one multi-source search (the
    implementation "runs all queries at once by using multiple starting
    points", Section 5). Variables whose type already widens to the expected
    type are suggested first, verbatim — no jungloid needed.

    When [?engine] is supplied, the multi-source search goes through its
    cache and reach index ({!Query.run_multi_cached}); the engine must have
    been built over the same [graph]/[hierarchy] pair (its own usage model
    serves [Mined]-ranking requests, its own checker [Warn]/[Filter]
    protocol requests). Without an engine, [?frozen]/[?reach]/[?edge_cost]/
    [?protocol_check] forward to {!Query.run_multi} — the server's
    lock-free read path runs assist on a published snapshot this way. *)
