(** Incremental model deltas: patch a frozen-CSR snapshot in place of a cold
    rebuild (the live-reload engine, DESIGN §9).

    A delta is an ordered list of {!op}s applied to a hierarchy copy
    (O(1) — {!Hierarchy.copy} shares persistent maps). The common
    live-edit shape — a class body changed, name and supertypes intact —
    takes a {e spliced} path: node ids stay stable (the hierarchy keeps
    its iteration order and no new type is interned), so only the CSR
    rows holding changed member-edge sequences are rewritten. Those rows
    are {e appended} into the snapshot's tail slack after claiming its
    [f_tail] token (compacting first if the slack is spent or the token
    already claimed); the O(nodes) offset/end lanes are copied with the
    rewritten rows repointed, and every data lane and node-side array is
    shared with the old snapshot by reference — safe under concurrent
    readers, which can never index the tail. Nothing on this path is
    O(edges). Everything else — class add/remove, supertype changes,
    newly referenced types, changed array-mention order, mined-example
    (enriched) snapshots — falls back to a full rebuild from the patched
    hierarchy.

    Both paths meet the same oracle, checked by {!frozen_equal}: the
    patched snapshot is logically identical — row for row — to a cold
    rebuild from the patched model. [f_generation] is excluded — it is
    bumped strictly monotonically past the old snapshot's so stale cache
    keys can never alias a reloaded world (a fresh build's node+edge
    count could collide) — as is physical row placement. *)

module Decl = Javamodel.Decl
module Member = Javamodel.Member
module Qname = Javamodel.Qname
module Hierarchy = Javamodel.Hierarchy

type op =
  | Add_class of Decl.t
  | Remove_class of Qname.t  (** [java.lang.Object] is not removable *)
  | Replace_class of Decl.t
  | Add_method of Qname.t * Member.meth  (** appended to the class body *)
  | Remove_method of Qname.t * string  (** drops every overload of the name *)

type error = {
  index : int;  (** position of the offending op in the delta *)
  op_name : string;
  subject : string;  (** the class or member the op addressed *)
  reason : string;
}

type mode =
  | Spliced  (** id-stable row append into tail slack; lanes shared *)
  | Rebuilt  (** full rebuild from the patched hierarchy *)

type patch = {
  p_frozen : Graph.frozen;
  p_hierarchy : Hierarchy.t;  (** the patched model (a copy; input untouched) *)
  p_touched : Reach.Bits.t;
      (** over the {e old} snapshot's node ids: endpoints of every added or
          removed edge (all nodes when [Rebuilt]) — the dirty set that
          scopes {!Reach} maintenance and cache invalidation *)
  p_touched_count : int;
  p_mode : mode;
  p_ops : int;
}

val op_name : op -> string

val op_subject : op -> string

val mode_string : mode -> string

val apply :
  ?config:Sig_graph.config ->
  ?wcost:(Elem.t -> int) ->
  hierarchy:Hierarchy.t ->
  frozen:Graph.frozen ->
  op list ->
  (patch, error list) result
(** Apply a delta. Ops validate and apply in order (later ops see earlier
    effects); validation is all-or-nothing but reports {e every} invalid op.
    [config] must be the one the snapshot was built with, and [wcost] the
    cost model its lanes were baked with (new edges are costed with it; when
    a corpus delta changes the model, {!Graph.rebake} the result). The
    inputs are never mutated. *)

val frozen_equal : Graph.frozen -> Graph.frozen -> bool
(** Logical row-wise equality ignoring [f_generation] and physical layout
    (row placement, tail slack) — the reload correctness oracle. *)
