(** Jungloid values: well-typed compositions of elementary jungloids
    (Definition 3).

    A jungloid is a unary expression [λx.e : input → output]. The [elems]
    list is ordered from the input end to the output end; composing them
    means feeding each elementary jungloid's output to the next one's
    input. *)

module Jtype = Javamodel.Jtype
module Hierarchy = Javamodel.Hierarchy

type t = {
  input : Jtype.t;  (** [Void] for zero-input jungloids *)
  elems : Elem.t list;  (** never empty *)
}

val make : input:Jtype.t -> Elem.t list -> t
(** @raise Invalid_argument on an empty elementary jungloid list. *)

val of_path : Graph.t -> Search.path -> t
(** Convert a search result; typestate nodes disappear (the elementary
    jungloids on the edges carry the declared types). *)

val of_frozen_path : Graph.frozen -> Search.path -> t
(** {!of_path} against a CSR snapshot (same conversion, no access to the
    mutable graph). *)

val input_type : t -> Jtype.t

val output_type : t -> Jtype.t

val length : t -> int
(** Number of non-widening elementary jungloids (the paper's jungloid
    length: widening has no syntax and is not counted). *)

val free_vars : t -> (string * Jtype.t) list
(** All unbound slots, in order of appearance. *)

val contains_downcast : t -> bool

val well_typed : Hierarchy.t -> t -> bool
(** Each composition point matches exactly (widening is explicit, so plain
    type equality); widening edges must go up the hierarchy and downcasts
    down (or across interfaces, which Java permits). *)

val to_expression : t -> string
(** Nested one-line rendering with the input as [x], e.g.
    ["dpreg.getDocumentProvider(x.getEditorInput())"]. Free variables appear
    by name. *)

val to_string : t -> string
(** Lambda rendering with the type, e.g.
    ["λx. x.getEditorInput() : IEditorPart -> IEditorInput"]. *)

val equal : t -> t -> bool

val compare : t -> t -> int
