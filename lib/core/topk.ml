(* Rank-aware best-first top-k path enumeration (the lazy alternative to
   [Search.enumerate] + [Rank.sort]).

   The exhaustive pipeline materializes every acyclic path within budget —
   up to [limit = 4096] — builds a [Jungloid.t] and a full [Rank.key] per
   path, sorts, and then throws away everything past [max_results]. Here
   the frontier of path *prefixes* lives in a binary min-heap ordered by an
   admissible priority

       f(prefix) = cost(prefix) + charge(prefix) + dist_to(head)

   where [dist_to] is the exact 0-1-BFS distance to the target and [charge]
   the free-variable charge accumulated so far. Both edge cost and charge
   are non-negative and [dist_to] is consistent (it satisfies the triangle
   inequality along every edge the search can take), so f never decreases
   along an expansion and completed paths pop with f equal to their final
   Rank length — in nondecreasing length order. Prefixes are stored in a
   shared-prefix arena of parent-pointer ints (one row per prefix, flat
   parallel arrays), so extending a path is O(1) and allocation-free: no
   [List.rev], no cons garbage, no per-prefix jungloid.

   Exactness of the tiebreaks: completed paths of one length are buffered
   until the heap minimum exceeds that length (then no more paths of that
   length can complete), sorted by the incrementally-maintained numeric
   tiebreaks (package crossings, output specificity, interior generality —
   each updated per appended edge with the same functions [Rank.key]
   applies to the finished jungloid), and only then resolved group by
   group: paths are materialized into jungloids — and rendered for the
   textual tiebreak — only for the numeric-tie groups the consumer actually
   reaches. Within a numeric-tie group the order is (text, source,
   DFS-lexicographic edge ordinals), which reproduces [Rank.sort]'s stable
   order over the DFS enumeration exactly: the DFS emits paths in
   (source asc, edge-ordinal lex) preorder, and complete paths are never
   prefixes of one another, so the lex comparison always finds a deciding
   ordinal. The net effect is byte-identical output to the exhaustive
   pipeline while touching ~k candidates instead of thousands. *)

module Jtype = Javamodel.Jtype
module Hierarchy = Javamodel.Hierarchy
module Qname = Javamodel.Qname

(* A growable int array — the building block of both the arena and the
   heap. Plain [int array] underneath: unboxed, cache-friendly. *)
module Ivec = struct
  type t = {
    mutable buf : int array;
    mutable len : int;
  }

  let create () = { buf = Array.make 64 0; len = 0 }

  let push v x =
    if v.len = Array.length v.buf then begin
      let buf' = Array.make (2 * Array.length v.buf) 0 in
      Array.blit v.buf 0 buf' 0 v.len;
      v.buf <- buf'
    end;
    v.buf.(v.len) <- x;
    v.len <- v.len + 1

  let get v i = v.buf.(i)
end

(* Binary min-heap over (priority, payload) int pairs in two parallel
   arrays. Pop order among equal priorities is unspecified but
   deterministic — the batch sort above it restores the exact rank order,
   so only the grouping by priority matters. *)
module Heap = struct
  type t = {
    mutable prio : int array;
    mutable payload : int array;
    mutable len : int;
  }

  let create () = { prio = Array.make 64 0; payload = Array.make 64 0; len = 0 }

  let length h = h.len

  let min_prio h = if h.len = 0 then max_int else h.prio.(0)

  let swap h i j =
    let p = h.prio.(i) and x = h.payload.(i) in
    h.prio.(i) <- h.prio.(j);
    h.payload.(i) <- h.payload.(j);
    h.prio.(j) <- p;
    h.payload.(j) <- x

  let add h ~prio x =
    if h.len = Array.length h.prio then begin
      let cap = 2 * h.len in
      let prio' = Array.make cap 0 and payload' = Array.make cap 0 in
      Array.blit h.prio 0 prio' 0 h.len;
      Array.blit h.payload 0 payload' 0 h.len;
      h.prio <- prio';
      h.payload <- payload'
    end;
    h.prio.(h.len) <- prio;
    h.payload.(h.len) <- x;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && h.prio.((!i - 1) / 2) > h.prio.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    assert (h.len > 0);
    let x = h.payload.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.prio.(0) <- h.prio.(h.len);
      h.payload.(0) <- h.payload.(h.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < h.len && h.prio.(l) < h.prio.(!m) then m := l;
        if r < h.len && h.prio.(r) < h.prio.(!m) then m := r;
        if !m = !i then continue := false
        else begin
          swap h !i !m;
          i := !m
        end
      done
    end;
    x
end

(* The shared-prefix arena: row [i] is a path prefix, [parents.(i)] its
   one-shorter prefix (-1 for a root), [edges.(i)] the appended edge and
   [ords.(i)] that edge's ordinal in its source's adjacency row (the
   DFS-lexicographic coordinate). Reconstruction walks the parent chain —
   paths share storage with every sibling that branched off them. *)
module Arena = struct
  type t = {
    parents : Ivec.t;
    ords : Ivec.t;
    nodes : Ivec.t;
    mutable edges : Graph.edge option array;
  }

  let create () =
    {
      parents = Ivec.create ();
      ords = Ivec.create ();
      nodes = Ivec.create ();
      edges = Array.make 64 None;
    }

  let size a = a.parents.Ivec.len

  let ensure_edge a id =
    if id >= Array.length a.edges then begin
      let edges' = Array.make (2 * Array.length a.edges) None in
      Array.blit a.edges 0 edges' 0 (Array.length a.edges);
      a.edges <- edges'
    end

  let add_root a node =
    let id = size a in
    Ivec.push a.parents (-1);
    Ivec.push a.ords (-1);
    Ivec.push a.nodes node;
    ensure_edge a id;
    a.edges.(id) <- None;
    id

  let append a ~parent ~ord (e : Graph.edge) =
    let id = size a in
    Ivec.push a.parents parent;
    Ivec.push a.ords ord;
    Ivec.push a.nodes e.Graph.dst;
    ensure_edge a id;
    a.edges.(id) <- Some e;
    id

  let node a id = Ivec.get a.nodes id

  let parent a id = Ivec.get a.parents id

  (* Acyclicity check: is [v] anywhere on the prefix ending at [id]? The
     chain walk replaces the DFS's [on_path] bit array — prefixes on the
     heap are not nested, so no single boolean array can describe them. *)
  let on_path a id v =
    let rec go id = id >= 0 && (node a id = v || go (parent a id)) in
    go id

  let path a id =
    let rec go id acc =
      let p = parent a id in
      if p < 0 then { Search.source = node a id; edges = acc }
      else
        match a.edges.(id) with
        | Some e -> go p (e :: acc)
        | None -> assert false
    in
    go id []

  (* Edge ordinals from the root outward — the DFS-lexicographic
     coordinates of the path. *)
  let ords_of a id =
    let rec depth id acc = if parent a id < 0 then acc else depth (parent a id) (acc + 1) in
    let n = depth id 0 in
    let arr = Array.make n (-1) in
    let rec fill id i =
      if parent a id >= 0 then begin
        arr.(i) <- Ivec.get a.ords id;
        fill (parent a id) (i - 1)
      end
    in
    fill id (n - 1);
    arr
end

type candidate = {
  cand_path : Search.path;
  cand_jungloid : Jungloid.t;
  cand_key : Rank.key;
}

(* Per-domain, epoch-stamped memo of per-edge rank contributions, keyed by
   the CSR edge index. The *allocation* is what gets reused across queries
   (three [Array.make edge_slots] per query is 24 MB/query at 10^6 edges);
   the *contents* are not — charge depends on the query's free-variable
   estimator and package ids on the query's intern table — so every
   [start] bumps the epoch, invalidating all previous entries at once. *)
type memo = {
  mutable mcharge : int array;
  mutable mpkg : int array;  (* -1 no package; >= 0 interned id *)
  mutable mdepth : int array;  (* -1 widening; >= 0 output depth *)
  mutable mstamp : int array;  (* entry live iff = mepoch *)
  mutable mepoch : int;
}

module Memo = struct
  type t = memo

  let create () =
    { mcharge = [||]; mpkg = [||]; mdepth = [||]; mstamp = [||]; mepoch = 0 }

  let key = Domain.DLS.new_key create

  let domain () = Domain.DLS.get key

  let ready t ~slots =
    if Array.length t.mstamp < slots then begin
      let cap = max slots (2 * Array.length t.mstamp) in
      t.mcharge <- Array.make cap 0;
      t.mpkg <- Array.make cap 0;
      t.mdepth <- Array.make cap 0;
      t.mstamp <- Array.make cap 0;
      t.mepoch <- 0
    end;
    if t.mepoch = max_int then begin
      Array.fill t.mstamp 0 (Array.length t.mstamp) 0;
      t.mepoch <- 0
    end;
    t.mepoch <- t.mepoch + 1
end

(* Mined (usage-weighted) mode. The heap priority becomes

       f_w(prefix) = wcost(prefix) + cost_scale*charge(prefix) + wdist_to(head)

   with [wdist_to] the exact weighted Dijkstra distance to the target —
   consistent for the same reason the 0-1 distances are, so completed paths
   pop in nondecreasing weighted total. The *budget prune* stays on the
   paper cost (see [expand]): the candidate set must be byte-identical to
   the exhaustive enumeration, which budgets on paper cost regardless of
   ranking mode; only the emission order changes. *)
type weighted_mode = {
  wdist_to : Search.Dist.t;
  edge_wcost : int -> Graph.edge -> int;
      (** ordinal + edge -> learned cost; the CSR backend reads the baked
          [f_fwd_wcost] by ordinal, the list backend applies the model to
          the elem *)
}

type t = {
  arena : Arena.t;
  heap : Heap.t;
  (* Per-prefix incremental rank state, aligned with arena rows. Values
     are stored already gated by the weights (a disabled tiebreak stays 0
     everywhere), so the batch sort sees exactly what [Rank.key] would
     compute for the finished jungloid. *)
  m_cost : Ivec.t;  (* sum of edge costs *)
  m_wcost : Ivec.t;  (* sum of weighted edge costs (0 in paper mode) *)
  m_charge : Ivec.t;  (* free-variable charge so far *)
  m_cross : Ivec.t;  (* package crossings so far *)
  m_lastpkg : Ivec.t;  (* interned id of the last package seen; -1 none *)
  m_spec : Ivec.t;  (* depth of the last non-widening output (or input) *)
  m_interior : Ivec.t;  (* summed depth of non-widening outputs *)
  m_budget : Ivec.t;  (* per-source cost budget, inherited from the root *)
  (* Per-edge memo of the rank contributions, keyed by the CSR edge index
     (the ordinal [iter_succs] reports); [None] recomputes per traversal.
     See {!Memo}. *)
  memo : memo option;
  pkg_ids : (string, int) Hashtbl.t;
  mutable pkg_next : int;
  (* Search parameters. *)
  weights : Rank.weights;
  hierarchy : Hierarchy.t;
  freevar_cost_of : (Jtype.t -> int) option;
  node_type : Graph.node -> Jtype.t;
  iter_succs : Graph.node -> (int -> Graph.edge -> unit) -> unit;
  materialize : Search.path -> Jungloid.t;
  dist_to : Search.Dist.t;
  weighted : weighted_mode option;
  target : Graph.node;
  limit : int;
  (* Completion staging: [pending] holds completed arena rows of length
     [pending_len] until that length is certified complete; [groups] are
     the numeric-tie groups of the certified batch awaiting lazy
     resolution; [emit] is the fully-ordered current group. *)
  mutable pending : int list;
  mutable pending_len : int;
  mutable groups : int array list;
  mutable emit : candidate list;
  mutable completed : int;
  mutable materialized_n : int;
  mutable truncated_f : bool;
  mutable stopped : bool;
}

let intern st pkg =
  match Hashtbl.find_opt st.pkg_ids pkg with
  | Some id -> id
  | None ->
      let id = st.pkg_next in
      st.pkg_next <- id + 1;
      Hashtbl.add st.pkg_ids pkg id;
      id

let compute_charge st (e : Graph.edge) =
  List.fold_left
    (fun acc (_, ty) ->
      if Jtype.is_reference ty then
        acc
        +
        match st.freevar_cost_of with
        | None -> st.weights.Rank.freevar_cost
        | Some cost_of -> cost_of ty
      else acc)
    0
    (Elem.free_vars e.Graph.elem)

let compute_pkg st (e : Graph.edge) =
  match Elem.owner_package e.Graph.elem with
  | None -> -1
  | Some p -> intern st p

let compute_depth st (e : Graph.edge) =
  if Elem.is_widen e.Graph.elem then -1
  else Rank.type_depth st.hierarchy (Elem.output_type e.Graph.elem)

(* One stamp covers all three memo lanes: the first accessor to touch an
   edge this query fills charge, package and depth together (each is a few
   loads — cheaper than three stamp disciplines). Package interning only
   ever feeds equality comparisons, so interning an id the current weights
   would not have asked for is harmless. *)
let memo_fill st (m : memo) ord (e : Graph.edge) =
  m.mcharge.(ord) <- compute_charge st e;
  m.mpkg.(ord) <- compute_pkg st e;
  m.mdepth.(ord) <- compute_depth st e;
  m.mstamp.(ord) <- m.mepoch

let edge_charge st ord (e : Graph.edge) =
  match st.memo with
  | Some m when ord >= 0 && ord < Array.length m.mstamp ->
      if m.mstamp.(ord) <> m.mepoch then memo_fill st m ord e;
      m.mcharge.(ord)
  | _ -> compute_charge st e

let edge_pkg st ord (e : Graph.edge) =
  match st.memo with
  | Some m when ord >= 0 && ord < Array.length m.mstamp ->
      if m.mstamp.(ord) <> m.mepoch then memo_fill st m ord e;
      m.mpkg.(ord)
  | _ -> compute_pkg st e

let edge_depth st ord (e : Graph.edge) =
  match st.memo with
  | Some m when ord >= 0 && ord < Array.length m.mstamp ->
      if m.mstamp.(ord) <> m.mepoch then memo_fill st m ord e;
      m.mdepth.(ord)
  | _ -> compute_depth st e

let add_root st node budget =
  let id = Arena.add_root st.arena node in
  Ivec.push st.m_cost 0;
  Ivec.push st.m_wcost 0;
  Ivec.push st.m_charge 0;
  Ivec.push st.m_cross 0;
  Ivec.push st.m_lastpkg
    (if st.weights.Rank.package_tiebreak then
       match st.node_type node with
       | Jtype.Ref q -> intern st (Qname.package_string q)
       | _ -> -1
     else -1);
  Ivec.push st.m_spec
    (if st.weights.Rank.generality_tiebreak then
       Rank.type_depth st.hierarchy (st.node_type node)
     else 0);
  Ivec.push st.m_interior 0;
  Ivec.push st.m_budget budget;
  let prio =
    match st.weighted with
    | None -> Search.Dist.get st.dist_to node
    | Some w -> Search.Dist.get w.wdist_to node
  in
  Heap.add st.heap ~prio id

let append st parent ord (e : Graph.edge) =
  let id = Arena.append st.arena ~parent ~ord e in
  let cost = Ivec.get st.m_cost parent + Elem.cost e.Graph.elem in
  let wcost =
    match st.weighted with
    | None -> 0
    | Some w -> Ivec.get st.m_wcost parent + w.edge_wcost ord e
  in
  let charge = Ivec.get st.m_charge parent + edge_charge st ord e in
  Ivec.push st.m_cost cost;
  Ivec.push st.m_wcost wcost;
  Ivec.push st.m_charge charge;
  (if st.weights.Rank.package_tiebreak then begin
     let pkg = edge_pkg st ord e in
     let last = Ivec.get st.m_lastpkg parent in
     if pkg >= 0 then begin
       Ivec.push st.m_cross
         (Ivec.get st.m_cross parent + if last >= 0 && last <> pkg then 1 else 0);
       Ivec.push st.m_lastpkg pkg
     end
     else begin
       Ivec.push st.m_cross (Ivec.get st.m_cross parent);
       Ivec.push st.m_lastpkg last
     end
   end
   else begin
     Ivec.push st.m_cross 0;
     Ivec.push st.m_lastpkg (-1)
   end);
  (if st.weights.Rank.generality_tiebreak then begin
     let d = edge_depth st ord e in
     if d >= 0 then begin
       Ivec.push st.m_spec d;
       Ivec.push st.m_interior (Ivec.get st.m_interior parent + d)
     end
     else begin
       Ivec.push st.m_spec (Ivec.get st.m_spec parent);
       Ivec.push st.m_interior (Ivec.get st.m_interior parent)
     end
   end
   else begin
     Ivec.push st.m_spec 0;
     Ivec.push st.m_interior 0
   end);
  Ivec.push st.m_budget (Ivec.get st.m_budget parent);
  let prio =
    match st.weighted with
    | None -> cost + charge + Search.Dist.get st.dist_to e.Graph.dst
    | Some w ->
        wcost + (Elem.cost_scale * charge) + Search.Dist.get w.wdist_to e.Graph.dst
  in
  Heap.add st.heap ~prio id

(* Expansion mirrors the DFS push guard exactly: skip nodes already on the
   chain, unreachable nodes, and extensions whose optimistic total cost
   exceeds the root's budget. The budget is on *cost* alone (as in the
   DFS), not cost + charge. *)
let expand st id =
  let u = Arena.node st.arena id in
  let cost = Ivec.get st.m_cost id in
  let budget = Ivec.get st.m_budget id in
  st.iter_succs u (fun ord e ->
      let v = e.Graph.dst in
      let dv = Search.Dist.get st.dist_to v in
      if
        dv < max_int
        && cost + Elem.cost e.Graph.elem + dv <= budget
        && not (Arena.on_path st.arena id v)
      then append st id ord e)

let cmp_ords (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  let n = min la lb in
  let rec go i =
    if i = n then compare la lb
    else
      let c = compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(* Move the pending batch — every completed path of priority [pending_len] —
   into numeric-tie groups. In paper mode the batch shares its length, so
   the sort key is the gated (crossings, specificity, interior) triple; in
   weighted mode it shares only the weighted total, so the paper length
   (cost + charge) is compared first — which is a no-op for paper batches.
   Nothing is materialized yet. *)
let flush_pending st =
  let length id = Ivec.get st.m_cost id + Ivec.get st.m_charge id in
  let arr = Array.of_list (List.rev st.pending) in
  st.pending <- [];
  Array.sort
    (fun a b ->
      match compare (length a) (length b) with
      | 0 -> (
          match compare (Ivec.get st.m_cross a) (Ivec.get st.m_cross b) with
          | 0 -> (
              match compare (Ivec.get st.m_spec a) (Ivec.get st.m_spec b) with
              | 0 -> compare (Ivec.get st.m_interior a) (Ivec.get st.m_interior b)
              | c -> c)
          | c -> c)
      | c -> c)
    arr;
  let groups = ref [] in
  let n = Array.length arr in
  let i = ref 0 in
  while !i < n do
    let j = ref (!i + 1) in
    while
      !j < n
      && length arr.(!i) = length arr.(!j)
      && Ivec.get st.m_cross arr.(!i) = Ivec.get st.m_cross arr.(!j)
      && Ivec.get st.m_spec arr.(!i) = Ivec.get st.m_spec arr.(!j)
      && Ivec.get st.m_interior arr.(!i) = Ivec.get st.m_interior arr.(!j)
    do
      incr j
    done;
    groups := Array.sub arr !i (!j - !i) :: !groups;
    i := !j
  done;
  st.groups <- List.rev !groups

(* Resolve one numeric-tie group: only here are paths materialized into
   jungloids (counted — this is the laziness the bench measures) and
   rendered for the textual tiebreak. *)
let resolve_group st ids =
  let members =
    Array.map
      (fun id ->
        let p = Arena.path st.arena id in
        let j = st.materialize p in
        st.materialized_n <- st.materialized_n + 1;
        let weighted =
          match st.weighted with
          | None -> 0
          | Some _ ->
              Ivec.get st.m_wcost id + (Elem.cost_scale * Ivec.get st.m_charge id)
        in
        let key =
          {
            Rank.weighted;
            length = Ivec.get st.m_cost id + Ivec.get st.m_charge id;
            crossings = Ivec.get st.m_cross id;
            specificity = Ivec.get st.m_spec id;
            interior = Ivec.get st.m_interior id;
            tie = j;
          }
        in
        ( Jungloid.to_string j,
          p.Search.source,
          Arena.ords_of st.arena id,
          { cand_path = p; cand_jungloid = j; cand_key = key } ))
      ids
  in
  Array.sort
    (fun (ta, sa, oa, _) (tb, sb, ob, _) ->
      match compare (ta : string) tb with
      | 0 -> (
          match compare (sa : int) sb with 0 -> cmp_ords oa ob | c -> c)
      | c -> c)
    members;
  Array.to_list (Array.map (fun (_, _, _, c) -> c) members)

(* The driver: make [emit] non-empty or prove the search exhausted. Work
   is strictly consumer-paced — the heap is popped only while no resolved
   candidate is waiting. *)
let rec refill st =
  match st.emit with
  | _ :: _ -> true
  | [] -> (
      match st.groups with
      | g :: rest ->
          st.groups <- rest;
          st.emit <- resolve_group st g;
          refill st
      | [] ->
          let exhausted = st.stopped || Heap.length st.heap = 0 in
          if st.pending <> [] && (exhausted || Heap.min_prio st.heap > st.pending_len)
          then begin
            flush_pending st;
            refill st
          end
          else if exhausted then false
          else begin
            let f = Heap.min_prio st.heap in
            let id = Heap.pop st.heap in
            let u = Arena.node st.arena id in
            if u = st.target && Arena.parent st.arena id >= 0 then begin
              (* A completed (or dead: pure-widening, cost-0) path. Like
                 the DFS, never extend a non-empty path at the target —
                 every continuation would have to revisit it. *)
              if Ivec.get st.m_cost id > 0 then begin
                if st.completed >= st.limit then begin
                  st.truncated_f <- true;
                  st.stopped <- true
                end
                else begin
                  st.completed <- st.completed + 1;
                  if st.pending = [] then st.pending_len <- f;
                  st.pending <- id :: st.pending
                end
              end
            end
            else expand st id;
            refill st
          end)

let next st =
  if refill st then (
    match st.emit with
    | c :: rest ->
        st.emit <- rest;
        Some c
    | [] -> assert false)
  else None

let materialized st = st.materialized_n

let truncated st = st.truncated_f

let start ?freevar_cost_of ?weighted ?memo ~weights ~hierarchy ~node_type
    ~iter_succs ~edge_slots ~materialize ~dist_to ~sources ~target ~limit () =
  let memo =
    match memo with
    | Some m when edge_slots > 0 ->
        Memo.ready m ~slots:edge_slots;
        Some m
    | _ -> None
  in
  let st =
    {
      arena = Arena.create ();
      heap = Heap.create ();
      m_cost = Ivec.create ();
      m_wcost = Ivec.create ();
      m_charge = Ivec.create ();
      m_cross = Ivec.create ();
      m_lastpkg = Ivec.create ();
      m_spec = Ivec.create ();
      m_interior = Ivec.create ();
      m_budget = Ivec.create ();
      memo;
      pkg_ids = Hashtbl.create 64;
      pkg_next = 0;
      weights;
      hierarchy;
      freevar_cost_of;
      node_type;
      iter_succs;
      materialize;
      dist_to;
      weighted;
      target;
      limit;
      pending = [];
      pending_len = 0;
      groups = [];
      emit = [];
      completed = 0;
      materialized_n = 0;
      truncated_f = false;
      stopped = false;
    }
  in
  List.iter
    (fun (node, budget) ->
      if Search.Dist.get dist_to node < max_int then add_root st node budget)
    (List.sort_uniq compare sources);
  st
