(** Path search over the jungloid graph (Section 3.1, Section 5).

    Edge costs follow the ranking length: widening edges cost 0 (they have
    no syntax), every other elementary jungloid costs 1. The engine first
    computes the shortest cost [m] with a 0-1 BFS, then enumerates {e all}
    acyclic paths of cost at most [m + slack] ([slack = 1] reproduces the
    paper's configuration) with an admissible prune on the remaining
    distance to the target. A multi-source search — the content-assist mode
    that runs one query per visible variable "all at once" — costs about the
    same as a single query. *)

type path = {
  source : Graph.node;
  edges : Graph.edge list;  (** in order from source to target *)
}

val distances_to : ?viable:(Graph.node -> bool) -> Graph.t -> target:Graph.node -> int array
(** Cost of the cheapest path from each node to [target]; [max_int] when
    unreachable.

    The [?viable] argument of every function here is a pruning oracle,
    normally {!Reach.viable} for the query's target: nodes it rejects are
    never entered, shrinking the BFS frontier to the target's reachability
    cone. With the exact cone the prune is result-preserving — every path
    that reaches the target lies inside the cone — so all distances and
    enumerations relevant to the target are unchanged. *)

val distances_from :
  ?viable:(Graph.node -> bool) -> Graph.t -> sources:Graph.node list -> int array
(** Cost of the cheapest path from the nearest source to each node. *)

val weighted_distances_to :
  ?viable:(Graph.node -> bool) ->
  Graph.t ->
  target:Graph.node ->
  cost:(Elem.t -> int) ->
  int array
(** Exact cheapest weighted cost from each node to [target] under the given
    non-negative edge-cost model (Dijkstra); [max_int] when unreachable.
    Used as the admissible heuristic of weighted best-first search: exact
    distances satisfy the triangle inequality, so the resulting priority is
    consistent. *)

val shortest_cost :
  ?viable:(Graph.node -> bool) ->
  Graph.t ->
  sources:Graph.node list ->
  target:Graph.node ->
  int option
(** [None] when the target is unreachable from every source. *)

val enumerate :
  Graph.t ->
  sources:Graph.node list ->
  target:Graph.node ->
  ?slack:int ->
  ?limit:int ->
  ?viable:(Graph.node -> bool) ->
  ?truncated:bool ref ->
  unit ->
  path list
(** All acyclic paths from any source to [target] of cost at most
    [shortest + slack] (default [slack = 1]), up to [limit] paths (default
    4096). Returns [[]] when unreachable. Paths of cost 0 (pure widening,
    or an empty path when a source equals the target) are excluded: they
    contain no code.

    [?truncated] is set to [true] (never cleared — callers may share one
    flag across searches) when the enumeration stopped at [limit], i.e. the
    returned list may be missing paths. The check is conservative: exactly
    [limit] paths also raises the flag. *)

val enumerate_per_source :
  Graph.t ->
  sources:Graph.node list ->
  target:Graph.node ->
  ?slack:int ->
  ?limit:int ->
  ?viable:(Graph.node -> bool) ->
  ?truncated:bool ref ->
  unit ->
  path list
(** Content-assist semantics: conceptually one query {e per} source, so each
    source's paths are bounded by that source's own shortest cost plus
    [slack] (a cheap [void] construction must not suppress a longer
    solution from a visible variable). The backward BFS is shared, keeping
    the cost close to a single query — the paper's "multiple starting
    points" implementation note. *)

val path_cost : path -> int
(** Sum of the edge costs (widening free). *)

(** {2 CSR variants}

    The same five entry points over a {!Graph.frozen} snapshot. The 0-1 BFS
    runs on the flat offset/cost arrays with an int-packed circular deque
    (no per-relaxation allocation) and the path DFS iterates CSR rows
    instead of cons lists. Because {!Graph.freeze} preserves adjacency
    order, each function returns {e exactly} what its list counterpart
    returns on the graph the snapshot was taken from — the determinism suite
    ([test_parallel.ml]) and the engine equivalence suite ([test_cache.ml])
    both pin this.

    These functions never touch the originating mutable graph, so they are
    safe to call from many domains sharing one snapshot. *)

module Csr : sig
  val distances_to :
    ?viable:(Graph.node -> bool) -> Graph.frozen -> target:Graph.node -> int array

  val distances_from :
    ?viable:(Graph.node -> bool) -> Graph.frozen -> sources:Graph.node list -> int array

  val weighted_distances_to :
    ?viable:(Graph.node -> bool) -> Graph.frozen -> target:Graph.node -> int array
  (** Like {!Search.weighted_distances_to}, but the cost model is the one
      baked into the snapshot's [f_bwd_wcost] at freeze time. *)

  val shortest_cost :
    ?viable:(Graph.node -> bool) ->
    Graph.frozen ->
    sources:Graph.node list ->
    target:Graph.node ->
    int option

  val enumerate :
    Graph.frozen ->
    sources:Graph.node list ->
    target:Graph.node ->
    ?slack:int ->
    ?limit:int ->
    ?viable:(Graph.node -> bool) ->
    ?truncated:bool ref ->
    unit ->
    path list

  val enumerate_per_source :
    Graph.frozen ->
    sources:Graph.node list ->
    target:Graph.node ->
    ?slack:int ->
    ?limit:int ->
    ?viable:(Graph.node -> bool) ->
    ?truncated:bool ref ->
    unit ->
    path list
end
