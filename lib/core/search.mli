(** Path search over the jungloid graph (Section 3.1, Section 5).

    Edge costs follow the ranking length: widening edges cost 0 (they have
    no syntax), every other elementary jungloid costs 1. The engine first
    computes the shortest cost [m] with a 0-1 BFS, then enumerates {e all}
    acyclic paths of cost at most [m + slack] ([slack = 1] reproduces the
    paper's configuration) with an admissible prune on the remaining
    distance to the target. A multi-source search — the content-assist mode
    that runs one query per visible variable "all at once" — costs about the
    same as a single query. *)

type path = {
  source : Graph.node;
  edges : Graph.edge list;  (** in order from source to target *)
}

(** {2 Epoch-stamped distances and per-domain scratch}

    At 10^5–10^6 nodes, a per-query [Array.make n max_int] dominates the
    cheap queries. The CSR search therefore writes distances into recycled
    per-domain lanes, invalidated wholesale by bumping an epoch — no O(n)
    allocation or clearing between queries. {!Dist.t} is the read side:
    entries whose stamp doesn't match the epoch read as [max_int]. *)

module Dist : sig
  type t = {
    d : int array;  (** capacity may exceed the graph's node count *)
    stamp : int array;  (** entry [u] is live iff [stamp.(u) = epoch] *)
    epoch : int;  (** [0] = plain array, every entry live *)
  }

  val of_array : int array -> t
  (** Wrap a fully-initialized distance array (the list-based API's
      result); reads never consult stamps. *)

  val get : t -> int -> int
  (** Distance of a node; [max_int] when unreached, stale, or out of
      range. *)

  val snapshot : n:int -> t -> int array
  (** Materialize entries [0..n-1] as a plain array ([max_int] for
      unreached) — for tests and callers that outlive the scratch frame. *)
end

module Scratch : sig
  type lane = {
    mutable ld : int array;
    mutable lstamp : int array;
    mutable lepoch : int;
  }

  type t

  val create : unit -> t

  val domain : unit -> t
  (** This domain's scratch (domain-local storage). Lanes are recycled per
      domain, so a {!Dist.t} produced under scratch must not be read from
      another domain or after the frame ends. *)

  val with_frame : t -> (unit -> 'a) -> 'a
  (** Run a query body; lanes taken inside return to the pool when the
      {e outermost} frame ends (frames nest safely — an inner query cannot
      recycle its caller's live lanes). *)

  val take : t -> int -> lane
  (** A lane with capacity for [n] nodes and a freshly bumped epoch (all
      previous contents invalid). Inside a frame, recycled; outside any
      frame, a fresh one-shot lane that is safe to let escape. *)

  val oneshot : int -> lane
  (** A fresh untracked lane (epoch 1, nothing live). *)
end

val distances_to : ?viable:(Graph.node -> bool) -> Graph.t -> target:Graph.node -> int array
(** Cost of the cheapest path from each node to [target]; [max_int] when
    unreachable.

    The [?viable] argument of every function here is a pruning oracle,
    normally {!Reach.viable} for the query's target: nodes it rejects are
    never entered, shrinking the BFS frontier to the target's reachability
    cone. With the exact cone the prune is result-preserving — every path
    that reaches the target lies inside the cone — so all distances and
    enumerations relevant to the target are unchanged. *)

val distances_from :
  ?viable:(Graph.node -> bool) -> Graph.t -> sources:Graph.node list -> int array
(** Cost of the cheapest path from the nearest source to each node. *)

val weighted_distances_to :
  ?viable:(Graph.node -> bool) ->
  Graph.t ->
  target:Graph.node ->
  cost:(Elem.t -> int) ->
  int array
(** Exact cheapest weighted cost from each node to [target] under the given
    non-negative edge-cost model (Dijkstra); [max_int] when unreachable.
    Used as the admissible heuristic of weighted best-first search: exact
    distances satisfy the triangle inequality, so the resulting priority is
    consistent. *)

val shortest_cost :
  ?viable:(Graph.node -> bool) ->
  Graph.t ->
  sources:Graph.node list ->
  target:Graph.node ->
  int option
(** [None] when the target is unreachable from every source. *)

val enumerate :
  Graph.t ->
  sources:Graph.node list ->
  target:Graph.node ->
  ?slack:int ->
  ?limit:int ->
  ?viable:(Graph.node -> bool) ->
  ?truncated:bool ref ->
  unit ->
  path list
(** All acyclic paths from any source to [target] of cost at most
    [shortest + slack] (default [slack = 1]), up to [limit] paths (default
    4096). Returns [[]] when unreachable. Paths of cost 0 (pure widening,
    or an empty path when a source equals the target) are excluded: they
    contain no code.

    [?truncated] is set to [true] (never cleared — callers may share one
    flag across searches) when the enumeration stopped at [limit], i.e. the
    returned list may be missing paths. The check is conservative: exactly
    [limit] paths also raises the flag. *)

val enumerate_per_source :
  Graph.t ->
  sources:Graph.node list ->
  target:Graph.node ->
  ?slack:int ->
  ?limit:int ->
  ?viable:(Graph.node -> bool) ->
  ?truncated:bool ref ->
  unit ->
  path list
(** Content-assist semantics: conceptually one query {e per} source, so each
    source's paths are bounded by that source's own shortest cost plus
    [slack] (a cheap [void] construction must not suppress a longer
    solution from a visible variable). The backward BFS is shared, keeping
    the cost close to a single query — the paper's "multiple starting
    points" implementation note. *)

val path_cost : path -> int
(** Sum of the edge costs (widening free). *)

(** {2 CSR variants}

    The same five entry points over a {!Graph.frozen} snapshot, built for
    scale: the 0-1 BFS runs over the out-of-heap offset/cost lanes with an
    int-packed circular deque, distances land in epoch-stamped scratch
    (pass [?scratch] — usually {!Scratch.domain} — inside a
    {!Scratch.with_frame} to make the steady state allocation-free), the
    viability check is {!Reach.cone}'s bitset probed inline rather than a
    closure call per relaxed edge, and the path DFS tracks cold edge-table
    {e indices}, resolving boxed {!Graph.edge}s only when a complete path
    is materialized. Because {!Graph.freeze} preserves adjacency order,
    each function returns {e exactly} what its list counterpart returns on
    the graph the snapshot was taken from — the determinism suite
    ([test_parallel.ml]) and the engine equivalence suite ([test_cache.ml])
    both pin this.

    These functions never touch the originating mutable graph, so they are
    safe to call from many domains sharing one snapshot (each domain using
    its own scratch). *)

module Csr : sig
  val distances_to :
    ?scratch:Scratch.t ->
    ?cone:Reach.cone ->
    Graph.frozen ->
    target:Graph.node ->
    Dist.t

  val distances_from :
    ?scratch:Scratch.t ->
    ?cone:Reach.cone ->
    Graph.frozen ->
    sources:Graph.node list ->
    Dist.t

  val weighted_distances_to :
    ?scratch:Scratch.t ->
    ?cone:Reach.cone ->
    Graph.frozen ->
    target:Graph.node ->
    Dist.t
  (** Like {!Search.weighted_distances_to}, but the cost model is the one
      baked into the snapshot's [f_bwd_wcost] at freeze time. *)

  val shortest_cost :
    ?scratch:Scratch.t ->
    ?cone:Reach.cone ->
    Graph.frozen ->
    sources:Graph.node list ->
    target:Graph.node ->
    int option

  val enumerate :
    ?scratch:Scratch.t ->
    Graph.frozen ->
    sources:Graph.node list ->
    target:Graph.node ->
    ?slack:int ->
    ?limit:int ->
    ?cone:Reach.cone ->
    ?truncated:bool ref ->
    unit ->
    path list

  val enumerate_per_source :
    ?scratch:Scratch.t ->
    Graph.frozen ->
    sources:Graph.node list ->
    target:Graph.node ->
    ?slack:int ->
    ?limit:int ->
    ?cone:Reach.cone ->
    ?truncated:bool ref ->
    unit ->
    path list
end
