(* Knuth–Morris–Pratt: O(|s| + |sub|), replacing the quadratic
   String.sub-per-position scans that used to be copy-pasted around the
   tree (CLI, apidata oracles, gencheck). *)
let contains ~sub s =
  let n = String.length sub and m = String.length s in
  if n = 0 then true
  else if n > m then false
  else begin
    let fail = Array.make n 0 in
    let k = ref 0 in
    for i = 1 to n - 1 do
      while !k > 0 && sub.[i] <> sub.[!k] do
        k := fail.(!k - 1)
      done;
      if sub.[i] = sub.[!k] then incr k;
      fail.(i) <- !k
    done;
    let q = ref 0 in
    try
      for i = 0 to m - 1 do
        while !q > 0 && s.[i] <> sub.[!q] do
          q := fail.(!q - 1)
        done;
        if s.[i] = sub.[!q] then incr q;
        if !q = n then raise Exit
      done;
      false
    with Exit -> true
  end
