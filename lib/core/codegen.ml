module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Member = Javamodel.Member

type generated = {
  code : string;
  result_var : string;
  free_var_names : (string * Jtype.t) list;
}

(* Names that cannot be used as Java identifiers; a derived variable name
   landing on one must be rewritten or the generated code won't compile. *)
let keywords =
  [
    "abstract"; "assert"; "boolean"; "break"; "byte"; "case"; "catch"; "char";
    "class"; "const"; "continue"; "default"; "do"; "double"; "else"; "enum";
    "extends"; "false"; "final"; "finally"; "float"; "for"; "goto"; "if";
    "implements"; "import"; "instanceof"; "int"; "interface"; "long"; "native";
    "new"; "null"; "package"; "private"; "protected"; "public"; "return";
    "short"; "static"; "strictfp"; "super"; "switch"; "synchronized"; "this";
    "throw"; "throws"; "transient"; "true"; "try"; "void"; "volatile"; "while";
  ]

let var_name_of_type ty =
  let simple = Jtype.simple_string ty in
  let simple =
    match String.index_opt simple '[' with
    | Some i -> String.sub simple 0 i ^ "s"
    | None -> simple
  in
  let simple =
    if
      String.length simple >= 2
      && simple.[0] = 'I'
      && simple.[1] = Char.uppercase_ascii simple.[1]
      && simple.[1] <> Char.lowercase_ascii simple.[1]
    then String.sub simple 1 (String.length simple - 1)
    else simple
  in
  if simple = "" then "v"
  else
    let name =
      String.make 1 (Char.lowercase_ascii simple.[0])
      ^ String.sub simple 1 (String.length simple - 1)
    in
    if name = "class" then "clazz"
    else if List.mem name keywords then name ^ "_"
    else name

type namer = {
  used : (string, int) Hashtbl.t;
}

let fresh namer base =
  match Hashtbl.find_opt namer.used base with
  | None ->
      Hashtbl.replace namer.used base 1;
      base
  | Some n ->
      Hashtbl.replace namer.used base (n + 1);
      Printf.sprintf "%s%d" base (n + 1)

let prim_default = function
  | Jtype.Boolean -> "false"
  | Jtype.Char -> "'\\0'"
  | Jtype.Float | Jtype.Double -> "0.0"
  | Jtype.Byte | Jtype.Short | Jtype.Int | Jtype.Long -> "0"

let safe_name base =
  if base = "class" then "clazz"
  else if List.mem base keywords then base ^ "_"
  else base

let generate ?input ?(qualified = false) (j : Jungloid.t) =
  let tyname = if qualified then Jtype.to_string else Jtype.simple_string in
  let cname = if qualified then Qname.to_string else Qname.simple in
  let namer = { used = Hashtbl.create 16 } in
  let buf = Buffer.create 256 in
  let frees = ref [] in
  let input_var =
    match (input, j.Jungloid.input) with
    | _, Jtype.Void -> ""
    | Some (name, _), _ ->
        Hashtbl.replace namer.used name 1;
        name
    | None, ty ->
        let name = fresh namer (var_name_of_type ty) in
        name
  in
  (* A free slot becomes either a default literal (primitives) or a declared
     variable the user must fill (references). *)
  let free_slot (pname, ty) =
    match ty with
    | Jtype.Prim p -> prim_default p
    | _ ->
        let base =
          if String.length pname > 0 && not (String.length pname > 3 && String.sub pname 0 3 = "arg")
          then safe_name pname
          else var_name_of_type ty
        in
        let v = fresh namer base in
        Buffer.add_string buf
          (Printf.sprintf "%s %s; // free variable\n" (tyname ty) v);
        frees := (v, ty) :: !frees;
        v
  in
  let render_args params ~input_slot ~expr =
    let arg i (pname, ty) =
      match input_slot with
      | Elem.Param j when i = j -> expr
      | _ -> free_slot (pname, ty)
    in
    "(" ^ String.concat ", " (List.mapi arg params) ^ ")"
  in
  let emit_stmt ty rhs =
    let v = fresh namer (var_name_of_type ty) in
    Buffer.add_string buf (Printf.sprintf "%s %s = %s;\n" (tyname ty) v rhs);
    v
  in
  let final_var =
    List.fold_left
      (fun cur e ->
        match e with
        | Elem.Widen _ -> cur
        | Elem.Downcast { to_; _ } ->
            emit_stmt to_ (Printf.sprintf "(%s) %s" (tyname to_) cur)
        | Elem.Field_access { owner; field } ->
            let rhs =
              if field.Member.fstatic then
                Printf.sprintf "%s.%s" (cname owner) field.Member.fname
              else Printf.sprintf "%s.%s" cur field.Member.fname
            in
            emit_stmt field.Member.ftype rhs
        | Elem.Static_call { owner; meth; input = slot } ->
            emit_stmt meth.Member.ret
              (Printf.sprintf "%s.%s%s" (cname owner) meth.Member.mname
                 (render_args meth.Member.params ~input_slot:slot ~expr:cur))
        | Elem.Ctor_call { owner; ctor; input = slot } ->
            emit_stmt (Jtype.ref_ owner)
              (Printf.sprintf "new %s%s" (cname owner)
                 (render_args ctor.Member.cparams ~input_slot:slot ~expr:cur))
        | Elem.Instance_call { owner; meth; input = slot } ->
            let recv =
              match slot with
              | Elem.Receiver -> cur
              | _ -> free_slot ("receiver", Jtype.ref_ owner)
            in
            emit_stmt meth.Member.ret
              (Printf.sprintf "%s.%s%s" recv meth.Member.mname
                 (render_args meth.Member.params ~input_slot:slot ~expr:cur)))
      input_var j.Jungloid.elems
  in
  { code = Buffer.contents buf; result_var = final_var; free_var_names = List.rev !frees }

let to_java ?input ?qualified j = (generate ?input ?qualified j).code
