module Jtype = Javamodel.Jtype

exception Format_error of string

let magic = "PROSPECTOR-GRAPH"

let version = 1

(* A pure-data dump; node ids are positions, so rebuilding in order
   reproduces them exactly (interning is sequential). *)
type dump = {
  d_version : int;
  d_nodes : (Jtype.t * string option) array;
  d_edges : (int * Elem.t * int) list;
}

let dump_of_graph g =
  let n = Graph.node_count g in
  let d_nodes =
    Array.init n (fun i -> (Graph.node_type g i, Graph.typestate_origin g i))
  in
  let d_edges = ref [] in
  Graph.iter_edges g (fun e ->
      d_edges := (e.Graph.src, e.Graph.elem, e.Graph.dst) :: !d_edges);
  { d_version = version; d_nodes; d_edges = List.rev !d_edges }

let graph_of_dump d =
  if d.d_version <> version then
    raise
      (Format_error
         (Printf.sprintf "graph format version %d, expected %d" d.d_version version));
  let g = Graph.create () in
  Array.iteri
    (fun i (ty, origin) ->
      let id =
        match origin with
        | None -> Graph.ensure_type_node g ty
        | Some origin -> Graph.add_typestate g ~underlying:ty ~origin
      in
      if id <> i then raise (Format_error "node ids not reproducible"))
    d.d_nodes;
  List.iter (fun (src, elem, dst) -> Graph.add_edge g ~src elem ~dst) d.d_edges;
  g

let to_bytes g =
  let payload = Marshal.to_bytes (dump_of_graph g) [] in
  Bytes.cat (Bytes.of_string magic) payload

let of_bytes b =
  let mlen = String.length magic in
  if Bytes.length b < mlen || Bytes.sub_string b 0 mlen <> magic then
    raise (Format_error "not a prospector graph file");
  let d : dump =
    try Marshal.from_bytes b mlen
    with Failure msg -> raise (Format_error ("corrupt graph file: " ^ msg))
  in
  graph_of_dump d

let write_bytes_to path b =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_bytes oc b);
  Bytes.length b

let read_bytes_from path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let b = Bytes.create len in
      really_input ic b 0 len;
      b)

let save g path = write_bytes_to path (to_bytes g)

let load path = of_bytes (read_bytes_from path)

(* ---------- the reachability index ---------- *)

let reach_magic = "PROSPECTOR-REACH"

let reach_to_bytes r =
  let payload = Marshal.to_bytes (Reach.dump r) [] in
  Bytes.cat (Bytes.of_string reach_magic) payload

let reach_of_bytes b =
  let mlen = String.length reach_magic in
  if Bytes.length b < mlen || Bytes.sub_string b 0 mlen <> reach_magic then
    raise (Format_error "not a prospector reachability index file");
  let d : Reach.dump =
    try Marshal.from_bytes b mlen
    with Failure msg -> raise (Format_error ("corrupt reachability index: " ^ msg))
  in
  try Reach.undump d with Invalid_argument msg -> raise (Format_error msg)

let save_reach r path = write_bytes_to path (reach_to_bytes r)

let load_reach path = reach_of_bytes (read_bytes_from path)
