module Jtype = Javamodel.Jtype

exception Format_error of string

type error =
  | Io of string
  | Bad_magic of string
  | Bad_version of { found : int; expected : int }
  | Corrupt of string

let error_message = function
  | Io msg -> "i/o error: " ^ msg
  | Bad_magic found -> Printf.sprintf "bad magic %S — not a prospector file" found
  | Bad_version { found; expected } ->
      Printf.sprintf "format version %d, expected %d" found expected
  | Corrupt msg -> "corrupt file: " ^ msg

let magic = "PROSPECTOR-GRAPH"

let version = 1

(* Marshal on hostile bytes raises a zoo of exceptions (Failure on a
   truncated or garbled buffer, Invalid_argument on out-of-range sizes,
   End_of_file from channel reads...); a cache loader must map all of them
   to a typed error rather than die. *)
let marshal_from_bytes b ofs =
  try Ok (Marshal.from_bytes b ofs) with
  | Failure msg -> Error (Corrupt msg)
  | Invalid_argument msg -> Error (Corrupt msg)
  | End_of_file -> Error (Corrupt "truncated")

(* A pure-data dump; node ids are positions, so rebuilding in order
   reproduces them exactly (interning is sequential). *)
type dump = {
  d_version : int;
  d_nodes : (Jtype.t * string option) array;
  d_edges : (int * Elem.t * int) list;
}

let dump_of_graph g =
  let n = Graph.node_count g in
  let d_nodes =
    Array.init n (fun i -> (Graph.node_type g i, Graph.typestate_origin g i))
  in
  let d_edges = ref [] in
  Graph.iter_edges g (fun e ->
      d_edges := (e.Graph.src, e.Graph.elem, e.Graph.dst) :: !d_edges);
  { d_version = version; d_nodes; d_edges = List.rev !d_edges }

let graph_of_dump d =
  if d.d_version <> version then
    Error (Bad_version { found = d.d_version; expected = version })
  else begin
    let g = Graph.create () in
    let ok = ref true in
    (try
       Array.iteri
         (fun i (ty, origin) ->
           let id =
             match origin with
             | None -> Graph.ensure_type_node g ty
             | Some origin -> Graph.add_typestate g ~underlying:ty ~origin
           in
           if id <> i then raise Exit)
         d.d_nodes
     with Exit -> ok := false);
    if not !ok then Error (Corrupt "node ids not reproducible")
    else begin
      List.iter (fun (src, elem, dst) -> Graph.add_edge g ~src elem ~dst) d.d_edges;
      Ok g
    end
  end

let to_bytes g =
  let payload = Marshal.to_bytes (dump_of_graph g) [] in
  Bytes.cat (Bytes.of_string magic) payload

let of_bytes_result b =
  let mlen = String.length magic in
  if Bytes.length b < mlen then Error (Bad_magic (Bytes.to_string b))
  else if Bytes.sub_string b 0 mlen <> magic then
    Error (Bad_magic (Bytes.sub_string b 0 mlen))
  else
    match marshal_from_bytes b mlen with
    | Error _ as e -> e
    | Ok (d : dump) -> graph_of_dump d

let raise_error = function
  | Io msg -> raise (Sys_error msg)
  | e -> raise (Format_error (error_message e))

let of_bytes b =
  match of_bytes_result b with Ok g -> g | Error e -> raise_error e

let write_bytes_to path b =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_bytes oc b);
  Bytes.length b

let read_bytes_from path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let b = Bytes.create len in
      really_input ic b 0 len;
      b)

let read_bytes_result path =
  match read_bytes_from path with
  | b -> Ok b
  | exception Sys_error msg -> Error (Io msg)
  | exception End_of_file -> Error (Corrupt "truncated")

let save g path = write_bytes_to path (to_bytes g)

let load_result path =
  match read_bytes_result path with
  | Error _ as e -> e
  | Ok b -> of_bytes_result b

let load path = match load_result path with Ok g -> g | Error e -> raise_error e

(* ---------- the reachability index ---------- *)

let reach_magic = "PROSPECTOR-REACH"

let reach_to_bytes r =
  let payload = Marshal.to_bytes (Reach.dump r) [] in
  Bytes.cat (Bytes.of_string reach_magic) payload

let reach_of_bytes_result b =
  let mlen = String.length reach_magic in
  if Bytes.length b < mlen then Error (Bad_magic (Bytes.to_string b))
  else if Bytes.sub_string b 0 mlen <> reach_magic then
    Error (Bad_magic (Bytes.sub_string b 0 mlen))
  else
    match marshal_from_bytes b mlen with
    | Error _ as e -> e
    | Ok (d : Reach.dump) -> (
        try Ok (Reach.undump d) with Invalid_argument msg -> Error (Corrupt msg))

let reach_of_bytes b =
  match reach_of_bytes_result b with Ok r -> r | Error e -> raise_error e

let save_reach r path = write_bytes_to path (reach_to_bytes r)

let load_reach_result path =
  match read_bytes_result path with
  | Error _ as e -> e
  | Ok b -> reach_of_bytes_result b

let load_reach path =
  match load_reach_result path with Ok r -> r | Error e -> raise_error e

(* ---------- frozen CSR snapshots (v2, mmap-ready) ---------- *)

(* Layout:

     bytes 0..15     magic "PROSPECTOR-FROZ2"
     bytes 16..23    cold-blob length (int64 LE)
     bytes 24..      Marshal'd [frozen_cold] (heap half of the snapshot)
     (zero padding to a page boundary)
     6 raw segments, each starting on a page boundary, in order:
       fwd_off   (n+1) x int64 LE
       fwd_dst   m     x int64 LE
       fwd_cost  m     x uint16 LE
       bwd_off   (n+1) x int64 LE
       bwd_src   m     x int64 LE
       bwd_cost  m     x uint16 LE

   Segment offsets are a pure function of (n, m), so the loader seeks
   straight to them. With [~mmap:true] the six segments are mapped
   read-only and shared: a warm start touches only the pages a query
   actually walks, and every server domain shares one physical copy. The
   int64 cells match Bigarray's native-int layout on 64-bit little-endian
   hosts — the only hosts we run on; the version field guards the rest. *)

let frozen_magic = "PROSPECTOR-FROZ2"

let frozen_version = 2

let page = 4096

let align_page x = (x + page - 1) / page * page

type frozen_cold = {
  fc_version : int;
  fc_generation : int;
  fc_nodes : int;
  fc_edges : int;
  fc_fwd_wcost : int array;
  fc_bwd_wcost : int array;
  fc_fwd_elems : Elem.t array;  (* aligned with the fwd_dst segment *)
  fc_types : Jtype.t array;
  fc_origins : string option array;
  fc_ids : (string * int) array;
  fc_void : int option;
}

(* (start, byte length) of each segment, given the cold blob's extent. *)
let segment_layout ~cold_end ~n ~m =
  let off_bytes = (n + 1) * 8 in
  let id_bytes = m * 8 in
  let cost_bytes = m * 2 in
  let fwd_off = align_page cold_end in
  let fwd_dst = align_page (fwd_off + off_bytes) in
  let fwd_cost = align_page (fwd_dst + id_bytes) in
  let bwd_off = align_page (fwd_cost + cost_bytes) in
  let bwd_src = align_page (bwd_off + off_bytes) in
  let bwd_cost = align_page (bwd_src + id_bytes) in
  let total = align_page (bwd_cost + cost_bytes) in
  ( [|
      (fwd_off, off_bytes);
      (fwd_dst, id_bytes);
      (fwd_cost, cost_bytes);
      (bwd_off, off_bytes);
      (bwd_src, id_bytes);
      (bwd_cost, cost_bytes);
    |],
    total )

let int_seg_bytes (a : Graph.int_array1) =
  let len = Bigarray.Array1.dim a in
  let b = Bytes.create (len * 8) in
  for i = 0 to len - 1 do
    Bytes.set_int64_le b (i * 8) (Int64.of_int a.{i})
  done;
  b

let cost_seg_bytes (a : Graph.cost_array1) =
  let len = Bigarray.Array1.dim a in
  let b = Bytes.create (len * 2) in
  for i = 0 to len - 1 do
    Bytes.set_uint16_le b (i * 2) a.{i}
  done;
  b

let save_frozen (fz : Graph.frozen) path =
  (* the format stores dense rows with no slack; patched snapshots (tail
     appends, dead regions) are compacted first *)
  let fz = if Graph.is_compact fz then fz else Graph.compact ~slack:0 fz in
  let n = fz.Graph.f_nodes and m = fz.Graph.f_edges in
  let cold =
    {
      fc_version = frozen_version;
      fc_generation = fz.Graph.f_generation;
      fc_nodes = n;
      fc_edges = m;
      fc_fwd_wcost = fz.Graph.f_fwd_wcost;
      fc_bwd_wcost = fz.Graph.f_bwd_wcost;
      fc_fwd_elems = Array.map (fun e -> e.Graph.elem) fz.Graph.f_fwd_edge;
      fc_types = fz.Graph.f_types;
      fc_origins = fz.Graph.f_origins;
      fc_ids = Hashtbl.fold (fun k v acc -> (k, v) :: acc) fz.Graph.f_ids []
               |> List.sort compare |> Array.of_list;
      fc_void = fz.Graph.f_void;
    }
  in
  let blob = Marshal.to_bytes cold [] in
  let cold_end = 24 + Bytes.length blob in
  let segs, total = segment_layout ~cold_end ~n ~m in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let pos = ref 0 in
      let emit b =
        output_bytes oc b;
        pos := !pos + Bytes.length b
      in
      let pad_to target =
        if target > !pos then emit (Bytes.make (target - !pos) '\000')
      in
      emit (Bytes.of_string frozen_magic);
      let len8 = Bytes.create 8 in
      Bytes.set_int64_le len8 0 (Int64.of_int (Bytes.length blob));
      emit len8;
      emit blob;
      let payloads =
        [|
          int_seg_bytes fz.Graph.f_fwd_off;
          int_seg_bytes fz.Graph.f_fwd_dst;
          cost_seg_bytes fz.Graph.f_fwd_cost;
          int_seg_bytes fz.Graph.f_bwd_off;
          int_seg_bytes fz.Graph.f_bwd_src;
          cost_seg_bytes fz.Graph.f_bwd_cost;
        |]
      in
      Array.iteri
        (fun i b ->
          let start, blen = segs.(i) in
          assert (Bytes.length b = blen);
          pad_to start;
          emit b)
        payloads;
      pad_to total;
      total)

let map_int_seg fd ~pos ~len =
  if len = 0 then Graph.ba_int 0
  else
    Bigarray.array1_of_genarray
      (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.int Bigarray.c_layout
         false [| len |])

let map_cost_seg fd ~pos ~len =
  if len = 0 then Graph.ba_cost 0
  else
    Bigarray.array1_of_genarray
      (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.int16_unsigned
         Bigarray.c_layout false [| len |])

let read_int_seg ic ~pos ~len =
  seek_in ic pos;
  let b = Bytes.create (len * 8) in
  really_input ic b 0 (len * 8);
  let a = Graph.ba_int len in
  for i = 0 to len - 1 do
    a.{i} <- Int64.to_int (Bytes.get_int64_le b (i * 8))
  done;
  a

let read_cost_seg ic ~pos ~len =
  seek_in ic pos;
  let b = Bytes.create (len * 2) in
  really_input ic b 0 (len * 2);
  let a = Graph.ba_cost len in
  for i = 0 to len - 1 do
    a.{i} <- Bytes.get_uint16_le b (i * 2)
  done;
  a

let frozen_of_parts ~(cold : frozen_cold) ~fwd_off ~fwd_dst ~fwd_cost ~bwd_off
    ~bwd_src ~bwd_cost =
  let n = cold.fc_nodes and m = cold.fc_edges in
  if
    Array.length cold.fc_fwd_elems <> m
    || Array.length cold.fc_types <> n
    || Array.length cold.fc_origins <> n
    || Array.length cold.fc_fwd_wcost <> m
    || Array.length cold.fc_bwd_wcost <> m
  then Error (Corrupt "cold/hot section sizes disagree")
  else if fwd_off.{0} <> 0 || fwd_off.{n} <> m || bwd_off.{0} <> 0
          || bwd_off.{n} <> m
  then Error (Corrupt "offset segments do not describe the edge count")
  else begin
    (* Edge records carry their own source node; recover it from the row
       structure (the file stores it once, implicitly). *)
    let src_of = Array.make m 0 in
    let bad = ref false in
    for u = 0 to n - 1 do
      let lo = fwd_off.{u} and hi = fwd_off.{u + 1} in
      if lo > hi || lo < 0 || hi > m then bad := true
      else
        for k = lo to hi - 1 do
          src_of.(k) <- u
        done
    done;
    for k = 0 to m - 1 do
      if fwd_dst.{k} < 0 || fwd_dst.{k} >= n then bad := true
    done;
    if !bad then Error (Corrupt "adjacency rows out of range")
    else begin
      let fwd_edge =
        Array.init m (fun k ->
            {
              Graph.elem = cold.fc_fwd_elems.(k);
              src = src_of.(k);
              dst = fwd_dst.{k};
            })
      in
      let ids = Hashtbl.create (max 16 (Array.length cold.fc_ids)) in
      Array.iter (fun (k, v) -> Hashtbl.replace ids k v) cold.fc_ids;
      let plain =
        Array.for_all (fun o -> o = None) cold.fc_origins
        && Array.for_all (fun e -> not (Elem.is_downcast e)) cold.fc_fwd_elems
      in
      Ok
        {
          Graph.f_generation = cold.fc_generation;
          f_nodes = n;
          f_edges = m;
          f_fwd_off = fwd_off;
          f_fwd_end = Bigarray.Array1.sub fwd_off 1 n;
          f_fwd_dst = fwd_dst;
          f_fwd_cost = fwd_cost;
          f_fwd_wcost = cold.fc_fwd_wcost;
          f_fwd_edge = fwd_edge;
          f_bwd_off = bwd_off;
          f_bwd_end = Bigarray.Array1.sub bwd_off 1 n;
          f_bwd_src = bwd_src;
          f_bwd_cost = bwd_cost;
          f_bwd_wcost = cold.fc_bwd_wcost;
          (* zero slack: a mapped snapshot's lanes are file-backed, so the
             first patch must always take the copying path *)
          f_fwd_used = m;
          f_bwd_used = m;
          f_plain = plain;
          f_tail = Atomic.make false;
          f_types = cold.fc_types;
          f_origins = cold.fc_origins;
          f_ids = ids;
          f_void = cold.fc_void;
        }
    end
  end

let load_frozen ?(mmap = true) path =
  let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
  match open_in_bin path with
  | exception Sys_error msg -> Error (Io msg)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let file_len = in_channel_length ic in
          let mlen = String.length frozen_magic in
          if file_len < mlen + 8 then Error (Corrupt "truncated header")
          else begin
            let head = Bytes.create (mlen + 8) in
            really_input ic head 0 (mlen + 8);
            if Bytes.sub_string head 0 mlen <> frozen_magic then
              Error (Bad_magic (Bytes.sub_string head 0 (min mlen file_len)))
            else begin
              let blob_len = Int64.to_int (Bytes.get_int64_le head mlen) in
              if blob_len < 0 || mlen + 8 + blob_len > file_len then
                Error (Corrupt "truncated cold section")
              else begin
                let blob = Bytes.create blob_len in
                really_input ic blob 0 blob_len;
                let* (cold : frozen_cold) = marshal_from_bytes blob 0 in
                if cold.fc_version <> frozen_version then
                  Error
                    (Bad_version
                       { found = cold.fc_version; expected = frozen_version })
                else if cold.fc_nodes < 0 || cold.fc_edges < 0 then
                  Error (Corrupt "negative node or edge count")
                else begin
                  let n = cold.fc_nodes and m = cold.fc_edges in
                  let segs, total =
                    segment_layout ~cold_end:(mlen + 8 + blob_len) ~n ~m
                  in
                  (* Never map past EOF: a truncated file must be a typed
                     error here, not a SIGBUS on first page touch. *)
                  if file_len < total then
                    Error (Corrupt "truncated hot segments")
                  else begin
                    let seg i = segs.(i) in
                    let* hot =
                      if mmap then begin
                        match
                          let fd =
                            Unix.openfile path [ Unix.O_RDONLY ] 0
                          in
                          Fun.protect
                            ~finally:(fun () -> try Unix.close fd with _ -> ())
                            (fun () ->
                              let io i = map_int_seg fd ~pos:(fst (seg i)) in
                              let co i = map_cost_seg fd ~pos:(fst (seg i)) in
                              ( io 0 ~len:(n + 1),
                                io 1 ~len:m,
                                co 2 ~len:m,
                                io 3 ~len:(n + 1),
                                io 4 ~len:m,
                                co 5 ~len:m ))
                        with
                        | hot -> Ok hot
                        | exception Unix.Unix_error (e, _, _) ->
                            Error (Io (Unix.error_message e))
                      end
                      else
                        match
                          let io i = read_int_seg ic ~pos:(fst (seg i)) in
                          let co i = read_cost_seg ic ~pos:(fst (seg i)) in
                          ( io 0 ~len:(n + 1),
                            io 1 ~len:m,
                            co 2 ~len:m,
                            io 3 ~len:(n + 1),
                            io 4 ~len:m,
                            co 5 ~len:m )
                        with
                        | hot -> Ok hot
                        | exception End_of_file ->
                            Error (Corrupt "truncated hot segments")
                    in
                    let fwd_off, fwd_dst, fwd_cost, bwd_off, bwd_src, bwd_cost =
                      hot
                    in
                    frozen_of_parts ~cold ~fwd_off ~fwd_dst ~fwd_cost ~bwd_off
                      ~bwd_src ~bwd_cost
                  end
                end
              end
            end
          end)
