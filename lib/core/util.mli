(** Small string helpers shared across the tree. *)

val contains : sub:string -> string -> bool
(** [contains ~sub s] — does [s] contain [sub] as a substring? Linear-time
    (KMP); [sub = ""] is contained in everything. The single home for the
    substring test the result oracles and the codegen linter all need. *)
