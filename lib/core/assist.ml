module Jtype = Javamodel.Jtype
module Hierarchy = Javamodel.Hierarchy

type context = {
  vars : (string * Jtype.t) list;
  expected : Jtype.t;
}

type suggestion = {
  title : string;
  code : string;
  uses_var : string option;
  result : Query.result;
}

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let title_of (mr : Query.multi_result) =
  let expr = Jungloid.to_expression mr.Query.result.Query.jungloid in
  match mr.Query.source_var with
  | Some v ->
      (* Substitute the variable for the placeholder input [x]. *)
      let buf = Buffer.create (String.length expr + String.length v) in
      String.iteri
        (fun i c ->
          let is_x =
            c = 'x'
            && (i = 0 || not (is_ident_char expr.[i - 1]))
            && (i = String.length expr - 1 || not (is_ident_char expr.[i + 1]))
          in
          if is_x then Buffer.add_string buf v else Buffer.add_char buf c)
        expr;
      Buffer.contents buf
  | None -> expr

(* A variable whose type already widens to the expected type needs no
   jungloid at all: suggest it first, as ordinary completion would. *)
let direct_suggestions ~hierarchy ctx =
  List.filter_map
    (fun (name, ty) ->
      if Hierarchy.is_subtype hierarchy ty ctx.expected then
        let j =
          Jungloid.make ~input:ty [ Elem.Widen { from_ = ty; to_ = ctx.expected } ]
        in
        Some
          {
            title = name;
            code = name;
            uses_var = Some name;
            result =
              {
                Query.jungloid = j;
                key = Rank.key hierarchy j;
                code = name;
              };
          }
      else None)
    ctx.vars

let of_multi mr =
  {
    title = title_of mr;
    code = mr.Query.result.Query.code;
    uses_var = mr.Query.source_var;
    result = mr.Query.result;
  }

let suggest ?settings ?engine ?frozen ?reach ?edge_cost ?protocol_check ?graph
    ~hierarchy ctx =
  let multi =
    (* The engine's cache keys on (vars, tout, settings, generation), so
       re-opening assist at the same program point is a hit. *)
    match engine with
    | Some e -> Query.run_multi_cached ?settings e ~vars:ctx.vars ~tout:ctx.expected ()
    | None ->
        Query.run_multi ?settings ?reach ?frozen ?edge_cost ?protocol_check
          ?graph ~hierarchy ~vars:ctx.vars ~tout:ctx.expected ()
  in
  direct_suggestions ~hierarchy ctx @ List.map of_multi multi
