(** The ranking heuristic of Section 3.2.

    Jungloids are ordered by:
    + {b length} — non-widening elementary jungloids, plus an estimated
      [freevar_cost] (default 2) for every {e reference-typed} free
      variable, since the user will need roughly a size-two jungloid to
      produce each one (primitive slots are filled with literals and cost
      nothing);
    + {b package crossings} — the number of adjacent pairs of API elements
      living in different Java packages (jungloids that wander across many
      packages "do more than what was intended");
    + {b output specificity} — among equal candidates, the one whose
      pre-widening output type is more {e general} (smaller hierarchy depth)
      ranks higher, so a jungloid returning [XMLEditor] does not outrank one
      returning the requested [IEditorPart];
    + the same generality reasoning applied to {e intermediate} types (a
      chain through plainer types is less likely to "do more than what was
      intended" — our deterministic extension of the paper's rule);
    + a textual tiebreak, so results are stable.

    The tiebreaks can be switched off individually for the ablation bench. *)

module Hierarchy = Javamodel.Hierarchy

type weights = {
  freevar_cost : int;
  package_tiebreak : bool;
  generality_tiebreak : bool;
}

val default_weights : weights
(** [{ freevar_cost = 2; package_tiebreak = true; generality_tiebreak = true }] *)

type key = {
  weighted : int;
      (** mined usage-weighted cost in {!Elem.cost_scale} fixed-point units
          (learned edge costs plus the scaled free-variable charge);
          always 0 in paper mode, so the comparison below degenerates to
          the paper's rule *)
  length : int;
  crossings : int;
  specificity : int;  (** hierarchy depth of the pre-widening output type *)
  interior : int;  (** summed depth of intermediate output types *)
  tie : Jungloid.t;
      (** source of the textual tiebreak; rendered lazily by {!compare_key}
          only when all four numeric components tie *)
}

val text : key -> string
(** The textual tiebreak, [Jungloid.to_string] of [tie] — computed on
    demand, never stored. *)

val key :
  ?weights:weights ->
  ?freevar_cost_of:(Javamodel.Jtype.t -> int) ->
  ?edge_cost:(Elem.t -> int) ->
  Hierarchy.t ->
  Jungloid.t ->
  key
(** [freevar_cost_of] overrides the constant free-variable charge with a
    per-type estimate — the "more precise, systematic estimation" the paper
    leaves as future work. {!Query} supplies the actual shortest production
    cost from the graph when [estimate_freevars] is set.

    [edge_cost] switches on the {e mined} (usage-weighted) mode: the [weighted]
    component becomes the sum of the learned per-elem costs plus
    [Elem.cost_scale] times the free-variable charge, and takes precedence
    over every paper component; the paper key remains as the deterministic
    tiebreak. Without it [weighted] is 0 and the order is the paper's. *)

val compare_key : key -> key -> int
(** Lexicographic over (weighted, length, crossings, specificity, interior,
    text); the text is rendered only on a full numeric tie. *)

val type_depth : Hierarchy.t -> Javamodel.Jtype.t -> int
(** Hierarchy depth of a reference type, 1 for arrays, 0 otherwise — the
    generality measure behind [specificity]/[interior]. Exposed so the
    best-first enumerator ({!Topk}) computes tiebreaks with the exact same
    function. *)

val sort :
  ?weights:weights ->
  ?freevar_cost_of:(Javamodel.Jtype.t -> int) ->
  ?edge_cost:(Elem.t -> int) ->
  Hierarchy.t ->
  Jungloid.t list ->
  Jungloid.t list
(** Stable best-first ordering. *)

val package_crossings : Jungloid.t -> int
(** Exposed for tests: adjacent distinct packages along the chain — the
    input type's package followed by each non-widening elem's owner
    package. *)

val pre_widening_output : Jungloid.t -> Javamodel.Jtype.t
(** The output type before any trailing widening conversions. *)
