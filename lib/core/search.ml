type path = {
  source : Graph.node;
  edges : Graph.edge list;
}

let path_cost p = List.fold_left (fun acc e -> acc + Elem.cost e.Graph.elem) 0 p.edges

(* The two-list deque behind the list-based 0-1 BFS. Despite the persistent
   lists inside, the structure is mutable: push and pop update [front] and
   [back] in place, and [pop_front] reverses [back] into [front] when the
   front runs dry (amortized O(1)).

   Re-queue invariant: an entry [(d, u)] is pushed only when [d] strictly
   improves [dist.(u)] — 0-cost relaxations to the front, 1-cost ones to the
   back — so the deque holds at most two consecutive distance values at any
   time and every pushed distance is final or superseded. A popped entry
   whose distance no longer matches [dist.(u)] is stale (the node was
   improved again after this entry was queued) and is skipped, not
   re-expanded. *)
module Deque = struct
  type 'a t = {
    mutable front : 'a list;
    mutable back : 'a list;
  }

  let create () = { front = []; back = [] }

  let push_front d x = d.front <- x :: d.front

  let push_back d x = d.back <- x :: d.back

  let pop_front d =
    match d.front with
    | x :: rest ->
        d.front <- rest;
        Some x
    | [] -> (
        match List.rev d.back with
        | [] -> None
        | x :: rest ->
            d.front <- rest;
            d.back <- [];
            Some x)
end

(* 0-1 BFS: [next u f] calls [f cost v] for each neighbor, cost 0 or 1 —
   an iterator rather than a returned list, so relaxing a node allocates
   nothing (the old [List.map]-per-visited-node built a transient pair list
   on every expansion). See the Deque comment for the re-queue discipline
   that keeps the deque small. *)
let zero_one_bfs n ~starts ~next =
  let dist = Array.make n max_int in
  let dq = Deque.create () in
  List.iter
    (fun s ->
      if s >= 0 && s < n && dist.(s) > 0 then begin
        dist.(s) <- 0;
        Deque.push_front dq (0, s)
      end)
    starts;
  let rec loop () =
    match Deque.pop_front dq with
    | None -> ()
    | Some (du, u) ->
        if du = dist.(u) then
          next u (fun cost v ->
              let d = du + cost in
              if d < dist.(v) then begin
                dist.(v) <- d;
                if cost = 0 then Deque.push_front dq (d, v)
                else Deque.push_back dq (d, v)
              end);
        loop ()
  in
  loop ();
  dist

(* [viable] is a pruning oracle ("can this node still reach the target?"):
   non-viable nodes are simply never relaxed. With the exact reachability
   cone this is result-preserving — any path that reaches the target lies
   entirely inside the cone — while shrinking the BFS frontier from the
   whole graph to the cone. *)
let oracle = function None -> fun _ -> true | Some ok -> ok

(* Dijkstra for the weighted (mined) cost model, where edge costs are
   arbitrary non-negative ints and the 0-1 deque trick no longer applies.
   The heap holds (dist, node) in two parallel arrays — unpacked, because
   weighted distances need not fit the 31-bit packing of the 0-1 deque.
   Lazy deletion: stale entries (dist no longer current) are skipped. *)
let dijkstra n ~starts ~next =
  let dist = Array.make n max_int in
  let hd = ref (Array.make 64 0) in
  (* distances *)
  let hn = ref (Array.make 64 0) in
  (* nodes *)
  let len = ref 0 in
  let swap i j =
    let d = !hd.(i) in
    !hd.(i) <- !hd.(j);
    !hd.(j) <- d;
    let v = !hn.(i) in
    !hn.(i) <- !hn.(j);
    !hn.(j) <- v
  in
  let push d u =
    if !len = Array.length !hd then begin
      let cap' = !len * 2 in
      let hd' = Array.make cap' 0 and hn' = Array.make cap' 0 in
      Array.blit !hd 0 hd' 0 !len;
      Array.blit !hn 0 hn' 0 !len;
      hd := hd';
      hn := hn'
    end;
    !hd.(!len) <- d;
    !hn.(!len) <- u;
    let i = ref !len in
    incr len;
    while !i > 0 && !hd.((!i - 1) / 2) > !hd.(!i) do
      swap !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done
  in
  let pop () =
    let d = !hd.(0) and u = !hn.(0) in
    decr len;
    swap 0 !len;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < !len && !hd.(l) < !hd.(!s) then s := l;
      if r < !len && !hd.(r) < !hd.(!s) then s := r;
      if !s = !i then continue := false
      else begin
        swap !i !s;
        i := !s
      end
    done;
    (d, u)
  in
  List.iter
    (fun s ->
      if s >= 0 && s < n && dist.(s) > 0 then begin
        dist.(s) <- 0;
        push 0 s
      end)
    starts;
  while !len > 0 do
    let du, u = pop () in
    if du = dist.(u) then
      next u (fun cost v ->
          let d = du + cost in
          if d < dist.(v) then begin
            dist.(v) <- d;
            push d v
          end)
  done;
  dist

let weighted_distances_to ?viable g ~target ~cost =
  let n = Graph.node_count g in
  let ok = oracle viable in
  dijkstra n ~starts:[ target ] ~next:(fun u f ->
      List.iter
        (fun (e : Graph.edge) ->
          if ok e.Graph.src then f (cost e.Graph.elem) e.Graph.src)
        (Graph.preds g u))

let distances_to ?viable g ~target =
  let n = Graph.node_count g in
  let ok = oracle viable in
  zero_one_bfs n ~starts:[ target ] ~next:(fun u f ->
      List.iter
        (fun (e : Graph.edge) ->
          if ok e.Graph.src then f (Elem.cost e.Graph.elem) e.Graph.src)
        (Graph.preds g u))

let distances_from ?viable g ~sources =
  let n = Graph.node_count g in
  let ok = oracle viable in
  zero_one_bfs n ~starts:sources ~next:(fun u f ->
      List.iter
        (fun (e : Graph.edge) ->
          if ok e.Graph.dst then f (Elem.cost e.Graph.elem) e.Graph.dst)
        (Graph.succs g u))

let shortest_cost ?viable g ~sources ~target =
  let sources =
    match viable with None -> sources | Some ok -> List.filter ok sources
  in
  if sources = [] then None
  else
    let dist = distances_from ?viable g ~sources in
    if target < Array.length dist && dist.(target) < max_int then Some dist.(target)
    else None

(* The DFS core: enumerate acyclic paths from [source] to [target] of cost
   at most [budget], pruning with the precomputed backward distances. *)
let dfs_from g ~target ~dist_to ~on_path ~budget ~limit ~count ~results source =
  let rec dfs u cost rev_edges =
    if !count < limit then begin
      if u = target && rev_edges <> [] && cost > 0 then begin
        incr count;
        results := { source; edges = List.rev rev_edges } :: !results
      end;
      (* Even at the target, a 0-cost widening cycle cannot extend the
         path (acyclicity), so exploring further from the target is
         pointless: every continuation must eventually revisit it. *)
      if u <> target || rev_edges = [] then
        List.iter
          (fun (e : Graph.edge) ->
            let v = e.Graph.dst in
            let c' = cost + Elem.cost e.Graph.elem in
            if (not on_path.(v)) && dist_to.(v) < max_int && c' + dist_to.(v) <= budget
            then begin
              on_path.(v) <- true;
              dfs v c' (e :: rev_edges);
              on_path.(v) <- false
            end)
          (Graph.succs g u)
    end
  in
  if dist_to.(source) < max_int then begin
    on_path.(source) <- true;
    dfs source 0 [];
    on_path.(source) <- false
  end

(* When the DFS stops at [limit] the enumeration is clipped mid-flight; the
   [?truncated] flag (OR-ed, never cleared) lets callers surface that the
   result set may be incomplete instead of silently shipping a prefix. A
   count that lands exactly on [limit] is reported as truncated even if the
   DFS happened to have nothing further — conservative by design. *)
let flag_truncated truncated ~count ~limit =
  match truncated with
  | Some r -> if !count >= limit then r := true
  | None -> ()

let enumerate g ~sources ~target ?(slack = 1) ?(limit = 4096) ?viable ?truncated () =
  match shortest_cost ?viable g ~sources ~target with
  | None -> []
  | Some m ->
      let budget = m + slack in
      let dist_to = distances_to ?viable g ~target in
      let n = Graph.node_count g in
      let on_path = Array.make n false in
      let results = ref [] in
      let count = ref 0 in
      List.iter
        (dfs_from g ~target ~dist_to ~on_path ~budget ~limit ~count ~results)
        (List.sort_uniq compare sources);
      flag_truncated truncated ~count ~limit;
      List.rev !results

let enumerate_per_source g ~sources ~target ?(slack = 1) ?(limit = 4096) ?viable
    ?truncated () =
  (* One query per source, as content assist conceptually runs them; the
     backward BFS is shared, so the cost is close to a single query. Each
     source gets its own budget: its shortest cost to the target plus
     [slack]. *)
  if target >= Graph.node_count g then []
  else
    let dist_to = distances_to ?viable g ~target in
    let n = Graph.node_count g in
    let on_path = Array.make n false in
    let results = ref [] in
    let count = ref 0 in
    List.iter
      (fun source ->
        if source < n && dist_to.(source) < max_int then
          dfs_from g ~target ~dist_to ~on_path
            ~budget:(dist_to.(source) + slack)
            ~limit ~count ~results source)
      (List.sort_uniq compare sources);
    flag_truncated truncated ~count ~limit;
    List.rev !results

(* ------------------------------------------------------------------ *)
(* CSR variants: the same algorithms over a frozen snapshot            *)
(* ------------------------------------------------------------------ *)

(* A growable circular deque of ints for the CSR 0-1 BFS. Entries pack a
   (distance, node) pair as [(d lsl 31) lor u]; distances are bounded by the
   node count and node ids are dense, so both halves fit comfortably. The
   flat buffer avoids the cons-cell allocation of the list Deque on every
   relaxation — one of the two wins (with adjacency locality) of the CSR
   path. *)
module Ideque = struct
  type t = {
    mutable buf : int array;
    mutable head : int;  (* index of the front element *)
    mutable len : int;
  }

  let create () = { buf = Array.make 64 0; head = 0; len = 0 }

  let grow d =
    let cap = Array.length d.buf in
    let buf' = Array.make (cap * 2) 0 in
    for i = 0 to d.len - 1 do
      buf'.(i) <- d.buf.((d.head + i) mod cap)
    done;
    d.buf <- buf';
    d.head <- 0

  let push_front d x =
    if d.len = Array.length d.buf then grow d;
    let cap = Array.length d.buf in
    d.head <- (d.head + cap - 1) mod cap;
    d.buf.(d.head) <- x;
    d.len <- d.len + 1

  let push_back d x =
    if d.len = Array.length d.buf then grow d;
    d.buf.((d.head + d.len) mod Array.length d.buf) <- x;
    d.len <- d.len + 1

  (* Packed entries are non-negative, so -1 is a safe empty marker. *)
  let pop_front d =
    if d.len = 0 then -1
    else begin
      let x = d.buf.(d.head) in
      d.head <- (d.head + 1) mod Array.length d.buf;
      d.len <- d.len - 1;
      x
    end
end

module Csr = struct
  (* Shared 0-1 BFS core over one direction of the CSR: [off]/[adj]/[cost]
     are either the forward or the backward arrays. Relaxation order within
     a node follows the array order, which freeze built to match the
     adjacency lists, so distances (and the enumeration order downstream)
     agree with the list implementation exactly. *)
  let bfs n ~starts ~off ~adj ~cost ~viable =
    let dist = Array.make n max_int in
    let dq = Ideque.create () in
    let ok = match viable with None -> fun _ -> true | Some f -> f in
    List.iter
      (fun s ->
        if s >= 0 && s < n && dist.(s) > 0 then begin
          dist.(s) <- 0;
          Ideque.push_front dq s (* d = 0: the packed entry is just the id *)
        end)
      starts;
    let continue = ref true in
    while !continue do
      let x = Ideque.pop_front dq in
      if x < 0 then continue := false
      else begin
        let u = x land 0x7FFFFFFF in
        let du = x lsr 31 in
        if du = dist.(u) then
          for k = off.(u) to off.(u + 1) - 1 do
            let v = adj.(k) in
            let c = cost.(k) in
            let d = du + c in
            if d < dist.(v) && ok v then begin
              dist.(v) <- d;
              let packed = (d lsl 31) lor v in
              if c = 0 then Ideque.push_front dq packed else Ideque.push_back dq packed
            end
          done
      end
    done;
    dist

  let distances_to ?viable fz ~target =
    bfs fz.Graph.f_nodes ~starts:[ target ] ~off:fz.Graph.f_bwd_off
      ~adj:fz.Graph.f_bwd_src ~cost:fz.Graph.f_bwd_cost ~viable

  (* Weighted (mined) distances to the target, over the baked-in
     [f_bwd_wcost] — the backward rows carry no [edge], so the cost model
     must have been supplied at freeze time. *)
  let weighted_distances_to ?viable fz ~target =
    let off = fz.Graph.f_bwd_off in
    let adj = fz.Graph.f_bwd_src in
    let wcost = fz.Graph.f_bwd_wcost in
    let ok = oracle viable in
    dijkstra fz.Graph.f_nodes ~starts:[ target ] ~next:(fun u f ->
        for k = off.(u) to off.(u + 1) - 1 do
          let v = adj.(k) in
          if ok v then f wcost.(k) v
        done)

  let distances_from ?viable fz ~sources =
    bfs fz.Graph.f_nodes ~starts:sources ~off:fz.Graph.f_fwd_off
      ~adj:fz.Graph.f_fwd_dst ~cost:fz.Graph.f_fwd_cost ~viable

  let shortest_cost ?viable fz ~sources ~target =
    let sources =
      match viable with None -> sources | Some ok -> List.filter ok sources
    in
    if sources = [] then None
    else
      let dist = distances_from ?viable fz ~sources in
      if target < Array.length dist && dist.(target) < max_int then Some dist.(target)
      else None

  (* The DFS core of the list implementation, with the successor iteration
     turned into an index loop over the CSR row. *)
  let dfs_from fz ~target ~dist_to ~on_path ~budget ~limit ~count ~results source =
    let off = fz.Graph.f_fwd_off in
    let dst = fz.Graph.f_fwd_dst in
    let cost = fz.Graph.f_fwd_cost in
    let edge = fz.Graph.f_fwd_edge in
    let rec dfs u ucost rev_edges =
      if !count < limit then begin
        if u = target && rev_edges <> [] && ucost > 0 then begin
          incr count;
          results := { source; edges = List.rev rev_edges } :: !results
        end;
        (* Same acyclicity cut as the list version: nothing extends a path
           already at the target. *)
        if u <> target || rev_edges = [] then
          for k = off.(u) to off.(u + 1) - 1 do
            let v = dst.(k) in
            let c' = ucost + cost.(k) in
            if (not on_path.(v)) && dist_to.(v) < max_int && c' + dist_to.(v) <= budget
            then begin
              on_path.(v) <- true;
              dfs v c' (edge.(k) :: rev_edges);
              on_path.(v) <- false
            end
          done
      end
    in
    if dist_to.(source) < max_int then begin
      on_path.(source) <- true;
      dfs source 0 [];
      on_path.(source) <- false
    end

  let enumerate fz ~sources ~target ?(slack = 1) ?(limit = 4096) ?viable ?truncated
      () =
    match shortest_cost ?viable fz ~sources ~target with
    | None -> []
    | Some m ->
        let budget = m + slack in
        let dist_to = distances_to ?viable fz ~target in
        let n = fz.Graph.f_nodes in
        let on_path = Array.make n false in
        let results = ref [] in
        let count = ref 0 in
        List.iter
          (dfs_from fz ~target ~dist_to ~on_path ~budget ~limit ~count ~results)
          (List.sort_uniq compare sources);
        flag_truncated truncated ~count ~limit;
        List.rev !results

  let enumerate_per_source fz ~sources ~target ?(slack = 1) ?(limit = 4096) ?viable
      ?truncated () =
    if target >= fz.Graph.f_nodes then []
    else
      let dist_to = distances_to ?viable fz ~target in
      let n = fz.Graph.f_nodes in
      let on_path = Array.make n false in
      let results = ref [] in
      let count = ref 0 in
      List.iter
        (fun source ->
          if source < n && dist_to.(source) < max_int then
            dfs_from fz ~target ~dist_to ~on_path
              ~budget:(dist_to.(source) + slack)
              ~limit ~count ~results source)
        (List.sort_uniq compare sources);
      flag_truncated truncated ~count ~limit;
      List.rev !results
end
