type path = {
  source : Graph.node;
  edges : Graph.edge list;
}

let path_cost p = List.fold_left (fun acc e -> acc + Elem.cost e.Graph.elem) 0 p.edges

(* The two-list deque behind the list-based 0-1 BFS. Despite the persistent
   lists inside, the structure is mutable: push and pop update [front] and
   [back] in place, and [pop_front] reverses [back] into [front] when the
   front runs dry (amortized O(1)).

   Re-queue invariant: an entry [(d, u)] is pushed only when [d] strictly
   improves [dist.(u)] — 0-cost relaxations to the front, 1-cost ones to the
   back — so the deque holds at most two consecutive distance values at any
   time and every pushed distance is final or superseded. A popped entry
   whose distance no longer matches [dist.(u)] is stale (the node was
   improved again after this entry was queued) and is skipped, not
   re-expanded. *)
module Deque = struct
  type 'a t = {
    mutable front : 'a list;
    mutable back : 'a list;
  }

  let create () = { front = []; back = [] }

  let push_front d x = d.front <- x :: d.front

  let push_back d x = d.back <- x :: d.back

  let pop_front d =
    match d.front with
    | x :: rest ->
        d.front <- rest;
        Some x
    | [] -> (
        match List.rev d.back with
        | [] -> None
        | x :: rest ->
            d.front <- rest;
            d.back <- [];
            Some x)
end

(* A growable circular deque of ints for the CSR 0-1 BFS. Entries pack a
   (distance, node) pair as [(d lsl 31) lor u]; distances are bounded by the
   node count and node ids are dense, so both halves fit comfortably. The
   flat buffer avoids the cons-cell allocation of the list Deque on every
   relaxation — one of the wins (with adjacency locality) of the CSR path. *)
module Ideque = struct
  type t = {
    mutable buf : int array;
    mutable head : int;  (* index of the front element *)
    mutable len : int;
  }

  let create () = { buf = Array.make 64 0; head = 0; len = 0 }

  (* A drained deque keeps its grown buffer; reset just rewinds the
     cursors so the buffer can serve the next query. *)
  let reset d =
    d.head <- 0;
    d.len <- 0

  let grow d =
    let cap = Array.length d.buf in
    let buf' = Array.make (cap * 2) 0 in
    for i = 0 to d.len - 1 do
      buf'.(i) <- d.buf.((d.head + i) mod cap)
    done;
    d.buf <- buf';
    d.head <- 0

  let push_front d x =
    if d.len = Array.length d.buf then grow d;
    let cap = Array.length d.buf in
    d.head <- (d.head + cap - 1) mod cap;
    d.buf.(d.head) <- x;
    d.len <- d.len + 1

  let push_back d x =
    if d.len = Array.length d.buf then grow d;
    d.buf.((d.head + d.len) mod Array.length d.buf) <- x;
    d.len <- d.len + 1

  (* Packed entries are non-negative, so -1 is a safe empty marker. *)
  let pop_front d =
    if d.len = 0 then -1
    else begin
      let x = d.buf.(d.head) in
      d.head <- (d.head + 1) mod Array.length d.buf;
      d.len <- d.len - 1;
      x
    end
end

(* ------------------------------------------------------------------ *)
(* Epoch-stamped distance maps and per-domain scratch                  *)
(* ------------------------------------------------------------------ *)

(* A distance map that may be backed by recycled scratch: entry [u] is
   valid only when [stamp.(u) = epoch], otherwise it reads as [max_int].
   [epoch = 0] marks a plain (fully initialized) array — lane epochs are
   always >= 1 — so the plain case pays no stamp lookup. The point of the
   stamps is that a recycled lane never needs an O(n) clearing pass between
   queries: bumping the epoch invalidates every previous entry at once. *)
module Dist = struct
  type t = {
    d : int array;  (* capacity may exceed the current graph's node count *)
    stamp : int array;
    epoch : int;
  }

  let of_array a = { d = a; stamp = [||]; epoch = 0 }

  let[@inline] get t u =
    if u < 0 || u >= Array.length t.d then max_int
    else if t.epoch = 0 then Array.unsafe_get t.d u
    else if Array.unsafe_get t.stamp u = t.epoch then Array.unsafe_get t.d u
    else max_int

  let snapshot ~n t = Array.init n (fun u -> get t u)
end

(* Per-domain scratch: distance/stamp lanes and one packed deque, reused
   across queries so the steady-state search allocates nothing O(n). A
   caller brackets its query in [with_frame]; lanes taken inside the frame
   return to the free list when the outermost frame ends (frames nest —
   only the outermost releases, so a query running inside another query's
   frame cannot recycle its caller's live lanes). Taking a lane bumps its
   epoch, which invalidates all its previous contents without touching
   them; on the (once per ~2^62 takes) epoch wrap the stamps are zeroed
   explicitly. Outside any frame [take] hands out a fresh one-shot lane —
   nothing would ever release a pooled one, and one-shot lanes are safe to
   let escape (which [run_stream]'s lazily-forced sequences rely on). *)
module Scratch = struct
  type lane = {
    mutable ld : int array;
    mutable lstamp : int array;
    mutable lepoch : int;
  }

  type t = {
    mutable free : lane list;
    mutable busy : lane list;
    mutable dq : Ideque.t option;
    mutable depth : int;
  }

  let create () = { free = []; busy = []; dq = Some (Ideque.create ()); depth = 0 }

  let key = Domain.DLS.new_key create

  let domain () = Domain.DLS.get key

  let oneshot n = { ld = Array.make n 0; lstamp = Array.make n 0; lepoch = 1 }

  let take t n =
    if t.depth = 0 then oneshot n
    else begin
      let l =
        match t.free with
        | l :: rest ->
            t.free <- rest;
            l
        | [] -> { ld = [||]; lstamp = [||]; lepoch = 0 }
      in
      t.busy <- l :: t.busy;
      if Array.length l.ld < n then begin
        let cap = max n (2 * Array.length l.ld) in
        l.ld <- Array.make cap 0;
        l.lstamp <- Array.make cap 0;
        l.lepoch <- 0
      end;
      if l.lepoch = max_int then begin
        Array.fill l.lstamp 0 (Array.length l.lstamp) 0;
        l.lepoch <- 0
      end;
      l.lepoch <- l.lepoch + 1;
      l
    end

  let take_dq t =
    match t.dq with
    | Some d ->
        t.dq <- None;
        Ideque.reset d;
        d
    | None -> Ideque.create ()

  let give_dq t d =
    match t.dq with
    | None ->
        Ideque.reset d;
        t.dq <- Some d
    | Some _ -> ()

  let enter t = t.depth <- t.depth + 1

  let leave t =
    t.depth <- t.depth - 1;
    if t.depth <= 0 then begin
      t.depth <- 0;
      t.free <- List.rev_append t.busy t.free;
      t.busy <- []
    end

  let with_frame t f =
    enter t;
    Fun.protect ~finally:(fun () -> leave t) f
end

(* 0-1 BFS: [next u f] calls [f cost v] for each neighbor, cost 0 or 1 —
   an iterator rather than a returned list, so relaxing a node allocates
   nothing (the old [List.map]-per-visited-node built a transient pair list
   on every expansion). See the Deque comment for the re-queue discipline
   that keeps the deque small. *)
let zero_one_bfs n ~starts ~next =
  let dist = Array.make n max_int in
  let dq = Deque.create () in
  List.iter
    (fun s ->
      if s >= 0 && s < n && dist.(s) > 0 then begin
        dist.(s) <- 0;
        Deque.push_front dq (0, s)
      end)
    starts;
  let rec loop () =
    match Deque.pop_front dq with
    | None -> ()
    | Some (du, u) ->
        if du = dist.(u) then
          next u (fun cost v ->
              let d = du + cost in
              if d < dist.(v) then begin
                dist.(v) <- d;
                if cost = 0 then Deque.push_front dq (d, v)
                else Deque.push_back dq (d, v)
              end);
        loop ()
  in
  loop ();
  dist

(* [viable] is a pruning oracle ("can this node still reach the target?"):
   non-viable nodes are simply never relaxed. With the exact reachability
   cone this is result-preserving — any path that reaches the target lies
   entirely inside the cone — while shrinking the BFS frontier from the
   whole graph to the cone. *)
let oracle = function None -> fun _ -> true | Some ok -> ok

(* Dijkstra for the weighted (mined) cost model, where edge costs are
   arbitrary non-negative ints and the 0-1 deque trick no longer applies.
   The heap holds (dist, node) in two parallel arrays — unpacked, because
   weighted distances need not fit the 31-bit packing of the 0-1 deque.
   Lazy deletion: stale entries (dist no longer current) are skipped.
   Distances live in an epoch-stamped lane so the CSR path can recycle it
   across queries; the list-API wrapper below materializes the plain
   max_int-initialized array the public signature promises. *)
let dijkstra_into (lane : Scratch.lane) n ~starts ~next =
  let dist = lane.Scratch.ld
  and stamp = lane.Scratch.lstamp
  and epoch = lane.Scratch.lepoch in
  let hd = ref (Array.make 64 0) in
  (* distances *)
  let hn = ref (Array.make 64 0) in
  (* nodes *)
  let len = ref 0 in
  let swap i j =
    let d = !hd.(i) in
    !hd.(i) <- !hd.(j);
    !hd.(j) <- d;
    let v = !hn.(i) in
    !hn.(i) <- !hn.(j);
    !hn.(j) <- v
  in
  let push d u =
    if !len = Array.length !hd then begin
      let cap' = !len * 2 in
      let hd' = Array.make cap' 0 and hn' = Array.make cap' 0 in
      Array.blit !hd 0 hd' 0 !len;
      Array.blit !hn 0 hn' 0 !len;
      hd := hd';
      hn := hn'
    end;
    !hd.(!len) <- d;
    !hn.(!len) <- u;
    let i = ref !len in
    incr len;
    while !i > 0 && !hd.((!i - 1) / 2) > !hd.(!i) do
      swap !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done
  in
  let pop () =
    let d = !hd.(0) and u = !hn.(0) in
    decr len;
    swap 0 !len;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < !len && !hd.(l) < !hd.(!s) then s := l;
      if r < !len && !hd.(r) < !hd.(!s) then s := r;
      if !s = !i then continue := false
      else begin
        swap !i !s;
        i := !s
      end
    done;
    (d, u)
  in
  List.iter
    (fun s ->
      if s >= 0 && s < n && (stamp.(s) <> epoch || dist.(s) > 0) then begin
        dist.(s) <- 0;
        stamp.(s) <- epoch;
        push 0 s
      end)
    starts;
  while !len > 0 do
    let du, u = pop () in
    if du = dist.(u) then
      next u (fun cost v ->
          let d = du + cost in
          let dv =
            if Array.unsafe_get stamp v = epoch then Array.unsafe_get dist v
            else max_int
          in
          if d < dv then begin
            dist.(v) <- d;
            stamp.(v) <- epoch;
            push d v
          end)
  done

let dijkstra n ~starts ~next =
  let lane = Scratch.oneshot n in
  dijkstra_into lane n ~starts ~next;
  let dist = lane.Scratch.ld and stamp = lane.Scratch.lstamp in
  for u = 0 to n - 1 do
    if stamp.(u) <> 1 then dist.(u) <- max_int
  done;
  dist

let weighted_distances_to ?viable g ~target ~cost =
  let n = Graph.node_count g in
  let ok = oracle viable in
  dijkstra n ~starts:[ target ] ~next:(fun u f ->
      List.iter
        (fun (e : Graph.edge) ->
          if ok e.Graph.src then f (cost e.Graph.elem) e.Graph.src)
        (Graph.preds g u))

let distances_to ?viable g ~target =
  let n = Graph.node_count g in
  let ok = oracle viable in
  zero_one_bfs n ~starts:[ target ] ~next:(fun u f ->
      List.iter
        (fun (e : Graph.edge) ->
          if ok e.Graph.src then f (Elem.cost e.Graph.elem) e.Graph.src)
        (Graph.preds g u))

let distances_from ?viable g ~sources =
  let n = Graph.node_count g in
  let ok = oracle viable in
  zero_one_bfs n ~starts:sources ~next:(fun u f ->
      List.iter
        (fun (e : Graph.edge) ->
          if ok e.Graph.dst then f (Elem.cost e.Graph.elem) e.Graph.dst)
        (Graph.succs g u))

let shortest_cost ?viable g ~sources ~target =
  let sources =
    match viable with None -> sources | Some ok -> List.filter ok sources
  in
  if sources = [] then None
  else
    let dist = distances_from ?viable g ~sources in
    if target < Array.length dist && dist.(target) < max_int then Some dist.(target)
    else None

(* The DFS core: enumerate acyclic paths from [source] to [target] of cost
   at most [budget], pruning with the precomputed backward distances. *)
let dfs_from g ~target ~dist_to ~on_path ~budget ~limit ~count ~results source =
  let rec dfs u cost rev_edges =
    if !count < limit then begin
      if u = target && rev_edges <> [] && cost > 0 then begin
        incr count;
        results := { source; edges = List.rev rev_edges } :: !results
      end;
      (* Even at the target, a 0-cost widening cycle cannot extend the
         path (acyclicity), so exploring further from the target is
         pointless: every continuation must eventually revisit it. *)
      if u <> target || rev_edges = [] then
        List.iter
          (fun (e : Graph.edge) ->
            let v = e.Graph.dst in
            let c' = cost + Elem.cost e.Graph.elem in
            if (not on_path.(v)) && dist_to.(v) < max_int && c' + dist_to.(v) <= budget
            then begin
              on_path.(v) <- true;
              dfs v c' (e :: rev_edges);
              on_path.(v) <- false
            end)
          (Graph.succs g u)
    end
  in
  if dist_to.(source) < max_int then begin
    on_path.(source) <- true;
    dfs source 0 [];
    on_path.(source) <- false
  end

(* When the DFS stops at [limit] the enumeration is clipped mid-flight; the
   [?truncated] flag (OR-ed, never cleared) lets callers surface that the
   result set may be incomplete instead of silently shipping a prefix. A
   count that lands exactly on [limit] is reported as truncated even if the
   DFS happened to have nothing further — conservative by design. *)
let flag_truncated truncated ~count ~limit =
  match truncated with
  | Some r -> if !count >= limit then r := true
  | None -> ()

let enumerate g ~sources ~target ?(slack = 1) ?(limit = 4096) ?viable ?truncated () =
  match shortest_cost ?viable g ~sources ~target with
  | None -> []
  | Some m ->
      let budget = m + slack in
      let dist_to = distances_to ?viable g ~target in
      let n = Graph.node_count g in
      let on_path = Array.make n false in
      let results = ref [] in
      let count = ref 0 in
      List.iter
        (dfs_from g ~target ~dist_to ~on_path ~budget ~limit ~count ~results)
        (List.sort_uniq compare sources);
      flag_truncated truncated ~count ~limit;
      List.rev !results

let enumerate_per_source g ~sources ~target ?(slack = 1) ?(limit = 4096) ?viable
    ?truncated () =
  (* One query per source, as content assist conceptually runs them; the
     backward BFS is shared, so the cost is close to a single query. Each
     source gets its own budget: its shortest cost to the target plus
     [slack]. *)
  if target >= Graph.node_count g then []
  else
    let dist_to = distances_to ?viable g ~target in
    let n = Graph.node_count g in
    let on_path = Array.make n false in
    let results = ref [] in
    let count = ref 0 in
    List.iter
      (fun source ->
        if source < n && dist_to.(source) < max_int then
          dfs_from g ~target ~dist_to ~on_path
            ~budget:(dist_to.(source) + slack)
            ~limit ~count ~results source)
      (List.sort_uniq compare sources);
    flag_truncated truncated ~count ~limit;
    List.rev !results

(* ------------------------------------------------------------------ *)
(* CSR variants: the same algorithms over a frozen snapshot            *)
(* ------------------------------------------------------------------ *)

module Csr = struct
  let lane_of scratch n =
    match scratch with Some s -> Scratch.take s n | None -> Scratch.oneshot n

  let dist_of (lane : Scratch.lane) =
    { Dist.d = lane.Scratch.ld; stamp = lane.Scratch.lstamp; epoch = lane.Scratch.lepoch }

  (* Shared 0-1 BFS core over one direction of the CSR: [off]/[adj]/[cost]
     are either the forward or the backward lanes. Relaxation order within
     a node follows the array order, which freeze built to match the
     adjacency lists, so distances (and the enumeration order downstream)
     agree with the list implementation exactly. The viability check is the
     cone's bitset probed inline — two array loads per relaxed edge, no
     closure call. *)
  let bfs_into (lane : Scratch.lane) dq n ~starts ~(off : Graph.int_array1)
      ~(fin : Graph.int_array1) ~(adj : Graph.int_array1)
      ~(cost : Graph.cost_array1) ~cone =
    let dist = lane.Scratch.ld
    and stamp = lane.Scratch.lstamp
    and epoch = lane.Scratch.lepoch in
    let comp, cbits =
      match (cone : Reach.cone option) with
      | Some c -> (c.Reach.cone_comp, c.Reach.cone_bits)
      | None -> ([||], [||])
    in
    let pruned = Array.length comp > 0 in
    List.iter
      (fun s ->
        if s >= 0 && s < n && (stamp.(s) <> epoch || dist.(s) > 0) then begin
          dist.(s) <- 0;
          stamp.(s) <- epoch;
          Ideque.push_front dq s (* d = 0: the packed entry is just the id *)
        end)
      starts;
    let continue = ref true in
    while !continue do
      let x = Ideque.pop_front dq in
      if x < 0 then continue := false
      else begin
        let u = x land 0x7FFFFFFF in
        let du = x lsr 31 in
        (* [u] was pushed, so its stamp is current: the plain read is exact. *)
        if du = dist.(u) then
          for k = off.{u} to fin.{u} - 1 do
            let v = adj.{k} in
            let c = cost.{k} in
            let d = du + c in
            let dv =
              if Array.unsafe_get stamp v = epoch then Array.unsafe_get dist v
              else max_int
            in
            if
              d < dv
              && ((not pruned)
                 || Reach.Bits.mem cbits (Array.unsafe_get comp v))
            then begin
              Array.unsafe_set dist v d;
              Array.unsafe_set stamp v epoch;
              let packed = (d lsl 31) lor v in
              if c = 0 then Ideque.push_front dq packed else Ideque.push_back dq packed
            end
          done
      end
    done

  let bfs ?scratch n ~starts ~off ~fin ~adj ~cost ~cone =
    let lane = lane_of scratch n in
    let dq =
      match scratch with Some s -> Scratch.take_dq s | None -> Ideque.create ()
    in
    bfs_into lane dq n ~starts ~off ~fin ~adj ~cost ~cone;
    (match scratch with Some s -> Scratch.give_dq s dq | None -> ());
    dist_of lane

  let distances_to ?scratch ?cone fz ~target =
    bfs ?scratch fz.Graph.f_nodes ~starts:[ target ] ~off:fz.Graph.f_bwd_off
      ~fin:fz.Graph.f_bwd_end ~adj:fz.Graph.f_bwd_src ~cost:fz.Graph.f_bwd_cost
      ~cone

  (* Weighted (mined) distances to the target, over the baked-in
     [f_bwd_wcost] — the backward rows carry no [edge], so the cost model
     must have been supplied at freeze time. *)
  let weighted_distances_to ?scratch ?cone fz ~target =
    let off = fz.Graph.f_bwd_off in
    let fin = fz.Graph.f_bwd_end in
    let adj = fz.Graph.f_bwd_src in
    let wcost = fz.Graph.f_bwd_wcost in
    let n = fz.Graph.f_nodes in
    let comp, cbits =
      match (cone : Reach.cone option) with
      | Some c -> (c.Reach.cone_comp, c.Reach.cone_bits)
      | None -> ([||], [||])
    in
    let pruned = Array.length comp > 0 in
    let lane = lane_of scratch n in
    dijkstra_into lane n ~starts:[ target ] ~next:(fun u f ->
        for k = off.{u} to fin.{u} - 1 do
          let v = adj.{k} in
          if (not pruned) || Reach.Bits.mem cbits comp.(v) then f wcost.(k) v
        done);
    dist_of lane

  let distances_from ?scratch ?cone fz ~sources =
    bfs ?scratch fz.Graph.f_nodes ~starts:sources ~off:fz.Graph.f_fwd_off
      ~fin:fz.Graph.f_fwd_end ~adj:fz.Graph.f_fwd_dst ~cost:fz.Graph.f_fwd_cost
      ~cone

  let shortest_cost ?scratch ?cone fz ~sources ~target =
    let sources =
      match cone with
      | None -> sources
      | Some c -> List.filter (Reach.cone_viable c) sources
    in
    if sources = [] then None
    else
      let dist = distances_from ?scratch ?cone fz ~sources in
      match Dist.get dist target with d when d < max_int -> Some d | _ -> None

  (* The DFS core of the list implementation, with the successor iteration
     turned into an index loop over the CSR row. Two scale-driven changes
     against the list version: the path accumulates edge {e indices} and
     resolves them through the cold [f_fwd_edge] table only when a complete
     path is materialized (the boxed edge records stay out of the search's
     cache lines), and the on-path marker is an epoch-stamped lane instead
     of an [Array.make n false] per enumeration. *)
  let dfs_from fz ~target ~(dist_to : Dist.t) ~(on_path : Scratch.lane) ~budget
      ~limit ~count ~results source =
    let off = fz.Graph.f_fwd_off in
    let fin = fz.Graph.f_fwd_end in
    let dst = fz.Graph.f_fwd_dst in
    let cost = fz.Graph.f_fwd_cost in
    let edge = fz.Graph.f_fwd_edge in
    let dd = dist_to.Dist.d
    and dstamp = dist_to.Dist.stamp
    and depoch = dist_to.Dist.epoch in
    let pstamp = on_path.Scratch.lstamp and pepoch = on_path.Scratch.lepoch in
    let rec dfs u ucost rev_ks =
      if !count < limit then begin
        if u = target && rev_ks <> [] && ucost > 0 then begin
          incr count;
          results :=
            { source; edges = List.rev_map (fun k -> edge.(k)) rev_ks } :: !results
        end;
        (* Same acyclicity cut as the list version: nothing extends a path
           already at the target. *)
        if u <> target || rev_ks = [] then
          for k = off.{u} to fin.{u} - 1 do
            let v = dst.{k} in
            let c' = ucost + cost.{k} in
            let dv =
              if depoch = 0 then Array.unsafe_get dd v
              else if Array.unsafe_get dstamp v = depoch then Array.unsafe_get dd v
              else max_int
            in
            if pstamp.(v) <> pepoch && dv < max_int && c' + dv <= budget then begin
              pstamp.(v) <- pepoch;
              dfs v c' (k :: rev_ks);
              (* 0 is never a live epoch, so this unmarks unconditionally *)
              pstamp.(v) <- 0
            end
          done
      end
    in
    if Dist.get dist_to source < max_int then begin
      pstamp.(source) <- pepoch;
      dfs source 0 [];
      pstamp.(source) <- 0
    end

  let enumerate ?scratch fz ~sources ~target ?(slack = 1) ?(limit = 4096) ?cone
      ?truncated () =
    match shortest_cost ?scratch ?cone fz ~sources ~target with
    | None -> []
    | Some m ->
        let budget = m + slack in
        let dist_to = distances_to ?scratch ?cone fz ~target in
        let n = fz.Graph.f_nodes in
        let on_path = lane_of scratch n in
        let results = ref [] in
        let count = ref 0 in
        List.iter
          (dfs_from fz ~target ~dist_to ~on_path ~budget ~limit ~count ~results)
          (List.sort_uniq compare sources);
        flag_truncated truncated ~count ~limit;
        List.rev !results

  let enumerate_per_source ?scratch fz ~sources ~target ?(slack = 1) ?(limit = 4096)
      ?cone ?truncated () =
    if target >= fz.Graph.f_nodes then []
    else
      let dist_to = distances_to ?scratch ?cone fz ~target in
      let n = fz.Graph.f_nodes in
      let on_path = lane_of scratch n in
      let results = ref [] in
      let count = ref 0 in
      List.iter
        (fun source ->
          if source < n && Dist.get dist_to source < max_int then
            dfs_from fz ~target ~dist_to ~on_path
              ~budget:(Dist.get dist_to source + slack)
              ~limit ~count ~results source)
        (List.sort_uniq compare sources);
      flag_truncated truncated ~count ~limit;
      List.rev !results
end
