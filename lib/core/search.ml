type path = {
  source : Graph.node;
  edges : Graph.edge list;
}

let path_cost p = List.fold_left (fun acc e -> acc + Elem.cost e.Graph.elem) 0 p.edges

(* A small functional deque for the 0-1 BFS. *)
module Deque = struct
  type 'a t = {
    mutable front : 'a list;
    mutable back : 'a list;
  }

  let create () = { front = []; back = [] }

  let push_front d x = d.front <- x :: d.front

  let push_back d x = d.back <- x :: d.back

  let pop_front d =
    match d.front with
    | x :: rest ->
        d.front <- rest;
        Some x
    | [] -> (
        match List.rev d.back with
        | [] -> None
        | x :: rest ->
            d.front <- rest;
            d.back <- [];
            Some x)
end

(* 0-1 BFS: [next u] yields [(cost, v)] pairs with cost 0 or 1. A node can
   be improved (and re-queued) at most twice, so the deque stays small. *)
let zero_one_bfs n ~starts ~next =
  let dist = Array.make n max_int in
  let dq = Deque.create () in
  List.iter
    (fun s ->
      if s >= 0 && s < n && dist.(s) > 0 then begin
        dist.(s) <- 0;
        Deque.push_front dq (0, s)
      end)
    starts;
  let rec loop () =
    match Deque.pop_front dq with
    | None -> ()
    | Some (du, u) ->
        if du = dist.(u) then
          List.iter
            (fun (cost, v) ->
              let d = dist.(u) + cost in
              if d < dist.(v) then begin
                dist.(v) <- d;
                if cost = 0 then Deque.push_front dq (d, v)
                else Deque.push_back dq (d, v)
              end)
            (next u);
        loop ()
  in
  loop ();
  dist

(* [viable] is a pruning oracle ("can this node still reach the target?"):
   non-viable nodes are simply never relaxed. With the exact reachability
   cone this is result-preserving — any path that reaches the target lies
   entirely inside the cone — while shrinking the BFS frontier from the
   whole graph to the cone. *)
let keep viable step =
  match viable with
  | None -> step
  | Some ok -> List.filter (fun (_, v) -> ok v) step

let distances_to ?viable g ~target =
  let n = Graph.node_count g in
  zero_one_bfs n ~starts:[ target ] ~next:(fun u ->
      keep viable
        (List.map (fun e -> (Elem.cost e.Graph.elem, e.Graph.src)) (Graph.preds g u)))

let distances_from ?viable g ~sources =
  let n = Graph.node_count g in
  zero_one_bfs n ~starts:sources ~next:(fun u ->
      keep viable
        (List.map (fun e -> (Elem.cost e.Graph.elem, e.Graph.dst)) (Graph.succs g u)))

let shortest_cost ?viable g ~sources ~target =
  let sources =
    match viable with None -> sources | Some ok -> List.filter ok sources
  in
  if sources = [] then None
  else
    let dist = distances_from ?viable g ~sources in
    if target < Array.length dist && dist.(target) < max_int then Some dist.(target)
    else None

(* The DFS core: enumerate acyclic paths from [source] to [target] of cost
   at most [budget], pruning with the precomputed backward distances. *)
let dfs_from g ~target ~dist_to ~on_path ~budget ~limit ~count ~results source =
  let rec dfs u cost rev_edges =
    if !count < limit then begin
      if u = target && rev_edges <> [] && cost > 0 then begin
        incr count;
        results := { source; edges = List.rev rev_edges } :: !results
      end;
      (* Even at the target, a 0-cost widening cycle cannot extend the
         path (acyclicity), so exploring further from the target is
         pointless: every continuation must eventually revisit it. *)
      if u <> target || rev_edges = [] then
        List.iter
          (fun (e : Graph.edge) ->
            let v = e.Graph.dst in
            let c' = cost + Elem.cost e.Graph.elem in
            if (not on_path.(v)) && dist_to.(v) < max_int && c' + dist_to.(v) <= budget
            then begin
              on_path.(v) <- true;
              dfs v c' (e :: rev_edges);
              on_path.(v) <- false
            end)
          (Graph.succs g u)
    end
  in
  if dist_to.(source) < max_int then begin
    on_path.(source) <- true;
    dfs source 0 [];
    on_path.(source) <- false
  end

let enumerate g ~sources ~target ?(slack = 1) ?(limit = 4096) ?viable () =
  match shortest_cost ?viable g ~sources ~target with
  | None -> []
  | Some m ->
      let budget = m + slack in
      let dist_to = distances_to ?viable g ~target in
      let n = Graph.node_count g in
      let on_path = Array.make n false in
      let results = ref [] in
      let count = ref 0 in
      List.iter
        (dfs_from g ~target ~dist_to ~on_path ~budget ~limit ~count ~results)
        (List.sort_uniq compare sources);
      List.rev !results

let enumerate_per_source g ~sources ~target ?(slack = 1) ?(limit = 4096) ?viable () =
  (* One query per source, as content assist conceptually runs them; the
     backward BFS is shared, so the cost is close to a single query. Each
     source gets its own budget: its shortest cost to the target plus
     [slack]. *)
  if target >= Graph.node_count g then []
  else
    let dist_to = distances_to ?viable g ~target in
    let n = Graph.node_count g in
    let on_path = Array.make n false in
    let results = ref [] in
    let count = ref 0 in
    List.iter
      (fun source ->
        if source < n && dist_to.(source) < max_int then
          dfs_from g ~target ~dist_to ~on_path
            ~budget:(dist_to.(source) + slack)
            ~limit ~count ~results source)
      (List.sort_uniq compare sources);
    List.rev !results
