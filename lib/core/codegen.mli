(** Java code generation from jungloids (Sections 2.2 and 5).

    Each non-widening elementary jungloid becomes one statement; widening
    has no syntax and only changes the static type the next statement sees.
    Reference-typed free variables are declared with a
    [// free variable] comment, exactly as the paper's FAQ 270 example
    declares [DocumentProviderRegistry dpreg] — the user is expected to run
    a follow-up query to produce each one. Primitive-typed free variables
    are filled with a default literal ([false], [0]), matching the paper's
    [AST.parseCompilationUnit(cu, false)] rendering. *)

module Jtype = Javamodel.Jtype

type generated = {
  code : string;  (** the statements, newline-separated *)
  result_var : string;  (** name of the variable holding the output *)
  free_var_names : (string * Jtype.t) list;
      (** declared free variables the user still has to produce *)
}

val generate : ?input:string * Jtype.t -> ?qualified:bool -> Jungloid.t -> generated
(** [generate ~input:("ep", t) j] names the jungloid input [ep]; when
    [input] is omitted a variable named after the input type is assumed to
    exist in scope (for [Void]-input jungloids no input is referenced at
    all). Variable names are derived from type names and uniquified.

    With [qualified] (default [false]) type and class references are
    rendered fully qualified — the form the analyzer's round-trip re-parse
    uses, since simple names need import context to resolve. *)

val to_java : ?input:string * Jtype.t -> ?qualified:bool -> Jungloid.t -> string
(** Just the code of {!generate}. *)

val var_name_of_type : Jtype.t -> string
(** Naming convention used for generated locals: simple name, leading
    interface-[I] stripped, first letter lowercased — [IEditorInput] becomes
    [editorInput]. Names that collide with a Java keyword are rewritten
    ([Class] becomes [clazz]). Exposed for tests. *)
