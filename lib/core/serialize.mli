(** On-disk graph representation (Section 5: the paper's graph "occupies
    8 MB of space on disk and 24 MB when loaded into memory. Loading the
    graph takes 1.5 seconds").

    The format is OCaml's Marshal with a magic header and format version —
    compact and fast, at the usual Marshal caveat: files are only readable
    by a compatible build, so they are a cache, not an interchange format
    (the interchange format is [.japi] text, which {!Japi.Printer}
    round-trips). *)

exception Format_error of string

(** Why a cache file could not be loaded. Loaders classify every failure —
    missing file, short read, foreign file, version skew, garbled Marshal
    payload — instead of letting [Failure]/[End_of_file] escape from
    Marshal: a corrupt cache must degrade to a cold rebuild (with a
    warning), never crash the server ([serve.t] pins the CLI behavior). *)
type error =
  | Io of string  (** open/read failed ([Sys_error]/[Unix_error] text) *)
  | Bad_magic of string  (** not one of our files; carries what was found *)
  | Bad_version of { found : int; expected : int }
  | Corrupt of string  (** right header, unusable payload *)

val error_message : error -> string
(** One-line human-readable rendering (for warnings and logs). *)

val save : Graph.t -> string -> int
(** [save g path] writes the graph and returns the byte size written. *)

val load_result : string -> (Graph.t, error) result

val load : string -> Graph.t
(** @raise Format_error on a missing/garbled header, version mismatch, or
    corrupt payload (the raising veneer over {!load_result}).
    @raise Sys_error on I/O failure. *)

val to_bytes : Graph.t -> bytes

val of_bytes : bytes -> Graph.t

(** {2 Frozen CSR snapshots (v2)}

    The scale format: the {!Graph.frozen} hot lanes are stored as raw
    page-aligned segments after a small Marshal'd cold section, so
    {!load_frozen} can hand them to [Unix.map_file] untranslated. A warm
    start then costs O(pages actually touched) instead of a full
    deserialize + re-intern, the mapped segments are shared read-only
    across every domain (and every process) serving the same snapshot, and
    the OS page cache persists them across server restarts. The cold half
    (boxed edge elems, type metadata, interning table) still loads
    eagerly — it is small and heap-allocated either way. *)

val save_frozen : Graph.frozen -> string -> int
(** [save_frozen fz path] writes the snapshot and returns the byte size.
    Weighted-cost arrays are persisted as-is; a loader that wants a
    different cost model re-bakes with {!Graph.rebake}. *)

val load_frozen : ?mmap:bool -> string -> (Graph.frozen, error) result
(** Load a v2 snapshot. With [mmap] (the default) the six hot segments are
    mapped read-only and lazily paged; with [~mmap:false] they are read
    into fresh heap-external arrays (bit-identical result — the property
    suite checks both against the original freeze). File size and segment
    bounds are validated {e before} mapping, so a truncated file is a
    [Corrupt] error, never a [SIGBUS]. A v1 graph file reports
    [Bad_magic] — callers fall back to {!load_result}. *)

(** {2 Reachability index}

    The {!Reach} index is a pure function of the graph, so it is persisted
    beside the graph as a second cache file: a server restart loads both and
    skips the closure computation. {!Reach.generation} survives the round
    trip, so the usual generation check still guards against pairing a stale
    index with a newer graph. *)

val save_reach : Reach.t -> string -> int
(** [save_reach r path] writes the index and returns the byte size. *)

val load_reach_result : string -> (Reach.t, error) result

val load_reach : string -> Reach.t
(** @raise Format_error on a missing/garbled header or version mismatch.
    @raise Sys_error on I/O failure. *)

val reach_to_bytes : Reach.t -> bytes

val reach_of_bytes : bytes -> Reach.t
