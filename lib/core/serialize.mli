(** On-disk graph representation (Section 5: the paper's graph "occupies
    8 MB of space on disk and 24 MB when loaded into memory. Loading the
    graph takes 1.5 seconds").

    The format is OCaml's Marshal with a magic header and format version —
    compact and fast, at the usual Marshal caveat: files are only readable
    by a compatible build, so they are a cache, not an interchange format
    (the interchange format is [.japi] text, which {!Japi.Printer}
    round-trips). *)

exception Format_error of string

val save : Graph.t -> string -> int
(** [save g path] writes the graph and returns the byte size written. *)

val load : string -> Graph.t
(** @raise Format_error on a missing/garbled header or version mismatch.
    @raise Sys_error on I/O failure. *)

val to_bytes : Graph.t -> bytes

val of_bytes : bytes -> Graph.t

(** {2 Reachability index}

    The {!Reach} index is a pure function of the graph, so it is persisted
    beside the graph as a second cache file: a server restart loads both and
    skips the closure computation. {!Reach.generation} survives the round
    trip, so the usual generation check still guards against pairing a stale
    index with a newer graph. *)

val save_reach : Reach.t -> string -> int
(** [save_reach r path] writes the index and returns the byte size. *)

val load_reach : string -> Reach.t
(** @raise Format_error on a missing/garbled header or version mismatch.
    @raise Sys_error on I/O failure. *)

val reach_to_bytes : Reach.t -> bytes

val reach_of_bytes : bytes -> Reach.t
