(** Graph statistics for the Section 5 performance measurements: node and
    edge counts by kind, and an estimate of in-memory size (the paper
    reports 24 MB for J2SE + Eclipse; our curated subset is smaller, the
    bench reports the analogous figure). *)

type t = {
  nodes : int;
  real_nodes : int;
  typestate_nodes : int;
  edges : int;
  widen_edges : int;
  downcast_edges : int;
  call_edges : int;
  field_edges : int;
  approx_bytes : int;
}

val of_graph : Graph.t -> t

val of_frozen : Graph.frozen -> t
(** Same figures from a CSR snapshot, without touching the mutable graph —
    what the server's lock-free stats op uses. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val pp_cache : Format.formatter -> Qcache.stats -> unit
(** One-line rendering of the query-cache counters ({!Query.engine_stats}):
    occupancy, hits, misses, hit rate, evictions, invalidations. *)

val cache_to_string : Qcache.stats -> string
