module Jtype = Javamodel.Jtype

type node = int

type edge = {
  elem : Elem.t;
  src : node;
  dst : node;
}

type info = {
  ty : Jtype.t;
  origin : string option;  (* Some = typestate node *)
}

type t = {
  ids : (string, node) Hashtbl.t;  (* real type key -> id *)
  mutable info : info array;
  mutable fwd : edge list array;
  mutable bwd : edge list array;
  mutable n : int;
  mutable edges : int;
  mutable generation : int;
  edge_seen : (node * Elem.t * node, unit) Hashtbl.t;
}

let initial_capacity = 256

let create () =
  {
    ids = Hashtbl.create initial_capacity;
    info = Array.make initial_capacity { ty = Jtype.Void; origin = None };
    fwd = Array.make initial_capacity [];
    bwd = Array.make initial_capacity [];
    n = 0;
    edges = 0;
    generation = 0;
    edge_seen = Hashtbl.create initial_capacity;
  }

let grow t =
  let cap = Array.length t.info in
  if t.n >= cap then begin
    let cap' = cap * 2 in
    let info' = Array.make cap' { ty = Jtype.Void; origin = None } in
    Array.blit t.info 0 info' 0 t.n;
    t.info <- info';
    let fwd' = Array.make cap' [] in
    Array.blit t.fwd 0 fwd' 0 t.n;
    t.fwd <- fwd';
    let bwd' = Array.make cap' [] in
    Array.blit t.bwd 0 bwd' 0 t.n;
    t.bwd <- bwd'
  end

let fresh_node t info =
  grow t;
  let id = t.n in
  t.info.(id) <- info;
  t.n <- t.n + 1;
  t.generation <- t.generation + 1;
  id

let type_key ty = Jtype.to_string ty

let ensure_type_node t ty =
  let key = type_key ty in
  match Hashtbl.find_opt t.ids key with
  | Some id -> id
  | None ->
      let id = fresh_node t { ty; origin = None } in
      Hashtbl.replace t.ids key id;
      id

let find_type_node t ty = Hashtbl.find_opt t.ids (type_key ty)

let void_node t = ensure_type_node t Jtype.Void

let add_typestate t ~underlying ~origin =
  fresh_node t { ty = underlying; origin = Some origin }

let add_edge t ~src elem ~dst =
  let key = (src, elem, dst) in
  if not (Hashtbl.mem t.edge_seen key) then begin
    Hashtbl.replace t.edge_seen key ();
    let e = { elem; src; dst } in
    t.fwd.(src) <- e :: t.fwd.(src);
    t.bwd.(dst) <- e :: t.bwd.(dst);
    t.edges <- t.edges + 1;
    t.generation <- t.generation + 1
  end

let node_type t id = t.info.(id).ty

let is_typestate t id = t.info.(id).origin <> None

let typestate_origin t id = t.info.(id).origin

let succs t id = t.fwd.(id)

let preds t id = t.bwd.(id)

let node_count t = t.n

let edge_count t = t.edges

let generation t = t.generation

let nodes t = List.init t.n (fun i -> i)

let iter_edges t f =
  for i = 0 to t.n - 1 do
    List.iter f t.fwd.(i)
  done

let real_nodes t =
  Hashtbl.fold (fun _ id acc -> (t.info.(id).ty, id) :: acc) t.ids []
  |> List.sort (fun (a, _) (b, _) -> Jtype.compare a b)

(* ---------- frozen CSR snapshot ---------- *)

(* Hot arrays live out of the OCaml heap. Kind [Bigarray.int] (a native
   word) rather than the int32 one might expect: without flambda every
   [Int32] read allocates a box, which would put an allocation on every
   relaxed edge — the exact cost this layout exists to remove. Edge costs
   are 0/1 so they pack into uint16 lanes. *)
type int_array1 = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type cost_array1 =
  (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let ba_int len : int_array1 =
  Bigarray.Array1.create Bigarray.int Bigarray.c_layout len

let ba_cost len : cost_array1 =
  Bigarray.Array1.create Bigarray.int16_unsigned Bigarray.c_layout len

type frozen = {
  f_generation : int;
  f_nodes : int;
  f_edges : int;
  f_fwd_off : int_array1;
  f_fwd_end : int_array1;
  f_fwd_dst : int_array1;
  f_fwd_cost : cost_array1;
  f_fwd_wcost : int array;
  f_fwd_edge : edge array;
  f_bwd_off : int_array1;
  f_bwd_end : int_array1;
  f_bwd_src : int_array1;
  f_bwd_cost : cost_array1;
  f_bwd_wcost : int array;
  f_fwd_used : int;
  f_bwd_used : int;
  f_plain : bool;
  f_tail : bool Atomic.t;
  f_types : Jtype.t array;
  f_origins : string option array;
  f_ids : (string, node) Hashtbl.t;
  f_void : node option;
}

let default_wcost e = Elem.cost_scale * Elem.cost e

(* Tail slack reserved past the last live edge so incremental patches
   ([Delta]) can relocate rewritten rows by appending instead of copying
   every lane. ~12.5% keeps the overhead bounded while surviving many
   single-class edits before a compaction. *)
let default_slack m = max 64 (m / 8)

(* A dense snapshot's row ends are exactly the next row's offsets, so the
   end lane is a storage-sharing view of [off] shifted by one. *)
let dense_end (off : int_array1) n : int_array1 = Bigarray.Array1.sub off 1 n

(* Backward rows are derived from the forward rows by a counting sort on
   destination, so each [v]'s predecessors appear in ascending forward-edge
   order. This makes the backward representation a pure function of the
   forward one — which is what lets [rebake] recompute [f_bwd_wcost] for a
   new cost model without any stored fwd->bwd mapping, and lets the
   serialized form carry only forward [Elem.t]s. Distance sweeps are
   relaxation-order independent, so the (deliberate) departure from [preds]
   order is unobservable in results. *)
let derive_bwd ?cap ~n ~m ~(fwd_off : int_array1) ~(fwd_end : int_array1)
    ~(fwd_dst : int_array1) ~(fwd_cost : cost_array1) ~fwd_wcost () =
  let cap = match cap with Some c -> c | None -> m in
  let bwd_off = ba_int (n + 1) in
  Bigarray.Array1.fill bwd_off 0;
  for u = 0 to n - 1 do
    for k = fwd_off.{u} to fwd_end.{u} - 1 do
      let v = fwd_dst.{k} in
      bwd_off.{v + 1} <- bwd_off.{v + 1} + 1
    done
  done;
  for v = 0 to n - 1 do
    bwd_off.{v + 1} <- bwd_off.{v + 1} + bwd_off.{v}
  done;
  let bwd_src = ba_int cap in
  let bwd_cost = ba_cost cap in
  let bwd_wcost = Array.make cap 0 in
  let cursor = Array.make (max n 1) 0 in
  for u = 0 to n - 1 do
    for k = fwd_off.{u} to fwd_end.{u} - 1 do
      let v = fwd_dst.{k} in
      let j = bwd_off.{v} + cursor.(v) in
      cursor.(v) <- cursor.(v) + 1;
      bwd_src.{j} <- u;
      bwd_cost.{j} <- fwd_cost.{k};
      bwd_wcost.(j) <- fwd_wcost.(k)
    done
  done;
  (bwd_off, bwd_src, bwd_cost, bwd_wcost)

let freeze ?(wcost = default_wcost) t =
  let n = t.n in
  (* Forward adjacency, in the exact order [succs] yields it, so a DFS over
     the CSR enumerates paths in the same order as one over the lists. *)
  let fwd_off = ba_int (n + 1) in
  fwd_off.{0} <- 0;
  for u = 0 to n - 1 do
    fwd_off.{u + 1} <- fwd_off.{u} + List.length t.fwd.(u)
  done;
  let m = fwd_off.{n} in
  let cap = m + default_slack m in
  let dummy =
    { elem = Elem.Widen { from_ = Jtype.Void; to_ = Jtype.Void }; src = 0; dst = 0 }
  in
  let fwd_dst = ba_int cap in
  let fwd_cost = ba_cost cap in
  let fwd_wcost = Array.make cap 0 in
  let fwd_edge = Array.make cap dummy in
  let plain = ref true in
  for u = 0 to n - 1 do
    let k = ref fwd_off.{u} in
    List.iter
      (fun e ->
        fwd_dst.{!k} <- e.dst;
        fwd_cost.{!k} <- Elem.cost e.elem;
        fwd_wcost.(!k) <- wcost e.elem;
        fwd_edge.(!k) <- e;
        if Elem.is_downcast e.elem then plain := false;
        incr k)
      t.fwd.(u)
  done;
  let fwd_end = dense_end fwd_off n in
  let bwd_off, bwd_src, bwd_cost, bwd_wcost =
    derive_bwd ~cap ~n ~m ~fwd_off ~fwd_end ~fwd_dst ~fwd_cost ~fwd_wcost ()
  in
  for i = 0 to n - 1 do
    if t.info.(i).origin <> None then plain := false
  done;
  {
    f_generation = t.generation;
    f_nodes = n;
    f_edges = t.edges;
    f_fwd_off = fwd_off;
    f_fwd_end = fwd_end;
    f_fwd_dst = fwd_dst;
    f_fwd_cost = fwd_cost;
    f_fwd_wcost = fwd_wcost;
    f_fwd_edge = fwd_edge;
    f_bwd_off = bwd_off;
    f_bwd_end = dense_end bwd_off n;
    f_bwd_src = bwd_src;
    f_bwd_cost = bwd_cost;
    f_bwd_wcost = bwd_wcost;
    f_fwd_used = m;
    f_bwd_used = m;
    f_plain = !plain;
    f_tail = Atomic.make false;
    f_types = Array.init n (fun i -> t.info.(i).ty);
    f_origins = Array.init n (fun i -> t.info.(i).origin);
    f_ids = Hashtbl.copy t.ids;
    f_void = Hashtbl.find_opt t.ids (type_key Jtype.Void);
  }

(* Recompute the weighted-cost lanes for a new cost model, in place in the
   physical layout: forward positions are keyed by the edge table, and each
   backward row is refilled by the same forward-scan order that built it
   (ascending source, then row offset) — valid for dense and appended
   layouts alike. Shares every other lane with the input, including the
   tail-claim token (the physical tails are the same storage). *)
let rebake ?(wcost = default_wcost) fz =
  let n = fz.f_nodes in
  let cap = Array.length fz.f_fwd_edge in
  let bcap = Array.length fz.f_bwd_wcost in
  let fwd_wcost = Array.make cap 0 in
  let bwd_wcost = Array.make bcap 0 in
  let cursor = Array.make (max n 1) 0 in
  for u = 0 to n - 1 do
    for k = fz.f_fwd_off.{u} to fz.f_fwd_end.{u} - 1 do
      let w = wcost fz.f_fwd_edge.(k).elem in
      fwd_wcost.(k) <- w;
      let v = fz.f_fwd_dst.{k} in
      bwd_wcost.(fz.f_bwd_off.{v} + cursor.(v)) <- w;
      cursor.(v) <- cursor.(v) + 1
    done
  done;
  { fz with f_fwd_wcost = fwd_wcost; f_bwd_wcost = bwd_wcost }

(* Dense copy of a (possibly appended / holey) snapshot: rows packed back
   into offset order with fresh tail slack. Maximal physically contiguous
   stretches of rows are copied with one blit each, so compacting a
   lightly-patched snapshot is a handful of memcpys. *)
let compact ?slack fz =
  let n = fz.f_nodes in
  let off = fz.f_fwd_off and fin = fz.f_fwd_end in
  let off' = ba_int (n + 1) in
  off'.{0} <- 0;
  for u = 0 to n - 1 do
    off'.{u + 1} <- off'.{u} + (fin.{u} - off.{u})
  done;
  let m = off'.{n} in
  let cap = m + (match slack with Some s -> s | None -> default_slack m) in
  let dummy =
    { elem = Elem.Widen { from_ = Jtype.Void; to_ = Jtype.Void }; src = 0; dst = 0 }
  in
  let run_copy ~(off : int_array1) ~(fin : int_array1) ~(off' : int_array1)
      copy_span =
    let u = ref 0 in
    while !u < n do
      let u0 = !u in
      let p0 = off.{u0} in
      let pe = ref fin.{u0} in
      incr u;
      while !u < n && off.{!u} = !pe do
        pe := fin.{!u};
        incr u
      done;
      let len = !pe - p0 in
      if len > 0 then copy_span ~src0:p0 ~dst0:off'.{u0} ~len
    done
  in
  let dst' = ba_int cap in
  let cost' = ba_cost cap in
  let wcost' = Array.make cap 0 in
  let edge' = Array.make cap dummy in
  run_copy ~off ~fin ~off' (fun ~src0 ~dst0 ~len ->
      Bigarray.Array1.blit
        (Bigarray.Array1.sub fz.f_fwd_dst src0 len)
        (Bigarray.Array1.sub dst' dst0 len);
      Bigarray.Array1.blit
        (Bigarray.Array1.sub fz.f_fwd_cost src0 len)
        (Bigarray.Array1.sub cost' dst0 len);
      Array.blit fz.f_fwd_wcost src0 wcost' dst0 len;
      Array.blit fz.f_fwd_edge src0 edge' dst0 len);
  let boff = fz.f_bwd_off and bfin = fz.f_bwd_end in
  let boff' = ba_int (n + 1) in
  boff'.{0} <- 0;
  for v = 0 to n - 1 do
    boff'.{v + 1} <- boff'.{v} + (bfin.{v} - boff.{v})
  done;
  let bsrc' = ba_int cap in
  let bcost' = ba_cost cap in
  let bwcost' = Array.make cap 0 in
  run_copy ~off:boff ~fin:bfin ~off':boff' (fun ~src0 ~dst0 ~len ->
      Bigarray.Array1.blit
        (Bigarray.Array1.sub fz.f_bwd_src src0 len)
        (Bigarray.Array1.sub bsrc' dst0 len);
      Bigarray.Array1.blit
        (Bigarray.Array1.sub fz.f_bwd_cost src0 len)
        (Bigarray.Array1.sub bcost' dst0 len);
      Array.blit fz.f_bwd_wcost src0 bwcost' dst0 len);
  {
    fz with
    f_fwd_off = off';
    f_fwd_end = dense_end off' n;
    f_fwd_dst = dst';
    f_fwd_cost = cost';
    f_fwd_wcost = wcost';
    f_fwd_edge = edge';
    f_bwd_off = boff';
    f_bwd_end = dense_end boff' n;
    f_bwd_src = bsrc';
    f_bwd_cost = bcost';
    f_bwd_wcost = bwcost';
    f_fwd_used = m;
    f_bwd_used = m;
    f_tail = Atomic.make false;
  }

let is_compact fz =
  fz.f_fwd_used = fz.f_edges
  && fz.f_bwd_used = fz.f_edges
  && Bigarray.Array1.dim fz.f_fwd_dst = fz.f_edges
  && Bigarray.Array1.dim fz.f_bwd_src = fz.f_edges

let frozen_generation fz = fz.f_generation

let frozen_node_count fz = fz.f_nodes

let frozen_edge_count fz = fz.f_edges

let frozen_find_type_node fz ty = Hashtbl.find_opt fz.f_ids (type_key ty)

let frozen_void_node fz = fz.f_void

let frozen_node_type fz id = fz.f_types.(id)

let frozen_is_typestate fz id = fz.f_origins.(id) <> None

let frozen_succs fz u =
  let rec go k acc =
    if k < fz.f_fwd_off.{u} then acc else go (k - 1) (fz.f_fwd_edge.(k) :: acc)
  in
  go (fz.f_fwd_end.{u} - 1) []

(* Row-wise, because the lanes can hold tail slack and relocated rows'
   abandoned regions — physical order is not edge order. *)
let frozen_iter_edges fz f =
  for u = 0 to fz.f_nodes - 1 do
    for k = fz.f_fwd_off.{u} to fz.f_fwd_end.{u} - 1 do
      f fz.f_fwd_edge.(k)
    done
  done

let of_frozen fz =
  let g = create () in
  for i = 0 to fz.f_nodes - 1 do
    let id =
      match fz.f_origins.(i) with
      | None -> ensure_type_node g fz.f_types.(i)
      | Some origin -> add_typestate g ~underlying:fz.f_types.(i) ~origin
    in
    if id <> i then
      invalid_arg "Graph.of_frozen: snapshot node ids are not reproducible"
  done;
  (* [add_edge] conses onto the front of the row, so replaying each node's
     edges in reverse restores the exact [succs] order the snapshot froze.
     [preds] order is not reproduced (it interleaved insertions across
     sources); nothing observes it — see [derive_bwd]. *)
  for u = 0 to fz.f_nodes - 1 do
    for k = fz.f_fwd_end.{u} - 1 downto fz.f_fwd_off.{u} do
      let e = fz.f_fwd_edge.(k) in
      add_edge g ~src:u e.elem ~dst:e.dst
    done
  done;
  if g.edges <> fz.f_edges then
    invalid_arg "Graph.of_frozen: snapshot edge set is not reproducible";
  (* Rebuilding is not a mutation of the model the snapshot captured:
     adopt its generation so derived caches stay valid. *)
  g.generation <- fz.f_generation;
  g
