module Jtype = Javamodel.Jtype

type node = int

type edge = {
  elem : Elem.t;
  src : node;
  dst : node;
}

type info = {
  ty : Jtype.t;
  origin : string option;  (* Some = typestate node *)
}

type t = {
  ids : (string, node) Hashtbl.t;  (* real type key -> id *)
  mutable info : info array;
  mutable fwd : edge list array;
  mutable bwd : edge list array;
  mutable n : int;
  mutable edges : int;
  mutable generation : int;
  edge_seen : (node * Elem.t * node, unit) Hashtbl.t;
}

let initial_capacity = 256

let create () =
  {
    ids = Hashtbl.create initial_capacity;
    info = Array.make initial_capacity { ty = Jtype.Void; origin = None };
    fwd = Array.make initial_capacity [];
    bwd = Array.make initial_capacity [];
    n = 0;
    edges = 0;
    generation = 0;
    edge_seen = Hashtbl.create initial_capacity;
  }

let grow t =
  let cap = Array.length t.info in
  if t.n >= cap then begin
    let cap' = cap * 2 in
    let info' = Array.make cap' { ty = Jtype.Void; origin = None } in
    Array.blit t.info 0 info' 0 t.n;
    t.info <- info';
    let fwd' = Array.make cap' [] in
    Array.blit t.fwd 0 fwd' 0 t.n;
    t.fwd <- fwd';
    let bwd' = Array.make cap' [] in
    Array.blit t.bwd 0 bwd' 0 t.n;
    t.bwd <- bwd'
  end

let fresh_node t info =
  grow t;
  let id = t.n in
  t.info.(id) <- info;
  t.n <- t.n + 1;
  t.generation <- t.generation + 1;
  id

let type_key ty = Jtype.to_string ty

let ensure_type_node t ty =
  let key = type_key ty in
  match Hashtbl.find_opt t.ids key with
  | Some id -> id
  | None ->
      let id = fresh_node t { ty; origin = None } in
      Hashtbl.replace t.ids key id;
      id

let find_type_node t ty = Hashtbl.find_opt t.ids (type_key ty)

let void_node t = ensure_type_node t Jtype.Void

let add_typestate t ~underlying ~origin =
  fresh_node t { ty = underlying; origin = Some origin }

let add_edge t ~src elem ~dst =
  let key = (src, elem, dst) in
  if not (Hashtbl.mem t.edge_seen key) then begin
    Hashtbl.replace t.edge_seen key ();
    let e = { elem; src; dst } in
    t.fwd.(src) <- e :: t.fwd.(src);
    t.bwd.(dst) <- e :: t.bwd.(dst);
    t.edges <- t.edges + 1;
    t.generation <- t.generation + 1
  end

let node_type t id = t.info.(id).ty

let is_typestate t id = t.info.(id).origin <> None

let typestate_origin t id = t.info.(id).origin

let succs t id = t.fwd.(id)

let preds t id = t.bwd.(id)

let node_count t = t.n

let edge_count t = t.edges

let generation t = t.generation

let nodes t = List.init t.n (fun i -> i)

let iter_edges t f =
  for i = 0 to t.n - 1 do
    List.iter f t.fwd.(i)
  done

let real_nodes t =
  Hashtbl.fold (fun _ id acc -> (t.info.(id).ty, id) :: acc) t.ids []
  |> List.sort (fun (a, _) (b, _) -> Jtype.compare a b)
