let log_src = Logs.Src.create "prospector.query" ~doc:"jungloid queries"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Jtype = Javamodel.Jtype
module Hierarchy = Javamodel.Hierarchy
module Pool = Prospector_parallel.Pool

type t = {
  tin : Jtype.t;
  tout : Jtype.t;
}

let parse_type s =
  let s = String.trim s in
  let rec strip s dims =
    if String.length s > 2 && String.sub s (String.length s - 2) 2 = "[]" then
      strip (String.sub s 0 (String.length s - 2)) (dims + 1)
    else (s, dims)
  in
  let base, dims = strip s 0 in
  let base_t =
    if base = "void" then Jtype.Void
    else
      match Jtype.prim_of_string base with
      | Some p -> Jtype.Prim p
      | None -> Jtype.ref_of_string base
  in
  let rec wrap ty n = if n = 0 then ty else wrap (Jtype.Array ty) (n - 1) in
  wrap base_t dims

let query tin tout = { tin = parse_type tin; tout = parse_type tout }

(* [BestFirst] answers the same query by popping a rank-ordered heap of
   path prefixes (see [Topk]) and stopping once [max_results] distinct
   solutions are certified — provably the same output as the exhaustive
   pipeline, without materializing thousands of also-rans. [Exhaustive]
   remains as the equivalence oracle and for corpus tooling that wants the
   whole within-budget path set anyway. *)
type strategy =
  | Exhaustive
  | BestFirst

let strategy_to_string = function
  | Exhaustive -> "exhaustive"
  | BestFirst -> "best-first"

let strategy_of_string = function
  | "exhaustive" -> Ok Exhaustive
  | "best-first" -> Ok BestFirst
  | s ->
      Error
        (Printf.sprintf "unknown strategy %S (expected \"best-first\" or \"exhaustive\")"
           s)

(* [Mined] orders results by the usage-weighted cost learned from the
   corpus ([Mining.Usage]), with the paper key as tiebreak; the candidate
   set (paper-cost budget) is unchanged, so both rankings surface the same
   solutions in different orders. The cost model itself travels separately
   (the [?edge_cost] arguments / the engine field): settings stay a flat
   structurally-comparable record, which the query cache keys require. *)
type ranking =
  | Paper
  | Mined

let ranking_to_string = function Paper -> "paper" | Mined -> "mined"

let ranking_of_string = function
  | "paper" -> Ok Paper
  | "mined" -> Ok Mined
  | s ->
      Error
        (Printf.sprintf "unknown ranking %S (expected \"paper\" or \"mined\")" s)

(* Typestate vetting of synthesized chains against a mined protocol model
   ([Analysis.Protolint] via [Mining.Protomine]). Like the usage model,
   the checker itself travels separately ([?protocol_check] / the engine
   field) so settings stay flat and structurally comparable. [Warn]
   surfaces violations in [info.warnings] without touching the result
   list; [Filter] drops violating chains — post-enumeration, per
   candidate, at exactly the positions the [?verify] oracle runs, never
   inside the search priority, so BestFirst stays byte-identical to the
   Exhaustive oracle. *)
type protocol =
  | Off
  | Warn
  | Filter

let protocol_to_string = function Off -> "off" | Warn -> "warn" | Filter -> "filter"

let protocol_of_string = function
  | "off" -> Ok Off
  | "warn" -> Ok Warn
  | "filter" -> Ok Filter
  | s ->
      Error
        (Printf.sprintf
           "unknown protocol %S (expected \"off\", \"warn\" or \"filter\")" s)

type settings = {
  slack : int;
  limit : int;
  max_results : int;
  weights : Rank.weights;
  estimate_freevars : bool;
  strategy : strategy;
  ranking : ranking;
  protocol : protocol;
}

let default_settings =
  {
    slack = 1;
    limit = 4096;
    max_results = 10;
    weights = Rank.default_weights;
    estimate_freevars = false;
    strategy = BestFirst;
    ranking = Paper;
    protocol = Off;
  }

(* A negative free-variable cost would make the best-first priority
   non-monotone (prefixes could get cheaper as they grow), voiding the
   order certificate; such ablation configurations fall back to the
   exhaustive strategy. Likewise [Mined] without a loaded usage model
   falls back to the paper ranking, and [Warn]/[Filter] without a loaded
   protocol checker fall back to [Off]. All fallbacks are reported in
   [info.warnings] so callers are never silently served by a different
   configuration than they asked for. *)
let effective_mode ~edge_cost ~protocol_check settings =
  let warnings = ref [] in
  let strategy =
    if settings.weights.Rank.freevar_cost < 0 && settings.strategy = BestFirst then begin
      warnings :=
        "negative freevar_cost voids the best-first order certificate; falling back to the exhaustive strategy"
        :: !warnings;
      Exhaustive
    end
    else settings.strategy
  in
  let ranking =
    match settings.ranking with
    | Mined when Option.is_none edge_cost ->
        warnings :=
          "mined ranking requested but no usage model is loaded; falling back to the paper ranking"
          :: !warnings;
        Paper
    | r -> r
  in
  (* Gate the cost model on the effective ranking so paper-mode callers
     that happen to hold a model rank identically to ones that do not. *)
  let edge_cost = match ranking with Mined -> edge_cost | Paper -> None in
  let protocol =
    match settings.protocol with
    | (Warn | Filter) when Option.is_none protocol_check ->
        warnings :=
          "protocol checking requested but no protocol model is loaded; running with protocol checks off"
          :: !warnings;
        Off
    | p -> p
  in
  List.iter (fun w -> Log.warn (fun m -> m "%s" w)) (List.rev !warnings);
  (strategy, edge_cost, protocol, List.rev !warnings)

(* In [Filter] mode a violating chain is dropped exactly where the
   [?verify] oracle drops unsound ones: after enumeration, per candidate,
   before truncation — never inside the search priority (which is what
   keeps BestFirst certified against the Exhaustive oracle). *)
let protocol_pred ~protocol ~protocol_check =
  match (protocol, protocol_check) with
  | Filter, Some pc ->
      Some
        (fun j ->
          let ok = pc j = [] in
          if not ok then
            Log.info (fun m ->
                m "protocol filter dropped %s" (Jungloid.to_string j));
          ok)
  | _ -> None

let protocol_filter pfilter js =
  match pfilter with None -> js | Some ok -> List.filter ok js

(* A read-only lens over either graph representation. [run]/[run_multi] are
   written once against it; the [?frozen] path binds every operation to the
   CSR snapshot, so a query running on a snapshot provably never touches the
   mutable graph — which is what lets the server answer reads without a lock
   while another domain mutates and re-freezes. *)
type view = {
  v_find : Jtype.t -> Graph.node option;
  v_void : unit -> Graph.node option;
  v_of_path : Search.path -> Jungloid.t;
  v_node_type : Graph.node -> Jtype.t;
  v_distances_from : Graph.node list -> Search.Dist.t;
  v_distances_to :
    cone:Reach.cone option -> target:Graph.node -> Search.Dist.t;
  v_iter_succs : Graph.node -> (int -> Graph.edge -> unit) -> unit;
  v_edge_slots : int;  (* total edge count for the CSR memo; 0 = list graph *)
  (* Weighted (mined-ranking) lens. The frozen variant reads the wcost
     arrays baked at freeze time and ignores the passed model — the engine
     freezes with its own model, and manual [?frozen] callers must freeze
     with the same [~wcost] they query with (documented on [run]). *)
  v_weighted_distances_to :
    cone:Reach.cone option ->
    target:Graph.node ->
    cost:(Elem.t -> int) ->
    Search.Dist.t;
  v_edge_wcost : (Elem.t -> int) -> int -> Graph.edge -> int;
  v_enumerate :
    cone:Reach.cone option ->
    sources:Graph.node list ->
    target:Graph.node ->
    slack:int ->
    limit:int ->
    truncated:bool ref ->
    Search.path list;
  v_enumerate_per_source :
    cone:Reach.cone option ->
    sources:Graph.node list ->
    target:Graph.node ->
    slack:int ->
    limit:int ->
    truncated:bool ref ->
    Search.path list;
}

(* The list-graph view keeps the closure-based viability hook: pruning is a
   cone probe behind a closure, and distance arrays are wrapped unstamped. *)
let view_of_graph g =
  let viable_of cone = Option.map Reach.cone_viable cone in
  {
    v_find = Graph.find_type_node g;
    v_void = (fun () -> Some (Graph.void_node g));
    v_of_path = Jungloid.of_path g;
    v_node_type = Graph.node_type g;
    v_distances_from =
      (fun sources -> Search.Dist.of_array (Search.distances_from g ~sources));
    v_distances_to =
      (fun ~cone ~target ->
        Search.Dist.of_array
          (Search.distances_to ?viable:(viable_of cone) g ~target));
    v_iter_succs = (fun u f -> List.iteri f (Graph.succs g u));
    v_edge_slots = 0;
    v_weighted_distances_to =
      (fun ~cone ~target ~cost ->
        Search.Dist.of_array
          (Search.weighted_distances_to ?viable:(viable_of cone) g ~target ~cost));
    v_edge_wcost = (fun cost _ord e -> cost e.Graph.elem);
    v_enumerate =
      (fun ~cone ~sources ~target ~slack ~limit ~truncated ->
        Search.enumerate g ~sources ~target ~slack ~limit
          ?viable:(viable_of cone) ~truncated ());
    v_enumerate_per_source =
      (fun ~cone ~sources ~target ~slack ~limit ~truncated ->
        Search.enumerate_per_source g ~sources ~target ~slack ~limit
          ?viable:(viable_of cone) ~truncated ());
  }

(* The CSR view threads [?scratch] into every sweep: under a
   [Search.Scratch.with_frame] the distance lanes are recycled per domain,
   so the steady-state query allocates nothing proportional to the graph.
   Callers that let distances escape the call (run_stream) build the view
   without scratch and get escape-safe one-shot lanes. *)
let view_of_frozen ?scratch fz =
  {
    v_find = Graph.frozen_find_type_node fz;
    v_void = (fun () -> Graph.frozen_void_node fz);
    v_of_path = Jungloid.of_frozen_path fz;
    v_node_type = Graph.frozen_node_type fz;
    v_distances_from =
      (fun sources -> Search.Csr.distances_from ?scratch fz ~sources);
    v_distances_to =
      (fun ~cone ~target -> Search.Csr.distances_to ?scratch ?cone fz ~target);
    v_iter_succs =
      (fun u f ->
        let off = fz.Graph.f_fwd_off and fin = fz.Graph.f_fwd_end in
        for k = off.{u} to fin.{u} - 1 do
          f k fz.Graph.f_fwd_edge.(k)
        done);
    v_edge_slots = Array.length fz.Graph.f_fwd_edge;
    v_weighted_distances_to =
      (fun ~cone ~target ~cost:_ ->
        Search.Csr.weighted_distances_to ?scratch ?cone fz ~target);
    v_edge_wcost = (fun _cost ord _e -> fz.Graph.f_fwd_wcost.(ord));
    v_enumerate =
      (fun ~cone ~sources ~target ~slack ~limit ~truncated ->
        Search.Csr.enumerate ?scratch fz ~sources ~target ~slack ~limit ?cone
          ~truncated ());
    v_enumerate_per_source =
      (fun ~cone ~sources ~target ~slack ~limit ~truncated ->
        Search.Csr.enumerate_per_source ?scratch fz ~sources ~target ~slack
          ~limit ?cone ~truncated ());
  }

(* The future-work free-variable estimator: a free variable of type T will
   cost about as much as the cheapest way to conjure a T from nothing (the
   void query the user would run next). Unreachable types keep the constant
   estimate. *)
let freevar_estimator ~settings view =
  if not settings.estimate_freevars then None
  else
    match view.v_void () with
    | None -> Some (fun _ -> settings.weights.Rank.freevar_cost)
    | Some void ->
        let dist = view.v_distances_from [ void ] in
        Some
          (fun ty ->
            match view.v_find ty with
            | Some n ->
                let d = Search.Dist.get dist n in
                if d < max_int then max 1 d
                else settings.weights.Rank.freevar_cost
            | None -> settings.weights.Rank.freevar_cost)

type result = {
  jungloid : Jungloid.t;
  key : Rank.key;
  code : string;
}

(* Soundness filtering is injected as a closure so the analyzer can sit on
   top of this library without a dependency cycle; the counters let callers
   report how much (ideally nothing) the oracle rejected. *)
type verify = {
  vcheck : Jungloid.t -> bool;
  mutable vchecked : int;
  mutable vfiltered : int;
}

let verifier vcheck = { vcheck; vchecked = 0; vfiltered = 0 }

let verify_filter verify js =
  match verify with
  | None -> js
  | Some v ->
      List.filter
        (fun j ->
          v.vchecked <- v.vchecked + 1;
          let ok = v.vcheck j in
          if not ok then begin
            v.vfiltered <- v.vfiltered + 1;
            Log.warn (fun m -> m "verifier rejected %s" (Jungloid.to_string j))
          end;
          ok)
        js

type multi_result = {
  source_var : string option;
  result : result;
}

(* Deduplicate jungloids that arise from different graph paths (typestate
   splicing can yield the same elementary-jungloid sequence twice). *)
let dedup js =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun j ->
      if Hashtbl.mem seen j then false
      else begin
        Hashtbl.replace seen j ();
        true
      end)
    js

(* Distinct jungloids can render identically (e.g. two declarations of
   getFile(String) with a free receiver); showing both tells the user
   nothing. Keep the best-ranked representative — a minimal version of the
   result clustering the paper leaves to future work. *)
let dedup_rendered ranked =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun j ->
      let text = Jungloid.to_expression j in
      if Hashtbl.mem seen text then false
      else begin
        Hashtbl.replace seen text ();
        true
      end)
    ranked

let rank_and_render ~settings ~hierarchy ~freevar_cost_of ?edge_cost ~input_name
    ~verify ~pfilter paths_to_jungloid paths =
  let jungloids = dedup (List.map paths_to_jungloid paths) in
  let ranked =
    dedup_rendered
      (Rank.sort ~weights:settings.weights ?freevar_cost_of ?edge_cost hierarchy
         jungloids)
  in
  (* Unsound chains are dropped before truncation so a rejected result frees
     its slot for the next-ranked sound one; protocol filtering runs after
     the oracle so its counters see the same candidates either way. *)
  let ranked = verify_filter verify ranked in
  let ranked = protocol_filter pfilter ranked in
  List.filteri (fun i _ -> i < settings.max_results) ranked
  |> List.map (fun j ->
         let input =
           match (input_name j, Jungloid.input_type j) with
           | Some name, ty -> Some (name, ty)
           | None, _ -> None
         in
         {
           jungloid = j;
           key =
             Rank.key ~weights:settings.weights ?freevar_cost_of ?edge_cost hierarchy
               j;
           code = Codegen.to_java ?input j;
         })

(* A reach index only prunes when it describes the graph the view reads —
   for the mutable graph that is its live generation, for a snapshot the
   generation captured at freeze time. Anything stale (engine callers never
   produce this, manual callers might) is ignored rather than risked. *)
let current_reach ~gen reach =
  match reach with Some r when Reach.generation r = gen -> Some r | _ -> None

(* Filtering every BFS relaxation costs more than it saves once the viable
   cone covers most of the graph (on the dense curated graph cones run
   ~95%), so the prune only engages below this fraction; above it the index
   still provides the O(1) unsolvable-query rejection. Either way the result
   set is identical. *)
let prune_threshold = 0.75

let viable_of ~reach ~target =
  match reach with
  | None -> None
  | Some r -> (
      match Reach.cone r ~target with
      | None -> None
      | Some (cn, size) ->
          if
            float_of_int size
            <= prune_threshold *. float_of_int (Reach.node_count r)
          then Some cn
          else None)

let view_and_gen ?scratch ?frozen ?graph () =
  match (frozen, graph) with
  | Some fz, _ -> (view_of_frozen ?scratch fz, Graph.frozen_generation fz)
  | None, Some g -> (view_of_graph g, Graph.generation g)
  | None, None -> invalid_arg "Query: pass at least one of ?graph / ?frozen"

(* Per-query execution report: how many candidates the search materialized
   into jungloids (the laziness metric) and whether it stopped at
   [settings.limit] — the signal the CLI and server surface so a clipped
   result set is never mistaken for a complete one. *)
type info = {
  candidates : int;
  truncated : bool;
  warnings : string list;
}

let no_info = { candidates = 0; truncated = false; warnings = [] }

(* The best-first generator for one query shape, positioned exactly where
   [v_enumerate] sits in the exhaustive pipeline. [sources] carries the
   per-source budget (shortest-cost-from-that-source + slack). With an
   [edge_cost] model the stream runs in weighted mode: priorities use the
   exact weighted distances while the budget prune stays on the paper
   [dist_to], so the candidate set is unchanged and only the certified
   order follows the mined costs. *)
let topk_stream ?memo ~settings ~hierarchy ~freevar_cost_of ?edge_cost ~cone
    view ~dist_to ~sources ~target =
  let weighted =
    Option.map
      (fun cost ->
        {
          Topk.wdist_to = view.v_weighted_distances_to ~cone ~target ~cost;
          edge_wcost = view.v_edge_wcost cost;
        })
      edge_cost
  in
  Topk.start ?freevar_cost_of ?weighted ?memo ~weights:settings.weights
    ~hierarchy ~node_type:view.v_node_type ~iter_succs:view.v_iter_succs
    ~edge_slots:view.v_edge_slots ~materialize:view.v_of_path ~dist_to ~sources
    ~target ~limit:settings.limit ()

(* Consume a certified-order candidate stream for the single-source query:
   the expression-level dedup subsumes the exhaustive pipeline's structural
   dedup (structurally equal jungloids render identically), verification
   frees slots exactly as in [rank_and_render], and the stream stops as
   soon as [max_results] survivors exist. *)
(* Lazy result stream over a [Topk] heap. Forcing the next element pulls
   candidates until one survives dedup + verify + protocol filtering; the
   memoization makes re-traversal safe even though the heap is stateful.
   [consume_single] (the query op) and [run_stream] (the refine workload)
   share this producer, so a refine session's candidate list is the query
   reply's result list by construction. *)
let stream_single ~settings ~hierarchy ~freevar_cost_of ?edge_cost ~verify
    ~pfilter st =
  let seen = Hashtbl.create 32 in
  let rec next () =
    match Topk.next st with
    | None -> Seq.Nil
    | Some c ->
        let j = c.Topk.cand_jungloid in
        let expr = Jungloid.to_expression j in
        if Hashtbl.mem seen expr then next ()
        else begin
          Hashtbl.replace seen expr ();
          let ok =
            match verify with
            | None -> true
            | Some v ->
                v.vchecked <- v.vchecked + 1;
                let ok = v.vcheck j in
                if not ok then begin
                  v.vfiltered <- v.vfiltered + 1;
                  Log.warn (fun m -> m "verifier rejected %s" (Jungloid.to_string j))
                end;
                ok
          in
          let ok = ok && match pfilter with None -> true | Some f -> f j in
          if ok then
            let r =
              {
                jungloid = j;
                key =
                  Rank.key ~weights:settings.weights ?freevar_cost_of ?edge_cost
                    hierarchy j;
                code = Codegen.to_java j;
              }
            in
            Seq.Cons (r, next)
          else next ()
        end
  in
  Seq.memoize next

let consume_single ~settings ~hierarchy ~freevar_cost_of ?edge_cost ~verify
    ~pfilter st =
  List.of_seq
    (Seq.take settings.max_results
       (stream_single ~settings ~hierarchy ~freevar_cost_of ?edge_cost ~verify
          ~pfilter st))

let run_info ?(settings = default_settings) ?reach ?frozen ?verify ?edge_cost
    ?protocol_check ?graph ~hierarchy q =
  (* Consume-within-call entry point: distance lanes come from the domain's
     scratch pool (released when the frame below ends — nothing in a
     [result] refers to them) and the Topk per-edge memo is reused across
     queries on this domain. *)
  let scratch =
    match frozen with Some _ -> Some (Search.Scratch.domain ()) | None -> None
  in
  let strategy, edge_cost, protocol, warnings =
    effective_mode ~edge_cost ~protocol_check settings
  in
  let pfilter = protocol_pred ~protocol ~protocol_check in
  let no_info = { no_info with warnings } in
  let body () =
  let view, gen = view_and_gen ?scratch ?frozen ?graph () in
  match (view.v_find q.tin, view.v_find q.tout) with
  | Some src, Some dst ->
      let reach = current_reach ~gen reach in
      let cone = viable_of ~reach ~target:dst in
      if match reach with Some r -> not (Reach.mem r ~src ~target:dst) | None -> false
      then begin
        Log.debug (fun m ->
            m "query (%s, %s): pruned — tin can never reach tout"
              (Jtype.to_string q.tin) (Jtype.to_string q.tout));
        ([], no_info)
      end
      else begin
        let freevar_cost_of = freevar_estimator ~settings view in
        match strategy with
        | Exhaustive ->
            let truncated = ref false in
            let paths =
              view.v_enumerate ~cone ~sources:[ src ] ~target:dst
                ~slack:settings.slack ~limit:settings.limit ~truncated
            in
            Log.debug (fun m ->
                m "query (%s, %s): %d paths enumerated" (Jtype.to_string q.tin)
                  (Jtype.to_string q.tout) (List.length paths));
            ( rank_and_render ~settings ~hierarchy ~freevar_cost_of ?edge_cost
                ~input_name:(fun _ -> None)
                ~verify ~pfilter view.v_of_path paths,
              { candidates = List.length paths; truncated = !truncated; warnings } )
        | BestFirst ->
            let dist_to = view.v_distances_to ~cone ~target:dst in
            let dsrc = Search.Dist.get dist_to src in
            if dsrc = max_int then begin
              Log.debug (fun m ->
                  m "query (%s, %s): no path" (Jtype.to_string q.tin)
                    (Jtype.to_string q.tout));
              ([], no_info)
            end
            else begin
              let st =
                topk_stream ~memo:(Topk.Memo.domain ()) ~settings ~hierarchy
                  ~freevar_cost_of ?edge_cost ~cone view ~dist_to
                  ~sources:[ (src, dsrc + settings.slack) ]
                  ~target:dst
              in
              let results =
                consume_single ~settings ~hierarchy ~freevar_cost_of ?edge_cost
                  ~verify ~pfilter st
              in
              Log.debug (fun m ->
                  m "query (%s, %s): %d candidates materialized (best-first)"
                    (Jtype.to_string q.tin) (Jtype.to_string q.tout)
                    (Topk.materialized st));
              ( results,
                {
                  candidates = Topk.materialized st;
                  truncated = Topk.truncated st;
                  warnings;
                } )
            end
      end
  | _ ->
      Log.debug (fun m ->
          m "query (%s, %s): type not in graph" (Jtype.to_string q.tin)
            (Jtype.to_string q.tout));
      ([], no_info)
  in
  let results, info =
    match scratch with
    | Some s -> Search.Scratch.with_frame s body
    | None -> body ()
  in
  (* [Warn] never touches the result list: emitted results are vetted after
     selection and violations ride along as warnings only, so the output
     stays byte-identical to [Off] (and BestFirst to Exhaustive). *)
  match (protocol, protocol_check) with
  | Warn, Some pc ->
      let pwarnings =
        List.concat_map
          (fun r ->
            List.map
              (fun v ->
                Printf.sprintf "protocol: %s: %s" (Jungloid.to_expression r.jungloid) v)
              (pc r.jungloid))
          results
      in
      List.iter (fun w -> Log.warn (fun m -> m "%s" w)) pwarnings;
      (results, { info with warnings = info.warnings @ pwarnings })
  | _ -> (results, info)

let run ?settings ?reach ?frozen ?verify ?edge_cost ?protocol_check ?graph
    ~hierarchy q =
  fst
    (run_info ?settings ?reach ?frozen ?verify ?edge_cost ?protocol_check
       ?graph ~hierarchy q)

(* Escaping entry point: the returned sequence captures live search state
   (distance lanes, the Topk heap), so it must not borrow recycled
   per-domain scratch or the shared memo — the view is built without
   scratch (one-shot lanes) and [topk_stream] gets no memo. *)
let run_stream ?(settings = default_settings) ?reach ?frozen ?verify ?edge_cost
    ?protocol_check ?graph ~hierarchy q =
  let edge_cost0 = edge_cost in
  let view, gen = view_and_gen ?frozen ?graph () in
  let strategy, edge_cost, protocol, _warnings =
    effective_mode ~edge_cost ~protocol_check settings
  in
  let pfilter = protocol_pred ~protocol ~protocol_check in
  match strategy with
  | Exhaustive ->
      (* exhaustive ranking needs the full path set up front; the stream
         degenerates to the ranked list *)
      List.to_seq
        (run ~settings ?reach ?frozen ?verify ?edge_cost:edge_cost0
           ?protocol_check ?graph ~hierarchy q)
  | BestFirst -> (
      match (view.v_find q.tin, view.v_find q.tout) with
      | Some src, Some dst ->
          let reach = current_reach ~gen reach in
          let cone = viable_of ~reach ~target:dst in
          if
            match reach with
            | Some r -> not (Reach.mem r ~src ~target:dst)
            | None -> false
          then Seq.empty
          else begin
            let freevar_cost_of = freevar_estimator ~settings view in
            let dist_to = view.v_distances_to ~cone ~target:dst in
            let dsrc = Search.Dist.get dist_to src in
            if dsrc = max_int then Seq.empty
            else
              let st =
                topk_stream ~settings ~hierarchy ~freevar_cost_of ?edge_cost
                  ~cone view ~dist_to
                  ~sources:[ (src, dsrc + settings.slack) ]
                  ~target:dst
              in
              stream_single ~settings ~hierarchy ~freevar_cost_of ?edge_cost
                ~verify ~pfilter st
          end
      | _ -> Seq.empty)

type cluster = {
  representative : result;
  members : int;
  type_path : string;
}

let type_path_of (j : Jungloid.t) =
  let step ty = Jtype.simple_string ty in
  let types =
    step (Jungloid.input_type j)
    :: List.filter_map
         (fun e -> if Elem.is_widen e then None else Some (step (Elem.output_type e)))
         j.Jungloid.elems
  in
  String.concat " > " types

let cluster results =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun r ->
      let key = type_path_of r.jungloid in
      match Hashtbl.find_opt seen key with
      | Some c -> Hashtbl.replace seen key { c with members = c.members + 1 }
      | None ->
          Hashtbl.replace seen key { representative = r; members = 1; type_path = key };
          order := key :: !order)
    results;
  List.rev_map (fun key -> Hashtbl.find seen key) !order

(* The multi-source best-first consumer. Candidates arrive in certified
   rank order; the exhaustive pipeline additionally orders pairs with equal
   keys by their source variable ([compare sa sb] after [compare_key]), so
   the stream is buffered into maximal equal-key runs, each run expanded
   into (jungloid, source-var) pairs and sorted by source before emission.
   All candidates of one structurally-equal jungloid share one key and
   therefore one run, so the per-run (jungloid, source) dedup reproduces
   the exhaustive [Hashtbl.replace] dedup exactly. *)
let consume_multi ~settings ~hierarchy ~freevar_cost_of ?edge_cost ~verify
    ~pfilter ~void ~var_nodes st =
  let seen_pair = Hashtbl.create 64 in
  let seen_expr = Hashtbl.create 64 in
  let out = ref [] in
  let count = ref 0 in
  let buffer = ref [] in
  let flush_run () =
    let cands = List.rev !buffer in
    buffer := [];
    let pairs =
      List.concat_map
        (fun (c : Topk.candidate) ->
          let srcs =
            if void = Some c.Topk.cand_path.Search.source then [ None ]
            else
              List.filter_map
                (fun (n, name) ->
                  if n = c.Topk.cand_path.Search.source then Some (Some name) else None)
                var_nodes
          in
          List.filter_map
            (fun s ->
              if Hashtbl.mem seen_pair (c.Topk.cand_jungloid, s) then None
              else begin
                Hashtbl.replace seen_pair (c.Topk.cand_jungloid, s) ();
                Some (c, s)
              end)
            srcs)
        cands
    in
    let pairs = List.stable_sort (fun (_, sa) (_, sb) -> compare sa sb) pairs in
    List.iter
      (fun ((c : Topk.candidate), s) ->
        if !count < settings.max_results then begin
          let j = c.Topk.cand_jungloid in
          let ekey = (s, Jungloid.to_expression j) in
          if not (Hashtbl.mem seen_expr ekey) then begin
            Hashtbl.replace seen_expr ekey ();
            let ok =
              match verify with
              | None -> true
              | Some v ->
                  v.vchecked <- v.vchecked + 1;
                  let ok = v.vcheck j in
                  if not ok then begin
                    v.vfiltered <- v.vfiltered + 1;
                    Log.warn (fun m -> m "verifier rejected %s" (Jungloid.to_string j))
                  end;
                  ok
            in
            let ok = ok && match pfilter with None -> true | Some f -> f j in
            if ok then begin
              let input =
                match s with
                | Some name -> Some (name, Jungloid.input_type j)
                | None -> None
              in
              out :=
                {
                  source_var = s;
                  result =
                    {
                      jungloid = j;
                      key =
                        Rank.key ~weights:settings.weights ?freevar_cost_of
                          ?edge_cost hierarchy j;
                      code = Codegen.to_java ?input j;
                    };
                }
                :: !out;
              incr count
            end
          end
        end)
      pairs
  in
  let rec loop last_key =
    if !count >= settings.max_results then ()
    else
      match Topk.next st with
      | None -> flush_run ()
      | Some c ->
          (match last_key with
          | Some k when Rank.compare_key k c.Topk.cand_key <> 0 -> flush_run ()
          | _ -> ());
          buffer := c :: !buffer;
          loop (Some c.Topk.cand_key)
  in
  loop None;
  List.rev !out

let run_multi ?(settings = default_settings) ?reach ?frozen ?verify ?edge_cost
    ?protocol_check ?graph ~hierarchy ~vars ~tout () =
  let scratch =
    match frozen with Some _ -> Some (Search.Scratch.domain ()) | None -> None
  in
  let strategy, edge_cost, protocol, _warnings =
    effective_mode ~edge_cost ~protocol_check settings
  in
  let pfilter = protocol_pred ~protocol ~protocol_check in
  let body () =
  let view, gen = view_and_gen ?scratch ?frozen ?graph () in
  match view.v_find tout with
  | None -> []
  | Some dst ->
      let var_nodes =
        List.filter_map
          (fun (name, ty) -> Option.map (fun n -> (n, name)) (view.v_find ty))
          vars
      in
      let void = view.v_void () in
      let sources =
        match void with
        | Some v -> v :: List.map fst var_nodes
        | None -> List.map fst var_nodes
      in
      let cone = viable_of ~reach:(current_reach ~gen reach) ~target:dst in
      let freevar_cost_of = freevar_estimator ~settings view in
      let exhaustive () =
        let truncated = ref false in
        let paths =
          view.v_enumerate_per_source ~cone ~sources ~target:dst
            ~slack:settings.slack ~limit:settings.limit ~truncated
        in
        (* Attribute each path to the variables of its source node; a path
           from the void node belongs to no variable. Distinct (jungloid,
           source) pairs each become one suggestion. *)
        let jungloid_sources = Hashtbl.create 64 in
        List.iter
          (fun (p : Search.path) ->
            let j = view.v_of_path p in
            let srcs =
              if void = Some p.Search.source then [ None ]
              else
                List.filter_map
                  (fun (n, name) ->
                    if n = p.Search.source then Some (Some name) else None)
                  var_nodes
            in
            List.iter (fun s -> Hashtbl.replace jungloid_sources (j, s) ()) srcs)
          paths;
        let pairs =
          Hashtbl.fold (fun (j, s) () acc -> (j, s) :: acc) jungloid_sources []
        in
        let ranked =
          List.map
            (fun (j, s) ->
              ( Rank.key ~weights:settings.weights ?freevar_cost_of ?edge_cost
                  hierarchy j,
                j,
                s ))
            pairs
          |> List.sort (fun (ka, _, sa) (kb, _, sb) ->
                 match Rank.compare_key ka kb with
                 | 0 -> compare sa sb
                 | c -> c)
        in
        let seen = Hashtbl.create 64 in
        let ranked =
          List.filter
            (fun (_, j, s) ->
              let key = (s, Jungloid.to_expression j) in
              if Hashtbl.mem seen key then false
              else begin
                Hashtbl.replace seen key ();
                true
              end)
            ranked
        in
        let ranked =
          match verify with
          | None -> ranked
          | Some _ ->
              let keep = verify_filter verify (List.map (fun (_, j, _) -> j) ranked) in
              List.filter (fun (_, j, _) -> List.memq j keep) ranked
        in
        let ranked =
          match pfilter with
          | None -> ranked
          | Some f -> List.filter (fun (_, j, _) -> f j) ranked
        in
        List.filteri (fun i _ -> i < settings.max_results) ranked
        |> List.map (fun (key, j, s) ->
               let input =
                 match s with
                 | Some name -> Some (name, Jungloid.input_type j)
                 | None -> None
               in
               {
                 source_var = s;
                 result = { jungloid = j; key; code = Codegen.to_java ?input j };
               })
      in
      let best_first () =
        let dist_to = view.v_distances_to ~cone ~target:dst in
        let budgeted =
          List.filter_map
            (fun s ->
              let d = Search.Dist.get dist_to s in
              if d < max_int then Some (s, d + settings.slack) else None)
            (List.sort_uniq compare sources)
        in
        if budgeted = [] then []
        else
          let st =
            topk_stream ~memo:(Topk.Memo.domain ()) ~settings ~hierarchy
              ~freevar_cost_of ?edge_cost ~cone view ~dist_to ~sources:budgeted
              ~target:dst
          in
          consume_multi ~settings ~hierarchy ~freevar_cost_of ?edge_cost ~verify
            ~pfilter ~void ~var_nodes st
      in
      (match strategy with
      | Exhaustive -> exhaustive ()
      | BestFirst -> best_first ())
  in
  let results =
    match scratch with
    | Some s -> Search.Scratch.with_frame s body
    | None -> body ()
  in
  (* [run_multi] has no info channel: [Warn]-mode violations on emitted
     suggestions are logged, results untouched. *)
  (match (protocol, protocol_check) with
  | Warn, Some pc ->
      List.iter
        (fun mr ->
          List.iter
            (fun v ->
              Log.warn (fun m ->
                  m "protocol: %s: %s"
                    (Jungloid.to_expression mr.result.jungloid)
                    v))
            (pc mr.result.jungloid))
        results
  | _ -> ());
  results

(* ------------------------------------------------------------------ *)
(* The query engine: LRU-memoized, reachability-pruned entry points    *)
(* ------------------------------------------------------------------ *)

(* Cache keys are flat records compared and hashed structurally. The old
   scheme rendered keys to strings with separator characters, which an
   adversarial type name containing the separator could forge into a
   collision; a record key cannot collide by construction. Generation rides
   along even though validation already clears stale entries — a second,
   independent guard against serving results for a graph that no longer
   exists. *)
type single_key = {
  sk_tin : Jtype.t;
  sk_tout : Jtype.t;
  sk_settings : settings;
  sk_gen : int;
}

type multi_key = {
  mk_vars : (string * Jtype.t) list;
  mk_tout : Jtype.t;
  mk_settings : settings;
  mk_gen : int;
}

type engine = {
  mutable e_graph : Graph.t Lazy.t;
      (* mmap-warm-started engines never pay for the mutable rebuild unless
         something (enrichment, DOT export) actually asks for it; reload
         swaps in a lazy rebuild of the patched snapshot *)
  mutable e_hierarchy : Hierarchy.t;  (* swapped by reload *)
  e_single : (single_key, result list) Qcache.t;
  e_multi : (multi_key, multi_result list) Qcache.t;
  e_prune : bool;
  e_pool : Pool.t;
  mutable e_edge_cost : (Elem.t -> int) option;  (* mined cost model, if loaded *)
  mutable e_protocol_check : (Jungloid.t -> string list) option;
      (* mined typestate checker, if loaded: violations of a chain *)
  mutable e_frozen : Graph.frozen;  (* CSR snapshot, valid for [e_gen] *)
  mutable e_reach : Reach.t option;  (* built lazily, valid for [e_gen] *)
  mutable e_shards : Shard.t option option;
      (* package-cone shard plan: [None] = not planned yet,
         [Some None] = planned and unavailable *)
  mutable e_gen : int;  (* graph generation the caches describe *)
}

(* The void pseudo-node is interned up front so every snapshot can serve the
   multi-source (content-assist) path; [Graph.void_node] would otherwise
   create it mid-query and bump the generation under the caches. Snapshots
   bake the engine's cost model, so weighted search over [e_frozen] always
   agrees with the [e_edge_cost] the rank layer applies. *)
let refreeze ?edge_cost graph =
  ignore (Graph.void_node graph);
  Graph.freeze ?wcost:edge_cost graph

let engine ?(cache_capacity = 256) ?(prune = true) ?reach ?pool ?edge_cost
    ?protocol_check ~graph ~hierarchy () =
  (* A persisted index (Serialize.load_reach) only counts if it describes
     this exact graph build; anything stale is dropped and rebuilt lazily. *)
  let frozen = refreeze ?edge_cost graph in
  let seed =
    match reach with
    | Some r when prune && Reach.generation r = Graph.generation graph -> Some r
    | _ -> None
  in
  {
    e_graph = Lazy.from_val graph;
    e_hierarchy = hierarchy;
    e_single = Qcache.create ~capacity:cache_capacity ();
    e_multi = Qcache.create ~capacity:cache_capacity ();
    e_prune = prune;
    e_pool = Option.value pool ~default:Pool.sequential;
    e_edge_cost = edge_cost;
    e_protocol_check = protocol_check;
    e_frozen = frozen;
    e_reach = seed;
    e_shards = None;
    e_gen = Graph.generation graph;
  }

(* The warm-start constructor: everything engine-driven runs on the snapshot
   as loaded (possibly mmapped), and the mutable graph exists only as a
   lazy rebuild. An [edge_cost] model re-bakes the weighted-cost arrays —
   snapshots persist only the default baking — and a persisted reach index
   seeds pruning exactly as in [engine]. *)
let engine_of_frozen ?(cache_capacity = 256) ?(prune = true) ?reach ?pool
    ?edge_cost ?protocol_check ~frozen ~hierarchy () =
  let frozen =
    match edge_cost with
    | Some wcost -> Graph.rebake ~wcost frozen
    | None -> frozen
  in
  let gen = Graph.frozen_generation frozen in
  let seed =
    match reach with
    | Some r when prune && Reach.generation r = gen -> Some r
    | _ -> None
  in
  {
    e_graph = lazy (Graph.of_frozen frozen);
    e_hierarchy = hierarchy;
    e_single = Qcache.create ~capacity:cache_capacity ();
    e_multi = Qcache.create ~capacity:cache_capacity ();
    e_prune = prune;
    e_pool = Option.value pool ~default:Pool.sequential;
    e_edge_cost = edge_cost;
    e_protocol_check = protocol_check;
    e_frozen = frozen;
    e_reach = seed;
    e_shards = None;
    e_gen = gen;
  }

let engine_graph e = Lazy.force e.e_graph

let engine_hierarchy e = e.e_hierarchy

let engine_edge_cost e = e.e_edge_cost

let engine_protocol_check e = e.e_protocol_check

(* The generation the engine's caches would be validated against right now:
   the live graph's if the mutable view was ever forced, the snapshot's
   otherwise. Probing it never forces the rebuild (the server's stats and
   staleness checks use this). *)
let engine_live_generation e =
  if Lazy.is_val e.e_graph then Graph.generation (Lazy.force e.e_graph)
  else e.e_gen

let invalidate e =
  let graph = Lazy.force e.e_graph in
  Log.debug (fun m ->
      m "engine: invalidated at graph generation %d" (Graph.generation graph));
  Qcache.clear e.e_single;
  Qcache.clear e.e_multi;
  e.e_reach <- None;
  e.e_shards <- None;
  e.e_frozen <- refreeze ?edge_cost:e.e_edge_cost graph;
  e.e_gen <- Graph.generation graph

(* Every cached entry point revalidates first, so mutating the graph (e.g.
   Mining.Enrich splicing in mined examples) transparently flushes both
   caches, the snapshot, and the reach index the next time the engine is
   used. A graph that was never forced cannot have moved. *)
let validate e = if engine_live_generation e <> e.e_gen then invalidate e

let engine_frozen e =
  validate e;
  e.e_frozen

let engine_reach e =
  validate e;
  if not e.e_prune then None
  else
    match e.e_reach with
    | Some r -> Some r
    | None ->
        let r = Reach.build_frozen ~pool:e.e_pool e.e_frozen in
        Log.debug (fun m ->
            m "engine: reach index built — %d nodes, %d SCCs" (Reach.node_count r)
              (Reach.scc_count r));
        e.e_reach <- Some r;
        Some r

(* The package-cone shard plan for the current snapshot, planned on first
   use (shard contents themselves stay lazy inside [Shard.t]). Needs the
   reach index — without pruning there is no condensation to plan over. *)
let engine_shards e =
  validate e;
  match e.e_shards with
  | Some s -> s
  | None ->
      let s =
        match engine_reach e with
        | None -> None
        | Some r -> Shard.plan e.e_frozen r
      in
      (match s with
      | Some sh ->
          Log.debug (fun m ->
              m "engine: shard plan — %d package groups" (Shard.shard_count sh))
      | None -> ());
      e.e_shards <- Some s;
      s

let engine_stats e = Qcache.merge_stats (Qcache.stats e.e_single) (Qcache.stats e.e_multi)

(* Live reload: swap a delta patch into the engine without a cold restart.

   The reach index is maintained incrementally (only components downstream
   of a touched node are re-closed — [Reach.patch]); cache invalidation is
   cone-scoped rather than a generation nuke. The soundness argument for
   keeping an entry with target [tout]: any query answer that changed did so
   through some path using an added or removed edge. Take the LAST changed
   edge (s, d) on such a path — the suffix from [d] to [tout] uses only
   edges present in the OLD graph (for an added edge, the suffix is
   addition-free by choice of last; for a removed edge, the old path's
   suffix is old edges by definition) — so [d], a touched endpoint, reaches
   [tout] in the old index. Contrapositive: if no touched endpoint lies in
   the old cone of [tout], no answer for [tout] changed, and the entry
   survives with its key rewritten to the new generation. Entries computed
   under [estimate_freevars] also read void-rooted distances over the whole
   graph, so they never survive a structural change.

   A new [edge_cost] (corpus delta re-derived the mined model) shifts every
   weighted cost — Usage's normalization denominator is global — so both
   caches are cleared (a counted generation nuke) and the lanes re-baked; a
   new [protocol_check] likewise invalidates Filter/Warn results wholesale.
   A [Rebuilt] patch has unstable node ids, so it too clears. *)
let engine_reload ?edge_cost ?protocol_check e (patch : Delta.patch) =
  let old_gen = e.e_gen in
  let old_reach = e.e_reach in
  let old_frozen = e.e_frozen in
  let fz =
    match edge_cost with
    | Some wcost -> Graph.rebake ~wcost patch.Delta.p_frozen
    | None -> patch.Delta.p_frozen
  in
  let new_gen = Graph.frozen_generation fz in
  let reach' =
    match old_reach with
    | Some r when e.e_prune && patch.Delta.p_mode = Delta.Spliced ->
        Some (Reach.patch ~pool:e.e_pool ~old:r ~touched:patch.Delta.p_touched fz)
    | _ -> None (* rebuilt lazily on next pruned query *)
  in
  let model_changed =
    Option.is_some edge_cost || Option.is_some protocol_check
  in
  if model_changed || patch.Delta.p_mode = Delta.Rebuilt || old_reach = None
  then begin
    Qcache.clear e.e_single;
    Qcache.clear e.e_multi
  end
  else begin
    let touched_nodes =
      let acc = ref [] in
      for u = Graph.frozen_node_count old_frozen - 1 downto 0 do
        if Reach.Bits.mem patch.Delta.p_touched u then acc := u :: !acc
      done;
      !acc
    in
    let r = Option.get old_reach in
    let cone_clean tout =
      match Graph.frozen_find_type_node old_frozen tout with
      | None -> false
      | Some dst ->
          not (List.exists (fun u -> Reach.mem r ~src:u ~target:dst) touched_nodes)
    in
    let dropped_s =
      Qcache.refresh e.e_single (fun k ->
          if
            k.sk_gen = old_gen
            && (not k.sk_settings.estimate_freevars)
            && cone_clean k.sk_tout
          then Some { k with sk_gen = new_gen }
          else None)
    in
    let dropped_m =
      Qcache.refresh e.e_multi (fun k ->
          if
            k.mk_gen = old_gen
            && (not k.mk_settings.estimate_freevars)
            && cone_clean k.mk_tout
          then Some { k with mk_gen = new_gen }
          else None)
    in
    Log.debug (fun m ->
        m "engine: reload dropped %d cached entries (cone-scoped)"
          (dropped_s + dropped_m))
  end;
  e.e_hierarchy <- patch.Delta.p_hierarchy;
  (match edge_cost with Some _ -> e.e_edge_cost <- edge_cost | None -> ());
  (match protocol_check with
  | Some _ -> e.e_protocol_check <- protocol_check
  | None -> ());
  e.e_frozen <- fz;
  e.e_reach <- reach';
  e.e_shards <- None;
  e.e_gen <- new_gen;
  e.e_graph <- lazy (Graph.of_frozen fz);
  Log.debug (fun m ->
      m "engine: reloaded (%s) — generation %d -> %d, %d touched nodes"
        (Delta.mode_string patch.Delta.p_mode)
        old_gen new_gen patch.Delta.p_touched_count)

let single_key ~gen ~settings q =
  { sk_tin = q.tin; sk_tout = q.tout; sk_settings = settings; sk_gen = gen }

let run_cached ?(settings = default_settings) e q =
  validate e;
  Qcache.find_or_add e.e_single (single_key ~gen:e.e_gen ~settings q) (fun () ->
      run ~settings ?reach:(engine_reach e) ~frozen:e.e_frozen
        ?edge_cost:e.e_edge_cost ?protocol_check:e.e_protocol_check
        ~hierarchy:e.e_hierarchy q)

(* The parallel batch replays the sequential cache protocol exactly:

   Phase A walks the input and collects the distinct keys the cache does not
   hold, in first-occurrence order, using only the effect-free [Qcache.mem].
   Phase B computes those misses across the pool — every worker reads the
   same snapshot, reach index, and warmed hierarchy, and writes nothing
   shared. Phase C then performs, sequentially and in input order, the
   identical [find_or_add] sequence the [jobs = 1] path performs, except
   that a miss takes its value from phase B instead of computing. Hits,
   misses, recency order, and evictions are therefore the same as
   sequential execution — not just the returned results. A key that phase C
   misses but phase B did not precompute (possible when replay evictions
   shuffle the cache differently than phase A predicted) is recomputed
   inline, exactly as [jobs = 1] would have. *)
let run_batch ?(settings = default_settings) ?pool e qs =
  validate e;
  let pool = match pool with Some p -> p | None -> e.e_pool in
  if Pool.jobs pool <= 1 then List.map (fun q -> (q, run_cached ~settings e q)) qs
  else begin
    Hierarchy.warm e.e_hierarchy;
    let reach = engine_reach e in
    let frozen = e.e_frozen in
    let key q = single_key ~gen:e.e_gen ~settings q in
    let solve q =
      run ~settings ?reach ~frozen ?edge_cost:e.e_edge_cost
        ?protocol_check:e.e_protocol_check ~hierarchy:e.e_hierarchy q
    in
    (* Scatter-gather: a query whose target has a package runs on that
       package group's shard — a sub-snapshot containing the target's whole
       reachability cone, so the answer is byte-identical to the full-graph
       one (test_scale.ml pins this against the jobs = 1 oracle). Queries
       with packageless targets, oversized shards, or a freevar estimator
       (which measures distances from [void] over the whole graph) fall
       back to the full snapshot. *)
    let shards = if settings.estimate_freevars then None else engine_shards e in
    let solve_routed (q, sub) =
      match sub with
      | None -> solve q
      | Some sfz ->
          (* No reach index for the shard: its whole point is that the
             sub-graph is close to the target's cone already. *)
          run ~settings ~frozen:sfz ?edge_cost:e.e_edge_cost
            ?protocol_check:e.e_protocol_check ~hierarchy:e.e_hierarchy q
    in
    let route q =
      match shards with
      | None -> None
      | Some sh -> (
          match Graph.frozen_find_type_node frozen q.tout with
          | None -> None
          | Some dst -> (
              match Shard.route sh ~target:dst with
              | None -> None
              | Some g -> Shard.sub sh g))
    in
    let seen = Hashtbl.create 64 in
    let misses =
      List.filter
        (fun q ->
          let k = key q in
          if Qcache.mem e.e_single k || Hashtbl.mem seen k then false
          else begin
            Hashtbl.replace seen k ();
            true
          end)
        qs
    in
    (* Shard sub-snapshots are forced here, sequentially, before the fan-out
       — workers only ever read published shards. *)
    let routed = List.map (fun q -> (q, route q)) misses in
    let precomputed = Hashtbl.create 64 in
    List.iter
      (fun (k, r) -> Hashtbl.replace precomputed k r)
      (Pool.map_list pool (fun ((q, _) as rq) -> (key q, solve_routed rq)) routed);
    List.map
      (fun q ->
        ( q,
          Qcache.find_or_add e.e_single (key q) (fun () ->
              match Hashtbl.find_opt precomputed (key q) with
              | Some r -> r
              | None -> solve q) ))
      qs
  end

let run_multi_cached ?(settings = default_settings) e ~vars ~tout () =
  validate e;
  let k = { mk_vars = vars; mk_tout = tout; mk_settings = settings; mk_gen = e.e_gen } in
  Qcache.find_or_add e.e_multi k (fun () ->
      run_multi ~settings ?reach:(engine_reach e) ~frozen:e.e_frozen
        ?edge_cost:e.e_edge_cost ?protocol_check:e.e_protocol_check
        ~hierarchy:e.e_hierarchy ~vars ~tout ())
