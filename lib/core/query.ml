let log_src = Logs.Src.create "prospector.query" ~doc:"jungloid queries"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Jtype = Javamodel.Jtype
module Hierarchy = Javamodel.Hierarchy

type t = {
  tin : Jtype.t;
  tout : Jtype.t;
}

let parse_type s =
  let s = String.trim s in
  let rec strip s dims =
    if String.length s > 2 && String.sub s (String.length s - 2) 2 = "[]" then
      strip (String.sub s 0 (String.length s - 2)) (dims + 1)
    else (s, dims)
  in
  let base, dims = strip s 0 in
  let base_t =
    if base = "void" then Jtype.Void
    else
      match Jtype.prim_of_string base with
      | Some p -> Jtype.Prim p
      | None -> Jtype.ref_of_string base
  in
  let rec wrap ty n = if n = 0 then ty else wrap (Jtype.Array ty) (n - 1) in
  wrap base_t dims

let query tin tout = { tin = parse_type tin; tout = parse_type tout }

type settings = {
  slack : int;
  limit : int;
  max_results : int;
  weights : Rank.weights;
  estimate_freevars : bool;
}

let default_settings =
  {
    slack = 1;
    limit = 4096;
    max_results = 10;
    weights = Rank.default_weights;
    estimate_freevars = false;
  }

(* The future-work free-variable estimator: a free variable of type T will
   cost about as much as the cheapest way to conjure a T from nothing (the
   void query the user would run next). Unreachable types keep the constant
   estimate. *)
let freevar_estimator ~settings graph =
  if not settings.estimate_freevars then None
  else begin
    let dist = Search.distances_from graph ~sources:[ Graph.void_node graph ] in
    Some
      (fun ty ->
        match Graph.find_type_node graph ty with
        | Some n when n < Array.length dist && dist.(n) < max_int -> max 1 dist.(n)
        | _ -> settings.weights.Rank.freevar_cost)
  end

type result = {
  jungloid : Jungloid.t;
  key : Rank.key;
  code : string;
}

(* Soundness filtering is injected as a closure so the analyzer can sit on
   top of this library without a dependency cycle; the counters let callers
   report how much (ideally nothing) the oracle rejected. *)
type verify = {
  vcheck : Jungloid.t -> bool;
  mutable vchecked : int;
  mutable vfiltered : int;
}

let verifier vcheck = { vcheck; vchecked = 0; vfiltered = 0 }

let verify_filter verify js =
  match verify with
  | None -> js
  | Some v ->
      List.filter
        (fun j ->
          v.vchecked <- v.vchecked + 1;
          let ok = v.vcheck j in
          if not ok then begin
            v.vfiltered <- v.vfiltered + 1;
            Log.warn (fun m -> m "verifier rejected %s" (Jungloid.to_string j))
          end;
          ok)
        js

type multi_result = {
  source_var : string option;
  result : result;
}

(* Deduplicate jungloids that arise from different graph paths (typestate
   splicing can yield the same elementary-jungloid sequence twice). *)
let dedup js =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun j ->
      if Hashtbl.mem seen j then false
      else begin
        Hashtbl.replace seen j ();
        true
      end)
    js

(* Distinct jungloids can render identically (e.g. two declarations of
   getFile(String) with a free receiver); showing both tells the user
   nothing. Keep the best-ranked representative — a minimal version of the
   result clustering the paper leaves to future work. *)
let dedup_rendered ranked =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun j ->
      let text = Jungloid.to_expression j in
      if Hashtbl.mem seen text then false
      else begin
        Hashtbl.replace seen text ();
        true
      end)
    ranked

let rank_and_render ~settings ~hierarchy ~freevar_cost_of ~input_name ~verify
    paths_to_jungloid paths =
  let jungloids = dedup (List.map paths_to_jungloid paths) in
  let ranked =
    dedup_rendered
      (Rank.sort ~weights:settings.weights ?freevar_cost_of hierarchy jungloids)
  in
  (* Unsound chains are dropped before truncation so a rejected result frees
     its slot for the next-ranked sound one. *)
  let ranked = verify_filter verify ranked in
  List.filteri (fun i _ -> i < settings.max_results) ranked
  |> List.map (fun j ->
         let input =
           match (input_name j, Jungloid.input_type j) with
           | Some name, ty -> Some (name, ty)
           | None, _ -> None
         in
         {
           jungloid = j;
           key = Rank.key ~weights:settings.weights ?freevar_cost_of hierarchy j;
           code = Codegen.to_java ?input j;
         })

(* A reach index only prunes when it describes the current graph; a stale one
   (engine callers never produce this, manual callers might) is ignored
   rather than risked. *)
let current_reach ~graph reach =
  match reach with
  | Some r when Reach.generation r = Graph.generation graph -> Some r
  | _ -> None

(* Filtering every BFS relaxation costs more than it saves once the viable
   cone covers most of the graph (on the dense curated graph cones run
   ~95%), so the prune only engages below this fraction; above it the index
   still provides the O(1) unsolvable-query rejection. Either way the result
   set is identical. *)
let prune_threshold = 0.75

let viable_of ~reach ~target =
  match reach with
  | None -> None
  | Some r ->
      let cone = Reach.cone_size r ~target in
      if float_of_int cone <= prune_threshold *. float_of_int (Reach.node_count r)
      then Some (Reach.viable r ~target)
      else None

let run ?(settings = default_settings) ?reach ?verify ~graph ~hierarchy q =
  match (Graph.find_type_node graph q.tin, Graph.find_type_node graph q.tout) with
  | Some src, Some dst ->
      let reach = current_reach ~graph reach in
      let viable = viable_of ~reach ~target:dst in
      if match reach with Some r -> not (Reach.mem r ~src ~target:dst) | None -> false
      then begin
        Log.debug (fun m ->
            m "query (%s, %s): pruned — tin can never reach tout"
              (Jtype.to_string q.tin) (Jtype.to_string q.tout));
        []
      end
      else begin
        let paths =
          Search.enumerate graph ~sources:[ src ] ~target:dst ~slack:settings.slack
            ~limit:settings.limit ?viable ()
        in
        Log.debug (fun m ->
            m "query (%s, %s): %d paths enumerated" (Jtype.to_string q.tin)
              (Jtype.to_string q.tout) (List.length paths));
        rank_and_render ~settings ~hierarchy
          ~freevar_cost_of:(freevar_estimator ~settings graph)
          ~input_name:(fun _ -> None)
          ~verify (Jungloid.of_path graph) paths
      end
  | _ ->
      Log.debug (fun m ->
          m "query (%s, %s): type not in graph" (Jtype.to_string q.tin)
            (Jtype.to_string q.tout));
      []

type cluster = {
  representative : result;
  members : int;
  type_path : string;
}

let type_path_of (j : Jungloid.t) =
  let step ty = Jtype.simple_string ty in
  let types =
    step (Jungloid.input_type j)
    :: List.filter_map
         (fun e -> if Elem.is_widen e then None else Some (step (Elem.output_type e)))
         j.Jungloid.elems
  in
  String.concat " > " types

let cluster results =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun r ->
      let key = type_path_of r.jungloid in
      match Hashtbl.find_opt seen key with
      | Some c -> Hashtbl.replace seen key { c with members = c.members + 1 }
      | None ->
          Hashtbl.replace seen key { representative = r; members = 1; type_path = key };
          order := key :: !order)
    results;
  List.rev_map (fun key -> Hashtbl.find seen key) !order

let run_multi ?(settings = default_settings) ?reach ?verify ~graph ~hierarchy ~vars
    ~tout () =
  match Graph.find_type_node graph tout with
  | None -> []
  | Some dst ->
      let var_nodes =
        List.filter_map
          (fun (name, ty) ->
            Option.map (fun n -> (n, name)) (Graph.find_type_node graph ty))
          vars
      in
      let void = Graph.void_node graph in
      let sources = void :: List.map fst var_nodes in
      let viable = viable_of ~reach:(current_reach ~graph reach) ~target:dst in
      let paths =
        Search.enumerate_per_source graph ~sources ~target:dst ~slack:settings.slack
          ~limit:settings.limit ?viable ()
      in
      (* Attribute each path to the variables of its source node; a path from
         the void node belongs to no variable. Distinct (jungloid, source)
         pairs each become one suggestion. *)
      let jungloid_sources = Hashtbl.create 64 in
      List.iter
        (fun (p : Search.path) ->
          let j = Jungloid.of_path graph p in
          let srcs =
            if p.Search.source = void then [ None ]
            else
              List.filter_map
                (fun (n, name) -> if n = p.Search.source then Some (Some name) else None)
                var_nodes
          in
          List.iter (fun s -> Hashtbl.replace jungloid_sources (j, s) ()) srcs)
        paths;
      let pairs =
        Hashtbl.fold (fun (j, s) () acc -> (j, s) :: acc) jungloid_sources []
      in
      let freevar_cost_of = freevar_estimator ~settings graph in
      let ranked =
        List.map
          (fun (j, s) ->
            (Rank.key ~weights:settings.weights ?freevar_cost_of hierarchy j, j, s))
          pairs
        |> List.sort (fun (ka, _, sa) (kb, _, sb) ->
               match Rank.compare_key ka kb with
               | 0 -> compare sa sb
               | c -> c)
      in
      let seen = Hashtbl.create 64 in
      let ranked =
        List.filter
          (fun (_, j, s) ->
            let key = (s, Jungloid.to_expression j) in
            if Hashtbl.mem seen key then false
            else begin
              Hashtbl.replace seen key ();
              true
            end)
          ranked
      in
      let ranked =
        match verify with
        | None -> ranked
        | Some _ ->
            let keep = verify_filter verify (List.map (fun (_, j, _) -> j) ranked) in
            List.filter (fun (_, j, _) -> List.memq j keep) ranked
      in
      List.filteri (fun i _ -> i < settings.max_results) ranked
      |> List.map (fun (key, j, s) ->
             let input =
               match s with Some name -> Some (name, Jungloid.input_type j) | None -> None
             in
             { source_var = s; result = { jungloid = j; key; code = Codegen.to_java ?input j } })

(* ------------------------------------------------------------------ *)
(* The query engine: LRU-memoized, reachability-pruned entry points    *)
(* ------------------------------------------------------------------ *)

type engine = {
  e_graph : Graph.t;
  e_hierarchy : Hierarchy.t;
  e_single : result list Qcache.t;
  e_multi : multi_result list Qcache.t;
  e_prune : bool;
  mutable e_reach : Reach.t option;  (* built lazily, valid for [e_gen] *)
  mutable e_gen : int;  (* graph generation the caches describe *)
}

let engine ?(cache_capacity = 256) ?(prune = true) ?reach ~graph ~hierarchy () =
  (* A persisted index (Serialize.load_reach) only counts if it describes
     this exact graph build; anything stale is dropped and rebuilt lazily. *)
  let seed =
    match reach with
    | Some r when prune && Reach.generation r = Graph.generation graph -> Some r
    | _ -> None
  in
  {
    e_graph = graph;
    e_hierarchy = hierarchy;
    e_single = Qcache.create ~capacity:cache_capacity ();
    e_multi = Qcache.create ~capacity:cache_capacity ();
    e_prune = prune;
    e_reach = seed;
    e_gen = Graph.generation graph;
  }

let engine_graph e = e.e_graph

let engine_hierarchy e = e.e_hierarchy

let invalidate e =
  Log.debug (fun m ->
      m "engine: invalidated at graph generation %d" (Graph.generation e.e_graph));
  Qcache.clear e.e_single;
  Qcache.clear e.e_multi;
  e.e_reach <- None;
  e.e_gen <- Graph.generation e.e_graph

(* Every cached entry point revalidates first, so mutating the graph (e.g.
   Mining.Enrich splicing in mined examples) transparently flushes both
   caches and the reach index the next time the engine is used. *)
let validate e = if Graph.generation e.e_graph <> e.e_gen then invalidate e

let engine_reach e =
  validate e;
  if not e.e_prune then None
  else
    match e.e_reach with
    | Some r -> Some r
    | None ->
        let r = Reach.build e.e_graph in
        Log.debug (fun m ->
            m "engine: reach index built — %d nodes, %d SCCs" (Reach.node_count r)
              (Reach.scc_count r));
        e.e_reach <- Some r;
        Some r

let engine_stats e = Qcache.merge_stats (Qcache.stats e.e_single) (Qcache.stats e.e_multi)

let settings_key s =
  Printf.sprintf "%d,%d,%d,%d,%b,%b,%b" s.slack s.limit s.max_results
    s.weights.Rank.freevar_cost s.weights.Rank.package_tiebreak
    s.weights.Rank.generality_tiebreak s.estimate_freevars

(* Keys carry the graph generation even though validation already cleared
   stale entries — a second, independent guard against serving results for a
   graph that no longer exists. *)
let single_key ~gen ~settings q =
  Printf.sprintf "%s>%s|%s|g%d" (Jtype.to_string q.tin) (Jtype.to_string q.tout)
    (settings_key settings) gen

let multi_key ~gen ~settings ~vars ~tout =
  let vs = List.map (fun (name, ty) -> name ^ ":" ^ Jtype.to_string ty) vars in
  Printf.sprintf "multi|%s>%s|%s|g%d" (String.concat "," vs) (Jtype.to_string tout)
    (settings_key settings) gen

let run_cached ?(settings = default_settings) e q =
  validate e;
  Qcache.find_or_add e.e_single (single_key ~gen:e.e_gen ~settings q) (fun () ->
      run ~settings ?reach:(engine_reach e) ~graph:e.e_graph ~hierarchy:e.e_hierarchy q)

let run_batch ?(settings = default_settings) e qs =
  List.map (fun q -> (q, run_cached ~settings e q)) qs

let run_multi_cached ?(settings = default_settings) e ~vars ~tout () =
  validate e;
  Qcache.find_or_add e.e_multi (multi_key ~gen:e.e_gen ~settings ~vars ~tout) (fun () ->
      run_multi ~settings ?reach:(engine_reach e) ~graph:e.e_graph
        ~hierarchy:e.e_hierarchy ~vars ~tout ())
