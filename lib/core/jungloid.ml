module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Member = Javamodel.Member
module Decl = Javamodel.Decl
module Hierarchy = Javamodel.Hierarchy

type t = {
  input : Jtype.t;
  elems : Elem.t list;
}

let make ~input elems =
  if elems = [] then invalid_arg "Jungloid.make: empty";
  { input; elems }

let of_path g (p : Search.path) =
  make
    ~input:(Graph.node_type g p.Search.source)
    (List.map (fun e -> e.Graph.elem) p.Search.edges)

let of_frozen_path fz (p : Search.path) =
  make
    ~input:(Graph.frozen_node_type fz p.Search.source)
    (List.map (fun e -> e.Graph.elem) p.Search.edges)

let input_type t = t.input

let output_type t =
  match List.rev t.elems with
  | last :: _ -> Elem.output_type last
  | [] -> t.input

let length t =
  List.fold_left (fun acc e -> acc + Elem.cost e) 0 t.elems

let free_vars t = List.concat_map Elem.free_vars t.elems

let contains_downcast t = List.exists Elem.is_downcast t.elems

let is_interface_ref h ty =
  match ty with
  | Jtype.Ref q -> (
      match Hierarchy.find_opt h q with
      | Some d -> Decl.is_interface d
      | None -> false)
  | _ -> false

let well_typed h t =
  let rec steps prev = function
    | [] -> true
    | e :: rest ->
        Jtype.equal prev (Elem.input_type e)
        && (match e with
           | Elem.Widen { from_; to_ } -> Hierarchy.is_subtype h from_ to_
           | Elem.Downcast { from_; to_ } ->
               Hierarchy.is_subtype h to_ from_
               || is_interface_ref h from_ || is_interface_ref h to_
           | _ -> true)
        && steps (Elem.output_type e) rest
  in
  steps t.input t.elems

let render_args params ~input ~expr =
  let arg i (name, ty) =
    match input with
    | Elem.Param j when i = j -> expr
    | _ -> (
        match ty with
        | Jtype.Prim p -> (
            match p with
            | Jtype.Boolean -> "false"
            | Jtype.Char -> "'\\0'"
            | Jtype.Float | Jtype.Double -> "0.0"
            | _ -> "0")
        | _ -> name)
  in
  "(" ^ String.concat ", " (List.mapi arg params) ^ ")"

let to_expression t =
  let start = match t.input with Jtype.Void -> "" | _ -> "x" in
  List.fold_left
    (fun expr e ->
      match e with
      | Elem.Field_access { owner; field } ->
          if field.Member.fstatic then
            Printf.sprintf "%s.%s" (Qname.simple owner) field.Member.fname
          else Printf.sprintf "%s.%s" expr field.Member.fname
      | Elem.Static_call { owner; meth; input } ->
          Printf.sprintf "%s.%s%s" (Qname.simple owner) meth.Member.mname
            (render_args meth.Member.params ~input ~expr)
      | Elem.Ctor_call { owner; ctor; input } ->
          Printf.sprintf "new %s%s" (Qname.simple owner)
            (render_args ctor.Member.cparams ~input ~expr)
      | Elem.Instance_call { meth; input; _ } -> (
          match input with
          | Elem.Receiver ->
              Printf.sprintf "%s.%s%s" expr meth.Member.mname
                (render_args meth.Member.params ~input:Elem.No_input ~expr)
          | _ ->
              Printf.sprintf "receiver.%s%s" meth.Member.mname
                (render_args meth.Member.params ~input ~expr))
      | Elem.Widen _ -> expr
      | Elem.Downcast { to_; _ } ->
          Printf.sprintf "((%s) %s)" (Jtype.simple_string to_) expr)
    start t.elems

let to_string t =
  let binder = match t.input with Jtype.Void -> "λ(). " | _ -> "λx. " in
  Printf.sprintf "%s%s : %s -> %s" binder (to_expression t)
    (Jtype.simple_string t.input)
    (Jtype.simple_string (output_type t))

let compare = Stdlib.compare

let equal a b = compare a b = 0
