(** Package-cone sharding of a frozen jungloid graph.

    Queries are local: a query for target [t] only ever touches [t]'s
    reachability cone. At 10^5–10^6 methods the full CSR no longer fits in
    cache, but the union of cones rooted in one {e package group} — a
    contiguous chunk of the sorted package list — does. This module
    partitions a snapshot by package group: shard [s] contains every node
    from which some node of group [s] is reachable, computed in one bitmask
    DP over the SCC condensation ([gmask(c) = own groups ∪ successors']).
    By construction the cone of any target in group [s] is a subset of
    shard [s], so routing a query to its target's shard is
    result-preserving; {!Query.run_batch} uses it for scatter-gather
    dispatch, falling back to the whole graph for packageless targets and
    shards that would cover most of the graph anyway.

    Sub-snapshots keep the parent's node order (ids remapped monotonically)
    and per-row edge order, and their edge records share the parent's
    {!Elem.t}s — a path found in a shard materializes to the same jungloid,
    byte for byte, as the same path found in the whole graph. *)

type t

val plan :
  ?max_shards:int -> ?threshold:float -> Graph.frozen -> Reach.t -> t option
(** Build a shard plan. [max_shards] (default 32, capped at 62 — group
    membership is a bitmask in one native int) bounds the number of package
    groups; [threshold] (default 0.75) is the shard-size fraction of the
    whole graph above which a shard is not worth materializing ({!sub}
    answers [None] and the caller runs on the whole snapshot). Returns
    [None] — sharding disabled — when the reachability index does not match
    the snapshot's generation or fewer than two package groups exist.
    O(nodes + edges); shard contents are built lazily by {!sub}. *)

val shard_count : t -> int

val route : t -> target:Graph.node -> int option
(** The shard owning [target]'s package, [None] for packageless or
    out-of-range targets (caller must use the whole graph). *)

val member_count : t -> int -> int
(** Number of nodes in a shard (O(nodes); for benches and tests). *)

val sub : t -> int -> Graph.frozen option
(** The shard's induced sub-snapshot, built on first use and cached.
    [None] when the shard exceeds [threshold] — the caller should run the
    query on the whole snapshot instead. Safe to call concurrently only
    before publication; {!Query.run_batch} forces all needed shards
    sequentially before fanning out. *)

val to_parent : t -> int -> Graph.node array
(** For a built shard, the sub-id -> parent-id map ([[||]] for [Whole] or
    unbuilt shards); tests use it to relate sub results to the parent. *)
