(** The jungloid graph representation shared by signature-only and mined
    graphs (Sections 3.1 and 4.2).

    Nodes are either {e real} — one per reference type (plus the [void]
    pseudo-node) — or {e typestate} nodes: fresh nodes created when a mined
    example jungloid is spliced in, so that its downcast edge is reachable
    only through the example's own prefix (Figure 6's [Object-1] node).

    Nodes are interned to dense integer ids; adjacency is stored both
    forward and backward so the search can run bidirectional pruning. *)

module Jtype = Javamodel.Jtype

type t

type node = int
(** Dense node id, stable for the lifetime of the graph. *)

type edge = {
  elem : Elem.t;
  src : node;
  dst : node;
}

val create : unit -> t

val ensure_type_node : t -> Jtype.t -> node
(** Intern a real type node (or the [void] node for {!Jtype.Void}). *)

val find_type_node : t -> Jtype.t -> node option
(** Lookup without creating. *)

val void_node : t -> node

val add_typestate : t -> underlying:Jtype.t -> origin:string -> node
(** A fresh typestate node. [origin] identifies the mined example that
    created it (used by DOT output and debugging). *)

val add_edge : t -> src:node -> Elem.t -> dst:node -> unit
(** Duplicate edges (same source, elem, and destination) are dropped. *)

val node_type : t -> node -> Jtype.t
(** The type carried by the node — for typestate nodes, the underlying
    (declared) type of the intermediate value. *)

val is_typestate : t -> node -> bool

val typestate_origin : t -> node -> string option

val succs : t -> node -> edge list

val preds : t -> node -> edge list

val node_count : t -> int

val edge_count : t -> int

val generation : t -> int
(** Mutation counter: bumped by every node creation and every (non-duplicate)
    edge insertion, never by lookups. Derived structures — the {!Reach}
    reachability index, the {!Qcache}-backed query cache — record the
    generation they were built against and treat any change as
    invalidation, which is how {!Mining.Enrich} splicing mined downcast
    edges into a graph transparently flushes stale query results. *)

val nodes : t -> node list

val iter_edges : t -> (edge -> unit) -> unit

val real_nodes : t -> (Jtype.t * node) list
(** All interned real type nodes with their types. *)

(** {2 Frozen CSR snapshots}

    {!freeze} captures the graph as an immutable compressed-sparse-row view,
    split into a {e hot} and a {e cold} half. The hot half — row offsets,
    destinations/sources, and 0/1 paper costs — is packed into out-of-heap
    {!Bigarray} lanes (native-word ids, uint16 costs): the GC never scans
    them, they mmap straight from a {!Serialize} snapshot, and they are safe
    to share read-only across domains. The cold half — the boxed {!edge}
    table, weighted costs, node metadata, and a private copy of the
    type-interning table — stays on the OCaml heap and is only touched when
    a found path is materialized, never per relaxed edge. The record is
    exposed transparently so hot loops ({!Search.Csr}, {!Reach}) can index
    the lanes directly — treat every field as read-only.

    A frozen view is completely self-contained: no operation on it touches
    the originating {!t}, which is what makes it safe to share across
    domains while another domain mutates (and then re-freezes) the live
    graph. [f_generation] records the {!generation} captured, so consumers
    can tell stale snapshots from current ones. Forward adjacency preserves
    {!succs} order exactly. Backward adjacency is a counting sort of the
    forward rows by destination (each node's predecessors in ascending
    forward-edge order) — {e not} {!preds} order; distance sweeps are
    relaxation-order independent, so the difference is unobservable, and it
    makes the backward half a pure function of the forward half (see
    {!rebake}). *)

type int_array1 = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Native-word lanes, not int32: without flambda, boxed [Int32] reads would
    put an allocation on every relaxed edge. *)

type cost_array1 =
  (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

val ba_int : int -> int_array1
(** Fresh uninitialized lane (for loaders and shard builders). *)

val ba_cost : int -> cost_array1

type frozen = {
  f_generation : int;
  f_nodes : int;
  f_edges : int;  (** logical edge count: the sum of row lengths *)
  f_fwd_off : int_array1;
      (** length [f_nodes + 1]; edges of [u] live at indices
          [f_fwd_off.{u} .. f_fwd_end.{u} - 1]. Rows need {e not} be
          physically contiguous: an incremental patch ({!Delta}) relocates a
          rewritten row into the lanes' tail slack, leaving its old region
          dead. In a dense snapshot [f_fwd_end] is a storage-sharing view of
          this lane shifted by one, so [f_fwd_off.{u+1}] is still the row
          end there. *)
  f_fwd_end : int_array1;  (** length [f_nodes]; exclusive row ends *)
  f_fwd_dst : int_array1;
  f_fwd_cost : cost_array1;  (** memoized [Elem.cost], aligned with [f_fwd_dst] *)
  f_fwd_wcost : int array;
      (** weighted edge cost (see {!freeze}'s [wcost]), aligned with
          [f_fwd_dst]; plain [int array] — weighted costs exceed uint16 *)
  f_fwd_edge : edge array;  (** cold: the full edge, aligned with [f_fwd_dst] *)
  f_bwd_off : int_array1;
  f_bwd_end : int_array1;
  f_bwd_src : int_array1;
  f_bwd_cost : cost_array1;
  f_bwd_wcost : int array;
      (** weighted edge cost, aligned with [f_bwd_src] — backward rows carry
          no [edge], so weighted distance-to-target sweeps need it baked in *)
  f_fwd_used : int;
      (** physical high-water mark: lane indices at or past this are free
          tail slack (capacity is the lanes' dimension) *)
  f_bwd_used : int;
  f_plain : bool;
      (** no typestate nodes and no downcast edges — precomputed so
          {!Delta}'s spliced-path eligibility check is O(1) *)
  f_tail : bool Atomic.t;
      (** tail-claim token: set once by the first patch that appends into
          this snapshot's tail slack. Records sharing lanes share the token
          ({!rebake}), so two patches can never append over each other — the
          loser takes the compact-and-copy path. *)
  f_types : Jtype.t array;
  f_origins : string option array;
  f_ids : (string, node) Hashtbl.t;  (** private copy; never written again *)
  f_void : node option;
}

val derive_bwd :
  ?cap:int ->
  n:int ->
  m:int ->
  fwd_off:int_array1 ->
  fwd_end:int_array1 ->
  fwd_dst:int_array1 ->
  fwd_cost:cost_array1 ->
  fwd_wcost:int array ->
  unit ->
  int_array1 * int_array1 * cost_array1 * int array
(** [(bwd_off, bwd_src, bwd_cost, bwd_wcost)] derived from forward rows by a
    counting sort on destination — the canonical backward representation
    {!freeze} and {!rebake} use, exposed for builders of derived snapshots
    ({!Shard}). The output is dense; [cap] (default [m]) sizes the physical
    lanes, leaving tail slack past index [m - 1]. *)

val default_slack : int -> int
(** Tail-slack heuristic for [m] edges (~12.5%, floored at 64) — the spare
    lane capacity {!freeze} and {!compact} reserve for appended rows. *)

val compact : ?slack:int -> frozen -> frozen
(** Dense copy: rows packed back into offset order, fresh lanes with
    [slack] (default {!freeze}'s heuristic) spare tail entries, and an
    unclaimed tail token. Logical content and generation are unchanged.
    O(nodes) bookkeeping plus one blit per maximal physically contiguous
    row stretch — a lightly patched snapshot compacts in a few memcpys. *)

val is_compact : frozen -> bool
(** Rows dense in offset order with zero tail slack — the only layout
    {!Serialize} writes (it compacts first when this is false). *)

val frozen_iter_edges : frozen -> (edge -> unit) -> unit
(** Every live edge, row by row in node order. Use this instead of scanning
    [f_fwd_edge] directly: the lane's physical order is not edge order once
    a snapshot has been patched, and its tail holds dead entries. *)

val default_wcost : Elem.t -> int
(** The paper cost in fixed-point units, [Elem.cost_scale * Elem.cost] — the
    default [wcost] of {!freeze} and {!rebake}, exposed so incremental
    patching ({!Delta}) can cost new edges identically. *)

val freeze : ?wcost:(Elem.t -> int) -> t -> frozen
(** O(nodes + edges). Captures the graph at its current {!generation}. The
    lanes are allocated with ~12.5% tail slack so incremental patches
    ({!Delta.apply}) can append relocated rows without copying them.
    [wcost] supplies the weighted (mined) cost per elementary jungloid,
    baked into [f_fwd_wcost]/[f_bwd_wcost]; it must be non-negative. The
    default is the paper cost in fixed-point units,
    [Elem.cost_scale * Elem.cost] — snapshots frozen with the default are
    only valid for weighted search under the same (default) cost model. *)

val rebake : ?wcost:(Elem.t -> int) -> frozen -> frozen
(** A copy of the snapshot with [f_fwd_wcost]/[f_bwd_wcost] recomputed under
    a new cost model — everything else is shared with the input. This is how
    a deserialized snapshot (which carries only structure) is fitted with a
    mined cost model without rebuilding the graph. *)

val frozen_generation : frozen -> int

val frozen_node_count : frozen -> int

val frozen_edge_count : frozen -> int

val frozen_find_type_node : frozen -> Jtype.t -> node option
(** {!find_type_node} against the snapshot's interning table. *)

val frozen_void_node : frozen -> node option
(** The [void] pseudo-node if it existed at freeze time; unlike
    {!void_node}, never creates it. *)

val frozen_node_type : frozen -> node -> Jtype.t

val frozen_is_typestate : frozen -> node -> bool

val frozen_succs : frozen -> node -> edge list
(** Convenience slice of the CSR row, in {!succs} order (for callers off the
    hot path). *)

val of_frozen : frozen -> t
(** Rebuild a live (mutable) graph from a snapshot: nodes re-interned in id
    order, forward rows replayed so {!succs} order matches the snapshot
    exactly, and the snapshot's generation adopted (rebuilding is not a
    model change). O(nodes + edges) with full hashtable re-interning — this
    is the slow path that mmap warm starts avoid; it only runs if something
    actually needs the mutable view (e.g. splicing mined examples into a
    warm-started server). Raises [Invalid_argument] if the snapshot's node
    numbering cannot be reproduced. *)
