(** The jungloid graph representation shared by signature-only and mined
    graphs (Sections 3.1 and 4.2).

    Nodes are either {e real} — one per reference type (plus the [void]
    pseudo-node) — or {e typestate} nodes: fresh nodes created when a mined
    example jungloid is spliced in, so that its downcast edge is reachable
    only through the example's own prefix (Figure 6's [Object-1] node).

    Nodes are interned to dense integer ids; adjacency is stored both
    forward and backward so the search can run bidirectional pruning. *)

module Jtype = Javamodel.Jtype

type t

type node = int
(** Dense node id, stable for the lifetime of the graph. *)

type edge = {
  elem : Elem.t;
  src : node;
  dst : node;
}

val create : unit -> t

val ensure_type_node : t -> Jtype.t -> node
(** Intern a real type node (or the [void] node for {!Jtype.Void}). *)

val find_type_node : t -> Jtype.t -> node option
(** Lookup without creating. *)

val void_node : t -> node

val add_typestate : t -> underlying:Jtype.t -> origin:string -> node
(** A fresh typestate node. [origin] identifies the mined example that
    created it (used by DOT output and debugging). *)

val add_edge : t -> src:node -> Elem.t -> dst:node -> unit
(** Duplicate edges (same source, elem, and destination) are dropped. *)

val node_type : t -> node -> Jtype.t
(** The type carried by the node — for typestate nodes, the underlying
    (declared) type of the intermediate value. *)

val is_typestate : t -> node -> bool

val typestate_origin : t -> node -> string option

val succs : t -> node -> edge list

val preds : t -> node -> edge list

val node_count : t -> int

val edge_count : t -> int

val generation : t -> int
(** Mutation counter: bumped by every node creation and every (non-duplicate)
    edge insertion, never by lookups. Derived structures — the {!Reach}
    reachability index, the {!Qcache}-backed query cache — record the
    generation they were built against and treat any change as
    invalidation, which is how {!Mining.Enrich} splicing mined downcast
    edges into a graph transparently flushes stale query results. *)

val nodes : t -> node list

val iter_edges : t -> (edge -> unit) -> unit

val real_nodes : t -> (Jtype.t * node) list
(** All interned real type nodes with their types. *)
