module Jtype = Javamodel.Jtype
module Hierarchy = Javamodel.Hierarchy

type weights = {
  freevar_cost : int;
  package_tiebreak : bool;
  generality_tiebreak : bool;
}

let default_weights =
  { freevar_cost = 2; package_tiebreak = true; generality_tiebreak = true }

type key = {
  weighted : int;
  length : int;
  crossings : int;
  specificity : int;
  interior : int;
  tie : Jungloid.t;
}

let text k = Jungloid.to_string k.tie

let package_crossings (j : Jungloid.t) =
  (* The chain conceptually starts at the input object's class, so its
     package heads the sequence: a jungloid that immediately leaves the
     input's package counts a crossing (the HTMLParser example). *)
  let input_pkg =
    match j.Jungloid.input with
    | Jtype.Ref q -> [ Javamodel.Qname.package_string q ]
    | _ -> []
  in
  let pkgs = input_pkg @ List.filter_map Elem.owner_package j.Jungloid.elems in
  let rec count = function
    | a :: (b :: _ as rest) -> (if String.equal a b then 0 else 1) + count rest
    | [ _ ] | [] -> 0
  in
  count pkgs

let pre_widening_output (j : Jungloid.t) =
  let last_non_widen =
    List.fold_left
      (fun acc e -> if Elem.is_widen e then acc else Some e)
      None j.Jungloid.elems
  in
  match last_non_widen with
  | Some e -> Elem.output_type e
  | None -> j.Jungloid.input

let type_depth h ty =
  match ty with
  | Jtype.Ref q -> Hierarchy.depth h q
  | Jtype.Array _ -> 1
  | Jtype.Prim _ | Jtype.Void -> 0

let key ?(weights = default_weights) ?freevar_cost_of ?edge_cost h j =
  (* Only reference-typed free variables need a follow-up jungloid; a
     primitive slot is filled with a literal and costs nothing. The charge
     is the constant estimate (paper: 2) unless a per-type estimator is
     supplied. *)
  let ref_frees =
    List.filter (fun (_, ty) -> Jtype.is_reference ty) (Jungloid.free_vars j)
  in
  let freevar_charge =
    match freevar_cost_of with
    | None -> weights.freevar_cost * List.length ref_frees
    | Some cost_of -> List.fold_left (fun acc (_, ty) -> acc + cost_of ty) 0 ref_frees
  in
  let length = Jungloid.length j + freevar_charge in
  (* Mined mode: the weighted component is the sum of learned edge costs
     plus the free-variable charge in the same fixed-point unit. In paper
     mode ([edge_cost] absent) it is 0 for every jungloid, so the
     comparison falls through to the paper key unchanged. *)
  let weighted =
    match edge_cost with
    | None -> 0
    | Some cost ->
        List.fold_left (fun acc e -> acc + cost e) 0 j.Jungloid.elems
        + (Elem.cost_scale * freevar_charge)
  in
  let crossings = if weights.package_tiebreak then package_crossings j else 0 in
  let specificity =
    if weights.generality_tiebreak then type_depth h (pre_widening_output j) else 0
  in
  (* Applying the same more-general-is-better reasoning to intermediate
     values: a chain through plainer types is less likely to do more than
     intended. Deterministic third tiebreak before the textual one. *)
  let interior =
    if weights.generality_tiebreak then
      List.fold_left
        (fun acc e -> if Elem.is_widen e then acc else acc + type_depth h (Elem.output_type e))
        0 j.Jungloid.elems
    else 0
  in
  { weighted; length; crossings; specificity; interior; tie = j }

let compare_paper a b =
  match compare a.length b.length with
  | 0 -> (
      match compare a.crossings b.crossings with
      | 0 -> (
          match compare a.specificity b.specificity with
          | 0 -> compare a.interior b.interior
          | c -> c)
      | c -> c)
  | c -> c

let compare_numeric a b =
  match compare a.weighted b.weighted with
  | 0 -> compare_paper a b
  | c -> c

(* The textual tiebreak is rendered only when all four numeric components
   tie — on realistic workloads the overwhelmingly common case is that they
   do not, so most comparisons never pay for [Jungloid.to_string]. *)
let compare_key a b =
  match compare_numeric a b with
  | 0 -> compare (Jungloid.to_string a.tie) (Jungloid.to_string b.tie)
  | c -> c

let sort ?weights ?freevar_cost_of ?edge_cost h js =
  (* Decorate with a memoized rendering so a jungloid compared textually
     against many numeric-equal peers is stringified once, not O(n) times. *)
  List.map
    (fun j ->
      (key ?weights ?freevar_cost_of ?edge_cost h j, lazy (Jungloid.to_string j), j))
    js
  |> List.stable_sort (fun (a, ta, _) (b, tb, _) ->
         match compare_numeric a b with
         | 0 -> compare (Lazy.force ta) (Lazy.force tb)
         | c -> c)
  |> List.map (fun (_, _, j) -> j)
