(** The query engine: from a [(tin, tout)] pair to a ranked list of code
    snippets (Sections 2 and 3).

    [run] performs the paper's pipeline: locate the [tin] and [tout] nodes,
    enumerate all acyclic paths of cost at most [m + slack], convert them to
    jungloids, deduplicate, rank, generate code. [run_multi] is the
    multi-source variant used by content assist: one search serves every
    visible variable (and the [void] pseudo-source) at once. *)

module Jtype = Javamodel.Jtype
module Hierarchy = Javamodel.Hierarchy

type t = {
  tin : Jtype.t;  (** may be [Void] for the zero-input query *)
  tout : Jtype.t;
}

val query : string -> string -> t
(** [query "org.x.IFile" "org.y.ASTNode"] — convenience constructor from
    dotted type names; ["void"] gives the zero-input query, a ["[]"] suffix
    an array type. *)

(** How the engine finds the top-[max_results] chains. [BestFirst] (the
    default) expands rank-ordered path prefixes from a min-heap ({!Topk})
    and stops once the top results are certified — provably byte-identical
    output to [Exhaustive], which enumerates every within-budget path and
    sorts ([test_topk.ml] pins the equivalence). [Exhaustive] remains the
    oracle and the choice for corpus tooling that wants the full path set.
    Configurations with a negative [freevar_cost] (ablations) run
    exhaustively — a negative charge would break the best-first order
    certificate — and report the fallback in {!info.warnings}. *)
type strategy =
  | Exhaustive
  | BestFirst

val strategy_to_string : strategy -> string
(** ["exhaustive"] / ["best-first"] — the wire and CLI spelling. *)

val strategy_of_string : string -> (strategy, string) result
(** Inverse of {!strategy_to_string}; [Error] carries a user-ready message
    listing the accepted spellings. *)

(** How results are ordered. [Paper] is Section 3.2's static rule
    (length, crossings, specificity). [Mined] orders by the usage-weighted
    cost learned from the corpus ([Mining.Usage] — −log frequency with
    Laplace smoothing, in {!Elem.cost_scale} fixed-point units), refined by
    the full paper key as the deterministic tiebreak. The candidate set
    (paper-cost budget [m + slack]) is identical under both rankings — only
    the order changes — and [BestFirst] remains byte-identical to
    [Exhaustive] under either. The cost model itself is passed separately
    ([?edge_cost] / the engine's model): settings stay a flat structurally
    comparable record, as the query-cache keys require. [Mined] without a
    model falls back to [Paper] and reports it in {!info.warnings}. *)
type ranking =
  | Paper
  | Mined

val ranking_to_string : ranking -> string
(** ["paper"] / ["mined"] — the wire and CLI spelling. *)

val ranking_of_string : string -> (ranking, string) result
(** Inverse of {!ranking_to_string}; [Error] carries a user-ready message
    listing the accepted spellings. *)

(** Typestate vetting of synthesized chains against a mined protocol model
    ([Mining.Protomine] / [Analysis.Protolint] in practice). [Warn] vets
    the {e emitted} results after selection and reports violations in
    {!info.warnings} — the result list is byte-identical to [Off]. [Filter]
    drops violating chains post-enumeration, per candidate, at exactly the
    positions the [?verify] oracle runs — never inside the search priority
    — so [BestFirst] stays byte-identical to [Exhaustive] under every mode
    ([test_topk.ml] pins this). The checker itself travels separately
    ([?protocol_check] / the engine's checker), keeping settings flat and
    structurally comparable for the cache keys; [Warn]/[Filter] without a
    checker fall back to [Off] with an {!info.warnings} entry. *)
type protocol =
  | Off
  | Warn
  | Filter

val protocol_to_string : protocol -> string
(** ["off"] / ["warn"] / ["filter"] — the wire and CLI spelling. *)

val protocol_of_string : string -> (protocol, string) result
(** Inverse of {!protocol_to_string}; [Error] carries a user-ready message
    listing the accepted spellings. *)

type settings = {
  slack : int;  (** extra path cost beyond the shortest; the paper uses 1 *)
  limit : int;  (** cap on enumerated paths *)
  max_results : int;  (** truncate the ranked list *)
  weights : Rank.weights;
  estimate_freevars : bool;
      (** replace the constant free-variable charge with each type's actual
          shortest production cost from the void node — the estimation the
          paper leaves as future work (default [false]) *)
  strategy : strategy;
  ranking : ranking;
  protocol : protocol;
}

val default_settings : settings
(** [slack = 1], [limit = 4096], [max_results = 10], default weights,
    [strategy = BestFirst], [ranking = Paper], [protocol = Off]. *)

type result = {
  jungloid : Jungloid.t;
  key : Rank.key;
  code : string;  (** generated Java, input named after [tin] *)
}

(** {2 Verified mode}

    An independent soundness oracle (in practice [Analysis.Verify.sound],
    injected as a closure to keep the analyzer layered above this library)
    re-checks every ranked chain; unsound ones are dropped {e before}
    truncation to [max_results] and counted. On a healthy pipeline
    [vfiltered] stays 0 — the property suite enforces this over the curated
    workload. *)

type verify = {
  vcheck : Jungloid.t -> bool;
  mutable vchecked : int;  (** chains inspected *)
  mutable vfiltered : int;  (** chains rejected as unsound *)
}

val verifier : (Jungloid.t -> bool) -> verify
(** Fresh counters around a soundness predicate. *)

type info = {
  candidates : int;
      (** candidates the search materialized into jungloids: every
          enumerated path under [Exhaustive], only the candidates actually
          needed to certify the top results under [BestFirst] *)
  truncated : bool;
      (** the search stopped at [settings.limit] — the result list may be
          missing better-ranked solutions and callers should say so *)
  warnings : string list;
      (** configuration fallbacks applied to this query — a negative
          [freevar_cost] forcing the exhaustive strategy, [Mined] ranking
          without a loaded usage model reverting to [Paper], or
          [Warn]/[Filter] without a protocol checker reverting to [Off] —
          plus, under [protocol = Warn], one ["protocol: ..."] line per
          violation found on an emitted result. Empty when the query ran
          exactly as configured and nothing was flagged. *)
}

val run_info :
  ?settings:settings ->
  ?reach:Reach.t ->
  ?frozen:Graph.frozen ->
  ?verify:verify ->
  ?edge_cost:(Elem.t -> int) ->
  ?protocol_check:(Jungloid.t -> string list) ->
  ?graph:Graph.t ->
  hierarchy:Hierarchy.t ->
  t ->
  result list * info
(** {!run} plus the execution report — the CLI's truncation warning and the
    server's [truncated] reply field come from here. *)

val run :
  ?settings:settings ->
  ?reach:Reach.t ->
  ?frozen:Graph.frozen ->
  ?verify:verify ->
  ?edge_cost:(Elem.t -> int) ->
  ?protocol_check:(Jungloid.t -> string list) ->
  ?graph:Graph.t ->
  hierarchy:Hierarchy.t ->
  t ->
  result list
(** Ranked solution jungloids; [[]] when [tin] or [tout] has no node or no
    path exists. Exactly one of [?graph] and [?frozen] is required
    ([Invalid_argument] when both are missing; [?frozen] wins when both are
    given) — snapshot-only callers (warm-started engines, shard workers)
    never materialize a mutable graph at all. When [?reach] is a {!Reach}
    index for the graph's current
    {!Graph.generation}, unsolvable queries are rejected in O(1) and — when
    [tout]'s reachability cone is a small enough fraction of the graph for
    filtering to pay — the search frontier is pruned to the cone; the result
    list is provably identical with and without the index. A stale index is
    ignored, never misapplied. [?verify] filters unsound chains (see
    {!verify}); the cached entry points below never take it, so cached and
    verified results cannot mix.

    With [?frozen], the whole pipeline (type lookup, 0-1 BFS, path DFS,
    jungloid conversion) runs on the CSR snapshot and never reads the
    mutable graph —
    the lock-free server read path. Distances land in recycled per-domain
    epoch-stamped scratch lanes, so at steady state a query allocates
    nothing proportional to the graph. The snapshot is trusted: pass one taken
    from this graph (results describe whatever graph it captures), and a
    [?reach] index is matched against the {e snapshot}'s generation. Results
    are byte-identical to the list-based path on the captured graph
    ([test_parallel.ml], and transitively the [test_cache.ml] equivalence
    suite, pin this).

    [?edge_cost] is the mined usage model ([Mining.Usage.edge_cost]),
    consulted only when [settings.ranking = Mined]. It must be
    non-negative, and when combined with [?frozen] the snapshot must have
    been taken with [Graph.freeze ~wcost] under the {e same} model — the
    weighted best-first search reads the snapshot's baked cost arrays.
    Engine snapshots maintain this invariant automatically.

    [?protocol_check] returns the protocol violations of a chain
    ([Analysis.Protolint.violations] against a mined model in practice; []
    means clean), consulted only when [settings.protocol] is [Warn] or
    [Filter] (see {!protocol}). *)

val run_stream :
  ?settings:settings ->
  ?reach:Reach.t ->
  ?frozen:Graph.frozen ->
  ?verify:verify ->
  ?edge_cost:(Elem.t -> int) ->
  ?protocol_check:(Jungloid.t -> string list) ->
  ?graph:Graph.t ->
  hierarchy:Hierarchy.t ->
  t ->
  result Seq.t
(** The lazy form of {!run}: ranked results on demand, sharing the
    producer {!run} truncates, so [List.of_seq (Seq.take
    settings.max_results (run_stream ... q))] is byte-identical to [run
    ... q]. This is what refine sessions consume — a session's candidate
    set {e is} the query reply's result list. The sequence is memoized
    (safe to re-traverse) but captures live search state: consume it
    before mutating the graph, or pass [?frozen]. Under the [Exhaustive]
    strategy there is nothing lazy to expose and the stream degenerates to
    {!run}'s list; [settings.max_results] then bounds it. *)

type multi_result = {
  source_var : string option;  (** [None] for the [void] source *)
  result : result;
}

type cluster = {
  representative : result;  (** the best-ranked member *)
  members : int;
  type_path : string;  (** e.g. ["IWorkspace > IWorkspaceRoot > IFile"] *)
}

val cluster : result list -> cluster list
(** Group results by the sequence of types their chains pass through
    (ignoring which member produced each step) and keep one representative
    per group — the "clusters of similar jungloids" presentation the paper
    proposes as future work for crowded queries like (IWorkspace, IFile).
    Order follows the best member of each cluster. *)

val run_multi :
  ?settings:settings ->
  ?reach:Reach.t ->
  ?frozen:Graph.frozen ->
  ?verify:verify ->
  ?edge_cost:(Elem.t -> int) ->
  ?protocol_check:(Jungloid.t -> string list) ->
  ?graph:Graph.t ->
  hierarchy:Hierarchy.t ->
  vars:(string * Jtype.t) list ->
  tout:Jtype.t ->
  unit ->
  multi_result list
(** One multi-source search from all [vars] plus [void]; each result's code
    references the variable it starts from. The ranked order interleaves all
    sources. [?reach] prunes and [?frozen] redirects to the snapshot exactly
    as in {!run} (a snapshot without an interned [void] node simply omits
    the [void] source; engine snapshots always intern it first). There is no
    info channel here, so [protocol = Warn] violations are logged rather
    than returned; [Filter] drops violating suggestions as in {!run}. *)

(** {2 The query engine}

    A long-lived handle bundling a graph, its hierarchy, an LRU result cache
    per query shape (single-source and multi-source), and a lazily built
    {!Reach} index. Cache keys are [(tin, tout, settings, graph
    generation)]; whenever {!Graph.generation} moves — e.g. {!Mining.Enrich}
    splicing mined downcast edges into the graph — the next cached call
    flushes both caches and drops the index, so cached results are always
    exactly what the uncached pipeline would return ([test_cache.ml] checks
    the equivalence over the full Table 1 workload). *)

type engine

val engine :
  ?cache_capacity:int ->
  ?prune:bool ->
  ?reach:Reach.t ->
  ?pool:Prospector_parallel.Pool.t ->
  ?edge_cost:(Elem.t -> int) ->
  ?protocol_check:(Jungloid.t -> string list) ->
  graph:Graph.t ->
  hierarchy:Hierarchy.t ->
  unit ->
  engine
(** [cache_capacity] (default 256) sizes each of the two internal LRU
    caches; [prune:false] disables the reach index (the bench uses this to
    measure the pruning speedup in isolation). [?reach] seeds the engine
    with a prebuilt index — the warm-start path: a server restart hands the
    {!Serialize.load_reach} result straight to the engine and skips the
    closure computation. A seed whose {!Reach.generation} does not match
    the graph is silently dropped (the engine rebuilds lazily), so a stale
    cache file can cost time but never correctness. [?pool] (default
    sequential) is used by {!run_batch} and by the reach-index build; it
    changes wall-clock only, never results. The engine freezes a CSR
    snapshot of the graph eagerly (and again on every invalidation), so all
    engine-driven searches run on flat arrays.

    [?edge_cost] installs the mined usage model ({!Mining.Usage.edge_cost}
    in practice) for queries with [settings.ranking = Mined]; every
    snapshot the engine freezes bakes this model into its weighted-cost
    arrays, so weighted search and the rank layer always agree. Without
    it, [Mined] requests fall back to [Paper] with an {!info.warnings}
    entry.

    [?protocol_check] installs the mined typestate checker
    ({!run}'s [?protocol_check]) for queries with [settings.protocol]
    of [Warn] or [Filter]; cached entry points apply it automatically,
    and [settings.protocol] is part of every cache key, so [Filter]ed
    and unfiltered results never mix. *)

val engine_of_frozen :
  ?cache_capacity:int ->
  ?prune:bool ->
  ?reach:Reach.t ->
  ?pool:Prospector_parallel.Pool.t ->
  ?edge_cost:(Elem.t -> int) ->
  ?protocol_check:(Jungloid.t -> string list) ->
  frozen:Graph.frozen ->
  hierarchy:Hierarchy.t ->
  unit ->
  engine
(** An engine over an existing CSR snapshot — the mmap warm-start path: a
    server restart hands {!Serialize.load_frozen}'s (possibly mmapped)
    snapshot straight here and starts answering queries without rebuilding
    anything; the mutable graph behind {!engine_graph} is reconstructed
    lazily, only if something (enrichment, DOT export) actually needs it.
    With [?edge_cost] the snapshot's weighted-cost arrays are re-baked
    under the model ({!Graph.rebake}) so weighted search and the rank layer
    agree, as in {!engine}. All other parameters behave as in {!engine}. *)

val engine_graph : engine -> Graph.t
(** The engine's mutable graph — forces the lazy rebuild on a warm-started
    engine (O(nodes + edges)); engine-driven queries never call this. *)

val engine_live_generation : engine -> int
(** The generation the engine's caches are validated against: the live
    graph's if the mutable view was ever forced, the snapshot's otherwise.
    Unlike [Graph.generation (engine_graph e)], never forces the rebuild —
    the server's staleness probes use this. *)

val engine_hierarchy : engine -> Javamodel.Hierarchy.t

val engine_edge_cost : engine -> (Elem.t -> int) option
(** The usage model installed at engine creation, if any. Lock-free readers
    that run on {!engine_frozen} snapshots pass this as their [?edge_cost]:
    the snapshot's baked weighted costs and the rank layer's model are then
    the same by construction. *)

val engine_protocol_check : engine -> (Jungloid.t -> string list) option
(** The typestate checker installed at engine creation, if any — the
    [?protocol_check] counterpart of {!engine_edge_cost} for lock-free
    snapshot readers. *)

val engine_frozen : engine -> Graph.frozen
(** The engine's CSR snapshot for the current graph generation (re-frozen
    after any graph mutation). The server publishes this snapshot for its
    lock-free readers. *)

val engine_reach : engine -> Reach.t option
(** The engine's reachability index for the current graph generation,
    building it on first use; [None] when the engine was created with
    [prune:false]. Exposed so a server can persist the index it is already
    using ({!Serialize.save_reach}) instead of computing it twice. *)

val engine_shards : engine -> Shard.t option
(** The engine's package-cone shard plan for the current snapshot, planned
    on first use (shard contents stay lazy inside the plan); [None] when
    sharding is unavailable — no reach index ([prune:false]), or too few
    packages. {!run_batch} routes through this; it is exposed for the
    scale bench's shard statistics. *)

val run_cached : ?settings:settings -> engine -> t -> result list
(** {!run} through the cache: a hit costs one hash lookup; a miss runs the
    reachability-pruned pipeline and stores the result. *)

val run_batch :
  ?settings:settings ->
  ?pool:Prospector_parallel.Pool.t ->
  engine ->
  t list ->
  (t * result list) list
(** Answer many queries through one engine — the reach index is built once
    and every repeated [(tin, tout)] pair after the first is a cache hit.
    Results are in input order, duplicates included.

    With a [?pool] (default: the engine's) of more than one job, cache
    misses are computed concurrently over the engine's snapshot and then
    replayed through the cache in input order. The replay performs the same
    [find]/[add] sequence the sequential path performs, so the output {e
    and} the cache state afterwards (hits, misses, evictions, recency) are
    byte-identical to [jobs = 1] — parallelism is observable only as
    wall-clock.

    Misses are additionally routed through the engine's package-cone shard
    plan ({!engine_shards}): a query whose target type has a package runs
    on the target's package-group sub-snapshot, which contains the whole
    reachability cone of the target by construction, so results stay
    byte-identical to the [jobs = 1] oracle ([test_scale.ml] pins this on
    generated worlds). Packageless targets, oversized shards, and
    [settings.estimate_freevars] runs fall back to the full snapshot. *)

val run_multi_cached :
  ?settings:settings ->
  engine ->
  vars:(string * Jtype.t) list ->
  tout:Jtype.t ->
  unit ->
  multi_result list
(** {!run_multi} through the cache, keyed additionally on the visible
    variables — the content-assist hot path: re-opening assist at the same
    program point is a hit. *)

val invalidate : engine -> unit
(** Explicitly flush both caches and the reach index (also happens
    automatically when the graph generation changes). Counted in
    {!engine_stats}. *)

val engine_reload :
  ?edge_cost:(Elem.t -> int) ->
  ?protocol_check:(Jungloid.t -> string list) ->
  engine ->
  Delta.patch ->
  unit
(** Swap a {!Delta.apply} patch into a live engine. The CSR snapshot and
    hierarchy are replaced, the reach index is maintained incrementally
    ({!Reach.patch} — only components downstream of a touched node are
    re-closed), and cache invalidation is cone-scoped: an entry survives,
    rekeyed to the new generation, iff no endpoint of a changed edge lies in
    its target's old reachability cone (and it was not computed under
    [estimate_freevars], which reads whole-graph distances). [edge_cost] /
    [protocol_check], when given, install a re-derived mined model — that
    shifts every weighted cost (the usage model's normalization is global),
    so the snapshot is re-baked and both caches are cleared wholesale, as
    they are for a [Rebuilt] patch (node ids unstable). Subsequent queries
    answer over the patched model; the mutable graph view becomes a lazy
    rebuild of the patched snapshot. *)

val engine_stats : engine -> Qcache.stats
(** Combined hit/miss/eviction/invalidation counters of both internal
    caches; render with {!Stats.pp_cache}. *)
