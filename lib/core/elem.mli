(** Elementary jungloids (Definition 2 of the paper).

    An elementary jungloid is a typed unary expression [λx.e : tin → tout].
    The six kinds of Section 2.1 are represented here. Values of this type
    label the edges of the signature graph and the jungloid graph; a jungloid
    is a well-typed composition of them.

    Free variables — the parameters of a call {e other than} the one chosen
    as the input — cannot be bound during synthesis; code generation declares
    them for the user to fill in, and ranking charges them an estimated cost
    of two elementary jungloids each. *)

module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Member = Javamodel.Member

type input_slot =
  | Receiver  (** the receiver of an instance call *)
  | Param of int  (** 0-based index into the parameter list *)
  | No_input  (** zero-input construction: the [void → T] pseudo edge *)

type t =
  | Field_access of { owner : Qname.t; field : Member.field }
      (** [λx. x.f : owner → ftype] for instance fields;
          [λ(). C.f : void → ftype] for static fields *)
  | Static_call of { owner : Qname.t; meth : Member.meth; input : input_slot }
      (** one elementary jungloid per class-typed parameter, or a [void]
          input when there is none ([input = No_input]) *)
  | Ctor_call of { owner : Qname.t; ctor : Member.ctor; input : input_slot }
  | Instance_call of { owner : Qname.t; meth : Member.meth; input : input_slot }
      (** the receiver is treated as just another parameter: [input] may be
          [Receiver] or [Param i] (in which case the receiver becomes a free
          variable) *)
  | Widen of { from_ : Jtype.t; to_ : Jtype.t }
      (** widening reference conversion; no syntax, cost 0 *)
  | Downcast of { from_ : Jtype.t; to_ : Jtype.t }
      (** narrowing reference conversion; never derived from signatures —
          only mined examples introduce downcast edges *)

val input_type : t -> Jtype.t
(** [Void] for zero-input elementary jungloids. *)

val output_type : t -> Jtype.t

val free_vars : t -> (string * Jtype.t) list
(** The unfilled slots of the expression: every parameter other than the
    input, plus the receiver when the input is a parameter of an instance
    call. Names are the declared parameter names (or ["receiver"]). *)

val cost : t -> int
(** Ranking cost of the elementary jungloid itself: 0 for {!Widen}, 1
    otherwise (free-variable charges are applied by {!Rank}). *)

val cost_scale : int
(** Fixed-point unit for learned (mined) edge costs: one paper cost unit
    equals [cost_scale] weighted units. Mined −log-frequency costs are
    rounded to this grid so weighted search stays in integer arithmetic
    and is deterministic across platforms. *)

val visibility : t -> Member.visibility option
(** Declared visibility of the member referenced; [None] for conversions.
    Used to keep non-public members out of synthesized code. *)

val is_widen : t -> bool

val is_downcast : t -> bool

val owner_package : t -> string option
(** Dotted package of the API element referenced, used by the ranking
    package-crossing tiebreak; [None] for conversions. *)

val describe : t -> string
(** Short human-readable form, e.g. ["IEditorPart.getEditorInput()"],
    ["(IStructuredSelection) ·"], ["widen IFile -> IResource"]. *)

val equal : t -> t -> bool

val compare : t -> t -> int
