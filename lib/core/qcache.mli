(** An exact LRU cache with hit/miss/eviction accounting — the memoization
    layer under the {!Query} engine.

    Keys are strings (callers render structured keys — type pair, settings,
    graph generation — to a canonical string); values are arbitrary. All
    operations are O(1). The counters are cumulative for the lifetime of the
    cache: {!clear} empties the table (counted as an invalidation) but
    preserves the hit/miss history, so a long-running engine's statistics
    survive graph enrichment. *)

type 'a t

type stats = {
  s_hits : int;
  s_misses : int;
  s_evictions : int;  (** entries dropped because the cache was full *)
  s_invalidations : int;  (** times {!clear} was called *)
  s_entries : int;  (** current size *)
  s_capacity : int;
}

val create : ?capacity:int -> unit -> 'a t
(** Default capacity 256 entries.
    @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Counts a hit or a miss and refreshes the entry's recency on hit. *)

val mem : 'a t -> string -> bool
(** Pure lookup: no counter or recency effect. *)

val add : 'a t -> string -> 'a -> unit
(** Insert (or overwrite) as most-recently-used; evicts the
    least-recently-used entry when the cache is at capacity. *)

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a
(** [find] then, on miss, compute, [add], and return. *)

val clear : 'a t -> unit
(** Drop every entry and count one invalidation. *)

val keys_mru_first : 'a t -> string list
(** The recency order, most recent first (for tests and debugging). *)

val stats : 'a t -> stats

val merge_stats : stats -> stats -> stats
(** Pointwise sum — an engine with several internal caches reports one
    combined figure. *)

val hit_rate : stats -> float
(** Hits over total lookups; [0.] before any lookup. *)
