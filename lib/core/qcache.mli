(** An exact LRU cache with hit/miss/eviction accounting — the memoization
    layer under the {!Query} engine.

    Keys are any structurally hashable type. The engine passes flat key
    records (type pair, settings, graph generation) rather than rendered
    strings, so two distinct queries can never collide the way concatenated
    strings can when an adversarial type name contains the separator. All
    operations are O(1). The counters are cumulative for the lifetime of the
    cache: {!clear} empties the table (counted as an invalidation) but
    preserves the hit/miss history, so a long-running engine's statistics
    survive graph enrichment. *)

type ('k, 'a) t

type stats = {
  s_hits : int;
  s_misses : int;
  s_evictions : int;  (** entries dropped because the cache was full *)
  s_invalidations : int;  (** times {!clear} was called *)
  s_entries : int;  (** current size *)
  s_capacity : int;
  s_dropped : int;
      (** entries removed by {!clear} or {!refresh}, cumulative — the
          invalidation cost in entries rather than passes *)
  s_scoped : int;  (** cone-scoped {!refresh} passes (vs generation nukes) *)
}

val create : ?capacity:int -> unit -> ('k, 'a) t
(** Default capacity 256 entries.
    @raise Invalid_argument when [capacity < 1]. *)

val capacity : ('k, 'a) t -> int

val length : ('k, 'a) t -> int

val find : ('k, 'a) t -> 'k -> 'a option
(** Counts a hit or a miss and refreshes the entry's recency on hit. *)

val mem : ('k, 'a) t -> 'k -> bool
(** Pure lookup: no counter or recency effect. *)

val add : ('k, 'a) t -> 'k -> 'a -> unit
(** Insert (or overwrite) as most-recently-used; evicts the
    least-recently-used entry when the cache is at capacity. *)

val find_or_add : ('k, 'a) t -> 'k -> (unit -> 'a) -> 'a
(** [find] then, on miss, compute, [add], and return. *)

val clear : ('k, 'a) t -> unit
(** Drop every entry and count one invalidation (plus the entry count in
    [s_dropped]). *)

val refresh : ('k, 'a) t -> ('k -> 'k option) -> int
(** [refresh t f] maps every entry's key through [f]: [None] drops the
    entry, [Some k'] keeps its value under the (possibly rewritten) key.
    Recency order is preserved; when two keys map to the same [k'] the more
    recent entry wins. Counts one scoped pass and adds the removed-entry
    count to [s_dropped]; returns that count. This is the cone-scoped
    invalidation primitive behind live reload: survivors are rekeyed to the
    new graph generation instead of being nuked wholesale. *)

val keys_mru_first : ('k, 'a) t -> 'k list
(** The recency order, most recent first (for tests and debugging). *)

val stats : ('k, 'a) t -> stats

val merge_stats : stats -> stats -> stats
(** Pointwise sum — an engine with several internal caches reports one
    combined figure. *)

val hit_rate : stats -> float
(** Hits over total lookups; [0.] before any lookup. *)
