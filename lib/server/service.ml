module Query = Prospector.Query
module Qcache = Prospector.Qcache
module Graph = Prospector.Graph
module Delta = Prospector.Delta
module Jungloid = Prospector.Jungloid
module Jtype = Javamodel.Jtype
module Qname = Javamodel.Qname
module Hierarchy = Javamodel.Hierarchy

(* What a corpus delta re-derives: the mined models the engine consumes and
   the vetting pass lint appends. Produced by the [?remodel] callback so
   this library keeps not depending on the mining layer (see [create]). *)
type remodel = {
  rm_edge_cost : (Prospector.Elem.t -> int) option;
  rm_protocol_check : (Jungloid.t -> string list) option;
  rm_vet : (Jungloid.t -> Analysis.Diagnostic.t list) option;
}

(* What a reader needs, captured at one graph generation. Readers take the
   whole record with one [Atomic.get] and never look back at the mutable
   graph, so a concurrent republication can at worst give them the previous
   (internally consistent) snapshot. *)
type snapshot = {
  s_gen : int;
  s_frozen : Graph.frozen;
  s_reach : Prospector.Reach.t option;
}

(* Per-worker result cache. The engine's LRU mutates on reads, so sharing it
   across lock-free readers is impossible; instead each transport worker owns
   one of these. One cache holds all three read shapes — a variant key keeps
   them from colliding while letting hot ops steal capacity from cold ones. *)
type lkey =
  | Lquery of {
      tin : Jtype.t;
      tout : Jtype.t;
      settings : Query.settings;
      gen : int;
    }
  | Lassist of {
      vars : (string * Jtype.t) list;
      tout : Jtype.t;
      settings : Query.settings;
      gen : int;
    }
  | Llint of {
      tin : Jtype.t;
      tout : Jtype.t;
      settings : Query.settings;
      gen : int;
    }

type lval =
  | Vresults of Query.result list * bool  (* results, truncated *)
  | Vsuggest of Prospector.Assist.suggestion list
  | Vlint of Analysis.Diagnostic.t list

type local = { lcache : (lkey, lval) Qcache.t }

(* One refine session: the pure {!Prospector_eval.Session} state plus the
   bookkeeping TTL eviction needs. Mutated only under [sessions_lock]. *)
type session = {
  sess_id : string;
  mutable sess_state : Prospector_eval.Session.t;
  mutable sess_touched : float;  (* Unix time of the last refine op on it *)
}

type t = {
  eng : Query.engine;
  snap : snapshot Atomic.t;
  publish : Mutex.t;  (* serializes engine touches and snapshot rebuilds *)
  locals : local list ref;  (* every cache handed out, for the stats op *)
  locals_lock : Mutex.t;
  mets : Metrics.t;
  base_settings : Query.settings;
  mutable vet : (Jungloid.t -> Analysis.Diagnostic.t list) option;
      (* protocol vetting for the lint op, injected at [create] so this
         library never depends on the mining layer that learns the model.
         Mutable because a corpus reload re-learns the model; written only
         under [publish], read without a lock (a one-word read of an
         immutable closure — stale by at most one reload, never torn) *)
  graph_config : Prospector.Sig_graph.config;
      (* the config the engine's graph was built with — [Delta.apply] must
         rebuild under the same one or the oracle breaks *)
  remodel : (Hierarchy.t -> string -> (remodel, string) result) option;
      (* corpus text -> re-derived mined models, against the patched
         hierarchy; absent on servers that never mined *)
  rebuild : (Hierarchy.t -> Graph.frozen) option;
      (* the cold enriched build the server would do at startup, from a
         patched hierarchy; used in place of [Delta]'s signature-only
         rebuild so mined (spliced) nodes and edges survive a reload *)
  reload_hook : (Graph.frozen -> Prospector.Reach.t option -> unit) option;
      (* called after each successful reload with the published snapshot
         (re-persistence for [--save-graph]); must not raise *)
  reloads : int Atomic.t;
  deadline_s : float option;
  stop : bool Atomic.t;
  truncated_queries : int Atomic.t;
      (* how many query computations hit [settings.limit]; cache hits of an
         already-truncated result do not re-count *)
  sessions : (string, session) Hashtbl.t;
      (* live refine sessions; the one piece of cross-request state. All
         access goes through [sessions_lock] — session ops are cheap (probe
         selection over <= max_results candidates) next to query cost, so
         a plain mutex cannot become the bottleneck the snapshot scheme
         exists to avoid *)
  sessions_lock : Mutex.t;
  session_counter : int Atomic.t;
  session_ttl_s : float option;  (* [None] = sessions never expire *)
}

(* Call with [publish] held (or before the service is shared). *)
let take_snapshot engine =
  let frozen = Query.engine_frozen engine in
  {
    s_gen = Graph.frozen_generation frozen;
    s_frozen = frozen;
    s_reach = Query.engine_reach engine;
  }

let create ?(settings = Query.default_settings) ?vet
    ?(graph_config = Prospector.Sig_graph.default_config) ?remodel ?rebuild
    ?reload_hook ?deadline_s ?session_ttl_s ~engine () =
  (* Warm the hierarchy's lazy memos while we are still single-threaded:
     after this, ranking only reads it. *)
  Hierarchy.warm (Query.engine_hierarchy engine);
  {
    eng = engine;
    snap = Atomic.make (take_snapshot engine);
    publish = Mutex.create ();
    locals = ref [];
    locals_lock = Mutex.create ();
    mets = Metrics.create ();
    base_settings = settings;
    vet;
    graph_config;
    remodel;
    rebuild;
    reload_hook;
    reloads = Atomic.make 0;
    deadline_s;
    stop = Atomic.make false;
    truncated_queries = Atomic.make 0;
    sessions = Hashtbl.create 16;
    sessions_lock = Mutex.create ();
    session_counter = Atomic.make 0;
    session_ttl_s;
  }

let engine t = t.eng

let metrics t = t.mets

let shutdown_requested t = Atomic.get t.stop

let with_sessions t f =
  Mutex.lock t.sessions_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.sessions_lock) f

(* Call with [sessions_lock] held. *)
let publish_session_gauge t =
  Metrics.set_gauge t.mets "refine_sessions" (Hashtbl.length t.sessions)

let live_sessions t = with_sessions t (fun () -> Hashtbl.length t.sessions)

(* Drop every session whose idle time exceeds the TTL. Run at the top of
   each refine op, with the lock held. *)
let sweep_sessions t now =
  match t.session_ttl_s with
  | None -> ()
  | Some ttl ->
      let dead =
        Hashtbl.fold
          (fun id s acc -> if now -. s.sess_touched >= ttl then id :: acc else acc)
          t.sessions []
      in
      List.iter (Hashtbl.remove t.sessions) dead;
      if dead <> [] then publish_session_gauge t

let request_shutdown t =
  Atomic.set t.stop true;
  (* Drain-time cleanup: the sessions die with the server; reject the
     stragglers with [shutting_down], not [session_expired]. *)
  with_sessions t (fun () ->
      if Hashtbl.length t.sessions > 0 then begin
        Hashtbl.reset t.sessions;
        publish_session_gauge t
      end)

let local ?(capacity = 256) t =
  let l = { lcache = Qcache.create ~capacity () } in
  Mutex.lock t.locals_lock;
  t.locals := l :: !(t.locals);
  Mutex.unlock t.locals_lock;
  l

(* The published snapshot, republishing first if the graph moved on.

   The generation probe reads a plain int field of the mutable graph — OCaml
   guarantees the read cannot tear, only lag, and a lagging read merely
   delays republication to the next request (results stay internally
   consistent: they come from the complete previous snapshot). The rebuild
   itself runs under [publish], because the engine (caches, re-freeze, reach
   build) is not safe to touch concurrently; the double-check inside the
   lock keeps a stampede of stale readers down to one rebuild. *)
let current t =
  let snap = Atomic.get t.snap in
  if Query.engine_live_generation t.eng = snap.s_gen then snap
  else begin
    Mutex.lock t.publish;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.publish)
      (fun () ->
        let snap = Atomic.get t.snap in
        if Query.engine_live_generation t.eng = snap.s_gen then snap
        else begin
          Hierarchy.warm (Query.engine_hierarchy t.eng);
          let s = take_snapshot t.eng in
          Atomic.set t.snap s;
          s
        end)
  end

(* ---------- response payloads ---------- *)

let result_json i (r : Query.result) =
  Proto.Obj
    [
      ("rank", Proto.Int (i + 1));
      ("jungloid", Proto.Str (Jungloid.to_string r.Query.jungloid));
      ("code", Proto.Str r.Query.code);
    ]

let results_json rs =
  Proto.Arr (List.mapi result_json rs)

let cluster_json i (c : Query.cluster) =
  Proto.Obj
    [
      ("rank", Proto.Int (i + 1));
      ("members", Proto.Int c.Query.members);
      ("type_path", Proto.Str c.Query.type_path);
      ("representative", result_json i c.Query.representative);
    ]

let suggestion_json i (s : Prospector.Assist.suggestion) =
  Proto.Obj
    [
      ("rank", Proto.Int (i + 1));
      ("title", Proto.Str s.Prospector.Assist.title);
      ("code", Proto.Str s.Prospector.Assist.code);
      ( "uses_var",
        match s.Prospector.Assist.uses_var with
        | Some v -> Proto.Str v
        | None -> Proto.Null );
    ]

let diagnostic_json (d : Analysis.Diagnostic.t) =
  let where =
    match d.Analysis.Diagnostic.where with
    | Analysis.Diagnostic.Source l ->
        [
          ("file", Proto.Str l.Minijava.Tast.file);
          ("line", Proto.Int l.Minijava.Tast.line);
          ("col", Proto.Int l.Minijava.Tast.col);
        ]
    | Analysis.Diagnostic.Subject s -> [ ("subject", Proto.Str s) ]
  in
  Proto.Obj
    ([
       ( "severity",
         Proto.Str (Analysis.Diagnostic.severity_string d.Analysis.Diagnostic.severity)
       );
       ("code", Proto.Str d.Analysis.Diagnostic.code);
     ]
    @ where
    @ [ ("message", Proto.Str d.Analysis.Diagnostic.message) ])

let cache_json stats =
  Proto.Obj
    [
      ("entries", Proto.Int stats.Prospector.Qcache.s_entries);
      ("capacity", Proto.Int stats.Prospector.Qcache.s_capacity);
      ("hits", Proto.Int stats.Prospector.Qcache.s_hits);
      ("misses", Proto.Int stats.Prospector.Qcache.s_misses);
      ("hit_rate", Proto.Float (Prospector.Qcache.hit_rate stats));
      ("evictions", Proto.Int stats.Prospector.Qcache.s_evictions);
      ("invalidations", Proto.Int stats.Prospector.Qcache.s_invalidations);
    ]

(* ---------- snapshot reads ---------- *)

(* Run a read on the snapshot, memoized in the worker's cache when it has
   one. Without a [local] (direct library callers, tests) the read simply
   computes — still lock-free, just uncached. *)
let memo local key compute =
  match local with
  | None -> compute ()
  | Some l -> Qcache.find_or_add l.lcache key compute

let query_results t local snap ~settings q =
  let compute () =
    let rs, info =
      (* The engine froze this snapshot with its own usage model, so the
         model passed here matches the snapshot's baked weighted costs. *)
      Query.run_info ~settings ?reach:snap.s_reach ~frozen:snap.s_frozen
        ?edge_cost:(Query.engine_edge_cost t.eng)
        ?protocol_check:(Query.engine_protocol_check t.eng)
        ~hierarchy:(Query.engine_hierarchy t.eng)
        q
    in
    if info.Query.truncated then Atomic.incr t.truncated_queries;
    Vresults (rs, info.Query.truncated)
  in
  let key =
    Lquery { tin = q.Query.tin; tout = q.Query.tout; settings; gen = snap.s_gen }
  in
  match memo local key compute with
  | Vresults (rs, truncated) -> (rs, truncated)
  | _ -> assert false

let assist_suggestions t local snap ~settings (ctx : Prospector.Assist.context) =
  let compute () =
    Vsuggest
      (Prospector.Assist.suggest ~settings ~frozen:snap.s_frozen ?reach:snap.s_reach
         ?edge_cost:(Query.engine_edge_cost t.eng)
         ?protocol_check:(Query.engine_protocol_check t.eng)
         ~hierarchy:(Query.engine_hierarchy t.eng)
         ctx)
  in
  let key =
    Lassist
      {
        vars = ctx.Prospector.Assist.vars;
        tout = ctx.Prospector.Assist.expected;
        settings;
        gen = snap.s_gen;
      }
  in
  match memo local key compute with Vsuggest ss -> ss | _ -> assert false

let lint_diagnostics t local snap q =
  let hierarchy = Query.engine_hierarchy t.eng in
  let vet = match t.vet with Some v -> v | None -> fun _ -> [] in
  let compute () =
    Vlint
      (fst (query_results t local snap ~settings:t.base_settings q)
      |> List.concat_map (fun (r : Query.result) ->
             Analysis.Verify.check hierarchy r.Query.jungloid
             @ Analysis.Gencheck.check hierarchy r.Query.jungloid
             @ vet r.Query.jungloid)
      |> List.sort_uniq Analysis.Diagnostic.compare)
  in
  let key =
    Llint
      {
        tin = q.Query.tin;
        tout = q.Query.tout;
        settings = t.base_settings;
        gen = snap.s_gen;
      }
  in
  match memo local key compute with Vlint ds -> ds | _ -> assert false

(* Engine counters plus every worker cache's counters. Foreign caches may be
   mid-mutation on other domains while we read; the counters are plain ints
   (stale at worst, never torn), fine for monitoring output. *)
let cache_stats t =
  Mutex.lock t.locals_lock;
  let ls = !(t.locals) in
  Mutex.unlock t.locals_lock;
  let engine_stats =
    Mutex.lock t.publish;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.publish)
      (fun () -> Query.engine_stats t.eng)
  in
  List.fold_left
    (fun acc l -> Qcache.merge_stats acc (Qcache.stats l.lcache))
    engine_stats ls

(* ---------- refine sessions ---------- *)

module Esession = Prospector_eval.Session
module Eprobe = Prospector_eval.Probe
module Evalue = Prospector_eval.Value

let question_json (q : Eprobe.question) =
  Proto.Obj
    [
      ( "inputs",
        Proto.Arr
          (List.map
             (fun (k, v) ->
               Proto.Obj
                 [
                   ("source", Proto.Str k);
                   ("value", Proto.Str (Evalue.to_string v));
                 ])
             q.Eprobe.env) );
      ( "choices",
        Proto.Arr
          (List.mapi
             (fun i (g : Eprobe.group) ->
               Proto.Obj
                 [
                   ("choice", Proto.Int i);
                   ( "output",
                     match g.Eprobe.answer with
                     | Eprobe.Output s -> Proto.Str s
                     | Eprobe.Unknown -> Proto.Null );
                   ("count", Proto.Int (List.length g.Eprobe.members));
                 ])
             q.Eprobe.groups) );
    ]

(* Rendered exactly like a query result (same fields, original rank), plus
   the assist source variable when there is one. *)
let refine_candidate_json rank (c : Esession.candidate) =
  match (result_json rank c.Esession.result, c.Esession.source) with
  | Proto.Obj fields, Some v -> Proto.Obj (fields @ [ ("source", Proto.Str v) ])
  | j, _ -> j

let session_payload sess =
  let st = sess.sess_state in
  let base =
    [
      ("session", Proto.Str sess.sess_id);
      ("candidates", Proto.Int (List.length (Esession.candidates st)));
      ("live", Proto.Int (List.length (Esession.live st)));
      ("asked", Proto.Int (Esession.questions_asked st));
      ("converged", Proto.Bool (Esession.converged st));
    ]
  in
  match Esession.question st with
  | Some q -> base @ [ ("question", question_json q) ]
  | None ->
      base @ [ ("result", refine_candidate_json (Esession.best_rank st) (Esession.best st)) ]

let draining_response ~id =
  Proto.error_response ~id Proto.Shutting_down
    "server is draining; refine sessions are closed"

let expired_response ~id session =
  Proto.error_response ~id Proto.Session_expired
    (Printf.sprintf "unknown or expired session %S" session)

(* ---------- live reload ---------- *)

(* Turn the request's [.japi] text and removal list into a [Delta] op list.
   The text is parsed and resolved standalone (names not declared in it fall
   back to java.lang or close over as opaque synthetics — write fully
   qualified names for types the delta does not itself declare); each class
   it declares is added if the server does not know the name, replaced
   otherwise. Synthetic closure fillers never clobber a declaration the
   server already has. *)
let ops_of_reload t ~japi ~remove =
  let removed q = List.exists (fun r -> String.equal r (Qname.to_string q)) remove in
  let removals = List.map (fun q -> Delta.Remove_class (Qname.of_string q)) remove in
  match japi with
  | None -> Ok removals
  | Some src -> (
      match Japi.Loader.load_string ~file:"<reload>" src with
      | exception Japi.Error.E e -> Error (Japi.Error.to_string e)
      | dh ->
          let h = Query.engine_hierarchy t.eng in
          let ops =
            Hierarchy.fold dh ~init:[] ~f:(fun acc (d : Javamodel.Decl.t) ->
                if Qname.equal d.Javamodel.Decl.dname Qname.object_qname then acc
                else if
                  Hierarchy.mem h d.Javamodel.Decl.dname
                  && not (removed d.Javamodel.Decl.dname)
                then
                  if d.Javamodel.Decl.synthetic then acc
                  else Delta.Replace_class d :: acc
                else Delta.Add_class d :: acc)
          in
          (* removals first, so a delta that removes and redeclares one name
             reads as a structural replace (the adds above already treat the
             removed name as fresh) *)
          Ok (removals @ List.rev ops))

let delta_error_json (e : Delta.error) =
  Proto.Obj
    [
      ("index", Proto.Int e.Delta.index);
      ("op", Proto.Str e.Delta.op_name);
      ("subject", Proto.Str e.Delta.subject);
      ("reason", Proto.Str e.Delta.reason);
    ]

(* A [bad_request] whose error object carries the typed per-delta failures,
   so a client can point at the exact op instead of re-reading a prose
   message. *)
let delta_errors_response ~id errs =
  match
    Proto.error_response ~id Proto.Bad_request
      (Printf.sprintf "delta rejected: %d invalid op(s)" (List.length errs))
  with
  | Proto.Obj fields ->
      Proto.Obj (fields @ [ ("errors", Proto.Arr (List.map delta_error_json errs)) ])
  | j -> j

(* The whole reload, called with [publish] held. Order matters: validate and
   patch first (all-or-nothing — a rejected delta must leave no trace), then
   re-derive the mined models against the patched hierarchy, then swap the
   engine and publish. Readers keep answering off the previous snapshot
   until the single [Atomic.set]. *)
let reload_locked t ~id ~japi ~remove ~corpus =
  match ops_of_reload t ~japi ~remove with
  | Error msg -> Proto.error_response ~id Proto.Bad_request msg
  | Ok ops -> (
      let hierarchy = Query.engine_hierarchy t.eng in
      let frozen = Query.engine_frozen t.eng in
      let wcost =
        match Query.engine_edge_cost t.eng with
        | Some f -> f
        | None -> Graph.default_wcost
      in
      match Delta.apply ~config:t.graph_config ~wcost ~hierarchy ~frozen ops with
      | Error errs -> delta_errors_response ~id errs
      | Ok patch -> (
          let rm =
            match (corpus, t.remodel) with
            | None, _ -> Ok None
            | Some _, None ->
                Error
                  "this server mined no corpus (started with --no-mining); \
                   corpus deltas need a mined model to extend"
            | Some src, Some f ->
                Result.map Option.some (f patch.Delta.p_hierarchy src)
          in
          match rm with
          | Error msg -> Proto.error_response ~id Proto.Bad_request msg
          | Ok rm ->
              (* An enriched server rebuilds through the injected cold-build
                 closure — [Delta]'s own rebuild is signature-only and would
                 silently drop the spliced mined examples. A corpus delta
                 forces that path too: new examples must be spliced in, which
                 no row splice can do. Generation comes from the patch so the
                 monotone-bump contract holds either way. *)
              let patch =
                match t.rebuild with
                | Some rebuild
                  when patch.Delta.p_mode = Delta.Rebuilt || rm <> None ->
                    let fz = rebuild patch.Delta.p_hierarchy in
                    {
                      patch with
                      Delta.p_frozen =
                        {
                          fz with
                          Graph.f_generation =
                            Graph.frozen_generation patch.Delta.p_frozen;
                        };
                      p_mode = Delta.Rebuilt;
                    }
                | _ -> patch
              in
              let edge_cost = Option.bind rm (fun r -> r.rm_edge_cost) in
              let protocol_check = Option.bind rm (fun r -> r.rm_protocol_check) in
              Query.engine_reload ?edge_cost ?protocol_check t.eng patch;
              (match Option.bind rm (fun r -> r.rm_vet) with
              | Some v -> t.vet <- Some v
              | None -> ());
              Hierarchy.warm (Query.engine_hierarchy t.eng);
              let s = take_snapshot t.eng in
              Atomic.set t.snap s;
              (* Worker caches are left alone: their keys embed the
                 generation, so stale entries can never hit again — they age
                 out of the LRU. Touching a foreign worker's cache here would
                 race with its own reads. *)
              let n = Atomic.fetch_and_add t.reloads 1 + 1 in
              Metrics.set_gauge t.mets "graph_generation" s.s_gen;
              Metrics.set_gauge t.mets "reloads_applied" n;
              (match t.reload_hook with
              | Some hook -> hook s.s_frozen s.s_reach
              | None -> ());
              Proto.ok_response ~id ~op:"reload"
                [
                  ("ops", Proto.Int patch.Delta.p_ops);
                  ("mode", Proto.Str (Delta.mode_string patch.Delta.p_mode));
                  ("touched", Proto.Int patch.Delta.p_touched_count);
                  ("generation", Proto.Int s.s_gen);
                ]))

(* ---------- dispatch ---------- *)

let op_name = function
  | Proto.Query _ -> "query"
  | Proto.Assist _ -> "assist"
  | Proto.Batch _ -> "batch"
  | Proto.Lint _ -> "lint"
  | Proto.Refine_start _ -> "refine_start"
  | Proto.Refine_answer _ -> "refine_answer"
  | Proto.Refine_status _ -> "refine_status"
  | Proto.Refine_stop _ -> "refine_stop"
  | Proto.Reload _ -> "reload"
  | Proto.Stats -> "stats"
  | Proto.Health -> "health"
  | Proto.Shutdown -> "shutdown"

let settings_for t ~max_results ~slack ~strategy ~ranking ~protocol =
  let s = t.base_settings in
  {
    s with
    Query.max_results = Option.value max_results ~default:s.Query.max_results;
    slack = Option.value slack ~default:s.Query.slack;
    strategy = Option.value strategy ~default:s.Query.strategy;
    ranking = Option.value ranking ~default:s.Query.ranking;
    protocol = Option.value protocol ~default:s.Query.protocol;
  }

(* An unknown strategy, ranking or protocol string is the requester's
   mistake, answered with [Bad_request] and the accepted spellings, before
   any engine work. *)
let parse_strategy = function
  | None -> Ok None
  | Some s -> Result.map Option.some (Query.strategy_of_string s)

let parse_ranking = function
  | None -> Ok None
  | Some s -> Result.map Option.some (Query.ranking_of_string s)

let parse_protocol = function
  | None -> Ok None
  | Some s -> Result.map Option.some (Query.protocol_of_string s)

(* Validate the optional spellings, reporting the first offender. *)
let parse_mode ~strategy ~ranking ~protocol =
  match parse_strategy strategy with
  | Error _ as e -> e
  | Ok strategy -> (
      match parse_ranking ranking with
      | Error _ as e -> e
      | Ok ranking -> (
          match parse_protocol protocol with
          | Error _ as e -> e
          | Ok protocol -> Ok (strategy, ranking, protocol)))

let dispatch ?local t ~id req =
  match req with
  | Proto.Query
      { tin; tout; max_results; slack; strategy; ranking; protocol; cluster }
    -> (
      match parse_mode ~strategy ~ranking ~protocol with
      | Error msg -> Proto.error_response ~id Proto.Bad_request msg
      | Ok (strategy, ranking, protocol) ->
          let settings =
            settings_for t ~max_results ~slack ~strategy ~ranking ~protocol
          in
          let q = Query.query tin tout in
          let rs, truncated = query_results t local (current t) ~settings q in
          let payload =
            if cluster then
              let cs = Query.cluster rs in
              [
                ("count", Proto.Int (List.length cs));
                ("clusters", Proto.Arr (List.mapi cluster_json cs));
                ("truncated", Proto.Bool truncated);
              ]
            else
              [
                ("count", Proto.Int (List.length rs));
                ("results", results_json rs);
                ("truncated", Proto.Bool truncated);
              ]
          in
          Proto.ok_response ~id ~op:"query" payload)
  | Proto.Assist { tout; vars; max_results; slack; strategy; ranking; protocol }
    -> (
      match parse_mode ~strategy ~ranking ~protocol with
      | Error msg -> Proto.error_response ~id Proto.Bad_request msg
      | Ok (strategy, ranking, protocol) ->
      let settings =
        settings_for t ~max_results ~slack ~strategy ~ranking ~protocol
      in
      let ctx =
        {
          Prospector.Assist.vars =
            List.map (fun (name, ty) -> (name, Jtype.ref_of_string ty)) vars;
          expected = Jtype.ref_of_string tout;
        }
      in
      let suggestions = assist_suggestions t local (current t) ~settings ctx in
      Proto.ok_response ~id ~op:"assist"
        [
          ("count", Proto.Int (List.length suggestions));
          ("suggestions", Proto.Arr (List.mapi suggestion_json suggestions));
        ])
  | Proto.Batch { pairs; max_results; slack; strategy; ranking; protocol } -> (
      match parse_mode ~strategy ~ranking ~protocol with
      | Error msg -> Proto.error_response ~id Proto.Bad_request msg
      | Ok (strategy, ranking, protocol) ->
      let settings =
        settings_for t ~max_results ~slack ~strategy ~ranking ~protocol
      in
      let qs = List.map (fun (tin, tout) -> Query.query tin tout) pairs in
      (* One snapshot for the whole batch: every answer describes the same
         graph generation even if a republication lands mid-batch.
         Cross-request parallelism comes from the worker domains; fanning a
         single request out as well would oversubscribe them. *)
      let snap = current t in
      let answers = List.map (fun q -> (q, query_results t local snap ~settings q)) qs in
      Proto.ok_response ~id ~op:"batch"
        [
          ( "answers",
            Proto.Arr
              (List.map
                 (fun ((q : Query.t), (rs, truncated)) ->
                   Proto.Obj
                     [
                       ("tin", Proto.Str (Jtype.to_string q.Query.tin));
                       ("tout", Proto.Str (Jtype.to_string q.Query.tout));
                       ("count", Proto.Int (List.length rs));
                       ("results", results_json rs);
                       ("truncated", Proto.Bool truncated);
                     ])
                 answers) );
        ])
  | Proto.Lint { tin; tout } ->
      let q = Query.query tin tout in
      let ds = lint_diagnostics t local (current t) q in
      Proto.ok_response ~id ~op:"lint"
        [
          ("diagnostics", Proto.Arr (List.map diagnostic_json ds));
          ("errors", Proto.Int (Analysis.Diagnostic.count Analysis.Diagnostic.Error ds));
          ( "warnings",
            Proto.Int (Analysis.Diagnostic.count Analysis.Diagnostic.Warning ds) );
        ]
  | Proto.Refine_start
      { tin; tout; vars; max_results; slack; strategy; ranking; protocol } -> (
      (* Shutdown check first: during a drain the table has been cleared
         and must stay empty, so the typed reply is [shutting_down] — never
         [session_expired], never [internal]. *)
      if shutdown_requested t then draining_response ~id
      else
        match parse_mode ~strategy ~ranking ~protocol with
        | Error msg -> Proto.error_response ~id Proto.Bad_request msg
        | Ok (strategy, ranking, protocol) -> (
            let settings =
              settings_for t ~max_results ~slack ~strategy ~ranking ~protocol
            in
            let snap = current t in
            let candidates =
              match tin with
              | Some tin ->
                  (* Same producer as the query op (see Query.run_stream):
                     the session's candidates ARE the query reply's results. *)
                  let q = Query.query tin tout in
                  Query.run_stream ~settings ?reach:snap.s_reach
                    ~frozen:snap.s_frozen
                    ?edge_cost:(Query.engine_edge_cost t.eng)
                    ?protocol_check:(Query.engine_protocol_check t.eng)
                    ~hierarchy:(Query.engine_hierarchy t.eng)
                    q
                  |> Seq.take settings.Query.max_results
                  |> List.of_seq
                  |> List.map (fun r -> { Esession.source = None; result = r })
              | None ->
                  let ctx =
                    {
                      Prospector.Assist.vars =
                        List.map
                          (fun (name, ty) -> (name, Jtype.ref_of_string ty))
                          vars;
                      expected = Jtype.ref_of_string tout;
                    }
                  in
                  assist_suggestions t local snap ~settings ctx
                  |> List.map (fun (s : Prospector.Assist.suggestion) ->
                         {
                           Esession.source = s.Prospector.Assist.uses_var;
                           result = s.Prospector.Assist.result;
                         })
            in
            match candidates with
            | [] ->
                (* nothing to disambiguate and nothing worth a session id *)
                Proto.ok_response ~id ~op:"refine_start"
                  [
                    ("session", Proto.Null);
                    ("candidates", Proto.Int 0);
                    ("live", Proto.Int 0);
                    ("asked", Proto.Int 0);
                    ("converged", Proto.Bool true);
                  ]
            | _ ->
                let now = Unix.gettimeofday () in
                let sess =
                  {
                    sess_id =
                      Printf.sprintf "r%d"
                        (Atomic.fetch_and_add t.session_counter 1 + 1);
                    sess_state = Esession.start candidates;
                    sess_touched = now;
                  }
                in
                with_sessions t (fun () ->
                    sweep_sessions t now;
                    Hashtbl.replace t.sessions sess.sess_id sess;
                    publish_session_gauge t);
                Proto.ok_response ~id ~op:"refine_start" (session_payload sess)))
  | Proto.Refine_answer { session; choice } ->
      if shutdown_requested t then draining_response ~id
      else
        let now = Unix.gettimeofday () in
        with_sessions t (fun () ->
            sweep_sessions t now;
            match Hashtbl.find_opt t.sessions session with
            | None -> expired_response ~id session
            | Some sess -> (
                sess.sess_touched <- now;
                match Esession.answer sess.sess_state ~choice with
                | Error `No_question ->
                    Proto.error_response ~id Proto.Bad_request
                      "session has already converged; no question is pending"
                | Error `Bad_choice ->
                    Proto.error_response ~id Proto.Bad_request
                      (Printf.sprintf "choice %d is out of range" choice)
                | Ok st ->
                    sess.sess_state <- st;
                    Proto.ok_response ~id ~op:"refine_answer"
                      (session_payload sess)))
  | Proto.Refine_status { session } ->
      if shutdown_requested t then draining_response ~id
      else
        (* a status read does not refresh the TTL *)
        with_sessions t (fun () ->
            sweep_sessions t (Unix.gettimeofday ());
            match Hashtbl.find_opt t.sessions session with
            | None -> expired_response ~id session
            | Some sess ->
                Proto.ok_response ~id ~op:"refine_status" (session_payload sess))
  | Proto.Refine_stop { session } ->
      if shutdown_requested t then draining_response ~id
      else
        with_sessions t (fun () ->
            sweep_sessions t (Unix.gettimeofday ());
            match Hashtbl.find_opt t.sessions session with
            | None -> expired_response ~id session
            | Some _ ->
                Hashtbl.remove t.sessions session;
                publish_session_gauge t;
                Proto.ok_response ~id ~op:"refine_stop"
                  [ ("session", Proto.Str session); ("stopped", Proto.Bool true) ])
  | Proto.Reload { japi; remove; corpus } ->
      if shutdown_requested t then draining_response ~id
      else begin
        Mutex.lock t.publish;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.publish)
          (fun () -> reload_locked t ~id ~japi ~remove ~corpus)
      end
  | Proto.Stats ->
      let snap = current t in
      let graph_stats = Prospector.Stats.of_frozen snap.s_frozen in
      Proto.ok_response ~id ~op:"stats"
        ([
           ("uptime_s", Proto.Float (Metrics.uptime_s t.mets));
           ("requests", Proto.Int (Metrics.total_requests t.mets));
           ("truncated_queries", Proto.Int (Atomic.get t.truncated_queries));
           ("sessions", Proto.Int (live_sessions t));
           ( "graph",
             Proto.Obj
               [
                 ("nodes", Proto.Int graph_stats.Prospector.Stats.nodes);
                 ("edges", Proto.Int graph_stats.Prospector.Stats.edges);
                 ("generation", Proto.Int snap.s_gen);
               ] );
           ("cache", cache_json (cache_stats t));
           ("ops", Metrics.ops_json t.mets);
         ]
        @
        (* only once a gauge exists, so servers that never reload (or
           refine) keep their exact old reply shape *)
        match Metrics.gauges t.mets with
        | [] -> []
        | _ -> [ ("gauges", Metrics.gauges_json t.mets) ])
  | Proto.Health ->
      Proto.ok_response ~id ~op:"health"
        [
          ("status", Proto.Str "ok");
          ("uptime_s", Proto.Float (Metrics.uptime_s t.mets));
        ]
  | Proto.Shutdown ->
      request_shutdown t;
      Proto.ok_response ~id ~op:"shutdown" [ ("status", Proto.Str "draining") ]

let deadline_exceeded t elapsed =
  match t.deadline_s with Some d -> elapsed > d | None -> false

let handle ?local t ({ Proto.id; req } : Proto.envelope) =
  let t0 = Unix.gettimeofday () in
  let response =
    match dispatch ?local t ~id req with
    | resp ->
        let elapsed = Unix.gettimeofday () -. t0 in
        (* Cooperative deadline: never serve a result that took longer than
           the deadline (see the mli for what this does and does not bound). *)
        if deadline_exceeded t elapsed then
          Proto.error_response ~id Proto.Timeout
            (Printf.sprintf "request exceeded the %.3f s deadline"
               (Option.get t.deadline_s))
        else resp
    | exception exn ->
        Proto.error_response ~id Proto.Internal (Printexc.to_string exn)
  in
  let ok = match Proto.member "ok" response with Some (Proto.Bool b) -> b | _ -> false in
  Metrics.record t.mets ~op:(op_name req) ~ok (Unix.gettimeofday () -. t0);
  response

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let handle_line ?local t line =
  let response =
    match Proto.parse line with
    | Error msg ->
        Metrics.record t.mets ~op:"invalid" ~ok:false 0.0;
        Proto.error_response ~id:Proto.Null Proto.Bad_request
          ("malformed request: " ^ msg)
    | Ok j -> (
        let id = Option.value (Proto.member "id" j) ~default:Proto.Null in
        match Proto.request_of_json j with
        | Error msg ->
            Metrics.record t.mets ~op:"invalid" ~ok:false 0.0;
            let code =
              if starts_with ~prefix:"unknown op" msg then Proto.Unknown_op
              else Proto.Bad_request
            in
            Proto.error_response ~id code msg
        | Ok envelope -> handle ?local t envelope)
  in
  Proto.to_string response
