module Query = Prospector.Query
module Qcache = Prospector.Qcache
module Graph = Prospector.Graph
module Jungloid = Prospector.Jungloid
module Jtype = Javamodel.Jtype
module Hierarchy = Javamodel.Hierarchy

(* What a reader needs, captured at one graph generation. Readers take the
   whole record with one [Atomic.get] and never look back at the mutable
   graph, so a concurrent republication can at worst give them the previous
   (internally consistent) snapshot. *)
type snapshot = {
  s_gen : int;
  s_frozen : Graph.frozen;
  s_reach : Prospector.Reach.t option;
}

(* Per-worker result cache. The engine's LRU mutates on reads, so sharing it
   across lock-free readers is impossible; instead each transport worker owns
   one of these. One cache holds all three read shapes — a variant key keeps
   them from colliding while letting hot ops steal capacity from cold ones. *)
type lkey =
  | Lquery of {
      tin : Jtype.t;
      tout : Jtype.t;
      settings : Query.settings;
      gen : int;
    }
  | Lassist of {
      vars : (string * Jtype.t) list;
      tout : Jtype.t;
      settings : Query.settings;
      gen : int;
    }
  | Llint of {
      tin : Jtype.t;
      tout : Jtype.t;
      settings : Query.settings;
      gen : int;
    }

type lval =
  | Vresults of Query.result list * bool  (* results, truncated *)
  | Vsuggest of Prospector.Assist.suggestion list
  | Vlint of Analysis.Diagnostic.t list

type local = { lcache : (lkey, lval) Qcache.t }

type t = {
  eng : Query.engine;
  snap : snapshot Atomic.t;
  publish : Mutex.t;  (* serializes engine touches and snapshot rebuilds *)
  locals : local list ref;  (* every cache handed out, for the stats op *)
  locals_lock : Mutex.t;
  mets : Metrics.t;
  base_settings : Query.settings;
  vet : (Jungloid.t -> Analysis.Diagnostic.t list) option;
      (* protocol vetting for the lint op, injected at [create] so this
         library never depends on the mining layer that learns the model *)
  deadline_s : float option;
  stop : bool Atomic.t;
  truncated_queries : int Atomic.t;
      (* how many query computations hit [settings.limit]; cache hits of an
         already-truncated result do not re-count *)
}

(* Call with [publish] held (or before the service is shared). *)
let take_snapshot engine =
  let frozen = Query.engine_frozen engine in
  {
    s_gen = Graph.frozen_generation frozen;
    s_frozen = frozen;
    s_reach = Query.engine_reach engine;
  }

let create ?(settings = Query.default_settings) ?vet ?deadline_s ~engine () =
  (* Warm the hierarchy's lazy memos while we are still single-threaded:
     after this, ranking only reads it. *)
  Hierarchy.warm (Query.engine_hierarchy engine);
  {
    eng = engine;
    snap = Atomic.make (take_snapshot engine);
    publish = Mutex.create ();
    locals = ref [];
    locals_lock = Mutex.create ();
    mets = Metrics.create ();
    base_settings = settings;
    vet;
    deadline_s;
    stop = Atomic.make false;
    truncated_queries = Atomic.make 0;
  }

let engine t = t.eng

let metrics t = t.mets

let shutdown_requested t = Atomic.get t.stop

let request_shutdown t = Atomic.set t.stop true

let local ?(capacity = 256) t =
  let l = { lcache = Qcache.create ~capacity () } in
  Mutex.lock t.locals_lock;
  t.locals := l :: !(t.locals);
  Mutex.unlock t.locals_lock;
  l

(* The published snapshot, republishing first if the graph moved on.

   The generation probe reads a plain int field of the mutable graph — OCaml
   guarantees the read cannot tear, only lag, and a lagging read merely
   delays republication to the next request (results stay internally
   consistent: they come from the complete previous snapshot). The rebuild
   itself runs under [publish], because the engine (caches, re-freeze, reach
   build) is not safe to touch concurrently; the double-check inside the
   lock keeps a stampede of stale readers down to one rebuild. *)
let current t =
  let snap = Atomic.get t.snap in
  if Graph.generation (Query.engine_graph t.eng) = snap.s_gen then snap
  else begin
    Mutex.lock t.publish;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.publish)
      (fun () ->
        let snap = Atomic.get t.snap in
        if Graph.generation (Query.engine_graph t.eng) = snap.s_gen then snap
        else begin
          Hierarchy.warm (Query.engine_hierarchy t.eng);
          let s = take_snapshot t.eng in
          Atomic.set t.snap s;
          s
        end)
  end

(* ---------- response payloads ---------- *)

let result_json i (r : Query.result) =
  Proto.Obj
    [
      ("rank", Proto.Int (i + 1));
      ("jungloid", Proto.Str (Jungloid.to_string r.Query.jungloid));
      ("code", Proto.Str r.Query.code);
    ]

let results_json rs =
  Proto.Arr (List.mapi result_json rs)

let cluster_json i (c : Query.cluster) =
  Proto.Obj
    [
      ("rank", Proto.Int (i + 1));
      ("members", Proto.Int c.Query.members);
      ("type_path", Proto.Str c.Query.type_path);
      ("representative", result_json i c.Query.representative);
    ]

let suggestion_json i (s : Prospector.Assist.suggestion) =
  Proto.Obj
    [
      ("rank", Proto.Int (i + 1));
      ("title", Proto.Str s.Prospector.Assist.title);
      ("code", Proto.Str s.Prospector.Assist.code);
      ( "uses_var",
        match s.Prospector.Assist.uses_var with
        | Some v -> Proto.Str v
        | None -> Proto.Null );
    ]

let diagnostic_json (d : Analysis.Diagnostic.t) =
  let where =
    match d.Analysis.Diagnostic.where with
    | Analysis.Diagnostic.Source l ->
        [
          ("file", Proto.Str l.Minijava.Tast.file);
          ("line", Proto.Int l.Minijava.Tast.line);
          ("col", Proto.Int l.Minijava.Tast.col);
        ]
    | Analysis.Diagnostic.Subject s -> [ ("subject", Proto.Str s) ]
  in
  Proto.Obj
    ([
       ( "severity",
         Proto.Str (Analysis.Diagnostic.severity_string d.Analysis.Diagnostic.severity)
       );
       ("code", Proto.Str d.Analysis.Diagnostic.code);
     ]
    @ where
    @ [ ("message", Proto.Str d.Analysis.Diagnostic.message) ])

let cache_json stats =
  Proto.Obj
    [
      ("entries", Proto.Int stats.Prospector.Qcache.s_entries);
      ("capacity", Proto.Int stats.Prospector.Qcache.s_capacity);
      ("hits", Proto.Int stats.Prospector.Qcache.s_hits);
      ("misses", Proto.Int stats.Prospector.Qcache.s_misses);
      ("hit_rate", Proto.Float (Prospector.Qcache.hit_rate stats));
      ("evictions", Proto.Int stats.Prospector.Qcache.s_evictions);
      ("invalidations", Proto.Int stats.Prospector.Qcache.s_invalidations);
    ]

(* ---------- snapshot reads ---------- *)

(* Run a read on the snapshot, memoized in the worker's cache when it has
   one. Without a [local] (direct library callers, tests) the read simply
   computes — still lock-free, just uncached. *)
let memo local key compute =
  match local with
  | None -> compute ()
  | Some l -> Qcache.find_or_add l.lcache key compute

let query_results t local snap ~settings q =
  let compute () =
    let rs, info =
      (* The engine froze this snapshot with its own usage model, so the
         model passed here matches the snapshot's baked weighted costs. *)
      Query.run_info ~settings ?reach:snap.s_reach ~frozen:snap.s_frozen
        ?edge_cost:(Query.engine_edge_cost t.eng)
        ?protocol_check:(Query.engine_protocol_check t.eng)
        ~graph:(Query.engine_graph t.eng)
        ~hierarchy:(Query.engine_hierarchy t.eng)
        q
    in
    if info.Query.truncated then Atomic.incr t.truncated_queries;
    Vresults (rs, info.Query.truncated)
  in
  let key =
    Lquery { tin = q.Query.tin; tout = q.Query.tout; settings; gen = snap.s_gen }
  in
  match memo local key compute with
  | Vresults (rs, truncated) -> (rs, truncated)
  | _ -> assert false

let assist_suggestions t local snap ~settings (ctx : Prospector.Assist.context) =
  let compute () =
    Vsuggest
      (Prospector.Assist.suggest ~settings ~frozen:snap.s_frozen ?reach:snap.s_reach
         ?edge_cost:(Query.engine_edge_cost t.eng)
         ?protocol_check:(Query.engine_protocol_check t.eng)
         ~graph:(Query.engine_graph t.eng)
         ~hierarchy:(Query.engine_hierarchy t.eng)
         ctx)
  in
  let key =
    Lassist
      {
        vars = ctx.Prospector.Assist.vars;
        tout = ctx.Prospector.Assist.expected;
        settings;
        gen = snap.s_gen;
      }
  in
  match memo local key compute with Vsuggest ss -> ss | _ -> assert false

let lint_diagnostics t local snap q =
  let hierarchy = Query.engine_hierarchy t.eng in
  let vet = match t.vet with Some v -> v | None -> fun _ -> [] in
  let compute () =
    Vlint
      (fst (query_results t local snap ~settings:t.base_settings q)
      |> List.concat_map (fun (r : Query.result) ->
             Analysis.Verify.check hierarchy r.Query.jungloid
             @ Analysis.Gencheck.check hierarchy r.Query.jungloid
             @ vet r.Query.jungloid)
      |> List.sort_uniq Analysis.Diagnostic.compare)
  in
  let key =
    Llint
      {
        tin = q.Query.tin;
        tout = q.Query.tout;
        settings = t.base_settings;
        gen = snap.s_gen;
      }
  in
  match memo local key compute with Vlint ds -> ds | _ -> assert false

(* Engine counters plus every worker cache's counters. Foreign caches may be
   mid-mutation on other domains while we read; the counters are plain ints
   (stale at worst, never torn), fine for monitoring output. *)
let cache_stats t =
  Mutex.lock t.locals_lock;
  let ls = !(t.locals) in
  Mutex.unlock t.locals_lock;
  let engine_stats =
    Mutex.lock t.publish;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.publish)
      (fun () -> Query.engine_stats t.eng)
  in
  List.fold_left
    (fun acc l -> Qcache.merge_stats acc (Qcache.stats l.lcache))
    engine_stats ls

(* ---------- dispatch ---------- *)

let op_name = function
  | Proto.Query _ -> "query"
  | Proto.Assist _ -> "assist"
  | Proto.Batch _ -> "batch"
  | Proto.Lint _ -> "lint"
  | Proto.Stats -> "stats"
  | Proto.Health -> "health"
  | Proto.Shutdown -> "shutdown"

let settings_for t ~max_results ~slack ~strategy ~ranking ~protocol =
  let s = t.base_settings in
  {
    s with
    Query.max_results = Option.value max_results ~default:s.Query.max_results;
    slack = Option.value slack ~default:s.Query.slack;
    strategy = Option.value strategy ~default:s.Query.strategy;
    ranking = Option.value ranking ~default:s.Query.ranking;
    protocol = Option.value protocol ~default:s.Query.protocol;
  }

(* An unknown strategy, ranking or protocol string is the requester's
   mistake, answered with [Bad_request] and the accepted spellings, before
   any engine work. *)
let parse_strategy = function
  | None -> Ok None
  | Some s -> Result.map Option.some (Query.strategy_of_string s)

let parse_ranking = function
  | None -> Ok None
  | Some s -> Result.map Option.some (Query.ranking_of_string s)

let parse_protocol = function
  | None -> Ok None
  | Some s -> Result.map Option.some (Query.protocol_of_string s)

(* Validate the optional spellings, reporting the first offender. *)
let parse_mode ~strategy ~ranking ~protocol =
  match parse_strategy strategy with
  | Error _ as e -> e
  | Ok strategy -> (
      match parse_ranking ranking with
      | Error _ as e -> e
      | Ok ranking -> (
          match parse_protocol protocol with
          | Error _ as e -> e
          | Ok protocol -> Ok (strategy, ranking, protocol)))

let dispatch ?local t ~id req =
  match req with
  | Proto.Query
      { tin; tout; max_results; slack; strategy; ranking; protocol; cluster }
    -> (
      match parse_mode ~strategy ~ranking ~protocol with
      | Error msg -> Proto.error_response ~id Proto.Bad_request msg
      | Ok (strategy, ranking, protocol) ->
          let settings =
            settings_for t ~max_results ~slack ~strategy ~ranking ~protocol
          in
          let q = Query.query tin tout in
          let rs, truncated = query_results t local (current t) ~settings q in
          let payload =
            if cluster then
              let cs = Query.cluster rs in
              [
                ("count", Proto.Int (List.length cs));
                ("clusters", Proto.Arr (List.mapi cluster_json cs));
                ("truncated", Proto.Bool truncated);
              ]
            else
              [
                ("count", Proto.Int (List.length rs));
                ("results", results_json rs);
                ("truncated", Proto.Bool truncated);
              ]
          in
          Proto.ok_response ~id ~op:"query" payload)
  | Proto.Assist { tout; vars; max_results; slack; strategy; ranking; protocol }
    -> (
      match parse_mode ~strategy ~ranking ~protocol with
      | Error msg -> Proto.error_response ~id Proto.Bad_request msg
      | Ok (strategy, ranking, protocol) ->
      let settings =
        settings_for t ~max_results ~slack ~strategy ~ranking ~protocol
      in
      let ctx =
        {
          Prospector.Assist.vars =
            List.map (fun (name, ty) -> (name, Jtype.ref_of_string ty)) vars;
          expected = Jtype.ref_of_string tout;
        }
      in
      let suggestions = assist_suggestions t local (current t) ~settings ctx in
      Proto.ok_response ~id ~op:"assist"
        [
          ("count", Proto.Int (List.length suggestions));
          ("suggestions", Proto.Arr (List.mapi suggestion_json suggestions));
        ])
  | Proto.Batch { pairs; max_results; slack; strategy; ranking; protocol } -> (
      match parse_mode ~strategy ~ranking ~protocol with
      | Error msg -> Proto.error_response ~id Proto.Bad_request msg
      | Ok (strategy, ranking, protocol) ->
      let settings =
        settings_for t ~max_results ~slack ~strategy ~ranking ~protocol
      in
      let qs = List.map (fun (tin, tout) -> Query.query tin tout) pairs in
      (* One snapshot for the whole batch: every answer describes the same
         graph generation even if a republication lands mid-batch.
         Cross-request parallelism comes from the worker domains; fanning a
         single request out as well would oversubscribe them. *)
      let snap = current t in
      let answers = List.map (fun q -> (q, query_results t local snap ~settings q)) qs in
      Proto.ok_response ~id ~op:"batch"
        [
          ( "answers",
            Proto.Arr
              (List.map
                 (fun ((q : Query.t), (rs, truncated)) ->
                   Proto.Obj
                     [
                       ("tin", Proto.Str (Jtype.to_string q.Query.tin));
                       ("tout", Proto.Str (Jtype.to_string q.Query.tout));
                       ("count", Proto.Int (List.length rs));
                       ("results", results_json rs);
                       ("truncated", Proto.Bool truncated);
                     ])
                 answers) );
        ])
  | Proto.Lint { tin; tout } ->
      let q = Query.query tin tout in
      let ds = lint_diagnostics t local (current t) q in
      Proto.ok_response ~id ~op:"lint"
        [
          ("diagnostics", Proto.Arr (List.map diagnostic_json ds));
          ("errors", Proto.Int (Analysis.Diagnostic.count Analysis.Diagnostic.Error ds));
          ( "warnings",
            Proto.Int (Analysis.Diagnostic.count Analysis.Diagnostic.Warning ds) );
        ]
  | Proto.Stats ->
      let snap = current t in
      let graph_stats = Prospector.Stats.of_frozen snap.s_frozen in
      Proto.ok_response ~id ~op:"stats"
        [
          ("uptime_s", Proto.Float (Metrics.uptime_s t.mets));
          ("requests", Proto.Int (Metrics.total_requests t.mets));
          ("truncated_queries", Proto.Int (Atomic.get t.truncated_queries));
          ( "graph",
            Proto.Obj
              [
                ("nodes", Proto.Int graph_stats.Prospector.Stats.nodes);
                ("edges", Proto.Int graph_stats.Prospector.Stats.edges);
                ("generation", Proto.Int snap.s_gen);
              ] );
          ("cache", cache_json (cache_stats t));
          ("ops", Metrics.ops_json t.mets);
        ]
  | Proto.Health ->
      Proto.ok_response ~id ~op:"health"
        [
          ("status", Proto.Str "ok");
          ("uptime_s", Proto.Float (Metrics.uptime_s t.mets));
        ]
  | Proto.Shutdown ->
      request_shutdown t;
      Proto.ok_response ~id ~op:"shutdown" [ ("status", Proto.Str "draining") ]

let deadline_exceeded t elapsed =
  match t.deadline_s with Some d -> elapsed > d | None -> false

let handle ?local t ({ Proto.id; req } : Proto.envelope) =
  let t0 = Unix.gettimeofday () in
  let response =
    match dispatch ?local t ~id req with
    | resp ->
        let elapsed = Unix.gettimeofday () -. t0 in
        (* Cooperative deadline: never serve a result that took longer than
           the deadline (see the mli for what this does and does not bound). *)
        if deadline_exceeded t elapsed then
          Proto.error_response ~id Proto.Timeout
            (Printf.sprintf "request exceeded the %.3f s deadline"
               (Option.get t.deadline_s))
        else resp
    | exception exn ->
        Proto.error_response ~id Proto.Internal (Printexc.to_string exn)
  in
  let ok = match Proto.member "ok" response with Some (Proto.Bool b) -> b | _ -> false in
  Metrics.record t.mets ~op:(op_name req) ~ok (Unix.gettimeofday () -. t0);
  response

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let handle_line ?local t line =
  let response =
    match Proto.parse line with
    | Error msg ->
        Metrics.record t.mets ~op:"invalid" ~ok:false 0.0;
        Proto.error_response ~id:Proto.Null Proto.Bad_request
          ("malformed request: " ^ msg)
    | Ok j -> (
        let id = Option.value (Proto.member "id" j) ~default:Proto.Null in
        match Proto.request_of_json j with
        | Error msg ->
            Metrics.record t.mets ~op:"invalid" ~ok:false 0.0;
            let code =
              if starts_with ~prefix:"unknown op" msg then Proto.Unknown_op
              else Proto.Bad_request
            in
            Proto.error_response ~id code msg
        | Ok envelope -> handle ?local t envelope)
  in
  Proto.to_string response
