module Query = Prospector.Query
module Jungloid = Prospector.Jungloid
module Jtype = Javamodel.Jtype

type t = {
  eng : Query.engine;
  lock : Mutex.t;  (* guards every engine touch; see the mli *)
  mets : Metrics.t;
  base_settings : Query.settings;
  deadline_s : float option;
  stop : bool Atomic.t;
}

let create ?(settings = Query.default_settings) ?deadline_s ~engine () =
  {
    eng = engine;
    lock = Mutex.create ();
    mets = Metrics.create ();
    base_settings = settings;
    deadline_s;
    stop = Atomic.make false;
  }

let engine t = t.eng

let metrics t = t.mets

let shutdown_requested t = Atomic.get t.stop

let request_shutdown t = Atomic.set t.stop true

let with_engine t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ---------- response payloads ---------- *)

let result_json i (r : Query.result) =
  Proto.Obj
    [
      ("rank", Proto.Int (i + 1));
      ("jungloid", Proto.Str (Jungloid.to_string r.Query.jungloid));
      ("code", Proto.Str r.Query.code);
    ]

let results_json rs =
  Proto.Arr (List.mapi result_json rs)

let cluster_json i (c : Query.cluster) =
  Proto.Obj
    [
      ("rank", Proto.Int (i + 1));
      ("members", Proto.Int c.Query.members);
      ("type_path", Proto.Str c.Query.type_path);
      ("representative", result_json i c.Query.representative);
    ]

let suggestion_json i (s : Prospector.Assist.suggestion) =
  Proto.Obj
    [
      ("rank", Proto.Int (i + 1));
      ("title", Proto.Str s.Prospector.Assist.title);
      ("code", Proto.Str s.Prospector.Assist.code);
      ( "uses_var",
        match s.Prospector.Assist.uses_var with
        | Some v -> Proto.Str v
        | None -> Proto.Null );
    ]

let diagnostic_json (d : Analysis.Diagnostic.t) =
  let where =
    match d.Analysis.Diagnostic.where with
    | Analysis.Diagnostic.Source l ->
        [
          ("file", Proto.Str l.Minijava.Tast.file);
          ("line", Proto.Int l.Minijava.Tast.line);
          ("col", Proto.Int l.Minijava.Tast.col);
        ]
    | Analysis.Diagnostic.Subject s -> [ ("subject", Proto.Str s) ]
  in
  Proto.Obj
    ([
       ( "severity",
         Proto.Str (Analysis.Diagnostic.severity_string d.Analysis.Diagnostic.severity)
       );
       ("code", Proto.Str d.Analysis.Diagnostic.code);
     ]
    @ where
    @ [ ("message", Proto.Str d.Analysis.Diagnostic.message) ])

let cache_json stats =
  Proto.Obj
    [
      ("entries", Proto.Int stats.Prospector.Qcache.s_entries);
      ("capacity", Proto.Int stats.Prospector.Qcache.s_capacity);
      ("hits", Proto.Int stats.Prospector.Qcache.s_hits);
      ("misses", Proto.Int stats.Prospector.Qcache.s_misses);
      ("hit_rate", Proto.Float (Prospector.Qcache.hit_rate stats));
      ("evictions", Proto.Int stats.Prospector.Qcache.s_evictions);
      ("invalidations", Proto.Int stats.Prospector.Qcache.s_invalidations);
    ]

(* ---------- dispatch ---------- *)

let op_name = function
  | Proto.Query _ -> "query"
  | Proto.Assist _ -> "assist"
  | Proto.Batch _ -> "batch"
  | Proto.Lint _ -> "lint"
  | Proto.Stats -> "stats"
  | Proto.Health -> "health"
  | Proto.Shutdown -> "shutdown"

let settings_for t ~max_results ~slack =
  let s = t.base_settings in
  {
    s with
    Query.max_results = Option.value max_results ~default:s.Query.max_results;
    slack = Option.value slack ~default:s.Query.slack;
  }

let dispatch t ~id req =
  match req with
  | Proto.Query { tin; tout; max_results; slack; cluster } ->
      let settings = settings_for t ~max_results ~slack in
      let q = Query.query tin tout in
      let rs = with_engine t (fun () -> Query.run_cached ~settings t.eng q) in
      let payload =
        if cluster then
          let cs = Query.cluster rs in
          [
            ("count", Proto.Int (List.length cs));
            ("clusters", Proto.Arr (List.mapi cluster_json cs));
          ]
        else [ ("count", Proto.Int (List.length rs)); ("results", results_json rs) ]
      in
      Proto.ok_response ~id ~op:"query" payload
  | Proto.Assist { tout; vars; max_results; slack } ->
      let settings = settings_for t ~max_results ~slack in
      let ctx =
        {
          Prospector.Assist.vars =
            List.map (fun (name, ty) -> (name, Jtype.ref_of_string ty)) vars;
          expected = Jtype.ref_of_string tout;
        }
      in
      let suggestions =
        with_engine t (fun () ->
            Prospector.Assist.suggest ~settings ~engine:t.eng
              ~graph:(Query.engine_graph t.eng)
              ~hierarchy:(Query.engine_hierarchy t.eng)
              ctx)
      in
      Proto.ok_response ~id ~op:"assist"
        [
          ("count", Proto.Int (List.length suggestions));
          ("suggestions", Proto.Arr (List.mapi suggestion_json suggestions));
        ]
  | Proto.Batch { pairs; max_results; slack } ->
      let settings = settings_for t ~max_results ~slack in
      let qs = List.map (fun (tin, tout) -> Query.query tin tout) pairs in
      let answers = with_engine t (fun () -> Query.run_batch ~settings t.eng qs) in
      Proto.ok_response ~id ~op:"batch"
        [
          ( "answers",
            Proto.Arr
              (List.map
                 (fun ((q : Query.t), rs) ->
                   Proto.Obj
                     [
                       ("tin", Proto.Str (Jtype.to_string q.Query.tin));
                       ("tout", Proto.Str (Jtype.to_string q.Query.tout));
                       ("count", Proto.Int (List.length rs));
                       ("results", results_json rs);
                     ])
                 answers) );
        ]
  | Proto.Lint { tin; tout } ->
      let q = Query.query tin tout in
      let hierarchy = Query.engine_hierarchy t.eng in
      let ds =
        with_engine t (fun () ->
            Query.run_cached ~settings:t.base_settings t.eng q
            |> List.concat_map (fun (r : Query.result) ->
                   Analysis.Verify.check hierarchy r.Query.jungloid
                   @ Analysis.Gencheck.check hierarchy r.Query.jungloid))
        |> List.sort_uniq Analysis.Diagnostic.compare
      in
      Proto.ok_response ~id ~op:"lint"
        [
          ("diagnostics", Proto.Arr (List.map diagnostic_json ds));
          ("errors", Proto.Int (Analysis.Diagnostic.count Analysis.Diagnostic.Error ds));
          ( "warnings",
            Proto.Int (Analysis.Diagnostic.count Analysis.Diagnostic.Warning ds) );
        ]
  | Proto.Stats ->
      let graph_stats, cache_stats =
        with_engine t (fun () ->
            ( Prospector.Stats.of_graph (Query.engine_graph t.eng),
              Query.engine_stats t.eng ))
      in
      Proto.ok_response ~id ~op:"stats"
        [
          ("uptime_s", Proto.Float (Metrics.uptime_s t.mets));
          ("requests", Proto.Int (Metrics.total_requests t.mets));
          ( "graph",
            Proto.Obj
              [
                ("nodes", Proto.Int graph_stats.Prospector.Stats.nodes);
                ("edges", Proto.Int graph_stats.Prospector.Stats.edges);
                ( "generation",
                  Proto.Int (Prospector.Graph.generation (Query.engine_graph t.eng)) );
              ] );
          ("cache", cache_json cache_stats);
          ("ops", Metrics.ops_json t.mets);
        ]
  | Proto.Health ->
      Proto.ok_response ~id ~op:"health"
        [
          ("status", Proto.Str "ok");
          ("uptime_s", Proto.Float (Metrics.uptime_s t.mets));
        ]
  | Proto.Shutdown ->
      request_shutdown t;
      Proto.ok_response ~id ~op:"shutdown" [ ("status", Proto.Str "draining") ]

let deadline_exceeded t elapsed =
  match t.deadline_s with Some d -> elapsed > d | None -> false

let handle t ({ Proto.id; req } : Proto.envelope) =
  let t0 = Unix.gettimeofday () in
  let response =
    match dispatch t ~id req with
    | resp ->
        let elapsed = Unix.gettimeofday () -. t0 in
        (* Cooperative deadline: never serve a result that took longer than
           the deadline (see the mli for what this does and does not bound). *)
        if deadline_exceeded t elapsed then
          Proto.error_response ~id Proto.Timeout
            (Printf.sprintf "request exceeded the %.3f s deadline"
               (Option.get t.deadline_s))
        else resp
    | exception exn ->
        Proto.error_response ~id Proto.Internal (Printexc.to_string exn)
  in
  let ok = match Proto.member "ok" response with Some (Proto.Bool b) -> b | _ -> false in
  Metrics.record t.mets ~op:(op_name req) ~ok (Unix.gettimeofday () -. t0);
  response

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let handle_line t line =
  let response =
    match Proto.parse line with
    | Error msg ->
        Metrics.record t.mets ~op:"invalid" ~ok:false 0.0;
        Proto.error_response ~id:Proto.Null Proto.Bad_request
          ("malformed request: " ^ msg)
    | Ok j -> (
        let id = Option.value (Proto.member "id" j) ~default:Proto.Null in
        match Proto.request_of_json j with
        | Error msg ->
            Metrics.record t.mets ~op:"invalid" ~ok:false 0.0;
            let code =
              if starts_with ~prefix:"unknown op" msg then Proto.Unknown_op
              else Proto.Bad_request
            in
            Proto.error_response ~id code msg
        | Ok envelope -> handle t envelope)
  in
  Proto.to_string response
