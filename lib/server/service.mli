(** The daemon's brain, separated from its sockets: a {!Proto} request in, a
    {!Proto} response out, against one shared query engine.

    Both transports ({!Server}'s TCP worker pool and its [--stdio] loop) and
    the tests drive this module; the concurrency test calls {!handle_line}
    from many threads directly, no sockets involved.

    Locking model: one mutex serializes every engine touch (graph, reach
    index, LRU caches — none of them are thread-safe, and the LRU mutates
    on {e reads}). Request parsing, response rendering, and metrics run
    outside the lock, so workers only contend for the actual search. *)

type t

val create :
  ?settings:Prospector.Query.settings ->
  ?deadline_s:float ->
  engine:Prospector.Query.engine ->
  unit ->
  t
(** [settings] is the base for every request ([max_results]/[slack] fields
    override per request). [deadline_s] is the per-request deadline: a
    request whose execution exceeds it gets a [timeout] error reply instead
    of its result. Enforcement is cooperative — the elapsed time is checked
    against the deadline around the engine call, it does not interrupt a
    running search (OCaml offers no safe preemption); the bound it enforces
    is "no result computed slower than the deadline is ever served". *)

val engine : t -> Prospector.Query.engine

val metrics : t -> Metrics.t

val shutdown_requested : t -> bool
(** Set once a [shutdown] request has been answered; transports poll it and
    drain. *)

val request_shutdown : t -> unit
(** What the [shutdown] op calls; exposed so a signal handler can trigger
    the same drain. *)

val handle : t -> Proto.envelope -> Proto.json
(** Dispatch one parsed request: takes the engine lock for query/assist/
    batch/lint, answers stats/health from counters, flips the shutdown flag
    for [shutdown]. Engine exceptions become [internal] error replies —
    a poisoned query must not take the daemon down. Records one metrics
    sample per call. *)

val handle_line : t -> string -> string
(** The full wire cycle: parse one request line (parse failures become
    [bad_request] replies, never exceptions), {!handle}, render the
    response as one line (no trailing newline). *)
