(** The daemon's brain, separated from its sockets: a {!Proto} request in, a
    {!Proto} response out, against one shared query engine.

    Both transports ({!Server}'s TCP worker pool and its [--stdio] loop) and
    the tests drive this module; the concurrency test calls {!handle_line}
    from many threads directly, no sockets involved.

    Concurrency model (snapshot publication, no read lock): the service
    keeps an {!Stdlib.Atomic} pointer to an immutable {e snapshot} — the
    engine's CSR-frozen graph plus its reachability index, stamped with the
    graph generation. Every read op (query, assist, batch, lint, stats)
    loads the pointer once and runs entirely on that snapshot, which no one
    ever mutates — so reads take no lock and scale across worker domains.
    When the underlying graph's generation moves, the next request rebuilds
    the engine state and publishes a fresh snapshot under a private mutex
    (double-checked, so a stampede of stale readers triggers one rebuild);
    in-flight readers simply finish on the previous snapshot. Result
    caching is per worker ({!local}) because an LRU mutates on reads; a
    worker that brings no cache still gets correct, lock-free, merely
    uncached answers. *)

type t

type local
(** A per-worker result cache (one LRU over the query/assist/lint shapes).
    Not thread-safe — each transport worker owns exactly one and passes it
    to {!handle_line}. All caches created by {!local} are registered with
    the service so the stats op can report their combined counters. *)

type remodel = {
  rm_edge_cost : (Prospector.Elem.t -> int) option;
  rm_protocol_check : (Prospector.Jungloid.t -> string list) option;
  rm_vet : (Prospector.Jungloid.t -> Analysis.Diagnostic.t list) option;
}
(** What a corpus delta re-derives — the mined models the engine consumes
    and the vetting pass lint appends. Returned by the [?remodel] callback
    of {!create}; a [None] field leaves the server's current model in
    place. *)

val create :
  ?settings:Prospector.Query.settings ->
  ?vet:(Prospector.Jungloid.t -> Analysis.Diagnostic.t list) ->
  ?graph_config:Prospector.Sig_graph.config ->
  ?remodel:(Javamodel.Hierarchy.t -> string -> (remodel, string) result) ->
  ?rebuild:(Javamodel.Hierarchy.t -> Prospector.Graph.frozen) ->
  ?reload_hook:(Prospector.Graph.frozen -> Prospector.Reach.t option -> unit) ->
  ?deadline_s:float ->
  ?session_ttl_s:float ->
  engine:Prospector.Query.engine ->
  unit ->
  t
(** [settings] is the base for every request ([max_results]/[slack] fields
    override per request). [vet] is the protocol vetting pass the lint op
    appends to its per-result diagnostics (typically
    [Analysis.Protolint.vet] over a mined model) — injected here because
    this library must not depend on the mining layer that learns the model.

    The next four parameters serve the [reload] op (all deltas apply under
    the publish mutex, off the lock-free read path, and land as one atomic
    snapshot swap). [graph_config] must be the {!Prospector.Sig_graph}
    config the engine's graph was built with — {!Prospector.Delta.apply}
    rebuilds under it when a delta cannot be spliced. [remodel] maps the
    request's corpus text to re-derived mined models against the patched
    hierarchy (absent = corpus deltas are rejected with [bad_request]).
    [rebuild] is the cold {e enriched} build the server would do at
    startup, from a patched hierarchy; when present it replaces [Delta]'s
    signature-only rebuild on the fallback path, so mined (spliced) nodes
    and edges survive a reload — and every corpus delta takes it, since
    new examples cannot be row-spliced. [reload_hook] runs after each
    successful reload with the newly published snapshot (the [--save-graph]
    re-persistence point); it must not raise.

    [deadline_s] is the per-request deadline: a
    request whose execution exceeds it gets a [timeout] error reply instead
    of its result. Enforcement is cooperative — the elapsed time is checked
    against the deadline around the engine call, it does not interrupt a
    running search (OCaml offers no safe preemption); the bound it enforces
    is "no result computed slower than the deadline is ever served".

    [session_ttl_s] bounds how long an idle refine session survives: a
    session untouched for that many seconds is evicted, and later ops on
    its id get a typed [session_expired] reply (so clients restart the
    session rather than debug an [internal]). Omitted = sessions only die
    on [refine_stop] or drain. Refine sessions are the one piece of
    cross-request mutable state; they live behind their own mutex and
    never touch the lock-free snapshot read path.

    Creation eagerly warms the hierarchy's lazy memos, freezes the graph,
    and builds the reach index, so the first snapshot is published before
    any worker starts. *)

val engine : t -> Prospector.Query.engine

val metrics : t -> Metrics.t

val local : ?capacity:int -> t -> local
(** A fresh worker cache (default capacity 256 entries), registered for
    stats reporting. Call once per worker thread/domain. *)

val shutdown_requested : t -> bool
(** Set once a [shutdown] request has been answered; transports poll it and
    drain. *)

val request_shutdown : t -> unit
(** What the [shutdown] op calls; exposed so a signal handler can trigger
    the same drain. Also clears the refine-session table: in-flight
    session ids answer [shutting_down] from then on. *)

val live_sessions : t -> int
(** Current refine-session count (the [stats] reply's ["sessions"] field
    and the ["refine_sessions"] metrics gauge). *)

val handle : ?local:local -> t -> Proto.envelope -> Proto.json
(** Dispatch one parsed request on the current snapshot (republishing it
    first if the graph moved): lock-free for every read op, memoized in
    [?local] when given. Engine exceptions become [internal] error replies —
    a poisoned query must not take the daemon down. Records one metrics
    sample per call. *)

val handle_line : ?local:local -> t -> string -> string
(** The full wire cycle: parse one request line (parse failures become
    [bad_request] replies, never exceptions), {!handle}, render the
    response as one line (no trailing newline). *)
