let log_src = Logs.Src.create "prospector.server" ~doc:"jungloid query daemon"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  host : string;
  port : int;
  workers : int;
  max_request_bytes : int;
  max_connections : int;
  idle_poll_s : float;
  port_file : string option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    workers = 4;
    max_request_bytes = 1 lsl 20;
    max_connections = 64;
    idle_poll_s = 0.25;
    port_file = None;
  }

type t = {
  config : config;
  service : Service.t;
  mutable listen_fd : Unix.file_descr option;
  mutable bound_port : int;
  queue : Unix.file_descr Queue.t;
  qmutex : Mutex.t;
  qcond : Condition.t;
  stop : bool Atomic.t;
  active : int Atomic.t;  (* connections queued or in flight *)
  mutable threads : Thread.t list;
  mutable domains : unit Domain.t list;
}

let create ?(config = default_config) service =
  {
    config;
    service;
    listen_fd = None;
    bound_port = 0;
    queue = Queue.create ();
    qmutex = Mutex.create ();
    qcond = Condition.create ();
    stop = Atomic.make false;
    active = Atomic.make 0;
    threads = [];
    domains = [];
  }

let port t = t.bound_port

let stopping t = Atomic.get t.stop || Service.shutdown_requested t.service

let shutdown t =
  if not (Atomic.get t.stop) then begin
    Atomic.set t.stop true;
    Service.request_shutdown t.service;
    Mutex.lock t.qmutex;
    Condition.broadcast t.qcond;
    Mutex.unlock t.qmutex
  end

(* ---------- I/O helpers ---------- *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write fd b !written (n - !written)
  done

let send_line fd line = write_all fd (line ^ "\n")

(* A buffered line reader over a raw fd. Reads wake every [idle_poll_s]
   (receive timeout) so a parked connection notices a drain. Returns
   [`Line l], [`Too_long] (cap exceeded; the rest of the line has been
   discarded), [`Eof], or [`Stopping]. *)
type reader = { fd : Unix.file_descr; buf : Buffer.t; chunk : Bytes.t }

let reader fd = { fd; buf = Buffer.create 512; chunk = Bytes.create 4096 }

let rec next_line t r ~discarding =
  let pending = Buffer.contents r.buf in
  match String.index_opt pending '\n' with
  | Some i ->
      let line = String.sub pending 0 i in
      Buffer.clear r.buf;
      Buffer.add_substring r.buf pending (i + 1) (String.length pending - i - 1);
      if discarding then `Too_long
      else if String.length line > t.config.max_request_bytes then `Too_long
      else `Line line
  | None ->
      let discarding =
        if discarding then (Buffer.clear r.buf; true)
        else if Buffer.length r.buf > t.config.max_request_bytes then begin
          Buffer.clear r.buf;
          true
        end
        else false
      in
      (match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
      | 0 -> `Eof
      | n ->
          Buffer.add_subbytes r.buf r.chunk 0 n;
          next_line t r ~discarding
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          if stopping t then `Stopping else next_line t r ~discarding
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> next_line t r ~discarding)

(* ---------- connection serving ---------- *)

let serve_connection t local fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.idle_poll_s
   with Unix.Unix_error _ -> ());
  let r = reader fd in
  let rec loop () =
    match next_line t r ~discarding:false with
    | `Eof | `Stopping -> ()
    | `Too_long ->
        send_line fd
          (Proto.to_string
             (Proto.error_response ~id:Proto.Null Proto.Too_large
                (Printf.sprintf "request exceeds %d bytes"
                   t.config.max_request_bytes)));
        if not (stopping t) then loop ()
    | `Line line ->
        send_line fd (Service.handle_line ?local t.service line);
        (* a shutdown op answered above flips the service flag; fold the
           whole server into the drain *)
        if Service.shutdown_requested t.service then shutdown t;
        if not (stopping t) then loop ()
  in
  (try loop () with
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      () (* client went away mid-reply; their loss, not ours *)
  | Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ---------- workers ---------- *)

(* Each worker is a {e domain}: OCaml threads share one runtime lock, so
   thread workers only ever overlapped on I/O waits. With snapshot reads
   taking no lock (see {!Service}), domain workers execute searches truly
   concurrently. Each owns one result cache. The connection queue's
   mutex/condition pair works unchanged across domains. *)
let worker t () =
  let local = Service.local t.service in
  let rec loop () =
    Mutex.lock t.qmutex;
    while Queue.is_empty t.queue && not (stopping t) do
      Condition.wait t.qcond t.qmutex
    done;
    let job = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
    Mutex.unlock t.qmutex;
    match job with
    | Some fd ->
        Fun.protect
          ~finally:(fun () -> Atomic.decr t.active)
          (fun () -> serve_connection t (Some local) fd);
        loop ()
    | None -> if stopping t then () else loop ()
  in
  loop ()

let accept_loop t listen_fd () =
  let rec loop () =
    if stopping t then ()
    else begin
      (match Unix.select [ listen_fd ] [] [] t.config.idle_poll_s with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept listen_fd with
          | fd, _ ->
              if Atomic.get t.active >= t.config.max_connections then begin
                Log.warn (fun m ->
                    m "connection limit %d reached — refusing client"
                      t.config.max_connections);
                (try
                   send_line fd
                     (Proto.to_string
                        (Proto.error_response ~id:Proto.Null Proto.Busy
                           (Printf.sprintf "server at its %d-connection limit"
                              t.config.max_connections)))
                 with Unix.Unix_error _ -> ());
                try Unix.close fd with Unix.Unix_error _ -> ()
              end
              else begin
                Atomic.incr t.active;
                Mutex.lock t.qmutex;
                Queue.push fd t.queue;
                Condition.signal t.qcond;
                Mutex.unlock t.qmutex
              end
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) -> ());
      loop ()
    end
  in
  loop ();
  (* wake any workers parked on the condition so they can drain *)
  Mutex.lock t.qmutex;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qmutex

let write_port_file path port =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (string_of_int port ^ "\n");
  close_out oc;
  Sys.rename tmp path

let start t =
  (* a worker writing to a dead client must get EPIPE, not a process kill *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string t.config.host, t.config.port) in
  (try Unix.bind fd addr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen fd 64;
  t.bound_port <-
    (match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> t.config.port);
  t.listen_fd <- Some fd;
  Option.iter (fun path -> write_port_file path t.bound_port) t.config.port_file;
  Log.app (fun m ->
      m "listening on %s:%d (%d workers, max %d connections, max request %d bytes)"
        t.config.host t.bound_port t.config.workers t.config.max_connections
        t.config.max_request_bytes);
  let workers = List.init t.config.workers (fun _ -> Domain.spawn (worker t)) in
  let acceptor = Thread.create (accept_loop t fd) () in
  t.domains <- workers;
  t.threads <- [ acceptor ]

let wait t =
  List.iter Thread.join t.threads;
  t.threads <- [];
  List.iter Domain.join t.domains;
  t.domains <- [];
  (match t.listen_fd with
  | Some fd ->
      t.listen_fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  Option.iter
    (fun path -> try Sys.remove path with Sys_error _ -> ())
    t.config.port_file;
  Log.app (fun m -> m "drained after %d request(s)"
      (Metrics.total_requests (Service.metrics t.service)))

let run t =
  start t;
  wait t

(* ---------- stdio transport ---------- *)

let serve_stdio ?(max_request_bytes = default_config.max_request_bytes) service =
  let local = Service.local service in
  let rec loop () =
    match input_line stdin with
    | exception End_of_file -> ()
    | line ->
        let response =
          if String.length line > max_request_bytes then
            Proto.to_string
              (Proto.error_response ~id:Proto.Null Proto.Too_large
                 (Printf.sprintf "request exceeds %d bytes" max_request_bytes))
          else Service.handle_line ~local service line
        in
        print_string response;
        print_newline ();
        flush stdout;
        if not (Service.shutdown_requested service) then loop ()
  in
  loop ()
