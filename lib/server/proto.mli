(** The wire protocol of the prospector daemon: newline-delimited JSON.

    One request per line, one response line per request, in order. The JSON
    codec is hand-rolled on the same no-new-deps policy as
    {!Analysis.Diagnostic}'s rendering — the subset we implement is full
    RFC 8259 minus one liberty: strings are byte sequences (the encoder
    escapes control characters and passes bytes >= 0x80 through verbatim;
    the decoder expands [\uXXXX] to UTF-8), so any OCaml string round-trips
    losslessly.

    Request grammar (one object per line):
    {v
      {"op": "query",    "id"?: J, "tin": S, "tout": S,
       "max_results"?: I, "slack"?: I, "ranking"?: S, "protocol"?: S,
       "cluster"?: B}
      {"op": "assist",   "id"?: J, "tout": S,
       "vars"?: [{"name": S, "type": S}...], "max_results"?: I, "slack"?: I}
      {"op": "batch",    "id"?: J, "queries": [{"tin": S, "tout": S}...],
       "max_results"?: I, "slack"?: I}
      {"op": "lint",     "id"?: J, "tin": S, "tout": S}
      {"op": "refine_start",  "id"?: J, "tout": S,
       "tin"?: S | "vars"?: [{"name": S, "type": S}...],
       "max_results"?: I, "slack"?: I, "strategy"?: S, "ranking"?: S,
       "protocol"?: S}
      {"op": "refine_answer", "id"?: J, "session": S, "choice": I}
      {"op": "refine_status", "id"?: J, "session": S}
      {"op": "refine_stop",   "id"?: J, "session": S}
      {"op": "stats",    "id"?: J}
      {"op": "health",   "id"?: J}
      {"op": "shutdown", "id"?: J}
    v}
    [refine_start] opens a stateful disambiguation session over the
    query's (or assist context's) ranked candidates; the reply carries a
    session id for the follow-up ops. A [tin] makes it query-shaped, [vars]
    make it assist-shaped (passing both is a [bad_request]).
    Responses echo ["id"] verbatim and carry ["ok": true] plus op-specific
    payload, or ["ok": false] with an ["error": {"code", "message"}]
    object. *)

(** {1 JSON} *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string  (** raw bytes; see the codec note above *)
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

val to_string : json -> string
(** Compact (single-line, minimal whitespace) rendering. Floats print with
    the shortest decimal that round-trips; non-finite floats render as
    [null] (JSON has no spelling for them). *)

val of_string : string -> json
(** @raise Parse_error on malformed input, trailing garbage, or nesting
    deeper than {!max_depth}. *)

val parse : string -> (json, string) result
(** {!of_string} with the error as a value. *)

val max_depth : int
(** Nesting bound of the decoder (a hostile request must not be able to
    blow the stack): 128. *)

val member : string -> json -> json option
(** Field lookup in an [Obj]; [None] on other constructors. *)

(** {1 Typed requests} *)

type request =
  | Query of {
      tin : string;
      tout : string;
      max_results : int option;
      slack : int option;
      strategy : string option;
          (** ["best-first"] or ["exhaustive"]; absent = server default.
              Validated by {!Service} (not here) so the error reply can say
              which spellings exist. *)
      ranking : string option;
          (** ["paper"] or ["mined"]; absent = server default. Validated by
              {!Service}, like [strategy]. *)
      protocol : string option;
          (** ["off"], ["warn"] or ["filter"]; absent = server default.
              Validated by {!Service}, like [strategy]. *)
      cluster : bool;
    }
  | Assist of {
      tout : string;
      vars : (string * string) list;  (** (name, type) pairs *)
      max_results : int option;
      slack : int option;
      strategy : string option;
      ranking : string option;
      protocol : string option;
    }
  | Batch of {
      pairs : (string * string) list;  (** (tin, tout) pairs *)
      max_results : int option;
      slack : int option;
      strategy : string option;
      ranking : string option;
      protocol : string option;
    }
  | Lint of { tin : string; tout : string }
  | Refine_start of {
      tin : string option;  (** query-shaped when present *)
      tout : string;
      vars : (string * string) list;  (** assist-shaped when non-empty *)
      max_results : int option;
      slack : int option;
      strategy : string option;
      ranking : string option;
      protocol : string option;
    }
  | Refine_answer of {
      session : string;
      choice : int;  (** index into the pending question's choice list *)
    }
  | Refine_status of { session : string }
  | Refine_stop of { session : string }
  | Reload of {
      japi : string option;
          (** [.japi] source sent inline: every class in it is added if
              undeclared, replaced otherwise *)
      remove : string list;  (** fully qualified class names to drop *)
      corpus : string option;
          (** mini-Java source sent inline: examples mined from it are
              folded into the usage/protocol models *)
    }
      (** Apply a model delta to the running server. At least one field must
          be present; per-delta validation failures come back as a
          [bad_request] carrying an [errors] array of
          [{index, op, subject, reason}] objects. *)
  | Stats
  | Health
  | Shutdown

type envelope = { id : json; req : request }
(** [id] is echoed into the response untouched; [Null] when absent. *)

val request_of_json : json -> (envelope, string) result

val envelope_to_json : envelope -> json
(** The client-side inverse of {!request_of_json}:
    [request_of_json (envelope_to_json e) = Ok e]. *)

(** {1 Responses} *)

type error_code =
  | Bad_request  (** unparsable JSON or missing/ill-typed fields *)
  | Unknown_op
  | Too_large  (** request line over the server's byte limit *)
  | Busy  (** connection limit reached; retry later *)
  | Timeout  (** the per-request deadline elapsed *)
  | Session_expired
      (** the refine session id is unknown — evicted by TTL, stopped, or
          never issued. Distinct from [Bad_request] so clients can restart
          the session instead of fixing the request. *)
  | Shutting_down
  | Internal  (** engine raised; message carries the details *)

val error_code_string : error_code -> string

val ok_response : id:json -> op:string -> (string * json) list -> json
(** [{"id": id, "ok": true, "op": op, ...fields}]. *)

val error_response : id:json -> error_code -> string -> json
(** [{"id": id, "ok": false, "error": {"code", "message"}}]. *)
