(* Geometric latency buckets: bucket i holds samples in
   (2^(i-1) µs, 2^i µs]; the last bucket is a catch-all. *)
let n_buckets = 32

let bucket_of_seconds s =
  let us = s *. 1e6 in
  let rec go i bound =
    if i >= n_buckets - 1 || us <= bound then i else go (i + 1) (bound *. 2.0)
  in
  go 0 1.0

let bucket_upper_ms i =
  (* upper bound of bucket i, in milliseconds *)
  ldexp 1.0 i /. 1000.0

type per_op = {
  mutable count : int;
  mutable errors : int;
  mutable sum_s : float;
  mutable max_s : float;
  buckets : int array;
}

type t = {
  mutex : Mutex.t;
  table : (string, per_op) Hashtbl.t;
  gauge_table : (string, int) Hashtbl.t;
  started_at : float;
}

let create () =
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 8;
    gauge_table = Hashtbl.create 4;
    started_at = Unix.gettimeofday ();
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let get_op t op =
  match Hashtbl.find_opt t.table op with
  | Some p -> p
  | None ->
      let p =
        { count = 0; errors = 0; sum_s = 0.0; max_s = 0.0; buckets = Array.make n_buckets 0 }
      in
      Hashtbl.add t.table op p;
      p

let record t ~op ~ok seconds =
  with_lock t (fun () ->
      let p = get_op t op in
      p.count <- p.count + 1;
      if not ok then p.errors <- p.errors + 1;
      p.sum_s <- p.sum_s +. seconds;
      if seconds > p.max_s then p.max_s <- seconds;
      let b = bucket_of_seconds seconds in
      p.buckets.(b) <- p.buckets.(b) + 1)

type op_stats = {
  count : int;
  errors : int;
  mean_ms : float;
  max_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

(* The smallest bucket upper bound at or below which at least [q] of the
   samples fall. *)
let percentile (p : per_op) q =
  if p.count = 0 then 0.0
  else begin
    let need = int_of_float (ceil (q *. float_of_int p.count)) in
    let need = max 1 need in
    let rec go i acc =
      if i >= n_buckets then bucket_upper_ms (n_buckets - 1)
      else
        let acc = acc + p.buckets.(i) in
        if acc >= need then bucket_upper_ms i else go (i + 1) acc
    in
    go 0 0
  end

let stats_of (p : per_op) =
  {
    count = p.count;
    errors = p.errors;
    mean_ms = (if p.count = 0 then 0.0 else p.sum_s *. 1000.0 /. float_of_int p.count);
    max_ms = p.max_s *. 1000.0;
    p50_ms = percentile p 0.50;
    p95_ms = percentile p 0.95;
    p99_ms = percentile p 0.99;
  }

let set_gauge t name v =
  with_lock t (fun () -> Hashtbl.replace t.gauge_table name v)

let gauges t =
  with_lock t (fun () ->
      Hashtbl.fold (fun name v acc -> (name, v) :: acc) t.gauge_table []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let gauges_json t =
  Proto.Obj (List.map (fun (name, v) -> (name, Proto.Int v)) (gauges t))

let ops t =
  with_lock t (fun () ->
      Hashtbl.fold (fun op p acc -> (op, stats_of p) :: acc) t.table []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let total_requests t =
  with_lock t (fun () ->
      Hashtbl.fold (fun _ (p : per_op) acc -> acc + p.count) t.table 0)

let uptime_s t = Unix.gettimeofday () -. t.started_at

let ops_json t =
  Proto.Obj
    (List.map
       (fun (op, s) ->
         ( op,
           Proto.Obj
             [
               ("count", Proto.Int s.count);
               ("errors", Proto.Int s.errors);
               ("mean_ms", Proto.Float s.mean_ms);
               ("max_ms", Proto.Float s.max_ms);
               ("p50_ms", Proto.Float s.p50_ms);
               ("p95_ms", Proto.Float s.p95_ms);
               ("p99_ms", Proto.Float s.p99_ms);
             ] ))
       (ops t))

let render t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "metrics: %d request(s) over %.1f s uptime\n" (total_requests t)
       (uptime_s t));
  List.iter
    (fun (op, s) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  %-10s %6d req  %4d err  mean %8.3f ms  p50 %8.3f  p95 %8.3f  p99 %8.3f  max %8.3f\n"
           op s.count s.errors s.mean_ms s.p50_ms s.p95_ms s.p99_ms s.max_ms))
    (ops t);
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf (Printf.sprintf "  gauge %s = %d\n" name v))
    (gauges t);
  Buffer.contents buf
