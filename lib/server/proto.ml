type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let max_depth = 128

(* ---------- encoder ---------- *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* The shortest decimal that reads back as the same double ("%.15g" almost
   always; "%.17g" for the awkward ones). *)
let float_literal f =
  let s = Printf.sprintf "%.15g" f in
  let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
  (* "1." style output is not JSON; neither is a bare "inf". *)
  if
    String.contains s '.' || String.contains s 'e' || String.contains s 'E'
    || String.contains s 'n' (* nan/inf never reach here, see encode *)
  then s
  else s ^ ".0"

let rec encode buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_literal f)
      else Buffer.add_string buf "null"
  | Str s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ", ";
          encode buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_char buf '"';
          escape_into buf k;
          Buffer.add_string buf "\": ";
          encode buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  encode buf j;
  Buffer.contents buf

(* ---------- decoder ---------- *)

type cursor = { s : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "at byte %d: %s" c.pos msg))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    c.pos < String.length c.s
    && match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance c
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail c (Printf.sprintf "expected %C, found %C" ch x)
  | None -> fail c (Printf.sprintf "expected %C, found end of input" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let hex_digit c ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> fail c "bad hex digit in \\u escape"

let hex4 c =
  if c.pos + 4 > String.length c.s then fail c "truncated \\u escape";
  let v =
    (hex_digit c c.s.[c.pos] lsl 12)
    lor (hex_digit c c.s.[c.pos + 1] lsl 8)
    lor (hex_digit c c.s.[c.pos + 2] lsl 4)
    lor hex_digit c c.s.[c.pos + 3]
  in
  c.pos <- c.pos + 4;
  v

let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> fail c "truncated escape"
        | Some e ->
            advance c;
            (match e with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                let cp = hex4 c in
                if cp >= 0xD800 && cp <= 0xDBFF then begin
                  (* high surrogate: require the paired low one *)
                  if
                    c.pos + 2 <= String.length c.s
                    && c.s.[c.pos] = '\\'
                    && c.s.[c.pos + 1] = 'u'
                  then begin
                    c.pos <- c.pos + 2;
                    let lo = hex4 c in
                    if lo < 0xDC00 || lo > 0xDFFF then fail c "bad surrogate pair";
                    add_utf8 buf
                      (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
                  end
                  else fail c "lone high surrogate"
                end
                else if cp >= 0xDC00 && cp <= 0xDFFF then fail c "lone low surrogate"
                else add_utf8 buf cp
            | _ -> fail c (Printf.sprintf "bad escape \\%c" e));
            go ())
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  if peek c = Some '-' then advance c;
  let digits () =
    let d = ref 0 in
    while (match peek c with Some '0' .. '9' -> true | _ -> false) do
      advance c;
      incr d
    done;
    !d
  in
  if digits () = 0 then fail c "expected digits";
  if peek c = Some '.' then begin
    is_float := true;
    advance c;
    if digits () = 0 then fail c "expected digits after decimal point"
  end;
  (match peek c with
  | Some ('e' | 'E') ->
      is_float := true;
      advance c;
      (match peek c with Some ('+' | '-') -> advance c | _ -> ());
      if digits () = 0 then fail c "expected digits in exponent"
  | _ -> ());
  let text = String.sub c.s start (c.pos - start) in
  if !is_float then Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> Float (float_of_string text) (* magnitude beyond int range *)

let rec parse_value c depth =
  if depth > max_depth then fail c "nesting too deep";
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c (depth + 1) in
          fields := (k, v) :: !fields;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              members ()
          | Some '}' -> advance c
          | _ -> fail c "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        Arr []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value c (depth + 1) in
          items := v :: !items;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              elements ()
          | Some ']' -> advance c
          | _ -> fail c "expected ',' or ']'"
        in
        elements ();
        Arr (List.rev !items)
      end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected %C" ch)

let of_string s =
  let c = { s; pos = 0 } in
  let v = parse_value c 0 in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage after value";
  v

let parse s = match of_string s with v -> Ok v | exception Parse_error m -> Error m

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

(* ---------- typed requests ---------- *)

type request =
  | Query of {
      tin : string;
      tout : string;
      max_results : int option;
      slack : int option;
      strategy : string option;
      ranking : string option;
      protocol : string option;
      cluster : bool;
    }
  | Assist of {
      tout : string;
      vars : (string * string) list;
      max_results : int option;
      slack : int option;
      strategy : string option;
      ranking : string option;
      protocol : string option;
    }
  | Batch of {
      pairs : (string * string) list;
      max_results : int option;
      slack : int option;
      strategy : string option;
      ranking : string option;
      protocol : string option;
    }
  | Lint of { tin : string; tout : string }
  | Refine_start of {
      tin : string option;
      tout : string;
      vars : (string * string) list;
      max_results : int option;
      slack : int option;
      strategy : string option;
      ranking : string option;
      protocol : string option;
    }
  | Refine_answer of { session : string; choice : int }
  | Refine_status of { session : string }
  | Refine_stop of { session : string }
  | Reload of {
      japi : string option;  (* .japi source: classes added or replaced *)
      remove : string list;  (* fully qualified class names to drop *)
      corpus : string option;  (* mini-Java source: corpus examples added *)
    }
  | Stats
  | Health
  | Shutdown

type envelope = { id : json; req : request }

let ( let* ) = Result.bind

let field_string j k =
  match member k j with
  | Some (Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S must be a string" k)
  | None -> Error (Printf.sprintf "missing field %S" k)

let field_int_opt j k =
  match member k j with
  | Some (Int i) -> Ok (Some i)
  | Some Null | None -> Ok None
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" k)

let field_string_opt j k =
  match member k j with
  | Some (Str s) -> Ok (Some s)
  | Some Null | None -> Ok None
  | Some _ -> Error (Printf.sprintf "field %S must be a string" k)

let field_bool j k ~default =
  match member k j with
  | Some (Bool b) -> Ok b
  | Some Null | None -> Ok default
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" k)

let parse_var = function
  | Obj _ as o ->
      let* name = field_string o "name" in
      let* ty = field_string o "type" in
      Ok (name, ty)
  | _ -> Error "each var must be an object {\"name\", \"type\"}"

let parse_pair = function
  | Obj _ as o ->
      let* tin = field_string o "tin" in
      let* tout = field_string o "tout" in
      Ok (tin, tout)
  | _ -> Error "each query must be an object {\"tin\", \"tout\"}"

let rec map_m f = function
  | [] -> Ok []
  | x :: xs ->
      let* y = f x in
      let* ys = map_m f xs in
      Ok (y :: ys)

let request_of_json j =
  match j with
  | Obj _ ->
      let id = Option.value (member "id" j) ~default:Null in
      let* op = field_string j "op" in
      let* req =
        match op with
        | "query" ->
            let* tin = field_string j "tin" in
            let* tout = field_string j "tout" in
            let* max_results = field_int_opt j "max_results" in
            let* slack = field_int_opt j "slack" in
            let* strategy = field_string_opt j "strategy" in
            let* ranking = field_string_opt j "ranking" in
            let* protocol = field_string_opt j "protocol" in
            let* cluster = field_bool j "cluster" ~default:false in
            Ok
              (Query
                 { tin; tout; max_results; slack; strategy; ranking; protocol; cluster })
        | "assist" ->
            let* tout = field_string j "tout" in
            let* vars =
              match member "vars" j with
              | Some (Arr vs) -> map_m parse_var vs
              | Some Null | None -> Ok []
              | Some _ -> Error "field \"vars\" must be an array"
            in
            let* max_results = field_int_opt j "max_results" in
            let* slack = field_int_opt j "slack" in
            let* strategy = field_string_opt j "strategy" in
            let* ranking = field_string_opt j "ranking" in
            let* protocol = field_string_opt j "protocol" in
            Ok (Assist { tout; vars; max_results; slack; strategy; ranking; protocol })
        | "batch" ->
            let* pairs =
              match member "queries" j with
              | Some (Arr qs) -> map_m parse_pair qs
              | _ -> Error "field \"queries\" must be an array"
            in
            let* max_results = field_int_opt j "max_results" in
            let* slack = field_int_opt j "slack" in
            let* strategy = field_string_opt j "strategy" in
            let* ranking = field_string_opt j "ranking" in
            let* protocol = field_string_opt j "protocol" in
            Ok (Batch { pairs; max_results; slack; strategy; ranking; protocol })
        | "lint" ->
            let* tin = field_string j "tin" in
            let* tout = field_string j "tout" in
            Ok (Lint { tin; tout })
        | "refine_start" ->
            let* tin = field_string_opt j "tin" in
            let* tout = field_string j "tout" in
            let* vars =
              match member "vars" j with
              | Some (Arr vs) -> map_m parse_var vs
              | Some Null | None -> Ok []
              | Some _ -> Error "field \"vars\" must be an array"
            in
            let* () =
              if tin <> None && vars <> [] then
                Error "refine_start takes either \"tin\" or \"vars\", not both"
              else Ok ()
            in
            let* max_results = field_int_opt j "max_results" in
            let* slack = field_int_opt j "slack" in
            let* strategy = field_string_opt j "strategy" in
            let* ranking = field_string_opt j "ranking" in
            let* protocol = field_string_opt j "protocol" in
            Ok
              (Refine_start
                 { tin; tout; vars; max_results; slack; strategy; ranking; protocol })
        | "refine_answer" ->
            let* session = field_string j "session" in
            let* choice =
              match member "choice" j with
              | Some (Int i) when i >= 0 -> Ok i
              | Some _ -> Error "field \"choice\" must be a non-negative integer"
              | None -> Error "missing field \"choice\""
            in
            Ok (Refine_answer { session; choice })
        | "refine_status" ->
            let* session = field_string j "session" in
            Ok (Refine_status { session })
        | "refine_stop" ->
            let* session = field_string j "session" in
            Ok (Refine_stop { session })
        | "reload" ->
            let* japi = field_string_opt j "japi" in
            let* remove =
              match member "remove" j with
              | Some (Arr rs) ->
                  map_m
                    (function
                      | Str s -> Ok s
                      | _ -> Error "field \"remove\" must be an array of strings")
                    rs
              | Some Null | None -> Ok []
              | Some _ -> Error "field \"remove\" must be an array of strings"
            in
            let* corpus = field_string_opt j "corpus" in
            let* () =
              if japi = None && remove = [] && corpus = None then
                Error "reload needs at least one of \"japi\", \"remove\", \"corpus\""
              else Ok ()
            in
            Ok (Reload { japi; remove; corpus })
        | "stats" -> Ok Stats
        | "health" -> Ok Health
        | "shutdown" -> Ok Shutdown
        | op -> Error (Printf.sprintf "unknown op %S" op)
      in
      Ok { id; req }
  | _ -> Error "request must be a JSON object"

let envelope_to_json { id; req } =
  let id_field = match id with Null -> [] | id -> [ ("id", id) ] in
  let opt k = function Some i -> [ (k, Int i) ] | None -> [] in
  let opt_s k = function Some s -> [ (k, Str s) ] | None -> [] in
  let fields =
    match req with
    | Query { tin; tout; max_results; slack; strategy; ranking; protocol; cluster }
      ->
        [ ("op", Str "query"); ("tin", Str tin); ("tout", Str tout) ]
        @ opt "max_results" max_results @ opt "slack" slack
        @ opt_s "strategy" strategy @ opt_s "ranking" ranking
        @ opt_s "protocol" protocol
        @ if cluster then [ ("cluster", Bool true) ] else []
    | Assist { tout; vars; max_results; slack; strategy; ranking; protocol } ->
        [ ("op", Str "assist"); ("tout", Str tout) ]
        @ (match vars with
          | [] -> []
          | vs ->
              [
                ( "vars",
                  Arr
                    (List.map
                       (fun (name, ty) ->
                         Obj [ ("name", Str name); ("type", Str ty) ])
                       vs) );
              ])
        @ opt "max_results" max_results @ opt "slack" slack
        @ opt_s "strategy" strategy @ opt_s "ranking" ranking
        @ opt_s "protocol" protocol
    | Batch { pairs; max_results; slack; strategy; ranking; protocol } ->
        [
          ("op", Str "batch");
          ( "queries",
            Arr
              (List.map
                 (fun (tin, tout) -> Obj [ ("tin", Str tin); ("tout", Str tout) ])
                 pairs) );
        ]
        @ opt "max_results" max_results @ opt "slack" slack
        @ opt_s "strategy" strategy @ opt_s "ranking" ranking
        @ opt_s "protocol" protocol
    | Lint { tin; tout } ->
        [ ("op", Str "lint"); ("tin", Str tin); ("tout", Str tout) ]
    | Refine_start { tin; tout; vars; max_results; slack; strategy; ranking; protocol }
      ->
        [ ("op", Str "refine_start") ]
        @ opt_s "tin" tin
        @ [ ("tout", Str tout) ]
        @ (match vars with
          | [] -> []
          | vs ->
              [
                ( "vars",
                  Arr
                    (List.map
                       (fun (name, ty) ->
                         Obj [ ("name", Str name); ("type", Str ty) ])
                       vs) );
              ])
        @ opt "max_results" max_results @ opt "slack" slack
        @ opt_s "strategy" strategy @ opt_s "ranking" ranking
        @ opt_s "protocol" protocol
    | Refine_answer { session; choice } ->
        [
          ("op", Str "refine_answer");
          ("session", Str session);
          ("choice", Int choice);
        ]
    | Refine_status { session } ->
        [ ("op", Str "refine_status"); ("session", Str session) ]
    | Refine_stop { session } ->
        [ ("op", Str "refine_stop"); ("session", Str session) ]
    | Reload { japi; remove; corpus } ->
        [ ("op", Str "reload") ]
        @ opt_s "japi" japi
        @ (match remove with
          | [] -> []
          | rs -> [ ("remove", Arr (List.map (fun r -> Str r) rs)) ])
        @ opt_s "corpus" corpus
    | Stats -> [ ("op", Str "stats") ]
    | Health -> [ ("op", Str "health") ]
    | Shutdown -> [ ("op", Str "shutdown") ]
  in
  Obj (id_field @ fields)

(* ---------- responses ---------- *)

type error_code =
  | Bad_request
  | Unknown_op
  | Too_large
  | Busy
  | Timeout
  | Session_expired
  | Shutting_down
  | Internal

let error_code_string = function
  | Bad_request -> "bad_request"
  | Unknown_op -> "unknown_op"
  | Too_large -> "too_large"
  | Busy -> "busy"
  | Timeout -> "timeout"
  | Session_expired -> "session_expired"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

let ok_response ~id ~op fields =
  Obj ([ ("id", id); ("ok", Bool true); ("op", Str op) ] @ fields)

let error_response ~id code message =
  Obj
    [
      ("id", id);
      ("ok", Bool false);
      ( "error",
        Obj
          [
            ("code", Str (error_code_string code)); ("message", Str message);
          ] );
    ]
