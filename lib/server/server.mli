(** The transport: a TCP accept loop and a fixed worker pool around one
    {!Service}, plus a line-oriented [--stdio] mode for editor integration.

    Architecture (the accept loop is a thread, each worker its own domain):
    {v
      accept loop ──> bounded connection queue ──> worker domain 1..N
         (poll + accept; over-limit            (read line, Service.handle_line,
          connections get a "busy"              write line; repeat until EOF,
          reply and are closed)                 error, or drain)
    v}

    Workers are {e domains}, not threads: OCaml threads share one runtime
    lock, so a thread pool only overlaps on I/O waits, while {!Service}'s
    lock-free snapshot reads let domains execute whole searches
    concurrently. Each worker owns a private {!Service.local} result cache;
    the connection queue (mutex + condition) is shared across domains
    unchanged.

    Backpressure limits: at most [max_connections] connections queued or in
    flight (excess connections are answered with a one-line [busy] error and
    closed, so a stampede degrades loudly, not silently), and at most
    [max_request_bytes] per request line (an oversized line gets a
    [too_large] reply, the remainder of the line is discarded, and the
    connection lives on).

    Graceful drain ({!shutdown}, the wire [shutdown] op, or the CLI's SIGINT
    handler): stop accepting, let every in-flight request finish and its
    response flush, then join the workers. Blocking calls are bounded
    (accept polls; reads carry a receive timeout), so drain completes even
    with idle connections parked open. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 picks an ephemeral port; see {!port} *)
  workers : int;  (** worker-pool size (one domain each), default 4 *)
  max_request_bytes : int;  (** per-line cap, default 1 MiB *)
  max_connections : int;  (** queued + in-flight cap, default 64 *)
  idle_poll_s : float;
      (** how often parked reads/accepts wake to check for drain,
          default 0.25 s *)
  port_file : string option;
      (** when set, the bound port is written here (atomically) once
          listening — the rendezvous for tests on ephemeral ports *)
}

val default_config : config

type t

val create : ?config:config -> Service.t -> t

val port : t -> int
(** The actually bound port (only meaningful after {!start}). *)

val start : t -> unit
(** Bind, listen, write [port_file], spawn the accept loop and workers.
    @raise Unix.Unix_error when the address cannot be bound. *)

val shutdown : t -> unit
(** Request a graceful drain; idempotent, callable from any thread and from
    a signal handler. *)

val wait : t -> unit
(** Join the acceptor thread and every worker domain; returns once drained.
    Removes [port_file]. *)

val run : t -> unit
(** {!start} then {!wait}. *)

val serve_stdio : ?max_request_bytes:int -> Service.t -> unit
(** The [--stdio] transport: one request line from stdin, one response line
    to stdout, until EOF or a [shutdown] request. Single-threaded — an
    editor talks to its own private engine. *)
