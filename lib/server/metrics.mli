(** Request accounting for the daemon: per-op counters and latency
    histograms, served by the [stats] op and dumped on exit.

    Latencies land in geometric buckets (1 µs doubling up to ~35 min), so
    recording is O(1), memory is constant, and the reported p50/p95/p99 are
    upper bounds with at most 2x resolution — the right trade for a
    long-running server (an exact percentile would need every sample).

    All operations are thread-safe (one internal mutex; recording is a few
    array writes, so contention is not a concern next to query cost). *)

type t

val create : unit -> t
(** Fresh counters; the creation instant anchors {!uptime_s}. *)

val record : t -> op:string -> ok:bool -> float -> unit
(** [record t ~op ~ok seconds] — one request of kind [op] took [seconds];
    [ok = false] counts it as an error (error replies are still latencies:
    a timeout reply took real time). *)

type op_stats = {
  count : int;
  errors : int;
  mean_ms : float;
  max_ms : float;
  p50_ms : float;  (** bucket upper bounds, see above *)
  p95_ms : float;
  p99_ms : float;
}

val ops : t -> (string * op_stats) list
(** Snapshot, sorted by op name. *)

val set_gauge : t -> string -> int -> unit
(** Point-in-time level, e.g. [set_gauge t "refine_sessions" 3]. Unlike a
    latency sample a gauge overwrites; it reports the current level, not a
    history. *)

val gauges : t -> (string * int) list
(** Snapshot, sorted by gauge name; empty until a gauge is first set, so
    servers that never see a refine op keep their old output. *)

val gauges_json : t -> Proto.json
(** [{"refine_sessions": 0, ...}]. *)

val total_requests : t -> int

val uptime_s : t -> float

val ops_json : t -> Proto.json
(** [{"query": {"count": ..., "p50_ms": ...}, ...}] — the [stats] payload. *)

val render : t -> string
(** Multi-line human dump (printed to stderr when the server drains). *)
