module Jtype = Javamodel.Jtype
module Graph = Prospector.Graph
module Search = Prospector.Search

let scaling_api ~classes =
  Apigen.generate { Apigen.default_params with classes; seed = 42 }

let layered_api ~classes =
  Apigen.generate
    {
      Apigen.default_params with
      classes;
      packages = 32;
      locality = 0.9;
      seed = 42;
    }

let mega_api ~methods = Apigen.mega ~methods ()

let branchy_corpus ~branches =
  let hierarchy =
    Japi.Loader.load_string ~file:"branchy"
      {|
      package b;
      class Box { Object get(); static Box make(); }
      class Special { }
      |}
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "package corpusb;\nclass C {\n  void f() {\n";
  Buffer.add_string buf "    Object o = null;\n";
  for _ = 1 to branches do
    Buffer.add_string buf "    o = Box.make().get();\n"
  done;
  Buffer.add_string buf "    Special sp = (Special) o;\n  }\n}\n";
  (hierarchy, [ ("branchy-corpus", Buffer.contents buf) ])

let sample_pairs ~keep graph ~count ~seed =
  let rng = Rng.create ~seed in
  let real =
    List.filter_map
      (fun (ty, node) ->
        match ty with Jtype.Ref _ -> Some (ty, node) | _ -> None)
      (Graph.real_nodes graph)
  in
  let arr = Array.of_list real in
  let n = Array.length arr in
  let rec sample acc got tries =
    if got >= count || tries > count * 200 then List.rev acc
    else
      let ti, si = arr.(Rng.int rng n) in
      let to_, di = arr.(Rng.int rng n) in
      if si <> di && keep si di then
        sample ({ Prospector.Query.tin = ti; tout = to_ } :: acc) (got + 1)
          (tries + 1)
      else sample acc got (tries + 1)
  in
  sample [] 0 0

let solvable graph si di =
  Search.shortest_cost graph ~sources:[ si ] ~target:di <> None

let random_queries hierarchy graph ~count ~seed =
  ignore hierarchy;
  sample_pairs ~keep:(solvable graph) graph ~count ~seed

let random_misses graph ~count ~seed =
  sample_pairs ~keep:(fun si di -> not (solvable graph si di)) graph ~count ~seed
