module Jtype = Javamodel.Jtype
module Member = Javamodel.Member
module Elem = Prospector.Elem
module Query = Prospector.Query

type params = {
  producers : int;
  coverage : float;
  routes : int;
  reuse_variable : bool;
      (* write all covered examples into one method that reuses a single
         Object variable across reassignments — viable per flow-sensitive
         reading, conflated by the paper's flow-insensitive slicer *)
  seed : int;
}

let default_params =
  { producers = 20; coverage = 1.0; routes = 3; reuse_variable = false; seed = 7 }

type t = {
  hierarchy : Javamodel.Hierarchy.t;
  corpus : (string * string) list;
  covered : bool array;
  params : params;
}

let registry = "truth.Registry"

let model i = Printf.sprintf "truth.Model%d" i

let api_text p =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "package truth;\n\nclass Registry {\n";
  for i = 0 to p.producers - 1 do
    Buffer.add_string buf (Printf.sprintf "  Object lookup%d();\n" i)
  done;
  Buffer.add_string buf "}\n\nclass Factory {\n";
  for r = 0 to p.routes - 1 do
    Buffer.add_string buf (Printf.sprintf "  static truth.Registry route%d();\n" r)
  done;
  Buffer.add_string buf "}\n\n";
  for i = 0 to p.producers - 1 do
    Buffer.add_string buf (Printf.sprintf "class Model%d { }\n" i)
  done;
  Buffer.contents buf

(* Pairwise reuse: each method performs two lookups through ONE variable.
   Both casts are viable in the source; the flow-insensitive slice wires
   each cast to both reassignments. *)
let reuse_corpus_text p covered =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "package corpusg;\n";
  Array.iteri
    (fun i is_covered ->
      if is_covered then begin
        let j = (i + 1) mod p.producers in
        let route = i mod p.routes in
        Buffer.add_string buf
          (Printf.sprintf
             {|
class Use%d {
  void run() {
    Registry reg = Factory.route%d();
    Object o = reg.lookup%d();
    Model%d mi = (Model%d) o;
    o = reg.lookup%d();
    Model%d mj = (Model%d) o;
  }
}
|}
             i route i i i j j j)
      end)
    covered;
  Buffer.contents buf

let corpus_text p covered =
  if p.reuse_variable then reuse_corpus_text p covered
  else begin
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "package corpusg;\n";
  Array.iteri
    (fun i is_covered ->
      if is_covered then begin
        let route = i mod p.routes in
        Buffer.add_string buf
          (Printf.sprintf
             {|
class Use%d {
  void run() {
    Registry reg = Factory.route%d();
    Object o = reg.lookup%d();
    Model%d m = (Model%d) o;
  }
}
|}
             i route i i i)
      end)
    covered;
  Buffer.contents buf
  end

let generate_with ~covered p =
  let hierarchy = Japi.Loader.load_string ~file:"truth" (api_text p) in
  { hierarchy; corpus = [ ("truth-corpus", corpus_text p covered) ]; covered; params = p }

let generate p =
  let rng = Rng.create ~seed:p.seed in
  let covered = Array.init p.producers (fun _ -> Rng.bool rng p.coverage) in
  generate_with ~covered p

type score = {
  completeness : float;
  precision : float;
  synthesized : int;
  viable : int;
}

(* A downcast jungloid is viable exactly when the value being cast comes
   from the producer whose ground-truth class matches the cast target. *)
let viable_downcast (j : Prospector.Jungloid.t) =
  let rec last_producer_before_cast producer = function
    | [] -> None
    | Elem.Downcast { to_; _ } :: [] -> Some (producer, to_)
    | Elem.Downcast _ :: rest -> last_producer_before_cast None rest
    | e :: rest ->
        let producer = if Elem.is_widen e then producer else Some e in
        last_producer_before_cast producer rest
  in
  match last_producer_before_cast None j.Prospector.Jungloid.elems with
  | Some (Some (Elem.Instance_call { meth; _ }), Jtype.Ref target) -> (
      let name = meth.Member.mname in
      let prefix = "lookup" in
      let plen = String.length prefix in
      if String.length name > plen && String.sub name 0 plen = prefix then
        let idx = String.sub name plen (String.length name - plen) in
        String.equal (Javamodel.Qname.simple target) ("Model" ^ idx)
      else false)
  | _ -> false

let score ?(generalize = true) ?(min_keep = 1) ?(flow_sensitive = false)
    ?(tin = registry) t =
  let p = t.params in
  let prog = Minijava.Resolve.parse_program ~api:t.hierarchy t.corpus in
  let g = Prospector.Sig_graph.build t.hierarchy in
  let _ = Mining.Enrich.enrich ~generalize ~min_keep ~flow_sensitive g prog in
  let complete = ref 0 in
  let synthesized = ref 0 in
  let viable = ref 0 in
  for i = 0 to p.producers - 1 do
    let results =
      Query.run
        ~settings:
          (* Exhaustive on purpose: at slack 2 and an effectively unbounded
             result list this wants the full path set, not a certified
             prefix — the corpus-tooling case the best-first default is the
             wrong shape for. *)
          {
            Query.default_settings with
            slack = 2;
            max_results = 1000;
            strategy = Query.Exhaustive;
          }
        ~graph:g ~hierarchy:t.hierarchy (Query.query tin (model i))
    in
    let correct =
      List.exists
        (fun r ->
          List.exists
            (fun e ->
              match e with
              | Elem.Instance_call { meth; _ } ->
                  String.equal meth.Member.mname (Printf.sprintf "lookup%d" i)
              | _ -> false)
            r.Query.jungloid.Prospector.Jungloid.elems
          && viable_downcast r.Query.jungloid)
        results
    in
    if correct then incr complete;
    List.iter
      (fun r ->
        if Prospector.Jungloid.contains_downcast r.Query.jungloid then begin
          incr synthesized;
          if viable_downcast r.Query.jungloid then incr viable
        end)
      results
  done;
  {
    completeness = float_of_int !complete /. float_of_int (max 1 p.producers);
    precision =
      (if !synthesized = 0 then 1.0
       else float_of_int !viable /. float_of_int !synthesized);
    synthesized = !synthesized;
    viable = !viable;
  }
