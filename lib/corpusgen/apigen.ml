module Builder = Javamodel.Builder

type params = {
  classes : int;
  packages : int;
  methods_per_class : int;
  subclass_fraction : float;
  void_fraction : float;
  locality : float;
  seed : int;
}

let default_params =
  {
    classes = 200;
    packages = 8;
    methods_per_class = 5;
    subclass_fraction = 0.3;
    void_fraction = 0.1;
    locality = 0.0;
    seed = 42;
  }

let pkg_of p i = Printf.sprintf "synth.p%d" (i * p.packages / max 1 p.classes)

let class_name p i = Printf.sprintf "%s.C%d" (pkg_of p i) i

let class_qname p i = Javamodel.Qname.of_string (class_name p i)

(* With [locality = 0] referenced types are uniform over the whole set (the
   historical expander-like behavior: one giant SCC, every cone ~100%). A
   positive locality arranges the packages as a binary tree rooted at the
   hub package: a class keeps its references inside its own package with
   probability [locality] and otherwise hands out an entry point into one of
   its package's child packages — a workbench-style facade fanning out into
   subsystems, never referencing back up. A search from a hub type can reach
   the whole tree, but a target's reachability cone is only the silos on the
   root-to-target path, so pruning has real work to do. Any edge pointing
   back toward the root (or uniformly across silos, as the extends edges
   used to) would close a cycle and collapse the tree into one SCC with
   ~100% cones — which is exactly what the [locality = 0] expander is. *)
let per_pkg p = max 1 (p.classes / max 1 p.packages)

let pick_ref p rng i =
  if p.locality <= 0.0 then Rng.int rng p.classes
  else
    let k = per_pkg p in
    let npkg = (p.classes + k - 1) / k in
    let pkg = i / k in
    let pick_in q = min (p.classes - 1) ((q * k) + Rng.int rng k) in
    let c1 = (2 * pkg) + 1 and c2 = (2 * pkg) + 2 in
    if c1 >= npkg || Rng.bool rng p.locality then pick_in pkg
    else if c2 >= npkg then pick_in c1
    else pick_in (if Rng.bool rng 0.5 then c1 else c2)

(* Parameter types are path edges just like returns (param -> ret), so a
   parameter drawn from a child package whose method returns an own-package
   type would be an edge back toward the root; under locality parameters
   therefore always stay inside the package. *)
let pick_param p rng i =
  if p.locality <= 0.0 then Rng.int rng p.classes
  else
    let k = per_pkg p in
    min (p.classes - 1) ((i / k * k) + Rng.int rng k)

(* Widening conversions are graph edges too, so a superclass in another
   silo would leak reachability just like a reference edge; under locality
   the superclass stays inside the package (or the class stays root when it
   is its package's first). Always an earlier index, as [generate]
   requires. *)
let pick_parent p rng i =
  if p.locality <= 0.0 then Some (Rng.int rng i)
  else
    let k = per_pkg p in
    let lo = i / k * k in
    if i > lo then Some (lo + Rng.int rng (i - lo)) else None

let generate_with ~n_methods_of p =
  let rng = Rng.create ~seed:p.seed in
  let b = Builder.create () in
  for i = 0 to p.classes - 1 do
    let extends =
      if i > 0 && Rng.bool rng p.subclass_fraction then
        Option.map (class_name p) (pick_parent p rng i)
      else None
    in
    Builder.cls b ?extends (class_name p i);
    let n_methods = n_methods_of rng in
    for m = 0 to n_methods - 1 do
      let ret = class_name p (pick_ref p rng i) in
      if Rng.bool rng p.void_fraction then
        Builder.meth b ~static:true (Printf.sprintf "make%d" m) ~params:[] ~ret
      else begin
        let n_params = Rng.int rng 2 in
        let params =
          List.init n_params (fun _ ->
              if Rng.bool rng 0.3 then "int" else class_name p (pick_param p rng i))
        in
        Builder.meth b (Printf.sprintf "m%d" m) ~params ~ret
      end
    done;
    if Rng.bool rng 0.5 then Builder.ctor b ~params:[] ()
  done;
  Builder.hierarchy b

let generate p =
  generate_with p ~n_methods_of:(fun rng ->
      max 1 (p.methods_per_class / 2 + Rng.int rng (max 1 p.methods_per_class)))

(* Real APIs are heavy-tailed: most classes expose a handful of methods and
   a few god classes expose dozens. 60% draw 1-3, 30% draw 4-11, 10% draw
   12-40 — mean ~6 methods per class, which fixes the class count for a
   requested method budget. *)
let mega_methods_per_class rng =
  let u = Rng.float rng 1.0 in
  if u < 0.6 then 1 + Rng.int rng 3
  else if u < 0.9 then 4 + Rng.int rng 8
  else 12 + Rng.int rng 29

let mega_params ?(seed = 42) ~methods () =
  let classes = max 2 (methods / 6) in
  {
    classes;
    packages = max 2 (classes / 24);
    methods_per_class = 6;
    subclass_fraction = 0.3;
    void_fraction = 0.1;
    locality = 0.85;
    seed;
  }

let mega ?seed ~methods () =
  generate_with ~n_methods_of:mega_methods_per_class
    (mega_params ?seed ~methods ())
