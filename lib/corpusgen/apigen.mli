(** Synthetic API generator for scaling benchmarks.

    Produces a layered, package-partitioned class hierarchy whose signature
    graph has tunable size and connectivity: each class may extend an
    earlier class, and methods reference types drawn from the whole set, so
    path enumeration has realistic fan-out. Deterministic in the seed. *)

type params = {
  classes : int;
  packages : int;
  methods_per_class : int;  (** mean; actual counts vary ±50% *)
  subclass_fraction : float;  (** probability a class extends an earlier one *)
  void_fraction : float;  (** probability a method is static with no params *)
  locality : float;
      (** [0.] (default) draws referenced types uniformly from the whole set
          — an expander whose reachability cones cover ~the entire graph.
          Positive locality arranges the packages as a binary tree rooted at
          a hub package: references stay inside the class's own package with
          this probability and otherwise fan out into a child package, never
          back up. Hub types reach the whole tree but each target's cone is
          only the root-to-target silo path — the facade-over-subsystems
          shape (narrow cones) that the {!Prospector.Reach} pruning bench
          exercises. *)
  seed : int;
}

val default_params : params
(** 200 classes, 8 packages, 5 methods per class, locality 0, seed 42. *)

val generate : params -> Javamodel.Hierarchy.t
(** The synthetic hierarchy; class [i] is [synth.pN.Ci]. *)

val class_qname : params -> int -> Javamodel.Qname.t
(** The name of the [i]-th generated class. *)

val mega_params : ?seed:int -> methods:int -> unit -> params
(** Parameters sized for a method budget: classes = methods/6 (the
    heavy-tailed per-class distribution below has mean ~6), one package per
    ~24 classes arranged as the locality-0.85 binary package tree. *)

val mega : ?seed:int -> methods:int -> unit -> Javamodel.Hierarchy.t
(** A realistically shaped world with approximately [methods] methods:
    package-tree locality (narrow reachability cones, so sharding and
    pruning have real work), heavy-tailed methods-per-class (60% of classes
    draw 1-3 methods, 30% draw 4-11, 10% draw 12-40), deterministic in
    [seed] (default 42). Cheap enough to regenerate at 100k/1M methods
    inside a benchmark run. *)
