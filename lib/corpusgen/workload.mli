(** Named workloads shared by the bench harness and tests. *)

val scaling_api : classes:int -> Javamodel.Hierarchy.t
(** A synthetic API of the given size (fixed seed). *)

val layered_api : classes:int -> Javamodel.Hierarchy.t
(** Like {!scaling_api} but stratified: 32 packages, locality 0.9, so type
    references mostly stay inside a package or point at lower layers.
    Reachability cones are narrow — the shape {!Prospector.Reach} pruning is
    designed for. *)

val mega_api : methods:int -> Javamodel.Hierarchy.t
(** {!Apigen.mega} at the default seed: ~[methods] methods with heavy-tailed
    class sizes and package-tree locality — the scale-bench world. *)

val branchy_corpus :
  branches:int -> Javamodel.Hierarchy.t * (string * string) list
(** A corpus whose single cast has [branches] alternative producers — the
    Section 4.2 extraction-blowup scenario that motivates the per-cast
    cap. *)

val random_queries :
  Javamodel.Hierarchy.t -> Prospector.Graph.t -> count:int -> seed:int ->
  Prospector.Query.t list
(** Solvable queries sampled from a graph: pairs [(tin, tout)] with at least
    one path, for latency distribution measurements. *)

val random_misses :
  Prospector.Graph.t -> count:int -> seed:int -> Prospector.Query.t list
(** The complement of {!random_queries}: pairs with {e no} path — what a
    user exploring an unfamiliar API asks all the time. Without an index
    each costs a full search that finds nothing; {!Prospector.Reach} rejects
    them in O(1). *)
