type t = { n_jobs : int }

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  { n_jobs = jobs }

let sequential = { n_jobs = 1 }

let jobs t = t.n_jobs

(* Nested fan-out (a worker's body itself calling into the pool) runs
   inline: spawning domains from a domain that is itself one of [jobs]
   workers would oversubscribe the machine, and the inline path keeps the
   semantics identical either way. *)
let inside_worker = Domain.DLS.new_key (fun () -> false)

let chunks_per_worker = 4

let parallel_for t ~n body =
  if n > 0 then begin
    let workers = min t.n_jobs n in
    if workers = 1 || Domain.DLS.get inside_worker then
      for i = 0 to n - 1 do
        body i
      done
    else begin
      let chunk = max 1 (n / (workers * chunks_per_worker)) in
      let next = Atomic.make 0 in
      let failed : (exn * Printexc.raw_backtrace) option Atomic.t =
        Atomic.make None
      in
      let work () =
        Domain.DLS.set inside_worker true;
        Fun.protect
          ~finally:(fun () -> Domain.DLS.set inside_worker false)
          (fun () ->
            let continue = ref true in
            while !continue do
              let lo = Atomic.fetch_and_add next chunk in
              if lo >= n || Atomic.get failed <> None then continue := false
              else
                let hi = min n (lo + chunk) in
                try
                  for i = lo to hi - 1 do
                    body i
                  done
                with e ->
                  let bt = Printexc.get_raw_backtrace () in
                  ignore (Atomic.compare_and_set failed None (Some (e, bt)));
                  continue := false
            done)
      in
      let spawned = List.init (workers - 1) (fun _ -> Domain.spawn work) in
      (* The calling domain is worker number [workers]. *)
      work ();
      List.iter Domain.join spawned;
      match Atomic.get failed with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

let map_array t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if t.n_jobs = 1 || n = 1 || Domain.DLS.get inside_worker then
    Array.map f arr
  else begin
    (* Option-boxed so no element of [arr] needs to act as a placeholder;
       each slot is written by exactly one worker. *)
    let out = Array.make n None in
    parallel_for t ~n (fun i -> out.(i) <- Some (f arr.(i)));
    Array.map
      (function Some v -> v | None -> assert false (* every index ran *))
      out
  end

let map_list t f l =
  match l with
  | [] -> []
  | [ x ] -> [ f x ]
  | l ->
      if t.n_jobs = 1 || Domain.DLS.get inside_worker then List.map f l
      else Array.to_list (map_array t f (Array.of_list l))
