(** A small [Domain]-backed fan-out pool.

    The pool is a policy object, not a set of long-lived worker domains:
    each [parallel_for]/[map_*] call spawns [jobs - 1] domains, the calling
    domain works alongside them, and every domain is joined before the call
    returns. That keeps the lifecycle trivial (no shutdown protocol, no
    idle workers burning a domain slot) at the cost of ~30 µs of spawn
    overhead per fan-out — noise against the multi-millisecond batch, mining
    and index-build workloads this module exists for.

    Work distribution is {e chunked}: indices [0 .. n-1] are split into
    contiguous chunks of [max 1 (n / (jobs * 4))] indices and domains claim
    chunks from a shared atomic counter. Four chunks per worker balances
    load (a slow chunk strands at most ~1/4 of one worker's share) against
    contention on the counter.

    Determinism: results of [map_array]/[map_list] are written into a
    preallocated array at each element's input index, so the output order is
    the input order regardless of how chunks interleave. Any call with
    [jobs = 1] — and any {e nested} fan-out from inside a worker — runs
    sequentially inline, so a pool never deadlocks on itself and
    [jobs = 1] is exactly the plain sequential loop.

    Exceptions: the first exception captured (in chunk-claim order) is
    re-raised in the caller after all domains have been joined; when several
    chunks raise concurrently it is unspecified which one wins. *)

type t

val create : jobs:int -> t
(** @raise Invalid_argument when [jobs < 1]. *)

val sequential : t
(** A pool with [jobs = 1]: every operation runs inline. *)

val jobs : t -> int

val parallel_for : t -> n:int -> (int -> unit) -> unit
(** [parallel_for p ~n body] runs [body i] once for each [i] in
    [0 .. n - 1], fanned out across [jobs p] domains. The body must only
    write to disjoint, index-addressed state (see {!map_array} for the
    canonical use). *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Like [Array.map], with the elements computed in parallel. Output index
    [i] always holds [f arr.(i)]. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** Like [List.map], with the elements computed in parallel; result order is
    input order. *)
