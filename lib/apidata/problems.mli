(** The 20 query-processing problems of Table 1, with the paper's reported
    rank for each and a checker recognizing the desired solution. *)

type outcome =
  | Rank of int  (** paper: desired solution at this rank *)
  | Not_found  (** paper: "No" — not in the results *)

type t = {
  id : int;  (** row number, 1-based, in Table 1 order *)
  description : string;  (** the problem as Table 1 states it *)
  source : string;  (** where the paper got it: Tester / Almanac / FAQs / Author *)
  tin : string;  (** dotted input type (["void"] allowed) *)
  tout : string;  (** dotted output type *)
  paper : outcome;
  is_desired : Prospector.Query.result -> bool;
      (** recognizes the desired solution among query results *)
}

val all : t list
(** The 20 rows, in the paper's order. *)

type measured = {
  problem : t;
  time_s : float;
  rank : int option;  (** 1-based rank of the desired solution, within the
                          result list; [None] if absent *)
  results : Prospector.Query.result list;
}

val run_one :
  ?settings:Prospector.Query.settings ->
  ?edge_cost:(Prospector.Elem.t -> int) ->
  graph:Prospector.Graph.t ->
  hierarchy:Javamodel.Hierarchy.t ->
  t ->
  measured

val run_all :
  ?settings:Prospector.Query.settings ->
  ?edge_cost:(Prospector.Elem.t -> int) ->
  graph:Prospector.Graph.t ->
  hierarchy:Javamodel.Hierarchy.t ->
  unit ->
  measured list

val found : measured -> bool
(** The paper's success criterion: the desired solution appears and the user
    reads fewer than 5 snippets to reach it (rank ≤ 5). *)
