(** Assembly of the curated data set: the full API hierarchy, the resolved
    mining corpus, and ready-built graphs. Everything is memoized — the
    loaded hierarchy and built graphs are shared across callers (tests, the
    CLI, examples, and the bench harness). *)

module Hierarchy = Javamodel.Hierarchy

val api_sources : (string * string) list
(** Every [.japi] pseudo-file: J2SE + Eclipse core + Eclipse UI + GEF/debug. *)

val corpus_sources : (string * string) list

val hierarchy : unit -> Hierarchy.t
(** The loaded API hierarchy (without corpus classes). *)

val program : unit -> Minijava.Tast.program
(** The resolved mining corpus (its hierarchy extends {!hierarchy} with the
    corpus's own classes). *)

val signature_graph : unit -> Prospector.Graph.t
(** Signature graph only — no mined examples (fresh copy each call: graphs
    are mutable). *)

val jungloid_graph : unit -> Prospector.Graph.t * Mining.Enrich.stats
(** Signature graph + mined examples (the paper's full configuration).
    Fresh copy each call. *)

val default_graph : unit -> Prospector.Graph.t
(** Memoized jungloid graph for read-only use (queries, assist, benches).
    Do not mutate. *)

val usage : unit -> Mining.Usage.t
(** Memoized usage model mined from the bundled corpus — the
    [Mined]-ranking counterpart of {!default_graph}: the same corpus
    evidence the graph's spliced examples came from, counted pre-
    generalization. *)

val proto : unit -> Analysis.Protocol.model
(** Memoized typestate model mined from the bundled corpus — what
    [lint --pass proto] and jungloid vetting check against. *)
