module Query = Prospector.Query

type outcome =
  | Rank of int
  | Not_found

type t = {
  id : int;
  description : string;
  source : string;
  tin : string;
  tout : string;
  paper : outcome;
  is_desired : Prospector.Query.result -> bool;
}

let contains = Prospector.Util.contains

let code_has subs (r : Query.result) =
  List.for_all (fun sub -> contains ~sub r.Query.code) subs

let code_has_any subs (r : Query.result) =
  List.exists (fun sub -> contains ~sub r.Query.code) subs

let all =
  [
    {
      id = 1;
      description = "Read lines from an input stream";
      source = "Tester";
      tin = "java.io.InputStream";
      tout = "java.io.BufferedReader";
      paper = Rank 1;
      is_desired = code_has [ "new BufferedReader"; "new InputStreamReader" ];
    };
    {
      id = 2;
      description = "Open a named file for memory-mapped I/O";
      source = "Almanac";
      tin = "java.lang.String";
      tout = "java.nio.MappedByteBuffer";
      paper = Rank 1;
      is_desired = code_has [ "getChannel()"; ".map(" ];
    };
    {
      id = 3;
      description = "Get table widget from an Eclipse view";
      source = "FAQs";
      tin = "org.eclipse.jface.viewers.TableViewer";
      tout = "org.eclipse.swt.widgets.Table";
      paper = Rank 1;
      is_desired = code_has [ ".getTable()" ];
    };
    {
      id = 4;
      description = "Get the active editor";
      source = "Eclipse FAQs";
      tin = "org.eclipse.ui.IWorkbench";
      tout = "org.eclipse.ui.IEditorPart";
      paper = Rank 1;
      is_desired =
        code_has [ "getActiveWorkbenchWindow()"; "getActivePage()"; "getActiveEditor()" ];
    };
    {
      id = 5;
      description = "Retrieve canvas from scrolling viewer";
      source = "Author";
      tin = "org.eclipse.gef.ui.parts.ScrollingGraphicalViewer";
      tout = "org.eclipse.draw2d.FigureCanvas";
      paper = Rank 1;
      is_desired = code_has [ "getControl()"; "(FigureCanvas)" ];
    };
    {
      id = 6;
      description = "Get window for MessageBox";
      source = "Author";
      tin = "org.eclipse.swt.events.KeyEvent";
      tout = "org.eclipse.swt.widgets.Shell";
      paper = Rank 1;
      is_desired = code_has_any [ "getActiveShell()"; "getShell()" ];
    };
    {
      id = 7;
      description = "Convert legacy class";
      source = "Author";
      tin = "java.util.Enumeration";
      tout = "java.util.Iterator";
      paper = Rank 1;
      is_desired = code_has_any [ "asIterator"; "EnumerationIterator" ];
    };
    {
      id = 8;
      description = "Get selection from event";
      source = "Author";
      tin = "org.eclipse.jface.viewers.SelectionChangedEvent";
      tout = "org.eclipse.jface.viewers.ISelection";
      paper = Rank 1;
      is_desired = code_has [ ".getSelection()" ];
    };
    {
      id = 9;
      description = "Get image handle for lazy image loading";
      source = "Author";
      tin = "org.eclipse.jface.resource.ImageRegistry";
      tout = "org.eclipse.jface.resource.ImageDescriptor";
      paper = Rank 1;
      is_desired = code_has [ ".getDescriptor(" ];
    };
    {
      id = 10;
      description = "Iterate over map values";
      source = "Tester";
      tin = "java.util.Map";
      tout = "java.util.Iterator";
      paper = Rank 1;
      is_desired = code_has [ ".values()"; ".iterator()" ];
    };
    {
      id = 11;
      description = "Add menu bars to a view";
      source = "Eclipse FAQs";
      tin = "org.eclipse.ui.IViewPart";
      tout = "org.eclipse.jface.action.MenuManager";
      paper = Rank 1;
      is_desired = code_has [ "getViewSite()"; "getActionBars()"; "getMenuManager()" ];
    };
    {
      id = 12;
      description = "Set captions on table columns";
      source = "Author";
      tin = "org.eclipse.jface.viewers.TableViewer";
      tout = "org.eclipse.swt.widgets.TableColumn";
      paper = Rank 2;
      is_desired = code_has [ "new TableColumn"; ".getTable()" ];
    };
    {
      id = 13;
      description = "Track selection changes in another widget";
      source = "Eclipse FAQs";
      tin = "org.eclipse.ui.IEditorSite";
      tout = "org.eclipse.ui.ISelectionService";
      paper = Rank 2;
      is_desired = code_has [ "getWorkbenchWindow()"; "getSelectionService()" ];
    };
    {
      id = 14;
      description = "Read lines from a file";
      source = "Almanac";
      tin = "java.lang.String";
      tout = "java.io.BufferedReader";
      paper = Rank 3;
      is_desired = code_has [ "new BufferedReader"; "new FileReader" ];
    };
    {
      id = 15;
      description = "Find out what object is selected";
      source = "Eclipse FAQs";
      tin = "org.eclipse.ui.IWorkbenchPage";
      tout = "org.eclipse.jface.viewers.IStructuredSelection";
      paper = Rank 3;
      is_desired = code_has [ ".getSelection()"; "(IStructuredSelection)" ];
    };
    {
      id = 16;
      description = "Manipulate document of visual editor";
      source = "Eclipse FAQs";
      tin = "org.eclipse.ui.IWorkbenchPage";
      tout = "org.eclipse.ui.texteditor.IDocumentProvider";
      paper = Rank 3;
      is_desired = code_has [ "getDocumentProvider" ];
    };
    {
      id = 17;
      description = "Convert file handle to file name";
      source = "Author";
      tin = "org.eclipse.core.resources.IFile";
      tout = "java.lang.String";
      paper = Rank 4;
      is_desired = code_has [ ".getName()" ];
    };
    {
      id = 18;
      description = "Get an Eclipse view by name";
      source = "Eclipse FAQs";
      tin = "org.eclipse.ui.IWorkbenchWindow";
      tout = "org.eclipse.ui.IViewPart";
      paper = Rank 4;
      is_desired = code_has [ ".findView(" ];
    };
    {
      id = 19;
      description = "Set graph edge routing algorithm";
      source = "Author";
      tin = "org.eclipse.gef.editparts.AbstractGraphicalEditPart";
      tout = "org.eclipse.draw2d.ConnectionLayer";
      paper = Not_found;
      (* the desired jungloid calls the protected getLayer *)
      is_desired = code_has [ "getLayer(" ];
    };
    {
      id = 20;
      description = "Retrieve file from workspace";
      source = "Author";
      tin = "org.eclipse.core.resources.IWorkspace";
      tout = "org.eclipse.core.resources.IFile";
      paper = Not_found;
      (* a file in a named project: crowded out by parallel accessors *)
      is_desired = code_has [ ".getProject("; ".getFile(" ];
    };
  ]

type measured = {
  problem : t;
  time_s : float;
  rank : int option;
  results : Prospector.Query.result list;
}

let run_one ?settings ?edge_cost ~graph ~hierarchy p =
  let q = Query.query p.tin p.tout in
  let t0 = Unix.gettimeofday () in
  let results = Query.run ?settings ?edge_cost ~graph ~hierarchy q in
  let time_s = Unix.gettimeofday () -. t0 in
  let rank =
    List.mapi (fun i r -> (i + 1, r)) results
    |> List.find_opt (fun (_, r) -> p.is_desired r)
    |> Option.map fst
  in
  { problem = p; time_s; rank; results }

let run_all ?settings ?edge_cost ~graph ~hierarchy () =
  List.map (run_one ?settings ?edge_cost ~graph ~hierarchy) all

let found m = match m.rank with Some r -> r <= 5 | None -> false
