module Hierarchy = Javamodel.Hierarchy

let api_sources =
  J2se.sources @ J2se_extra.sources @ J2se_xml_sql.sources @ J2se_swing.sources @ Eclipse_core.sources @ Eclipse_ui.sources
  @ Eclipse_extra.sources @ Eclipse_gef.sources

let corpus_sources = Corpus.sources

let memo f =
  let cell = ref None in
  fun () ->
    match !cell with
    | Some v -> v
    | None ->
        let v = f () in
        cell := Some v;
        v

let hierarchy = memo (fun () -> Japi.Loader.load_files api_sources)

let program =
  memo (fun () -> Minijava.Resolve.parse_program ~api:(hierarchy ()) corpus_sources)

(* The graph is built from API signatures only: corpus classes contribute
   mined examples, never elementary jungloids of their own. *)
let signature_graph () = Prospector.Sig_graph.build (hierarchy ())

let jungloid_graph () =
  let g = signature_graph () in
  let stats = Mining.Enrich.enrich g (program ()) in
  (g, stats)

let default_graph = memo (fun () -> fst (jungloid_graph ()))

let usage =
  memo (fun () -> Mining.Usage.of_examples (Mining.Enrich.examples (program ())))

let proto = memo (fun () -> Mining.Protomine.mine (program ()))
