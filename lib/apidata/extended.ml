module Query = Prospector.Query

type t = {
  id : int;
  description : string;
  tin : string;
  tout : string;
  max_rank : int;
  settings : Prospector.Query.settings;
  is_desired : Prospector.Query.result -> bool;
}

let contains = Prospector.Util.contains

let code_has subs (r : Query.result) =
  List.for_all (fun sub -> contains ~sub r.Query.code) subs

let code_has_any subs (r : Query.result) =
  List.exists (fun sub -> contains ~sub r.Query.code) subs

let dflt = Query.default_settings

let slack2 = { Query.default_settings with slack = 2 }

let all =
  [
    {
      id = 1;
      description = "Parse a date from a string";
      tin = "java.lang.String";
      tout = "java.util.Date";
      max_rank = 3;
      settings = dflt;
      is_desired = code_has [ ".parse(" ];
    };
    {
      id = 2;
      description = "Read a zip entry's contents";
      tin = "java.util.zip.ZipFile";
      tout = "java.io.InputStream";
      max_rank = 3;
      settings = dflt;
      is_desired = code_has [ ".getInputStream(" ];
    };
    {
      id = 3;
      description = "Open a zip file by name";
      tin = "java.lang.String";
      tout = "java.util.zip.ZipFile";
      max_rank = 1;
      settings = dflt;
      is_desired = code_has [ "new ZipFile" ];
    };
    {
      id = 4;
      description = "Read lines from a URL";
      tin = "java.net.URL";
      tout = "java.io.BufferedReader";
      max_rank = 3;
      settings = dflt;
      is_desired = code_has [ "openStream()"; "new InputStreamReader"; "new BufferedReader" ];
    };
    {
      id = 5;
      description = "Open a named file as a stream";
      tin = "java.lang.String";
      tout = "java.io.InputStream";
      max_rank = 4;
      settings = dflt;
      is_desired = code_has [ "new FileInputStream" ];
    };
    {
      id = 6;
      description = "Get some shell to parent a dialog";
      tin = "void";
      tout = "org.eclipse.swt.widgets.Shell";
      max_rank = 5;
      settings = dflt;
      is_desired = code_has_any [ "getActiveShell()"; "getActiveWorkbenchShell()" ];
    };
    {
      id = 7;
      description = "Pop a message box over a shell";
      tin = "org.eclipse.swt.widgets.Shell";
      tout = "org.eclipse.swt.widgets.MessageBox";
      max_rank = 1;
      settings = dflt;
      is_desired = code_has [ "new MessageBox" ];
    };
    {
      id = 8;
      description = "Get a shared workbench image";
      tin = "org.eclipse.ui.IWorkbench";
      tout = "org.eclipse.swt.graphics.Image";
      max_rank = 3;
      settings = dflt;
      is_desired = code_has [ "getSharedImages()"; ".getImage(" ];
    };
    {
      id = 9;
      description = "Image descriptor from a URL string";
      tin = "java.lang.String";
      tout = "org.eclipse.jface.resource.ImageDescriptor";
      max_rank = 4;
      settings = dflt;
      is_desired = code_has [ "createFromURL"; "new URL" ];
    };
    {
      id = 10;
      description = "Get the control behind a wizard page";
      tin = "org.eclipse.jface.wizard.IWizardPage";
      tout = "org.eclipse.swt.widgets.Control";
      max_rank = 1;
      settings = dflt;
      is_desired = code_has [ ".getControl()" ];
    };
    {
      id = 11;
      description = "Memory-map a file object";
      tin = "java.io.File";
      tout = "java.nio.MappedByteBuffer";
      max_rank = 2;
      settings = dflt;
      is_desired = code_has [ "getChannel()"; ".map(" ];
    };
    {
      id = 12;
      (* String-producing queries are crowded (Object.toString alone gives
         every type a one-step route — the paper's (IFile, String) rank-4
         phenomenon, amplified): the desired call sits deep in the list and
         needs a longer result page. *)
      description = "Look up a configuration property (crowded)";
      tin = "java.util.Properties";
      tout = "java.lang.String";
      max_rank = 20;
      settings = { dflt with Prospector.Query.max_results = 25 };
      is_desired = code_has [ ".getProperty(" ];
    };
    {
      id = 13;
      description = "File behind the active editor (mined downcast)";
      tin = "org.eclipse.ui.IEditorPart";
      tout = "org.eclipse.core.resources.IFile";
      max_rank = 3;
      settings = dflt;
      is_desired = code_has [ "(IFileEditorInput)"; "getEditorInput()"; ".getFile()" ];
    };
    {
      id = 14;
      description = "Read a workspace file's contents";
      tin = "org.eclipse.core.resources.IFile";
      tout = "java.io.InputStream";
      max_rank = 1;
      settings = dflt;
      is_desired = code_has [ ".getContents()" ];
    };
    {
      id = 15;
      description = "Java model element for a source file";
      tin = "org.eclipse.core.resources.IFile";
      tout = "org.eclipse.jdt.core.ICompilationUnit";
      max_rank = 1;
      settings = dflt;
      is_desired = code_has [ "createCompilationUnitFrom" ];
    };
    {
      id = 16;
      description = "Name of a zip entry";
      tin = "java.util.zip.ZipEntry";
      tout = "java.lang.String";
      max_rank = 2;
      settings = dflt;
      is_desired = code_has [ ".getName()" ];
    };
    {
      id = 17;
      description = "Shell that hosts a table viewer";
      tin = "org.eclipse.jface.viewers.TableViewer";
      tout = "org.eclipse.swt.widgets.Shell";
      max_rank = 3;
      settings = dflt;
      is_desired = code_has [ ".getShell()" ];
    };
    {
      id = 18;
      description = "Iterate a zip file's entries (mined legacy cast)";
      tin = "java.util.zip.ZipFile";
      tout = "java.util.zip.ZipEntry";
      max_rank = 5;
      settings = slack2;
      is_desired = code_has [ ".entries()"; "(ZipEntry)" ];
    };
    {
      id = 20;
      description = "Get the launch manager";
      tin = "void";
      tout = "org.eclipse.debug.core.ILaunchManager";
      max_rank = 1;
      settings = dflt;
      is_desired = code_has [ "DebugPlugin.getDefault()"; "getLaunchManager()" ];
    };
    {
      id = 21;
      description = "Editable copy of a launch configuration";
      tin = "org.eclipse.debug.core.ILaunchConfiguration";
      tout = "org.eclipse.debug.core.ILaunchConfigurationWorkingCopy";
      max_rank = 2;
      settings = dflt;
      is_desired = code_has [ ".getWorkingCopy()" ];
    };
    {
      id = 22;
      description = "Write to a new console";
      tin = "java.lang.String";
      tout = "org.eclipse.ui.console.MessageConsoleStream";
      max_rank = 3;
      settings = dflt;
      is_desired = code_has [ "new MessageConsole"; "newMessageStream()" ];
    };
    {
      id = 23;
      (* the builder itself becomes a free variable, produced by the next
         row's void query — the paper's two-query composition *)
      description = "Parse an XML document from a URI string";
      tin = "java.lang.String";
      tout = "org.w3c.dom.Document";
      max_rank = 1;
      settings = dflt;
      is_desired = code_has [ ".parse("; "DocumentBuilder receiver; // free variable" ];
    };
    {
      id = 28;
      description = "Produce the document builder (void query)";
      tin = "void";
      tout = "javax.xml.parsers.DocumentBuilder";
      max_rank = 1;
      settings = dflt;
      is_desired =
        code_has [ "DocumentBuilderFactory.newInstance()"; "newDocumentBuilder()" ];
    };
    {
      id = 24;
      description = "Open a JDBC connection";
      tin = "java.lang.String";
      tout = "java.sql.Connection";
      max_rank = 1;
      settings = dflt;
      is_desired = code_has [ "DriverManager.getConnection" ];
    };
    {
      id = 25;
      description = "Run a query over a connection";
      tin = "java.sql.Connection";
      tout = "java.sql.ResultSet";
      max_rank = 3;
      settings = dflt;
      is_desired = code_has [ "executeQuery" ];
    };
    {
      id = 26;
      description = "Root element of a document";
      tin = "org.w3c.dom.Document";
      tout = "org.w3c.dom.Element";
      max_rank = 1;
      settings = dflt;
      is_desired = code_has [ "getDocumentElement()" ];
    };
    {
      id = 27;
      description = "Element out of a node list (mined DOM cast)";
      tin = "org.w3c.dom.NodeList";
      tout = "org.w3c.dom.Element";
      max_rank = 2;
      settings = dflt;
      is_desired = code_has [ ".item("; "(Element)" ];
    };
    {
      id = 29;
      (* the DefaultMutableTreeNode(Object) constructor gives many shorter
         wrap-anything candidates, so the mined selection route needs the
         wider m+2 search and a longer page — another crowded query *)
      description = "Selected tree node via the selection path (mined)";
      tin = "javax.swing.JTree";
      tout = "javax.swing.tree.DefaultMutableTreeNode";
      max_rank = 15;
      settings = { dflt with Prospector.Query.slack = 2; max_results = 20 };
      is_desired =
        code_has [ "getSelectionPath()"; "getLastPathComponent()"; "(DefaultMutableTreeNode)" ];
    };
    {
      id = 30;
      description = "Editable model behind a table (mined)";
      tin = "javax.swing.JTable";
      tout = "javax.swing.table.DefaultTableModel";
      max_rank = 2;
      settings = dflt;
      is_desired = code_has [ ".getModel()"; "(DefaultTableModel)" ];
    };
    {
      id = 31;
      description = "Content pane of a frame";
      tin = "javax.swing.JFrame";
      tout = "java.awt.Container";
      max_rank = 2;
      settings = dflt;
      is_desired = code_has [ "getContentPane()" ];
    };
    {
      id = 32;
      description = "Button with a label";
      tin = "java.lang.String";
      tout = "javax.swing.JButton";
      max_rank = 1;
      settings = dflt;
      is_desired = code_has [ "new JButton" ];
    };
    {
      id = 19;
      description = "Changed file from a resource-change event (mined)";
      tin = "org.eclipse.core.resources.IResourceChangeEvent";
      tout = "org.eclipse.core.resources.IFile";
      max_rank = 1;
      settings = dflt;
      is_desired = code_has [ "getDelta()"; "getResource()"; "(IFile)" ];
    };
  ]

type measured = {
  problem : t;
  rank : int option;
  time_s : float;
}

let run_one ~graph ~hierarchy p =
  let q = Query.query p.tin p.tout in
  let t0 = Unix.gettimeofday () in
  let results = Query.run ~settings:p.settings ~graph ~hierarchy q in
  let time_s = Unix.gettimeofday () -. t0 in
  let rank =
    List.mapi (fun i r -> (i + 1, r)) results
    |> List.find_opt (fun (_, r) -> p.is_desired r)
    |> Option.map fst
  in
  { problem = p; rank; time_s }

let run_all ~graph ~hierarchy () = List.map (run_one ~graph ~hierarchy) all

let ok m = match m.rank with Some r -> r <= m.problem.max_rank | None -> false
