module Query = Prospector.Query
module Assist = Prospector.Assist

type t = {
  id : int;
  title : string;
  statement : string;
  vars : (string * string) list;
  tout : string;
  baseline_tout : string option;
  is_desired : Prospector.Query.result -> bool;
  base_minutes : float;
  paper_speedup : float;
}

let contains = Prospector.Util.contains

let code_has subs (r : Query.result) =
  List.for_all (fun sub -> contains ~sub r.Query.code) subs

let code_has_any subs (r : Query.result) =
  List.exists (fun sub -> contains ~sub r.Query.code) subs

let all =
  [
    {
      id = 1;
      title = "Convert Enumeration to Iterator";
      statement =
        "An old Java API, written before Java 1.2, has returned an \
         Enumeration. Convert it to an Iterator.";
      vars = [ ("en", "java.util.Enumeration") ];
      tout = "java.util.Iterator";
      baseline_tout = None;
      is_desired = code_has_any [ "asIterator"; "EnumerationIterator" ];
      base_minutes = 14.0;
      paper_speedup = 2.0;
    };
    {
      id = 2;
      title = "Play a sound file at a URL";
      statement =
        "The Java API supports reading URLs as if they were files, and \
         playing sound files or audio clips. Play the sound file at a \
         particular URL, given as a String.";
      vars = [ ("url", "java.lang.String") ];
      tout = "java.applet.AudioClip";
      baseline_tout = None;
      is_desired = code_has [ "newAudioClip"; "new URL" ];
      base_minutes = 38.0;
      paper_speedup = 2.0;
    };
    {
      id = 3;
      title = "Get the active editor part";
      statement =
        "Editors are represented by subclasses of IEditorPart. Retrieve \
         the editor part that represents the active editor from IWorkbench.";
      vars = [ ("workbench", "org.eclipse.ui.IWorkbench") ];
      tout = "org.eclipse.ui.IEditorPart";
      baseline_tout = None;
      is_desired =
        code_has [ "getActiveWorkbenchWindow()"; "getActivePage()"; "getActiveEditor()" ];
      base_minutes = 24.0;
      paper_speedup = 2.0;
    };
    {
      id = 4;
      title = "Get an image from the shared image cache";
      statement =
        "Eclipse plugins share common images through a shared image class \
         of type ImageRegistry. Get an image from the shared image cache.";
      vars = [ ("workbench", "org.eclipse.ui.IWorkbench") ];
      tout = "org.eclipse.jface.resource.ImageRegistry";
      baseline_tout = Some "org.eclipse.swt.graphics.Image";
      is_desired = code_has [ "getImageRegistry()" ];
      base_minutes = 16.0;
      paper_speedup = 1.0;
    };
  ]

let parse_ty = Javamodel.Jtype.ref_of_string

let tool_rank ~graph ~hierarchy p =
  let ctx =
    {
      Assist.vars = List.map (fun (n, ty) -> (n, parse_ty ty)) p.vars;
      expected = parse_ty p.tout;
    }
  in
  let suggestions = Assist.suggest ~graph ~hierarchy ctx in
  List.mapi (fun i s -> (i + 1, s)) suggestions
  |> List.find_opt (fun (_, s) -> p.is_desired s.Assist.result)
  |> Option.map fst
