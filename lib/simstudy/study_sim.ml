module Rng = Corpusgen.Rng

type arm = Tool | Baseline

type run = {
  user : int;
  problem : int;
  arm : arm;
  minutes : float;
  outcome : Programmer.outcome;
}

type per_problem = {
  problem : int;
  baseline_mean : float;
  tool_mean : float;
  baseline_times : float list;
  tool_times : float list;
  speedup : float;
}

type summary = {
  runs : run list;
  per_problem : per_problem list;
  avg_speedup : float;
  users_faster : int;
  users_same : int;
  users_slower : int;
  tool_reuse : int;
  tool_total : int;
  baseline_reuse : int;
  baseline_total : int;
  incorrect_baseline : int;
  incorrect_tool : int;
}

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let simulate ?(constants = Programmer.default_constants) ?(users = 13) ?(seed = 2005)
    ~graph ~hierarchy problems =
  let runs = ref [] in
  for user = 1 to users do
    (* Per-user stream for ability and assignment; per-(user, problem)
       streams for the attempts, so a change in one cell's draw count
       (e.g. a different route after a model change) cannot shift the
       randomness of unrelated cells. *)
    let user_rng = Rng.create ~seed:(seed + (user * 7919)) in
    let skill = 0.6 +. Rng.float user_rng 1.0 in
    let ids = List.map (fun (p : Apidata.Study.t) -> p.Apidata.Study.id) problems in
    let shuffled = Rng.shuffle user_rng ids in
    let tool_ids = List.filteri (fun i _ -> i < List.length ids / 2) shuffled in
    List.iter
      (fun (p : Apidata.Study.t) ->
        let arm = if List.mem p.Apidata.Study.id tool_ids then Tool else Baseline in
        let rng =
          Rng.create ~seed:((seed * 1000003) + (user * 1009) + p.Apidata.Study.id)
        in
        let attempt =
          match arm with
          | Tool ->
              Programmer.solve_with_tool constants ~rng ~skill ~graph ~hierarchy p
          | Baseline ->
              Programmer.solve_baseline constants ~rng ~skill ~graph ~hierarchy p
        in
        runs :=
          {
            user;
            problem = p.Apidata.Study.id;
            arm;
            minutes = attempt.Programmer.minutes;
            outcome = attempt.Programmer.outcome;
          }
          :: !runs)
      problems
  done;
  let runs = List.rev !runs in
  let per_problem =
    List.map
      (fun (p : Apidata.Study.t) ->
        let id = p.Apidata.Study.id in
        let times arm =
          List.filter_map
            (fun (r : run) ->
              if r.problem = id && r.arm = arm then Some r.minutes else None)
            runs
        in
        let bt = times Baseline and tt = times Tool in
        {
          problem = id;
          baseline_mean = mean bt;
          tool_mean = mean tt;
          baseline_times = bt;
          tool_times = tt;
          speedup = (if mean tt > 0.0 then mean bt /. mean tt else 1.0);
        })
      problems
  in
  (* Per-user comparison: total time with the tool vs without. *)
  let faster = ref 0 and same = ref 0 and slower = ref 0 in
  let speedups = ref [] in
  for user = 1 to users do
    let total arm =
      List.fold_left
        (fun acc (r : run) ->
          if r.user = user && r.arm = arm then acc +. r.minutes else acc)
        0.0 runs
    in
    let bt = total Baseline and tt = total Tool in
    if tt > 0.0 && bt > 0.0 then begin
      let ratio = bt /. tt in
      speedups := ratio :: !speedups;
      if ratio > 1.1 then incr faster
      else if ratio < 0.9 then incr slower
      else incr same
    end
  done;
  let count arm pred =
    List.length (List.filter (fun (r : run) -> r.arm = arm && pred r.outcome) runs)
  in
  {
    runs;
    per_problem;
    avg_speedup = mean !speedups;
    users_faster = !faster;
    users_same = !same;
    users_slower = !slower;
    tool_reuse = count Tool (fun o -> o = Programmer.Correct_reuse);
    tool_total = count Tool (fun _ -> true);
    baseline_reuse = count Baseline (fun o -> o = Programmer.Correct_reuse);
    baseline_total = count Baseline (fun _ -> true);
    incorrect_baseline = count Baseline (fun o -> o = Programmer.Incorrect);
    incorrect_tool = count Tool (fun o -> o = Programmer.Incorrect);
  }

let render_figure8 s =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Figure 8 — time spent coding (minutes), per problem and arm\n";
  List.iter
    (fun pp ->
      Buffer.add_string buf (Printf.sprintf "\nProblem %d:\n" pp.problem);
      let line label times m =
        Buffer.add_string buf
          (Printf.sprintf "  %-10s mean %5.1f | %s\n" label m
             (String.concat " "
                (List.map (fun t -> Printf.sprintf "%4.1f" t)
                   (List.sort compare times))))
      in
      line "baseline" pp.baseline_times pp.baseline_mean;
      line "prospector" pp.tool_times pp.tool_mean;
      Buffer.add_string buf (Printf.sprintf "  speedup %.2fx\n" pp.speedup))
    s.per_problem;
  Buffer.add_string buf
    (Printf.sprintf
       "\nusers faster with tool: %d, same: %d, slower: %d; average speedup %.2fx\n"
       s.users_faster s.users_same s.users_slower s.avg_speedup);
  Buffer.add_string buf
    (Printf.sprintf "reuse with tool: %d/%d; without: %d/%d; incorrect: %d tool, %d baseline\n"
       s.tool_reuse s.tool_total s.baseline_reuse s.baseline_total s.incorrect_tool
       s.incorrect_baseline);
  Buffer.contents buf

(* ---------- refine-session trials ---------- *)

module Esession = Prospector_eval.Session

type refine_run = {
  candidates : int;
  questions : int;
  to_rank1 : bool;
  live_at_end : int;
}

let refine_results (results : Prospector.Query.result list) =
  match results with
  | [] -> None
  | rank1 :: _ ->
      let cands =
        List.map (fun r -> { Esession.source = None; result = r }) results
      in
      let st = ref (Esession.start cands) in
      let questions = ref 0 in
      let continue = ref true in
      while !continue do
        match Programmer.answer_probe !st ~desired:rank1 with
        | None -> continue := false
        | Some choice -> (
            match Esession.answer !st ~choice with
            | Ok st' ->
                incr questions;
                st := st'
            | Error _ -> continue := false)
      done;
      Some
        {
          candidates = List.length results;
          questions = !questions;
          to_rank1 = Programmer.same_result (Esession.best !st).Esession.result rank1;
          live_at_end = List.length (Esession.live !st);
        }

let refine_table1 ?settings ~graph ~hierarchy () =
  List.filter_map
    (fun (p : Apidata.Problems.t) ->
      let m = Apidata.Problems.run_one ?settings ~graph ~hierarchy p in
      Option.map (fun r -> (p, r)) (refine_results m.Apidata.Problems.results))
    Apidata.Problems.all
