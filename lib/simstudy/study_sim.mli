(** The user-study runner (Section 6 / Figure 8).

    Thirteen simulated users each attempt all four problems; for each user
    a random two of the four are solved with PROSPECTOR, the rest without,
    mirroring the paper's random assignment. The summary computes exactly
    the quantities the paper reports: per-problem time distributions for
    both arms, the average speedup (paper: 1.9), the per-user
    faster/same/slower comparison (paper: 10 / 2 / 1), and the outcome
    classification (reuse vs reimplementation vs incorrect). *)

type arm = Tool | Baseline

type run = {
  user : int;
  problem : int;  (** problem id, 1..4 *)
  arm : arm;
  minutes : float;
  outcome : Programmer.outcome;
}

type per_problem = {
  problem : int;
  baseline_mean : float;
  tool_mean : float;
  baseline_times : float list;
  tool_times : float list;
  speedup : float;
}

type summary = {
  runs : run list;
  per_problem : per_problem list;
  avg_speedup : float;  (** mean over users of (their baseline total / tool total) *)
  users_faster : int;
  users_same : int;  (** within 10% *)
  users_slower : int;
  tool_reuse : int;  (** tool-arm runs solved by reuse *)
  tool_total : int;
  baseline_reuse : int;
  baseline_total : int;
  incorrect_baseline : int;
  incorrect_tool : int;
}

val simulate :
  ?constants:Programmer.constants ->
  ?users:int ->
  ?seed:int ->
  graph:Prospector.Graph.t ->
  hierarchy:Javamodel.Hierarchy.t ->
  Apidata.Study.t list ->
  summary
(** Defaults: 13 users, seed 2005. *)

val render_figure8 : summary -> string
(** A textual Figure 8: per-problem time scatter for both arms with means —
    the series the paper plots. *)

(** {2 Refine-session trials}

    The spec-by-example arm: instead of reading the ranked list, the
    simulated programmer answers probes ({!Programmer.answer_probe},
    desired = the rank-1 result they would have picked manually) until the
    session converges. [to_rank1] must hold on every trial — refine may
    never change the answer, only shorten the path to it. *)

type refine_run = {
  candidates : int;  (** k, the ranked candidates the session started from *)
  questions : int;  (** probes answered before convergence *)
  to_rank1 : bool;  (** the survivor is the original rank-1 result *)
  live_at_end : int;
      (** 1 = fully disambiguated; more = no probe could split the rest
          (opaque tail) and rank order broke the tie *)
}

val refine_results : Prospector.Query.result list -> refine_run option
(** Run one session over a ranked result list; [None] on an empty list. *)

val refine_table1 :
  ?settings:Prospector.Query.settings ->
  graph:Prospector.Graph.t ->
  hierarchy:Javamodel.Hierarchy.t ->
  unit ->
  (Apidata.Problems.t * refine_run) list
(** One refine session per Table 1 problem that returns any results. *)
