(** The simulated-programmer cost model behind the Figure 8 reproduction.

    A real user study is impossible in this environment, so the two arms of
    the experiment are modeled — but asymmetrically grounded in the real
    system:

    - the {b with-tool} arm is driven by the {e actual} ranks the engine
      produces for each study problem's context (invoke assist, read
      suggestions in rank order, insert, verify);
    - the {b baseline} arm walks the {e actual} signature graph along the
      known solution path, paying a member-scanning cost proportional to
      each class's real out-degree, and a documentation-search cost for
      every "hidden link" — an elementary jungloid (like
      [JavaCore.createCompilationUnitFrom]) that class browsing cannot
      reveal because it lives on a different class than the object in hand
      (the paper's Section 1 observation). A programmer whose budget runs
      out gives up on reuse and reimplements, possibly incorrectly — the
      behavior the paper reports for Problems 1 and 3.

    All constants are global, documented, and identical across problems:
    per-problem difficulty differences {e emerge} from the graph. *)

type constants = {
  minutes_per_member_scanned : float;
  doc_search_minutes : float;  (** cost of one documentation hunt *)
  doc_success_probability : float;  (** chance a hunt reveals the hidden link *)
  understand_fraction : float;
      (** reading/understanding the problem, as a fraction of base work —
          paid by both arms *)
  inspect_minutes : float;  (** reading one tool suggestion *)
  invoke_minutes : float;  (** invoking assist and typing the context *)
  integrate_minutes : float;  (** inserting and verifying the chosen snippet *)
  max_doc_attempts : int;
      (** documentation hunts per hidden link before giving up on reuse *)
  reimplement_minutes : float;
  reimplement_bug_probability : float;
  detour_probability_per_member : float;
      (** chance each scanned member lures the programmer down a wrong path *)
  detour_minutes : float;  (** mean cost of one wrong turn *)
}

val default_constants : constants

type outcome = Correct_reuse | Correct_reimplemented | Incorrect

type attempt = {
  minutes : float;
  outcome : outcome;
}

val solve_with_tool :
  constants ->
  rng:Corpusgen.Rng.t ->
  skill:float ->
  graph:Prospector.Graph.t ->
  hierarchy:Javamodel.Hierarchy.t ->
  Apidata.Study.t ->
  attempt

val solve_baseline :
  constants ->
  rng:Corpusgen.Rng.t ->
  skill:float ->
  graph:Prospector.Graph.t ->
  hierarchy:Javamodel.Hierarchy.t ->
  Apidata.Study.t ->
  attempt

(** {2 Probe answering}

    The refine-session arm of the simulation: the programmer has the
    desired solution in mind (operationally: a known result, normally the
    one they would have picked by reading the ranked list) and answers
    each probe with the branch whose candidates include it. *)

val same_result : Prospector.Query.result -> Prospector.Query.result -> bool
(** Identity of ranked results: same expression, same generated code. *)

val answer_probe :
  Prospector_eval.Session.t ->
  desired:Prospector.Query.result ->
  int option
(** The choice index whose branch contains [desired]; [None] when the
    session has no pending question (converged). If [desired] is not in
    any branch — it was eliminated by an earlier inconsistent answer —
    the programmer picks branch 0 (the largest). *)
