module Jtype = Javamodel.Jtype
module Graph = Prospector.Graph
module Elem = Prospector.Elem
module Query = Prospector.Query
module Assist = Prospector.Assist
module Rng = Corpusgen.Rng

type constants = {
  minutes_per_member_scanned : float;
  doc_search_minutes : float;
  doc_success_probability : float;
  understand_fraction : float;
  inspect_minutes : float;
  invoke_minutes : float;
  integrate_minutes : float;
  max_doc_attempts : int;
  reimplement_minutes : float;
  reimplement_bug_probability : float;
  detour_probability_per_member : float;
  detour_minutes : float;
}

let default_constants =
  {
    minutes_per_member_scanned = 0.15;
    doc_search_minutes = 4.0;
    doc_success_probability = 0.45;
    understand_fraction = 0.25;
    inspect_minutes = 0.6;
    invoke_minutes = 0.5;
    integrate_minutes = 2.5;
    max_doc_attempts = 3;
    reimplement_minutes = 14.0;
    reimplement_bug_probability = 0.3;
    detour_probability_per_member = 0.03;
    detour_minutes = 4.0;
  }

type outcome = Correct_reuse | Correct_reimplemented | Incorrect

type attempt = {
  minutes : float;
  outcome : outcome;
}

let parse_ty = Jtype.ref_of_string

(* Shared problem-understanding cost, paid by both arms. *)
let understand c (p : Apidata.Study.t) =
  c.understand_fraction *. p.Apidata.Study.base_minutes

(* A hidden link is an elementary jungloid that member browsing on the
   value in hand cannot reveal: static calls and constructors live on
   another class, and an instance call whose input is a parameter needs a
   receiver the programmer does not have yet (the paper's JavaCore
   observation in Section 1). *)
let is_hidden_link = function
  | Elem.Static_call _ | Elem.Ctor_call _ -> true
  | Elem.Instance_call { input = Elem.Param _; _ } -> true
  | Elem.Instance_call _ | Elem.Field_access _ | Elem.Widen _ | Elem.Downcast _ ->
      false

let out_degree graph ty =
  match Graph.find_type_node graph ty with
  | Some n -> List.length (Graph.succs graph n)
  | None -> 10

(* Expected unaided browsing cost of a route — used to pick the route a
   no-tool programmer gravitates to (they find what is browsable). *)
let expected_browse_cost c graph (j : Prospector.Jungloid.t) =
  let cur = ref (Prospector.Jungloid.input_type j) in
  List.fold_left
    (fun acc e ->
      let deg = float_of_int (out_degree graph !cur) in
      let scan = deg *. c.minutes_per_member_scanned in
      let detour = deg *. c.detour_probability_per_member *. c.detour_minutes in
      let hunt =
        if is_hidden_link e then c.doc_search_minutes /. c.doc_success_probability
        else 0.0
      in
      cur := Elem.output_type e;
      acc +. scan +. detour +. hunt)
    0.0 j.Prospector.Jungloid.elems

(* The routes an unaided programmer might converge on: the engine's
   suggestions for the problem's baseline framing. *)
let baseline_routes ~graph ~hierarchy (p : Apidata.Study.t) =
  let tout =
    Option.value ~default:p.Apidata.Study.tout p.Apidata.Study.baseline_tout
  in
  let ctx =
    {
      Assist.vars = List.map (fun (n, ty) -> (n, parse_ty ty)) p.Apidata.Study.vars;
      expected = parse_ty tout;
    }
  in
  List.map (fun s -> s.Assist.result.Query.jungloid) (Assist.suggest ~graph ~hierarchy ctx)

let reimplement c ~rng ~skill base =
  let bug = Rng.bool rng c.reimplement_bug_probability in
  {
    minutes = skill *. (base +. c.reimplement_minutes +. Rng.float rng 6.0);
    outcome = (if bug then Incorrect else Correct_reimplemented);
  }

let solve_baseline c ~rng ~skill ~graph ~hierarchy (p : Apidata.Study.t) =
  let base = understand c p in
  match baseline_routes ~graph ~hierarchy p with
  | [] -> reimplement c ~rng ~skill base
  | routes ->
      (* Gravitate to the most browsable route. *)
      let route =
        List.fold_left
          (fun best j ->
            if expected_browse_cost c graph j < expected_browse_cost c graph best then j
            else best)
          (List.hd routes) (List.tl routes)
      in
      let minutes = ref (base +. Rng.float rng 2.0) in
      let gave_up = ref false in
      let cur = ref (Prospector.Jungloid.input_type route) in
      List.iter
        (fun e ->
          if not !gave_up then begin
            let deg = out_degree graph !cur in
            minutes :=
              !minutes +. (float_of_int deg *. c.minutes_per_member_scanned);
            (* wrong turns while scanning a wide class *)
            for _ = 1 to deg do
              if Rng.bool rng c.detour_probability_per_member then
                minutes := !minutes +. (c.detour_minutes *. (0.5 +. Rng.float rng 1.0))
            done;
            if is_hidden_link e then begin
              let found = ref false in
              let attempts = ref 0 in
              while (not !found) && not !gave_up do
                minutes := !minutes +. c.doc_search_minutes;
                incr attempts;
                if Rng.bool rng c.doc_success_probability then found := true
                else if !attempts >= c.max_doc_attempts then gave_up := true
              done
            end;
            cur := Elem.output_type e
          end)
        route.Prospector.Jungloid.elems;
      if !gave_up then
        let r = reimplement c ~rng ~skill 0.0 in
        { r with minutes = (skill *. !minutes) +. r.minutes }
      else
        {
          minutes = skill *. (!minutes +. c.integrate_minutes);
          outcome = Correct_reuse;
        }

let solve_with_tool c ~rng ~skill ~graph ~hierarchy (p : Apidata.Study.t) =
  let base = understand c p in
  match Apidata.Study.tool_rank ~graph ~hierarchy p with
  | Some rank ->
      let minutes =
        skill
        *. (base +. c.invoke_minutes
           +. (float_of_int rank *. c.inspect_minutes)
           +. c.integrate_minutes
           +. Rng.float rng 2.0)
      in
      { minutes; outcome = Correct_reuse }
  | None ->
      (* The tool has nothing: fall back to unaided behavior, having paid
         the invocation. *)
      let fallback = solve_baseline c ~rng ~skill ~graph ~hierarchy p in
      { fallback with minutes = fallback.minutes +. (skill *. c.invoke_minutes) }

(* ---------- probe answering (refine sessions) ---------- *)

module Esession = Prospector_eval.Session
module Eprobe = Prospector_eval.Probe

let same_result (a : Query.result) (b : Query.result) =
  String.equal
    (Prospector.Jungloid.to_expression a.Query.jungloid)
    (Prospector.Jungloid.to_expression b.Query.jungloid)
  && String.equal a.Query.code b.Query.code

let answer_probe (st : Esession.t) ~(desired : Query.result) : int option =
  match Esession.question st with
  | None -> None
  | Some q ->
      let live = Array.of_list (Esession.live st) in
      let contains (g : Eprobe.group) =
        List.exists
          (fun i -> same_result live.(i).Esession.result desired)
          g.Eprobe.members
      in
      let rec find i = function
        | [] -> Some 0 (* desired is gone: shrug and follow the crowd *)
        | g :: gs -> if contains g then Some i else find (i + 1) gs
      in
      find 0 q.Eprobe.groups
