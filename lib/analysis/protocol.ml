(* Mined typestate protocols. See protocol.mli for the model and the
   derivation of the deviance threshold from the Laplace smoothing floor. *)

module Tast = Minijava.Tast

type producer =
  | Cast
  | Call of string
  | New of string
  | Field of string
  | Param
  | Unknown

let producer_string = function
  | Cast -> "cast"
  | Call s -> "call " ^ s
  | New s -> "new " ^ s
  | Field s -> "field " ^ s
  | Param -> "param"
  | Unknown -> "unknown"

type event = {
  ev_meth : string;
  ev_loc : Tast.loc;
  ev_void : bool;
  ev_discarded : bool;
}

type sequence = {
  seq_type : string;
  seq_producer : producer;
  seq_loc : Tast.loc;
  seq_events : event list;
}

(* One automaton per receiver type. States are abstract phases: the
   distinguished fresh phase plus one phase per observed method ("the
   object right after [m]"). The tables below are sufficient statistics
   for every transition probability we expose:
   - [a_starts m]: fresh --m--> phase(m), i.e. sequences whose first call
     is [m];
   - [a_pairs (p, n)]: phase(p) --n--> phase(n), i.e. occurrences of [n]
     directly after [p] on the same receiver;
   - [a_ends m]: phase(m) --end, i.e. occurrences of [m] that close their
     receiver's sequence;
   - [a_occ m]: total occurrences of [m] = outgoing observations of
     phase(m) (each occurrence is followed by exactly one thing: another
     call or the end). *)
type automaton = {
  a_sequences : int;
  a_starts : (string, int) Hashtbl.t;
  a_pairs : (string * string, int) Hashtbl.t;
  a_ends : (string, int) Hashtbl.t;
  a_occ : (string, int) Hashtbl.t;
}

type model = { automata : (string, automaton) Hashtbl.t; m_min_evidence : int }

let default_min_evidence = 2

let empty =
  { automata = Hashtbl.create 1; m_min_evidence = default_min_evidence }

let bump tbl key n =
  let prev = try Hashtbl.find tbl key with Not_found -> 0 in
  Hashtbl.replace tbl key (prev + n)

let fresh_automaton () =
  {
    a_sequences = 0;
    a_starts = Hashtbl.create 7;
    a_pairs = Hashtbl.create 7;
    a_ends = Hashtbl.create 7;
    a_occ = Hashtbl.create 7;
  }

let learn ?(min_evidence = default_min_evidence) sequences =
  let automata = Hashtbl.create 16 in
  let for_type t =
    match Hashtbl.find_opt automata t with
    | Some a -> a
    | None ->
        let a = fresh_automaton () in
        Hashtbl.replace automata t a;
        a
  in
  List.iter
    (fun seq ->
      let a = for_type seq.seq_type in
      Hashtbl.replace automata seq.seq_type
        { a with a_sequences = a.a_sequences + 1 };
      (match seq.seq_events with
      | [] -> ()
      | first :: _ -> bump a.a_starts first.ev_meth 1);
      let rec walk = function
        | [] -> ()
        | [ last ] ->
            bump a.a_occ last.ev_meth 1;
            bump a.a_ends last.ev_meth 1
        | prev :: (next :: _ as rest) ->
            bump a.a_occ prev.ev_meth 1;
            bump a.a_pairs (prev.ev_meth, next.ev_meth) 1;
            walk rest
      in
      walk seq.seq_events)
    sequences;
  { automata; m_min_evidence = min_evidence }

let min_evidence m = m.m_min_evidence
let automaton m t = Hashtbl.find_opt m.automata t

let modeled_types m =
  Hashtbl.fold (fun t _ acc -> t :: acc) m.automata [] |> List.sort compare

let observations m ~tname =
  match automaton m tname with None -> 0 | Some a -> a.a_sequences

let modeled m ~tname = observations m ~tname >= m.m_min_evidence

let sequence_count m =
  Hashtbl.fold (fun _ a acc -> acc + a.a_sequences) m.automata 0

let transition_count m =
  Hashtbl.fold
    (fun _ a acc ->
      acc + Hashtbl.length a.a_starts + Hashtbl.length a.a_pairs
      + Hashtbl.length a.a_ends)
    m.automata 0

let occ a meth = try Hashtbl.find a.a_occ meth with Not_found -> 0

let known_method m ~tname ~meth =
  match automaton m tname with None -> false | Some a -> occ a meth > 0

let methods m ~tname =
  match automaton m tname with
  | None -> []
  | Some a ->
      Hashtbl.fold (fun meth n acc -> (meth, n) :: acc) a.a_occ []
      |> List.sort compare

let table_count find m ~tname key =
  match automaton m tname with
  | None -> 0
  | Some a -> ( match find a key with Some n -> n | None -> 0)

let occurrence_count m ~tname ~meth =
  table_count (fun a k -> Hashtbl.find_opt a.a_occ k) m ~tname meth

let start_count m ~tname ~meth =
  table_count (fun a k -> Hashtbl.find_opt a.a_starts k) m ~tname meth

let end_count m ~tname ~meth =
  table_count (fun a k -> Hashtbl.find_opt a.a_ends k) m ~tname meth

let pair_count m ~tname ~prev ~next =
  table_count (fun a k -> Hashtbl.find_opt a.a_pairs k) m ~tname (prev, next)

(* Alphabet size [V] for smoothing: distinct observed methods of the
   type. The fresh phase and every phase(m) share it, so one unseen floor
   [1/(n+V+1)] applies uniformly. *)
let distinct a = Hashtbl.length a.a_occ

let laplace ~count ~total ~distinct =
  float_of_int (count + 1) /. float_of_int (total + distinct + 1)

let start_prob m ~tname ~meth =
  match automaton m tname with
  | None -> 1.0
  | Some a ->
      let count = try Hashtbl.find a.a_starts meth with Not_found -> 0 in
      laplace ~count ~total:a.a_sequences ~distinct:(distinct a)

let pair_prob m ~tname ~prev ~next =
  match automaton m tname with
  | None -> 1.0
  | Some a ->
      let count =
        try Hashtbl.find a.a_pairs (prev, next) with Not_found -> 0
      in
      laplace ~count ~total:(occ a prev) ~distinct:(distinct a)

(* A zero-count transition out of a phase with [n] observations has
   smoothed probability 1/(n+V+1); it crosses the deviance floor exactly
   when n >= min_evidence. The [count = 0 && n >= min_evidence] test below
   is that comparison with the common factor cancelled. *)
let start_deviant m ~tname ~meth =
  match automaton m tname with
  | None -> false
  | Some a ->
      occ a meth > 0
      && a.a_sequences >= m.m_min_evidence
      && not (Hashtbl.mem a.a_starts meth)

let pair_deviant m ~tname ~prev ~next =
  match automaton m tname with
  | None -> false
  | Some a ->
      occ a prev >= m.m_min_evidence
      && occ a next > 0
      && not (Hashtbl.mem a.a_pairs (prev, next))

(* Most common entry in [tbl] restricted by [select]; ties break towards
   the lexicographically smallest key so messages are deterministic. *)
let most_common fold =
  fold (fun key count best ->
      match best with
      | Some (_, bn) when bn > count -> best
      | Some (bk, bn) when bn = count && bk <= key -> best
      | _ -> Some (key, count))

let common_successor a prev =
  most_common
    (fun f init ->
      Hashtbl.fold
        (fun (p, n) count acc -> if p = prev then f n count acc else acc)
        a.a_pairs init)
    None
  |> Option.map fst

let must_follow m ~tname ~meth =
  match automaton m tname with
  | None -> None
  | Some a ->
      if
        occ a meth >= m.m_min_evidence
        && not (Hashtbl.mem a.a_ends meth)
      then common_successor a meth
      else None

let always_terminal m ~tname ~meth =
  match automaton m tname with
  | None -> false
  | Some a ->
      let n = occ a meth in
      n >= m.m_min_evidence
      && (try Hashtbl.find a.a_ends meth with Not_found -> 0) = n

let common_successor m ~tname ~meth =
  match automaton m tname with
  | None -> None
  | Some a -> common_successor a meth

let start_suggestion m ~tname =
  match automaton m tname with
  | None -> None
  | Some a ->
      most_common
        (fun f init -> Hashtbl.fold f a.a_starts init)
        None
      |> Option.map fst
