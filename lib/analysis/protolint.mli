(** Protocol lint: checks receiver call sequences and synthesized
    jungloids against a mined typestate model ([Protocol]).

    Client-code pass ([check], codes P00x) — over sequences reconstructed
    by [Mining.Protomine]:
    - [P001] (warning) rare transition: a method-pair the corpus never
      performs on this type, at a call site with enough evidence.
    - [P002] (warning) must-follow call missing: the sequence ends at a
      method the corpus always follows with another call.
    - [P003] (warning) use before producing call: the first call on the
      object is one no corpus client makes first.
    - [P004] (info) dead terminal call: the protocol-closing call's result
      is discarded.
    - [P005] (info) unknown method on a modeled type: the corpus never
      calls this method on this type at all.
    - [P006] (warning) cast-then-protocol-violation: a downcast-produced
      object whose first call is start-deviant ([P003] specialized to the
      paper's mined-downcast pattern, reported instead of [P003]).

    Jungloid vetting ([vet], codes J01x) — over a chain about to be shown
    to the user. Only objects the chain itself produces are checked (the
    query input's provenance is unknown, and the final output's life
    continues in user code):
    - [J010] (warning) the single call the chain makes on a synthesized
      intermediate is one no corpus client makes first on that type.
    - [J011] (warning) must-follow call left dangling: the chain abandons
      an object right after a call the corpus always follows up.
    - [J012] (warning) downcast-then-deviant call ([J010] where the
      intermediate came from the chain's own downcast). *)

module Jungloid = Prospector.Jungloid

val check : Protocol.model -> Protocol.sequence list -> Diagnostic.t list
(** Sorted with [Diagnostic.compare], duplicates removed. All checks gate
    on the model's [min_evidence], so an empty model accepts everything. *)

val vet : Protocol.model -> Jungloid.t -> Diagnostic.t list
(** Subjects are chain steps in [Verify]'s ["step i (elem)"] style. *)

val violations : Protocol.model -> Jungloid.t -> string list
(** {!vet} rendered one line per finding — the shape [Query.run]'s
    [?protocol_check] closure wants. Empty means the chain is clean. *)
