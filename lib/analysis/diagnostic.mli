(** The shared diagnostic currency of the analyzer: every pass — jungloid
    verifier, API-model lint, corpus lint, codegen re-check — reports
    findings as values of {!t}, so the CLI, the mining gate, and the tests
    all consume one shape. *)

type severity = Error | Warning | Info

type where =
  | Source of Minijava.Tast.loc  (** a position in a corpus source file *)
  | Subject of string
      (** a non-source subject: an API-model element, a method key, or a
          step of a jungloid chain *)

type t = {
  severity : severity;
  code : string;  (** stable machine code, e.g. ["J003"], ["C001"] *)
  where : where;
  message : string;
}

val at : severity -> code:string -> loc:Minijava.Tast.loc -> string -> t
(** A diagnostic anchored at a source position. *)

val about : severity -> code:string -> subject:string -> string -> t
(** A diagnostic about a model element or chain step. *)

val severity_string : severity -> string
val is_error : t -> bool
val errors : t list -> t list
val count : severity -> t list -> int

val compare : t -> t -> int
(** Order by location (file, line, col / subject), then severity, then
    code — the order reports are printed in. *)

val to_string : t -> string
(** ["file:line:col: error[C001]: message"] or
    ["subject: warning[A002]: message"]. *)

val to_json : t -> string
(** One JSON object; all fields, position split out for machine use. *)

val list_to_json : t list -> string
(** [{"diagnostics": [...], "errors": n, "warnings": n, "infos": n}] *)

val summary : t list -> string
(** ["2 errors, 1 warning, 0 infos"] *)
