(** The jungloid soundness verifier: re-typechecks a solution chain against
    the hierarchy, independently of how the search produced it.

    [Prospector.Jungloid.well_typed] only checks that adjacent steps compose
    and that conversions point the right way; this pass additionally checks
    that every member a step references actually exists with the claimed
    signature, that input slots are valid for the step kind, that
    constructed classes are instantiable, and that referenced members are
    public. It is the trusted oracle the query engine's [?verify] mode and
    [Mining.Extract]'s well-typedness check are built on.

    Codes: [J001] step does not compose; [J002] missing or mismatched
    member; [J003] widening edge does not widen; [J004] downcast to an
    unrelated type; [J005] invalid input slot for the step kind; [J006]
    non-public member (warning); [J007] no-op conversion (warning); [J008]
    constructing an interface (error) or abstract class (warning); [J009]
    opaque owner, member unverifiable (info). *)

val check : Javamodel.Hierarchy.t -> Prospector.Jungloid.t -> Diagnostic.t list
(** All findings for the chain, one step at a time; empty means the chain
    is fully verified. *)

val sound : Javamodel.Hierarchy.t -> Prospector.Jungloid.t -> bool
(** No error-severity finding (warnings and infos are allowed). This is the
    predicate behind [Query.run ~verify]. *)
