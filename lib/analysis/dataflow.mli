(** Flow-insensitive def-use and call-graph indexes over a corpus
    (Section 4.2: "a backward, interprocedural, flow-insensitive slice
    using a conservative approximation of the call graph based on the type
    hierarchy").

    Flow-insensitivity means a variable's producers are {e all} expressions
    ever assigned to it anywhere in its method, regardless of statement
    order; context-insensitivity means a parameter's producers are the
    matching arguments at {e every} call site in the corpus. *)

module Qname = Javamodel.Qname
module Tast = Minijava.Tast

type t

val build : ?flow_sensitive:bool -> Tast.program -> t
(** With [flow_sensitive] (default [false], the paper's configuration), a
    prepass records per-use reaching definitions so the slicer follows only
    assignments that can actually reach each variable use — an ablation for
    the imprecision the paper attributes to flow-insensitivity. *)

val program : t -> Tast.program

val is_flow_sensitive : t -> bool

val reaching_defs : t -> Tast.texpr -> Tast.texpr list option
(** Flow-sensitive mode only: the definitions reaching this exact [Tvar]
    use node ([None] when flow-insensitive or the node is unknown). *)

val var_producers : t -> method_key:string -> var:string -> Tast.texpr list
(** Local-variable producers: initializers and assignments within the
    method. Parameters are not included here — see {!param_producers}. *)

val param_producers : t -> method_key:string -> var:string -> (string * Tast.texpr) list
(** For a parameter (or ["this"]): the argument (or receiver) expressions at
    every corpus call site that may dispatch to the method, paired with the
    calling method's key. *)

val is_param : t -> method_key:string -> var:string -> bool

val corpus_callees : t -> recv_type:Javamodel.Jtype.t -> name:string -> arity:int -> Tast.tmeth list
(** Corpus methods a call through a receiver of this static type may
    dispatch to (type-hierarchy approximation: the receiver's class and all
    its subtypes). *)

val corpus_static_callee : t -> owner:Qname.t -> name:string -> arity:int -> Tast.tmeth option
(** A static call dispatches to exactly the named class's method, when that
    class is a corpus class. *)

val find_method : t -> key:string -> Tast.tmeth option

val field_producers : t -> owner:Qname.t -> field:string -> Tast.texpr list
(** Corpus-wide assignments to an instance field of a corpus class —
    flow-insensitive like everything else: any method of any instance may
    have stored the value. *)

val is_corpus_class : t -> Qname.t -> bool
(** Whether the class is defined by the corpus (as opposed to the API). *)

val casts : t -> (Tast.tmeth * Tast.texpr) list
(** Every reference-to-reference cast expression in the corpus, with its
    enclosing method, in deterministic order. The [texpr] is the [Tcast]
    node itself. *)
