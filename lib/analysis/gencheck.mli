(** Round-trip check for generated code: the statements [Codegen] emits for
    a jungloid are wrapped in a synthetic mini-Java method (the jungloid
    input and every reference-typed free variable become parameters),
    re-parsed, re-resolved against the same hierarchy, and run through
    {!Corpuslint} — so a rendering bug that would hand the user
    non-compiling code surfaces as a diagnostic instead.

    Codes: [G001] the wrapped code fails to parse or resolve (error);
    [G002] the jungloid renders to no statements at all (error); plus any
    [C00x] corpus-lint finding on the wrapper method. *)

val wrap : Javamodel.Hierarchy.t -> Prospector.Jungloid.t -> string option
(** The synthetic compilation unit handed to the parser; [None] when the
    jungloid renders to no result variable. Exposed for tests. *)

val check : Javamodel.Hierarchy.t -> Prospector.Jungloid.t -> Diagnostic.t list

val clean : Javamodel.Hierarchy.t -> Prospector.Jungloid.t -> bool
(** No error-severity finding. *)
