(** MiniJava corpus linter: per-method, order-approximate checks over the
    typed tree, sharing {!Dataflow}'s cast inventory and parameter index.

    The mining pipeline only trusts examples sliced from {e working} client
    code; this pass is the mechanized version of that assumption.
    Error-severity findings gate extraction ([Mining.Extract] skips cast
    sites in flagged methods), so the error rules are deliberately
    conservative: they fire only on code that cannot behave as written.

    Codes: [C001] variable used but never assigned anywhere in the method
    (error); [C002] first use textually precedes the first assignment
    (warning; suppressed inside loops); [C003] dead store — an
    unconditional assignment whose value is overwritten or never read
    (warning; suppressed inside loops and branches); [C004] unused local
    (warning); [C005] cast to a type unrelated to the expression's static
    type (error); [C006] cast to the expression's own static type (info). *)

val lint_method : Dataflow.t -> Minijava.Tast.tmeth -> Diagnostic.t list

val method_has_errors : Dataflow.t -> Minijava.Tast.tmeth -> bool
(** Whether {!lint_method} reports at least one error — the extraction
    gate's predicate. *)

val lint_program : Minijava.Tast.program -> Diagnostic.t list
(** Build the dataflow index and lint every method, in method order. *)
