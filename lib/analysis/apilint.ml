module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Member = Javamodel.Member
module Decl = Javamodel.Decl
module Hierarchy = Javamodel.Hierarchy
module Elem = Prospector.Elem
module Graph = Prospector.Graph

let rec base_prim_or_ref ty =
  match ty with
  | Jtype.Array t -> base_prim_or_ref t
  | other -> other

let is_voidish ty = match base_prim_or_ref ty with Jtype.Void -> true | _ -> false

let param_sig params = List.map (fun (_, ty) -> ty) params

let dup_by key xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      let k = key x in
      if Hashtbl.mem seen k then true
      else (
        Hashtbl.add seen k ();
        false))
    xs

let lint_hierarchy h =
  let diags = ref [] in
  let report sev code subject msg =
    diags := Diagnostic.about sev ~code ~subject msg :: !diags
  in
  Hierarchy.iter h (fun d ->
      if not d.Decl.synthetic then begin
        let subject = Qname.to_string d.Decl.dname in
        (* A001: mentions of types the model does not declare. *)
        Qname.Set.iter
          (fun q ->
            match Hierarchy.find_opt h q with
            | Some { Decl.synthetic = false; _ } -> ()
            | Some { Decl.synthetic = true; _ } ->
                report Diagnostic.Info "A001" subject
                  (Printf.sprintf "references %s, which the model treats as opaque"
                     (Qname.to_string q))
            | None ->
                report Diagnostic.Warning "A001" subject
                  (Printf.sprintf "references undeclared type %s (hierarchy not closed)"
                     (Qname.to_string q)))
          (Hierarchy.referenced_qnames d);
        (* A002: duplicate members within one declaration. *)
        List.iter
          (fun (f : Member.field) ->
            report Diagnostic.Error "A002" subject
              (Printf.sprintf "field '%s' declared more than once" f.Member.fname))
          (dup_by (fun (f : Member.field) -> f.Member.fname) d.Decl.fields);
        List.iter
          (fun (m : Member.meth) ->
            report Diagnostic.Error "A002" subject
              (Printf.sprintf "method '%s' declared more than once"
                 (Member.meth_signature_string m)))
          (dup_by
             (fun (m : Member.meth) -> (m.Member.mname, param_sig m.Member.params))
             d.Decl.methods);
        List.iter
          (fun (c : Member.ctor) ->
            report Diagnostic.Error "A002" subject
              (Printf.sprintf "constructor with %d parameters declared more than once"
                 (List.length c.Member.cparams)))
          (dup_by (fun (c : Member.ctor) -> param_sig c.Member.cparams) d.Decl.ctors);
        (* A003: members an interface cannot have. *)
        if Decl.is_interface d then begin
          if d.Decl.ctors <> [] then
            report Diagnostic.Error "A003" subject "interface declares a constructor";
          List.iter
            (fun (f : Member.field) ->
              if not f.Member.fstatic then
                report Diagnostic.Warning "A003" subject
                  (Printf.sprintf "interface declares instance field '%s'"
                     f.Member.fname))
            d.Decl.fields
        end;
        (* A004: extends/implements clauses must respect declaration kinds. *)
        let kind_of q =
          match Hierarchy.find_opt h q with
          | Some t when not t.Decl.synthetic -> Some t.Decl.kind
          | _ -> None
        in
        List.iter
          (fun q ->
            match (d.Decl.kind, kind_of q) with
            | Decl.Class, Some Decl.Interface ->
                report Diagnostic.Error "A004" subject
                  (Printf.sprintf "class extends interface %s" (Qname.to_string q))
            | Decl.Interface, Some Decl.Class ->
                report Diagnostic.Error "A004" subject
                  (Printf.sprintf "interface extends class %s" (Qname.to_string q))
            | _ -> ())
          d.Decl.extends;
        List.iter
          (fun q ->
            match kind_of q with
            | Some Decl.Class ->
                report Diagnostic.Error "A004" subject
                  (Printf.sprintf "implements clause names class %s" (Qname.to_string q))
            | _ -> ())
          d.Decl.implements;
        (* A005: [void] only makes sense as a return type. *)
        List.iter
          (fun (f : Member.field) ->
            if is_voidish f.Member.ftype then
              report Diagnostic.Error "A005" subject
                (Printf.sprintf "field '%s' has type void" f.Member.fname))
          d.Decl.fields;
        let check_params what params =
          List.iter
            (fun (_, ty) ->
              if is_voidish ty then
                report Diagnostic.Error "A005" subject
                  (Printf.sprintf "%s takes a void parameter" what))
            params
        in
        List.iter
          (fun (m : Member.meth) ->
            check_params
              (Printf.sprintf "method '%s'" m.Member.mname)
              m.Member.params)
          d.Decl.methods;
        List.iter
          (fun (c : Member.ctor) -> check_params "constructor" c.Member.cparams)
          d.Decl.ctors
      end);
  List.sort Diagnostic.compare !diags

let edge_subject g (e : Graph.edge) =
  Printf.sprintf "edge %s -> %s (%s)"
    (Jtype.simple_string (Graph.node_type g e.Graph.src))
    (Jtype.simple_string (Graph.node_type g e.Graph.dst))
    (Elem.describe e.Graph.elem)

let lint_graph h g =
  let diags = ref [] in
  let report sev code subject msg =
    diags := Diagnostic.about sev ~code ~subject msg :: !diags
  in
  let seen_edges = Hashtbl.create 1024 in
  let degree = Hashtbl.create 1024 in
  let bump n = Hashtbl.replace degree n (1 + Option.value ~default:0 (Hashtbl.find_opt degree n)) in
  Graph.iter_edges g (fun e ->
      let subject = edge_subject g e in
      bump e.Graph.src;
      bump e.Graph.dst;
      (* A012: duplicates (defensive — [Graph.add_edge] drops them). *)
      let key = (e.Graph.src, e.Graph.dst, e.Graph.elem) in
      if Hashtbl.mem seen_edges key then
        report Diagnostic.Warning "A012" subject "duplicate edge"
      else Hashtbl.add seen_edges key ();
      (match e.Graph.elem with
      | Elem.Widen { from_; to_ } ->
          (* A010: the graph claims a widening conversion the hierarchy
             does not back. *)
          if not (Hierarchy.is_subtype h from_ to_) then
            report Diagnostic.Error "A010" subject
              (Printf.sprintf "%s is not a subtype of %s" (Jtype.to_string from_)
                 (Jtype.to_string to_));
          if Jtype.equal from_ to_ then
            report Diagnostic.Warning "A011" subject "self-loop widening edge"
      | Elem.Downcast { from_; to_ } ->
          if Jtype.equal from_ to_ then
            report Diagnostic.Warning "A011" subject "self-loop downcast edge"
      | _ -> ());
      (* A014: endpoint node types must agree with the elementary jungloid;
         [input_type] can raise on a malformed parameter slot. *)
      match
        (try Some (Elem.input_type e.Graph.elem) with _ -> None)
      with
      | None -> report Diagnostic.Error "A014" subject "malformed input slot"
      | Some it ->
          if not (Jtype.equal (Graph.node_type g e.Graph.src) it) then
            report Diagnostic.Error "A014" subject
              (Printf.sprintf "source node is %s but the step consumes %s"
                 (Jtype.to_string (Graph.node_type g e.Graph.src))
                 (Jtype.to_string it));
          let ot = Elem.output_type e.Graph.elem in
          if not (Jtype.equal (Graph.node_type g e.Graph.dst) ot) then
            report Diagnostic.Error "A014" subject
              (Printf.sprintf "destination node is %s but the step produces %s"
                 (Jtype.to_string (Graph.node_type g e.Graph.dst))
                 (Jtype.to_string ot)));
  (* A013: types no elementary jungloid produces or consumes. *)
  List.iter
    (fun (ty, n) ->
      if (not (Hashtbl.mem degree n)) && not (Jtype.equal ty Jtype.Void) then
        report Diagnostic.Info "A013" (Jtype.to_string ty)
          "orphan type: no elementary jungloid reaches or leaves it")
    (Graph.real_nodes g);
  List.sort Diagnostic.compare !diags

let lint ?graph h =
  let base = lint_hierarchy h in
  match graph with
  | None -> base
  | Some g -> List.sort Diagnostic.compare (base @ lint_graph h g)
