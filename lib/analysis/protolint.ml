(* Protocol lint over mined typestate automata. See protolint.mli for the
   rule catalogue. *)

module Jtype = Javamodel.Jtype
module Member = Javamodel.Member
module Elem = Prospector.Elem
module Jungloid = Prospector.Jungloid

let meth_label (m : Member.meth) =
  Printf.sprintf "%s/%d" m.Member.mname (List.length m.Member.params)

(* ------------------------------------------------------------------ *)
(* Client-code pass: P001–P006 over reconstructed receiver sequences. *)

let check_sequence model (seq : Protocol.sequence) =
  let tname = seq.seq_type in
  if not (Protocol.modeled model ~tname) then []
  else begin
    let diags = ref [] in
    let report loc sev code msg =
      diags := Diagnostic.at sev ~code ~loc msg :: !diags
    in
    let qualify m = tname ^ "." ^ m in
    (* P005: methods the corpus never calls on this type at all. Deviance
       checks below only fire between known methods, so the two rules
       never double-report one call site. *)
    List.iter
      (fun (ev : Protocol.event) ->
        if not (Protocol.known_method model ~tname ~meth:ev.ev_meth) then
          report ev.ev_loc Diagnostic.Info "P005"
            (Printf.sprintf
               "unknown method on modeled type: %d corpus uses of %s never \
                call %s"
               (Protocol.observations model ~tname)
               tname ev.ev_meth))
      seq.seq_events;
    (match seq.seq_events with
    | [] -> ()
    | first :: _ ->
        if Protocol.start_deviant model ~tname ~meth:first.ev_meth then begin
          let start =
            match Protocol.start_suggestion model ~tname with
            | Some s -> Printf.sprintf " (corpus clients start with %s)" s
            | None -> ""
          in
          match seq.seq_producer with
          | Protocol.Cast ->
              report first.ev_loc Diagnostic.Warning "P006"
                (Printf.sprintf
                   "cast-then-protocol-violation: object cast to %s is first \
                    used via %s, never the first call in the corpus%s"
                   tname first.ev_meth start)
          | _ ->
              report first.ev_loc Diagnostic.Warning "P003"
                (Printf.sprintf
                   "use before producing call: no corpus client calls %s \
                    first on a fresh %s%s"
                   first.ev_meth tname start)
        end);
    let rec pairs = function
      | (prev : Protocol.event) :: (next :: _ as rest) ->
          if
            Protocol.pair_deviant model ~tname ~prev:prev.ev_meth
              ~next:next.ev_meth
          then begin
            let usual =
              match
                Protocol.common_successor model ~tname ~meth:prev.ev_meth
              with
              | Some s -> Printf.sprintf " (usually %s follows)" (qualify s)
              | None -> ""
            in
            report next.ev_loc Diagnostic.Warning "P001"
              (Printf.sprintf
                 "rare transition: the corpus never calls %s after %s%s"
                 (qualify next.ev_meth) (qualify prev.ev_meth) usual)
          end;
          pairs rest
      | _ -> ()
    in
    pairs seq.seq_events;
    (match List.rev seq.seq_events with
    | [] -> ()
    | last :: _ -> (
        (match Protocol.must_follow model ~tname ~meth:last.ev_meth with
        | Some succ ->
            report last.ev_loc Diagnostic.Warning "P002"
              (Printf.sprintf
                 "must-follow call missing: corpus clients always follow %s \
                  with another call (usually %s)"
                 (qualify last.ev_meth) (qualify succ))
        | None -> ());
        if
          last.ev_discarded && (not last.ev_void)
          && Protocol.always_terminal model ~tname ~meth:last.ev_meth
        then
          report last.ev_loc Diagnostic.Info "P004"
            (Printf.sprintf
               "dead terminal call: %s always ends the protocol of %s and \
                its result is discarded here"
               (qualify last.ev_meth) tname)));
    !diags
  end

let check model sequences =
  List.concat_map (check_sequence model) sequences
  |> List.sort_uniq Diagnostic.compare

(* ------------------------------------------------------------------ *)
(* Jungloid vetting: J010–J012 over a synthesized chain. *)

(* The object currently flowing through the chain, when the chain itself
   produced it. [None] marks the query input (unknown provenance — never
   vetted, so Table 1 solutions that start from a live editor object are
   not second-guessed). *)
type tracked = { t_ty : Jtype.t; t_cast : bool }

let vet model (j : Jungloid.t) =
  let diags = ref [] in
  let report i e sev code msg =
    let subject = Printf.sprintf "step %d (%s)" i (Elem.describe e) in
    diags := Diagnostic.about sev ~code ~subject msg :: !diags
  in
  let vet_call i e (t : tracked) (meth : Member.meth) =
    let tname = Jtype.to_string t.t_ty in
    let m = meth_label meth in
    if Protocol.start_deviant model ~tname ~meth:m then begin
      let start =
        match Protocol.start_suggestion model ~tname with
        | Some s -> Printf.sprintf " (corpus clients start with %s)" s
        | None -> ""
      in
      if t.t_cast then
        report i e Diagnostic.Warning "J012"
          (Printf.sprintf
             "downcast-then-deviant call: the chain casts to %s and calls \
              %s, never the first call in the corpus%s"
             tname m start)
      else
        report i e Diagnostic.Warning "J010"
          (Printf.sprintf
             "deviant first call: no corpus client calls %s first on a \
              fresh %s%s"
             m tname start)
    end;
    match Protocol.must_follow model ~tname ~meth:m with
    | Some succ ->
        report i e Diagnostic.Warning "J011"
          (Printf.sprintf
             "must-follow call left dangling: corpus clients always follow \
              %s.%s with another call (usually %s.%s)"
             tname m tname succ)
    | None -> ()
  in
  let state = ref None in
  List.iteri
    (fun idx (e : Elem.t) ->
      let i = idx + 1 in
      match e with
      | Elem.Widen { to_; _ } ->
          (* Same value, wider static type: the object continues. *)
          state :=
            Option.map (fun t -> { t with t_ty = to_ }) !state
      | Elem.Downcast { to_; _ } ->
          (* The previous object ends silently (a cast is not a call); the
             cast result is a chain-produced object. *)
          state := Some { t_ty = to_; t_cast = true }
      | Elem.Field_access { field; _ } ->
          state := Some { t_ty = field.Member.ftype; t_cast = false }
      | Elem.Ctor_call { owner; _ } ->
          state := Some { t_ty = Jtype.ref_ owner; t_cast = false }
      | Elem.Static_call { meth; _ } ->
          state := Some { t_ty = meth.Member.ret; t_cast = false }
      | Elem.Instance_call { meth; input; _ } ->
          (match (input, !state) with
          | Elem.Receiver, Some t ->
              (* The one call the chain makes on this object: vet it as
                 both the first and the last event of its life. *)
              vet_call i e t meth
          | _ -> ());
          state := Some { t_ty = meth.Member.ret; t_cast = false })
    j.Jungloid.elems;
  List.rev !diags

let violations model j = List.map Diagnostic.to_string (vet model j)
